// Ablation for §II-F: the elimination-tree lookahead window. SuperLU_DIST
// uses windows of 8-20; this sweeps the window size and reports the
// simulated critical-path time of the 2D baseline.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace slu3d;
  bench::bench_platform(argc, argv);
  const auto suite = paper_test_suite(bench::bench_scale());

  TextTable table({"matrix", "window=0", "w=2", "w=8", "w=16", "best gain"});
  for (const auto& t : suite) {
    if (t.name != "K2D5pt" && t.name != "serena3d" && t.name != "circuit2d")
      continue;
    const SeparatorTree tree = bench::order_matrix(t);
    const BlockStructure bs(t.A, tree);
    const CsrMatrix Ap = t.A.permuted_symmetric(tree.perm());

    std::vector<std::string> row{t.name};
    double t0 = 0, best = 1e300;
    for (int w : {0, 2, 8, 16}) {
      const auto m = bench::run_dist_lu(bs, Ap, 4, 4, 1, w);
      if (w == 0) t0 = m.time;
      best = std::min(best, m.time);
      row.push_back(TextTable::sci(m.time));
    }
    row.push_back(TextTable::num(t0 / best, 3) + "x");
    table.add_row(std::move(row));
  }
  std::cout << "Lookahead-window ablation (SuperLU_DIST pipelining, §II-F)\n";
  table.print(std::cout);
  return 0;
}
