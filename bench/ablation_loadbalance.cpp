// Ablation for §III-C / Fig. 8: the greedy inter-grid load-balancing
// heuristic versus the plain nested-dissection split, on deliberately
// unbalanced elimination trees. The classic bad case (exactly the paper's
// Fig. 8) is an elimination forest whose top-level split yields children
// of very different factorization cost; here: one big grid plus small
// disconnected islands, and an L-shaped domain.
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace slu3d;

/// One na x na 5-point grid plus `k` disconnected nb x nb islands
/// (independent subdomains): the component split of the elimination tree
/// is maximally unbalanced in cost when na >> nb — the paper's Fig. 8
/// scenario, where the plain ND mapping leaves one grid owning almost all
/// the work and the greedy heuristic descends into the big subtree.
CsrMatrix unbalanced_islands(index_t na, index_t nb, index_t k) {
  const index_t n = na * na + k * nb * nb;
  CooMatrix coo(n, n);
  std::vector<real_t> diag(static_cast<std::size_t>(n), 0.0);
  auto edge = [&](index_t u, index_t v) {
    coo.add(u, v, -1.0);
    coo.add(v, u, -1.0);
    diag[static_cast<std::size_t>(u)] += 1.0;
    diag[static_cast<std::size_t>(v)] += 1.0;
  };
  auto va = [&](index_t x, index_t y) { return x + na * y; };
  for (index_t y = 0; y < na; ++y)
    for (index_t x = 0; x < na; ++x) {
      if (x + 1 < na) edge(va(x, y), va(x + 1, y));
      if (y + 1 < na) edge(va(x, y), va(x, y + 1));
    }
  for (index_t isl = 0; isl < k; ++isl) {
    const index_t off = na * na + isl * nb * nb;
    auto vb = [&](index_t x, index_t y) { return off + x + nb * y; };
    for (index_t y = 0; y < nb; ++y)
      for (index_t x = 0; x < nb; ++x) {
        if (x + 1 < nb) edge(vb(x, y), vb(x + 1, y));
        if (y + 1 < nb) edge(vb(x, y), vb(x, y + 1));
      }
  }
  for (index_t i = 0; i < n; ++i)
    coo.add(i, i, diag[static_cast<std::size_t>(i)] * 1.05 + 0.05);
  return CsrMatrix::from_coo(coo);
}

/// L-shaped domain: an nx x ny grid with the (x >= nx/2, y >= ny/2)
/// quadrant removed. General ND splits it unevenly in cost.
CsrMatrix lshaped2d(index_t nx, index_t ny) {
  std::vector<index_t> id(static_cast<std::size_t>(nx * ny), -1);
  index_t n = 0;
  for (index_t y = 0; y < ny; ++y)
    for (index_t x = 0; x < nx; ++x)
      if (!(x >= nx / 2 && y >= ny / 2))
        id[static_cast<std::size_t>(x + nx * y)] = n++;
  CooMatrix coo(n, n);
  std::vector<real_t> diag(static_cast<std::size_t>(n), 0.0);
  auto edge = [&](index_t u, index_t v) {
    coo.add(u, v, -1.0);
    coo.add(v, u, -1.0);
    diag[static_cast<std::size_t>(u)] += 1.0;
    diag[static_cast<std::size_t>(v)] += 1.0;
  };
  for (index_t y = 0; y < ny; ++y)
    for (index_t x = 0; x < nx; ++x) {
      const index_t u = id[static_cast<std::size_t>(x + nx * y)];
      if (u < 0) continue;
      if (x + 1 < nx && id[static_cast<std::size_t>(x + 1 + nx * y)] >= 0)
        edge(u, id[static_cast<std::size_t>(x + 1 + nx * y)]);
      if (y + 1 < ny && id[static_cast<std::size_t>(x + nx * (y + 1))] >= 0)
        edge(u, id[static_cast<std::size_t>(x + nx * (y + 1))]);
    }
  for (index_t i = 0; i < n; ++i)
    coo.add(i, i, diag[static_cast<std::size_t>(i)] * 1.05 + 0.05);
  return CsrMatrix::from_coo(coo);
}

}  // namespace

int main(int argc, char** argv) {
  slu3d::bench::bench_platform(argc, argv);
  const int s = bench::bench_scale();
  const index_t base = s == 0 ? 16 : (s == 1 ? 48 : 96);

  struct Case {
    std::string name;
    CsrMatrix A;
  };
  std::vector<Case> cases;
  cases.push_back({"islands_big+4small", unbalanced_islands(base, base / 4, 4)});
  cases.push_back({"islands_big+2mid", unbalanced_islands(base, base / 2, 2)});
  cases.push_back({"lshaped", lshaped2d(2 * base, base)});

  TextTable table({"matrix", "Pz", "cp_flops(nd)", "cp_flops(greedy)",
                   "flops_gain", "T_nd(s)", "T_greedy(s)", "time_gain"});
  for (const auto& c : cases) {
    const SeparatorTree tree = nested_dissection(c.A, {.leaf_size = 16});
    const BlockStructure bs(c.A, tree);
    const CsrMatrix Ap = c.A.permuted_symmetric(tree.perm());

    for (int Pz : {2, 4}) {
      const ForestPartition nd(bs, Pz, PartitionStrategy::NdSplit);
      const ForestPartition greedy(bs, Pz, PartitionStrategy::Greedy);
      const auto mnd =
          bench::run_dist_lu(bs, Ap, 2, 2, Pz, 8, PartitionStrategy::NdSplit);
      const auto mgr =
          bench::run_dist_lu(bs, Ap, 2, 2, Pz, 8, PartitionStrategy::Greedy);
      table.add_row(
          {c.name, std::to_string(Pz),
           TextTable::sci(static_cast<double>(nd.critical_path_flops())),
           TextTable::sci(static_cast<double>(greedy.critical_path_flops())),
           TextTable::num(static_cast<double>(nd.critical_path_flops()) /
                          static_cast<double>(greedy.critical_path_flops()), 2) + "x",
           TextTable::sci(mnd.time), TextTable::sci(mgr.time),
           TextTable::num(mnd.time / mgr.time, 2) + "x"});
    }
  }
  std::cout << "Load-balance ablation (Fig. 8): greedy heuristic vs plain ND "
               "split on unbalanced trees\n";
  table.print(std::cout);
  return 0;
}
