// Ordering-quality experiment: why sparse direct solvers use nested
// dissection. Compares fill (nnz of the factors) and factorization flops
// under natural, RCM, general ND, and geometric ND orderings, plus the
// exact scalar fill (no supernode relaxation) as the lower reference.
#include <iostream>

#include "bench_common.hpp"
#include "symbolic/etree.hpp"

int main(int argc, char** argv) {
  using namespace slu3d;
  bench::bench_platform(argc, argv);
  const auto suite = paper_test_suite(bench::bench_scale());

  TextTable table({"matrix", "ordering", "block nnz(L+U)", "flops",
                   "scalar nnz(L)", "etree height"});
  for (const auto& t : suite) {
    if (t.name != "K2D5pt" && t.name != "serena3d" && t.name != "circuit2d")
      continue;

    auto report = [&](const std::string& label, const SeparatorTree& tree) {
      const BlockStructure bs(t.A, tree);
      const CsrMatrix Ap = t.A.permuted_symmetric(tree.perm());
      table.add_row({t.name, label,
                     TextTable::sci(static_cast<double>(bs.total_nnz())),
                     TextTable::sci(static_cast<double>(bs.total_flops())),
                     TextTable::sci(static_cast<double>(scalar_factor_nnz(Ap))),
                     std::to_string(tree.height())});
    };

    // Natural order: a degenerate "tree" is not expressible here, so show
    // the scalar fill of the unpermuted matrix instead.
    {
      table.add_row({t.name, "natural", "-", "-",
                     TextTable::sci(static_cast<double>(scalar_factor_nnz(t.A))),
                     "-"});
    }
    {
      const auto rcm = rcm_ordering(t.A);
      const CsrMatrix Ar = t.A.permuted_symmetric(rcm);
      table.add_row({t.name, "rcm", "-", "-",
                     TextTable::sci(static_cast<double>(scalar_factor_nnz(Ar))),
                     "-"});
    }
    report("nd(level-set)", nested_dissection(t.A, {.leaf_size = 32}));
    report("nd(multilevel)",
           nested_dissection(t.A, {.leaf_size = 32,
                                   .algorithm = NdAlgorithm::Multilevel}));
    if (t.geom.nx > 0)
      report("nd(geometric)", geometric_nd(t.geom, {.leaf_size = 32}));
  }
  std::cout << "Ordering quality: fill and flops under different orderings\n";
  table.print(std::cout);
  return 0;
}
