// Supernode-relaxation ablation: the leaf size of the dissection controls
// the dense-block granularity. Small leaves: less fill but tiny GEMMs and
// more messages; large leaves: denser blocks, more flops/fill. Sweeps the
// leaf size and reports fill, flops, and simulated 2D factorization time.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace slu3d;
  bench::bench_platform(argc, argv);
  const int scale = bench::bench_scale();
  const index_t side = scale == 0 ? 24 : (scale == 1 ? 64 : 128);
  const GridGeometry g{side, side, 1};
  const TestMatrix t{"K2Dleaf", grid2d_laplacian(g, Stencil2D::FivePoint), g,
                     true};

  TextTable table({"leaf", "#snodes", "nnz(L+U)", "flops", "T_2d@16(s)",
                   "W/proc(B)"});
  for (index_t leaf : {8, 16, 32, 64, 128}) {
    const SeparatorTree tree = geometric_nd(g, {.leaf_size = leaf});
    const BlockStructure bs(t.A, tree);
    const CsrMatrix Ap = t.A.permuted_symmetric(tree.perm());
    const auto m = bench::run_dist_lu(bs, Ap, 4, 4, 1);
    table.add_row({std::to_string(leaf), std::to_string(bs.n_snodes()),
                   TextTable::sci(static_cast<double>(bs.total_nnz())),
                   TextTable::sci(static_cast<double>(bs.total_flops())),
                   TextTable::sci(m.time), std::to_string(m.w_fact)});
  }
  std::cout << "Supernode relaxation (leaf size) ablation, planar " << side
            << "x" << side << "\n";
  table.print(std::cout);
  return 0;
}
