// Reproduces Table III: the test-matrix inventory — dimension, nnz/n,
// factorization flops, and sequential factorization time of the baseline.
#include <iostream>

#include "bench_common.hpp"
#include "numeric/seq_lu.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace slu3d;
  bench::bench_platform(argc, argv);
  const auto suite = paper_test_suite(bench::bench_scale());

  TextTable table({"Name", "Class", "n", "nnz/n", "#Flop", "T_fact(s)"});
  for (const auto& t : suite) {
    const SeparatorTree tree = bench::order_matrix(t);
    const BlockStructure bs(t.A, tree);
    SupernodalMatrix F(bs);
    F.fill_from(t.A.permuted_symmetric(tree.perm()));
    Timer timer;
    factorize_sequential(F);
    const double seconds = timer.seconds();
    table.add_row({t.name, t.planar ? "planar" : "non-planar",
                   std::to_string(t.A.n_rows()),
                   TextTable::num(static_cast<double>(t.A.nnz()) /
                                  static_cast<double>(t.A.n_rows()), 1),
                   TextTable::sci(static_cast<double>(bs.total_flops())),
                   TextTable::num(seconds, 3)});
  }
  std::cout << "Table III — test matrices (scaled-down structural "
               "equivalents; see DESIGN.md)\n";
  table.print(std::cout);
  return 0;
}
