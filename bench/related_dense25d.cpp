// Related-work experiment (§VI): the dense 2.5D LU trade-off. At fixed
// total P, raising the replication factor c cuts per-process panel
// (XY-plane) communication volume ~1/sqrt(c) but adds z-reduction volume,
// messages, and memory — "communication costs are inversely proportional
// to the latency costs" (Solomonik & Demmel), the reason the paper avoids
// pure 2.5D at the lower elimination-tree levels and uses elimination-tree
// parallelism instead.
#include <iostream>

#include "bench_common.hpp"
#include "dense25d/dense_lu25d.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace slu3d;
  bench::bench_platform(argc, argv);
  const int scale = bench::bench_scale();
  const index_t n = scale == 0 ? 64 : (scale == 1 ? 192 : 384);
  const index_t block = 16;

  Rng rng(77);
  std::vector<real_t> a0(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (auto& v : a0) v = rng.uniform(-1, 1);
  for (index_t i = 0; i < n; ++i)
    a0[static_cast<std::size_t>(i) * static_cast<std::size_t>(n + 1)] +=
        static_cast<real_t>(n);

  struct Config {
    int p, c;
  };
  const std::vector<Config> configs{{4, 1}, {2, 4}};  // both P = 16
  TextTable table({"p", "c", "P", "W_xy(B)", "W_z(B)", "msgs/proc",
                   "mem/proc(B)", "time(s)"});
  for (const auto& cfg : configs) {
    Dense25dOptions opt;
    opt.block = block;
    const int P = cfg.p * cfg.p * cfg.c;
    std::vector<offset_t> mem(static_cast<std::size_t>(P), 0);
    const auto res = sim::run_ranks(P, bench::platform(), [&](sim::Comm& w) {
      auto grid = sim::ProcessGrid3D::create(w, cfg.p, cfg.p, cfg.c);
      Dense25dMatrix A(n, opt, cfg.p, grid.plane().px(), grid.plane().py());
      if (grid.pz() == 0) A.fill_from(a0);
      dense_lu_25d(A, w, grid, opt);
      mem[static_cast<std::size_t>(w.rank())] = A.allocated_bytes();
    });
    offset_t mem_max = 0, msgs = 0;
    for (offset_t m : mem) mem_max = std::max(mem_max, m);
    for (const auto& r : res.ranks)
      msgs = std::max(msgs, r.messages_received[0] + r.messages_received[1]);
    table.add_row({std::to_string(cfg.p), std::to_string(cfg.c),
                   std::to_string(P),
                   std::to_string(res.max_bytes_received(sim::CommPlane::XY)),
                   std::to_string(res.max_bytes_received(sim::CommPlane::Z)),
                   std::to_string(msgs), std::to_string(mem_max),
                   TextTable::sci(res.max_clock())});
  }
  std::cout << "Dense 2.5D LU (related work, §VI): replication c vs "
               "communication, n = " << n << "\n";
  table.print(std::cout);
  return 0;
}
