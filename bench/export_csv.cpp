// Exports the paper's figure data as CSV files (one per figure), so the
// plots can be regenerated with tools/plot_results.py or any spreadsheet.
//
// Also emits BENCH_kernels.json: GFLOP/s of the blocked dense substrate
// and the dense::ref oracle per kernel per size, the acceptance artifact
// for the micro-kernel work.
//
//   $ ./export_csv [output_dir]                (default: ./results)
//   $ ./export_csv --kernels-only [output_dir] (skip the slow figure CSVs)
//   $ ./export_csv --fleet-only [output_dir]   (fleet throughput sweep only)
//   $ ./export_csv --fig12-only [output_dir]   (fig12 platform sweep only:
//                                               fig12_heatmap.csv plus one
//                                               fig12_<platform>.csv per
//                                               preset — the CI artifacts)
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "fleet_common.hpp"
#include "numeric/dense_kernels.hpp"
#include "numeric/kernel_scratch.hpp"
#include "support/rng.hpp"

namespace {

using namespace slu3d;

void export_fig9_fig10_fig11(const std::string& dir, int threads) {
  const auto suite = paper_test_suite(bench::bench_scale());
  std::ofstream f9(dir + "/fig9_normalized_time.csv");
  f9 << "matrix,class,P,Pz,Px,Py,time_s,t_scu_s,t_comm_s,wall_s,threads,"
        "t_analysis_s,w_analysis_bytes,msg_analysis\n";
  std::ofstream f10(dir + "/fig10_comm_volume.csv");
  f10 << "matrix,class,P,Pz,w_fact_bytes,w_red_bytes,panel_saved_bytes,"
         "panel_dense_bytes,panel_saved_msgs,targeted_saved_bytes,"
         "targeted_dense_bytes,targeted_saved_msgs,targeted_zred_saved_bytes"
         "\n";
  std::ofstream f11(dir + "/fig11_memory.csv");
  f11 << "matrix,class,P,Pz,mem_total_bytes,mem_max_bytes\n";

  for (const auto& t : suite) {
    const SeparatorTree tree = bench::order_matrix(t);
    const BlockStructure bs(t.A, tree);
    const CsrMatrix Ap = t.A.permuted_symmetric(tree.perm());
    const char* cls = t.planar ? "planar" : "nonplanar";
    for (int P : {16, 64, 128}) {
      // The cold-start analysis split at this rank count: the distributed
      // ordering + symbolic phase run once per (matrix, P) on the
      // simulated machine (it depends on the world size, not the Pz
      // split), reported alongside every fig9 row at this P.
      const auto ares = sim::run_ranks(
          P, bench::platform(), [&](sim::Comm& world) {
            analyze_in_sim(t.A, world, {.leaf_size = 16},
                           AnalysisMode::Distributed);
          });
      const double t_analysis = ares.max_analysis_seconds();
      const offset_t w_analysis = ares.max_analysis_bytes_received();
      const offset_t msg_analysis = ares.total_analysis_messages_sent();
      for (int Pz : {1, 2, 4, 8, 16}) {
        if (P % Pz != 0) continue;
        const auto [Px, Py] = bench::square_ish(P / Pz);
        const auto m = bench::run_dist_lu(bs, Ap, Px, Py, Pz, 8,
                                          PartitionStrategy::Greedy,
                                          pipeline::ZRedPacking::Dense,
                                          pipeline::PanelPacking::Dense,
                                          threads);
        // Sparse-panel re-run for the Psaved columns and a targeted re-run
        // (one-sided footprint puts + Z scatter-accumulate) for the Tsaved
        // columns — factors bitwise unchanged; only the wire formats differ.
        const auto pp = bench::run_dist_lu(bs, Ap, Px, Py, Pz, 8,
                                           PartitionStrategy::Greedy,
                                           pipeline::ZRedPacking::Dense,
                                           pipeline::PanelPacking::Sparse,
                                           threads);
        const auto tg = bench::run_dist_lu(bs, Ap, Px, Py, Pz, 8,
                                           PartitionStrategy::Greedy,
                                           pipeline::ZRedPacking::Targeted,
                                           pipeline::PanelPacking::Targeted,
                                           threads);
        f9 << t.name << ',' << cls << ',' << P << ',' << Pz << ',' << Px
           << ',' << Py << ',' << m.time << ',' << m.t_scu << ',' << m.t_comm
           << ',' << m.wall_s << ',' << m.threads << ',' << t_analysis << ','
           << w_analysis << ',' << msg_analysis << '\n';
        f10 << t.name << ',' << cls << ',' << P << ',' << Pz << ','
            << m.w_fact << ',' << m.w_red << ',' << pp.panel_saved << ','
            << pp.panel_dense << ',' << pp.panel_saved_msgs << ','
            << tg.panel_saved << ',' << tg.panel_dense << ','
            << tg.panel_saved_msgs << ',' << tg.zred_saved << '\n';
        f11 << t.name << ',' << cls << ',' << P << ',' << Pz << ','
            << m.mem_total << ',' << m.mem_max << '\n';
      }
    }
    std::cout << "exported " << t.name << "\n";
  }
}

/// One fig12 heatmap CSV per platform preset. `results/fig12_heatmap.csv`
/// stays the flat Edison-like heatmap (the historical artifact); the
/// platform sweep additionally writes `results/fig12_<platform>.csv` for
/// each preset, with the per-run link-queueing total alongside GFLOP/s so
/// the Pz-dependent divergence under contention is visible in one file.
void export_fig12(const std::string& dir) {
  const auto suite = paper_test_suite(bench::bench_scale());
  struct Sheet {
    sim::Platform platform;
    std::ofstream file;
  };
  std::vector<Sheet> sheets;
  for (const char* name : {"edison", "fattree-2to1", "torus"}) {
    sheets.push_back({sim::Platform::preset(name),
                      std::ofstream(dir + "/fig12_" + name + ".csv")});
    sheets.back().file
        << "matrix,class,Pxy,Pz,platform,gflops,time_s,link_queue_s\n";
  }
  std::ofstream flat(dir + "/fig12_heatmap.csv");
  flat << "matrix,class,Pxy,Pz,gflops\n";
  for (const auto& t : suite) {
    if (t.name != "K2D5pt" && t.name != "nlpkkt3d") continue;
    const SeparatorTree tree = bench::order_matrix(t);
    const BlockStructure bs(t.A, tree);
    const CsrMatrix Ap = t.A.permuted_symmetric(tree.perm());
    const double flops = static_cast<double>(bs.total_flops());
    for (int pz : {1, 2, 4, 8}) {
      for (int pxy : {4, 8, 16, 32}) {
        const auto [Px, Py] = bench::square_ish(pxy);
        for (auto& sheet : sheets) {
          const auto m = bench::run_dist_lu(
              bs, Ap, Px, Py, pz, /*lookahead=*/8, PartitionStrategy::Greedy,
              pipeline::ZRedPacking::Dense, pipeline::PanelPacking::Dense,
              /*threads=*/0, &sheet.platform);
          const double gflops = flops / m.time / 1e9;
          sheet.file << t.name << ','
                     << (t.planar ? "planar" : "nonplanar") << ',' << pxy
                     << ',' << pz << ',' << sheet.platform.name << ','
                     << gflops << ',' << m.time << ',' << m.link_queue_s
                     << '\n';
          if (sheet.platform.flat_wire())
            flat << t.name << ',' << (t.planar ? "planar" : "nonplanar")
                 << ',' << pxy << ',' << pz << ',' << gflops << '\n';
        }
      }
    }
    std::cout << "exported heatmap " << t.name << " (platforms: edison, "
                 "fattree-2to1, torus)\n";
  }
}

/// Sharded-fleet throughput sweep: the seeded open-loop trace from
/// bench/fleet_common.hpp replayed at shard counts {1, 2, 4, 8}. The CSV
/// is the tracked acceptance artifact for the fleet subsystem — latency
/// percentiles, wall throughput, hit/coalesce/shed rates per shard count.
void export_fleet_throughput(const std::string& dir, std::uint64_t seed) {
  service::ServiceOptions so;
  so.platform = bench::platform();
  so.Px = 2;
  so.Py = 2;
  so.Pz = 2;
  so.refinement_steps = 1;
  // Shard misses run their analysis on the simulated ranks, so the fleet's
  // cold-start bill (the analysis_* columns) is on the simulated clock.
  so.analysis = AnalysisMode::Distributed;
  const bench::FleetTrace trace =
      bench::make_fleet_trace(so, bench::bench_scale(), seed);
  const bench::FleetFlags flags;  // bench defaults: window x1, depth 16

  std::ofstream f(dir + "/fleet_throughput.csv");
  f << "shards,seed,requests,completed,shed,coalesced,batches,migrations,"
       "p50_s,p90_s,p99_s,wall_s,req_per_s,hit_rate,coalesce_rate,shed_rate,"
       "analyses,analysis_s,analysis_bytes,analysis_msgs\n";
  for (const int shards : {1, 2, 4, 8}) {
    const bench::FleetRunResult r = bench::run_fleet_trace(
        trace, bench::fleet_bench_options(so, trace, flags, shards));
    f << r.shards << ',' << seed << ',' << r.submitted << ',' << r.completed
      << ',' << r.shed << ',' << r.coalesced << ',' << r.batches << ','
      << r.migrations << ',' << r.p50 << ',' << r.p90 << ',' << r.p99 << ','
      << r.wall_s << ',' << r.wall_rps << ',' << r.hit_rate << ','
      << r.coalesce_rate << ',' << r.shed_rate << ',' << r.analyses << ','
      << r.analysis_s << ',' << r.analysis_bytes << ',' << r.analysis_msgs
      << '\n';
    std::cout << "fleet shards=" << r.shards << ": " << r.completed
              << " done, " << r.shed << " shed, p99 " << r.p99 << " sim s\n";
  }
  std::cout << "wrote " << dir << "/fleet_throughput.csv\n";
}

// ---- dense kernel GFLOP/s export ----------------------------------------

std::vector<real_t> random_dominant_matrix(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<real_t> a(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (index_t i = 0; i < n; ++i)
    a[static_cast<std::size_t>(i) * static_cast<std::size_t>(n + 1)] +=
        static_cast<real_t>(n);
  return a;
}

/// Best-of-reps GFLOP/s of `body`, which performs `flops` flops per call.
double measure_gflops(offset_t flops, const std::function<void()>& body) {
  using clock = std::chrono::steady_clock;
  // Calibrate the inner repeat count to ~10ms per sample.
  body();  // warm up (and warm the pack-buffer arena)
  int inner = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (int r = 0; r < inner; ++r) body();
    const double dt = std::chrono::duration<double>(clock::now() - t0).count();
    if (dt > 5e-3 || inner >= 1 << 14) break;
    inner *= 4;
  }
  double best = 1e300;
  for (int sample = 0; sample < 5; ++sample) {
    const auto t0 = clock::now();
    for (int r = 0; r < inner; ++r) body();
    const double dt = std::chrono::duration<double>(clock::now() - t0).count();
    best = std::min(best, dt / inner);
  }
  return static_cast<double>(flops) / best / 1e9;
}

void export_kernel_benchmarks(const std::string& dir, int threads) {
  // Thread count of the "blocked-tN" sweep: the explicit --threads value,
  // else the acceptance configuration of 4 participants. Wall-clock
  // speedup over "blocked" depends on the host actually having the cores
  // (host_cores below records what this run had to work with).
  const int tcount = threads > 0 ? threads : 4;
  std::ofstream out(dir + "/BENCH_kernels.json");
  out << "{\n  \"unit\": \"GFLOP/s\",\n  \"host_cores\": "
      << std::thread::hardware_concurrency() << ",\n  \"kernels\": [";
  bool first = true;
  auto emit = [&](const std::string& kernel, const std::string& variant,
                  index_t n, double gflops) {
    out << (first ? "" : ",") << "\n    {\"kernel\": \"" << kernel
        << "\", \"variant\": \"" << variant << "\", \"n\": " << n
        << ", \"gflops\": " << gflops << "}";
    first = false;
    std::cout << kernel << "/" << variant << " n=" << n << ": " << gflops
              << " GFLOP/s\n";
  };

  for (index_t n : {32, 64, 128, 256, 384, 512}) {
    const auto a = random_dominant_matrix(n, 4);
    const auto b = random_dominant_matrix(n, 5);
    std::vector<real_t> c(a.size(), 0.0);
    const offset_t fl = dense::gemm_flops(n, n, n);
    emit("gemm_minus", "blocked", n, measure_gflops(fl, [&] {
           dense::gemm_minus(n, n, n, a.data(), n, b.data(), n, c.data(), n);
         }));
    emit("gemm_minus", "ref", n, measure_gflops(fl, [&] {
           dense::ref::gemm_minus(n, n, n, a.data(), n, b.data(), n, c.data(),
                                  n);
         }));
    emit("gemm_minus_nt", "blocked", n, measure_gflops(fl, [&] {
           dense::gemm_minus_nt(n, n, n, a.data(), n, b.data(), n, c.data(),
                                n);
         }));
    emit("gemm_minus_nt", "ref", n, measure_gflops(fl, [&] {
           dense::ref::gemm_minus_nt(n, n, n, a.data(), n, b.data(), n,
                                     c.data(), n);
         }));
  }
  for (index_t n : {64, 128, 256}) {
    const auto a0 = random_dominant_matrix(n, 1);
    std::vector<real_t> a(a0.size());
    const offset_t gf = dense::getrf_flops(n);
    emit("getrf_nopiv", "blocked", n, measure_gflops(gf, [&] {
           a = a0;
           dense::getrf_nopiv(n, a.data(), n);
         }));
    emit("getrf_nopiv", "ref", n, measure_gflops(gf, [&] {
           a = a0;
           dense::ref::getrf_nopiv(n, a.data(), n);
         }));
    // TRSMs: solve in place repeatedly; the operand stays finite because
    // the diagonally dominant system contracts.
    const index_t m = 2 * n;
    std::vector<real_t> bl(static_cast<std::size_t>(n) * static_cast<std::size_t>(m), 1.0);
    const offset_t tf = dense::trsm_flops(n, m);
    emit("trsm_left_lower_unit", "blocked", n, measure_gflops(tf, [&] {
           dense::trsm_left_lower_unit(n, m, a0.data(), n, bl.data(), n);
         }));
    emit("trsm_left_lower_unit", "ref", n, measure_gflops(tf, [&] {
           dense::ref::trsm_left_lower_unit(n, m, a0.data(), n, bl.data(), n);
         }));
    std::vector<real_t> br(static_cast<std::size_t>(m) * static_cast<std::size_t>(n), 1.0);
    emit("trsm_right_upper", "blocked", n, measure_gflops(tf, [&] {
           dense::trsm_right_upper(n, m, a0.data(), n, br.data(), m);
         }));
    emit("trsm_right_upper", "ref", n, measure_gflops(tf, [&] {
           dense::ref::trsm_right_upper(n, m, a0.data(), n, br.data(), m);
         }));
  }
  // Threaded GEMM sweep: same kernels through a ParallelKernels pool (the
  // form the pipeline engines install per rank). Sizes start at 128 —
  // below the m*n*k fan-out threshold the pool is bypassed by design.
  {
    dense::ParallelKernels pk(tcount);
    const std::string variant = "blocked-t" + std::to_string(tcount);
    for (index_t n : {128, 256, 384, 512}) {
      const auto a = random_dominant_matrix(n, 4);
      const auto b = random_dominant_matrix(n, 5);
      std::vector<real_t> c(a.size(), 0.0);
      const offset_t fl = dense::gemm_flops(n, n, n);
      emit("gemm_minus", variant, n, measure_gflops(fl, [&] {
             dense::gemm_minus(n, n, n, a.data(), n, b.data(), n, c.data(), n);
           }));
      emit("gemm_minus_nt", variant, n, measure_gflops(fl, [&] {
             dense::gemm_minus_nt(n, n, n, a.data(), n, b.data(), n, c.data(),
                                  n);
           }));
    }
  }
  out << "\n  ]\n}\n";
  std::cout << "wrote " << dir << "/BENCH_kernels.json\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool kernels_only = false;
  bool fleet_only = false;
  bool fig12_only = false;
  std::string dir = "results";
  const int threads = slu3d::bench::bench_threads(argc, argv);
  const std::uint64_t seed = slu3d::bench::bench_seed(argc, argv);
  slu3d::bench::bench_platform(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--kernels-only") == 0) {
      kernels_only = true;
    } else if (std::strcmp(argv[i], "--fleet-only") == 0) {
      fleet_only = true;
    } else if (std::strcmp(argv[i], "--fig12-only") == 0) {
      fig12_only = true;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0 ||
               std::strncmp(argv[i], "--seed=", 7) == 0 ||
               std::strncmp(argv[i], "--platform=", 11) == 0) {
      // parsed by bench_threads / bench_seed / bench_platform
    } else if (std::strcmp(argv[i], "--threads") == 0 ||
               std::strcmp(argv[i], "--seed") == 0 ||
               std::strcmp(argv[i], "--platform") == 0) {
      ++i;  // skip the value
    } else {
      dir = argv[i];
    }
  }
  std::filesystem::create_directories(dir);
  if (fleet_only) {
    export_fleet_throughput(dir, seed);
    return 0;
  }
  if (fig12_only) {
    export_fig12(dir);
    return 0;
  }
  export_kernel_benchmarks(dir, threads);
  if (!kernels_only) {
    export_fleet_throughput(dir, seed);
    export_fig9_fig10_fig11(dir, threads);
    export_fig12(dir);
    std::cout << "CSV files written to " << dir
              << "; plot with tools/plot_results.py\n";
  }
  return 0;
}
