// Exports the paper's figure data as CSV files (one per figure), so the
// plots can be regenerated with tools/plot_results.py or any spreadsheet.
//
//   $ ./export_csv [output_dir]      (default: ./results)
#include <filesystem>
#include <fstream>
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace slu3d;

void export_fig9_fig10_fig11(const std::string& dir) {
  const auto suite = paper_test_suite(bench::bench_scale());
  std::ofstream f9(dir + "/fig9_normalized_time.csv");
  f9 << "matrix,class,P,Pz,Px,Py,time_s,t_scu_s,t_comm_s\n";
  std::ofstream f10(dir + "/fig10_comm_volume.csv");
  f10 << "matrix,class,P,Pz,w_fact_bytes,w_red_bytes\n";
  std::ofstream f11(dir + "/fig11_memory.csv");
  f11 << "matrix,class,P,Pz,mem_total_bytes,mem_max_bytes\n";

  for (const auto& t : suite) {
    const SeparatorTree tree = bench::order_matrix(t);
    const BlockStructure bs(t.A, tree);
    const CsrMatrix Ap = t.A.permuted_symmetric(tree.perm());
    const char* cls = t.planar ? "planar" : "nonplanar";
    for (int P : {16, 64, 128}) {
      for (int Pz : {1, 2, 4, 8, 16}) {
        if (P % Pz != 0) continue;
        const auto [Px, Py] = bench::square_ish(P / Pz);
        const auto m = bench::run_dist_lu(bs, Ap, Px, Py, Pz);
        f9 << t.name << ',' << cls << ',' << P << ',' << Pz << ',' << Px
           << ',' << Py << ',' << m.time << ',' << m.t_scu << ',' << m.t_comm
           << '\n';
        f10 << t.name << ',' << cls << ',' << P << ',' << Pz << ','
            << m.w_fact << ',' << m.w_red << '\n';
        f11 << t.name << ',' << cls << ',' << P << ',' << Pz << ','
            << m.mem_total << ',' << m.mem_max << '\n';
      }
    }
    std::cout << "exported " << t.name << "\n";
  }
}

void export_fig12(const std::string& dir) {
  const auto suite = paper_test_suite(bench::bench_scale());
  std::ofstream f(dir + "/fig12_heatmap.csv");
  f << "matrix,class,Pxy,Pz,gflops\n";
  for (const auto& t : suite) {
    if (t.name != "K2D5pt" && t.name != "nlpkkt3d") continue;
    const SeparatorTree tree = bench::order_matrix(t);
    const BlockStructure bs(t.A, tree);
    const CsrMatrix Ap = t.A.permuted_symmetric(tree.perm());
    const double flops = static_cast<double>(bs.total_flops());
    for (int pz : {1, 2, 4, 8}) {
      for (int pxy : {4, 8, 16, 32}) {
        const auto [Px, Py] = bench::square_ish(pxy);
        const auto m = bench::run_dist_lu(bs, Ap, Px, Py, pz);
        f << t.name << ',' << (t.planar ? "planar" : "nonplanar") << ','
          << pxy << ',' << pz << ',' << flops / m.time / 1e9 << '\n';
      }
    }
    std::cout << "exported heatmap " << t.name << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "results";
  std::filesystem::create_directories(dir);
  export_fig9_fig10_fig11(dir);
  export_fig12(dir);
  std::cout << "CSV files written to " << dir
            << "; plot with tools/plot_results.py\n";
  return 0;
}
