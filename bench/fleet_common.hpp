// Open-loop fleet traffic harness shared by bench/service_throughput and
// bench/export_csv: one seeded trace of Poisson-scheduled requests (on the
// simulated clock) replayed bit-identically across shard-count sweeps.
//
// The arrival rate is calibrated against a probe: one hot request's
// simulated refactorize+solve seconds on a single resident service. At
// `load_factor` times one shard's capacity, a 1-shard fleet saturates and
// sheds visibly while 4 and 8 shards ride the same trace comfortably —
// exactly the backpressure contrast the bench exists to show.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "fleet/solver_fleet.hpp"
#include "support/rng.hpp"

namespace slu3d::bench {

struct FleetTraceItem {
  std::shared_ptr<const CsrMatrix> A;
  std::size_t pattern = 0;
  std::uint64_t version = 0;
  std::uint64_t tenant = 0;
  index_t nrhs = 1;
  double arrival = 0;
};

struct FleetTrace {
  std::vector<FleetTraceItem> items;
  std::size_t patterns = 0;
  std::uint64_t seed = 0;
  double probe_seconds = 0;  ///< one hot request's simulated service time
  double rate = 0;           ///< open-loop arrivals per simulated second
};

/// Same sparsity pattern, values scaled by `f` (the fleet must treat this
/// as a values-version bump: numeric refactorization, no analysis).
inline CsrMatrix fleet_rescaled(const CsrMatrix& A, real_t f) {
  std::vector<real_t> vals(A.values().begin(), A.values().end());
  for (auto& v : vals) v *= f;
  return CsrMatrix::from_raw(
      A.n_rows(), A.n_cols(),
      std::vector<offset_t>(A.row_ptr().begin(), A.row_ptr().end()),
      std::vector<index_t>(A.col_idx().begin(), A.col_idx().end()),
      std::move(vals));
}

inline double fleet_percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx =
      static_cast<std::size_t>(p * static_cast<double>(v.size() - 1) + 0.5);
  return v[idx];
}

/// Builds the seeded mixed-traffic trace: six sparsity patterns with a
/// skewed popularity mix, per-pattern values-version bumps (30% of
/// requests carry fresh values), panel widths in {1, 4, 16}, eight
/// tenants, and exponential inter-arrival times at `load_factor` times a
/// single shard's hot-request capacity.
inline FleetTrace make_fleet_trace(const service::ServiceOptions& so,
                                   int scale, std::uint64_t seed,
                                   double load_factor = 3.0) {
  const index_t g = scale == 0 ? 10 : scale == 1 ? 16 : 24;
  std::vector<std::shared_ptr<const CsrMatrix>> base;
  base.push_back(std::make_shared<CsrMatrix>(
      grid2d_laplacian(GridGeometry{g, g, 1}, Stencil2D::FivePoint)));
  base.push_back(std::make_shared<CsrMatrix>(
      grid2d_laplacian(GridGeometry{g, g, 1}, Stencil2D::NinePoint)));
  base.push_back(std::make_shared<CsrMatrix>(
      grid2d_laplacian(GridGeometry{g + 1, g, 1}, Stencil2D::FivePoint)));
  base.push_back(std::make_shared<CsrMatrix>(
      grid2d_laplacian(GridGeometry{g, g + 1, 1}, Stencil2D::NinePoint)));
  base.push_back(std::make_shared<CsrMatrix>(
      grid2d_laplacian(GridGeometry{g + 1, g + 1, 1}, Stencil2D::FivePoint)));
  base.push_back(std::make_shared<CsrMatrix>(
      grid2d_laplacian(GridGeometry{g - 1, g, 1}, Stencil2D::NinePoint)));

  FleetTrace tr;
  tr.patterns = base.size();
  tr.seed = seed;

  // Probe: the steady-state cost of one request on a warm shard is a
  // numeric refactorization plus a single-RHS solve (analyses are
  // amortized away by the cache, so they don't define capacity).
  {
    service::SolverService probe(so);
    probe.factor(*base[0]);
    const auto fr = probe.factor(fleet_rescaled(*base[0], 1.01));
    const auto n = static_cast<std::size_t>(base[0]->n_rows());
    std::vector<real_t> b(n, 1.0), x(n);
    const auto sr = probe.solve({b, x, 1});
    tr.probe_seconds = fr.factor_time + sr.solve_time;
  }
  tr.rate = load_factor / tr.probe_seconds;

  const int requests = scale == 0 ? 80 : scale == 1 ? 240 : 480;
  std::vector<std::uint64_t> version(base.size(), 0);
  std::map<std::pair<std::size_t, std::uint64_t>,
           std::shared_ptr<const CsrMatrix>>
      snapshots;
  for (std::size_t p = 0; p < base.size(); ++p) snapshots[{p, 0}] = base[p];

  Rng rng(seed);
  double t = 0;
  for (int i = 0; i < requests; ++i) {
    t += -std::log(1.0 - rng.uniform(0, 1)) / tr.rate;
    // Skewed popularity: two hot patterns carry 60% of the traffic.
    const double u = rng.uniform(0, 1);
    const std::size_t p = u < 0.35   ? 0
                          : u < 0.60 ? 1
                                     : 2 + static_cast<std::size_t>(
                                               rng.next_index(4));
    if (rng.uniform(0, 1) < 0.30) ++version[p];  // fresh operator values
    const std::uint64_t v = version[p];
    auto& snap = snapshots[{p, v}];
    if (!snap)
      snap = std::make_shared<CsrMatrix>(fleet_rescaled(
          *base[p], static_cast<real_t>(1.0 + 0.01 * static_cast<double>(v))));
    const double w = rng.uniform(0, 1);
    FleetTraceItem it;
    it.A = snap;
    it.pattern = p;
    it.version = v;
    it.tenant = static_cast<std::uint64_t>(rng.next_index(8));
    it.nrhs = w < 0.5 ? 1 : w < 0.8 ? 4 : 16;
    it.arrival = t;
    tr.items.push_back(std::move(it));
  }
  return tr;
}

struct FleetRunResult {
  int shards = 0;
  long submitted = 0;
  long completed = 0;
  long shed = 0;
  long coalesced = 0;
  long batches = 0;
  long migrations = 0;
  double p50 = 0, p90 = 0, p99 = 0;  ///< simulated latency of Done requests
  double wall_s = 0;
  double wall_rps = 0;  ///< completed requests per wall-clock second
  double hit_rate = 0;
  double coalesce_rate = 0;
  double shed_rate = 0;
  // Fleet-wide cold-start analysis bill (see ServiceStats): how many
  // misses ran the analysis pipeline and, when it ran in-sim, the
  // simulated seconds / bytes / messages it charged.
  long analyses = 0;
  double analysis_s = 0;
  offset_t analysis_bytes = 0;
  offset_t analysis_msgs = 0;
};

/// Replays the trace against a fresh fleet and summarizes the outcome.
/// Right-hand sides are regenerated deterministically from the trace seed,
/// so every configuration in a sweep solves the identical systems.
inline FleetRunResult run_fleet_trace(const FleetTrace& tr,
                                      const service::FleetOptions& fo) {
  struct Buffers {
    std::vector<real_t> b, x;
  };
  std::vector<Buffers> bufs(tr.items.size());
  for (std::size_t i = 0; i < tr.items.size(); ++i) {
    const FleetTraceItem& it = tr.items[i];
    Rng rng(tr.seed ^ (0x9e3779b97f4a7c15ull * (i + 1)));
    bufs[i].b.resize(static_cast<std::size_t>(it.A->n_rows()) *
                     static_cast<std::size_t>(it.nrhs));
    for (auto& v : bufs[i].b) v = rng.uniform(-1, 1);
    bufs[i].x.resize(bufs[i].b.size());
  }

  const auto wall0 = std::chrono::steady_clock::now();
  service::SolverFleet fleet(fo);
  for (std::size_t i = 0; i < tr.items.size(); ++i) {
    const FleetTraceItem& it = tr.items[i];
    fleet.submit({it.tenant, it.A, it.version, bufs[i].b, bufs[i].x, it.nrhs},
                 it.arrival);
  }
  const std::vector<service::FleetResponse> rs = fleet.drain();
  const auto wall1 = std::chrono::steady_clock::now();

  FleetRunResult r;
  r.shards = fo.shards;
  r.wall_s = std::chrono::duration<double>(wall1 - wall0).count();
  const service::FleetStats& fs = fleet.stats();
  r.submitted = fs.submitted;
  r.completed = fs.completed;
  r.shed = fs.shed;
  r.coalesced = fs.coalesced;
  r.batches = fs.batches;
  r.migrations = fs.migrations;
  std::vector<double> lat;
  for (const service::FleetResponse& resp : rs)
    if (resp.status == service::RequestStatus::Done)
      lat.push_back(resp.latency());
  r.p50 = fleet_percentile(lat, 0.50);
  r.p90 = fleet_percentile(lat, 0.90);
  r.p99 = fleet_percentile(lat, 0.99);
  r.wall_rps = static_cast<double>(r.completed) / std::max(r.wall_s, 1e-12);
  const service::ServiceStats st = fleet.service_totals();
  const double hot = static_cast<double>(st.cache_hits) +
                     static_cast<double>(fs.activations);
  r.hit_rate = hot / std::max(hot + static_cast<double>(st.analyses), 1.0);
  r.coalesce_rate = static_cast<double>(fs.coalesced) /
                    std::max<double>(static_cast<double>(fs.submitted), 1.0);
  r.shed_rate = static_cast<double>(fs.shed) /
                std::max<double>(static_cast<double>(fs.submitted), 1.0);
  r.analyses = st.analyses;
  r.analysis_s = st.analysis_seconds;
  r.analysis_bytes = st.analysis_bytes;
  r.analysis_msgs = st.analysis_messages;
  return r;
}

/// The bench's fleet configuration for one shard count: affinity routing,
/// the flag-selected window (scaled by the probe service time) and queue
/// depth, and migration armed at a 4x imbalance.
inline service::FleetOptions fleet_bench_options(
    const service::ServiceOptions& so, const FleetTrace& tr,
    const FleetFlags& flags, int shards) {
  service::FleetOptions fo;
  fo.shards = shards;
  fo.service = so;
  fo.routing = service::RoutingPolicy::Affinity;
  fo.coalesce_window = flags.window_mult * tr.probe_seconds;
  fo.queue_depth = flags.queue_depth;
  fo.migration_threshold = 4.0;
  return fo;
}

}  // namespace slu3d::bench
