// Machine sensitivity: the paper's motivation is that communication
// dominates in the strong-scaling regime, so the 3D algorithm's advantage
// should grow as the network gets relatively slower. Two sweeps:
//  - platform presets (flat Edison-like, 2:1-oversubscribed fat tree,
//    torus-like) — whole *networks*, where the z-reduction and the XY
//    panel broadcasts genuinely contend for shared uplinks and the
//    per-link queueing column shows where the time goes;
//  - scalar alpha/beta multipliers around the base machine's constants —
//    the classic flat what-if, kept for continuity with the paper's
//    framing.
// Reports best-3D over 2D speedup on a planar problem for both.
#include <iostream>

#include "bench_common.hpp"

namespace {

struct PlatformRun {
  double time = 0;
  double link_queue = 0;  ///< total seconds transfers queued behind links
};

PlatformRun run_with(const slu3d::BlockStructure& bs,
                     const slu3d::CsrMatrix& Ap, int Px, int Py, int Pz,
                     const slu3d::sim::Platform& platform) {
  using namespace slu3d;
  const ForestPartition part(bs, Pz);
  const int P = Px * Py * Pz;
  const sim::RunResult res =
      sim::run_ranks(P, platform, [&](sim::Comm& world) {
        auto grid = sim::ProcessGrid3D::create(world, Px, Py, Pz);
        Dist2dFactors F = make_3d_factors(bs, grid, part, Ap);
        factorize_3d(F, grid, part, {});
      });
  return {res.max_clock(), res.total_link_queue_seconds()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slu3d;
  const auto& base = bench::bench_platform(argc, argv);
  const int scale = bench::bench_scale();
  const index_t side = scale == 0 ? 32 : (scale == 1 ? 96 : 160);
  const GridGeometry g{side, side, 1};
  const TestMatrix t{"K2Dsens", grid2d_laplacian(g, Stencil2D::FivePoint), g,
                     true};
  const SeparatorTree tree = bench::order_matrix(t);
  const BlockStructure bs(t.A, tree);
  const CsrMatrix Ap = t.A.permuted_symmetric(tree.perm());

  std::cout << "Platform sensitivity: 3D (2x2x16) vs 2D (8x8) at P=64, planar "
            << side << "x" << side
            << "\n(contended fabrics penalize the z-heavy grids that share "
               "uplinks; Tqueue sums per-link stall time)\n";
  TextTable ptable({"platform", "T_2d(s)", "T_3d(s)", "3D speedup",
                    "Tqueue_2d(s)", "Tqueue_3d(s)"});
  for (const char* name : {"edison", "fattree-2to1", "torus"}) {
    const sim::Platform platform = sim::Platform::preset(name);
    const PlatformRun r2d = run_with(bs, Ap, 8, 8, 1, platform);
    const PlatformRun r3d = run_with(bs, Ap, 2, 2, 16, platform);
    ptable.add_row({name, TextTable::sci(r2d.time), TextTable::sci(r3d.time),
                    TextTable::num(r2d.time / r3d.time, 2) + "x",
                    TextTable::sci(r2d.link_queue),
                    TextTable::sci(r3d.link_queue)});
  }
  ptable.print(std::cout);

  TextTable table({"alpha x", "beta x", "T_2d(s)", "T_3d(s)", "3D speedup"});
  for (double ax : {0.1, 1.0, 10.0}) {
    for (double bx : {0.1, 1.0, 10.0}) {
      sim::MachineModel m = base.machine;
      m.alpha *= ax;
      m.beta *= bx;
      const sim::Platform flat = sim::Platform::flat(m);
      const double t2d = run_with(bs, Ap, 8, 8, 1, flat).time;
      const double t3d = run_with(bs, Ap, 2, 2, 16, flat).time;
      table.add_row({TextTable::num(ax, 1), TextTable::num(bx, 1),
                     TextTable::sci(t2d), TextTable::sci(t3d),
                     TextTable::num(t2d / t3d, 2) + "x"});
    }
  }
  std::cout << "\nScalar sensitivity on the flat wire (base machine of "
            << base.name
            << ")\n(speedup should grow with slower networks — larger alpha/"
               "beta multipliers)\n";
  table.print(std::cout);
  return 0;
}
