// Machine-model sensitivity: the paper's motivation is that communication
// dominates in the strong-scaling regime, so the 3D algorithm's advantage
// should grow as the network gets relatively slower. Sweeps the machine's
// latency (alpha) and inverse bandwidth (beta) around the Edison-like
// defaults and reports best-3D over 2D speedup on a planar problem.
#include <iostream>

#include "bench_common.hpp"

namespace {

slu3d::bench::DistMetrics run_with(const slu3d::BlockStructure& bs,
                                   const slu3d::CsrMatrix& Ap, int Px, int Py,
                                   int Pz, const slu3d::sim::MachineModel& m) {
  using namespace slu3d;
  const ForestPartition part(bs, Pz);
  const int P = Px * Py * Pz;
  const sim::RunResult res = sim::run_ranks(P, m, [&](sim::Comm& world) {
    auto grid = sim::ProcessGrid3D::create(world, Px, Py, Pz);
    Dist2dFactors F = make_3d_factors(bs, grid, part, Ap);
    factorize_3d(F, grid, part, {});
  });
  bench::DistMetrics out;
  out.time = res.max_clock();
  return out;
}

}  // namespace

int main() {
  using namespace slu3d;
  const int scale = bench::bench_scale();
  const index_t side = scale == 0 ? 32 : (scale == 1 ? 96 : 160);
  const GridGeometry g{side, side, 1};
  const TestMatrix t{"K2Dsens", grid2d_laplacian(g, Stencil2D::FivePoint), g,
                     true};
  const SeparatorTree tree = bench::order_matrix(t);
  const BlockStructure bs(t.A, tree);
  const CsrMatrix Ap = t.A.permuted_symmetric(tree.perm());

  const sim::MachineModel base;
  TextTable table({"alpha x", "beta x", "T_2d(s)", "T_3d(s)", "3D speedup"});
  for (double ax : {0.1, 1.0, 10.0}) {
    for (double bx : {0.1, 1.0, 10.0}) {
      sim::MachineModel m = base;
      m.alpha *= ax;
      m.beta *= bx;
      const double t2d = run_with(bs, Ap, 8, 8, 1, m).time;
      const double t3d = run_with(bs, Ap, 2, 2, 16, m).time;
      table.add_row({TextTable::num(ax, 1), TextTable::num(bx, 1),
                     TextTable::sci(t2d), TextTable::sci(t3d),
                     TextTable::num(t2d / t3d, 2) + "x"});
    }
  }
  std::cout << "Machine sensitivity: 3D (2x2x16) vs 2D (8x8) at P=64, planar "
            << side << "x" << side
            << "\n(speedup should grow with slower networks — larger alpha/"
               "beta multipliers)\n";
  table.print(std::cout);
  return 0;
}
