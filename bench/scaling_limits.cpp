// §V-F executed: strong-scaling limits of the 2D baseline vs the 3D
// algorithm. For a fixed planar problem, sweep the total process count
// and report the best achievable simulated time for (a) the best 2D grid
// and (b) the best 3D grid at each P. The paper's claim: the 3D algorithm
// keeps reducing time up to ~16x more processes than 2D.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace slu3d;
  bench::bench_platform(argc, argv);
  const int scale = bench::bench_scale();
  const index_t side = scale == 0 ? 32 : (scale == 1 ? 128 : 256);
  const GridGeometry g{side, side, 1};
  const TestMatrix t{"K2Dscaling", grid2d_laplacian(g, Stencil2D::FivePoint),
                     g, true};
  const SeparatorTree tree = bench::order_matrix(t);
  const BlockStructure bs(t.A, tree);
  const CsrMatrix Ap = t.A.permuted_symmetric(tree.perm());

  std::cout << "Strong-scaling limits (planar " << side << "x" << side
            << ", n = " << t.A.n_rows() << ")\n";
  TextTable table({"P", "best 2D t(s)", "2D vs prev", "best 3D t(s)",
                   "3D cfg", "3D vs prev", "3D/2D speedup"});
  double prev2d = 0, prev3d = 0;
  for (int P : {2, 4, 8, 16, 32, 64, 128, 256}) {
    // Best 2D configuration at this P.
    const auto [p2x, p2y] = bench::square_ish(P);
    const double t2d = bench::run_dist_lu(bs, Ap, p2x, p2y, 1).time;
    // Best 3D configuration: sweep power-of-two Pz.
    double best3d = 1e300;
    std::string cfg;
    for (int Pz = 1; Pz <= 16 && P / Pz >= 1; Pz *= 2) {
      if (P % Pz != 0) continue;
      const auto [px, py] = bench::square_ish(P / Pz);
      const double tt = bench::run_dist_lu(bs, Ap, px, py, Pz).time;
      if (tt < best3d) {
        best3d = tt;
        cfg = std::to_string(px) + "x" + std::to_string(py) + "x" +
              std::to_string(Pz);
      }
    }
    table.add_row(
        {std::to_string(P), TextTable::sci(t2d),
         prev2d > 0 ? TextTable::num(prev2d / t2d, 2) + "x" : "-",
         TextTable::sci(best3d), cfg,
         prev3d > 0 ? TextTable::num(prev3d / best3d, 2) + "x" : "-",
         TextTable::num(t2d / best3d, 2) + "x"});
    prev2d = t2d;
    prev3d = best3d;
  }
  table.print(std::cout);
  std::cout << "('vs prev' < 1.0x marks where strong scaling stops paying "
               "off for that algorithm)\n";
  return 0;
}
