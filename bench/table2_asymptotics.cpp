// Validates Table II / §IV: sweeps the problem size n for planar (2D
// grid) and non-planar (3D grid) model problems, measures per-process
// memory M, communication W, and message count L from executed runs, and
// compares the growth against the analytical model's predictions.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "model/cost_model.hpp"

namespace {

using namespace slu3d;

struct Measured {
  double n = 0;
  double M = 0;  // max per-rank memory, bytes
  double W = 0;  // max per-rank received bytes (fact + red)
  double L = 0;  // max per-rank received messages
};

Measured measure(const TestMatrix& t, int Px, int Py, int Pz) {
  const SeparatorTree tree = bench::order_matrix(t, 16);
  const BlockStructure bs(t.A, tree);
  const CsrMatrix Ap = t.A.permuted_symmetric(tree.perm());
  const ForestPartition part(bs, Pz);
  const int P = Px * Py * Pz;
  std::vector<offset_t> mem(static_cast<std::size_t>(P), 0);
  const auto res = sim::run_ranks(P, bench::platform(), [&](sim::Comm& w) {
    auto grid = sim::ProcessGrid3D::create(w, Px, Py, Pz);
    Dist2dFactors F = make_3d_factors(bs, grid, part, Ap);
    mem[static_cast<std::size_t>(w.rank())] = F.allocated_bytes();
    factorize_3d(F, grid, part, {});
  });
  Measured m;
  m.n = static_cast<double>(t.A.n_rows());
  for (offset_t b : mem) m.M = std::max(m.M, static_cast<double>(b));
  m.W = static_cast<double>(res.max_bytes_received(sim::CommPlane::XY) +
                            res.max_bytes_received(sim::CommPlane::Z));
  double msgs = 0;
  for (const auto& r : res.ranks)
    msgs = std::max(msgs, static_cast<double>(r.messages_received[0] +
                                              r.messages_received[1]));
  m.L = msgs;
  return m;
}

/// log-log growth exponent between consecutive measurements.
double growth(double y1, double y0, double n1, double n0) {
  return std::log(y1 / y0) / std::log(n1 / n0);
}

}  // namespace

int main(int argc, char** argv) {
  slu3d::bench::bench_platform(argc, argv);
  const int Px = 2, Py = 2;

  std::cout << "Table II check — planar model problems (2D grids), P_XY=4\n";
  for (int Pz : {1, 4}) {
    TextTable table({"n", "M(B)", "W(B)", "L(msgs)", "dlogM/dlogn",
                     "dlogW/dlogn", "dlogL/dlogn"});
    Measured prev{};
    for (index_t side : {32, 64, 128}) {
      GridGeometry g{side, side, 1};
      TestMatrix t{"grid", grid2d_laplacian(g, Stencil2D::FivePoint), g, true};
      const Measured m = measure(t, Px, Py, Pz);
      std::vector<std::string> row{
          std::to_string(static_cast<long long>(m.n)),
          TextTable::sci(m.M), TextTable::sci(m.W),
          std::to_string(static_cast<long long>(m.L))};
      if (prev.n > 0) {
        row.push_back(TextTable::num(growth(m.M, prev.M, m.n, prev.n), 2));
        row.push_back(TextTable::num(growth(m.W, prev.W, m.n, prev.n), 2));
        row.push_back(TextTable::num(growth(m.L, prev.L, m.n, prev.n), 2));
      } else {
        row.insert(row.end(), {"-", "-", "-"});
      }
      table.add_row(std::move(row));
      prev = m;
    }
    std::cout << "\nPz = " << Pz
              << "  (model: M ~ n log n / P, W ~ n sqrt(log n) / sqrt(P), "
                 "L ~ n / Pz)\n";
    table.print(std::cout);
  }

  std::cout << "\nTable II check — non-planar model problems (3D grids)\n";
  for (int Pz : {1, 4}) {
    TextTable table({"n", "M(B)", "W(B)", "L(msgs)", "dlogM/dlogn",
                     "dlogW/dlogn"});
    Measured prev{};
    for (index_t side : {8, 12, 16}) {
      GridGeometry g{side, side, side};
      TestMatrix t{"grid3", grid3d_laplacian(g, Stencil3D::SevenPoint), g, false};
      const Measured m = measure(t, Px, Py, Pz);
      std::vector<std::string> row{
          std::to_string(static_cast<long long>(m.n)),
          TextTable::sci(m.M), TextTable::sci(m.W),
          std::to_string(static_cast<long long>(m.L))};
      if (prev.n > 0) {
        row.push_back(TextTable::num(growth(m.M, prev.M, m.n, prev.n), 2));
        row.push_back(TextTable::num(growth(m.W, prev.W, m.n, prev.n), 2));
      } else {
        row.insert(row.end(), {"-", "-"});
      }
      table.add_row(std::move(row));
      prev = m;
    }
    std::cout << "\nPz = " << Pz << "  (model: M, W ~ n^(4/3) scaling)\n";
    table.print(std::cout);
  }

  // Closed-form Table II entries for a reference configuration.
  std::cout << "\nAnalytical Table II at n = 1e6, P = 1024:\n";
  using namespace slu3d::model;
  const double n = 1e6, P = 1024;
  TextTable t2({"algorithm", "problem", "M(words)", "W(words)", "L(msgs)"});
  auto add = [&](const std::string& a, const std::string& p, const CostEstimate& c) {
    t2.add_row({a, p, TextTable::sci(c.memory_words), TextTable::sci(c.comm_words),
                TextTable::sci(c.latency_msgs)});
  };
  add("2D", "planar", planar_2d_alg(n, P));
  add("3D Pz=opt", "planar", planar_3d_alg(n, P, planar_optimal_pz(n)));
  add("2D", "non-planar", nonplanar_2d_alg(n, P));
  add("3D Pz=opt", "non-planar", nonplanar_3d_alg(n, P, nonplanar_optimal_pz()));
  t2.print(std::cout);
  const double w2 = nonplanar_2d_alg(n, P).comm_words;
  const double w3 = nonplanar_3d_alg(n, P, nonplanar_optimal_pz()).comm_words;
  std::cout << "non-planar best-case W reduction: " << TextTable::num(w2 / w3, 2)
            << "x (paper: 2.89x)\n";
  return 0;
}
