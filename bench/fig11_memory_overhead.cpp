// Reproduces Fig. 11: relative memory overhead (%) of the 3D algorithm
// over the 2D baseline, per matrix, for P_z in {2, 4, 8, 16} at fixed
// total P. Planar matrices should stay at tens of percent; non-planar
// (large top separators) grow quickly — ~200% at P_z = 16 for the
// nlpkkt class.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace slu3d;
  const auto suite = paper_test_suite(bench::bench_scale());
  const int P = 64;

  TextTable table({"Name", "Class", "Pz=2", "Pz=4", "Pz=8", "Pz=16"});
  for (const auto& t : suite) {
    const SeparatorTree tree = bench::order_matrix(t);
    const BlockStructure bs(t.A, tree);
    const CsrMatrix Ap = t.A.permuted_symmetric(tree.perm());

    std::vector<std::string> row{t.name, t.planar ? "planar" : "non-planar"};
    const auto base = bench::run_dist_lu(bs, Ap, 8, 8, 1);
    for (int Pz : {2, 4, 8, 16}) {
      const auto [Px, Py] = bench::square_ish(P / Pz);
      const auto m = bench::run_dist_lu(bs, Ap, Px, Py, Pz);
      const double overhead = 100.0 * (static_cast<double>(m.mem_total) /
                                           static_cast<double>(base.mem_total) -
                                       1.0);
      row.push_back(TextTable::num(overhead, 1) + "%");
    }
    table.add_row(std::move(row));
  }
  std::cout << "Fig. 11 — relative memory overhead of 3D over 2D, P=" << P
            << "\n";
  table.print(std::cout);
  return 0;
}
