// Reproduces Fig. 11: relative memory overhead (%) of the 3D algorithm
// over the 2D baseline, per matrix, for P_z in {2, 4, 8, 16} at fixed
// total P. Planar matrices should stay at tens of percent; non-planar
// (large top separators) grow quickly — ~200% at P_z = 16 for the
// nlpkkt class.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace slu3d;
  bench::bench_platform(argc, argv);
  const auto suite = paper_test_suite(bench::bench_scale());
  const int P = 64;

  TextTable table({"Name", "Class", "Pz=2", "Pz=4", "Pz=8", "Pz=16"});
  // The replication that costs this memory is also what the sparse
  // z-reduction packing exploits (replicated ancestor accumulators that
  // stay all-zero); report the W_red volume it eliminates alongside.
  TextTable saved({"Name", "Class", "Pz=2", "Pz=4", "Pz=8", "Pz=16"});
  for (const auto& t : suite) {
    const SeparatorTree tree = bench::order_matrix(t);
    const BlockStructure bs(t.A, tree);
    const CsrMatrix Ap = t.A.permuted_symmetric(tree.perm());

    std::vector<std::string> row{t.name, t.planar ? "planar" : "non-planar"};
    std::vector<std::string> srow = row;
    const auto base = bench::run_dist_lu(bs, Ap, 8, 8, 1);
    for (int Pz : {2, 4, 8, 16}) {
      const auto [Px, Py] = bench::square_ish(P / Pz);
      const auto m = bench::run_dist_lu(bs, Ap, Px, Py, Pz, 8,
                                        PartitionStrategy::Greedy,
                                        pipeline::ZRedPacking::Sparse);
      const double overhead = 100.0 * (static_cast<double>(m.mem_total) /
                                           static_cast<double>(base.mem_total) -
                                       1.0);
      row.push_back(TextTable::num(overhead, 1) + "%");
      const offset_t dense_eq = m.z_bytes_sent + m.zred_saved;
      const double pct = dense_eq > 0
                             ? 100.0 * static_cast<double>(m.zred_saved) /
                                   static_cast<double>(dense_eq)
                             : 0.0;
      srow.push_back(std::to_string(m.zred_saved) + " (" +
                     TextTable::num(pct, 1) + "%)");
    }
    table.add_row(std::move(row));
    saved.add_row(std::move(srow));
  }
  std::cout << "Fig. 11 — relative memory overhead of 3D over 2D, P=" << P
            << "\n";
  table.print(std::cout);
  std::cout << "\nSparse z-reduction: W_red bytes saved (share of "
               "dense-equivalent volume)\n";
  saved.print(std::cout);
  return 0;
}
