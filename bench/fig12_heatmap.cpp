// Reproduces Fig. 12: performance (GFLOP/s under the machine model) over
// the P_XY x P_z plane for a planar and a non-planar matrix, executed up
// to 256 simulated ranks and extrapolated to larger machines with the
// §IV analytical model. Also prints the §V-F best-case speedup (best 3D
// configuration over best 2D configuration).
//
// `--platform SPEC` selects the network the heatmap is executed under
// (preset name or platform file); `--sweep-platforms` runs the heatmap on
// the flat Edison-like machine AND the oversubscribed fat-tree AND the
// torus-like preset, showing where the paper's (P_XY, P_z) sweet spot
// moves once z-reduction and panel broadcasts contend for shared uplinks
// — the what-if axis the paper's flat-machine extrapolation cannot see.
#include <iostream>

#include "bench_common.hpp"
#include "model/cost_model.hpp"

namespace {

bool flag_present(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slu3d;
  const auto& base = bench::bench_platform(argc, argv);
  std::vector<sim::Platform> platforms{base};
  if (flag_present(argc, argv, "--sweep-platforms")) {
    platforms.clear();
    for (const char* name : {"edison", "fattree-2to1", "torus"})
      platforms.push_back(sim::Platform::preset(name));
  }
  const auto suite = paper_test_suite(bench::bench_scale());

  for (const auto& t : suite) {
    if (t.name != "K2D5pt" && t.name != "nlpkkt3d") continue;
    const SeparatorTree tree = bench::order_matrix(t);
    const BlockStructure bs(t.A, tree);
    const CsrMatrix Ap = t.A.permuted_symmetric(tree.perm());
    const double flops = static_cast<double>(bs.total_flops());

    for (const auto& platform : platforms) {
      std::cout << "\n=== " << t.name << " ("
                << (t.planar ? "planar" : "non-planar")
                << "), GFLOP/s (executed) on " << platform.describe()
                << " ===\n";
      const std::vector<int> pxy_values{4, 8, 16, 32};
      const std::vector<int> pz_values{1, 2, 4, 8};

      std::vector<std::string> headers{"Pz \\ PXY"};
      for (int pxy : pxy_values) headers.push_back(std::to_string(pxy));
      TextTable table(headers);

      double best2d = 0, best3d = 0;
      std::string best3d_cfg;
      for (int pz : pz_values) {
        std::vector<std::string> row{std::to_string(pz)};
        for (int pxy : pxy_values) {
          const auto [Px, Py] = bench::square_ish(pxy);
          const auto m = bench::run_dist_lu(
              bs, Ap, Px, Py, pz, /*lookahead=*/8, PartitionStrategy::Greedy,
              pipeline::ZRedPacking::Dense, pipeline::PanelPacking::Dense,
              /*threads=*/0, &platform);
          const double gflops = flops / m.time / 1e9;
          row.push_back(TextTable::num(gflops, 2));
          if (pz == 1) best2d = std::max(best2d, gflops);
          if (gflops > best3d) {
            best3d = gflops;
            best3d_cfg = std::to_string(pxy) + "x" + std::to_string(pz);
          }
        }
        table.add_row(std::move(row));
      }
      table.print(std::cout);
      std::cout << "best 2D: " << TextTable::num(best2d, 2)
                << " GFLOP/s;  best 3D (" << best3d_cfg
                << "): " << TextTable::num(best3d, 2)
                << " GFLOP/s;  best-case speedup: "
                << TextTable::num(best3d / best2d, 2) << "x\n";
    }

    // Model extrapolation to the paper's machine sizes (up to 24k cores),
    // evaluated at the *paper-scale* problem size for this matrix class.
    // The analytical model is flat alpha-beta by construction — that is
    // exactly the blind spot the executed platform sweep above fills — so
    // it uses the base platform's machine constants.
    const double n = t.name == "K2D5pt" ? 16.7e6 : 1.06e6;
    std::cout << "\n--- model extrapolation (" << t.name
              << " at paper n=" << n << "), GFLOP/s ---\n";
    const auto machine = base.machine;
    TextTable ext({"Pz \\ P", "96", "384", "1536", "6144", "24576"});
    for (int pz : {1, 4, 16, 64}) {
      std::vector<std::string> row{std::to_string(pz)};
      for (int P : {96, 384, 1536, 6144, 24576}) {
        if (pz > P / 4) {
          row.push_back("-");
          continue;
        }
        const auto cost = t.planar
                              ? model::planar_3d_alg(n, P, pz)
                              : model::nonplanar_3d_alg(n, P, pz);
        const double mflops = t.planar ? model::planar_flops(n)
                                       : model::nonplanar_flops(n);
        const double seconds = model::predicted_seconds(machine, mflops, P, cost);
        row.push_back(TextTable::num(mflops / seconds / 1e9, 2));
      }
      ext.add_row(std::move(row));
    }
    ext.print(std::cout);
  }
  return 0;
}
