// Reproduces Fig. 9: factorization time of every test matrix for
// P_z in {1, 2, 4, 8, 16} at two machine sizes, normalized to the 2D
// baseline (P_z = 1) at the smaller machine, split into T_scu (Schur
// compute on the critical path) and T_comm (non-overlapped communication
// and synchronization). Paper machines: 96 and 384 ranks; scaled here to
// 64 and 128 simulated ranks.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace slu3d;
  const int threads = bench::bench_threads(argc, argv);
  bench::bench_platform(argc, argv);
  // --panel-packing / --zred-packing select the wire format of the savings
  // re-run (default: the sparse presence-bitmap broadcasts).
  const auto pk = bench::parse_packing_flags(argc, argv,
                                             pipeline::PanelPacking::Sparse,
                                             pipeline::ZRedPacking::Dense);
  const auto suite = paper_test_suite(bench::bench_scale());
  const std::vector<int> machine_sizes{16, 64, 128};
  const std::vector<int> pz_values{1, 2, 4, 8, 16};

  for (const auto& t : suite) {
    const SeparatorTree tree = bench::order_matrix(t);
    const BlockStructure bs(t.A, tree);
    const CsrMatrix Ap = t.A.permuted_symmetric(tree.perm());

    std::cout << "\n=== " << t.name << " (" << (t.planar ? "planar" : "non-planar")
              << ", n=" << t.A.n_rows() << ") ===\n";
    // Normalize everything to the 2D algorithm at P = 64 (the paper
    // normalizes to 2D SuperLU_DIST on 16 nodes).
    const auto base_run = bench::run_dist_lu(bs, Ap, 8, 8, 1, 8,
                                             PartitionStrategy::Greedy,
                                             pipeline::ZRedPacking::Dense,
                                             pipeline::PanelPacking::Dense,
                                             threads);
    const double baseline = base_run.time;
    // The Psaved column re-runs each point with the selected panel packing
    // (sparse presence bitmaps by default, targeted one-sided puts with
    // --panel-packing=targeted) and reports the fraction of XY
    // panel-broadcast payload it eliminates (factors bitwise unchanged).
    TextTable table({"P", "Pz", "PXY", "T/T2d", "T_scu/T2d", "T_comm/T2d",
                     "speedup", "Psaved(%)", "wall_s", "thr"});
    for (int P : machine_sizes) {
      for (int Pz : pz_values) {
        if (P % Pz != 0) continue;
        const auto [Px, Py] = bench::square_ish(P / Pz);
        const auto m = bench::run_dist_lu(bs, Ap, Px, Py, Pz, 8,
                                          PartitionStrategy::Greedy,
                                          pipeline::ZRedPacking::Dense,
                                          pipeline::PanelPacking::Dense,
                                          threads);
        const auto pp = bench::run_dist_lu(bs, Ap, Px, Py, Pz, 8,
                                           PartitionStrategy::Greedy,
                                           pk.zred, pk.panel, threads);
        const double psaved =
            pp.panel_dense > 0
                ? 100.0 * static_cast<double>(pp.panel_saved) /
                      static_cast<double>(pp.panel_dense)
                : 0.0;
        table.add_row({std::to_string(P), std::to_string(Pz),
                       std::to_string(Px) + "x" + std::to_string(Py),
                       TextTable::num(m.time / baseline),
                       TextTable::num(m.t_scu / baseline),
                       TextTable::num(m.t_comm / baseline),
                       TextTable::num(baseline / m.time, 2),
                       TextTable::num(psaved, 1),
                       TextTable::num(m.wall_s, 3),
                       std::to_string(m.threads)});
      }
    }
    table.print(std::cout);
  }
  return 0;
}
