// Request-stream driver for the resident SolverService: mixed traffic of
// new patterns (full analysis), repeated patterns with new values (numeric
// refactorization on the cached structure), and solve-only requests with
// 1..64 right-hand sides. Reports wall-clock throughput, per-request
// *simulated* latency percentiles, the pattern-cache hit rate, and the
// solve-phase messages-per-RHS advantage of batched panels over sequential
// single-RHS solves.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "service/solver_service.hpp"
#include "support/rng.hpp"

namespace {

using namespace slu3d;
using service::ServiceOptions;
using service::SolveRequest;
using service::SolverService;

/// Same sparsity pattern, values scaled by `f` (the service must treat
/// this as a pure refactorization).
CsrMatrix rescaled(const CsrMatrix& A, real_t f) {
  std::vector<real_t> vals(A.values().begin(), A.values().end());
  for (auto& v : vals) v *= f;
  return CsrMatrix::from_raw(
      A.n_rows(), A.n_cols(),
      std::vector<offset_t>(A.row_ptr().begin(), A.row_ptr().end()),
      std::vector<index_t>(A.col_idx().begin(), A.col_idx().end()),
      std::move(vals));
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const int scale = bench::bench_scale();
  // --panel-packing / --zred-packing select the wire formats the resident
  // service factors with (default dense; the numbers are bitwise identical
  // either way, only the simulated communication volume moves).
  const auto pk = bench::parse_packing_flags(argc, argv);
  const index_t g = scale == 0 ? 10 : scale == 1 ? 16 : 24;
  const int rounds = scale == 0 ? 3 : 4;

  // Four distinct sparsity patterns (stencil x geometry).
  const std::vector<CsrMatrix> patterns = {
      grid2d_laplacian(GridGeometry{g, g, 1}, Stencil2D::FivePoint),
      grid2d_laplacian(GridGeometry{g, g, 1}, Stencil2D::NinePoint),
      grid2d_laplacian(GridGeometry{g + 1, g, 1}, Stencil2D::FivePoint),
      grid2d_laplacian(GridGeometry{g, g + 1, 1}, Stencil2D::NinePoint),
  };

  ServiceOptions opt;
  opt.Px = 2;
  opt.Py = 2;
  opt.Pz = 2;
  opt.refinement_steps = 1;
  opt.lu3d.lu2d.packing = pk.panel;
  opt.lu3d.packing = pk.zred;
  SolverService svc(opt);

  std::vector<double> factor_lat, solve_lat;
  long total_requests = 0, total_rhs = 0;
  Rng rng(2026);
  const auto t0 = std::chrono::steady_clock::now();

  // Mixed traffic: every round revisits each pattern with new values
  // (round 0 is all cold analyses, later rounds are all cache hits), then
  // fires a queue of solve-only requests with mixed panel widths.
  for (int round = 0; round < rounds; ++round) {
    for (const CsrMatrix& base : patterns) {
      const CsrMatrix A = rescaled(base, 1.0 + 0.05 * round);
      const auto fr = svc.factor(A);
      factor_lat.push_back(fr.factor_time);
      ++total_requests;

      const auto n = static_cast<std::size_t>(A.n_rows());
      const index_t widths[] = {1, 4, static_cast<index_t>(round % 2 ? 64 : 16)};
      std::vector<std::vector<real_t>> bs, xs;
      std::vector<SolveRequest> queue;
      for (index_t w : widths) {
        bs.emplace_back(n * static_cast<std::size_t>(w));
        for (auto& v : bs.back()) v = rng.uniform(-1, 1);
        xs.emplace_back(bs.back().size());
        queue.push_back({bs.back(), xs.back(), w});
        total_rhs += w;
      }
      for (const service::SolveReport& sr : svc.solve_stream(queue)) {
        solve_lat.push_back(sr.solve_time);
        ++total_requests;
      }
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const auto& st = svc.stats();
  const double hit_rate =
      static_cast<double>(st.cache_hits) /
      static_cast<double>(st.cache_hits + st.analyses);

  std::cout << "=== SolverService request stream (grid " << g << "x" << g
            << ", " << rounds << " rounds, 4 patterns) ===\n";
  TextTable summary({"metric", "value"});
  summary.add_row({"requests", std::to_string(total_requests)});
  summary.add_row({"rhs columns", std::to_string(total_rhs)});
  summary.add_row({"wall seconds", TextTable::num(wall, 2)});
  summary.add_row({"requests/sec (wall)",
                   TextTable::num(static_cast<double>(total_requests) / wall, 1)});
  summary.add_row({"analyses", std::to_string(st.analyses)});
  summary.add_row({"refactorizations", std::to_string(st.refactorizations)});
  summary.add_row({"cache hit rate", TextTable::num(hit_rate, 3)});
  summary.print(std::cout);

  TextTable lat({"phase", "p50(sim s)", "p90(sim s)", "p99(sim s)"});
  lat.add_row({"factor", TextTable::num(percentile(factor_lat, 0.50), 6),
               TextTable::num(percentile(factor_lat, 0.90), 6),
               TextTable::num(percentile(factor_lat, 0.99), 6)});
  lat.add_row({"solve", TextTable::num(percentile(solve_lat, 0.50), 6),
               TextTable::num(percentile(solve_lat, 0.90), 6),
               TextTable::num(percentile(solve_lat, 0.99), 6)});
  lat.print(std::cout);

  // Batched-panel payoff: solve-phase messages per RHS for 16 sequential
  // single-RHS requests vs one nrhs = 16 panel on the resident operator.
  {
    const auto n = static_cast<std::size_t>(patterns.back().n_rows());
    svc.factor(patterns.back());
    std::vector<real_t> B(n * 16), X(n * 16);
    for (auto& v : B) v = rng.uniform(-1, 1);

    std::vector<SolveRequest> singles;
    for (int j = 0; j < 16; ++j)
      singles.push_back({std::span<const real_t>(B).subspan(
                             static_cast<std::size_t>(j) * n, n),
                         std::span<real_t>(X).subspan(
                             static_cast<std::size_t>(j) * n, n),
                         1});
    offset_t msg_seq = 0;
    double lat_seq = 0;
    for (const service::SolveReport& r : svc.solve_stream(singles)) {
      msg_seq += r.msg_solve_xy + r.msg_solve_z;
      lat_seq += r.solve_time;
    }
    const service::SolveReport batch = svc.solve({B, X, 16});
    const offset_t msg_batch = batch.msg_solve_xy + batch.msg_solve_z;

    TextTable cmp({"schedule", "msgs", "msgs/RHS", "sim latency (s)"});
    cmp.add_row({"16 x nrhs=1", std::to_string(msg_seq),
                 TextTable::num(static_cast<double>(msg_seq) / 16.0, 1),
                 TextTable::num(lat_seq, 6)});
    cmp.add_row({"1 x nrhs=16", std::to_string(msg_batch),
                 TextTable::num(static_cast<double>(msg_batch) / 16.0, 1),
                 TextTable::num(batch.solve_time, 6)});
    cmp.print(std::cout);
    std::cout << "batched panel sends "
              << TextTable::num(
                     static_cast<double>(msg_seq) /
                         static_cast<double>(std::max<offset_t>(msg_batch, 1)),
                     1)
              << "x fewer solve-phase messages per RHS\n";
  }
  return 0;
}
