// Open-loop load generator for the sharded SolverFleet: one seeded trace
// of Poisson-scheduled mixed traffic (six patterns with a skewed
// popularity mix, values-version bumps, panel widths 1/4/16, eight
// tenants) replayed bit-identically against shard counts {1, 2, 4, 8}.
// The arrival rate is calibrated to 3x one shard's hot-request capacity,
// so the single-shard run saturates its admission queue and sheds while
// the wider fleets absorb the same trace.
//
//   --shards N            pin one shard count (default: sweep 1, 2, 4, 8)
//   --coalesce-window W   batch window, in probe service times (default 1)
//   --queue-depth N       per-shard admission bound (default 16)
//   --seed N              traffic trace seed (default 2026)
//   --panel-packing / --zred-packing   wire formats the shards factor with
//   --cold-only [--out F] skip the traffic replay; sweep the cold-start
//                         (cache-miss) critical path over shards x P x
//                         analysis mode and write the CSV (default
//                         results/cold_start.csv) — the acceptance
//                         artifact for the distributed analysis phase
//
// Reports per shard count: simulated latency p50/p90/p99 of completed
// requests, wall-clock throughput, fleet cache hit rate, coalesce rate,
// shed rate, and cache-warm migrations. Shard misses run their analysis
// inside the simulated machine (AnalysisMode::Distributed), so cold
// starts pay their ordering + symbolic cost on the simulated clock.
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "fleet_common.hpp"

namespace {

using namespace slu3d;

// Cold-start sweep: every (shards, P, analysis mode) point factors
// `shards` *distinct* patterns cold, one per shard service — the bill a
// fleet pays before any cache hit can exist. The fleet-level cold
// critical path is the slowest shard (they miss concurrently); the
// analysis split columns isolate the phase the Distributed mode moves
// onto the ranks. Host rows keep the legacy behavior (analysis on host
// wall time, zero simulated split) as the reference.
void run_cold_sweep(service::ServiceOptions so, const std::string& out) {
  const index_t g = bench::bench_scale() == 0 ? 32 : 40;
  struct GridShape {
    int Px, Py, Pz;
  };
  const GridShape shapes[] = {{2, 2, 2}, {4, 2, 2}, {4, 4, 4}};
  struct Mode {
    const char* name;
    AnalysisMode mode;
  };
  const Mode modes[] = {{"host", AnalysisMode::Host},
                        {"seqsim", AnalysisMode::SequentialSim},
                        {"dist", AnalysisMode::Distributed}};

  so.nd.leaf_size = 8;
  so.nd.algorithm = NdAlgorithm::Multilevel;

  std::filesystem::create_directories(
      std::filesystem::path(out).parent_path().empty()
          ? "."
          : std::filesystem::path(out).parent_path().string());
  std::ofstream f(out);
  f << "shards,P,Px,Py,Pz,mode,n,cold_path_s,t_analysis_s,"
       "w_analysis_bytes,msg_analysis,analysis_frac\n";
  TextTable tab({"shards", "P", "mode", "cold path(sim s)", "t_analysis(s)",
                 "analysis frac"});
  for (const GridShape& gs : shapes) {
    const int P = gs.Px * gs.Py * gs.Pz;
    for (const int shards : {1, 2, 4}) {
      for (const Mode& m : modes) {
        so.Px = gs.Px;
        so.Py = gs.Py;
        so.Pz = gs.Pz;
        so.analysis = m.mode;
        double cold_path = 0, t_analysis = 0;
        offset_t w_analysis = 0, msg_analysis = 0;
        index_t n = 0;
        for (int s = 0; s < shards; ++s) {
          // Distinct pattern per shard, as affinity routing would spread
          // a cold mixed workload.
          const CsrMatrix A = grid2d_laplacian(
              {g + static_cast<index_t>(s), g, 1}, Stencil2D::FivePoint);
          n = A.n_rows();
          service::SolverService svc(so);
          const service::FactorReport fr = svc.factor(A);
          cold_path = std::max(cold_path, fr.factor_time);
          t_analysis = std::max(t_analysis, fr.t_analysis);
          w_analysis = std::max(w_analysis, fr.w_analysis);
          msg_analysis += fr.msg_analysis;
        }
        const double frac = cold_path > 0 ? t_analysis / cold_path : 0;
        f << shards << ',' << P << ',' << gs.Px << ',' << gs.Py << ','
          << gs.Pz << ',' << m.name << ',' << n << ',' << cold_path << ','
          << t_analysis << ',' << w_analysis << ',' << msg_analysis << ','
          << frac << '\n';
        tab.add_row({std::to_string(shards), std::to_string(P), m.name,
                     TextTable::num(cold_path, 6), TextTable::num(t_analysis, 6),
                     TextTable::num(frac, 3)});
      }
    }
  }
  tab.print(std::cout);
  std::cout << "wrote " << out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slu3d;

  const int scale = bench::bench_scale();
  bench::bench_platform(argc, argv);
  const auto pk = bench::parse_packing_flags(argc, argv);
  const std::uint64_t seed = bench::bench_seed(argc, argv);
  const bench::FleetFlags flags = bench::parse_fleet_flags(argc, argv);

  bool cold_only = false;
  std::string cold_out = "results/cold_start.csv";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cold-only") == 0)
      cold_only = true;
    else if (std::strncmp(argv[i], "--out=", 6) == 0)
      cold_out = argv[i] + 6;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      cold_out = argv[++i];
  }

  service::ServiceOptions so;
  so.platform = bench::platform();
  so.Px = 2;
  so.Py = 2;
  so.Pz = 2;
  so.refinement_steps = 1;
  so.lu3d.lu2d.packing = pk.panel;
  so.lu3d.packing = pk.zred;
  // Cold misses pay their analysis on the simulated clock, distributed
  // over the shard's ranks — the honest cold-start accounting.
  so.analysis = AnalysisMode::Distributed;

  if (cold_only) {
    run_cold_sweep(so, cold_out);
    return 0;
  }

  const bench::FleetTrace trace = bench::make_fleet_trace(so, scale, seed);

  std::cout << "=== SolverFleet open-loop traffic (seed " << seed << ", "
            << trace.items.size() << " requests, " << trace.patterns
            << " patterns, 8 tenants) ===\n";
  TextTable setup({"metric", "value"});
  setup.add_row({"probe service time (sim s)",
                 TextTable::num(trace.probe_seconds, 6)});
  setup.add_row({"arrival rate (req/sim s)", TextTable::num(trace.rate, 1)});
  setup.add_row({"coalesce window (sim s)",
                 TextTable::num(flags.window_mult * trace.probe_seconds, 6)});
  setup.add_row({"queue depth / shard", std::to_string(flags.queue_depth)});
  setup.print(std::cout);

  std::vector<int> sweep;
  if (flags.shards > 0)
    sweep.push_back(flags.shards);
  else
    sweep = {1, 2, 4, 8};

  TextTable out({"shards", "done", "shed", "p50(sim s)", "p90(sim s)",
                 "p99(sim s)", "req/s(wall)", "hit", "coalesce", "shed rate",
                 "migr"});
  for (const int shards : sweep) {
    const bench::FleetRunResult r = bench::run_fleet_trace(
        trace, bench::fleet_bench_options(so, trace, flags, shards));
    out.add_row({std::to_string(r.shards), std::to_string(r.completed),
                 std::to_string(r.shed), TextTable::num(r.p50, 6),
                 TextTable::num(r.p90, 6), TextTable::num(r.p99, 6),
                 TextTable::num(r.wall_rps, 1), TextTable::num(r.hit_rate, 3),
                 TextTable::num(r.coalesce_rate, 3),
                 TextTable::num(r.shed_rate, 3),
                 std::to_string(r.migrations)});
  }
  out.print(std::cout);
  std::cout << "same seed => same trace: rerun with --shards/--queue-depth/"
               "--coalesce-window to move only the fleet, never the load\n";
  return 0;
}
