// Open-loop load generator for the sharded SolverFleet: one seeded trace
// of Poisson-scheduled mixed traffic (six patterns with a skewed
// popularity mix, values-version bumps, panel widths 1/4/16, eight
// tenants) replayed bit-identically against shard counts {1, 2, 4, 8}.
// The arrival rate is calibrated to 3x one shard's hot-request capacity,
// so the single-shard run saturates its admission queue and sheds while
// the wider fleets absorb the same trace.
//
//   --shards N            pin one shard count (default: sweep 1, 2, 4, 8)
//   --coalesce-window W   batch window, in probe service times (default 1)
//   --queue-depth N       per-shard admission bound (default 16)
//   --seed N              traffic trace seed (default 2026)
//   --panel-packing / --zred-packing   wire formats the shards factor with
//
// Reports per shard count: simulated latency p50/p90/p99 of completed
// requests, wall-clock throughput, fleet cache hit rate, coalesce rate,
// shed rate, and cache-warm migrations.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "fleet_common.hpp"

int main(int argc, char** argv) {
  using namespace slu3d;

  const int scale = bench::bench_scale();
  bench::bench_platform(argc, argv);
  const auto pk = bench::parse_packing_flags(argc, argv);
  const std::uint64_t seed = bench::bench_seed(argc, argv);
  const bench::FleetFlags flags = bench::parse_fleet_flags(argc, argv);

  service::ServiceOptions so;
  so.platform = bench::platform();
  so.Px = 2;
  so.Py = 2;
  so.Pz = 2;
  so.refinement_steps = 1;
  so.lu3d.lu2d.packing = pk.panel;
  so.lu3d.packing = pk.zred;

  const bench::FleetTrace trace = bench::make_fleet_trace(so, scale, seed);

  std::cout << "=== SolverFleet open-loop traffic (seed " << seed << ", "
            << trace.items.size() << " requests, " << trace.patterns
            << " patterns, 8 tenants) ===\n";
  TextTable setup({"metric", "value"});
  setup.add_row({"probe service time (sim s)",
                 TextTable::num(trace.probe_seconds, 6)});
  setup.add_row({"arrival rate (req/sim s)", TextTable::num(trace.rate, 1)});
  setup.add_row({"coalesce window (sim s)",
                 TextTable::num(flags.window_mult * trace.probe_seconds, 6)});
  setup.add_row({"queue depth / shard", std::to_string(flags.queue_depth)});
  setup.print(std::cout);

  std::vector<int> sweep;
  if (flags.shards > 0)
    sweep.push_back(flags.shards);
  else
    sweep = {1, 2, 4, 8};

  TextTable out({"shards", "done", "shed", "p50(sim s)", "p90(sim s)",
                 "p99(sim s)", "req/s(wall)", "hit", "coalesce", "shed rate",
                 "migr"});
  for (const int shards : sweep) {
    const bench::FleetRunResult r = bench::run_fleet_trace(
        trace, bench::fleet_bench_options(so, trace, flags, shards));
    out.add_row({std::to_string(r.shards), std::to_string(r.completed),
                 std::to_string(r.shed), TextTable::num(r.p50, 6),
                 TextTable::num(r.p90, 6), TextTable::num(r.p99, 6),
                 TextTable::num(r.wall_rps, 1), TextTable::num(r.hit_rate, 3),
                 TextTable::num(r.coalesce_rate, 3),
                 TextTable::num(r.shed_rate, 3),
                 std::to_string(r.migrations)});
  }
  out.print(std::cout);
  std::cout << "same seed => same trace: rerun with --shards/--queue-depth/"
               "--coalesce-window to move only the fleet, never the load\n";
  return 0;
}
