// Shared harness for the per-table / per-figure benchmark binaries. Each
// experiment runs the *distributed algorithms for real* inside the simmpi
// runtime and reports:
//   time    — simulated critical-path seconds (max logical clock),
//   t_scu   — Schur-complement compute seconds on the critical-path rank,
//   t_comm  — non-overlapped communication + synchronization on that rank,
//   w_fact  — max per-rank bytes received in the XY plane (paper W_fact),
//   w_red   — max per-rank bytes received along Z (paper W_red),
//   memory  — numeric block bytes, total and max per rank.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "lu3d/factor3d.hpp"
#include "order/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "support/table.hpp"
#include "threads/thread_pool.hpp"

namespace slu3d::bench {

struct DistMetrics {
  double time = 0;
  double t_scu = 0;
  double t_comm = 0;
  offset_t w_fact = 0;
  offset_t w_red = 0;
  offset_t mem_total = 0;
  offset_t mem_max = 0;
  /// Sparse z-reduction savings (zero under ZRedPacking::Dense): W_red
  /// bytes avoided across all ranks, blocks skipped / considered, and the
  /// actual total bytes sent along Z (so saved / (saved + sent) is the
  /// fraction of dense-equivalent reduction volume eliminated).
  offset_t zred_saved = 0;
  offset_t zred_blocks_skipped = 0;
  offset_t zred_blocks_total = 0;
  offset_t z_bytes_sent = 0;
  /// Sparse panel-packing savings (zero under PanelPacking::Dense): root
  /// payload bytes the XY panel broadcasts avoided (net of bitmap frames),
  /// the dense-equivalent payload those broadcasts would have carried, and
  /// the all-zero per-entry data messages elided entirely. saved / dense
  /// is the fraction of panel payload eliminated (fig10's Psaved column).
  offset_t panel_saved = 0;
  offset_t panel_dense = 0;
  offset_t panel_saved_msgs = 0;
  offset_t xy_bytes_sent = 0;
  /// Total seconds transfers spent queued behind busy platform links
  /// (zero means the run never contended for a wire; grows with shared
  /// uplinks on hierarchical platforms).
  double link_queue_s = 0;
  /// Host wall-clock seconds of the whole run_ranks call and the per-rank
  /// compute-thread count it ran with. Unlike every simulated counter
  /// above (bitwise independent of threading), wall_s measures the real
  /// machine — it is the column the thread-pool speedups show up in.
  double wall_s = 0;
  int threads = 1;
};

/// Parses `--threads N` / `--threads=N` from argv (0 = SLU3D_THREADS env or
/// 1); every bench driver forwards the result into run_dist_lu / the
/// kernel pools so speedup sweeps don't need env juggling.
inline int bench_threads(int argc, char** argv) {
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--threads=", 10) == 0)
      threads = std::atoi(a + 10);
    else if (std::strcmp(a, "--threads") == 0 && i + 1 < argc)
      threads = std::atoi(argv[++i]);
  }
  return threads;
}

/// Wire-format selection shared by the bench drivers: `--panel-packing` and
/// `--zred-packing`, each accepting dense | sparse | targeted (both the
/// separate-argument and `=value` spellings). Drivers pass their own
/// defaults, so e.g. fig9 keeps measuring sparse savings when no flag is
/// given while a one-flag rerun measures the targeted one-sided wire.
struct PackingFlags {
  pipeline::PanelPacking panel = pipeline::PanelPacking::Dense;
  pipeline::ZRedPacking zred = pipeline::ZRedPacking::Dense;
};

inline PackingFlags parse_packing_flags(
    int argc, char** argv,
    pipeline::PanelPacking def_panel = pipeline::PanelPacking::Dense,
    pipeline::ZRedPacking def_zred = pipeline::ZRedPacking::Dense) {
  PackingFlags f{def_panel, def_zred};
  auto parse = [](const char* v, const char* flag) -> int {
    if (std::strcmp(v, "dense") == 0) return 0;
    if (std::strcmp(v, "sparse") == 0) return 1;
    if (std::strcmp(v, "targeted") == 0) return 2;
    std::fprintf(stderr, "%s: expected dense|sparse|targeted, got '%s'\n",
                 flag, v);
    std::exit(2);
  };
  auto set_panel = [&](const char* v) {
    const int k = parse(v, "--panel-packing");
    f.panel = k == 0   ? pipeline::PanelPacking::Dense
              : k == 1 ? pipeline::PanelPacking::Sparse
                       : pipeline::PanelPacking::Targeted;
  };
  auto set_zred = [&](const char* v) {
    const int k = parse(v, "--zred-packing");
    f.zred = k == 0   ? pipeline::ZRedPacking::Dense
             : k == 1 ? pipeline::ZRedPacking::Sparse
                      : pipeline::ZRedPacking::Targeted;
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--panel-packing=", 16) == 0)
      set_panel(a + 16);
    else if (std::strcmp(a, "--panel-packing") == 0 && i + 1 < argc)
      set_panel(argv[++i]);
    else if (std::strncmp(a, "--zred-packing=", 15) == 0)
      set_zred(a + 15);
    else if (std::strcmp(a, "--zred-packing") == 0 && i + 1 < argc)
      set_zred(argv[++i]);
  }
  return f;
}

/// Parses `--seed N` / `--seed=N` from argv. One seed drives the whole
/// traffic trace of the fleet bench: arrivals, pattern mix, values-version
/// bumps, panel widths, and right-hand sides all derive from it, so a
/// `--shards` sweep replays the identical workload per configuration. The
/// documented default is 2026.
inline std::uint64_t bench_seed(int argc, char** argv,
                                std::uint64_t def = 2026) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--seed=", 7) == 0)
      def = std::strtoull(a + 7, nullptr, 10);
    else if (std::strcmp(a, "--seed") == 0 && i + 1 < argc)
      def = std::strtoull(argv[++i], nullptr, 10);
  }
  return def;
}

/// Fleet load-generator knobs: `--shards N` pins one shard count (0 keeps
/// the default {1, 2, 4, 8} sweep), `--coalesce-window W` sets the batch
/// window in units of the probe request service time (simulated seconds
/// vary with the machine model, service times don't lie about ratios), and
/// `--queue-depth N` bounds each shard's admission queue.
struct FleetFlags {
  int shards = 0;
  double window_mult = 1.0;
  std::size_t queue_depth = 16;
};

inline FleetFlags parse_fleet_flags(int argc, char** argv) {
  FleetFlags f;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--shards=", 9) == 0)
      f.shards = std::atoi(a + 9);
    else if (std::strcmp(a, "--shards") == 0 && i + 1 < argc)
      f.shards = std::atoi(argv[++i]);
    else if (std::strncmp(a, "--coalesce-window=", 18) == 0)
      f.window_mult = std::atof(a + 18);
    else if (std::strcmp(a, "--coalesce-window") == 0 && i + 1 < argc)
      f.window_mult = std::atof(argv[++i]);
    else if (std::strncmp(a, "--queue-depth=", 14) == 0)
      f.queue_depth = static_cast<std::size_t>(std::atoi(a + 14));
    else if (std::strcmp(a, "--queue-depth") == 0 && i + 1 < argc)
      f.queue_depth = static_cast<std::size_t>(std::atoi(argv[++i]));
  }
  return f;
}

/// The ambient platform every bench charges against. Defaults to the
/// Edison-like flat preset (the historical hardcoded machine model);
/// `bench_platform(argc, argv)` swaps it for whatever `--platform` names.
/// Mutable process-global on purpose: the bench mains are single-threaded
/// at flag-parse time, and threading a platform through every helper
/// signature would churn all drivers for no isolation benefit.
inline sim::Platform& platform_storage() {
  static sim::Platform p = sim::Platform::preset("edison");
  return p;
}

inline const sim::Platform& platform() { return platform_storage(); }

/// Parses `--platform SPEC` / `--platform=SPEC` (a preset name — edison |
/// flat | fattree-2to1 | torus — or a path to a platform file), installs
/// it as the ambient bench platform, and returns it. Every driver calls
/// this from main(), so one flag spelling works across the whole bench/
/// directory; no flag keeps the Edison-like default.
inline const sim::Platform& bench_platform(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const char* spec = nullptr;
    if (std::strncmp(a, "--platform=", 11) == 0)
      spec = a + 11;
    else if (std::strcmp(a, "--platform") == 0 && i + 1 < argc)
      spec = argv[++i];
    if (spec) platform_storage() = sim::Platform::load(spec);
  }
  return platform();
}

/// Runs the 3D algorithm (Pz == 1 gives exactly the 2D baseline schedule)
/// on a Px x Py x Pz grid and collects the metrics above. Charges against
/// `platform` when given, else the ambient bench platform.
inline DistMetrics run_dist_lu(const BlockStructure& bs, const CsrMatrix& Ap,
                               int Px, int Py, int Pz, int lookahead = 8,
                               PartitionStrategy strategy = PartitionStrategy::Greedy,
                               pipeline::ZRedPacking packing = pipeline::ZRedPacking::Dense,
                               pipeline::PanelPacking panel_packing =
                                   pipeline::PanelPacking::Dense,
                               int threads = 0,
                               const sim::Platform* platform = nullptr) {
  const ForestPartition part(bs, Pz, strategy);
  const int P = Px * Py * Pz;
  std::vector<offset_t> mem(static_cast<std::size_t>(P), 0);
  const auto wall0 = std::chrono::steady_clock::now();
  const sim::RunResult res = sim::run_ranks(
      P, platform != nullptr ? *platform : bench::platform(),
      [&](sim::Comm& world) {
        auto grid = sim::ProcessGrid3D::create(world, Px, Py, Pz);
        Dist2dFactors F = make_3d_factors(bs, grid, part, Ap);
        mem[static_cast<std::size_t>(world.rank())] = F.allocated_bytes();
        Lu3dOptions opt;
        opt.lu2d.lookahead = lookahead;
        opt.lu2d.packing = panel_packing;
        opt.lu2d.threads = threads;
        opt.packing = packing;
        factorize_3d(F, grid, part, opt);
      });
  const auto wall1 = std::chrono::steady_clock::now();

  DistMetrics m;
  m.wall_s = std::chrono::duration<double>(wall1 - wall0).count();
  m.threads = threads::resolve_threads(threads);
  m.time = res.max_clock();
  // Critical-path rank: the one with the largest final clock.
  const sim::RankStats* crit = &res.ranks.front();
  for (const auto& r : res.ranks)
    if (r.clock > crit->clock) crit = &r;
  m.t_scu = crit->compute_seconds[static_cast<int>(sim::ComputeKind::SchurUpdate)];
  m.t_comm = crit->comm_seconds();
  m.w_fact = res.max_bytes_received(sim::CommPlane::XY);
  m.w_red = res.max_bytes_received(sim::CommPlane::Z);
  m.zred_saved = res.total_zred_bytes_saved();
  m.zred_blocks_skipped = res.total_zred_blocks_skipped();
  m.zred_blocks_total = res.total_zred_blocks_total();
  m.z_bytes_sent = res.total_bytes_sent(sim::CommPlane::Z);
  m.panel_saved = res.total_panel_saved_bytes();
  m.panel_dense = res.total_panel_dense_bytes();
  m.panel_saved_msgs = res.total_panel_saved_msgs();
  m.xy_bytes_sent = res.total_bytes_sent(sim::CommPlane::XY);
  m.link_queue_s = res.total_link_queue_seconds();
  for (offset_t b : mem) {
    m.mem_total += b;
    m.mem_max = std::max(m.mem_max, b);
  }
  return m;
}

/// Ordering used everywhere: exact geometric ND when the generator left a
/// grid geometry, general BFS dissection otherwise.
inline SeparatorTree order_matrix(const TestMatrix& t, index_t leaf_size = 32) {
  if (t.geom.nx > 0 && t.geom.n() == t.A.n_rows())
    return geometric_nd(t.geom, {.leaf_size = leaf_size});
  return nested_dissection(t.A, {.leaf_size = leaf_size});
}

/// Benchmark problem scale: 0 (tiny) to 2 (large), from SLU3D_SCALE.
inline int bench_scale() {
  if (const char* s = std::getenv("SLU3D_SCALE")) return std::atoi(s);
  return 1;
}

/// Splits P into the most balanced Px x Py with Px <= Py.
inline std::pair<int, int> square_ish(int P) {
  int best = 1;
  for (int d = 1; d * d <= P; ++d)
    if (P % d == 0) best = d;
  return {best, P / best};
}

}  // namespace slu3d::bench
