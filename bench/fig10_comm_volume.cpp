// Reproduces Fig. 10: per-process communication volume (bytes) on the
// critical path, split into W_fact (2D-grid factorization traffic) and
// W_red (ancestor-reduction traffic along z), for one planar and one
// non-planar matrix at two machine sizes and P_z in {1, 2, 4, 8, 16}.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace slu3d;
  bench::bench_platform(argc, argv);
  // --panel-packing / --zred-packing swap the wire formats of the Zsaved /
  // Psaved columns (default: sparse presence-bitmap packing on both); the
  // Tsaved columns always measure the targeted one-sided wire.
  const auto pk = bench::parse_packing_flags(argc, argv,
                                             pipeline::PanelPacking::Sparse,
                                             pipeline::ZRedPacking::Sparse);
  const auto suite = paper_test_suite(bench::bench_scale());

  for (const auto& t : suite) {
    if (t.name != "K2D5pt" && t.name != "nlpkkt3d") continue;
    const SeparatorTree tree = bench::order_matrix(t);
    const BlockStructure bs(t.A, tree);
    const CsrMatrix Ap = t.A.permuted_symmetric(tree.perm());

    std::cout << "\n=== " << t.name << " (" << (t.planar ? "planar" : "non-planar")
              << ") ===\n";
    // Dense columns reproduce the paper's W_fact/W_red; the Zsaved columns
    // re-run the reduction with the selected zred packing (sparse by
    // default), the Psaved columns the XY panel broadcasts with the
    // selected panel packing, and the Tsaved columns re-run both planes
    // with the targeted one-sided wire (footprint puts on XY, scatter-
    // accumulate along Z) and report the volume each format eliminates
    // (numerics unchanged every way — see tests/test_comm_equivalence.cpp).
    TextTable table({"P", "Pz", "W_fact(B)", "W_red(B)", "W_total(B)",
                     "vs 2D", "Zsaved(B)", "Zsaved(%)", "Psaved(B)",
                     "Psaved(%)", "Tsaved(B)", "Tsaved(%)", "TZsaved(%)"});
    for (int P : {64, 128}) {
      offset_t w2d = 0;
      for (int Pz : {1, 2, 4, 8, 16}) {
        const auto [Px, Py] = bench::square_ish(P / Pz);
        const auto m = bench::run_dist_lu(bs, Ap, Px, Py, Pz);
        const auto sp = bench::run_dist_lu(bs, Ap, Px, Py, Pz, 8,
                                           PartitionStrategy::Greedy,
                                           pk.zred);
        const auto pp = bench::run_dist_lu(bs, Ap, Px, Py, Pz, 8,
                                           PartitionStrategy::Greedy,
                                           pipeline::ZRedPacking::Dense,
                                           pk.panel);
        const auto tg = bench::run_dist_lu(bs, Ap, Px, Py, Pz, 8,
                                           PartitionStrategy::Greedy,
                                           pipeline::ZRedPacking::Targeted,
                                           pipeline::PanelPacking::Targeted);
        const offset_t total = m.w_fact + m.w_red;
        if (Pz == 1) w2d = total;
        auto pct = [](offset_t saved, offset_t dense_eq) {
          return dense_eq > 0 ? 100.0 * static_cast<double>(saved) /
                                    static_cast<double>(dense_eq)
                              : 0.0;
        };
        const offset_t zdense = sp.z_bytes_sent + sp.zred_saved;
        const offset_t tzdense = tg.z_bytes_sent + tg.zred_saved;
        table.add_row({std::to_string(P), std::to_string(Pz),
                       std::to_string(m.w_fact), std::to_string(m.w_red),
                       std::to_string(total),
                       TextTable::num(static_cast<double>(w2d) /
                                      static_cast<double>(total), 2) + "x",
                       std::to_string(sp.zred_saved),
                       TextTable::num(pct(sp.zred_saved, zdense), 1) + "%",
                       std::to_string(pp.panel_saved),
                       TextTable::num(pct(pp.panel_saved, pp.panel_dense), 1) +
                           "%",
                       std::to_string(tg.panel_saved),
                       TextTable::num(pct(tg.panel_saved, tg.panel_dense), 1) +
                           "%",
                       TextTable::num(pct(tg.zred_saved, tzdense), 1) + "%"});
      }
    }
    table.print(std::cout);
  }
  return 0;
}
