// Reproduces Fig. 10: per-process communication volume (bytes) on the
// critical path, split into W_fact (2D-grid factorization traffic) and
// W_red (ancestor-reduction traffic along z), for one planar and one
// non-planar matrix at two machine sizes and P_z in {1, 2, 4, 8, 16}.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace slu3d;
  const auto suite = paper_test_suite(bench::bench_scale());

  for (const auto& t : suite) {
    if (t.name != "K2D5pt" && t.name != "nlpkkt3d") continue;
    const SeparatorTree tree = bench::order_matrix(t);
    const BlockStructure bs(t.A, tree);
    const CsrMatrix Ap = t.A.permuted_symmetric(tree.perm());

    std::cout << "\n=== " << t.name << " (" << (t.planar ? "planar" : "non-planar")
              << ") ===\n";
    // Dense columns reproduce the paper's W_fact/W_red; the Zsaved columns
    // re-run the reduction with ZRedPacking::Sparse, the Psaved columns the
    // XY panel broadcasts with PanelPacking::Sparse, and report the volume
    // each presence-bitmap packing eliminates (numerics unchanged either
    // way — see tests/test_comm_equivalence.cpp).
    TextTable table({"P", "Pz", "W_fact(B)", "W_red(B)", "W_total(B)",
                     "vs 2D", "Zsaved(B)", "Zsaved(%)", "Psaved(B)",
                     "Psaved(%)"});
    for (int P : {64, 128}) {
      offset_t w2d = 0;
      for (int Pz : {1, 2, 4, 8, 16}) {
        const auto [Px, Py] = bench::square_ish(P / Pz);
        const auto m = bench::run_dist_lu(bs, Ap, Px, Py, Pz);
        const auto sp = bench::run_dist_lu(bs, Ap, Px, Py, Pz, 8,
                                           PartitionStrategy::Greedy,
                                           pipeline::ZRedPacking::Sparse);
        const auto pp = bench::run_dist_lu(bs, Ap, Px, Py, Pz, 8,
                                           PartitionStrategy::Greedy,
                                           pipeline::ZRedPacking::Dense,
                                           pipeline::PanelPacking::Sparse);
        const offset_t total = m.w_fact + m.w_red;
        if (Pz == 1) w2d = total;
        const offset_t dense_eq = sp.z_bytes_sent + sp.zred_saved;
        const double pct = dense_eq > 0
                               ? 100.0 * static_cast<double>(sp.zred_saved) /
                                     static_cast<double>(dense_eq)
                               : 0.0;
        const double ppct = pp.panel_dense > 0
                                ? 100.0 * static_cast<double>(pp.panel_saved) /
                                      static_cast<double>(pp.panel_dense)
                                : 0.0;
        table.add_row({std::to_string(P), std::to_string(Pz),
                       std::to_string(m.w_fact), std::to_string(m.w_red),
                       std::to_string(total),
                       TextTable::num(static_cast<double>(w2d) /
                                      static_cast<double>(total), 2) + "x",
                       std::to_string(sp.zred_saved),
                       TextTable::num(pct, 1) + "%",
                       std::to_string(pp.panel_saved),
                       TextTable::num(ppct, 1) + "%"});
      }
    }
    table.print(std::cout);
  }
  return 0;
}
