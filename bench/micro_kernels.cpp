// google-benchmark microbenchmarks for the dense kernel substrate (the
// BLAS replacement): GETRF, both TRSM variants, GEMM, and the Schur
// scatter path through a small factorization.
#include <benchmark/benchmark.h>

#include <vector>

#include "numeric/dense_kernels.hpp"
#include "numeric/kernel_scratch.hpp"
#include "numeric/seq_lu.hpp"
#include "order/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"

namespace {

using namespace slu3d;

std::vector<real_t> random_dominant(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<real_t> a(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (index_t i = 0; i < n; ++i)
    a[static_cast<std::size_t>(i) * static_cast<std::size_t>(n + 1)] +=
        static_cast<real_t>(n);
  return a;
}

void BM_Getrf(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto a0 = random_dominant(n, 1);
  std::vector<real_t> a(a0.size());
  for (auto _ : state) {
    a = a0;
    dense::getrf_nopiv(n, a.data(), n);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * dense::getrf_flops(n));
}
BENCHMARK(BM_Getrf)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_TrsmRightUpper(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const index_t m = 2 * n;
  const auto a = random_dominant(n, 2);
  std::vector<real_t> b(static_cast<std::size_t>(m) * static_cast<std::size_t>(n), 1.0);
  for (auto _ : state) {
    dense::trsm_right_upper(n, m, a.data(), n, b.data(), m);
    benchmark::DoNotOptimize(b.data());
  }
  state.SetItemsProcessed(state.iterations() * dense::trsm_flops(n, m));
}
BENCHMARK(BM_TrsmRightUpper)->Arg(32)->Arg(64)->Arg(128);

void BM_TrsmLeftLowerUnit(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const index_t m = 2 * n;
  const auto a = random_dominant(n, 3);
  std::vector<real_t> b(static_cast<std::size_t>(n) * static_cast<std::size_t>(m), 1.0);
  for (auto _ : state) {
    dense::trsm_left_lower_unit(n, m, a.data(), n, b.data(), n);
    benchmark::DoNotOptimize(b.data());
  }
  state.SetItemsProcessed(state.iterations() * dense::trsm_flops(n, m));
}
BENCHMARK(BM_TrsmLeftLowerUnit)->Arg(32)->Arg(64)->Arg(128);

void BM_GemmMinus(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto a = random_dominant(n, 4);
  const auto b = random_dominant(n, 5);
  std::vector<real_t> c(a.size(), 0.0);
  for (auto _ : state) {
    dense::gemm_minus(n, n, n, a.data(), n, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * dense::gemm_flops(n, n, n));
}
BENCHMARK(BM_GemmMinus)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(384)->Arg(512);

// ---- packed substrate vs reference sweeps -------------------------------
// Same shapes through the pre-substrate jki kernels, so the speedup of the
// packed micro-kernel path is directly visible in one run. The non-square
// sweep exercises the shapes the factorization actually produces (tall
// panel x wide panel rank-ns updates).

void BM_GemmMinusRef(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto a = random_dominant(n, 4);
  const auto b = random_dominant(n, 5);
  std::vector<real_t> c(a.size(), 0.0);
  for (auto _ : state) {
    dense::ref::gemm_minus(n, n, n, a.data(), n, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * dense::gemm_flops(n, n, n));
}
BENCHMARK(BM_GemmMinusRef)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(384)->Arg(512);

void BM_GemmMinusRankK(benchmark::State& state) {
  const auto m = static_cast<index_t>(state.range(0));
  const auto k = static_cast<index_t>(state.range(1));
  Rng rng(6);
  std::vector<real_t> a(static_cast<std::size_t>(m) * static_cast<std::size_t>(k));
  std::vector<real_t> b(static_cast<std::size_t>(k) * static_cast<std::size_t>(m));
  std::vector<real_t> c(static_cast<std::size_t>(m) * static_cast<std::size_t>(m), 0.0);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    dense::gemm_minus(m, m, k, a.data(), m, b.data(), k, c.data(), m);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * dense::gemm_flops(m, m, k));
}
BENCHMARK(BM_GemmMinusRankK)
    ->Args({256, 32})
    ->Args({256, 64})
    ->Args({512, 64})
    ->Args({512, 128});

void BM_GemmMinusNt(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto a = random_dominant(n, 7);
  const auto b = random_dominant(n, 8);
  std::vector<real_t> c(a.size(), 0.0);
  for (auto _ : state) {
    dense::gemm_minus_nt(n, n, n, a.data(), n, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * dense::gemm_flops(n, n, n));
}
BENCHMARK(BM_GemmMinusNt)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmMinusNtRef(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto a = random_dominant(n, 7);
  const auto b = random_dominant(n, 8);
  std::vector<real_t> c(a.size(), 0.0);
  for (auto _ : state) {
    dense::ref::gemm_minus_nt(n, n, n, a.data(), n, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * dense::gemm_flops(n, n, n));
}
BENCHMARK(BM_GemmMinusNtRef)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GetrfRef(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto a0 = random_dominant(n, 1);
  std::vector<real_t> a(a0.size());
  for (auto _ : state) {
    a = a0;
    dense::ref::getrf_nopiv(n, a.data(), n);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * dense::getrf_flops(n));
}
BENCHMARK(BM_GetrfRef)->Arg(64)->Arg(128)->Arg(256);

// ---- thread-pool sweeps -------------------------------------------------
// The same GEMM shapes through a ParallelKernels pool of T participants
// (the form the pipeline engines install per rank); T = 1 is the
// pool-bypass baseline, so the speedup at T = 4 is read directly off one
// run. The thread count is the benchmark argument — SLU3D_THREADS does not
// apply here. Results are bitwise identical across T by construction; only
// wall-clock moves.

void BM_GemmMinusThreaded(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto threads = static_cast<int>(state.range(1));
  dense::ParallelKernels pool(threads);
  const auto a = random_dominant(n, 4);
  const auto b = random_dominant(n, 5);
  std::vector<real_t> c(a.size(), 0.0);
  for (auto _ : state) {
    dense::gemm_minus(n, n, n, a.data(), n, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["workers"] =
      static_cast<double>(pool.pool().workers());
  state.SetItemsProcessed(state.iterations() * dense::gemm_flops(n, n, n));
}
BENCHMARK(BM_GemmMinusThreaded)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({384, 1})
    ->Args({384, 2})
    ->Args({384, 4})
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4});

void BM_GemmMinusNtThreaded(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto threads = static_cast<int>(state.range(1));
  dense::ParallelKernels pool(threads);
  const auto a = random_dominant(n, 7);
  const auto b = random_dominant(n, 8);
  std::vector<real_t> c(a.size(), 0.0);
  for (auto _ : state) {
    dense::gemm_minus_nt(n, n, n, a.data(), n, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["workers"] =
      static_cast<double>(pool.pool().workers());
  state.SetItemsProcessed(state.iterations() * dense::gemm_flops(n, n, n));
}
BENCHMARK(BM_GemmMinusNtThreaded)
    ->Args({256, 1})
    ->Args({256, 4})
    ->Args({512, 1})
    ->Args({512, 4});

void BM_SequentialSparseLU(benchmark::State& state) {
  const auto side = static_cast<index_t>(state.range(0));
  const GridGeometry g{side, side, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 32});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  for (auto _ : state) {
    SupernodalMatrix F(bs);
    F.fill_from(Ap);
    factorize_sequential(F);
    benchmark::DoNotOptimize(F.diag(0).data());
  }
  state.SetItemsProcessed(state.iterations() * bs.total_flops());
}
BENCHMARK(BM_SequentialSparseLU)->Arg(32)->Arg(64);

void BM_SequentialSparseLUThreaded(benchmark::State& state) {
  const auto side = static_cast<index_t>(state.range(0));
  const auto threads = static_cast<int>(state.range(1));
  dense::ParallelKernels pool(threads);
  const GridGeometry g{side, side, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 32});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  for (auto _ : state) {
    SupernodalMatrix F(bs);
    F.fill_from(Ap);
    factorize_sequential(F);
    benchmark::DoNotOptimize(F.diag(0).data());
  }
  state.counters["workers"] =
      static_cast<double>(pool.pool().workers());
  state.SetItemsProcessed(state.iterations() * bs.total_flops());
}
BENCHMARK(BM_SequentialSparseLUThreaded)->Args({64, 1})->Args({64, 4});

}  // namespace

BENCHMARK_MAIN();
