// LU variant policy for the shared 2D panel-pipeline engine
// (pipeline/panel_pipeline.hpp): GETRF on the diagonal, row+column
// diagonal broadcasts, L and U panel TRSMs, U-role column broadcasts
// rooted at the diagonal owner's process row, and the two-sided Schur
// scatter (diag / L / U targets).
#include "lu2d/factor2d.hpp"

#include <algorithm>
#include <vector>

#include "numeric/dense_kernels.hpp"
#include "numeric/kernel_scratch.hpp"
#include "numeric/schur.hpp"
#include "pipeline/panel_pipeline.hpp"
#include "support/check.hpp"
#include "threads/thread_pool.hpp"

namespace slu3d {

namespace {

using sim::CommPlane;
using sim::ComputeKind;

/// Adds V into the owned target block (bi, bj) — the distributed version
/// of schur_scatter_add.
void scatter_local(Dist2dFactors& F, const BlockStructure& bs, int bi, int bj,
                   std::span<const index_t> rows_i,
                   std::span<const index_t> cols_j, std::span<const real_t> v) {
  const auto mi = static_cast<index_t>(rows_i.size());
  const auto mj = static_cast<index_t>(cols_j.size());
  if (bi == bj) {
    SLU3D_CHECK(F.has_diag(bi), "Schur target diag not owned");
    auto d = F.diag(bi);
    const index_t f = bs.first_col(bi);
    const index_t nsd = bs.snode_size(bi);
    for (index_t c = 0; c < mj; ++c)
      for (index_t r = 0; r < mi; ++r)
        d[static_cast<std::size_t>((rows_i[static_cast<std::size_t>(r)] - f) +
                                   (cols_j[static_cast<std::size_t>(c)] - f) * nsd)] +=
            v[static_cast<std::size_t>(r + c * mi)];
    return;
  }
  if (bi > bj) {  // L panel of bj, ancestor block bi
    OwnedBlock* blk = F.find_lblock(bj, bi);
    SLU3D_CHECK(blk != nullptr, "Schur target L block not owned");
    const auto& brows =
        bs.lpanel(bj)[static_cast<std::size_t>(blk->panel_idx)].rows;
    auto pos = dense::KernelScratch::per_rank().index_stage(
        static_cast<std::size_t>(mi));
    locate_sorted_subset(rows_i, brows, pos);
    const auto m = brows.size();
    const index_t f = bs.first_col(bj);
    for (index_t c = 0; c < mj; ++c)
      for (index_t r = 0; r < mi; ++r)
        blk->data[static_cast<std::size_t>(pos[static_cast<std::size_t>(r)]) +
                  static_cast<std::size_t>(cols_j[static_cast<std::size_t>(c)] - f) * m] +=
            v[static_cast<std::size_t>(r + c * mi)];
    return;
  }
  // bi < bj: U panel of bi, ancestor block bj.
  OwnedBlock* blk = F.find_ublock(bi, bj);
  SLU3D_CHECK(blk != nullptr, "Schur target U block not owned");
  const auto& bcols =
      bs.lpanel(bi)[static_cast<std::size_t>(blk->panel_idx)].rows;
  auto pos = dense::KernelScratch::per_rank().index_stage(
      static_cast<std::size_t>(mj));
  locate_sorted_subset(cols_j, bcols, pos);
  const auto nsu = static_cast<std::size_t>(bs.snode_size(bi));
  const index_t f = bs.first_col(bi);
  for (index_t c = 0; c < mj; ++c)
    for (index_t r = 0; r < mi; ++r)
      blk->data[static_cast<std::size_t>(rows_i[static_cast<std::size_t>(r)] - f) +
                static_cast<std::size_t>(pos[static_cast<std::size_t>(c)]) * nsu] +=
          v[static_cast<std::size_t>(r + c * mi)];
}

struct LuPanelPolicy {
  using Factors = Dist2dFactors;
  static constexpr bool kSymmetric = false;
  static constexpr int kRowPanelOp = 2;  ///< L-panel row broadcast tag op
  static constexpr int kColPanelOp = 3;  ///< U-panel column broadcast tag op

  /// GETRF at the owner of (k,k), diagonal broadcast along the owner's
  /// process row (for U panel solves) and column (for L), then the panel
  /// TRSMs on the owning process column / row.
  template <class Engine>
  static void factor_and_solve(Engine& e, int k, index_t ns,
                               std::vector<real_t>& diag_buf) {
    Factors& F = e.factors();
    sim::ProcessGrid2D& g = e.grid();
    const BlockStructure& bs = e.structure();
    const int pxk = k % g.Px();
    const int pyk = k % g.Py();
    const bool in_prow = g.px() == pxk;
    const bool in_pcol = g.py() == pyk;

    diag_buf.assign(static_cast<std::size_t>(ns) * static_cast<std::size_t>(ns),
                    0.0);
    if (F.owns(k, k)) {
      auto d = F.diag(k);
      dense::getrf_nopiv(ns, d.data(), ns);
      g.grid().add_compute(dense::getrf_flops(ns), ComputeKind::DiagFactor);
      std::copy(d.begin(), d.end(), diag_buf.begin());
    }
    if (in_prow) g.row().bcast(pyk, e.tag(k, 0), diag_buf, CommPlane::XY);
    if (in_pcol) g.col().bcast(pxk, e.tag(k, 1), diag_buf, CommPlane::XY);

    if (in_pcol) {
      for (OwnedBlock& blk : F.lblocks(k)) {
        const index_t m =
            bs.lpanel(k)[static_cast<std::size_t>(blk.panel_idx)].n_rows();
        dense::trsm_right_upper(ns, m, diag_buf.data(), ns, blk.data.data(), m);
        g.grid().add_compute(dense::trsm_flops(ns, m), ComputeKind::PanelSolve);
      }
    }
    if (in_prow) {
      for (OwnedBlock& blk : F.ublocks(k)) {
        const index_t m =
            bs.lpanel(k)[static_cast<std::size_t>(blk.panel_idx)].n_rows();
        dense::trsm_left_lower_unit(ns, m, diag_buf.data(), ns,
                                    blk.data.data(), ns);
        g.grid().add_compute(dense::trsm_flops(ns, m), ComputeKind::PanelSolve);
      }
    }
  }

  static std::span<const real_t> row_payload(Factors& F, int k, int a) {
    const OwnedBlock* ob = F.find_lblock(k, a);
    SLU3D_CHECK(ob != nullptr, "owner missing L block");
    return ob->data;
  }

  /// U block (k, a) goes down process column a % Py, rooted at the
  /// diagonal owner's process row; payload is the owner's U block. Under
  /// PanelPacking::Sparse the owner's process row holds every U payload of
  /// the supernode, so the column role packs exactly like the engine's row
  /// role: one presence frame down the column first (tag op kColFrameOp),
  /// then per-entry packed broadcasts; all-zero entries are pruned, which
  /// also removes their Schur pairs (their contribution is zero anyway).
  /// Under PanelPacking::Targeted the role instead delegates to the
  /// engine's one-sided footprint puts (no frame, no pruning — the pair
  /// set and factors stay bitwise identical to Dense).
  template <class Engine>
  static void post_col_entries(Engine& e, pipeline::PanelStash& stash, int k,
                               index_t ns) {
    Factors& F = e.factors();
    sim::ProcessGrid2D& g = e.grid();
    const auto panel = e.structure().lpanel(k);
    const int pxk = k % g.Px();
    const bool in_prow = g.px() == pxk;
    const bool sparse = e.sparse_packing();
    auto u_payload = [&](const pipeline::StashEntry& en) -> std::span<const real_t> {
      const OwnedBlock* ob =
          F.find_ublock(k, panel[static_cast<std::size_t>(en.panel_idx)].snode);
      SLU3D_CHECK(ob != nullptr, "owner missing U block");
      return ob->data;
    };
    if (e.targeted_packing()) {
      // One-sided mode: the column role mirrors the engine's row role —
      // the diagonal owner's process row holds every U payload, so it is
      // the single put origin down each process column.
      e.targeted_role(stash, /*role=*/1, k, ns, panel, u_payload);
      return;
    }
    if (sparse)
      e.exchange_presence_frame(g.col(), pxk, e.tag(k, pipeline::kColFrameOp),
                                stash, stash.col_entries, stash.col_bits,
                                in_prow, ns, u_payload, /*prune_absent=*/true);
    if (sparse && in_prow) {
      // Pre-pack every surviving U payload in parallel (disjoint storage
      // regions per entry); the post loop below then only posts.
      threads::parallel_for(
          static_cast<std::ptrdiff_t>(stash.col_entries.size()),
          [&](std::ptrdiff_t t, int) {
            const pipeline::StashEntry& en =
                stash.col_entries[static_cast<std::size_t>(t)];
            Engine::pack_present(u_payload(en), stash.col_bits, en.bits_off,
                                 stash.storage.data() + en.offset);
          });
    }
    for (int i = 0; i < static_cast<int>(stash.col_entries.size()); ++i) {
      const pipeline::StashEntry& en =
          stash.col_entries[static_cast<std::size_t>(i)];
      const auto dense_elems =
          static_cast<std::size_t>(ns) * static_cast<std::size_t>(en.m);
      const std::size_t wire = sparse ? en.packed : dense_elems;
      const std::span<real_t> buf{stash.storage.data() + en.offset, wire};
      if (in_prow && !sparse) {
        const std::span<const real_t> src = u_payload(en);
        SLU3D_CHECK(src.size() == dense_elems, "owner U block size mismatch");
        std::copy(src.begin(), src.end(), buf.begin());
      }
      if (e.options().async) {
        stash.ops.push_back(
            {g.col().ibcast(pxk, e.tag(k, kColPanelOp), buf, CommPlane::XY),
             -1, 0, 0, 0, -1, -1, {}});
        if (sparse) {
          if (in_prow) {
            // The root's payload is snapshotted at post; restore dense now.
            e.expand_entry(stash, en, stash.col_bits, ns);
          } else {
            stash.ops.back().exp_role = 1;
            stash.ops.back().exp_idx = i;
          }
        }
      } else {
        g.col().bcast(pxk, e.tag(k, kColPanelOp), buf, CommPlane::XY);
        if (sparse) e.expand_entry(stash, en, stash.col_bits, ns);
      }
    }
  }

  /// Target block (bi, bj) is owned by this rank by construction of the
  /// stashes; skip if its column supernode is not materialized on this
  /// grid (3D masked layouts).
  static bool wants_target(const Factors& F, int bi, int bj) {
    return F.wants_snode(std::min(bi, bj));
  }

  template <class Engine>
  static void schur_pair(Engine& e, const PanelBlock& bi, index_t mi,
                         const real_t* ldata, const PanelBlock& bj, index_t mj,
                         const real_t* udata, index_t ns,
                         std::span<real_t> scratch) {
    // Modelled flops are charged by the engine on the rank thread before
    // the pairs fan out (schur_pair may run on a pool worker, which must
    // not touch the simulator).
    dense::gemm_minus(mi, mj, ns, ldata, mi, udata, ns, scratch.data(), mi);
    scatter_local(e.factors(), e.structure(), bi.snode, bj.snode, bi.rows,
                  bj.rows, scratch);
  }
};

}  // namespace

void factorize_2d(Dist2dFactors& F, sim::ProcessGrid2D& grid,
                  std::span<const int> snodes, const Lu2dOptions& options) {
  pipeline::PanelEngine<LuPanelPolicy>(F, grid, options).run(snodes);
}

}  // namespace slu3d
