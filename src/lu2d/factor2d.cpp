#include "lu2d/factor2d.hpp"

#include <algorithm>
#include <vector>

#include "numeric/dense_kernels.hpp"
#include "numeric/kernel_scratch.hpp"
#include "numeric/schur.hpp"
#include "support/check.hpp"

namespace slu3d {

namespace {

using sim::CommPlane;
using sim::ComputeKind;

/// One broadcast panel block staged for the Schur phase: `m*ns` (L) or
/// `ns*m` (U) values at `offset` in the stash's flat storage.
struct StashEntry {
  int panel_idx;
  std::size_t offset;
  index_t m;
};

/// Broadcast panels of one in-flight supernode, stashed until its Schur
/// update has been applied. Entries are appended in ascending panel_idx
/// order; storage is one flat buffer borrowed from the per-rank scratch
/// pool, so the look-ahead hot path performs no per-supernode node
/// allocations. In async mode `requests` holds the outstanding panel
/// ibcasts, drained only when the Schur phase consumes the payloads.
struct PanelStash {
  int k = -1;  ///< supernode, or -1 when the slot is free
  std::vector<StashEntry> lentries, uentries;
  std::vector<real_t> storage;
  std::vector<sim::Request> requests;
};

class Factor2dDriver {
 public:
  Factor2dDriver(Dist2dFactors& F, sim::ProcessGrid2D& grid,
                 const Lu2dOptions& opt)
      : F_(F), g_(grid), bs_(F.structure()), opt_(opt) {}

  void run(std::span<const int> snodes) {
    // Position of each supernode in the list and the latest position of
    // any updater, for the lookahead schedule. All ranks compute the same
    // schedule from the (replicated) symbolic structure.
    std::vector<int> last_upd_pos(static_cast<std::size_t>(bs_.n_snodes()), -1);
    for (int idx = 0; idx < static_cast<int>(snodes.size()); ++idx) {
      const int k = snodes[static_cast<std::size_t>(idx)];
      SLU3D_CHECK(idx == 0 || snodes[static_cast<std::size_t>(idx - 1)] < k,
                  "snodes must be ascending");
      for (const PanelBlock& blk : bs_.lpanel(k))
        last_upd_pos[static_cast<std::size_t>(blk.snode)] = idx;
    }

    std::vector<bool> fired(static_cast<std::size_t>(bs_.n_snodes()), false);
    const int n = static_cast<int>(snodes.size());
    for (int idx = 0; idx < n; ++idx) {
      const int limit = std::min(n - 1, idx + opt_.lookahead);
      for (int w = idx; w <= limit; ++w) {
        const int j = snodes[static_cast<std::size_t>(w)];
        if (!fired[static_cast<std::size_t>(j)] &&
            last_upd_pos[static_cast<std::size_t>(j)] < idx) {
          panel_phase(j);
          fired[static_cast<std::size_t>(j)] = true;
        }
      }
      schur_phase(snodes[static_cast<std::size_t>(idx)]);
    }
  }

 private:
  int tag(int k, int op) const { return opt_.tag_base + 8 * k + op; }

  /// Claims a free stash slot (at most lookahead+1 are ever live, so the
  /// linear scans here are trivial).
  PanelStash& stash_alloc(int k) {
    for (PanelStash& s : stash_)
      if (s.k < 0) {
        s.k = k;
        return s;
      }
    stash_.emplace_back();
    stash_.back().k = k;
    return stash_.back();
  }

  PanelStash* stash_find(int k) {
    for (PanelStash& s : stash_)
      if (s.k == k) return &s;
    return nullptr;
  }

  void panel_phase(int k) {
    const index_t ns = bs_.snode_size(k);
    if (ns == 0) return;
    PanelStash& stash = stash_alloc(k);
    const int pxk = k % g_.Px();
    const int pyk = k % g_.Py();
    const bool in_prow = g_.px() == pxk;
    const bool in_pcol = g_.py() == pyk;

    // 1+2: diagonal factorization at the owner, broadcast along the
    // owner's process row (for U panel solves) and column (for L). The
    // diagonal is consumed by the panel solves right below, so these
    // broadcasts stay blocking even in async mode.
    diag_buf_.assign(static_cast<std::size_t>(ns) * static_cast<std::size_t>(ns), 0.0);
    if (F_.owns(k, k)) {
      auto d = F_.diag(k);
      dense::getrf_nopiv(ns, d.data(), ns);
      g_.grid().add_compute(dense::getrf_flops(ns), ComputeKind::DiagFactor);
      std::copy(d.begin(), d.end(), diag_buf_.begin());
    }
    if (in_prow) g_.row().bcast(pyk, tag(k, 0), diag_buf_, CommPlane::XY);
    if (in_pcol) g_.col().bcast(pxk, tag(k, 1), diag_buf_, CommPlane::XY);

    // 3: panel solves on the owning process column / row.
    if (in_pcol) {
      for (OwnedBlock& blk : F_.lblocks(k)) {
        const index_t m =
            bs_.lpanel(k)[static_cast<std::size_t>(blk.panel_idx)].n_rows();
        dense::trsm_right_upper(ns, m, diag_buf_.data(), ns, blk.data.data(), m);
        g_.grid().add_compute(dense::trsm_flops(ns, m), ComputeKind::PanelSolve);
      }
    }
    if (in_prow) {
      for (OwnedBlock& blk : F_.ublocks(k)) {
        const index_t m =
            bs_.lpanel(k)[static_cast<std::size_t>(blk.panel_idx)].n_rows();
        dense::trsm_left_lower_unit(ns, m, diag_buf_.data(), ns,
                                    blk.data.data(), ns);
        g_.grid().add_compute(dense::trsm_flops(ns, m), ComputeKind::PanelSolve);
      }
    }

    // 4: panel broadcast. L block (a, k) goes along process row (a % Px);
    // U block (k, a) goes along process column (a % Py). Empty (ragged)
    // blocks are skipped outright instead of broadcasting 0-byte payloads.
    // First lay out the flat stash storage — spans handed to ibcast must
    // stay put — then post the broadcasts.
    const auto panel = bs_.lpanel(k);
    std::size_t total = 0;
    for (int pi = 0; pi < static_cast<int>(panel.size()); ++pi) {
      const PanelBlock& blk = panel[static_cast<std::size_t>(pi)];
      const index_t m = blk.n_rows();
      if (m == 0) continue;
      const auto elems = static_cast<std::size_t>(m) * static_cast<std::size_t>(ns);
      if (blk.snode % g_.Px() == g_.px()) {
        stash.lentries.push_back({pi, total, m});
        total += elems;
      }
      if (blk.snode % g_.Py() == g_.py()) {
        stash.uentries.push_back({pi, total, m});
        total += elems;
      }
    }
    stash.storage = dense::KernelScratch::per_rank().borrow();
    stash.storage.resize(total, 0.0);

    for (const StashEntry& e : stash.lentries) {
      const PanelBlock& blk = panel[static_cast<std::size_t>(e.panel_idx)];
      const std::span<real_t> buf{
          stash.storage.data() + e.offset,
          static_cast<std::size_t>(e.m) * static_cast<std::size_t>(ns)};
      if (in_pcol) {
        const OwnedBlock* ob = F_.find_lblock(k, blk.snode);
        SLU3D_CHECK(ob != nullptr, "owner missing L block");
        std::copy(ob->data.begin(), ob->data.end(), buf.begin());
      }
      if (opt_.async)
        stash.requests.push_back(
            g_.row().ibcast(pyk, tag(k, 2), buf, CommPlane::XY));
      else
        g_.row().bcast(pyk, tag(k, 2), buf, CommPlane::XY);
    }
    for (const StashEntry& e : stash.uentries) {
      const PanelBlock& blk = panel[static_cast<std::size_t>(e.panel_idx)];
      const std::span<real_t> buf{
          stash.storage.data() + e.offset,
          static_cast<std::size_t>(ns) * static_cast<std::size_t>(e.m)};
      if (in_prow) {
        const OwnedBlock* ob = F_.find_ublock(k, blk.snode);
        SLU3D_CHECK(ob != nullptr, "owner missing U block");
        std::copy(ob->data.begin(), ob->data.end(), buf.begin());
      }
      if (opt_.async)
        stash.requests.push_back(
            g_.col().ibcast(pxk, tag(k, 3), buf, CommPlane::XY));
      else
        g_.col().bcast(pxk, tag(k, 3), buf, CommPlane::XY);
    }
  }

  void schur_phase(int k) {
    const index_t ns = bs_.snode_size(k);
    if (ns == 0) return;
    PanelStash* stash = stash_find(k);
    SLU3D_CHECK(stash != nullptr, "panel not factored before Schur phase");
    // Drain the outstanding panel broadcasts only now: every update
    // between the panel's post and this point has overlapped the transfer.
    sim::wait_all(stash->requests);
    stash->requests.clear();

    const auto panel = bs_.lpanel(k);
    dense::KernelScratch& ws = dense::KernelScratch::per_rank();
    for (const StashEntry& le : stash->lentries) {
      const PanelBlock& bi = panel[static_cast<std::size_t>(le.panel_idx)];
      const index_t mi = le.m;
      const real_t* ldata = stash->storage.data() + le.offset;
      for (const StashEntry& ue : stash->uentries) {
        const PanelBlock& bj = panel[static_cast<std::size_t>(ue.panel_idx)];
        const index_t mj = ue.m;
        const real_t* udata = stash->storage.data() + ue.offset;
        // Target block (bi.snode, bj.snode) is owned by this rank by
        // construction of the stashes; skip if its column supernode is not
        // materialized on this grid (3D masked layouts).
        const int target_col = std::min(bi.snode, bj.snode);
        if (!F_.wants_snode(target_col)) continue;
        auto scratch =
            ws.stage_zero(static_cast<std::size_t>(mi) * static_cast<std::size_t>(mj));
        dense::gemm_minus(mi, mj, ns, ldata, mi, udata, ns, scratch.data(), mi);
        g_.grid().add_compute(dense::gemm_flops(mi, mj, ns),
                              ComputeKind::SchurUpdate);
        scatter_local(bi.snode, bj.snode, bi.rows, bj.rows, scratch);
      }
    }
    dense::KernelScratch::per_rank().recycle(std::move(stash->storage));
    stash->storage = {};
    stash->lentries.clear();
    stash->uentries.clear();
    stash->k = -1;
  }

  /// Adds V into the owned target block (bi, bj) — the distributed version
  /// of schur_scatter_add.
  void scatter_local(int bi, int bj, std::span<const index_t> rows_i,
                     std::span<const index_t> cols_j,
                     std::span<const real_t> v) {
    const auto mi = static_cast<index_t>(rows_i.size());
    const auto mj = static_cast<index_t>(cols_j.size());
    if (bi == bj) {
      SLU3D_CHECK(F_.has_diag(bi), "Schur target diag not owned");
      auto d = F_.diag(bi);
      const index_t f = bs_.first_col(bi);
      const index_t nsd = bs_.snode_size(bi);
      for (index_t c = 0; c < mj; ++c)
        for (index_t r = 0; r < mi; ++r)
          d[static_cast<std::size_t>((rows_i[static_cast<std::size_t>(r)] - f) +
                                     (cols_j[static_cast<std::size_t>(c)] - f) * nsd)] +=
              v[static_cast<std::size_t>(r + c * mi)];
      return;
    }
    if (bi > bj) {  // L panel of bj, ancestor block bi
      OwnedBlock* blk = F_.find_lblock(bj, bi);
      SLU3D_CHECK(blk != nullptr, "Schur target L block not owned");
      const auto& brows =
          bs_.lpanel(bj)[static_cast<std::size_t>(blk->panel_idx)].rows;
      auto pos = dense::KernelScratch::per_rank().index_stage(
          static_cast<std::size_t>(mi));
      locate_sorted_subset(rows_i, brows, pos);
      const auto m = brows.size();
      const index_t f = bs_.first_col(bj);
      for (index_t c = 0; c < mj; ++c)
        for (index_t r = 0; r < mi; ++r)
          blk->data[static_cast<std::size_t>(pos[static_cast<std::size_t>(r)]) +
                    static_cast<std::size_t>(cols_j[static_cast<std::size_t>(c)] - f) * m] +=
              v[static_cast<std::size_t>(r + c * mi)];
      return;
    }
    // bi < bj: U panel of bi, ancestor block bj.
    OwnedBlock* blk = F_.find_ublock(bi, bj);
    SLU3D_CHECK(blk != nullptr, "Schur target U block not owned");
    const auto& bcols =
        bs_.lpanel(bi)[static_cast<std::size_t>(blk->panel_idx)].rows;
    auto pos = dense::KernelScratch::per_rank().index_stage(
        static_cast<std::size_t>(mj));
    locate_sorted_subset(cols_j, bcols, pos);
    const auto nsu = static_cast<std::size_t>(bs_.snode_size(bi));
    const index_t f = bs_.first_col(bi);
    for (index_t c = 0; c < mj; ++c)
      for (index_t r = 0; r < mi; ++r)
        blk->data[static_cast<std::size_t>(rows_i[static_cast<std::size_t>(r)] - f) +
                  static_cast<std::size_t>(pos[static_cast<std::size_t>(c)]) * nsu] +=
            v[static_cast<std::size_t>(r + c * mi)];
  }

  Dist2dFactors& F_;
  sim::ProcessGrid2D& g_;
  const BlockStructure& bs_;
  Lu2dOptions opt_;
  std::vector<PanelStash> stash_;  ///< slot pool, reused across supernodes
  std::vector<real_t> diag_buf_;   ///< reusable diagonal broadcast buffer
};

}  // namespace

void factorize_2d(Dist2dFactors& F, sim::ProcessGrid2D& grid,
                  std::span<const int> snodes, const Lu2dOptions& options) {
  Factor2dDriver(F, grid, options).run(snodes);
}

}  // namespace slu3d
