#include "lu2d/dist_factors.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"

namespace slu3d {

Dist2dFactors::Dist2dFactors(const BlockStructure& bs, int Px, int Py, int px,
                             int py, std::vector<bool> want_snode)
    : bs_(&bs), Px_(Px), Py_(Py), px_(px), py_(py),
      want_(std::move(want_snode)) {
  SLU3D_CHECK(Px > 0 && Py > 0, "bad grid extents");
  SLU3D_CHECK(px >= 0 && px < Px && py >= 0 && py < Py, "bad grid position");
  const auto nsn = static_cast<std::size_t>(bs.n_snodes());
  SLU3D_CHECK(want_.empty() || want_.size() == nsn, "want_snode size mismatch");
  diag_.resize(nsn);
  lblocks_.resize(nsn);
  ublocks_.resize(nsn);
  for (int s = 0; s < bs.n_snodes(); ++s) {
    const auto ns = static_cast<std::size_t>(bs.snode_size(s));
    if (ns == 0 || !wants_snode(s)) continue;
    if (owns(s, s)) diag_[static_cast<std::size_t>(s)].assign(ns * ns, 0.0);
    const auto panel = bs.lpanel(s);
    for (int k = 0; k < static_cast<int>(panel.size()); ++k) {
      const auto& blk = panel[static_cast<std::size_t>(k)];
      const auto m = static_cast<std::size_t>(blk.n_rows());
      if (owns(blk.snode, s))  // L block (a, s)
        lblocks_[static_cast<std::size_t>(s)].push_back(
            {k, std::vector<real_t>(m * ns, 0.0)});
      if (owns(s, blk.snode))  // U block (s, a)
        ublocks_[static_cast<std::size_t>(s)].push_back(
            {k, std::vector<real_t>(ns * m, 0.0)});
    }
  }
}

namespace {
OwnedBlock* find_block(std::span<OwnedBlock> blocks,
                       std::span<const PanelBlock> panel, int a) {
  const auto it = std::lower_bound(
      blocks.begin(), blocks.end(), a, [&](const OwnedBlock& b, int key) {
        return panel[static_cast<std::size_t>(b.panel_idx)].snode < key;
      });
  if (it == blocks.end() ||
      panel[static_cast<std::size_t>(it->panel_idx)].snode != a)
    return nullptr;
  return &*it;
}
}  // namespace

OwnedBlock* Dist2dFactors::find_lblock(int s, int a) {
  return find_block(lblocks(s), bs_->lpanel(s), a);
}
OwnedBlock* Dist2dFactors::find_ublock(int s, int a) {
  return find_block(ublocks(s), bs_->lpanel(s), a);
}

void Dist2dFactors::fill_from(const CsrMatrix& Ap) {
  SLU3D_CHECK(Ap.n_rows() == bs_->n(), "matrix size mismatch");
  for (index_t i = 0; i < Ap.n_rows(); ++i) {
    const int si = bs_->col_to_snode(i);
    const auto cols = Ap.row_cols(i);
    const auto vals = Ap.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const index_t j = cols[k];
      const real_t v = vals[k];
      const int sj = bs_->col_to_snode(j);
      if (si == sj) {
        if (!owns(si, si) || !wants_snode(si)) continue;
        const index_t f = bs_->first_col(si);
        const index_t ns = bs_->snode_size(si);
        diag_[static_cast<std::size_t>(si)]
             [static_cast<std::size_t>((i - f) + (j - f) * ns)] += v;
      } else if (sj < si) {  // L entry: block (si, sj) in panel of sj
        if (!owns(si, sj) || !wants_snode(sj)) continue;
        OwnedBlock* blk = find_lblock(sj, si);
        SLU3D_CHECK(blk != nullptr, "missing owned L block");
        const auto& rows = bs_->lpanel(sj)[static_cast<std::size_t>(blk->panel_idx)].rows;
        const auto it = std::lower_bound(rows.begin(), rows.end(), i);
        SLU3D_CHECK(it != rows.end() && *it == i, "entry outside L structure");
        const auto r = static_cast<std::size_t>(it - rows.begin());
        const auto m = rows.size();
        blk->data[r + static_cast<std::size_t>(j - bs_->first_col(sj)) * m] += v;
      } else {  // U entry: block (si, sj) in U panel of si
        if (!owns(si, sj) || !wants_snode(si)) continue;
        OwnedBlock* blk = find_ublock(si, sj);
        SLU3D_CHECK(blk != nullptr, "missing owned U block");
        const auto& ucols = bs_->lpanel(si)[static_cast<std::size_t>(blk->panel_idx)].rows;
        const auto it = std::lower_bound(ucols.begin(), ucols.end(), j);
        SLU3D_CHECK(it != ucols.end() && *it == j, "entry outside U structure");
        const auto c = static_cast<std::size_t>(it - ucols.begin());
        const auto ns = static_cast<std::size_t>(bs_->snode_size(si));
        blk->data[static_cast<std::size_t>(i - bs_->first_col(si)) + c * ns] += v;
      }
    }
  }
}

offset_t Dist2dFactors::allocated_bytes() const {
  offset_t bytes = 0;
  for (std::size_t s = 0; s < diag_.size(); ++s) {
    bytes += static_cast<offset_t>(diag_[s].size() * sizeof(real_t));
    for (const auto& b : lblocks_[s])
      bytes += static_cast<offset_t>(b.data.size() * sizeof(real_t));
    for (const auto& b : ublocks_[s])
      bytes += static_cast<offset_t>(b.data.size() * sizeof(real_t));
  }
  return bytes;
}

void Dist2dFactors::zero() {
  for (std::size_t s = 0; s < diag_.size(); ++s) {
    std::fill(diag_[s].begin(), diag_[s].end(), 0.0);
    for (auto& b : lblocks_[s]) std::fill(b.data.begin(), b.data.end(), 0.0);
    for (auto& b : ublocks_[s]) std::fill(b.data.begin(), b.data.end(), 0.0);
  }
}

std::vector<real_t> Dist2dFactors::pack_owned() const {
  std::vector<real_t> out;
  for (int s = 0; s < bs_->n_snodes(); ++s) {
    const auto su = static_cast<std::size_t>(s);
    out.insert(out.end(), diag_[su].begin(), diag_[su].end());
    for (const auto& b : lblocks_[su])
      out.insert(out.end(), b.data.begin(), b.data.end());
    for (const auto& b : ublocks_[su])
      out.insert(out.end(), b.data.begin(), b.data.end());
  }
  return out;
}

std::optional<SupernodalMatrix> Dist2dFactors::gather_to_root(
    sim::ProcessGrid2D& grid) const {
  SLU3D_CHECK(want_.empty(),
              "gather_to_root requires an unmasked (pure 2D) layout; use "
              "gather_3d_to_root for 3D layouts");
  constexpr int kGatherTag = (1 << 20) + 7;
  sim::Comm& comm = grid.grid();
  if (comm.rank() != 0) {
    comm.send(0, kGatherTag, pack_owned(), sim::CommPlane::XY);
    return std::nullopt;
  }

  SupernodalMatrix full(*bs_);
  // Unpack one source rank's deterministic stream into the full matrix.
  auto unpack_rank = [&](int spx, int spy, std::span<const real_t> buf) {
    std::size_t pos = 0;
    auto rank_owns = [&](int bi, int bj) {
      return bi % Px_ == spx && bj % Py_ == spy;
    };
    for (int s = 0; s < bs_->n_snodes(); ++s) {
      const auto ns = static_cast<std::size_t>(bs_->snode_size(s));
      if (ns == 0) continue;
      if (rank_owns(s, s)) {
        auto d = full.diag(s);
        SLU3D_CHECK(pos + ns * ns <= buf.size(), "gather underflow (diag)");
        std::copy_n(buf.begin() + static_cast<std::ptrdiff_t>(pos), ns * ns,
                    d.begin());
        pos += ns * ns;
      }
      const auto panel = bs_->lpanel(s);
      const auto prows = full.panel_rows(s);
      const auto mtot = prows.size();
      for (const auto& blk : panel) {
        const auto m = static_cast<std::size_t>(blk.n_rows());
        if (rank_owns(blk.snode, s)) {  // L block
          const auto [off, cnt] = full.block_range(s, blk.snode);
          SLU3D_CHECK(off >= 0 && static_cast<std::size_t>(cnt) == m, "L range");
          SLU3D_CHECK(pos + m * ns <= buf.size(), "gather underflow (L)");
          auto lp = full.lpanel(s);
          for (std::size_t c = 0; c < ns; ++c)
            for (std::size_t r = 0; r < m; ++r)
              lp[static_cast<std::size_t>(off) + r + c * mtot] = buf[pos + r + c * m];
          pos += m * ns;
        }
      }
      for (const auto& blk : panel) {
        const auto m = static_cast<std::size_t>(blk.n_rows());
        if (rank_owns(s, blk.snode)) {  // U block
          const auto [off, cnt] = full.block_range(s, blk.snode);
          SLU3D_CHECK(off >= 0 && static_cast<std::size_t>(cnt) == m, "U range");
          SLU3D_CHECK(pos + ns * m <= buf.size(), "gather underflow (U)");
          auto up = full.upanel(s);
          for (std::size_t c = 0; c < m; ++c)
            for (std::size_t r = 0; r < ns; ++r)
              up[r + (static_cast<std::size_t>(off) + c) * ns] = buf[pos + r + c * ns];
          pos += ns * m;
        }
      }
    }
    SLU3D_CHECK(pos == buf.size(), "gather stream not fully consumed");
  };

  unpack_rank(px_, py_, pack_owned());
  for (int r = 1; r < comm.size(); ++r) {
    const auto buf = comm.recv(r, kGatherTag, sim::CommPlane::XY);
    unpack_rank(r / Py_, r % Py_, buf);
  }
  return full;
}

}  // namespace slu3d
