// Block-cyclic distributed storage for the supernodal LU factors —
// SuperLU_DIST's 2D data structure (§II-E1). Block (i, j) of the
// supernodal block matrix lives on process (i mod Px, j mod Py); every rank
// holds the full symbolic BlockStructure (as SuperLU_DIST replicates the
// symbolic data) but only its own numeric blocks.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "numeric/supernodal_matrix.hpp"
#include "simmpi/process_grid.hpp"
#include "symbolic/block_structure.hpp"

namespace slu3d {

/// One locally owned off-diagonal block: `panel_idx` indexes into
/// BlockStructure::lpanel(s) and identifies the symbolic rows; `data` is
/// dense column-major (L: rows x ns, U: ns x rows).
struct OwnedBlock {
  int panel_idx = -1;
  std::vector<real_t> data;
};

class Dist2dFactors {
 public:
  /// Allocates the blocks owned by grid rank (px, py) of a Px x Py grid.
  /// `want_snode` (optional) restricts allocation to a subset of supernode
  /// columns — the 3D algorithm allocates only each grid's local trees
  /// plus the replicated ancestors. Empty means all supernodes.
  Dist2dFactors(const BlockStructure& bs, int Px, int Py, int px, int py,
                std::vector<bool> want_snode = {});

  /// True if supernode s's column blocks exist on this grid at all.
  bool wants_snode(int s) const {
    return want_.empty() || want_[static_cast<std::size_t>(s)];
  }

  const BlockStructure& structure() const { return *bs_; }

  int owner_of(int block_row, int block_col) const {
    return (block_row % Px_) * Py_ + (block_col % Py_);
  }
  bool owns(int block_row, int block_col) const {
    return block_row % Px_ == px_ && block_col % Py_ == py_;
  }

  bool has_diag(int s) const { return owns(s, s); }
  std::span<real_t> diag(int s) { return diag_[static_cast<std::size_t>(s)]; }
  std::span<const real_t> diag(int s) const { return diag_[static_cast<std::size_t>(s)]; }

  /// Owned L blocks of supernode s (ascending panel_idx).
  std::span<OwnedBlock> lblocks(int s) { return lblocks_[static_cast<std::size_t>(s)]; }
  std::span<const OwnedBlock> lblocks(int s) const {
    return lblocks_[static_cast<std::size_t>(s)];
  }
  /// Owned U blocks of supernode s (ascending panel_idx).
  std::span<OwnedBlock> ublocks(int s) { return ublocks_[static_cast<std::size_t>(s)]; }
  std::span<const OwnedBlock> ublocks(int s) const {
    return ublocks_[static_cast<std::size_t>(s)];
  }

  /// The owned L (resp. U) block of supernode s whose panel block is the
  /// ancestor `a`; nullptr if this rank does not own it.
  OwnedBlock* find_lblock(int s, int a);
  OwnedBlock* find_ublock(int s, int a);

  /// Scatters the entries of the permuted matrix into owned blocks.
  void fill_from(const CsrMatrix& Ap);

  /// Bytes of numeric block storage on this rank (Fig. 11 memory metric).
  offset_t allocated_bytes() const;

  /// Zero all owned numeric data (for reuse across experiments).
  void zero();

  /// Collects all ranks' blocks onto grid rank 0 as a full SupernodalMatrix
  /// (collective over `grid.grid()`; returns a value only on rank 0).
  std::optional<SupernodalMatrix> gather_to_root(sim::ProcessGrid2D& grid) const;

 private:
  /// Packs every owned block in deterministic order; unpack mirrors it.
  std::vector<real_t> pack_owned() const;

  const BlockStructure* bs_;
  int Px_, Py_, px_, py_;
  std::vector<bool> want_;
  std::vector<std::vector<real_t>> diag_;
  std::vector<std::vector<OwnedBlock>> lblocks_;
  std::vector<std::vector<OwnedBlock>> ublocks_;
};

}  // namespace slu3d
