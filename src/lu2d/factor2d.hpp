// The 2D distributed right-looking supernodal LU factorization — the
// SuperLU_DIST baseline algorithm (§II-E2):
//   per supernode k: diagonal factorization at the owner of (k,k),
//   diagonal broadcast along the owner's process row and column, panel
//   solves at the owning row/column of processes, panel broadcast, then
//   the owner-only-update Schur complement on every rank.
// Pipelining via the elimination-tree lookahead window (§II-F) is
// included: panel factorization of up to `lookahead` future supernodes is
// issued as soon as all their updaters have completed.
//
// `snodes` restricts the factorization to a node list — this is exactly
// the dSparseLU2D(A, nList) primitive that Algorithm 1 (the 3D algorithm)
// invokes per elimination-forest level.
#pragma once

#include <span>

#include "lu2d/dist_factors.hpp"
#include "simmpi/process_grid.hpp"

namespace slu3d {

struct Lu2dOptions {
  /// Lookahead window size in supernodes (SuperLU_DIST uses 8-20; 0
  /// disables pipelining).
  int lookahead = 8;
  /// Base message tag; the driver uses tags [tag_base, tag_base + 8*n_snodes).
  int tag_base = 0;
  /// Post the look-ahead window's panel broadcasts as non-blocking
  /// requests, drained lazily at the consuming Schur phase — so panel
  /// transfer time is hidden behind earlier supernodes' updates. Per-plane
  /// byte counters are identical to the blocking schedule (same binomial
  /// trees); only the simulated critical path changes.
  bool async = true;
};

/// Factorizes the supernodes in `snodes` (ascending elimination order) in
/// place on every rank of `grid`. Collective over grid.grid(). Schur
/// updates are applied to every allocated target block, including
/// replicated-ancestor blocks when `F` is a masked (3D) layout.
void factorize_2d(Dist2dFactors& F, sim::ProcessGrid2D& grid,
                  std::span<const int> snodes, const Lu2dOptions& options = {});

}  // namespace slu3d
