// The 2D distributed right-looking supernodal LU factorization — the
// SuperLU_DIST baseline algorithm (§II-E2):
//   per supernode k: diagonal factorization at the owner of (k,k),
//   diagonal broadcast along the owner's process row and column, panel
//   solves at the owning row/column of processes, panel broadcast, then
//   the owner-only-update Schur complement on every rank.
// The schedule (lookahead pipelining, stash slots, non-blocking panel
// broadcasts) lives in the shared engine, pipeline/panel_pipeline.hpp;
// this header's implementation supplies only the LU variant policy.
//
// `snodes` restricts the factorization to a node list — this is exactly
// the dSparseLU2D(A, nList) primitive that Algorithm 1 (the 3D algorithm)
// invokes per elimination-forest level.
#pragma once

#include <span>

#include "lu2d/dist_factors.hpp"
#include "pipeline/options.hpp"
#include "simmpi/process_grid.hpp"

namespace slu3d {

/// Scheduling knobs — identical for both 2D variants, so the struct lives
/// in pipeline/options.hpp; the historical name survives for callers.
using Lu2dOptions = pipeline::PanelOptions;

/// Factorizes the supernodes in `snodes` (ascending elimination order) in
/// place on every rank of `grid`. Collective over grid.grid(). Schur
/// updates are applied to every allocated target block, including
/// replicated-ancestor blocks when `F` is a masked (3D) layout.
void factorize_2d(Dist2dFactors& F, sim::ProcessGrid2D& grid,
                  std::span<const int> snodes, const Lu2dOptions& options = {});

}  // namespace slu3d
