// Distributed supernodal Cholesky on the 2D block-cyclic layout — the
// symmetric counterpart of Dist2dFactors/factorize_2d, realizing the
// paper's §VII suggestion that the same communication-avoiding schedule
// applies to LLᵀ. Only the lower triangle is stored: the L panel plays
// both roles in the symmetric Schur update A(i,j) -= L(i,k) L(j,k)ᵀ, so a
// panel block is broadcast twice — along its process row (row role) and,
// relayed through the (a%Px, a%Py) rank, along the process column of its
// own block row (transposed role).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "lu2d/dist_factors.hpp"  // OwnedBlock
#include "numeric/cholesky.hpp"
#include "pipeline/options.hpp"
#include "simmpi/process_grid.hpp"

namespace slu3d {

class DistCholFactors {
 public:
  /// `want_snode` restricts allocation (3D masked layouts); empty = all.
  DistCholFactors(const BlockStructure& bs, int Px, int Py, int px, int py,
                  std::vector<bool> want_snode = {});

  const BlockStructure& structure() const { return *bs_; }

  bool wants_snode(int s) const {
    return want_.empty() || want_[static_cast<std::size_t>(s)];
  }
  bool owns(int block_row, int block_col) const {
    return block_row % Px_ == px_ && block_col % Py_ == py_;
  }
  int owner_of(int block_row, int block_col) const {
    return (block_row % Px_) * Py_ + (block_col % Py_);
  }

  bool has_diag(int s) const { return owns(s, s) && wants_snode(s); }
  std::span<real_t> diag(int s) { return diag_[static_cast<std::size_t>(s)]; }
  std::span<const real_t> diag(int s) const {
    return diag_[static_cast<std::size_t>(s)];
  }
  std::span<OwnedBlock> lblocks(int s) { return lblocks_[static_cast<std::size_t>(s)]; }
  std::span<const OwnedBlock> lblocks(int s) const {
    return lblocks_[static_cast<std::size_t>(s)];
  }
  OwnedBlock* find_lblock(int s, int a);

  /// Scatters the lower triangle of the permuted matrix into owned blocks.
  void fill_from(const CsrMatrix& Ap);

  offset_t allocated_bytes() const;

 private:
  const BlockStructure* bs_;
  int Px_, Py_, px_, py_;
  std::vector<bool> want_;
  std::vector<std::vector<real_t>> diag_;
  std::vector<std::vector<OwnedBlock>> lblocks_;
};

/// Same scheduling knobs as the LU variant (pipeline/options.hpp); the
/// historical name survives for callers.
using Chol2dOptions = pipeline::PanelOptions;

/// Distributed right-looking Cholesky over `snodes` (ascending).
/// Collective over grid.grid(). Works on masked (3D) layouts too.
void factorize_2d_cholesky(DistCholFactors& F, sim::ProcessGrid2D& grid,
                           std::span<const int> snodes,
                           const Chol2dOptions& options = {});

/// Distributed solve L Lᵀ X = B on an unmasked 2D layout; every rank
/// passes the full permuted right-hand-side panel (n x nrhs,
/// column-major) and receives the full solution panel. One sweep of
/// messages serves the whole batch.
void solve_2d_cholesky(DistCholFactors& F, sim::ProcessGrid2D& grid,
                       std::span<real_t> x, int tag_base = (1 << 24),
                       index_t nrhs = 1);

}  // namespace slu3d
