// Distributed triangular solves on the 2D block-cyclic factors — the
// SuperLU_DIST pdgstrs counterpart. Forward substitution walks supernodes
// bottom-up: the diagonal owner solves its block, sends the solution
// slice to the L-panel block owners in its process column, and each of
// those sends one partial product to the target supernode's diagonal
// owner. Backward substitution mirrors this through the U panels,
// top-down. All routing is derived from the replicated symbolic
// structure; contribution counts are known in advance on every rank.
#pragma once

#include <span>

#include "lu2d/dist_factors.hpp"
#include "simmpi/process_grid.hpp"

namespace slu3d {

struct Solve2dOptions {
  /// Base message tag; the solver uses a tag range disjoint per call when
  /// callers pick distinct bases (see solve2d_tag_span).
  int tag_base = (1 << 24);
  /// Number of right-hand-side columns solved in one sweep. `x` is then an
  /// n x nrhs column-major panel; one set of broadcasts and contribution
  /// messages serves the whole batch (message counts are independent of
  /// nrhs, sizes scale with it).
  index_t nrhs = 1;
};

/// Number of distinct message tags one solve_2d call may consume starting
/// at `tag_base`. Callers issuing several solves on the same communicator
/// must advance tag_base by at least this span between calls.
int solve2d_tag_span(const BlockStructure& bs);

/// Solves L U X = B in the permuted index space on the factored `F`.
/// Collective over grid.grid(). Every rank passes the full permuted
/// right-hand side panel in `x` (replicated, n x nrhs column-major); on
/// return every rank's `x` holds the full solution panel. `snodes`
/// defaults to all supernodes; a restricted ascending list solves the
/// corresponding principal subsystem.
void solve_2d(Dist2dFactors& F, sim::ProcessGrid2D& grid, std::span<real_t> x,
              const Solve2dOptions& options = {});

}  // namespace slu3d
