#include "lu2d/dist_chol.hpp"

#include <algorithm>
#include <span>

#include "numeric/dense_kernels.hpp"
#include "numeric/kernel_scratch.hpp"
#include "numeric/schur.hpp"
#include "pipeline/panel_pipeline.hpp"
#include "support/check.hpp"

namespace slu3d {

namespace {
using sim::CommPlane;
using sim::ComputeKind;
}  // namespace

DistCholFactors::DistCholFactors(const BlockStructure& bs, int Px, int Py,
                                 int px, int py, std::vector<bool> want_snode)
    : bs_(&bs), Px_(Px), Py_(Py), px_(px), py_(py), want_(std::move(want_snode)) {
  SLU3D_CHECK(Px > 0 && Py > 0, "bad grid extents");
  const auto nsn = static_cast<std::size_t>(bs.n_snodes());
  SLU3D_CHECK(want_.empty() || want_.size() == nsn, "want_snode size mismatch");
  diag_.resize(nsn);
  lblocks_.resize(nsn);
  for (int s = 0; s < bs.n_snodes(); ++s) {
    const auto ns = static_cast<std::size_t>(bs.snode_size(s));
    if (ns == 0 || !wants_snode(s)) continue;
    if (owns(s, s)) diag_[static_cast<std::size_t>(s)].assign(ns * ns, 0.0);
    const auto panel = bs.lpanel(s);
    for (int k = 0; k < static_cast<int>(panel.size()); ++k) {
      const auto& blk = panel[static_cast<std::size_t>(k)];
      if (owns(blk.snode, s))
        lblocks_[static_cast<std::size_t>(s)].push_back(
            {k, std::vector<real_t>(static_cast<std::size_t>(blk.n_rows()) * ns, 0.0)});
    }
  }
}

OwnedBlock* DistCholFactors::find_lblock(int s, int a) {
  auto blocks = lblocks(s);
  const auto panel = bs_->lpanel(s);
  const auto it = std::lower_bound(
      blocks.begin(), blocks.end(), a, [&](const OwnedBlock& b, int key) {
        return panel[static_cast<std::size_t>(b.panel_idx)].snode < key;
      });
  if (it == blocks.end() ||
      panel[static_cast<std::size_t>(it->panel_idx)].snode != a)
    return nullptr;
  return &*it;
}

void DistCholFactors::fill_from(const CsrMatrix& Ap) {
  SLU3D_CHECK(Ap.n_rows() == bs_->n(), "matrix size mismatch");
  for (index_t i = 0; i < Ap.n_rows(); ++i) {
    const int si = bs_->col_to_snode(i);
    const auto cols = Ap.row_cols(i);
    const auto vals = Ap.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const index_t j = cols[k];
      if (j > i) break;  // lower triangle only
      const real_t v = vals[k];
      const int sj = bs_->col_to_snode(j);
      if (si == sj) {
        if (!has_diag(si)) continue;
        const index_t f = bs_->first_col(si);
        const index_t ns = bs_->snode_size(si);
        diag_[static_cast<std::size_t>(si)]
             [static_cast<std::size_t>((i - f) + (j - f) * ns)] += v;
      } else {
        if (!owns(si, sj) || !wants_snode(sj)) continue;
        OwnedBlock* blk = find_lblock(sj, si);
        SLU3D_CHECK(blk != nullptr, "missing owned L block");
        const auto& rows =
            bs_->lpanel(sj)[static_cast<std::size_t>(blk->panel_idx)].rows;
        const auto it = std::lower_bound(rows.begin(), rows.end(), i);
        SLU3D_CHECK(it != rows.end() && *it == i, "entry outside L structure");
        const auto r = static_cast<std::size_t>(it - rows.begin());
        blk->data[r + static_cast<std::size_t>(j - bs_->first_col(sj)) * rows.size()] += v;
      }
    }
  }
}

offset_t DistCholFactors::allocated_bytes() const {
  offset_t bytes = 0;
  for (std::size_t s = 0; s < diag_.size(); ++s) {
    bytes += static_cast<offset_t>(diag_[s].size() * sizeof(real_t));
    for (const auto& b : lblocks_[s])
      bytes += static_cast<offset_t>(b.data.size() * sizeof(real_t));
  }
  return bytes;
}

namespace {

/// Cholesky variant policy for the shared panel-pipeline engine
/// (pipeline/panel_pipeline.hpp): POTRF on the diagonal, column-only
/// diagonal broadcast, L-panel TRSM, the transposed-role relay column
/// broadcasts, and the symmetric (lower-triangle-only) Schur scatter.
struct CholPanelPolicy {
  using Factors = DistCholFactors;
  static constexpr bool kSymmetric = true;
  static constexpr int kRowPanelOp = 1;  ///< row-role panel broadcast tag op
  static constexpr int kColPanelOp = 2;  ///< transposed-role broadcast tag op

  /// Diagonal Cholesky at the owner, broadcast down the process column
  /// (only the L-panel solvers need it, right below — stays blocking).
  template <class Engine>
  static void factor_and_solve(Engine& e, int k, index_t ns,
                               std::vector<real_t>& diag_buf) {
    Factors& F = e.factors();
    sim::ProcessGrid2D& g = e.grid();
    const BlockStructure& bs = e.structure();
    const bool in_pcol = g.py() == k % g.Py();

    diag_buf.assign(static_cast<std::size_t>(ns) * static_cast<std::size_t>(ns),
                    0.0);
    if (F.has_diag(k)) {
      auto d = F.diag(k);
      dense::potrf_lower(ns, d.data(), ns);
      g.grid().add_compute(dense::potrf_flops(ns), ComputeKind::DiagFactor);
      std::copy(d.begin(), d.end(), diag_buf.begin());
    }
    if (in_pcol) {
      g.col().bcast(k % g.Px(), e.tag(k, 0), diag_buf, CommPlane::XY);
      for (OwnedBlock& blk : F.lblocks(k)) {
        const index_t m =
            bs.lpanel(k)[static_cast<std::size_t>(blk.panel_idx)].n_rows();
        dense::trsm_right_lower_trans(ns, m, diag_buf.data(), ns,
                                      blk.data.data(), m);
        g.grid().add_compute(dense::trsm_flops(ns, m), ComputeKind::PanelSolve);
      }
    }
  }

  static std::span<const real_t> row_payload(Factors& F, int k, int a) {
    const OwnedBlock* ob = F.find_lblock(k, a);
    SLU3D_CHECK(ob != nullptr, "owner missing L block");
    return ob->data;
  }

  /// Transposed role: the L payload of block row a is relayed by the
  /// (a%Px, a%Py) rank down its process column. The relay can only
  /// re-broadcast after its own row-role request completes, so that
  /// forwarding is deferred (relay_pi >= 0) to the Schur drain, never a
  /// blocking wait inside the panel phase (which could deadlock against
  /// peers whose forwarding waits also run at their drains).
  ///
  /// Under PanelPacking::Sparse this role stays *dense*: its payloads
  /// originate on one rank per block row (the relay), so no single rank of
  /// the broadcast column could compute a presence frame for all entries
  /// the way the row/U roles' data roots can. The row role still packs;
  /// every relay copy below reads a dense row-role region regardless —
  /// the in-column relay is the row-role root (the engine expands the
  /// root's packed buffer right after the post), the deferred relay copies
  /// at the drain after the row request's wait-time expansion, and
  /// all-zero row entries (which send no data message at all) have their
  /// region zero-filled by the presence-frame exchange. That is also why
  /// the symmetric variant never prunes stash entries.
  ///
  /// PanelPacking::Targeted changes nothing here either, for the same
  /// reason: only the row role goes one-sided, and the engine's footprint
  /// predicate counts every relay duty (bi % Py == peer) into the relay's
  /// row-role footprint, so each relay copy below still reads a dense
  /// region — parsed inline in blocking mode, or at the drain by the
  /// window-delivery op that precedes every deferred relay in `ops`.
  template <class Engine>
  static void post_col_entries(Engine& e, pipeline::PanelStash& stash, int k,
                               index_t ns) {
    sim::ProcessGrid2D& g = e.grid();
    const auto panel = e.structure().lpanel(k);
    const bool in_pcol = g.py() == k % g.Py();
    for (const pipeline::StashEntry& en : stash.col_entries) {
      const PanelBlock& blk = panel[static_cast<std::size_t>(en.panel_idx)];
      const int arow = blk.snode % g.Px();
      const auto elems =
          static_cast<std::size_t>(en.m) * static_cast<std::size_t>(ns);
      const std::span<real_t> buf{stash.storage.data() + en.offset, elems};
      const bool relay = g.px() == arow;  // root of the transposed bcast
      const pipeline::StashEntry* re =
          relay ? stash.find_row_entry(en.panel_idx) : nullptr;
      if (relay) SLU3D_CHECK(re != nullptr, "relay missing row-role payload");
      if (!e.options().async) {
        if (relay)
          std::copy_n(stash.storage.data() + re->offset, elems, buf.begin());
        g.col().bcast(arow, e.tag(k, kColPanelOp), buf, CommPlane::XY);
      } else if (!relay) {
        stash.ops.push_back(
            {g.col().ibcast(arow, e.tag(k, kColPanelOp), buf, CommPlane::XY),
             -1, 0, 0, 0, -1, -1, {}});
      } else if (in_pcol) {
        // The relay is the row-role root itself: payload already local.
        std::copy_n(stash.storage.data() + re->offset, elems, buf.begin());
        stash.ops.push_back(
            {g.col().ibcast(arow, e.tag(k, kColPanelOp), buf, CommPlane::XY),
             -1, 0, 0, 0, -1, -1, {}});
      } else {
        // Deferred: re-broadcast once the row-role request (earlier in
        // `ops`) has been drained.
        stash.ops.push_back(
            {sim::Request{}, en.panel_idx, re->offset, en.offset, elems, -1,
             -1, {}});
      }
    }
  }

  static bool wants_target(const Factors& F, int /*bi*/, int bj) {
    return F.wants_snode(bj);
  }

  /// Symmetric Schur update V = L_i L_jᵀ, scattered into the
  /// lower-triangular target (diag or L block).
  template <class Engine>
  static void schur_pair(Engine& e, const PanelBlock& bi, index_t mi,
                         const real_t* ldata, const PanelBlock& bj, index_t mj,
                         const real_t* tdata, index_t ns,
                         std::span<real_t> scratch) {
    Factors& F = e.factors();
    const BlockStructure& bs = e.structure();
    // Modelled flops are charged by the engine on the rank thread before
    // the pairs fan out (schur_pair may run on a pool worker, which must
    // not touch the simulator).
    dense::gemm_minus_nt(mi, mj, ns, ldata, mi, tdata, mj, scratch.data(), mi);
    if (bi.snode == bj.snode) {
      SLU3D_CHECK(F.has_diag(bi.snode), "Schur target diag not owned");
      auto d = F.diag(bi.snode);
      const index_t f = bs.first_col(bi.snode);
      const index_t nd = bs.snode_size(bi.snode);
      for (index_t c = 0; c < mj; ++c) {
        const index_t tc = bj.rows[static_cast<std::size_t>(c)] - f;
        for (index_t r = 0; r < mi; ++r)
          d[static_cast<std::size_t>((bi.rows[static_cast<std::size_t>(r)] - f) +
                                     tc * nd)] +=
              scratch[static_cast<std::size_t>(r + c * mi)];
      }
      return;
    }
    OwnedBlock* blk = F.find_lblock(bj.snode, bi.snode);
    SLU3D_CHECK(blk != nullptr, "Schur target L block not owned");
    const auto& brows =
        bs.lpanel(bj.snode)[static_cast<std::size_t>(blk->panel_idx)].rows;
    auto pos = dense::KernelScratch::per_rank().index_stage(
        static_cast<std::size_t>(mi));
    locate_sorted_subset(bi.rows, brows, pos);
    const auto mt = brows.size();
    const index_t f = bs.first_col(bj.snode);
    for (index_t c = 0; c < mj; ++c) {
      const auto tc =
          static_cast<std::size_t>(bj.rows[static_cast<std::size_t>(c)] - f);
      for (index_t r = 0; r < mi; ++r)
        blk->data[static_cast<std::size_t>(pos[static_cast<std::size_t>(r)]) +
                  tc * mt] += scratch[static_cast<std::size_t>(r + c * mi)];
    }
  }
};

}  // namespace

void factorize_2d_cholesky(DistCholFactors& F, sim::ProcessGrid2D& grid,
                           std::span<const int> snodes,
                           const Chol2dOptions& options) {
  pipeline::PanelEngine<CholPanelPolicy>(F, grid, options).run(snodes);
}

void solve_2d_cholesky(DistCholFactors& F, sim::ProcessGrid2D& grid,
                       std::span<real_t> x, int tag_base, index_t nrhs) {
  const BlockStructure& bs = F.structure();
  const index_t n = bs.n();
  SLU3D_CHECK(nrhs >= 1, "nrhs must be positive");
  SLU3D_CHECK(x.size() == static_cast<std::size_t>(n) *
                              static_cast<std::size_t>(nrhs),
              "x panel size");
  sim::Comm& comm = grid.grid();
  const int nsn = bs.n_snodes();

  // Descendant index (c, panel block idx) per ancestor.
  std::vector<std::vector<std::pair<int, int>>> by_anc(static_cast<std::size_t>(nsn));
  for (int c = 0; c < nsn; ++c) {
    const auto panel = bs.lpanel(c);
    for (int k = 0; k < static_cast<int>(panel.size()); ++k)
      by_anc[static_cast<std::size_t>(panel[static_cast<std::size_t>(k)].snode)]
          .push_back({c, k});
  }
  auto diag_owner = [&](int s) { return F.owner_of(s, s); };
  auto ftag = [&](int s) { return tag_base + s; };
  auto btag = [&](int s) { return tag_base + nsn + s; };
  // The solve operates on an n x nrhs column-major panel; one sweep of
  // broadcasts and contribution messages serves the whole batch.
  auto gather_slice = [&](index_t f, index_t ns, std::vector<real_t>& buf) {
    buf.resize(static_cast<std::size_t>(ns) * static_cast<std::size_t>(nrhs));
    for (index_t j = 0; j < nrhs; ++j)
      for (index_t r = 0; r < ns; ++r)
        buf[static_cast<std::size_t>(r + j * ns)] =
            x[static_cast<std::size_t>(f + r + j * n)];
  };
  auto scatter_slice = [&](std::span<const real_t> buf, index_t f, index_t ns) {
    for (index_t j = 0; j < nrhs; ++j)
      for (index_t r = 0; r < ns; ++r)
        x[static_cast<std::size_t>(f + r + j * n)] =
            buf[static_cast<std::size_t>(r + j * ns)];
  };

  // Forward L y = b (non-unit diagonal).
  std::vector<real_t> buf, vbuf;
  for (int s = 0; s < nsn; ++s) {
    const index_t ns = bs.snode_size(s);
    if (ns == 0) continue;
    const index_t f = bs.first_col(s);
    const bool in_pcol = grid.py() == s % grid.Py();
    if (comm.rank() == diag_owner(s)) {
      for (const auto& [c, blkidx] : by_anc[static_cast<std::size_t>(s)]) {
        const PanelBlock& blk = bs.lpanel(c)[static_cast<std::size_t>(blkidx)];
        const auto v = comm.recv(F.owner_of(s, c), ftag(c), sim::CommPlane::XY);
        const auto m = blk.rows.size();
        SLU3D_CHECK(v.size() == m * static_cast<std::size_t>(nrhs),
                    "contribution size");
        for (index_t j = 0; j < nrhs; ++j)
          for (std::size_t r = 0; r < m; ++r)
            x[static_cast<std::size_t>(blk.rows[r] + j * n)] -=
                v[r + static_cast<std::size_t>(j) * m];
      }
      dense::trsm_left_lower(ns, nrhs, F.diag(s).data(), ns, x.data() + f, n);
    }
    if (in_pcol) {
      gather_slice(f, ns, buf);
      grid.col().bcast(s % grid.Px(), ftag(s), buf, sim::CommPlane::XY);
      scatter_slice(buf, f, ns);
      for (const OwnedBlock& ob : F.lblocks(s)) {
        const PanelBlock& blk = bs.lpanel(s)[static_cast<std::size_t>(ob.panel_idx)];
        const auto m = static_cast<index_t>(blk.rows.size());
        vbuf.assign(static_cast<std::size_t>(m) * static_cast<std::size_t>(nrhs),
                    0.0);
        for (index_t j = 0; j < nrhs; ++j)
          for (index_t c = 0; c < ns; ++c) {
            const real_t yc = buf[static_cast<std::size_t>(c + j * ns)];
            if (yc == 0.0) continue;
            for (index_t r = 0; r < m; ++r)
              vbuf[static_cast<std::size_t>(r + j * m)] +=
                  ob.data[static_cast<std::size_t>(r + c * m)] * yc;
          }
        comm.send(diag_owner(blk.snode), ftag(s), vbuf, sim::CommPlane::XY);
      }
    }
  }

  // Backward Lᵀ x = y: x_a is broadcast along process *row* a%Px (where
  // all L(a, s) owners live); each owner sends Lᵀ-contributions to the
  // descendant's diagonal owner.
  for (int s = nsn - 1; s >= 0; --s) {
    const index_t ns = bs.snode_size(s);
    if (ns == 0) continue;
    const index_t f = bs.first_col(s);
    const bool in_prow = grid.px() == s % grid.Px();
    if (comm.rank() == diag_owner(s)) {
      for (const PanelBlock& blk : bs.lpanel(s)) {
        const auto v =
            comm.recv(F.owner_of(blk.snode, s), btag(blk.snode), sim::CommPlane::XY);
        SLU3D_CHECK(v.size() == static_cast<std::size_t>(ns) *
                                    static_cast<std::size_t>(nrhs),
                    "contribution size");
        for (index_t j = 0; j < nrhs; ++j)
          for (index_t r = 0; r < ns; ++r)
            x[static_cast<std::size_t>(f + r + j * n)] -=
                v[static_cast<std::size_t>(r + j * ns)];
      }
      dense::trsm_left_lower_trans(ns, nrhs, F.diag(s).data(), ns, x.data() + f,
                                   n);
    }
    if (in_prow) {
      gather_slice(f, ns, buf);
      grid.row().bcast(s % grid.Py(), btag(s), buf, sim::CommPlane::XY);
      scatter_slice(buf, f, ns);
      // Contributions to descendants c with a block (s, c): v = L(s,c)ᵀ x_s.
      const auto& pairs = by_anc[static_cast<std::size_t>(s)];
      for (auto it = pairs.rbegin(); it != pairs.rend(); ++it) {
        const auto& [c, blkidx] = *it;
        if (c % grid.Py() != grid.py()) continue;  // L(s, c) not in my col
        OwnedBlock* ob = F.find_lblock(c, s);
        SLU3D_CHECK(ob != nullptr, "missing owned L block in solve");
        const PanelBlock& blk = bs.lpanel(c)[static_cast<std::size_t>(blkidx)];
        const index_t nc = bs.snode_size(c);
        const auto m = static_cast<index_t>(blk.rows.size());
        vbuf.assign(static_cast<std::size_t>(nc) * static_cast<std::size_t>(nrhs),
                    0.0);
        for (index_t j = 0; j < nrhs; ++j)
          for (index_t col = 0; col < nc; ++col) {
            real_t acc = 0.0;
            for (index_t r = 0; r < m; ++r)
              acc += ob->data[static_cast<std::size_t>(r + col * m)] *
                     x[static_cast<std::size_t>(
                         blk.rows[static_cast<std::size_t>(r)] + j * n)];
            vbuf[static_cast<std::size_t>(col + j * nc)] = acc;
          }
        comm.send(diag_owner(c), btag(s), vbuf, sim::CommPlane::XY);
      }
    }
  }

  // Redistribute the solution to every rank.
  const int gather_tag = tag_base + 2 * nsn;
  std::vector<real_t> packed, slice;
  for (int s = 0; s < nsn; ++s)
    if (comm.rank() == diag_owner(s)) {
      gather_slice(bs.first_col(s), bs.snode_size(s), slice);
      packed.insert(packed.end(), slice.begin(), slice.end());
    }
  const std::vector<real_t> all =
      comm.allgatherv(gather_tag, packed, sim::CommPlane::XY);
  std::size_t pos = 0;
  for (int r = 0; r < comm.size(); ++r)
    for (int s = 0; s < nsn; ++s) {
      if (diag_owner(s) != r) continue;
      const auto ns = bs.snode_size(s);
      const auto len =
          static_cast<std::size_t>(ns) * static_cast<std::size_t>(nrhs);
      SLU3D_CHECK(pos + len <= all.size(), "gather underflow");
      scatter_slice(std::span<const real_t>(all).subspan(pos, len),
                    bs.first_col(s), ns);
      pos += len;
    }
  SLU3D_CHECK(pos == all.size(), "gather stream not fully consumed");
}

}  // namespace slu3d
