#include "lu2d/solve2d.hpp"

#include <vector>

#include "numeric/dense_kernels.hpp"
#include "support/check.hpp"

namespace slu3d {

namespace {

using sim::CommPlane;
using sim::ComputeKind;

/// For each supernode a, the list of (descendant supernode c, panel block
/// index) pairs with a block (a-range rows) in c's panel — i.e. the
/// senders of forward contributions to a, and (transposed) the targets of
/// backward contributions from a. Ascending in c by construction.
std::vector<std::vector<std::pair<int, int>>> blocks_by_ancestor(
    const BlockStructure& bs) {
  std::vector<std::vector<std::pair<int, int>>> by_anc(
      static_cast<std::size_t>(bs.n_snodes()));
  for (int c = 0; c < bs.n_snodes(); ++c) {
    const auto panel = bs.lpanel(c);
    for (int k = 0; k < static_cast<int>(panel.size()); ++k)
      by_anc[static_cast<std::size_t>(panel[static_cast<std::size_t>(k)].snode)]
          .push_back({c, k});
  }
  return by_anc;
}

/// All solves operate on an n x nrhs column-major panel X (ldx = n), so one
/// sweep of broadcasts and point-to-point messages serves the whole batch:
/// message sizes scale with nrhs but message *counts* do not. Contribution
/// messages carry the *negated* partial product (gemm_minus computes
/// C -= A B into a zeroed buffer), so receivers accumulate with +=.
class Solve2dDriver {
 public:
  Solve2dDriver(Dist2dFactors& F, sim::ProcessGrid2D& grid,
                const Solve2dOptions& opt)
      : F_(F), g_(grid), bs_(F.structure()), opt_(opt),
        n_(bs_.n()), nrhs_(opt.nrhs), by_anc_(blocks_by_ancestor(bs_)) {}

  void run(std::span<real_t> x) {
    SLU3D_CHECK(nrhs_ >= 1, "nrhs must be positive");
    SLU3D_CHECK(x.size() == static_cast<std::size_t>(n_) *
                                static_cast<std::size_t>(nrhs_),
                "x panel size");
    forward(x);
    backward(x);
    redistribute(x);
  }

 private:
  int diag_owner(int s) const { return F_.owner_of(s, s); }
  int ftag(int s) const { return opt_.tag_base + s; }                   // forward
  int btag(int s) const { return opt_.tag_base + bs_.n_snodes() + s; }  // backward
  int gtag() const { return opt_.tag_base + 2 * bs_.n_snodes(); }       // gather

  /// Copies rows [f, f+ns) of all nrhs panel columns into a contiguous
  /// ns x nrhs buffer (and back).
  void gather_slice(std::span<const real_t> x, index_t f, index_t ns,
                    std::vector<real_t>& buf) const {
    buf.resize(static_cast<std::size_t>(ns) * static_cast<std::size_t>(nrhs_));
    for (index_t j = 0; j < nrhs_; ++j)
      for (index_t r = 0; r < ns; ++r)
        buf[static_cast<std::size_t>(r + j * ns)] =
            x[static_cast<std::size_t>(f + r + j * n_)];
  }
  void scatter_slice(std::span<const real_t> buf, index_t f, index_t ns,
                     std::span<real_t> x) const {
    for (index_t j = 0; j < nrhs_; ++j)
      for (index_t r = 0; r < ns; ++r)
        x[static_cast<std::size_t>(f + r + j * n_)] =
            buf[static_cast<std::size_t>(r + j * ns)];
  }

  /// L y = b, bottom-up. On return, x holds y on each supernode's process
  /// column (authoritative at the diagonal owner).
  void forward(std::span<real_t> x) {
    std::vector<real_t> ybuf, vbuf;
    for (int s = 0; s < bs_.n_snodes(); ++s) {
      const index_t ns = bs_.snode_size(s);
      if (ns == 0) continue;
      const index_t f = bs_.first_col(s);
      const bool in_pcol = g_.py() == s % g_.Py();

      if (F_.has_diag(s)) {
        // Collect partial products from every L block targeting s.
        for (const auto& [c, blkidx] : by_anc_[static_cast<std::size_t>(s)]) {
          const PanelBlock& blk =
              bs_.lpanel(c)[static_cast<std::size_t>(blkidx)];
          const int src = F_.owner_of(s, c);
          const auto v = g_.grid().recv(src, ftag(c), CommPlane::XY);
          const auto m = blk.rows.size();
          SLU3D_CHECK(v.size() == m * static_cast<std::size_t>(nrhs_),
                      "contribution size");
          for (index_t j = 0; j < nrhs_; ++j)
            for (std::size_t r = 0; r < m; ++r)
              x[static_cast<std::size_t>(blk.rows[r] + j * n_)] +=
                  v[r + static_cast<std::size_t>(j) * m];
        }
        dense::trsm_left_lower_unit(ns, nrhs_, F_.diag(s).data(), ns,
                                    x.data() + f, n_);
        g_.grid().add_compute(dense::trsm_flops(ns, nrhs_), ComputeKind::Other);
      }

      // Share y_s with the L-block owners (all in process column s%Py).
      if (in_pcol) {
        gather_slice(x, f, ns, ybuf);
        g_.col().bcast(s % g_.Px(), ftag(s), ybuf, CommPlane::XY);
        scatter_slice(ybuf, f, ns, x);

        // Each owned L block contributes to its ancestor's rows.
        for (const OwnedBlock& ob : F_.lblocks(s)) {
          const PanelBlock& blk =
              bs_.lpanel(s)[static_cast<std::size_t>(ob.panel_idx)];
          const auto m = static_cast<index_t>(blk.rows.size());
          vbuf.assign(static_cast<std::size_t>(m) *
                          static_cast<std::size_t>(nrhs_),
                      0.0);
          dense::gemm_minus(m, nrhs_, ns, ob.data.data(), m, ybuf.data(), ns,
                            vbuf.data(), m);
          g_.grid().add_compute(dense::gemm_flops(m, nrhs_, ns),
                                ComputeKind::Other);
          g_.grid().send(diag_owner(blk.snode), ftag(s), vbuf, CommPlane::XY);
        }
      }
    }
  }

  /// U x = y, top-down.
  void backward(std::span<real_t> x) {
    std::vector<real_t> xbuf, gbuf, vbuf;
    for (int s = bs_.n_snodes() - 1; s >= 0; --s) {
      const index_t ns = bs_.snode_size(s);
      if (ns == 0) continue;
      const index_t f = bs_.first_col(s);
      const bool in_pcol = g_.py() == s % g_.Py();

      if (F_.has_diag(s)) {
        // Collect partial products U(s, a) x_a from the U-block owners.
        for (const PanelBlock& blk : bs_.lpanel(s)) {
          const int src = F_.owner_of(s, blk.snode);
          const auto v = g_.grid().recv(src, btag(blk.snode), CommPlane::XY);
          SLU3D_CHECK(v.size() == static_cast<std::size_t>(ns) *
                                      static_cast<std::size_t>(nrhs_),
                      "contribution size");
          for (index_t j = 0; j < nrhs_; ++j)
            for (index_t r = 0; r < ns; ++r)
              x[static_cast<std::size_t>(f + r + j * n_)] +=
                  v[static_cast<std::size_t>(r + j * ns)];
        }
        dense::trsm_left_upper(ns, nrhs_, F_.diag(s).data(), ns, x.data() + f,
                               n_);
        g_.grid().add_compute(dense::trsm_flops(ns, nrhs_), ComputeKind::Other);
      }

      // Share x_s with the U-block owners (process column s%Py), then
      // each computes its contribution to a *descendant* supernode c.
      if (in_pcol) {
        gather_slice(x, f, ns, xbuf);
        g_.col().bcast(s % g_.Px(), btag(s) + bs_.n_snodes(), xbuf,
                       CommPlane::XY);
        scatter_slice(xbuf, f, ns, x);

        // Descending c so the receivers' (descending) loop matches the
        // per-(src, tag) FIFO order.
        const auto& pairs = by_anc_[static_cast<std::size_t>(s)];
        for (auto it = pairs.rbegin(); it != pairs.rend(); ++it) {
          const auto& [c, blkidx] = *it;
          if (c % g_.Px() != g_.px()) continue;  // U(c, s) not in my row
          OwnedBlock* ob = F_.find_ublock(c, s);
          SLU3D_CHECK(ob != nullptr, "missing owned U block in solve");
          const PanelBlock& blk =
              bs_.lpanel(c)[static_cast<std::size_t>(blkidx)];
          const index_t nc = bs_.snode_size(c);
          const auto m = static_cast<index_t>(blk.rows.size());
          // Gather the (non-contiguous) ancestor rows of x used by this
          // U block into an m x nrhs panel for the GEMM.
          gbuf.resize(static_cast<std::size_t>(m) *
                      static_cast<std::size_t>(nrhs_));
          for (index_t j = 0; j < nrhs_; ++j)
            for (index_t k = 0; k < m; ++k)
              gbuf[static_cast<std::size_t>(k + j * m)] =
                  x[static_cast<std::size_t>(
                      blk.rows[static_cast<std::size_t>(k)] + j * n_)];
          vbuf.assign(static_cast<std::size_t>(nc) *
                          static_cast<std::size_t>(nrhs_),
                      0.0);
          dense::gemm_minus(nc, nrhs_, m, ob->data.data(), nc, gbuf.data(), m,
                            vbuf.data(), nc);
          g_.grid().add_compute(dense::gemm_flops(nc, nrhs_, m),
                                ComputeKind::Other);
          g_.grid().send(diag_owner(c), btag(s), vbuf, CommPlane::XY);
        }
      }
    }
  }

  /// Collect the solution slices from the diagonal owners on every rank
  /// (a variable-size allgather in rank order).
  void redistribute(std::span<real_t> x) {
    sim::Comm& comm = g_.grid();
    std::vector<real_t> packed, slice;
    for (int s = 0; s < bs_.n_snodes(); ++s)
      if (F_.has_diag(s)) {
        gather_slice(x, bs_.first_col(s), bs_.snode_size(s), slice);
        packed.insert(packed.end(), slice.begin(), slice.end());
      }
    const std::vector<real_t> all =
        comm.allgatherv(gtag(), packed, CommPlane::XY);
    std::size_t pos = 0;
    for (int r = 0; r < comm.size(); ++r)
      for (int s = 0; s < bs_.n_snodes(); ++s) {
        if (diag_owner(s) != r) continue;
        const auto ns = bs_.snode_size(s);
        const auto len = static_cast<std::size_t>(ns) *
                         static_cast<std::size_t>(nrhs_);
        SLU3D_CHECK(pos + len <= all.size(), "gather underflow");
        scatter_slice(std::span<const real_t>(all).subspan(pos, len),
                      bs_.first_col(s), ns, x);
        pos += len;
      }
    SLU3D_CHECK(pos == all.size(), "gather stream not fully consumed");
  }

  Dist2dFactors& F_;
  sim::ProcessGrid2D& g_;
  const BlockStructure& bs_;
  Solve2dOptions opt_;
  index_t n_;
  index_t nrhs_;
  std::vector<std::vector<std::pair<int, int>>> by_anc_;
};

}  // namespace

int solve2d_tag_span(const BlockStructure& bs) {
  // ftag/btag/backward-bcast each use n_snodes tags, gtag one more; the
  // extra headroom keeps the stride aligned with solve3d_tag_span so one
  // allocator can serve both.
  return 4 * bs.n_snodes() + 8;
}

void solve_2d(Dist2dFactors& F, sim::ProcessGrid2D& grid, std::span<real_t> x,
              const Solve2dOptions& options) {
  SLU3D_CHECK(F.wants_snode(0) || F.structure().n_snodes() == 0,
              "solve_2d requires an unmasked (pure 2D) layout");
  Solve2dDriver(F, grid, options).run(x);
}

}  // namespace slu3d
