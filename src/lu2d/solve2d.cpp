#include "lu2d/solve2d.hpp"

#include <vector>

#include "numeric/dense_kernels.hpp"
#include "support/check.hpp"

namespace slu3d {

namespace {

using sim::CommPlane;
using sim::ComputeKind;

/// For each supernode a, the list of (descendant supernode c, panel block
/// index) pairs with a block (a-range rows) in c's panel — i.e. the
/// senders of forward contributions to a, and (transposed) the targets of
/// backward contributions from a. Ascending in c by construction.
std::vector<std::vector<std::pair<int, int>>> blocks_by_ancestor(
    const BlockStructure& bs) {
  std::vector<std::vector<std::pair<int, int>>> by_anc(
      static_cast<std::size_t>(bs.n_snodes()));
  for (int c = 0; c < bs.n_snodes(); ++c) {
    const auto panel = bs.lpanel(c);
    for (int k = 0; k < static_cast<int>(panel.size()); ++k)
      by_anc[static_cast<std::size_t>(panel[static_cast<std::size_t>(k)].snode)]
          .push_back({c, k});
  }
  return by_anc;
}

class Solve2dDriver {
 public:
  Solve2dDriver(Dist2dFactors& F, sim::ProcessGrid2D& grid,
                const Solve2dOptions& opt)
      : F_(F), g_(grid), bs_(F.structure()), opt_(opt),
        by_anc_(blocks_by_ancestor(bs_)) {}

  void run(std::span<real_t> x) {
    SLU3D_CHECK(x.size() == static_cast<std::size_t>(bs_.n()), "x size");
    forward(x);
    backward(x);
    redistribute(x);
  }

 private:
  int diag_owner(int s) const { return F_.owner_of(s, s); }
  int ftag(int s) const { return opt_.tag_base + s; }                   // forward
  int btag(int s) const { return opt_.tag_base + bs_.n_snodes() + s; }  // backward
  int gtag() const { return opt_.tag_base + 2 * bs_.n_snodes(); }       // gather

  /// L y = b, bottom-up. On return, x holds y on each supernode's process
  /// column (authoritative at the diagonal owner).
  void forward(std::span<real_t> x) {
    std::vector<real_t> ybuf;
    for (int s = 0; s < bs_.n_snodes(); ++s) {
      const index_t ns = bs_.snode_size(s);
      if (ns == 0) continue;
      const index_t f = bs_.first_col(s);
      const bool in_pcol = g_.py() == s % g_.Py();

      if (F_.has_diag(s)) {
        // Collect partial products from every L block targeting s.
        for (const auto& [c, blkidx] : by_anc_[static_cast<std::size_t>(s)]) {
          const PanelBlock& blk =
              bs_.lpanel(c)[static_cast<std::size_t>(blkidx)];
          const int src = F_.owner_of(s, c);
          const auto v = g_.grid().recv(src, ftag(c), CommPlane::XY);
          SLU3D_CHECK(v.size() == blk.rows.size(), "contribution size");
          for (std::size_t r = 0; r < v.size(); ++r)
            x[static_cast<std::size_t>(blk.rows[r])] -= v[r];
        }
        dense::trsv_lower_unit(ns, F_.diag(s).data(), ns, x.data() + f);
        g_.grid().add_compute(static_cast<offset_t>(ns) * ns, ComputeKind::Other);
      }

      // Share y_s with the L-block owners (all in process column s%Py).
      if (in_pcol) {
        ybuf.assign(x.begin() + f, x.begin() + f + ns);
        g_.col().bcast(s % g_.Px(), ftag(s), ybuf, CommPlane::XY);
        std::copy(ybuf.begin(), ybuf.end(), x.begin() + f);

        // Each owned L block contributes to its ancestor's rows.
        for (const OwnedBlock& ob : F_.lblocks(s)) {
          const PanelBlock& blk =
              bs_.lpanel(s)[static_cast<std::size_t>(ob.panel_idx)];
          const auto m = static_cast<index_t>(blk.rows.size());
          std::vector<real_t> v(static_cast<std::size_t>(m), 0.0);
          for (index_t c = 0; c < ns; ++c) {
            const real_t yc = ybuf[static_cast<std::size_t>(c)];
            if (yc == 0.0) continue;
            for (index_t r = 0; r < m; ++r)
              v[static_cast<std::size_t>(r)] +=
                  ob.data[static_cast<std::size_t>(r + c * m)] * yc;
          }
          g_.grid().add_compute(2 * static_cast<offset_t>(m) * ns,
                                ComputeKind::Other);
          g_.grid().send(diag_owner(blk.snode), ftag(s), v, CommPlane::XY);
        }
      }
    }
  }

  /// U x = y, top-down.
  void backward(std::span<real_t> x) {
    std::vector<real_t> xbuf;
    for (int s = bs_.n_snodes() - 1; s >= 0; --s) {
      const index_t ns = bs_.snode_size(s);
      if (ns == 0) continue;
      const index_t f = bs_.first_col(s);
      const bool in_pcol = g_.py() == s % g_.Py();

      if (F_.has_diag(s)) {
        // Collect partial products U(s, a) x_a from the U-block owners.
        for (const PanelBlock& blk : bs_.lpanel(s)) {
          const int src = F_.owner_of(s, blk.snode);
          const auto v = g_.grid().recv(src, btag(blk.snode), CommPlane::XY);
          SLU3D_CHECK(v.size() == static_cast<std::size_t>(ns), "contribution size");
          for (index_t r = 0; r < ns; ++r)
            x[static_cast<std::size_t>(f + r)] -= v[static_cast<std::size_t>(r)];
        }
        dense::trsv_upper(ns, F_.diag(s).data(), ns, x.data() + f);
        g_.grid().add_compute(static_cast<offset_t>(ns) * ns, ComputeKind::Other);
      }

      // Share x_s with the U-block owners (process column s%Py), then
      // each computes its contribution to a *descendant* supernode c.
      if (in_pcol) {
        xbuf.assign(x.begin() + f, x.begin() + f + ns);
        g_.col().bcast(s % g_.Px(), btag(s) + bs_.n_snodes(), xbuf, CommPlane::XY);
        std::copy(xbuf.begin(), xbuf.end(), x.begin() + f);

        // Descending c so the receivers' (descending) loop matches the
        // per-(src, tag) FIFO order.
        const auto& pairs = by_anc_[static_cast<std::size_t>(s)];
        for (auto it = pairs.rbegin(); it != pairs.rend(); ++it) {
          const auto& [c, blkidx] = *it;
          if (c % g_.Px() != g_.px()) continue;  // U(c, s) not in my row
          OwnedBlock* ob = F_.find_ublock(c, s);
          SLU3D_CHECK(ob != nullptr, "missing owned U block in solve");
          const PanelBlock& blk =
              bs_.lpanel(c)[static_cast<std::size_t>(blkidx)];
          const index_t nc = bs_.snode_size(c);
          const auto m = static_cast<index_t>(blk.rows.size());
          std::vector<real_t> v(static_cast<std::size_t>(nc), 0.0);
          for (index_t k = 0; k < m; ++k) {
            const real_t xk =
                x[static_cast<std::size_t>(blk.rows[static_cast<std::size_t>(k)])];
            if (xk == 0.0) continue;
            for (index_t r = 0; r < nc; ++r)
              v[static_cast<std::size_t>(r)] +=
                  ob->data[static_cast<std::size_t>(r + k * nc)] * xk;
          }
          g_.grid().add_compute(2 * static_cast<offset_t>(m) * nc,
                                ComputeKind::Other);
          g_.grid().send(diag_owner(c), btag(s), v, CommPlane::XY);
        }
      }
    }
  }

  /// Collect the solution slices from the diagonal owners on every rank
  /// (a variable-size allgather in rank order).
  void redistribute(std::span<real_t> x) {
    sim::Comm& comm = g_.grid();
    std::vector<real_t> packed;
    for (int s = 0; s < bs_.n_snodes(); ++s)
      if (F_.has_diag(s))
        packed.insert(packed.end(), x.begin() + bs_.first_col(s),
                      x.begin() + bs_.first_col(s) + bs_.snode_size(s));
    const std::vector<real_t> all =
        comm.allgatherv(gtag(), packed, CommPlane::XY);
    std::size_t pos = 0;
    for (int r = 0; r < comm.size(); ++r)
      for (int s = 0; s < bs_.n_snodes(); ++s) {
        if (diag_owner(s) != r) continue;
        const auto ns = static_cast<std::size_t>(bs_.snode_size(s));
        SLU3D_CHECK(pos + ns <= all.size(), "gather underflow");
        std::copy_n(all.begin() + static_cast<std::ptrdiff_t>(pos), ns,
                    x.begin() + bs_.first_col(s));
        pos += ns;
      }
    SLU3D_CHECK(pos == all.size(), "gather stream not fully consumed");
  }

  Dist2dFactors& F_;
  sim::ProcessGrid2D& g_;
  const BlockStructure& bs_;
  Solve2dOptions opt_;
  std::vector<std::vector<std::pair<int, int>>> by_anc_;
};

}  // namespace

void solve_2d(Dist2dFactors& F, sim::ProcessGrid2D& grid, std::span<real_t> x,
              const Solve2dOptions& options) {
  SLU3D_CHECK(F.wants_snode(0) || F.structure().n_snodes() == 0,
              "solve_2d requires an unmasked (pure 2D) layout");
  Solve2dDriver(F, grid, options).run(x);
}

}  // namespace slu3d
