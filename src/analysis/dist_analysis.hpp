// Distributed analysis phase: nested-dissection ordering + symbolic
// factorization executed *inside* the simulated ranks, so the cold-start
// cost of analysis lands on the simulated clock (and in the W_analysis /
// msg_analysis counters) instead of host wall time.
//
// Two in-sim modes share one entry point:
//  - SequentialSim: rank 0 runs the whole host analysis, charged to its
//    clock, then broadcasts the results — the honest "serial analysis"
//    baseline every distributed claim is measured against.
//  - Distributed: subtree-parallel nested dissection (order/parallel_nd)
//    followed by distributed symbolic factorization — a boolean SpGEMM
//    over the separator hierarchy. Each rank owns a contiguous subtree of
//    supernodes (the same leader mapping the dissection recursion uses),
//    computes their candidate row structures locally from the replicated
//    symmetrized pattern, merges fill upward, and ships only the row sets
//    that escape its subtree up the leader chain. The elimination tree is
//    computed the same way: Liu's algorithm over contiguous subtree row
//    ranges, with compressed boundary maps {(vertex, current root)}
//    climbing the same chain.
//
// Determinism contract: both modes return bitwise-identical permutations,
// separator trees, elimination trees, and BlockStructures to the host
// analysis (analyze_host), on every rank. The sequential path is the
// oracle; tests/test_dist_analysis.cpp pins the equivalence. See
// DESIGN.md, "Distributed analysis" for the structural argument.
#pragma once

#include <memory>
#include <vector>

#include "order/nested_dissection.hpp"
#include "simmpi/runtime.hpp"
#include "symbolic/block_structure.hpp"

namespace slu3d {

/// Where the cold-start analysis (ordering + symbolic) runs.
enum class AnalysisMode {
  Host,           ///< on the host, outside the simulated clock (legacy)
  SequentialSim,  ///< in-sim: rank 0 computes everything and broadcasts
  Distributed,    ///< in-sim: subtree-parallel over all ranks
};

/// The complete analysis product. All three parts are identical across
/// ranks and modes (the determinism contract above).
struct AnalysisResult {
  std::unique_ptr<SeparatorTree> tree;
  std::vector<index_t> etree;  ///< scalar etree of the permuted pattern
  std::unique_ptr<BlockStructure> bs;
};

/// Host-side analysis — the oracle the in-sim modes must reproduce.
AnalysisResult analyze_host(const CsrMatrix& A, const NdOptions& opts);

/// Collective in-sim analysis over all ranks of `comm`. `mode` must be
/// SequentialSim or Distributed. Every rank returns the full (identical)
/// result; the work and traffic are bracketed in the rank's analysis-phase
/// counters (Comm::begin/end_analysis_phase).
AnalysisResult analyze_in_sim(const CsrMatrix& A, sim::Comm& comm,
                              const NdOptions& opts, AnalysisMode mode);

}  // namespace slu3d
