#include "analysis/dist_analysis.hpp"

#include <algorithm>
#include <utility>

#include "order/parallel_nd.hpp"
#include "support/check.hpp"
#include "symbolic/etree.hpp"

namespace slu3d {

namespace {

using sim::CommPlane;
using sim::ComputeKind;

/// Flop-equivalents per symbolic-analysis operation (an edge scan, an
/// ancestor-chain hop, a rowset merge step — all irregular pointer-chasing
/// work). gamma in the machine model is calibrated to streaming dense
/// flops; latency-bound graph operations run ~100x slower per touched
/// element, so each counted op is charged this many model flops. The same
/// calibration drives the dissection work model (kNdWorkFactor in
/// order/parallel_nd.cpp).
constexpr offset_t kGraphOpFlops = 100;

void charge_ops(sim::Comm& comm, offset_t ops) {
  comm.add_compute(ops * kGraphOpFlops, sim::ComputeKind::Other);
}

// Tag layout (disjoint from parallel_nd's 100/300/500 channels):
constexpr int kSeqTreeTag = 600;    // +1 payload
constexpr int kSeqEtreeTag = 602;
constexpr int kSeqRowsTag = 603;    // +1 payload
constexpr int kEtreeTag = 700;      // + stack level
constexpr int kSymTag = 800;        // + stack level
constexpr int kGatherEtreeTag = 900;
constexpr int kGatherRowsTag = 901;

// ---- flat real_t codecs for the simulated wire -----------------------

std::vector<real_t> encode_pairs(
    const std::vector<std::pair<index_t, index_t>>& pairs) {
  std::vector<real_t> out;
  out.reserve(pairs.size() * 2);
  for (const auto& [a, b] : pairs) {
    out.push_back(static_cast<real_t>(a));
    out.push_back(static_cast<real_t>(b));
  }
  return out;
}

std::vector<std::pair<index_t, index_t>> decode_pairs(
    std::span<const real_t> v) {
  SLU3D_CHECK(v.size() % 2 == 0, "pair stream must have even length");
  std::vector<std::pair<index_t, index_t>> out;
  out.reserve(v.size() / 2);
  for (std::size_t i = 0; i < v.size(); i += 2)
    out.push_back({static_cast<index_t>(v[i]), static_cast<index_t>(v[i + 1])});
  return out;
}

void encode_rowset(int s, std::span<const index_t> rows,
                   std::vector<real_t>& out) {
  out.push_back(static_cast<real_t>(s));
  out.push_back(static_cast<real_t>(rows.size()));
  for (index_t r : rows) out.push_back(static_cast<real_t>(r));
}

// ---- subtree-to-rank ownership ---------------------------------------

/// One entry of a rank's path through the dissection recursion: the group
/// [lo, lo+cnt) responsible for the subtree rooted at tree node `node`.
struct GroupLevel {
  int lo = 0;
  int cnt = 0;
  int node = -1;
};

void mark_subtree(const SeparatorTree& tree, const SnodeNumbering& num,
                  int node, int rank, std::vector<int>& owner) {
  owner[static_cast<std::size_t>(num.to_snode[static_cast<std::size_t>(node)])] =
      rank;
  const SepTreeNode& nd = tree.node(node);
  if (nd.left >= 0) mark_subtree(tree, num, nd.left, rank, owner);
  if (nd.right >= 0) mark_subtree(tree, num, nd.right, rank, owner);
}

/// Statically computable owner map mirroring dissect_group's leader
/// mapping: a group of one rank (or an unsplittable leaf) owns its whole
/// subtree; otherwise the halves recurse and the separator belongs to the
/// group leader.
void assign_owners(const SeparatorTree& tree, const SnodeNumbering& num,
                   int node, int lo, int cnt, std::vector<int>& owner) {
  const SepTreeNode& nd = tree.node(node);
  if (cnt == 1 || nd.is_leaf()) {
    mark_subtree(tree, num, node, lo, owner);
    return;
  }
  const int half = cnt / 2;
  assign_owners(tree, num, nd.left, lo, half, owner);
  assign_owners(tree, num, nd.right, lo + half, cnt - half, owner);
  owner[static_cast<std::size_t>(num.to_snode[static_cast<std::size_t>(node)])] =
      lo;
}

/// This rank's root-to-terminal path through the recursion. Every rank of
/// a group shares the group's entry, so send/recv pairings derived from
/// the stack line up across ranks.
std::vector<GroupLevel> descent_stack(const SeparatorTree& tree, int rank,
                                      int n_ranks) {
  std::vector<GroupLevel> stack;
  int node = tree.root(), lo = 0, cnt = n_ranks;
  while (true) {
    stack.push_back({lo, cnt, node});
    const SepTreeNode& nd = tree.node(node);
    if (cnt == 1 || nd.is_leaf()) break;
    const int half = cnt / 2;
    if (rank < lo + half) {
      cnt = half;
      node = nd.left;
    } else {
      lo += half;
      cnt -= half;
      node = nd.right;
    }
  }
  return stack;
}

// ---- distributed elimination tree (Liu over subtree row ranges) ------

/// Liu's algorithm restricted to a contiguous row range, with global-size
/// parent/ancestor state. The separator-tree structure guarantees every
/// sub-diagonal reference from a subtree row stays inside the subtree, so
/// the range can be processed with no information about other ranges;
/// `assigned` records the (vertex, parent) facts this rank established.
struct EtreeState {
  const CsrMatrix& S;  ///< symmetrized permuted pattern (replicated)
  std::vector<index_t> parent, ancestor;
  std::vector<std::pair<index_t, index_t>> assigned;
  offset_t ops = 0;

  explicit EtreeState(const CsrMatrix& pattern)
      : S(pattern),
        parent(static_cast<std::size_t>(pattern.n_rows()), -1),
        ancestor(static_cast<std::size_t>(pattern.n_rows()), -1) {}

  void process_rows(index_t row_begin, index_t row_end) {
    for (index_t i = row_begin; i < row_end; ++i) {
      for (index_t j : S.row_cols(i)) {
        ++ops;
        if (j >= i) break;  // rows are sorted; only the lower triangle
        index_t v = j;
        while (ancestor[static_cast<std::size_t>(v)] != -1 &&
               ancestor[static_cast<std::size_t>(v)] != i) {
          ++ops;
          const index_t next = ancestor[static_cast<std::size_t>(v)];
          ancestor[static_cast<std::size_t>(v)] = i;
          v = next;
        }
        if (ancestor[static_cast<std::size_t>(v)] == -1) {
          ancestor[static_cast<std::size_t>(v)] = i;
          parent[static_cast<std::size_t>(v)] = i;
          assigned.push_back({v, i});
        }
      }
    }
  }

  index_t find_root(index_t v) {
    while (ancestor[static_cast<std::size_t>(v)] != -1) {
      ++ops;
      v = ancestor[static_cast<std::size_t>(v)];
    }
    return v;
  }

  /// True when vertex k is referenced by any row at or beyond `bound`
  /// (i.e. outside the column range of the current subtree).
  bool escapes(index_t k, index_t bound) {
    const auto cols = S.row_cols(k);
    ops += static_cast<offset_t>(cols.size());
    return !cols.empty() && cols.back() >= bound;
  }

  /// Rebuilds the boundary map for a subtree whose columns end at `bound`
  /// from candidate vertices (previous boundary + imports + new separator
  /// rows), dropping vertices no later row can reference.
  std::vector<std::pair<index_t, index_t>> boundary_map(
      std::vector<index_t>& candidates, index_t bound) {
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    std::vector<std::pair<index_t, index_t>> map;
    std::vector<index_t> kept;
    for (index_t k : candidates) {
      if (!escapes(k, bound)) continue;
      kept.push_back(k);
      map.push_back({k, find_root(k)});
    }
    candidates = std::move(kept);
    return map;
  }
};

// ---- distributed supernodal symbolic (boolean SpGEMM upward merge) ---

/// The same first-ancestor merging BlockStructure's primary constructor
/// performs, restructured so each rank can run it over just the supernodes
/// it owns. Candidates come from scanning the rank's own block columns of
/// the replicated symmetric pattern (equivalent to the row scan by
/// symmetry); finished row sets whose first row escapes the rank's
/// ownership are exported up the leader chain instead of registered in a
/// local pending list. Final row sets are sorted deduplicated unions, so
/// the distributed merge order cannot change the result.
struct SymState {
  const CsrMatrix& S;
  const SnodeNumbering& num;
  const std::vector<int>& owner;
  int me;
  std::vector<std::vector<index_t>> rowsets;
  std::vector<std::vector<int>> pending;
  std::vector<int> exports;  ///< finished snodes awaiting the next send
  std::vector<int> mark;
  offset_t ops = 0;

  SymState(const CsrMatrix& pattern, const SnodeNumbering& numbering,
           const std::vector<int>& owner_map, int rank)
      : S(pattern),
        num(numbering),
        owner(owner_map),
        me(rank),
        rowsets(static_cast<std::size_t>(numbering.n_snodes)),
        pending(static_cast<std::size_t>(numbering.n_snodes)),
        mark(static_cast<std::size_t>(numbering.n), -1) {}

  /// Registers a finished row set: merge locally if this rank owns the
  /// first ancestor, else queue it for export.
  void route(int s) {
    const auto& rs = rowsets[static_cast<std::size_t>(s)];
    if (rs.empty()) return;
    const int ep = num.snode_of_col(rs.front());
    if (owner[static_cast<std::size_t>(ep)] == me)
      pending[static_cast<std::size_t>(ep)].push_back(s);
    else
      exports.push_back(s);
  }

  /// Computes the final row set of owned snode `s` (all contributing
  /// children must have been routed to pending[s] already).
  void process(int s) {
    auto& rs = rowsets[static_cast<std::size_t>(s)];
    // A-pattern candidates: rows adjacent to this snode's columns, in
    // later snodes (column-symmetric form of the sequential row scan).
    for (index_t c = num.first_col(s); c < num.beyond_col(s); ++c)
      for (index_t j : S.row_cols(c)) {
        ++ops;
        if (num.snode_of_col(j) > s) rs.push_back(j);
      }
    std::sort(rs.begin(), rs.end());
    rs.erase(std::unique(rs.begin(), rs.end()), rs.end());
    ops += static_cast<offset_t>(rs.size());
    for (index_t r : rs) mark[static_cast<std::size_t>(r)] = s;
    const index_t beyond = num.beyond_col(s);
    for (int c : pending[static_cast<std::size_t>(s)]) {
      for (index_t r : rowsets[static_cast<std::size_t>(c)]) {
        ++ops;
        if (r >= beyond && mark[static_cast<std::size_t>(r)] != s) {
          mark[static_cast<std::size_t>(r)] = s;
          rs.push_back(r);
        }
      }
    }
    std::sort(rs.begin(), rs.end());
    route(s);
  }

  std::vector<real_t> encode_exports() {
    std::vector<real_t> out;
    out.push_back(static_cast<real_t>(exports.size()));
    for (int s : exports)
      encode_rowset(s, rowsets[static_cast<std::size_t>(s)], out);
    exports.clear();
    return out;
  }

  void decode_imports(std::span<const real_t> v) {
    std::size_t pos = 0;
    const auto cnt = static_cast<std::size_t>(v[pos++]);
    for (std::size_t e = 0; e < cnt; ++e) {
      const int s = static_cast<int>(v[pos++]);
      const auto len = static_cast<std::size_t>(v[pos++]);
      auto& rs = rowsets[static_cast<std::size_t>(s)];
      rs.clear();
      rs.reserve(len);
      for (std::size_t k = 0; k < len; ++k)
        rs.push_back(static_cast<index_t>(v[pos++]));
      route(s);
    }
    SLU3D_CHECK(pos == v.size(), "rowset stream not fully consumed");
  }
};

/// Snode ids under `node`, ascending — the processing order of a rank
/// that owns the whole subtree.
std::vector<int> subtree_snodes(const SeparatorTree& tree,
                                const SnodeNumbering& num, int node) {
  std::vector<int> out;
  const auto walk = [&](auto&& self, int v) -> void {
    out.push_back(num.to_snode[static_cast<std::size_t>(v)]);
    const SepTreeNode& nd = tree.node(v);
    if (nd.left >= 0) self(self, nd.left);
    if (nd.right >= 0) self(self, nd.right);
  };
  walk(walk, node);
  std::sort(out.begin(), out.end());
  return out;
}

/// Decodes a concatenated (snode, rowset) stream into `rowsets`,
/// asserting each snode appears at most once.
void decode_all_rowsets(std::span<const real_t> v,
                        std::vector<std::vector<index_t>>& rowsets,
                        std::vector<char>& seen) {
  std::size_t pos = 0;
  while (pos < v.size()) {
    const int s = static_cast<int>(v[pos++]);
    const auto len = static_cast<std::size_t>(v[pos++]);
    SLU3D_CHECK(!seen[static_cast<std::size_t>(s)],
                "snode contributed by two ranks");
    seen[static_cast<std::size_t>(s)] = 1;
    auto& rs = rowsets[static_cast<std::size_t>(s)];
    rs.reserve(len);
    for (std::size_t k = 0; k < len; ++k)
      rs.push_back(static_cast<index_t>(v[pos++]));
  }
  SLU3D_CHECK(pos == v.size(), "rowset stream not fully consumed");
}

AnalysisResult sequential_sim(const CsrMatrix& A, sim::Comm& comm,
                              const NdOptions& opts) {
  AnalysisResult out;
  const index_t n = A.n_rows();

  // Rank 0 runs the whole host analysis, charged to its clock; everyone
  // else waits on the broadcasts — the serial-analysis baseline.
  std::vector<real_t> tree_enc;
  std::vector<real_t> size1(1, 0.0);
  if (comm.rank() == 0) {
    SeparatorTree t = nested_dissection(A, opts);
    comm.add_compute(order_detail::nd_tree_work(A, t), ComputeKind::Other);
    tree_enc = order_detail::encode_tree(t);
    size1[0] = static_cast<real_t>(tree_enc.size());
  }
  comm.bcast(0, kSeqTreeTag, size1, CommPlane::XY);
  if (comm.rank() != 0) tree_enc.resize(static_cast<std::size_t>(size1[0]));
  comm.bcast(0, kSeqTreeTag + 1, tree_enc, CommPlane::XY);
  out.tree = std::make_unique<SeparatorTree>(order_detail::decode_tree(tree_enc));

  std::vector<real_t> etree_enc(static_cast<std::size_t>(n), 0.0);
  std::vector<real_t> rows_enc;
  if (comm.rank() == 0) {
    const CsrMatrix Ap = A.permuted_symmetric(out.tree->perm());
    const CsrMatrix S =
        Ap.pattern_is_symmetric() ? Ap : Ap.symmetrized_pattern();
    const SnodeNumbering num = SnodeNumbering::from_tree(*out.tree);
    charge_ops(comm, Ap.nnz() + S.nnz() + n);

    EtreeState et(S);
    et.process_rows(0, n);
    charge_ops(comm, et.ops);
    for (index_t v = 0; v < n; ++v)
      etree_enc[static_cast<std::size_t>(v)] =
          static_cast<real_t>(et.parent[static_cast<std::size_t>(v)]);

    const std::vector<int> all_mine(static_cast<std::size_t>(num.n_snodes), 0);
    SymState sym(S, num, all_mine, 0);
    for (int s = 0; s < num.n_snodes; ++s) sym.process(s);
    charge_ops(comm, sym.ops);
    for (int s = 0; s < num.n_snodes; ++s)
      encode_rowset(s, sym.rowsets[static_cast<std::size_t>(s)], rows_enc);
    size1[0] = static_cast<real_t>(rows_enc.size());
  }
  comm.bcast(0, kSeqEtreeTag, etree_enc, CommPlane::XY);
  out.etree.resize(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v)
    out.etree[static_cast<std::size_t>(v)] =
        static_cast<index_t>(etree_enc[static_cast<std::size_t>(v)]);

  comm.bcast(0, kSeqRowsTag, size1, CommPlane::XY);
  if (comm.rank() != 0) rows_enc.resize(static_cast<std::size_t>(size1[0]));
  comm.bcast(0, kSeqRowsTag + 1, rows_enc, CommPlane::XY);

  const int n_snodes = out.tree->n_nodes();
  std::vector<std::vector<index_t>> rowsets(static_cast<std::size_t>(n_snodes));
  std::vector<char> seen(static_cast<std::size_t>(n_snodes), 0);
  decode_all_rowsets(rows_enc, rowsets, seen);
  offset_t layout = n_snodes;
  for (const auto& rs : rowsets) layout += static_cast<offset_t>(rs.size());
  charge_ops(comm, layout);
  out.bs = std::make_unique<BlockStructure>(*out.tree, std::move(rowsets));
  return out;
}

AnalysisResult distributed(const CsrMatrix& A, sim::Comm& comm,
                           const NdOptions& opts) {
  AnalysisResult out;
  const index_t n = A.n_rows();
  const int me = comm.rank();

  // Phase A: cooperative nested dissection (charges its own compute).
  out.tree = std::make_unique<SeparatorTree>(
      parallel_nested_dissection(A, comm, opts));
  const SeparatorTree& tree = *out.tree;

  // Replicated setup, paid concurrently by every rank: permuted symmetric
  // pattern + the supernode numbering.
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  const CsrMatrix S = Ap.pattern_is_symmetric() ? Ap : Ap.symmetrized_pattern();
  const SnodeNumbering num = SnodeNumbering::from_tree(tree);
  charge_ops(comm, Ap.nnz() + S.nnz() + n);

  std::vector<int> owner(static_cast<std::size_t>(num.n_snodes), -1);
  assign_owners(tree, num, tree.root(), 0, comm.size(), owner);
  const std::vector<GroupLevel> stack = descent_stack(tree, me, comm.size());
  const GroupLevel& term = stack.back();
  const bool own_terminal = me == term.lo;

  // Phase B1: distributed elimination tree.
  EtreeState et(S);
  std::vector<index_t> boundary;
  if (own_terminal) {
    const SepTreeNode& nd = tree.node(term.node);
    et.process_rows(nd.subtree_first, nd.sep_last);
    for (index_t k = nd.subtree_first; k < nd.sep_last; ++k)
      if (et.escapes(k, nd.sep_last)) boundary.push_back(k);
    charge_ops(comm, et.ops);
    et.ops = 0;
  }
  for (int i = static_cast<int>(stack.size()) - 2; i >= 0; --i) {
    const GroupLevel& e = stack[static_cast<std::size_t>(i)];
    const int half = e.cnt / 2;
    if (me == e.lo + half) {
      std::vector<std::pair<index_t, index_t>> map;
      map.reserve(boundary.size());
      for (index_t k : boundary) map.push_back({k, et.find_root(k)});
      charge_ops(comm, et.ops);
      et.ops = 0;
      comm.send(e.lo, kEtreeTag + i, encode_pairs(map), CommPlane::XY);
      break;
    }
    if (me != e.lo) break;
    const auto imported =
        decode_pairs(comm.recv(e.lo + half, kEtreeTag + i, CommPlane::XY));
    for (const auto& [k, rk] : imported)
      if (rk != k) et.ancestor[static_cast<std::size_t>(k)] = rk;
    const SepTreeNode& nd = tree.node(e.node);
    et.process_rows(nd.sep_first, nd.sep_last);
    for (const auto& [k, rk] : imported) boundary.push_back(k);
    for (index_t k = nd.sep_first; k < nd.sep_last; ++k) boundary.push_back(k);
    // Keep only vertices later rows can still reference (the refreshed
    // boundary of the merged subtree); roots are refetched at send time.
    std::vector<index_t> kept;
    std::sort(boundary.begin(), boundary.end());
    boundary.erase(std::unique(boundary.begin(), boundary.end()),
                   boundary.end());
    for (index_t k : boundary)
      if (et.escapes(k, nd.sep_last)) kept.push_back(k);
    boundary = std::move(kept);
    charge_ops(comm, et.ops);
    et.ops = 0;
  }
  // Union the per-rank parent assignments (each vertex assigned at most
  // once globally, so this reconstructs Liu's parent array bitwise).
  const std::vector<real_t> et_all = comm.allgatherv(
      kGatherEtreeTag, encode_pairs(et.assigned), CommPlane::XY);
  out.etree.assign(static_cast<std::size_t>(n), -1);
  for (const auto& [v, p] : decode_pairs(et_all)) {
    SLU3D_CHECK(out.etree[static_cast<std::size_t>(v)] == -1,
                "etree vertex assigned twice");
    out.etree[static_cast<std::size_t>(v)] = p;
  }
  comm.add_compute(n + static_cast<offset_t>(et_all.size()) / 2,
                   ComputeKind::Other);

  // Phase B2: distributed supernodal symbolic.
  SymState sym(S, num, owner, me);
  std::vector<int> owned;  // everything this rank finalized, for the gather
  if (own_terminal) {
    owned = subtree_snodes(tree, num, term.node);
    for (int s : owned) sym.process(s);
    charge_ops(comm, sym.ops);
    sym.ops = 0;
  }
  for (int i = static_cast<int>(stack.size()) - 2; i >= 0; --i) {
    const GroupLevel& e = stack[static_cast<std::size_t>(i)];
    const int half = e.cnt / 2;
    if (me == e.lo + half) {
      comm.send(e.lo, kSymTag + i, sym.encode_exports(), CommPlane::XY);
      break;
    }
    if (me != e.lo) break;
    const auto payload = comm.recv(e.lo + half, kSymTag + i, CommPlane::XY);
    sym.decode_imports(payload);
    const int sp =
        num.to_snode[static_cast<std::size_t>(e.node)];
    sym.process(sp);
    owned.push_back(sp);
    charge_ops(comm, sym.ops);
    sym.ops = 0;
  }
  SLU3D_CHECK(sym.exports.empty() || me != 0,
              "rank 0 must consume every export");

  // Final exchange: everyone assembles the identical full rowset table.
  std::vector<real_t> mine;
  for (int s : owned)
    encode_rowset(s, sym.rowsets[static_cast<std::size_t>(s)], mine);
  const std::vector<real_t> all =
      comm.allgatherv(kGatherRowsTag, mine, CommPlane::XY);
  std::vector<std::vector<index_t>> rowsets(
      static_cast<std::size_t>(num.n_snodes));
  std::vector<char> seen(static_cast<std::size_t>(num.n_snodes), 0);
  decode_all_rowsets(all, rowsets, seen);
  for (int s = 0; s < num.n_snodes; ++s)
    SLU3D_CHECK(seen[static_cast<std::size_t>(s)], "snode never contributed");
  offset_t layout = num.n_snodes;
  for (const auto& rs : rowsets) layout += static_cast<offset_t>(rs.size());
  charge_ops(comm, layout);
  out.bs = std::make_unique<BlockStructure>(tree, std::move(rowsets));
  return out;
}

}  // namespace

AnalysisResult analyze_host(const CsrMatrix& A, const NdOptions& opts) {
  AnalysisResult out;
  out.tree = std::make_unique<SeparatorTree>(nested_dissection(A, opts));
  const CsrMatrix Ap = A.permuted_symmetric(out.tree->perm());
  out.etree = elimination_tree(Ap);
  out.bs = std::make_unique<BlockStructure>(A, *out.tree);
  return out;
}

AnalysisResult analyze_in_sim(const CsrMatrix& A, sim::Comm& comm,
                              const NdOptions& opts, AnalysisMode mode) {
  SLU3D_CHECK(mode != AnalysisMode::Host, "host analysis is not in-sim");
  comm.begin_analysis_phase();
  AnalysisResult out = mode == AnalysisMode::SequentialSim
                           ? sequential_sim(A, comm, opts)
                           : distributed(A, comm, opts);
  comm.end_analysis_phase();
  return out;
}

}  // namespace slu3d
