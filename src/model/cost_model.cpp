#include "model/cost_model.hpp"

#include <cmath>

#include "support/check.hpp"

namespace slu3d::model {

namespace {
double log2d(double x) { return std::log2(x); }
}

CostEstimate planar_2d_alg(double n, double P) {
  SLU3D_CHECK(n > 1 && P >= 1, "bad model arguments");
  CostEstimate c;
  c.memory_words = n / P * log2d(n);              // Eq. (4)
  c.comm_words = n * log2d(n) / std::sqrt(P);     // Eq. (6)
  c.latency_msgs = n;                             // Eq. (3)
  return c;
}

CostEstimate planar_3d_alg(double n, double P, double Pz) {
  SLU3D_CHECK(n > 1 && P >= 1 && Pz >= 1 && Pz <= P, "bad model arguments");
  CostEstimate c;
  // Eq. (5): M = (1/P) (2 n Pz + n log(n / Pz)).
  c.memory_words = (2.0 * n * Pz + n * log2d(n / Pz)) / P;
  // Eq. (7) + Eq. (10): W = n/sqrt(P) (2 sqrt(Pz) + log n / sqrt(Pz))
  //                         + n Pz log Pz / P.
  c.comm_words = n / std::sqrt(P) * (2.0 * std::sqrt(Pz) + log2d(n) / std::sqrt(Pz)) +
                 n * Pz * std::max(0.0, log2d(Pz)) / P;
  // Eq. (12): L = n / Pz + sqrt(n).
  c.latency_msgs = n / Pz + std::sqrt(n);
  return c;
}

double planar_optimal_pz(double n) { return 0.5 * log2d(n); }  // Eq. (8)

CostEstimate nonplanar_2d_alg(double n, double P) {
  SLU3D_CHECK(n > 1 && P >= 1, "bad model arguments");
  CostEstimate c;
  const double n43 = std::pow(n, 4.0 / 3.0);
  c.memory_words = n43 / P;
  c.comm_words = n43 / std::sqrt(P);
  c.latency_msgs = n;
  return c;
}

CostEstimate nonplanar_3d_alg(double n, double P, double Pz,
                              const NonplanarConstants& k) {
  SLU3D_CHECK(n > 1 && P >= 1 && Pz >= 1 && Pz <= P, "bad model arguments");
  CostEstimate c;
  const double n43 = std::pow(n, 4.0 / 3.0);
  // Table II, non-planar column.
  c.memory_words = n43 / P * (k.kappa * Pz + 1.0 / std::cbrt(Pz));
  c.comm_words = n43 / std::sqrt(P) *
                 (k.kappa1 * std::sqrt(Pz) +
                  (1.0 - k.kappa1) / std::pow(Pz, 4.0 / 3.0));
  c.latency_msgs = n / std::pow(Pz, 2.0 / 3.0) + k.kappa0 * std::pow(n, 2.0 / 3.0);
  return c;
}

double nonplanar_optimal_pz(const NonplanarConstants& k) {
  // Minimize f(Pz) = kappa1 sqrt(Pz) + (1-kappa1) Pz^{-4/3}:
  // f' = kappa1 / (2 sqrt(Pz)) - (4/3)(1-kappa1) Pz^{-7/3} = 0
  // => Pz^{11/6} = (8/3) (1-kappa1) / kappa1.
  return std::pow((8.0 / 3.0) * (1.0 - k.kappa1) / k.kappa1, 6.0 / 11.0);
}

double planar_flops(double n) { return std::pow(n, 1.5); }
double nonplanar_flops(double n) { return n * n; }

double predicted_seconds(const sim::MachineModel& m, double flops, double P,
                         const CostEstimate& cost) {
  return m.gamma * flops / P +
         m.beta * cost.comm_words * static_cast<double>(sizeof(real_t)) +
         m.alpha * cost.latency_msgs;
}

}  // namespace slu3d::model
