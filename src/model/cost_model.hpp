// Analytical memory / communication / latency model from §IV of the paper
// (Equations 1-12 and Table II), for both the 2D baseline and the 3D
// algorithm, on planar (2D PDE) and non-planar (3D PDE) model problems.
// Units: memory and communication in words (doubles), latency in messages.
#pragma once

#include "simmpi/machine_model.hpp"
#include "support/types.hpp"

namespace slu3d::model {

struct CostEstimate {
  double memory_words = 0;  ///< per-process memory M
  double comm_words = 0;    ///< per-process communication volume W (critical path)
  double latency_msgs = 0;  ///< number of messages on the critical path L
};

/// Constants for the non-planar (3D PDE) expressions in Table II. The
/// paper states ~20% of the LU factors sit in the top separator (kappa)
/// and reports a best-case communication reduction of 2.89x, which pins
/// the communication fraction kappa1 near 0.11.
struct NonplanarConstants {
  double kappa = 0.2;    ///< top-separator share of memory
  double kappa1 = 0.11;  ///< top-separator share of communication
  double kappa0 = 1.0;   ///< latency constant for the replicated levels
};

// ---- planar (2D PDE) model problems -----------------------------------
CostEstimate planar_2d_alg(double n, double P);                 // Eqs. (4),(6),(3)
CostEstimate planar_3d_alg(double n, double P, double Pz);      // Eqs. (5),(7)+(10),(12)
/// Eq. (8): the communication-minimizing Pz = log2(n)/2.
double planar_optimal_pz(double n);

// ---- non-planar (3D PDE) model problems --------------------------------
CostEstimate nonplanar_2d_alg(double n, double P);
CostEstimate nonplanar_3d_alg(double n, double P, double Pz,
                              const NonplanarConstants& c = {});
/// Pz minimizing the non-planar 3D communication volume.
double nonplanar_optimal_pz(const NonplanarConstants& c = {});

// ---- derived quantities -------------------------------------------------
/// Factorization flop count of the model problems (planar: O(n^{3/2}),
/// non-planar: O(n^2)).
double planar_flops(double n);
double nonplanar_flops(double n);

/// Predicted factorization time under the alpha-beta-gamma machine model:
/// gamma * flops / P + beta * W * sizeof(real) + alpha * L.
double predicted_seconds(const sim::MachineModel& m, double flops, double P,
                         const CostEstimate& cost);

}  // namespace slu3d::model
