// Fundamental scalar and index types shared by every slu3d module.
#pragma once

#include <cstdint>

namespace slu3d {

/// Vertex / row / column index. 32-bit: the largest problems this build
/// targets are a few million unknowns.
using index_t = std::int32_t;

/// Offsets into nonzero arrays and anything that counts entries of L+U,
/// flops, or bytes; these overflow 32 bits quickly.
using offset_t = std::int64_t;

/// Matrix value type.
using real_t = double;

}  // namespace slu3d
