// Wall-clock timing for the sequential reference paths (distributed timing
// uses simmpi's logical clocks instead).
#pragma once

#include <chrono>

namespace slu3d {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace slu3d
