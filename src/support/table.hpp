// Minimal fixed-width text table writer used by the bench harness to print
// paper-style tables.
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace slu3d {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    SLU3D_CHECK(cells.size() == headers_.size(), "row arity mismatch");
    rows_.push_back(std::move(cells));
  }

  /// Format a double with `prec` significant-ish digits (fixed).
  static std::string num(double v, int prec = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
  }

  static std::string sci(double v, int prec = 2) {
    std::ostringstream os;
    os << std::scientific << std::setprecision(prec) << v;
    return os.str();
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size(); ++c)
        width[c] = std::max(width[c], row[c].size());

    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c)
        os << (c ? "  " : "") << std::setw(static_cast<int>(width[c]))
           << std::left << cells[c];
      os << '\n';
    };
    line(headers_);
    std::size_t total = 0;
    for (auto w : width) total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) line(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace slu3d
