// Precondition / invariant checking. SLU3D_CHECK is always on (these guard
// API misuse and data-format errors, not hot loops); SLU3D_ASSERT compiles
// out in release builds and may be used on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace slu3d {

/// Thrown on contract violations and malformed inputs.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* cond, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace slu3d

#define SLU3D_CHECK(cond, msg)                                     \
  do {                                                             \
    if (!(cond)) ::slu3d::detail::fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#ifndef NDEBUG
#define SLU3D_ASSERT(cond) SLU3D_CHECK(cond, "")
#else
#define SLU3D_ASSERT(cond) \
  do {                     \
  } while (false)
#endif
