// Deterministic, fast pseudo-random number generation. Every stochastic
// component in the library (generators, test harnesses) takes an explicit
// seed so runs are reproducible across platforms.
#pragma once

#include <cstdint>

#include "support/types.hpp"

namespace slu3d {

/// SplitMix64: tiny, statistically solid, and identical everywhere —
/// unlike std::mt19937 + distributions, whose stream is not portable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n).
  index_t next_index(index_t n) {
    return static_cast<index_t>(next_u64() % static_cast<std::uint64_t>(n));
  }

 private:
  std::uint64_t state_;
};

}  // namespace slu3d
