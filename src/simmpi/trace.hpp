// Execution tracing for the simulated runtime: when enabled, every
// compute region, send, and receive is recorded against the rank's
// logical clock and can be exported in the Chrome tracing (chrome://
// tracing / Perfetto) JSON format — giving the same timeline view HPC
// profilers give for real MPI runs.
#pragma once

#include <iosfwd>
#include <vector>

#include "simmpi/comm_stats.hpp"
#include "support/types.hpp"

namespace slu3d::sim {

struct TraceEvent {
  /// Wait marks the completion of a non-blocking receive-like request:
  /// t0 is the clock when wait() was called, t1 the (possibly unchanged)
  /// clock after syncing to the sender's completion — a zero-width Wait
  /// means the transfer was fully hidden behind compute.
  enum class Kind : char { Compute = 'C', Send = 'S', Recv = 'R', Wait = 'W' };
  Kind kind;
  double t0 = 0;        ///< logical seconds at event start
  double t1 = 0;        ///< logical seconds at event end
  int peer = -1;        ///< world rank of the peer (send/recv)
  offset_t bytes = 0;   ///< payload bytes (send/recv)
  ComputeKind compute = ComputeKind::Other;  ///< category (compute)
};

using RankTrace = std::vector<TraceEvent>;

/// Writes the Chrome tracing JSON ("traceEvents" array, complete 'X'
/// events; ts/dur in microseconds of logical time; tid = rank).
void write_chrome_trace(std::ostream& os,
                        const std::vector<RankTrace>& traces);

}  // namespace slu3d::sim
