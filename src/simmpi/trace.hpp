// Execution tracing for the simulated runtime: when enabled, every
// compute region, send, and receive is recorded against the rank's
// logical clock and can be exported in the Chrome tracing (chrome://
// tracing / Perfetto) JSON format — giving the same timeline view HPC
// profilers give for real MPI runs.
#pragma once

#include <iosfwd>
#include <vector>

#include "simmpi/comm_stats.hpp"
#include "support/types.hpp"

namespace slu3d::sim {

struct TraceEvent {
  enum class Kind : char { Compute = 'C', Send = 'S', Recv = 'R' };
  Kind kind;
  double t0 = 0;        ///< logical seconds at event start
  double t1 = 0;        ///< logical seconds at event end
  int peer = -1;        ///< world rank of the peer (send/recv)
  offset_t bytes = 0;   ///< payload bytes (send/recv)
  ComputeKind compute = ComputeKind::Other;  ///< category (compute)
};

using RankTrace = std::vector<TraceEvent>;

/// Writes the Chrome tracing JSON ("traceEvents" array, complete 'X'
/// events; ts/dur in microseconds of logical time; tid = rank).
void write_chrome_trace(std::ostream& os,
                        const std::vector<RankTrace>& traces);

}  // namespace slu3d::sim
