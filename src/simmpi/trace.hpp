// Execution tracing for the simulated runtime: when enabled, every
// compute region, send, and receive is recorded against the rank's
// logical clock and can be exported in the Chrome tracing (chrome://
// tracing / Perfetto) JSON format — giving the same timeline view HPC
// profilers give for real MPI runs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "simmpi/comm_stats.hpp"
#include "support/types.hpp"

namespace slu3d::sim {

struct TraceEvent {
  /// Wait marks the completion of a non-blocking receive-like request:
  /// t0 is the clock when wait() was called, t1 the (possibly unchanged)
  /// clock after syncing to the sender's completion — a zero-width Wait
  /// means the transfer was fully hidden behind compute.
  ///
  /// LinkWait marks an injected transfer that queued behind busy network
  /// links before it could start serializing: [t0, t1] spans the queueing
  /// delay (starting at the transfer's ready time, which may sit behind
  /// the sender's CPU clock for non-blocking sends), `peer` the
  /// destination, and `link` the bottleneck link — the one contributing
  /// the largest share of the stall — so trace dumps attribute congestion
  /// to a specific wire, not just to total wait_seconds.
  enum class Kind : char {
    Compute = 'C',
    Send = 'S',
    Recv = 'R',
    Wait = 'W',
    LinkWait = 'L',
  };
  Kind kind;
  double t0 = 0;        ///< logical seconds at event start
  double t1 = 0;        ///< logical seconds at event end
  int peer = -1;        ///< world rank of the peer (send/recv)
  offset_t bytes = 0;   ///< payload bytes (send/recv)
  ComputeKind compute = ComputeKind::Other;  ///< category (compute)
  int link = -1;        ///< bottleneck link id (LinkWait only)
};

using RankTrace = std::vector<TraceEvent>;

/// Writes the Chrome tracing JSON ("traceEvents" array, complete 'X'
/// events; ts/dur in microseconds of logical time; tid = rank). When
/// `link_names` is non-empty, LinkWait events carry a "link" arg with the
/// congested link's name (from RunResult::links order); otherwise the raw
/// id is emitted.
void write_chrome_trace(std::ostream& os, const std::vector<RankTrace>& traces,
                        const std::vector<std::string>& link_names = {});

}  // namespace slu3d::sim
