#include "simmpi/trace.hpp"

#include <algorithm>
#include <ostream>

namespace slu3d::sim {

namespace {

const char* event_name(const TraceEvent& ev) {
  switch (ev.kind) {
    case TraceEvent::Kind::Send:
      return "send";
    case TraceEvent::Kind::Recv:
      return "recv";
    case TraceEvent::Kind::Wait:
      return "wait";
    case TraceEvent::Kind::LinkWait:
      return "link-wait";
    case TraceEvent::Kind::Compute:
      switch (ev.compute) {
        case ComputeKind::DiagFactor:
          return "diag-factor";
        case ComputeKind::PanelSolve:
          return "panel-solve";
        case ComputeKind::SchurUpdate:
          return "schur-update";
        case ComputeKind::Other:
          return "compute";
      }
  }
  return "event";
}

}  // namespace

void write_chrome_trace(std::ostream& os, const std::vector<RankTrace>& traces,
                        const std::vector<std::string>& link_names) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (std::size_t rank = 0; rank < traces.size(); ++rank) {
    for (const TraceEvent& ev : traces[rank]) {
      if (!first) os << ",";
      first = false;
      // ts/dur in microseconds of logical time; minimum visible duration.
      const double ts = ev.t0 * 1e6;
      const double dur = std::max((ev.t1 - ev.t0) * 1e6, 1e-3);
      os << "{\"name\":\"" << event_name(ev) << "\",\"ph\":\"X\",\"pid\":0,"
         << "\"tid\":" << rank << ",\"ts\":" << ts << ",\"dur\":" << dur;
      if (ev.peer >= 0) {
        os << ",\"args\":{\"peer\":" << ev.peer << ",\"bytes\":" << ev.bytes;
        if (ev.kind == TraceEvent::Kind::LinkWait && ev.link >= 0) {
          if (static_cast<std::size_t>(ev.link) < link_names.size())
            os << ",\"link\":\"" << link_names[static_cast<std::size_t>(ev.link)]
               << "\"";
          else
            os << ",\"link\":" << ev.link;
        }
        os << "}";
      }
      os << "}";
    }
  }
  os << "]}\n";
}

}  // namespace slu3d::sim
