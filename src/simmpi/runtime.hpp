// The message-passing runtime (the MPI substitute; see DESIGN.md).
//
// `run_ranks(P, model, body)` runs `body` once per rank, each on its own
// thread. Ranks communicate only through Comm: blocking typed send/recv
// plus binomial-tree collectives, with MPI point-to-point matching
// semantics (FIFO per (communicator, source, tag)), and non-blocking
// isend/irecv/ibcast returning a Request with wait/test.
//
// Every rank carries a LogGP-style logical clock: compute advances it by
// gamma*flops, and every transfer is charged through the Platform
// (platform.hpp) — routed over a link sequence and serialized
// store-and-forward against each link's busy clock. On the default flat
// platform the route is the sender's single wire, so a blocking message
// costs alpha + beta*bytes and a receive completes at max(local clock,
// sender's clock at send + message time) — the historical per-endpoint
// LogGP arithmetic, bitwise. Hierarchical platforms share uplinks between
// ranks so concurrent transfers genuinely contend; queueing is attributed
// per sender (link_queue_seconds), per link (RunResult::links), and as
// link-wait trace events. Non-blocking operations decouple the CPU clock
// from the network: an isend charges only the overhead alpha to the
// sender and deposits the payload with a completion timestamp computed
// from its route; the receiver's clock only advances to
// max(local, sender_completion) at wait(), so any compute performed
// between irecv/ibcast and wait genuinely hides transfer time. The
// maximum final clock across ranks is the simulated parallel runtime;
// per-rank byte counters split by plane reproduce the paper's
// W_fact / W_red and are identical between the blocking and non-blocking
// forms of the same communication pattern — and across platforms.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "simmpi/comm_stats.hpp"
#include "simmpi/machine_model.hpp"
#include "simmpi/platform.hpp"
#include "simmpi/trace.hpp"
#include "support/types.hpp"

namespace slu3d::sim {

namespace detail {
class Context;          // shared mailboxes + stats, defined in runtime.cpp
struct RequestState;    // per-operation completion state, runtime.cpp
struct WindowShared;    // cross-rank window metadata + snapshots, runtime.cpp
}

class Window;

/// Handle for an outstanding non-blocking operation. Default-constructed
/// requests are inert (valid() == false). A pending irecv/ibcast request
/// MUST eventually be completed with wait()/test(): for ibcast, interior
/// tree ranks forward the payload to their children inside wait(), so a
/// dropped request starves the subtree (as dropping an active MPI request
/// would). Move-only.
class Request {
 public:
  Request();
  Request(Request&&) noexcept;
  Request& operator=(Request&&) noexcept;
  ~Request();

  bool valid() const { return st_ != nullptr; }
  /// True once the operation has completed (wait() would not block).
  bool done() const;
  /// Non-blocking progress: completes the operation if it can finish now
  /// (applying the clock/statistics effects of wait()); returns done().
  bool test();
  /// Blocks until the operation completes. For receive-like requests the
  /// caller's clock advances to max(local, sender_completion) — time spent
  /// computing since the request was posted overlaps the transfer.
  void wait();
  /// wait(), then moves out the received payload (irecv requests only).
  std::vector<real_t> take();

 private:
  friend class Comm;
  explicit Request(std::unique_ptr<detail::RequestState> st);
  std::unique_ptr<detail::RequestState> st_;
};

/// Waits every valid request in order.
void wait_all(std::span<Request> requests);

/// A communicator: an ordered group of ranks with a private matching
/// context. Copyable; all copies refer to the same runtime context.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return static_cast<int>(members_.size()); }
  int world_rank() const;

  /// Blocking point-to-point send/recv of a real_t payload. `dst`/`src`
  /// are ranks within this communicator. Matching is FIFO per
  /// (communicator, src, tag); blocking and non-blocking operations on the
  /// same (communicator, src, tag) share one matching queue, ordered by
  /// call (post) order exactly as MPI orders them.
  void send(int dst, int tag, std::span<const real_t> payload, CommPlane plane);
  std::vector<real_t> recv(int src, int tag, CommPlane plane);

  /// Non-blocking send: the payload is captured immediately (buffered, so
  /// the request completes at once), the sender's clock advances only by
  /// the overhead alpha, and the transfer occupies the sender's network
  /// queue in the background. Completion timestamp:
  ///   max(sender clock at post, network free) + alpha + beta*bytes.
  Request isend(int dst, int tag, std::span<const real_t> payload,
                CommPlane plane);
  /// Non-blocking receive: reserves the next matching slot of the
  /// (communicator, src, tag) queue at post time (MPI posting order);
  /// wait()/take() blocks for the matching message and advances the clock
  /// to max(local, sender_completion).
  Request irecv(int src, int tag, CommPlane plane);

  /// Binomial-tree broadcast of `buf` from `root` (buf must be presized on
  /// every rank; contents only matter on the root).
  void bcast(int root, int tag, std::span<real_t> buf, CommPlane plane);

  /// Non-blocking broadcast over the same binomial tree as bcast() (so
  /// per-rank byte counters are identical). The root forwards to its
  /// children at post time; an interior rank forwards inside wait(), but
  /// the forwarded completion timestamps are computed from
  /// max(its post clock, its parent's completion) — modelling an
  /// asynchronous progress engine — so a late wait() never delays the
  /// subtree's logical arrival, only its physical delivery. Every rank of
  /// the communicator must post the ibcast and eventually wait it; `buf`
  /// must stay valid until then (non-roots receive into it at wait()).
  Request ibcast(int root, int tag, std::span<real_t> buf, CommPlane plane);

  /// Binomial-tree element-wise sum-reduction onto `root`.
  void reduce_sum(int root, int tag, std::span<real_t> buf, CommPlane plane);

  /// Allreduce (reduce to rank 0, then broadcast).
  void allreduce_sum(int tag, std::span<real_t> buf, CommPlane plane);
  double allreduce_max(int tag, double value, CommPlane plane);

  /// Variable-size allgather: every rank contributes `mine` and receives
  /// the concatenation in rank order (gather to rank 0, then broadcast of
  /// sizes and data).
  std::vector<real_t> allgatherv(int tag, std::span<const real_t> mine,
                                 CommPlane plane);

  void barrier(int tag, CommPlane plane);

  /// MPI_Comm_split: ranks with equal `color` form a new communicator,
  /// ordered by (key, old rank).
  Comm split(int color, int key) const;

  /// Collective: exposes `local` as a one-sided RMA window over this
  /// communicator (MPI_Win_create). Every member must call with the same
  /// `tag`; `local` must outlive the Window. Repeated creations on the
  /// same (communicator, tag) are matched by call order, so per-level
  /// windows never alias across levels. The setup handshake itself is
  /// uncharged (like split()); all put/get/accumulate traffic on the
  /// window is LogGP-charged on `plane`.
  Window win_create(int tag, std::span<real_t> local, CommPlane plane);

  /// Brackets the cold-start analysis stage (ordering + symbolic run
  /// in-sim; see src/analysis/). Between the two calls every byte/message
  /// charged on this rank is mirrored into RankStats::analysis_* and the
  /// clock advance accumulates into analysis_seconds, so W_analysis /
  /// msg_analysis can be reported separately from the numeric phase of
  /// the same run. Nesting is not supported; end without begin is a
  /// no-op.
  void begin_analysis_phase();
  void end_analysis_phase();

  /// Advance the logical clock by the model cost of `flops`.
  void add_compute(offset_t flops, ComputeKind kind);
  /// Advance the logical clock by raw seconds (e.g. imbalance injection).
  void add_seconds(double seconds, ComputeKind kind);

  double clock() const;
  /// Force the clock to at least `t` (used by tests).
  void advance_clock_to(double t);

  const MachineModel& model() const;
  /// The platform this run charges transfers against (flat unless the run
  /// was started with a hierarchical one).
  const Platform& platform() const;
  /// This rank's statistics (mutable live view).
  RankStats& stats();

 private:
  friend struct RuntimeAccess;
  Comm(detail::Context* ctx, std::uint64_t comm_id, std::vector<int> members,
       int rank)
      : ctx_(ctx), comm_id_(comm_id), members_(std::move(members)), rank_(rank) {}

  detail::Context* ctx_;
  std::uint64_t comm_id_;
  std::vector<int> members_;  ///< member world ranks, in rank order
  int rank_;                  ///< my rank within this communicator
};

/// Receipt for one expected one-sided delivery (see Window::expect).
/// Waiting applies the matched operation — and every earlier unapplied
/// operation from the same origin first, so operations from one origin
/// always land in post order (MPI's accumulate-ordering rule; the RMA
/// analogue of the equal-tag ibcast non-overtaking fix). Copyable and
/// inert when default-constructed; wait() after completion is a no-op.
/// The Window must outlive (and not relocate under) pending deliveries.
class WindowDelivery {
 public:
  WindowDelivery() = default;
  bool valid() const { return win_ != nullptr; }
  /// Blocks until the expected operation (and all earlier ones from the
  /// same origin) has been applied to the local window memory, charging
  /// the receive like an irecv wait: clock to max(local, arrival), the
  /// data bytes (headers are free) and one message on the window's plane.
  void wait();

 private:
  friend class Window;
  WindowDelivery(Window* win, int origin, std::uint64_t seq)
      : win_(win), origin_(origin), seq_(seq) {}
  Window* win_ = nullptr;
  int origin_ = 0;
  std::uint64_t seq_ = 0;
};

/// A one-sided RMA window over a communicator (created collectively by
/// Comm::win_create). Origin-side operations — put/accumulate/
/// scatter_accumulate — are charged exactly like isend: alpha on the
/// origin's clock, the transfer serialized on the origin's wire, and the
/// data bytes booked as sent on the window's plane. The receiver side
/// offers two completion models:
///  - targeted: the receiver calls expect(origin) once per operation it
///    knows (symbolically) is coming, and wait()s the returned delivery
///    at the point the data is needed — the pipeline engines' model;
///  - epoch: fence(tag) closes an access epoch collectively, applying
///    every operation landed so far and refreshing the snapshot that
///    get() reads — the classic MPI_Win_fence model.
/// get(target,...) reads from the target's last fenced snapshot without
/// involving the target's thread, charged like a blocking receive whose
/// payload leaves the target at its snapshot clock. Move-only.
class Window {
 public:
  Window() = default;
  Window(Window&&) noexcept = default;
  Window& operator=(Window&&) noexcept = default;

  bool valid() const { return sh_ != nullptr; }
  /// Number of ranks in the window's communicator.
  int size() const { return static_cast<int>(members_.size()); }
  /// My rank within the window's communicator.
  int rank() const { return rank_; }
  /// The local memory exposed by this rank.
  std::span<real_t> local() const { return local_; }
  /// The exposed extent of `target`'s window memory.
  std::size_t extent(int target) const;

  /// Copies `data` into target's window at element `offset`.
  void put(int target, std::size_t offset, std::span<const real_t> data);
  /// Adds `data` element-wise into target's window at `offset`.
  void accumulate(int target, std::size_t offset, std::span<const real_t> data);
  /// Sparse accumulate: adds `packed` (the nonzeros of a dense span of
  /// `span_len` elements, selected by `bitmap`, one bit per element,
  /// LSB-first within each word) into target's window at `offset`. Only
  /// the bitmap words + packed scalars travel; popcount(bitmap) must
  /// equal packed.size().
  void scatter_accumulate(int target, std::size_t offset, std::size_t span_len,
                          std::span<const std::uint64_t> bitmap,
                          std::span<const real_t> packed);

  /// Registers the next incoming operation from `origin` (in that
  /// origin's post order) and returns its delivery receipt. The matching
  /// is reserved at call time, exactly like an irecv posting.
  WindowDelivery expect(int origin);

  /// Reads target's snapshot (as of its last fence / creation) into
  /// `out`, starting at element `offset`.
  void get(int target, std::size_t offset, std::span<real_t> out);

  /// Collective epoch close: applies every operation that reached this
  /// rank (expected or not), publishes the local memory as the snapshot
  /// get() serves, and synchronizes the communicator. Deterministic:
  /// the surrounding barriers mean exactly the operations of the closing
  /// epoch are applied, in origin-rank then post order.
  void fence(int tag);

 private:
  friend class Comm;
  friend class WindowDelivery;
  struct OriginSeq {
    std::uint64_t next_expect = 0;   ///< ops registered via expect()
    std::uint64_t next_applied = 0;  ///< ops applied to local memory
  };

  void post_op(int target, std::vector<real_t> payload, offset_t data_bytes);
  void apply_through(int origin, std::uint64_t seq);
  void apply_envelope(int origin, std::vector<real_t> payload, double arrival);

  detail::Context* ctx_ = nullptr;
  std::shared_ptr<detail::WindowShared> sh_;
  std::vector<int> members_;  ///< member world ranks, in rank order
  int rank_ = 0;              ///< my rank within the window's communicator
  CommPlane plane_ = CommPlane::XY;
  std::span<real_t> local_;
  std::vector<OriginSeq> origin_;
  /// The creating communicator, kept for the fence barriers.
  std::shared_ptr<Comm> comm_;
};

/// Lifetime usage of one platform link: what travelled over it and how
/// long transfers queued behind it. Index order matches the ids LinkWait
/// trace events carry.
struct LinkUsage {
  std::string name;
  offset_t bytes = 0;
  offset_t messages = 0;
  /// Total seconds transfers spent waiting for this link to free up.
  double queue_seconds = 0.0;
};

struct RunResult {
  std::vector<RankStats> ranks;
  /// Per-rank event timelines; empty unless tracing was enabled.
  std::vector<RankTrace> traces;
  /// Per-link usage over the whole run, in link-id order (the flat wire is
  /// one link per endpoint; hierarchical platforms add shared up/down
  /// pairs per node/switch group).
  std::vector<LinkUsage> links;

  double max_clock() const;
  /// Max over ranks of bytes sent in `plane`. Note: tree collectives make
  /// intermediate ranks forward payloads, so sent bytes overcount the
  /// algorithmic volume; prefer max_bytes_received for the paper's W.
  offset_t max_bytes_sent(CommPlane plane) const;
  /// Max over ranks of bytes received in `plane` — each rank receives every
  /// block it needs exactly once, so this matches the paper's "per-process
  /// communication volume on the critical path" (Eq. 2 / Fig. 10).
  offset_t max_bytes_received(CommPlane plane) const;
  offset_t total_bytes_sent(CommPlane plane) const;
  double max_compute_seconds(ComputeKind kind) const;
  /// Aggregate sparse z-reduction savings across ranks (zero when
  /// ZRedPacking::Dense): W_red bytes avoided and blocks skipped/considered.
  offset_t total_zred_bytes_saved() const;
  offset_t total_zred_blocks_skipped() const;
  offset_t total_zred_blocks_total() const;
  /// Aggregate sparse panel-broadcast savings across ranks (zero when
  /// PanelPacking::Dense): dense-equivalent payload of the packed panel
  /// broadcasts, XY bytes avoided (frame overhead netted out), and data
  /// broadcasts elided because the block was entirely zero.
  offset_t total_panel_dense_bytes() const;
  offset_t total_panel_saved_bytes() const;
  offset_t total_panel_saved_msgs() const;
  /// Analysis-phase aggregates (zero unless the run bracketed work in
  /// Comm::begin/end_analysis_phase): critical-path seconds, the paper's
  /// per-process received-volume metric restricted to the phase, and the
  /// total message count of the phase.
  double max_analysis_seconds() const;
  offset_t max_analysis_bytes_received() const;
  offset_t total_analysis_messages_sent() const;
  /// Total transfer-queueing time across all links (== the sum of every
  /// rank's link_queue_seconds); zero on an uncontended run.
  double total_link_queue_seconds() const;
  /// The link names in id order, for write_chrome_trace.
  std::vector<std::string> link_names() const;
};

struct RunOptions {
  /// Record a TraceEvent for every compute region, send, and receive.
  bool trace = false;
};

/// Runs `body(comm)` on `n_ranks` threads and returns per-rank statistics.
/// Any exception thrown by a rank is rethrown here (after all threads are
/// joined); remaining ranks blocked in recv are woken with an error.
///
/// Every transfer is charged through the platform: routed across the link
/// sequence `PlatformLayout::route(src, dst)` yields and serialized
/// store-and-forward against each link's busy clock. On the flat platform
/// the route is the sender's own wire and the arithmetic reproduces the
/// historical per-endpoint LogGP clock bitwise; byte/message counters are
/// platform-independent either way (the platform changes *when* messages
/// move, never *whether*). Hierarchical platforms share links between
/// ranks, so arrival times there depend on the wall-clock order in which
/// rank threads reach a contended link (FCFS) — counters stay exact, but
/// clocks are not bitwise-reproducible across runs.
RunResult run_ranks(int n_ranks, const Platform& platform,
                    const std::function<void(Comm&)>& body,
                    const RunOptions& options = {});

/// Convenience overload: runs on the flat one-link-per-endpoint platform
/// over `model` (the exact historical behaviour).
RunResult run_ranks(int n_ranks, const MachineModel& model,
                    const std::function<void(Comm&)>& body,
                    const RunOptions& options = {});

}  // namespace slu3d::sim
