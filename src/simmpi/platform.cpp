#include "simmpi/platform.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

#include "support/check.hpp"

namespace slu3d::sim {
namespace {

// Embedded preset descriptions, written in the same text format `parse`
// accepts from disk so the presets exercise the exact code path a user's
// platform file does. Numbers: the NIC keeps the historical Edison-like
// alpha/beta; the fat-tree shares one uplink pair among 4 ranks per node
// and 4 nodes per switch with 2:1 oversubscription at each level (link
// bandwidth = half the aggregate NIC demand below it); the torus-like
// preset models shared ring segments at full NIC rate but with latency
// growing with hop distance.
constexpr std::string_view kFattree2to1 =
    "# 2:1-oversubscribed two-level fat tree.\n"
    "name fattree-2to1\n"
    "alpha 2.0e-6\n"
    "beta 1.5e-10\n"
    "gamma 6.0e-11\n"
    "# 4 ranks per node; node uplink carries half the aggregate NIC rate.\n"
    "link node arity=4 latency=5.0e-7 inv_bw=7.5e-11\n"
    "# 4 nodes per leaf switch; spine uplink again 2:1 oversubscribed.\n"
    "link switch arity=4 latency=1.0e-6 inv_bw=3.75e-11\n";

constexpr std::string_view kTorus =
    "# Torus-like fabric: full-NIC-rate shared ring segments, latency\n"
    "# growing with hop distance instead of capacity scaling with height.\n"
    "name torus\n"
    "alpha 2.0e-6\n"
    "beta 1.5e-10\n"
    "gamma 6.0e-11\n"
    "link ring arity=4 latency=1.0e-6 inv_bw=1.5e-10\n"
    "link plane arity=4 latency=4.0e-6 inv_bw=1.5e-10\n";

double parse_double(std::string_view token, std::string_view what) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(std::string(token), &used);
  } catch (const std::exception&) {
    used = 0;
  }
  SLU3D_CHECK(used == token.size(), "platform: bad numeric value for " +
                                        std::string(what) + ": '" +
                                        std::string(token) + "'");
  return v;
}

int parse_int(std::string_view token, std::string_view what) {
  std::size_t used = 0;
  int v = 0;
  try {
    v = std::stoi(std::string(token), &used);
  } catch (const std::exception&) {
    used = 0;
  }
  SLU3D_CHECK(used == token.size(), "platform: bad integer value for " +
                                        std::string(what) + ": '" +
                                        std::string(token) + "'");
  return v;
}

}  // namespace

Platform Platform::flat(const MachineModel& m) {
  Platform p;
  p.name = "flat";
  p.machine = m;
  return p;
}

std::vector<std::string> Platform::preset_names() {
  return {"edison", "flat", "fattree-2to1", "torus"};
}

Platform Platform::preset(std::string_view name) {
  if (name == "edison" || name == "flat") {
    Platform p = flat(MachineModel{});
    p.name = std::string(name);
    return p;
  }
  if (name == "fattree-2to1") return parse(kFattree2to1);
  if (name == "torus") return parse(kTorus);
  std::string known;
  for (const auto& n : preset_names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  SLU3D_CHECK(false, "unknown platform preset '" + std::string(name) +
                         "' (known: " + known + ")");
  return {};
}

Platform Platform::parse(std::string_view text) {
  Platform p;
  p.name.clear();
  std::istringstream in{std::string(text)};
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;  // blank / comment-only line
    const std::string where = " (line " + std::to_string(lineno) + ")";
    if (key == "name") {
      SLU3D_CHECK(static_cast<bool>(ls >> p.name),
                  "platform: 'name' needs a value" + where);
    } else if (key == "alpha" || key == "beta" || key == "gamma") {
      std::string v;
      SLU3D_CHECK(static_cast<bool>(ls >> v),
                  "platform: '" + key + "' needs a value" + where);
      const double d = parse_double(v, key);
      if (key == "alpha") p.machine.alpha = d;
      if (key == "beta") p.machine.beta = d;
      if (key == "gamma") p.machine.gamma = d;
    } else if (key == "link") {
      PlatformLevel lvl;
      SLU3D_CHECK(static_cast<bool>(ls >> lvl.label),
                  "platform: 'link' needs a label" + where);
      std::string kv;
      while (ls >> kv) {
        const auto eq = kv.find('=');
        SLU3D_CHECK(eq != std::string::npos,
                    "platform: link attribute '" + kv +
                        "' is not key=value" + where);
        const std::string k = kv.substr(0, eq);
        const std::string v = kv.substr(eq + 1);
        if (k == "arity") {
          lvl.arity = parse_int(v, "arity");
        } else if (k == "latency") {
          lvl.latency = parse_double(v, "latency");
        } else if (k == "inv_bw") {
          lvl.inv_bw = parse_double(v, "inv_bw");
        } else {
          SLU3D_CHECK(false, "platform: unknown link attribute '" + k +
                                 "'" + where);
        }
      }
      p.levels.push_back(std::move(lvl));
    } else {
      SLU3D_CHECK(false, "platform: unknown directive '" + key + "'" + where);
    }
  }
  SLU3D_CHECK(!p.name.empty(), "platform: missing 'name' directive");
  p.validate();
  return p;
}

Platform Platform::load(const std::string& spec) {
  for (const auto& n : preset_names())
    if (spec == n) return preset(spec);
  std::ifstream in(spec);
  SLU3D_CHECK(in.good(), "platform: '" + spec +
                             "' is neither a preset nor a readable file");
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

std::string Platform::describe() const {
  std::ostringstream os;
  os << name << ": ";
  if (flat_wire()) {
    os << "flat per-endpoint wire";
  } else {
    os << levels.size() << "-level hierarchy (";
    for (std::size_t i = 0; i < levels.size(); ++i) {
      if (i) os << " -> ";
      os << levels[i].label << " x" << levels[i].arity;
    }
    os << ")";
  }
  os << ", alpha=" << machine.alpha << " beta=" << machine.beta
     << " gamma=" << machine.gamma;
  return os.str();
}

void Platform::validate() const {
  SLU3D_CHECK(machine.alpha >= 0.0 && machine.beta >= 0.0 &&
                  machine.gamma >= 0.0 &&
                  std::isfinite(machine.alpha) && std::isfinite(machine.beta) &&
                  std::isfinite(machine.gamma),
              "platform '" + name + "': machine constants must be finite and "
              "non-negative");
  SLU3D_CHECK(levels.size() <= 16,
              "platform '" + name + "': too many hierarchy levels");
  for (const auto& lvl : levels) {
    SLU3D_CHECK(!lvl.label.empty(),
                "platform '" + name + "': link level needs a label");
    SLU3D_CHECK(lvl.arity >= 2, "platform '" + name + "': link '" + lvl.label +
                                    "' arity must be >= 2");
    SLU3D_CHECK(lvl.latency >= 0.0 && lvl.inv_bw >= 0.0 &&
                    std::isfinite(lvl.latency) && std::isfinite(lvl.inv_bw),
                "platform '" + name + "': link '" + lvl.label +
                    "' latency/inv_bw must be finite and non-negative");
  }
}

PlatformLayout::PlatformLayout(const Platform& platform, int n_ranks) {
  SLU3D_CHECK(n_ranks > 0, "PlatformLayout needs at least one rank");
  platform.validate();
  n_ = n_ranks;
  flat_ = platform.flat_wire();
  const MachineModel& m = platform.machine;
  if (flat_) {
    // The historical LogGP clock: one wire per endpoint, charged once per
    // message at the sender. Single-writer per rank, hence bitwise
    // deterministic regardless of thread scheduling.
    links_.reserve(static_cast<std::size_t>(n_));
    for (int r = 0; r < n_; ++r)
      links_.push_back(Link{"rank" + std::to_string(r) + ".wire", m.alpha,
                            m.beta});
    return;
  }
  // NIC links first: rank r owns links 2r (up) and 2r+1 (down), keeping the
  // per-endpoint alpha/beta charge as the first and last hop of every route.
  links_.reserve(static_cast<std::size_t>(2 * n_));
  for (int r = 0; r < n_; ++r) {
    links_.push_back(Link{"rank" + std::to_string(r) + ".up", m.alpha,
                          m.beta});
    links_.push_back(Link{"rank" + std::to_string(r) + ".down", m.alpha,
                          m.beta});
  }
  int stride = 1;
  for (const auto& lvl : platform.levels) {
    stride *= lvl.arity;
    stride_.push_back(stride);
    level_base_.push_back(static_cast<int>(links_.size()));
    const int groups = (n_ + stride - 1) / stride;
    for (int g = 0; g < groups; ++g) {
      links_.push_back(Link{lvl.label + std::to_string(g) + ".up",
                            lvl.latency, lvl.inv_bw});
      links_.push_back(Link{lvl.label + std::to_string(g) + ".down",
                            lvl.latency, lvl.inv_bw});
    }
  }
}

void PlatformLayout::route(int src, int dst, std::vector<int>& out) const {
  out.clear();
  if (flat_) {
    out.push_back(src);  // the sender's wire is the whole route
    return;
  }
  out.push_back(2 * src);  // NIC up
  // Climb until src and dst fall in the same group; the matching downward
  // hops mirror the upward ones. Ranks meeting above the top level cross
  // the top-level links and meet at the uncharged spine.
  const int depth = static_cast<int>(stride_.size());
  int meet = 0;
  while (meet < depth && src / stride_[static_cast<std::size_t>(meet)] !=
                             dst / stride_[static_cast<std::size_t>(meet)])
    ++meet;
  for (int l = 0; l < meet; ++l)
    out.push_back(level_base_[static_cast<std::size_t>(l)] +
                  2 * (src / stride_[static_cast<std::size_t>(l)]));
  for (int l = meet - 1; l >= 0; --l)
    out.push_back(level_base_[static_cast<std::size_t>(l)] +
                  2 * (dst / stride_[static_cast<std::size_t>(l)]) + 1);
  out.push_back(2 * dst + 1);  // NIC down
}

double PlatformLayout::route_seconds(int src, int dst, offset_t bytes) const {
  std::vector<int> hops;
  route(src, dst, hops);
  double t = 0.0;
  for (int id : hops) {
    const Link& l = links_[static_cast<std::size_t>(id)];
    t += l.latency + l.inv_bw * static_cast<double>(bytes);
  }
  return t;
}

}  // namespace slu3d::sim
