// The contention-aware platform layer: a declarative description of the
// simulated machine's network — links with individual latency, bandwidth,
// and (at run time) busy clocks, arranged in a node → switch → spine
// hierarchy — replacing the flat per-endpoint LogGP wire as the thing the
// runtime charges transfers against.
//
// A Platform is pure data: the compute model (MachineModel: alpha/beta for
// the per-rank NIC, gamma for flops) plus zero or more hierarchy levels.
// With no levels the platform is the *flat wire*: exactly one link per
// endpoint charged `alpha + beta * bytes` per message, which reproduces the
// historical `net_busy` clock bitwise. With levels, `PlatformLayout::route`
// yields the link sequence a (src, dst) transfer crosses — NIC up, the
// shared uplinks to the lowest common ancestor, and the mirror path down —
// and the runtime serializes the message across every link on that route
// (store-and-forward against each link's busy clock), so the z-axis
// reduction and the XY panel broadcasts genuinely contend for shared
// uplinks the way they do on real fat-tree fabrics.
//
// Platforms come from three places: `Platform::flat(model)` (programmatic),
// `Platform::preset(name)` for the named machines every bench driver's
// `--platform` flag accepts (edison | flat | fattree-2to1 | torus), and
// `Platform::parse/load` for a small text platform file (SimGrid-style
// what-if runs: describe the machine, don't extrapolate). See
// docs/SIMULATOR.md ("Platform descriptions") for the file format and the
// exact charging semantics.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "simmpi/machine_model.hpp"
#include "support/types.hpp"

namespace slu3d::sim {

/// One tier of the network hierarchy. `arity` groups of the tier below
/// (ranks, for the first level) share a single full-duplex link pair — one
/// up link and one down link, each with its own busy clock — towards the
/// tier above. Levels are ordered bottom-up; the top level's groups meet
/// at an uncharged spine.
struct PlatformLevel {
  std::string label = "node";  ///< names the links: "<label><group>.up"
  int arity = 4;               ///< groups of the tier below per link pair
  double latency = 0.0;        ///< seconds per message crossing one link
  double inv_bw = 0.0;         ///< seconds per byte across one link
};

/// Declarative machine description consumed by `run_ranks`.
struct Platform {
  std::string name = "flat";
  MachineModel machine;               ///< NIC alpha/beta + compute gamma
  std::vector<PlatformLevel> levels;  ///< empty = flat per-endpoint wire

  /// True when there is no hierarchy: one link per endpoint, the exact
  /// historical LogGP clock.
  bool flat_wire() const { return levels.empty(); }

  /// The trivial one-link-per-endpoint platform over `m` (the default).
  static Platform flat(const MachineModel& m = {});
  /// Named machine: "edison"/"flat" (the Edison-like flat default),
  /// "fattree-2to1" (4 ranks/node, 4 nodes/switch, uplinks 2:1
  /// oversubscribed at each level), "torus" (torus-like shared ring
  /// segments: full-NIC-rate links, no capacity scaling, latency growing
  /// with distance). Throws on unknown names.
  static Platform preset(std::string_view name);
  static std::vector<std::string> preset_names();
  /// Parses the platform-file text format (see docs/SIMULATOR.md):
  ///   name fattree-2to1
  ///   alpha 2.0e-6
  ///   beta  1.5e-10
  ///   gamma 6.0e-11
  ///   link node   arity=4 latency=5.0e-7 inv_bw=7.5e-11
  ///   link switch arity=4 latency=1.0e-6 inv_bw=3.75e-11
  /// `link` lines are ordered bottom-up; '#' starts a comment.
  static Platform parse(std::string_view text);
  /// `spec` is a preset name or a path to a platform file — the string the
  /// shared `--platform` bench flag accepts.
  static Platform load(const std::string& spec);

  /// One-line human-readable summary (flag echo in bench drivers).
  std::string describe() const;
  /// Throws Error on malformed descriptions (non-positive arity, negative
  /// latency/bandwidth, absurd level counts).
  void validate() const;
};

/// A Platform instantiated for a concrete rank count: the full link table
/// and the routing function. Immutable and shareable; the mutable per-link
/// busy clocks live in the runtime's per-run context.
class PlatformLayout {
 public:
  struct Link {
    std::string name;
    double latency = 0.0;
    double inv_bw = 0.0;
  };

  PlatformLayout(const Platform& platform, int n_ranks);

  bool flat() const { return flat_; }
  int n_ranks() const { return n_; }
  int num_links() const { return static_cast<int>(links_.size()); }
  const Link& link(int id) const { return links_[static_cast<std::size_t>(id)]; }

  /// Appends the link ids a src -> dst transfer crosses, in traversal
  /// order: NIC up, uplinks to the lowest common ancestor, downlinks to
  /// the destination, NIC down. The flat wire routes over the single
  /// source-endpoint link only (the historical LogGP charge).
  void route(int src, int dst, std::vector<int>& out) const;

  /// Contention-free transfer seconds along route(src, dst): the sum of
  /// `latency + inv_bw * bytes` over the route's links. Used for charges
  /// that do not occupy the wire (one-sided get snapshots).
  double route_seconds(int src, int dst, offset_t bytes) const;

 private:
  bool flat_ = true;
  int n_ = 0;
  std::vector<Link> links_;
  std::vector<int> stride_;      ///< ranks per group at each level
  std::vector<int> level_base_;  ///< first link id of each level
};

}  // namespace slu3d::sim
