// The alpha-beta-gamma machine model that drives the simulator's logical
// clocks. Defaults approximate a Cray XC30 (Edison) node as used in the
// paper: per-message MPI latency alpha, inverse bandwidth beta, and inverse
// compute rate gamma for one MPI process (2 cores / 4 hyperthreads in the
// paper's 4-OpenMP-threads-per-process configuration).
#pragma once

#include "support/types.hpp"

namespace slu3d::sim {

struct MachineModel {
  double alpha = 2.0e-6;   ///< seconds per message
  double beta = 1.5e-10;   ///< seconds per byte (~6.7 GB/s effective)
  double gamma = 6.0e-11;  ///< seconds per flop (~17 GFLOP/s per process)

  double message_time(offset_t bytes) const {
    return alpha + beta * static_cast<double>(bytes);
  }
  double compute_time(offset_t flops) const {
    return gamma * static_cast<double>(flops);
  }
};

}  // namespace slu3d::sim
