#include "simmpi/runtime.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>

#include "support/check.hpp"

namespace slu3d::sim {

namespace detail {

namespace {
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Operation kinds occupy high tag bits so a collective cannot match a
// point-to-point message that reuses the same user tag.
enum class Op : int { P2P = 0, Coll = 1, Setup = 2 };
constexpr int kMaxUserTag = (1 << 26) - 1;
int full_tag(Op op, int tag) {
  SLU3D_CHECK(tag >= 0 && tag <= kMaxUserTag, "tag out of range");
  return (static_cast<int>(op) << 26) | tag;
}
}  // namespace

struct MsgKey {
  std::uint64_t comm_id;
  int src_world;
  int tag;
  auto operator<=>(const MsgKey&) const = default;
};

struct Envelope {
  std::vector<real_t> payload;
  double arrival;
};

class Context {
 public:
  Context(int n, const MachineModel& m) : model(m), stats(static_cast<std::size_t>(n)) {
    for (int i = 0; i < n; ++i) mailboxes.push_back(std::make_unique<Mailbox>());
  }

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::map<MsgKey, std::deque<Envelope>> queues;
  };

  void deliver(int dst_world, const MsgKey& key, Envelope env) {
    Mailbox& mb = *mailboxes[static_cast<std::size_t>(dst_world)];
    {
      const std::lock_guard<std::mutex> lock(mb.mu);
      mb.queues[key].push_back(std::move(env));
    }
    mb.cv.notify_all();
  }

  Envelope take(int dst_world, const MsgKey& key) {
    Mailbox& mb = *mailboxes[static_cast<std::size_t>(dst_world)];
    std::unique_lock<std::mutex> lock(mb.mu);
    mb.cv.wait(lock, [&] {
      if (aborted.load(std::memory_order_relaxed)) return true;
      const auto it = mb.queues.find(key);
      return it != mb.queues.end() && !it->second.empty();
    });
    if (aborted.load(std::memory_order_relaxed))
      throw Error("simmpi: run aborted by a failing rank");
    const auto it = mb.queues.find(key);
    Envelope env = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) mb.queues.erase(it);
    return env;
  }

  void abort_all() {
    aborted.store(true, std::memory_order_relaxed);
    for (auto& mb : mailboxes) {
      const std::lock_guard<std::mutex> lock(mb->mu);
      mb->cv.notify_all();
    }
  }

  MachineModel model;
  std::vector<RankStats> stats;
  std::vector<RankTrace> traces;  // sized only when tracing is enabled
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  std::atomic<bool> aborted{false};

  void record(int world_rank, TraceEvent ev) {
    if (traces.empty()) return;
    traces[static_cast<std::size_t>(world_rank)].push_back(ev);
  }
};

}  // namespace detail

namespace {

using detail::Op;

offset_t payload_bytes(std::size_t n_reals) {
  return static_cast<offset_t>(n_reals * sizeof(real_t));
}

}  // namespace

int Comm::world_rank() const { return members_[static_cast<std::size_t>(rank_)]; }

const MachineModel& Comm::model() const { return ctx_->model; }

RankStats& Comm::stats() {
  return ctx_->stats[static_cast<std::size_t>(world_rank())];
}

double Comm::clock() const {
  return ctx_->stats[static_cast<std::size_t>(world_rank())].clock;
}

void Comm::advance_clock_to(double t) {
  auto& st = stats();
  st.clock = std::max(st.clock, t);
}

void Comm::add_compute(offset_t flops, ComputeKind kind) {
  const double dt = ctx_->model.compute_time(flops);
  auto& st = stats();
  ctx_->record(world_rank(), {TraceEvent::Kind::Compute, st.clock,
                              st.clock + dt, -1, 0, kind});
  st.clock += dt;
  st.compute_seconds[static_cast<std::size_t>(kind)] += dt;
  st.flops[static_cast<std::size_t>(kind)] += flops;
}

void Comm::add_seconds(double seconds, ComputeKind kind) {
  auto& st = stats();
  st.clock += seconds;
  st.compute_seconds[static_cast<std::size_t>(kind)] += seconds;
}

namespace {

/// Uncharged internal send/recv used by split(); charged ones below.
struct Wire {
  detail::Context* ctx;
  std::uint64_t comm_id;

  void send_free(int src_world, int dst_world, int tag,
                 std::vector<real_t> payload) const {
    ctx->deliver(dst_world, {comm_id, src_world, tag},
                 {std::move(payload), /*arrival=*/0.0});
  }
  std::vector<real_t> recv_free(int dst_world, int src_world, int tag) const {
    return ctx->take(dst_world, {comm_id, src_world, tag}).payload;
  }
};

}  // namespace

void Comm::send(int dst, int tag, std::span<const real_t> payload,
                CommPlane plane) {
  SLU3D_CHECK(dst >= 0 && dst < size(), "send: bad destination rank");
  const int ft = detail::full_tag(Op::P2P, tag);
  auto& st = stats();
  const offset_t bytes = payload_bytes(payload.size());
  // Store-and-forward: the sender is occupied for the full message time,
  // and the payload is available to the receiver at that same instant.
  const double t0 = st.clock;
  st.clock += ctx_->model.message_time(bytes);
  const double arrival = st.clock;
  const int dst_world = members_[static_cast<std::size_t>(dst)];
  ctx_->record(world_rank(),
               {TraceEvent::Kind::Send, t0, st.clock, dst_world, bytes,
                ComputeKind::Other});
  st.bytes_sent[static_cast<std::size_t>(plane)] += bytes;
  st.messages_sent[static_cast<std::size_t>(plane)] += 1;
  ctx_->deliver(dst_world, {comm_id_, world_rank(), ft},
                {std::vector<real_t>(payload.begin(), payload.end()), arrival});
}

std::vector<real_t> Comm::recv(int src, int tag, CommPlane plane) {
  SLU3D_CHECK(src >= 0 && src < size(), "recv: bad source rank");
  const int ft = detail::full_tag(Op::P2P, tag);
  const int src_world = members_[static_cast<std::size_t>(src)];
  detail::Envelope env = ctx_->take(world_rank(), {comm_id_, src_world, ft});
  auto& st = stats();
  const double t0 = st.clock;
  st.clock = std::max(st.clock, env.arrival);
  ctx_->record(world_rank(),
               {TraceEvent::Kind::Recv, t0, st.clock, src_world,
                payload_bytes(env.payload.size()), ComputeKind::Other});
  st.bytes_received[static_cast<std::size_t>(plane)] +=
      payload_bytes(env.payload.size());
  st.messages_received[static_cast<std::size_t>(plane)] += 1;
  return env.payload;
}

namespace {

/// Charged collective-channel send/recv shared by the tree algorithms.
void coll_send(Comm& c, detail::Context* ctx, std::uint64_t comm_id,
               std::span<const int> members, int me_world, int dst, int tag,
               std::span<const real_t> payload, CommPlane plane) {
  const int ft = detail::full_tag(Op::Coll, tag);
  auto& st = c.stats();
  const offset_t bytes = payload_bytes(payload.size());
  const double t0 = st.clock;
  st.clock += ctx->model.message_time(bytes);
  const double arrival = st.clock;
  const int dst_world = members[static_cast<std::size_t>(dst)];
  ctx->record(me_world, {TraceEvent::Kind::Send, t0, st.clock, dst_world,
                         bytes, ComputeKind::Other});
  st.bytes_sent[static_cast<std::size_t>(plane)] += bytes;
  st.messages_sent[static_cast<std::size_t>(plane)] += 1;
  ctx->deliver(dst_world, {comm_id, me_world, ft},
               {std::vector<real_t>(payload.begin(), payload.end()), arrival});
}

std::vector<real_t> coll_recv(Comm& c, detail::Context* ctx,
                              std::uint64_t comm_id, std::span<const int> members,
                              int me_world, int src, int tag, CommPlane plane) {
  const int ft = detail::full_tag(Op::Coll, tag);
  const int src_world = members[static_cast<std::size_t>(src)];
  detail::Envelope env = ctx->take(me_world, {comm_id, src_world, ft});
  auto& st = c.stats();
  const double t0 = st.clock;
  st.clock = std::max(st.clock, env.arrival);
  ctx->record(me_world, {TraceEvent::Kind::Recv, t0, st.clock, src_world,
                         payload_bytes(env.payload.size()), ComputeKind::Other});
  st.bytes_received[static_cast<std::size_t>(plane)] +=
      payload_bytes(env.payload.size());
  st.messages_received[static_cast<std::size_t>(plane)] += 1;
  return env.payload;
}

}  // namespace

void Comm::bcast(int root, int tag, std::span<real_t> buf, CommPlane plane) {
  const int p = size();
  SLU3D_CHECK(root >= 0 && root < p, "bcast: bad root");
  if (p == 1) return;
  const int vrank = (rank_ - root + p) % p;
  // Binomial tree: receive from parent (clears lowest set bit), then send
  // to children.
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      const int src = ((vrank - mask) + root) % p;
      const auto payload = coll_recv(*this, ctx_, comm_id_, members_,
                                     world_rank(), src, tag, plane);
      SLU3D_CHECK(payload.size() == buf.size(), "bcast size mismatch");
      std::copy(payload.begin(), payload.end(), buf.begin());
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < p) {
      const int dst = ((vrank + mask) + root) % p;
      coll_send(*this, ctx_, comm_id_, members_, world_rank(), dst, tag, buf,
                plane);
    }
    mask >>= 1;
  }
}

namespace {
enum class RedOp { Sum, Max };
}

void Comm::reduce_sum(int root, int tag, std::span<real_t> buf, CommPlane plane) {
  const int p = size();
  SLU3D_CHECK(root >= 0 && root < p, "reduce: bad root");
  if (p == 1) return;
  const int vrank = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if ((vrank & mask) == 0) {
      const int vpartner = vrank | mask;
      if (vpartner < p) {
        const int src = (vpartner + root) % p;
        const auto payload = coll_recv(*this, ctx_, comm_id_, members_,
                                       world_rank(), src, tag, plane);
        SLU3D_CHECK(payload.size() == buf.size(), "reduce size mismatch");
        for (std::size_t i = 0; i < buf.size(); ++i) buf[i] += payload[i];
      }
    } else {
      const int dst = ((vrank & ~mask) + root) % p;
      coll_send(*this, ctx_, comm_id_, members_, world_rank(), dst, tag, buf,
                plane);
      break;
    }
    mask <<= 1;
  }
}

void Comm::allreduce_sum(int tag, std::span<real_t> buf, CommPlane plane) {
  reduce_sum(0, tag, buf, plane);
  bcast(0, tag, buf, plane);
}

double Comm::allreduce_max(int tag, double value, CommPlane plane) {
  // Max-reduce expressed over the sum machinery would be wrong; do a small
  // gather-to-0 + bcast instead (collectives here are O(P) messages at
  // rank 0, fine for a scalar used only in tests/reports).
  std::vector<real_t> v{value};
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) {
      const auto payload = coll_recv(*this, ctx_, comm_id_, members_,
                                     world_rank(), r, tag, plane);
      v[0] = std::max(v[0], payload[0]);
    }
  } else {
    coll_send(*this, ctx_, comm_id_, members_, world_rank(), 0, tag, v, plane);
  }
  bcast(0, tag, v, plane);
  return v[0];
}

std::vector<real_t> Comm::allgatherv(int tag, std::span<const real_t> mine,
                                     CommPlane plane) {
  const int p = size();
  if (p == 1) return std::vector<real_t>(mine.begin(), mine.end());
  // Gather sizes and payloads onto rank 0, then broadcast the result.
  std::vector<real_t> sizes(static_cast<std::size_t>(p), 0.0);
  sizes[static_cast<std::size_t>(rank_)] = static_cast<real_t>(mine.size());
  std::vector<real_t> all;
  if (rank_ == 0) {
    all.assign(mine.begin(), mine.end());
    for (int r = 1; r < p; ++r) {
      const auto payload = coll_recv(*this, ctx_, comm_id_, members_,
                                     world_rank(), r, tag, plane);
      sizes[static_cast<std::size_t>(r)] = static_cast<real_t>(payload.size());
      all.insert(all.end(), payload.begin(), payload.end());
    }
  } else {
    coll_send(*this, ctx_, comm_id_, members_, world_rank(), 0, tag, mine,
              plane);
  }
  bcast(0, tag, sizes, plane);
  std::size_t total = 0;
  for (real_t s : sizes) total += static_cast<std::size_t>(s);
  all.resize(total);
  bcast(0, tag, all, plane);
  return all;
}

void Comm::barrier(int tag, CommPlane plane) {
  std::vector<real_t> empty;
  reduce_sum(0, tag, empty, plane);
  bcast(0, tag, empty, plane);
}

Comm Comm::split(int color, int key) const {
  // Exchange (color, key) via zero-cost setup messages: gather to member 0,
  // broadcast the full table, then each rank filters its own group.
  const Wire wire{ctx_, comm_id_};
  const int setup_tag = detail::full_tag(Op::Setup, 0);
  const int p = size();
  std::vector<real_t> table;  // triples (old_rank, color, key)
  if (rank_ == 0) {
    table.reserve(static_cast<std::size_t>(p) * 3);
    table.insert(table.end(), {0.0, static_cast<real_t>(color), static_cast<real_t>(key)});
    // Receive in rank order for determinism.
    std::vector<std::vector<real_t>> rows(static_cast<std::size_t>(p));
    for (int r = 1; r < p; ++r)
      rows[static_cast<std::size_t>(r)] = wire.recv_free(
          world_rank(), members_[static_cast<std::size_t>(r)], setup_tag);
    for (int r = 1; r < p; ++r) {
      table.push_back(static_cast<real_t>(r));
      table.push_back(rows[static_cast<std::size_t>(r)][0]);
      table.push_back(rows[static_cast<std::size_t>(r)][1]);
    }
    for (int r = 1; r < p; ++r)
      wire.send_free(world_rank(), members_[static_cast<std::size_t>(r)],
                     setup_tag + 1, table);
  } else {
    wire.send_free(world_rank(), members_[0], setup_tag,
                   {static_cast<real_t>(color), static_cast<real_t>(key)});
    table = wire.recv_free(world_rank(), members_[0], setup_tag + 1);
  }

  struct Row {
    int old_rank;
    int color;
    int key;
  };
  std::vector<Row> rows;
  for (std::size_t i = 0; i + 2 < table.size(); i += 3)
    rows.push_back({static_cast<int>(table[i]), static_cast<int>(table[i + 1]),
                    static_cast<int>(table[i + 2])});
  std::vector<Row> mine;
  for (const Row& r : rows)
    if (r.color == color) mine.push_back(r);
  std::stable_sort(mine.begin(), mine.end(), [](const Row& a, const Row& b) {
    return a.key != b.key ? a.key < b.key : a.old_rank < b.old_rank;
  });
  std::vector<int> new_members;
  int new_rank = -1;
  for (const Row& r : mine) {
    if (r.old_rank == rank_) new_rank = static_cast<int>(new_members.size());
    new_members.push_back(members_[static_cast<std::size_t>(r.old_rank)]);
  }
  SLU3D_CHECK(new_rank >= 0, "split: caller missing from its own group");
  const std::uint64_t new_id = detail::mix64(
      comm_id_ * std::uint64_t{0x9e3779b97f4a7c15} +
      static_cast<std::uint64_t>(color) + std::uint64_t{0x1234567});
  return Comm(ctx_, new_id, std::move(new_members), new_rank);
}

double RunResult::max_clock() const {
  double best = 0;
  for (const auto& r : ranks) best = std::max(best, r.clock);
  return best;
}

offset_t RunResult::max_bytes_sent(CommPlane plane) const {
  offset_t best = 0;
  for (const auto& r : ranks)
    best = std::max(best, r.bytes_sent[static_cast<std::size_t>(plane)]);
  return best;
}

offset_t RunResult::max_bytes_received(CommPlane plane) const {
  offset_t best = 0;
  for (const auto& r : ranks)
    best = std::max(best, r.bytes_received[static_cast<std::size_t>(plane)]);
  return best;
}

offset_t RunResult::total_bytes_sent(CommPlane plane) const {
  offset_t total = 0;
  for (const auto& r : ranks)
    total += r.bytes_sent[static_cast<std::size_t>(plane)];
  return total;
}

double RunResult::max_compute_seconds(ComputeKind kind) const {
  double best = 0;
  for (const auto& r : ranks)
    best = std::max(best, r.compute_seconds[static_cast<std::size_t>(kind)]);
  return best;
}

struct RuntimeAccess {
  static Comm make_world(detail::Context* ctx, int n_ranks, int rank) {
    std::vector<int> members(static_cast<std::size_t>(n_ranks));
    for (int i = 0; i < n_ranks; ++i) members[static_cast<std::size_t>(i)] = i;
    return Comm(ctx, /*comm_id=*/1, std::move(members), rank);
  }
};

RunResult run_ranks(int n_ranks, const MachineModel& model,
                    const std::function<void(Comm&)>& body,
                    const RunOptions& options) {
  SLU3D_CHECK(n_ranks > 0, "need at least one rank");
  detail::Context ctx(n_ranks, model);
  if (options.trace) ctx.traces.resize(static_cast<std::size_t>(n_ranks));
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n_ranks));
  threads.reserve(static_cast<std::size_t>(n_ranks));
  for (int r = 0; r < n_ranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        Comm world = RuntimeAccess::make_world(&ctx, n_ranks, r);
        body(world);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        ctx.abort_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
  return RunResult{std::move(ctx.stats), std::move(ctx.traces)};
}

}  // namespace slu3d::sim
