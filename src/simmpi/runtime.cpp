#include "simmpi/runtime.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <tuple>

#include "support/check.hpp"
#include "threads/thread_pool.hpp"

namespace slu3d::sim {

namespace detail {

namespace {
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Operation kinds occupy bits above the 32-bit user-tag space so a
// collective cannot match a point-to-point message that reuses the same
// user tag. User tags span the full non-negative int range: a sharded
// fleet hands each service a disjoint 2^24-wide base, so the matching key
// is 64-bit internally.
enum class Op : int { P2P = 0, Coll = 1, Setup = 2, Rma = 3 };
std::int64_t full_tag(Op op, int tag) {
  SLU3D_CHECK(tag >= 0, "tag out of range");
  return (static_cast<std::int64_t>(op) << 32) |
         static_cast<std::int64_t>(tag);
}

offset_t payload_bytes(std::size_t n_reals) {
  return static_cast<offset_t>(n_reals * sizeof(real_t));
}
}  // namespace

struct MsgKey {
  std::uint64_t comm_id;
  int src_world;
  std::int64_t tag;  ///< full (op-qualified) tag
  auto operator<=>(const MsgKey&) const = default;
};

struct Envelope {
  std::vector<real_t> payload;
  double arrival;
};

/// Cross-rank metadata of one RMA window. Created lazily (first member to
/// arrive, under the registry mutex) and identified by a uid every member
/// computes locally from (comm_id, tag, per-member creation count) — the
/// counts stay in lockstep because win_create is collective, so members
/// rendezvous on the same entry without serializing pointers. Each member
/// writes only its own extent/snapshot slot; cross-rank reads are ordered
/// by the uncharged creation handshake and by fence barriers.
struct WindowShared {
  std::uint64_t uid = 0;
  int p = 0;
  std::vector<std::size_t> extents;
  std::vector<std::vector<real_t>> snapshots;  ///< what get() reads
  std::vector<double> snap_clocks;             ///< publish time per member
};

class Context {
 public:
  Context(int n, const Platform& p)
      : platform(p),
        layout(p, n),
        model(p.machine),
        stats(static_cast<std::size_t>(n)),
        links(static_cast<std::size_t>(layout.num_links())) {
    for (int i = 0; i < n; ++i) mailboxes.push_back(std::make_unique<Mailbox>());
  }

  /// Matching queue for one (comm, src, tag) key. Arriving envelopes get
  /// ascending push sequence numbers; receives — blocking recv and posted
  /// irecv alike — draw ascending tickets from the same counter, and ticket
  /// t matches push t. That is exactly MPI's non-overtaking rule with
  /// blocking and non-blocking receives ordered by post time in one stream.
  struct Queue {
    std::map<std::uint64_t, Envelope> ready;  ///< push seq -> envelope
    std::uint64_t next_push = 0;
    std::uint64_t next_ticket = 0;
  };

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::map<MsgKey, Queue> queues;
  };

  /// Reserves the next matching slot of `key` at the destination (the
  /// posting half of a receive).
  std::uint64_t acquire_ticket(int dst_world, const MsgKey& key) {
    Mailbox& mb = *mailboxes[static_cast<std::size_t>(dst_world)];
    const std::lock_guard<std::mutex> lock(mb.mu);
    return mb.queues[key].next_ticket++;
  }

  void deliver(int dst_world, const MsgKey& key, Envelope env) {
    Mailbox& mb = *mailboxes[static_cast<std::size_t>(dst_world)];
    {
      const std::lock_guard<std::mutex> lock(mb.mu);
      Queue& q = mb.queues[key];
      q.ready.emplace(q.next_push++, std::move(env));
    }
    mb.cv.notify_all();
  }

  /// Reserves the next push slot of `key` at the destination *now*, for a
  /// delivery that will be executed later. An ibcast forwards to its tree
  /// children only when the parent payload is waited on, and two in-flight
  /// ibcasts on the same (root, tag) may be waited in either order — the
  /// slot reserved at post time keeps the downstream match in post order
  /// (MPI's non-overtaking rule), so equal-tag broadcasts never alias.
  std::uint64_t acquire_push_slot(int dst_world, const MsgKey& key) {
    Mailbox& mb = *mailboxes[static_cast<std::size_t>(dst_world)];
    const std::lock_guard<std::mutex> lock(mb.mu);
    return mb.queues[key].next_push++;
  }

  /// Second half of acquire_push_slot: lands the envelope in its slot.
  void deliver_at(int dst_world, const MsgKey& key, std::uint64_t slot,
                  Envelope env) {
    Mailbox& mb = *mailboxes[static_cast<std::size_t>(dst_world)];
    {
      const std::lock_guard<std::mutex> lock(mb.mu);
      mb.queues[key].ready.emplace(slot, std::move(env));
    }
    mb.cv.notify_all();
  }

  /// Blocks until the envelope matching `ticket` has been delivered.
  Envelope take_ticket(int dst_world, const MsgKey& key, std::uint64_t ticket) {
    Mailbox& mb = *mailboxes[static_cast<std::size_t>(dst_world)];
    std::unique_lock<std::mutex> lock(mb.mu);
    mb.cv.wait(lock, [&] {
      if (aborted.load(std::memory_order_relaxed)) return true;
      const auto it = mb.queues.find(key);
      return it != mb.queues.end() && it->second.ready.contains(ticket);
    });
    if (aborted.load(std::memory_order_relaxed))
      throw Error("simmpi: run aborted by a failing rank");
    return pop_ready(mb, key, ticket);
  }

  /// Non-blocking half of take_ticket.
  std::optional<Envelope> try_take_ticket(int dst_world, const MsgKey& key,
                                          std::uint64_t ticket) {
    Mailbox& mb = *mailboxes[static_cast<std::size_t>(dst_world)];
    const std::lock_guard<std::mutex> lock(mb.mu);
    if (aborted.load(std::memory_order_relaxed))
      throw Error("simmpi: run aborted by a failing rank");
    const auto it = mb.queues.find(key);
    if (it == mb.queues.end() || !it->second.ready.contains(ticket))
      return std::nullopt;
    return pop_ready(mb, key, ticket);
  }

  /// Fused ticket-draw + take for the next *already delivered* envelope of
  /// `key`: succeeds only if the slot the next ticket would match holds a
  /// landed envelope, and then consumes both. Lets a fence drain every
  /// operation that arrived in the closing epoch without registering
  /// receives for them up front (one-sided targets don't know the count).
  std::optional<Envelope> try_take_next(int dst_world, const MsgKey& key) {
    Mailbox& mb = *mailboxes[static_cast<std::size_t>(dst_world)];
    const std::lock_guard<std::mutex> lock(mb.mu);
    if (aborted.load(std::memory_order_relaxed))
      throw Error("simmpi: run aborted by a failing rank");
    const auto it = mb.queues.find(key);
    if (it == mb.queues.end() || !it->second.ready.contains(it->second.next_ticket))
      return std::nullopt;
    return pop_ready(mb, key, it->second.next_ticket++);
  }

  /// Rendezvous for win_create: every member computes `uid` locally and the
  /// first to arrive creates the shared struct.
  std::shared_ptr<WindowShared> window_shared(std::uint64_t uid, int p) {
    const std::lock_guard<std::mutex> lock(win_mu);
    auto& slot = windows[uid];
    if (!slot) {
      slot = std::make_shared<WindowShared>();
      slot->uid = uid;
      slot->p = p;
      slot->extents.resize(static_cast<std::size_t>(p), 0);
      slot->snapshots.resize(static_cast<std::size_t>(p));
      slot->snap_clocks.resize(static_cast<std::size_t>(p), 0.0);
    }
    SLU3D_CHECK(slot->p == p, "win_create: uid collision across sizes");
    return slot;
  }

  /// Per-member window creation counter; advances in lockstep across the
  /// members of a communicator because creation is collective.
  std::uint64_t next_win_count(std::uint64_t comm_id, int tag, int member) {
    const std::lock_guard<std::mutex> lock(win_mu);
    return win_counts[{comm_id, tag, member}]++;
  }

  void abort_all() {
    aborted.store(true, std::memory_order_relaxed);
    for (auto& mb : mailboxes) {
      const std::lock_guard<std::mutex> lock(mb->mu);
      mb->cv.notify_all();
    }
  }

 private:
  /// Removes and returns the matched envelope; the queue itself is erased
  /// once drained AND free of outstanding tickets. RMA op-streams are kept
  /// alive even when quiescent: a Window mirrors the stream's ticket counter
  /// in its own expect/apply cursors, so resetting the queue to zero between
  /// epochs would desynchronise every later expect. Caller holds mb.mu.
  Envelope pop_ready(Mailbox& mb, const MsgKey& key, std::uint64_t ticket) {
    const auto it = mb.queues.find(key);
    const auto rit = it->second.ready.find(ticket);
    Envelope env = std::move(rit->second);
    it->second.ready.erase(rit);
    if (it->second.ready.empty() &&
        it->second.next_push == it->second.next_ticket &&
        (key.tag >> 32) != static_cast<std::int64_t>(Op::Rma))
      mb.queues.erase(it);
    return env;
  }

 public:

  Platform platform;
  PlatformLayout layout;
  MachineModel model;  ///< == platform.machine (compute + NIC constants)
  std::vector<RankStats> stats;
  std::vector<RankTrace> traces;  // sized only when tracing is enabled
  std::vector<std::unique_ptr<Mailbox>> mailboxes;

  /// Mutable run state of one platform link: the time until which it is
  /// occupied by previously injected transfers, plus lifetime usage.
  struct LinkState {
    double busy = 0.0;
    double queue_seconds = 0.0;
    offset_t bytes = 0;
    offset_t messages = 0;
  };
  /// Indexed by PlatformLayout link id. On the flat platform each link is
  /// one rank's wire, written only by the owning rank's thread (senders
  /// serialize their own transfers; LogGP's G applies at the injection
  /// side) — no lock needed. Hierarchical platforms share links between
  /// ranks, so charges there take link_mu and serialize FCFS in the
  /// wall-clock order rank threads reach the wire.
  std::vector<LinkState> links;
  std::mutex link_mu;

  /// THE charge site. Routes a transfer of `bytes` from `src_world` to
  /// `dst_world` starting no earlier than `ready` (the time the payload
  /// exists at the source: the sender's clock for blocking sends, the
  /// pre-overhead post clock for isend, the parent-completion bound for
  /// ibcast forwards), serializes it store-and-forward across every link
  /// on the route — each hop starts at max(progress so far, link busy) —
  /// and returns the arrival time at the destination. Queueing delay is
  /// attributed to the sender's RankStats::link_queue_seconds, to the
  /// per-link usage table, and (when tracing) to a LinkWait event naming
  /// the bottleneck link. On the flat platform the route is the single
  /// source wire and the arithmetic is bitwise-identical to the historical
  /// `max(ready, net_busy) + alpha + beta*bytes` clock.
  double charge_transfer(int src_world, int dst_world, offset_t bytes,
                         double ready) {
    thread_local std::vector<int> hops;
    layout.route(src_world, dst_world, hops);
    double t = ready;
    double queued = 0.0;
    double worst = 0.0;
    int bottleneck = -1;
    const auto charge_hop = [&](int id) {
      LinkState& ls = links[static_cast<std::size_t>(id)];
      const double wait = ls.busy - t;
      if (wait > 0.0) {
        queued += wait;
        if (wait > worst) {
          worst = wait;
          bottleneck = id;
        }
        t = ls.busy;
      }
      const PlatformLayout::Link& spec = layout.link(id);
      t = t + (spec.latency + spec.inv_bw * static_cast<double>(bytes));
      ls.busy = t;
      if (wait > 0.0) ls.queue_seconds += wait;
      ls.bytes += bytes;
      ls.messages += 1;
    };
    if (layout.flat()) {
      for (const int id : hops) charge_hop(id);
    } else {
      const std::lock_guard<std::mutex> lock(link_mu);
      for (const int id : hops) charge_hop(id);
    }
    if (queued > 0.0) {
      stats[static_cast<std::size_t>(src_world)].link_queue_seconds += queued;
      record(src_world, {TraceEvent::Kind::LinkWait, ready, ready + queued,
                         dst_world, bytes, ComputeKind::Other, bottleneck});
    }
    return t;
  }

  std::atomic<bool> aborted{false};
  /// RMA window registry: uid -> shared struct, plus the per-member
  /// creation counts the uids are derived from. Entries live until the
  /// Context does (windows are few and bounded per run).
  std::mutex win_mu;
  std::map<std::uint64_t, std::shared_ptr<WindowShared>> windows;
  std::map<std::tuple<std::uint64_t, int, int>, std::uint64_t> win_counts;

  void record(int world_rank, TraceEvent ev) {
    if (traces.empty()) return;
    traces[static_cast<std::size_t>(world_rank)].push_back(ev);
  }
};

/// Completion state of one outstanding non-blocking operation. Owned by the
/// posting rank and touched only from its thread; cross-thread handoff goes
/// through the mailbox queues.
struct RequestState {
  enum class Kind { Send, Recv, Bcast };

  Context* ctx = nullptr;
  Kind kind = Kind::Send;
  int me_world = 0;
  int peer_world = -1;  ///< source (Recv/Bcast) or destination (Send)
  std::uint64_t comm_id = 0;
  std::int64_t ftag = 0;  ///< full (op-qualified) tag, for ibcast forwarding
  MsgKey key{};
  std::uint64_t ticket = 0;
  CommPlane plane = CommPlane::XY;
  double post_clock = 0.0;
  bool completed = false;
  std::vector<real_t> payload;    ///< irecv result, moved out by take()
  std::span<real_t> buf{};        ///< ibcast destination
  std::vector<int> child_worlds;  ///< ibcast subtree, fed on completion
  /// Push slots at each child, reserved at post time so a forward executed
  /// at wait time still matches downstream in post order (no equal-tag
  /// aliasing between in-flight broadcasts).
  std::vector<std::uint64_t> child_slots;

  RankStats& st() { return ctx->stats[static_cast<std::size_t>(me_world)]; }

  /// Injects a copy of `buf` towards each child. `fb` is the earliest time
  /// the payload exists on this rank: the post clock for a root, else
  /// max(post clock, parent completion) — NOT the current clock, so a wait
  /// performed long after the data arrived (async progress) does not delay
  /// the subtree's logical arrival. Only the per-message CPU overhead
  /// alpha is charged to this rank's clock.
  void forward_children(double fb) {
    if (child_worlds.empty()) return;
    auto& s = st();
    const offset_t bytes = payload_bytes(buf.size());
    for (std::size_t c = 0; c < child_worlds.size(); ++c) {
      const int dst = child_worlds[c];
      const double arrival = ctx->charge_transfer(me_world, dst, bytes, fb);
      const double t0 = s.clock;
      s.clock += ctx->model.alpha;
      ctx->record(me_world, {TraceEvent::Kind::Send, t0, s.clock, dst, bytes,
                             ComputeKind::Other, -1});
      s.add_sent(plane, bytes);
      ctx->deliver_at(dst, {comm_id, me_world, ftag}, child_slots[c],
                      {std::vector<real_t>(buf.begin(), buf.end()), arrival});
    }
  }

  /// Tries to finish the operation; `block` waits for the match. On
  /// completion the clock advances to max(local, sender completion) — the
  /// overlap credit: compute done since posting has hidden transfer time.
  bool try_complete(bool block) {
    if (completed) return true;
    std::optional<Envelope> env;
    if (block) {
      env = ctx->take_ticket(me_world, key, ticket);
    } else {
      env = ctx->try_take_ticket(me_world, key, ticket);
      if (!env) return false;
    }
    auto& s = st();
    const offset_t bytes = payload_bytes(env->payload.size());
    const double t0 = s.clock;
    s.clock = std::max(s.clock, env->arrival);
    ctx->record(me_world, {TraceEvent::Kind::Wait, t0, s.clock, peer_world,
                           bytes, ComputeKind::Other, -1});
    s.wait_seconds += s.clock - t0;
    s.add_received(plane, bytes);
    if (kind == Kind::Bcast) {
      SLU3D_CHECK(env->payload.size() == buf.size(), "ibcast size mismatch");
      std::copy(env->payload.begin(), env->payload.end(), buf.begin());
      forward_children(std::max(post_clock, env->arrival));
    } else {
      payload = std::move(env->payload);
    }
    completed = true;
    return true;
  }
};

}  // namespace detail

namespace {

using detail::Op;

offset_t payload_bytes(std::size_t n_reals) {
  return static_cast<offset_t>(n_reals * sizeof(real_t));
}

/// The funneled threading contract (DESIGN.md, "Funneled threading model"):
/// compute-pool workers execute pure closures over disjoint data and must
/// never reach the simulated MPI runtime — clocks, counters, and message
/// queues belong to the owning rank thread. Every charged entry point
/// checks; a violation is a programming error in a parallelized hot path.
void assert_funneled() {
  SLU3D_CHECK(!threads::ThreadPool::in_worker(),
              "simmpi called from a compute-pool worker: communication and "
              "clock charging are funneled through the rank thread");
}

}  // namespace

// ---- Request -------------------------------------------------------------

Request::Request() = default;
Request::Request(std::unique_ptr<detail::RequestState> st) : st_(std::move(st)) {}
Request::Request(Request&&) noexcept = default;
Request& Request::operator=(Request&&) noexcept = default;
Request::~Request() = default;

bool Request::done() const { return st_ == nullptr || st_->completed; }

bool Request::test() {
  assert_funneled();
  if (!st_) return true;
  return st_->try_complete(/*block=*/false);
}

void Request::wait() {
  assert_funneled();
  if (st_) st_->try_complete(/*block=*/true);
}

std::vector<real_t> Request::take() {
  assert_funneled();
  SLU3D_CHECK(st_ != nullptr, "take: empty request");
  SLU3D_CHECK(st_->kind == detail::RequestState::Kind::Recv,
              "take: not a receive request");
  st_->try_complete(/*block=*/true);
  return std::move(st_->payload);
}

void wait_all(std::span<Request> requests) {
  for (Request& r : requests)
    if (r.valid()) r.wait();
}

// ---- Comm basics ---------------------------------------------------------

int Comm::world_rank() const { return members_[static_cast<std::size_t>(rank_)]; }

const MachineModel& Comm::model() const { return ctx_->model; }

const Platform& Comm::platform() const { return ctx_->platform; }

RankStats& Comm::stats() {
  return ctx_->stats[static_cast<std::size_t>(world_rank())];
}

double Comm::clock() const {
  return ctx_->stats[static_cast<std::size_t>(world_rank())].clock;
}

void Comm::advance_clock_to(double t) {
  auto& st = stats();
  st.clock = std::max(st.clock, t);
}

void Comm::begin_analysis_phase() {
  assert_funneled();
  auto& st = stats();
  st.in_analysis_phase = true;
  st.analysis_phase_start = st.clock;
}

void Comm::end_analysis_phase() {
  assert_funneled();
  auto& st = stats();
  if (!st.in_analysis_phase) return;
  st.in_analysis_phase = false;
  st.analysis_seconds += st.clock - st.analysis_phase_start;
}

void Comm::add_compute(offset_t flops, ComputeKind kind) {
  assert_funneled();
  const double dt = ctx_->model.compute_time(flops);
  auto& st = stats();
  ctx_->record(world_rank(), {TraceEvent::Kind::Compute, st.clock,
                              st.clock + dt, -1, 0, kind, -1});
  st.clock += dt;
  st.compute_seconds[static_cast<std::size_t>(kind)] += dt;
  st.flops[static_cast<std::size_t>(kind)] += flops;
}

void Comm::add_seconds(double seconds, ComputeKind kind) {
  assert_funneled();
  auto& st = stats();
  st.clock += seconds;
  st.compute_seconds[static_cast<std::size_t>(kind)] += seconds;
}

// ---- charged point-to-point helpers --------------------------------------

namespace {

/// Uncharged internal send/recv used by split(); charged ones below.
struct Wire {
  detail::Context* ctx;
  std::uint64_t comm_id;

  void send_free(int src_world, int dst_world, std::int64_t tag,
                 std::vector<real_t> payload) const {
    ctx->deliver(dst_world, {comm_id, src_world, tag},
                 {std::move(payload), /*arrival=*/0.0});
  }
  std::vector<real_t> recv_free(int dst_world, int src_world,
                                std::int64_t tag) const {
    const detail::MsgKey key{comm_id, src_world, tag};
    const std::uint64_t ticket = ctx->acquire_ticket(dst_world, key);
    return ctx->take_ticket(dst_world, key, ticket).payload;
  }
};

/// Blocking, charged send (store-and-forward): the sender is occupied
/// until the payload clears the route's last link, starting when each link
/// on the route frees up, and the payload reaches the receiver at that
/// same instant.
void send_charged(detail::Context* ctx, std::uint64_t comm_id, int me_world,
                  int dst_world, std::int64_t ft,
                  std::span<const real_t> payload,
                  CommPlane plane) {
  auto& st = ctx->stats[static_cast<std::size_t>(me_world)];
  const offset_t bytes = payload_bytes(payload.size());
  const double t0 = st.clock;
  const double arrival =
      ctx->charge_transfer(me_world, dst_world, bytes, st.clock);
  st.clock = arrival;
  ctx->record(me_world, {TraceEvent::Kind::Send, t0, st.clock, dst_world, bytes,
                         ComputeKind::Other, -1});
  st.add_sent(plane, bytes);
  ctx->deliver(dst_world, {comm_id, me_world, ft},
               {std::vector<real_t>(payload.begin(), payload.end()), arrival});
}

/// Blocking, charged receive through the shared ticket queue.
std::vector<real_t> recv_charged(detail::Context* ctx, std::uint64_t comm_id,
                                 int me_world, int src_world, std::int64_t ft,
                                 CommPlane plane) {
  const detail::MsgKey key{comm_id, src_world, ft};
  const std::uint64_t ticket = ctx->acquire_ticket(me_world, key);
  detail::Envelope env = ctx->take_ticket(me_world, key, ticket);
  auto& st = ctx->stats[static_cast<std::size_t>(me_world)];
  const double t0 = st.clock;
  st.clock = std::max(st.clock, env.arrival);
  ctx->record(me_world, {TraceEvent::Kind::Recv, t0, st.clock, src_world,
                         payload_bytes(env.payload.size()), ComputeKind::Other,
                         -1});
  st.wait_seconds += st.clock - t0;
  st.add_received(plane, payload_bytes(env.payload.size()));
  return env.payload;
}

}  // namespace

void Comm::send(int dst, int tag, std::span<const real_t> payload,
                CommPlane plane) {
  assert_funneled();
  SLU3D_CHECK(dst >= 0 && dst < size(), "send: bad destination rank");
  send_charged(ctx_, comm_id_, world_rank(),
               members_[static_cast<std::size_t>(dst)],
               detail::full_tag(Op::P2P, tag), payload, plane);
}

std::vector<real_t> Comm::recv(int src, int tag, CommPlane plane) {
  assert_funneled();
  SLU3D_CHECK(src >= 0 && src < size(), "recv: bad source rank");
  return recv_charged(ctx_, comm_id_, world_rank(),
                      members_[static_cast<std::size_t>(src)],
                      detail::full_tag(Op::P2P, tag), plane);
}

Request Comm::isend(int dst, int tag, std::span<const real_t> payload,
                    CommPlane plane) {
  assert_funneled();
  SLU3D_CHECK(dst >= 0 && dst < size(), "isend: bad destination rank");
  const std::int64_t ft = detail::full_tag(Op::P2P, tag);
  const int me = world_rank();
  const int dst_world = members_[static_cast<std::size_t>(dst)];
  auto& st = stats();
  const offset_t bytes = payload_bytes(payload.size());
  // The CPU pays only the injection overhead; the transfer itself queues
  // on the route's links behind earlier outstanding sends. On an idle
  // route the arrival time is identical to the blocking send's.
  const double t0 = st.clock;
  st.clock += ctx_->model.alpha;
  const double arrival = ctx_->charge_transfer(me, dst_world, bytes, t0);
  ctx_->record(me, {TraceEvent::Kind::Send, t0, st.clock, dst_world, bytes,
                    ComputeKind::Other, -1});
  st.add_sent(plane, bytes);
  ctx_->deliver(dst_world, {comm_id_, me, ft},
                {std::vector<real_t>(payload.begin(), payload.end()), arrival});
  auto state = std::make_unique<detail::RequestState>();
  state->ctx = ctx_;
  state->kind = detail::RequestState::Kind::Send;
  state->me_world = me;
  state->peer_world = dst_world;
  state->plane = plane;
  state->completed = true;  // buffered: the payload was captured above
  return Request(std::move(state));
}

Request Comm::irecv(int src, int tag, CommPlane plane) {
  assert_funneled();
  SLU3D_CHECK(src >= 0 && src < size(), "irecv: bad source rank");
  const int me = world_rank();
  auto state = std::make_unique<detail::RequestState>();
  state->ctx = ctx_;
  state->kind = detail::RequestState::Kind::Recv;
  state->me_world = me;
  state->peer_world = members_[static_cast<std::size_t>(src)];
  state->key = {comm_id_, state->peer_world, detail::full_tag(Op::P2P, tag)};
  state->ticket = ctx_->acquire_ticket(me, state->key);
  state->plane = plane;
  state->post_clock = clock();
  return Request(std::move(state));
}

// ---- collectives ---------------------------------------------------------

namespace {

/// Charged collective-channel send/recv shared by the tree algorithms.
void coll_send(Comm& c, detail::Context* ctx, std::uint64_t comm_id,
               std::span<const int> members, int me_world, int dst, int tag,
               std::span<const real_t> payload, CommPlane plane) {
  (void)c;
  send_charged(ctx, comm_id, me_world, members[static_cast<std::size_t>(dst)],
               detail::full_tag(Op::Coll, tag), payload, plane);
}

std::vector<real_t> coll_recv(Comm& c, detail::Context* ctx,
                              std::uint64_t comm_id, std::span<const int> members,
                              int me_world, int src, int tag, CommPlane plane) {
  (void)c;
  return recv_charged(ctx, comm_id, me_world,
                      members[static_cast<std::size_t>(src)],
                      detail::full_tag(Op::Coll, tag), plane);
}

}  // namespace

void Comm::bcast(int root, int tag, std::span<real_t> buf, CommPlane plane) {
  assert_funneled();
  const int p = size();
  SLU3D_CHECK(root >= 0 && root < p, "bcast: bad root");
  if (p == 1) return;
  const int vrank = (rank_ - root + p) % p;
  // Binomial tree: receive from parent (clears lowest set bit), then send
  // to children.
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      const int src = ((vrank - mask) + root) % p;
      const auto payload = coll_recv(*this, ctx_, comm_id_, members_,
                                     world_rank(), src, tag, plane);
      SLU3D_CHECK(payload.size() == buf.size(), "bcast size mismatch");
      std::copy(payload.begin(), payload.end(), buf.begin());
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < p) {
      const int dst = ((vrank + mask) + root) % p;
      coll_send(*this, ctx_, comm_id_, members_, world_rank(), dst, tag, buf,
                plane);
    }
    mask >>= 1;
  }
}

Request Comm::ibcast(int root, int tag, std::span<real_t> buf, CommPlane plane) {
  assert_funneled();
  const int p = size();
  SLU3D_CHECK(root >= 0 && root < p, "ibcast: bad root");
  const int me = world_rank();
  auto state = std::make_unique<detail::RequestState>();
  state->ctx = ctx_;
  state->kind = detail::RequestState::Kind::Bcast;
  state->me_world = me;
  state->comm_id = comm_id_;
  state->ftag = detail::full_tag(Op::Coll, tag);
  state->plane = plane;
  state->buf = buf;
  state->post_clock = clock();
  if (p == 1) {
    state->completed = true;
    return Request(std::move(state));
  }
  // Same binomial tree as bcast(), so per-rank message/byte counts match
  // the blocking form exactly.
  const int vrank = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p && (vrank & mask) == 0) mask <<= 1;
  // mask is now vrank's lowest set bit (or the tree's top for the root).
  if (vrank != 0) {
    const int src = ((vrank - mask) + root) % p;
    state->peer_world = members_[static_cast<std::size_t>(src)];
    state->key = {comm_id_, state->peer_world, state->ftag};
    state->ticket = ctx_->acquire_ticket(me, state->key);
  }
  for (int m = mask >> 1; m > 0; m >>= 1)
    if (vrank + m < p)
      state->child_worlds.push_back(
          members_[static_cast<std::size_t>(((vrank + m) + root) % p)]);
  // Reserve each child's matching slot now: forwards may execute at wait
  // time, out of post order across equal-tag broadcasts.
  for (const int dst : state->child_worlds)
    state->child_slots.push_back(
        ctx_->acquire_push_slot(dst, {comm_id_, me, state->ftag}));
  if (vrank == 0) {
    state->forward_children(state->post_clock);
    state->completed = true;
  }
  return Request(std::move(state));
}

namespace {
enum class RedOp { Sum, Max };
}

void Comm::reduce_sum(int root, int tag, std::span<real_t> buf, CommPlane plane) {
  assert_funneled();
  const int p = size();
  SLU3D_CHECK(root >= 0 && root < p, "reduce: bad root");
  if (p == 1) return;
  const int vrank = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if ((vrank & mask) == 0) {
      const int vpartner = vrank | mask;
      if (vpartner < p) {
        const int src = (vpartner + root) % p;
        const auto payload = coll_recv(*this, ctx_, comm_id_, members_,
                                       world_rank(), src, tag, plane);
        SLU3D_CHECK(payload.size() == buf.size(), "reduce size mismatch");
        for (std::size_t i = 0; i < buf.size(); ++i) buf[i] += payload[i];
      }
    } else {
      const int dst = ((vrank & ~mask) + root) % p;
      coll_send(*this, ctx_, comm_id_, members_, world_rank(), dst, tag, buf,
                plane);
      break;
    }
    mask <<= 1;
  }
}

void Comm::allreduce_sum(int tag, std::span<real_t> buf, CommPlane plane) {
  assert_funneled();
  reduce_sum(0, tag, buf, plane);
  bcast(0, tag, buf, plane);
}

double Comm::allreduce_max(int tag, double value, CommPlane plane) {
  assert_funneled();
  // Max-reduce expressed over the sum machinery would be wrong; do a small
  // gather-to-0 + bcast instead (collectives here are O(P) messages at
  // rank 0, fine for a scalar used only in tests/reports).
  std::vector<real_t> v{value};
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) {
      const auto payload = coll_recv(*this, ctx_, comm_id_, members_,
                                     world_rank(), r, tag, plane);
      v[0] = std::max(v[0], payload[0]);
    }
  } else {
    coll_send(*this, ctx_, comm_id_, members_, world_rank(), 0, tag, v, plane);
  }
  bcast(0, tag, v, plane);
  return v[0];
}

std::vector<real_t> Comm::allgatherv(int tag, std::span<const real_t> mine,
                                     CommPlane plane) {
  assert_funneled();
  const int p = size();
  if (p == 1) return std::vector<real_t>(mine.begin(), mine.end());
  // Gather sizes and payloads onto rank 0, then broadcast the result.
  std::vector<real_t> sizes(static_cast<std::size_t>(p), 0.0);
  sizes[static_cast<std::size_t>(rank_)] = static_cast<real_t>(mine.size());
  std::vector<real_t> all;
  if (rank_ == 0) {
    all.assign(mine.begin(), mine.end());
    for (int r = 1; r < p; ++r) {
      const auto payload = coll_recv(*this, ctx_, comm_id_, members_,
                                     world_rank(), r, tag, plane);
      sizes[static_cast<std::size_t>(r)] = static_cast<real_t>(payload.size());
      all.insert(all.end(), payload.begin(), payload.end());
    }
  } else {
    coll_send(*this, ctx_, comm_id_, members_, world_rank(), 0, tag, mine,
              plane);
  }
  bcast(0, tag, sizes, plane);
  std::size_t total = 0;
  for (real_t s : sizes) total += static_cast<std::size_t>(s);
  all.resize(total);
  bcast(0, tag, all, plane);
  return all;
}

void Comm::barrier(int tag, CommPlane plane) {
  assert_funneled();
  std::vector<real_t> empty;
  reduce_sum(0, tag, empty, plane);
  bcast(0, tag, empty, plane);
}

Comm Comm::split(int color, int key) const {
  // Exchange (color, key) via zero-cost setup messages: gather to member 0,
  // broadcast the full table, then each rank filters its own group.
  const Wire wire{ctx_, comm_id_};
  const std::int64_t setup_tag = detail::full_tag(Op::Setup, 0);
  const int p = size();
  std::vector<real_t> table;  // triples (old_rank, color, key)
  if (rank_ == 0) {
    table.reserve(static_cast<std::size_t>(p) * 3);
    table.insert(table.end(), {0.0, static_cast<real_t>(color), static_cast<real_t>(key)});
    // Receive in rank order for determinism.
    std::vector<std::vector<real_t>> rows(static_cast<std::size_t>(p));
    for (int r = 1; r < p; ++r)
      rows[static_cast<std::size_t>(r)] = wire.recv_free(
          world_rank(), members_[static_cast<std::size_t>(r)], setup_tag);
    for (int r = 1; r < p; ++r) {
      table.push_back(static_cast<real_t>(r));
      table.push_back(rows[static_cast<std::size_t>(r)][0]);
      table.push_back(rows[static_cast<std::size_t>(r)][1]);
    }
    for (int r = 1; r < p; ++r)
      wire.send_free(world_rank(), members_[static_cast<std::size_t>(r)],
                     setup_tag + 1, table);
  } else {
    wire.send_free(world_rank(), members_[0], setup_tag,
                   {static_cast<real_t>(color), static_cast<real_t>(key)});
    table = wire.recv_free(world_rank(), members_[0], setup_tag + 1);
  }

  struct Row {
    int old_rank;
    int color;
    int key;
  };
  std::vector<Row> rows;
  for (std::size_t i = 0; i + 2 < table.size(); i += 3)
    rows.push_back({static_cast<int>(table[i]), static_cast<int>(table[i + 1]),
                    static_cast<int>(table[i + 2])});
  std::vector<Row> mine;
  for (const Row& r : rows)
    if (r.color == color) mine.push_back(r);
  std::stable_sort(mine.begin(), mine.end(), [](const Row& a, const Row& b) {
    return a.key != b.key ? a.key < b.key : a.old_rank < b.old_rank;
  });
  std::vector<int> new_members;
  int new_rank = -1;
  for (const Row& r : mine) {
    if (r.old_rank == rank_) new_rank = static_cast<int>(new_members.size());
    new_members.push_back(members_[static_cast<std::size_t>(r.old_rank)]);
  }
  SLU3D_CHECK(new_rank >= 0, "split: caller missing from its own group");
  const std::uint64_t new_id = detail::mix64(
      comm_id_ * std::uint64_t{0x9e3779b97f4a7c15} +
      static_cast<std::uint64_t>(color) + std::uint64_t{0x1234567});
  return Comm(ctx_, new_id, std::move(new_members), new_rank);
}

// ---- one-sided windows -----------------------------------------------------

namespace {

/// Wire format of a window operation: two uncharged header words, then the
/// data. Word 0 packs the kind into the top byte and the target element
/// offset into the low 56 bits; word 1 is the dense span length. For
/// ScatterAcc the data is ceil(len/64) bitmap words followed by the packed
/// nonzeros; for Put/Acc it is the len elements themselves.
enum class RmaKind : std::uint64_t { Put = 0, Acc = 1, ScatterAcc = 2 };
constexpr std::uint64_t kRmaOffsetMask = (std::uint64_t{1} << 56) - 1;

real_t rma_header(RmaKind kind, std::size_t offset) {
  SLU3D_CHECK(offset <= kRmaOffsetMask, "window op: offset out of range");
  return std::bit_cast<real_t>((static_cast<std::uint64_t>(kind) << 56) |
                               static_cast<std::uint64_t>(offset));
}

/// All operations of one window share a single matching stream per origin:
/// uid as the communicator field, the origin as source, one reserved tag.
std::int64_t rma_op_tag() { return detail::full_tag(Op::Rma, 0); }

}  // namespace

Window Comm::win_create(int tag, std::span<real_t> local, CommPlane plane) {
  assert_funneled();
  const int p = size();
  // Lockstep per-member creation count makes the uid computable locally and
  // identical across members without exchanging it.
  const std::uint64_t count = ctx_->next_win_count(comm_id_, tag, world_rank());
  const std::uint64_t uid = detail::mix64(
      detail::mix64(comm_id_ ^ (static_cast<std::uint64_t>(tag) << 32) ^
                    std::uint64_t{0xA11CE5}) +
      count * std::uint64_t{0x9e3779b97f4a7c15});
  auto sh = ctx_->window_shared(uid, p);
  sh->extents[static_cast<std::size_t>(rank_)] = local.size();
  sh->snapshots[static_cast<std::size_t>(rank_)].assign(local.begin(),
                                                        local.end());
  sh->snap_clocks[static_cast<std::size_t>(rank_)] = clock();
  // Uncharged handshake (like split()): gather-to-member-0 + replies. This
  // orders every member's slot writes before every member's return, so no
  // operation can race window creation.
  const Wire wire{ctx_, comm_id_};
  const std::int64_t hs = detail::full_tag(Op::Rma, tag);
  if (rank_ == 0) {
    for (int r = 1; r < p; ++r)
      wire.recv_free(world_rank(), members_[static_cast<std::size_t>(r)], hs);
    for (int r = 1; r < p; ++r)
      wire.send_free(world_rank(), members_[static_cast<std::size_t>(r)], hs,
                     {});
  } else if (p > 1) {
    wire.send_free(world_rank(), members_[0], hs, {});
    wire.recv_free(world_rank(), members_[0], hs);
  }
  Window w;
  w.ctx_ = ctx_;
  w.sh_ = std::move(sh);
  w.members_ = members_;
  w.rank_ = rank_;
  w.plane_ = plane;
  w.local_ = local;
  w.origin_.resize(static_cast<std::size_t>(p));
  w.comm_ = std::make_shared<Comm>(*this);
  return w;
}

std::size_t Window::extent(int target) const {
  SLU3D_CHECK(valid(), "extent: invalid window");
  SLU3D_CHECK(target >= 0 && target < size(), "extent: bad target");
  return sh_->extents[static_cast<std::size_t>(target)];
}

/// Origin-side injection, charged exactly like isend: alpha on the clock,
/// the transfer (data bytes only — the header words ride free) serialized
/// across the route to the target, bytes/messages booked as sent on the
/// plane.
void Window::post_op(int target, std::vector<real_t> payload,
                     offset_t data_bytes) {
  assert_funneled();
  SLU3D_CHECK(valid(), "window op: invalid window");
  SLU3D_CHECK(target >= 0 && target < size(), "window op: bad target");
  const int me = members_[static_cast<std::size_t>(rank_)];
  const int dst = members_[static_cast<std::size_t>(target)];
  auto& st = ctx_->stats[static_cast<std::size_t>(me)];
  const double t0 = st.clock;
  st.clock += ctx_->model.alpha;
  const double arrival = ctx_->charge_transfer(me, dst, data_bytes, t0);
  ctx_->record(me, {TraceEvent::Kind::Send, t0, st.clock, dst, data_bytes,
                    ComputeKind::Other, -1});
  st.add_sent(plane_, data_bytes);
  ctx_->deliver(dst, {sh_->uid, me, rma_op_tag()},
                {std::move(payload), arrival});
}

void Window::put(int target, std::size_t offset, std::span<const real_t> data) {
  SLU3D_CHECK(offset + data.size() <= extent(target), "put: out of range");
  std::vector<real_t> payload;
  payload.reserve(data.size() + 2);
  payload.push_back(rma_header(RmaKind::Put, offset));
  payload.push_back(std::bit_cast<real_t>(static_cast<std::uint64_t>(data.size())));
  payload.insert(payload.end(), data.begin(), data.end());
  post_op(target, std::move(payload), payload_bytes(data.size()));
}

void Window::accumulate(int target, std::size_t offset,
                        std::span<const real_t> data) {
  SLU3D_CHECK(offset + data.size() <= extent(target),
              "accumulate: out of range");
  std::vector<real_t> payload;
  payload.reserve(data.size() + 2);
  payload.push_back(rma_header(RmaKind::Acc, offset));
  payload.push_back(std::bit_cast<real_t>(static_cast<std::uint64_t>(data.size())));
  payload.insert(payload.end(), data.begin(), data.end());
  post_op(target, std::move(payload), payload_bytes(data.size()));
}

void Window::scatter_accumulate(int target, std::size_t offset,
                                std::size_t span_len,
                                std::span<const std::uint64_t> bitmap,
                                std::span<const real_t> packed) {
  const std::size_t words = (span_len + 63) / 64;
  SLU3D_CHECK(bitmap.size() == words, "scatter_accumulate: bitmap size");
  SLU3D_CHECK(offset + span_len <= extent(target),
              "scatter_accumulate: out of range");
  std::vector<real_t> payload;
  payload.reserve(2 + words + packed.size());
  payload.push_back(rma_header(RmaKind::ScatterAcc, offset));
  payload.push_back(std::bit_cast<real_t>(static_cast<std::uint64_t>(span_len)));
  for (const std::uint64_t w : bitmap)
    payload.push_back(std::bit_cast<real_t>(w));
  payload.insert(payload.end(), packed.begin(), packed.end());
  post_op(target, std::move(payload), payload_bytes(words + packed.size()));
}

WindowDelivery Window::expect(int origin) {
  assert_funneled();
  SLU3D_CHECK(valid(), "expect: invalid window");
  SLU3D_CHECK(origin >= 0 && origin < size(), "expect: bad origin");
  const detail::MsgKey key{sh_->uid,
                           members_[static_cast<std::size_t>(origin)],
                           rma_op_tag()};
  const std::uint64_t ticket =
      ctx_->acquire_ticket(members_[static_cast<std::size_t>(rank_)], key);
  auto& os = origin_[static_cast<std::size_t>(origin)];
  SLU3D_CHECK(ticket == os.next_expect,
              "expect: window matching stream out of sync");
  return WindowDelivery(this, origin, os.next_expect++);
}

/// Applies every not-yet-applied operation from `origin` up to and
/// including `seq`, in post order — the non-overtaking guarantee: waiting
/// a later delivery first forces the earlier ones in before it.
void Window::apply_through(int origin, std::uint64_t seq) {
  assert_funneled();
  auto& os = origin_[static_cast<std::size_t>(origin)];
  const detail::MsgKey key{sh_->uid,
                           members_[static_cast<std::size_t>(origin)],
                           rma_op_tag()};
  const int me = members_[static_cast<std::size_t>(rank_)];
  while (os.next_applied <= seq) {
    detail::Envelope env = ctx_->take_ticket(me, key, os.next_applied);
    apply_envelope(origin, std::move(env.payload), env.arrival);
    ++os.next_applied;
  }
}

/// Receiver-side completion of one landed operation: charged like an irecv
/// wait (clock to max(local, arrival), wait credit, data bytes + one
/// message received on the plane), then the decoded update is applied to
/// the local window memory.
void Window::apply_envelope(int origin, std::vector<real_t> payload,
                            double arrival) {
  SLU3D_CHECK(payload.size() >= 2, "window op: truncated payload");
  const int me = members_[static_cast<std::size_t>(rank_)];
  auto& s = ctx_->stats[static_cast<std::size_t>(me)];
  const offset_t bytes = payload_bytes(payload.size() - 2);
  const double t0 = s.clock;
  s.clock = std::max(s.clock, arrival);
  ctx_->record(me, {TraceEvent::Kind::Wait, t0, s.clock,
                    members_[static_cast<std::size_t>(origin)], bytes,
                    ComputeKind::Other, -1});
  s.wait_seconds += s.clock - t0;
  s.add_received(plane_, bytes);
  const std::uint64_t h0 = std::bit_cast<std::uint64_t>(payload[0]);
  const std::size_t offset = static_cast<std::size_t>(h0 & kRmaOffsetMask);
  const std::size_t len = static_cast<std::size_t>(
      std::bit_cast<std::uint64_t>(payload[1]));
  SLU3D_CHECK(offset + len <= local_.size(), "window op: lands out of range");
  const std::span<const real_t> data(payload.data() + 2, payload.size() - 2);
  switch (static_cast<RmaKind>(h0 >> 56)) {
    case RmaKind::Put:
      SLU3D_CHECK(data.size() == len, "put: data size mismatch");
      std::copy(data.begin(), data.end(), local_.begin() + static_cast<std::ptrdiff_t>(offset));
      break;
    case RmaKind::Acc:
      SLU3D_CHECK(data.size() == len, "accumulate: data size mismatch");
      for (std::size_t i = 0; i < len; ++i) local_[offset + i] += data[i];
      break;
    case RmaKind::ScatterAcc: {
      const std::size_t words = (len + 63) / 64;
      SLU3D_CHECK(data.size() >= words, "scatter_accumulate: truncated bitmap");
      const std::span<const real_t> packed = data.subspan(words);
      std::size_t next = 0;
      for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t bits = std::bit_cast<std::uint64_t>(data[w]);
        while (bits != 0) {
          const int b = std::countr_zero(bits);
          bits &= bits - 1;
          const std::size_t i = w * 64 + static_cast<std::size_t>(b);
          SLU3D_CHECK(i < len, "scatter_accumulate: bit beyond span");
          local_[offset + i] += packed[next++];
        }
      }
      SLU3D_CHECK(next == packed.size(),
                  "scatter_accumulate: popcount != packed size");
      break;
    }
    default:
      throw Error("window op: unknown kind");
  }
}

void WindowDelivery::wait() {
  if (!win_) return;
  Window* w = win_;
  win_ = nullptr;
  w->apply_through(origin_, seq_);
}

void Window::get(int target, std::size_t offset, std::span<real_t> out) {
  assert_funneled();
  SLU3D_CHECK(valid(), "get: invalid window");
  SLU3D_CHECK(target >= 0 && target < size(), "get: bad target");
  const auto& snap = sh_->snapshots[static_cast<std::size_t>(target)];
  SLU3D_CHECK(offset + out.size() <= snap.size(), "get: out of range");
  const int me = members_[static_cast<std::size_t>(rank_)];
  auto& st = ctx_->stats[static_cast<std::size_t>(me)];
  const offset_t bytes = payload_bytes(out.size());
  const double t0 = st.clock;
  // The payload leaves the target at its snapshot publish time; the fetch
  // occupies the origin for the transfer (the target's thread is not
  // involved — that is the point of one-sided). Charged contention-free
  // along the target -> origin route: a snapshot read models pulling from
  // exposed memory, not a queued wire transfer, so it must not perturb
  // (or be perturbed by) the busy clocks — this also keeps flat runs
  // bitwise-reproducible, get() being the one charge whose ordering
  // across ranks is not pinned by message matching.
  const double start =
      std::max(st.clock, sh_->snap_clocks[static_cast<std::size_t>(target)]);
  st.clock = start + ctx_->layout.route_seconds(
                         members_[static_cast<std::size_t>(target)], me, bytes);
  ctx_->record(me, {TraceEvent::Kind::Recv, t0, st.clock,
                    members_[static_cast<std::size_t>(target)], bytes,
                    ComputeKind::Other, -1});
  st.wait_seconds += start - t0;
  st.add_received(plane_, bytes);
  std::copy_n(snap.begin() + static_cast<std::ptrdiff_t>(offset), out.size(),
              out.begin());
}

void Window::fence(int tag) {
  assert_funneled();
  SLU3D_CHECK(valid(), "fence: invalid window");
  // Barrier 1: every operation of the closing epoch has been injected
  // (and, the mailboxes being synchronous, delivered) before any rank
  // starts applying — so the drain below sees exactly the epoch's ops.
  comm_->barrier(tag, plane_);
  const int me = members_[static_cast<std::size_t>(rank_)];
  for (int o = 0; o < size(); ++o) {
    auto& os = origin_[static_cast<std::size_t>(o)];
    const detail::MsgKey key{sh_->uid, members_[static_cast<std::size_t>(o)],
                             rma_op_tag()};
    // Expected-but-unwaited deliveries first (they hold earlier tickets),
    // then everything that arrived unannounced, all in post order.
    while (os.next_applied < os.next_expect) {
      detail::Envelope env = ctx_->take_ticket(me, key, os.next_applied);
      apply_envelope(o, std::move(env.payload), env.arrival);
      ++os.next_applied;
    }
    while (auto env = ctx_->try_take_next(me, key)) {
      apply_envelope(o, std::move(env->payload), env->arrival);
      ++os.next_expect;
      ++os.next_applied;
    }
  }
  sh_->snapshots[static_cast<std::size_t>(rank_)].assign(local_.begin(),
                                                         local_.end());
  sh_->snap_clocks[static_cast<std::size_t>(rank_)] =
      ctx_->stats[static_cast<std::size_t>(me)].clock;
  // Barrier 2: snapshots are published before any rank's next epoch (or
  // get()) can read them.
  comm_->barrier(tag, plane_);
}

double RunResult::max_clock() const {
  double best = 0;
  for (const auto& r : ranks) best = std::max(best, r.clock);
  return best;
}

offset_t RunResult::max_bytes_sent(CommPlane plane) const {
  offset_t best = 0;
  for (const auto& r : ranks)
    best = std::max(best, r.bytes_sent[static_cast<std::size_t>(plane)]);
  return best;
}

offset_t RunResult::max_bytes_received(CommPlane plane) const {
  offset_t best = 0;
  for (const auto& r : ranks)
    best = std::max(best, r.bytes_received[static_cast<std::size_t>(plane)]);
  return best;
}

offset_t RunResult::total_bytes_sent(CommPlane plane) const {
  offset_t total = 0;
  for (const auto& r : ranks)
    total += r.bytes_sent[static_cast<std::size_t>(plane)];
  return total;
}

double RunResult::max_compute_seconds(ComputeKind kind) const {
  double best = 0;
  for (const auto& r : ranks)
    best = std::max(best, r.compute_seconds[static_cast<std::size_t>(kind)]);
  return best;
}

offset_t RunResult::total_zred_bytes_saved() const {
  offset_t total = 0;
  for (const auto& r : ranks) total += r.zred_bytes_saved;
  return total;
}

offset_t RunResult::total_zred_blocks_skipped() const {
  offset_t total = 0;
  for (const auto& r : ranks) total += r.zred_blocks_skipped;
  return total;
}

offset_t RunResult::total_zred_blocks_total() const {
  offset_t total = 0;
  for (const auto& r : ranks) total += r.zred_blocks_total;
  return total;
}

offset_t RunResult::total_panel_dense_bytes() const {
  offset_t total = 0;
  for (const auto& r : ranks) total += r.panel_dense_bytes;
  return total;
}

offset_t RunResult::total_panel_saved_bytes() const {
  offset_t total = 0;
  for (const auto& r : ranks) total += r.panel_saved_bytes;
  return total;
}

offset_t RunResult::total_panel_saved_msgs() const {
  offset_t total = 0;
  for (const auto& r : ranks) total += r.panel_saved_msgs;
  return total;
}

double RunResult::max_analysis_seconds() const {
  double best = 0;
  for (const auto& r : ranks) best = std::max(best, r.analysis_seconds);
  return best;
}

offset_t RunResult::max_analysis_bytes_received() const {
  offset_t best = 0;
  for (const auto& r : ranks)
    best = std::max(best, r.total_analysis_bytes_received());
  return best;
}

offset_t RunResult::total_analysis_messages_sent() const {
  offset_t total = 0;
  for (const auto& r : ranks) total += r.total_analysis_messages_sent();
  return total;
}

double RunResult::total_link_queue_seconds() const {
  double total = 0.0;
  for (const auto& l : links) total += l.queue_seconds;
  return total;
}

std::vector<std::string> RunResult::link_names() const {
  std::vector<std::string> names;
  names.reserve(links.size());
  for (const auto& l : links) names.push_back(l.name);
  return names;
}

struct RuntimeAccess {
  static Comm make_world(detail::Context* ctx, int n_ranks, int rank) {
    std::vector<int> members(static_cast<std::size_t>(n_ranks));
    for (int i = 0; i < n_ranks; ++i) members[static_cast<std::size_t>(i)] = i;
    return Comm(ctx, /*comm_id=*/1, std::move(members), rank);
  }
};

RunResult run_ranks(int n_ranks, const Platform& platform,
                    const std::function<void(Comm&)>& body,
                    const RunOptions& options) {
  SLU3D_CHECK(n_ranks > 0, "need at least one rank");
  detail::Context ctx(n_ranks, platform);
  if (options.trace) ctx.traces.resize(static_cast<std::size_t>(n_ranks));
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n_ranks));
  threads.reserve(static_cast<std::size_t>(n_ranks));
  for (int r = 0; r < n_ranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        Comm world = RuntimeAccess::make_world(&ctx, n_ranks, r);
        body(world);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        ctx.abort_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Prefer the root-cause error over the collateral "aborted by a failing
  // rank" ones the other ranks throw while unwinding.
  std::exception_ptr first, root_cause;
  for (auto& e : errors) {
    if (!e) continue;
    if (!first) first = e;
    if (root_cause) continue;
    try {
      std::rethrow_exception(e);
    } catch (const Error& err) {
      if (std::string_view(err.what()).find("aborted by a failing rank") ==
          std::string_view::npos)
        root_cause = e;
    } catch (...) {
      root_cause = e;
    }
  }
  if (root_cause) std::rethrow_exception(root_cause);
  if (first) std::rethrow_exception(first);
  RunResult result{std::move(ctx.stats), std::move(ctx.traces), {}};
  result.links.reserve(static_cast<std::size_t>(ctx.layout.num_links()));
  for (int i = 0; i < ctx.layout.num_links(); ++i) {
    const auto& ls = ctx.links[static_cast<std::size_t>(i)];
    result.links.push_back(
        {ctx.layout.link(i).name, ls.bytes, ls.messages, ls.queue_seconds});
  }
  return result;
}

RunResult run_ranks(int n_ranks, const MachineModel& model,
                    const std::function<void(Comm&)>& body,
                    const RunOptions& options) {
  return run_ranks(n_ranks, Platform::flat(model), body, options);
}

}  // namespace slu3d::sim
