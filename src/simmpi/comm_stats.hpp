// Per-rank accounting. Communication is split by plane exactly as the
// paper's Fig. 10 splits it: XY = messages inside a 2D process grid during
// factorization (W_fact), Z = ancestor-reduction messages along the third
// grid axis (W_red). Compute is split by kernel so Fig. 9's
// T_scu / T_comm decomposition can be reported.
#pragma once

#include <array>

#include "support/types.hpp"

namespace slu3d::sim {

enum class CommPlane : int { XY = 0, Z = 1 };
enum class ComputeKind : int { DiagFactor = 0, PanelSolve = 1, SchurUpdate = 2, Other = 3 };

inline constexpr int kNumPlanes = 2;
inline constexpr int kNumComputeKinds = 4;

struct RankStats {
  std::array<offset_t, kNumPlanes> bytes_sent{};
  std::array<offset_t, kNumPlanes> bytes_received{};
  std::array<offset_t, kNumPlanes> messages_sent{};
  std::array<offset_t, kNumPlanes> messages_received{};
  std::array<double, kNumComputeKinds> compute_seconds{};
  std::array<offset_t, kNumComputeKinds> flops{};
  double clock = 0.0;  ///< final logical time of the rank
  /// Sparse z-reduction accounting (sender side; zero unless
  /// ZRedPacking::Sparse is enabled — see pipeline/options.hpp). `saved`
  /// is dense-equivalent bytes minus actual payload, bitmap overhead
  /// included, so it can go (slightly) negative on fully dense levels.
  offset_t zred_blocks_total = 0;    ///< ancestor blocks considered
  offset_t zred_blocks_skipped = 0;  ///< blocks omitted as all-zero
  offset_t zred_bytes_saved = 0;     ///< W_red bytes avoided vs Dense
  /// Sparse panel-broadcast accounting (root side; zero unless
  /// PanelPacking::Sparse is enabled). `panel_dense_bytes` is the
  /// dense-equivalent payload of the packed panel broadcasts rooted at this
  /// rank; `panel_saved_bytes` subtracts both the packed payload and the
  /// bitmap-frame overhead from it (so it can go slightly negative on fully
  /// dense panels); `panel_saved_msgs` counts broadcasts elided because the
  /// block payload was entirely zero.
  offset_t panel_dense_bytes = 0;  ///< dense-equivalent packed-bcast payload
  offset_t panel_saved_bytes = 0;  ///< XY panel bytes avoided vs Dense
  offset_t panel_saved_msgs = 0;   ///< panel broadcasts elided as all-zero
  /// Clock advance spent blocked for message arrivals: the sum over all
  /// receives (blocking recv and Request::wait alike) of
  /// max(0, sender_completion - local clock). With non-blocking
  /// communication, transfer time hidden behind compute performed between
  /// post and wait never shows up here — so wait_seconds measures the
  /// *residual*, non-overlapped part of each transfer, not raw volume.
  double wait_seconds = 0.0;
  /// Time this rank's outgoing transfers spent queued behind busy links
  /// (its own wire on the flat platform; any shared uplink on hierarchical
  /// ones) before starting to serialize. Charged at injection, so it
  /// overlaps the sender's compute for non-blocking sends; the per-link
  /// split lives in RunResult::links, and traces attribute each stall to
  /// its bottleneck link via TraceEvent::Kind::LinkWait.
  double link_queue_seconds = 0.0;
  /// Analysis-phase split (the paper-pipeline's cold-start ordering +
  /// symbolic stage run in-sim; see src/analysis/). While a rank is inside
  /// Comm::begin/end_analysis_phase every byte/message charged at any
  /// runtime charge site is mirrored into the analysis_* counters, and the
  /// clock advance between the bracketing calls accumulates into
  /// analysis_seconds — so W_analysis / msg_analysis report exactly the
  /// traffic of the analysis stage, separated from the numeric W_fact /
  /// W_red of the same run.
  bool in_analysis_phase = false;      ///< live toggle, not a statistic
  double analysis_phase_start = 0.0;   ///< clock at begin_analysis_phase
  double analysis_seconds = 0.0;       ///< clock advance inside the phase
  std::array<offset_t, kNumPlanes> analysis_bytes_sent{};
  std::array<offset_t, kNumPlanes> analysis_bytes_received{};
  std::array<offset_t, kNumPlanes> analysis_messages_sent{};
  std::array<offset_t, kNumPlanes> analysis_messages_received{};

  /// The single bookkeeping funnel for sent bytes: every runtime charge
  /// site (blocking send, isend, ibcast forwarding, RMA post) goes through
  /// here so the analysis-phase mirror can never drift from the primary
  /// counters.
  void add_sent(CommPlane plane, offset_t bytes) {
    bytes_sent[static_cast<std::size_t>(plane)] += bytes;
    messages_sent[static_cast<std::size_t>(plane)] += 1;
    if (in_analysis_phase) {
      analysis_bytes_sent[static_cast<std::size_t>(plane)] += bytes;
      analysis_messages_sent[static_cast<std::size_t>(plane)] += 1;
    }
  }
  /// Same funnel for the receive side (blocking recv, request completion,
  /// RMA apply, window get).
  void add_received(CommPlane plane, offset_t bytes) {
    bytes_received[static_cast<std::size_t>(plane)] += bytes;
    messages_received[static_cast<std::size_t>(plane)] += 1;
    if (in_analysis_phase) {
      analysis_bytes_received[static_cast<std::size_t>(plane)] += bytes;
      analysis_messages_received[static_cast<std::size_t>(plane)] += 1;
    }
  }

  offset_t total_analysis_bytes_received() const {
    return analysis_bytes_received[0] + analysis_bytes_received[1];
  }
  offset_t total_analysis_messages_sent() const {
    return analysis_messages_sent[0] + analysis_messages_sent[1];
  }

  offset_t total_bytes_sent() const {
    return bytes_sent[0] + bytes_sent[1];
  }
  double total_compute_seconds() const {
    double t = 0;
    for (double c : compute_seconds) t += c;
    return t;
  }
  /// Non-overlapped communication + synchronization time (the paper's
  /// T_comm): whatever part of the rank's final clock is not compute.
  /// This already nets out overlap: a transfer fully hidden behind compute
  /// contributes nothing (its wait jump is 0), and sender-side isend calls
  /// contribute only the injection overhead alpha. It decomposes into
  /// wait_seconds (blocked on arrivals) plus send occupancy/overheads.
  double comm_seconds() const { return clock - total_compute_seconds(); }
};

}  // namespace slu3d::sim
