// 2D and 3D logical process grids over a Comm, mirroring SuperLU_DIST's
// layout: a 2D grid of Px x Py ranks with per-row and per-column
// sub-communicators, and the paper's 3D grid = Pz stacked 2D grids with a
// z-axis sub-communicator for ancestor reduction.
#pragma once

#include "simmpi/runtime.hpp"
#include "support/check.hpp"

namespace slu3d::sim {

class ProcessGrid2D {
 public:
  static ProcessGrid2D create(Comm& comm, int Px, int Py) {
    SLU3D_CHECK(comm.size() == Px * Py, "comm size must equal Px*Py");
    const int px = comm.rank() / Py;
    const int py = comm.rank() % Py;
    Comm row = comm.split(/*color=*/px, /*key=*/py);
    Comm col = comm.split(/*color=*/py, /*key=*/px);
    SLU3D_CHECK(row.size() == Py && col.size() == Px, "grid split failed");
    return ProcessGrid2D(comm, std::move(row), std::move(col), Px, Py, px, py);
  }

  /// All Px*Py ranks; rank = px*Py + py (row-major).
  Comm& grid() { return grid_; }
  /// Ranks sharing my px (size Py).
  Comm& row() { return row_; }
  /// Ranks sharing my py (size Px).
  Comm& col() { return col_; }

  int Px() const { return Px_; }
  int Py() const { return Py_; }
  int px() const { return px_; }
  int py() const { return py_; }

  /// Owner (as a grid rank) of supernodal block (i, j) under the 2D
  /// block-cyclic distribution.
  int owner(int i, int j) const { return (i % Px_) * Py_ + (j % Py_); }
  bool owns(int i, int j) const { return owner(i, j) == grid_.rank(); }
  int owner_prow(int i) const { return i % Px_; }  ///< process-row of block row i
  int owner_pcol(int j) const { return j % Py_; }  ///< process-col of block col j

 private:
  ProcessGrid2D(Comm grid, Comm row, Comm col, int Px, int Py, int px, int py)
      : grid_(std::move(grid)), row_(std::move(row)), col_(std::move(col)),
        Px_(Px), Py_(Py), px_(px), py_(py) {}

  Comm grid_;
  Comm row_;
  Comm col_;
  int Px_, Py_, px_, py_;
};

class ProcessGrid3D {
 public:
  static ProcessGrid3D create(Comm& world, int Px, int Py, int Pz) {
    SLU3D_CHECK(world.size() == Px * Py * Pz, "world size must equal Px*Py*Pz");
    const int pxy = Px * Py;
    const int pz = world.rank() / pxy;
    Comm plane_comm = world.split(/*color=*/pz, /*key=*/world.rank() % pxy);
    ProcessGrid2D plane = ProcessGrid2D::create(plane_comm, Px, Py);
    Comm zline = world.split(/*color=*/world.rank() % pxy, /*key=*/pz);
    SLU3D_CHECK(zline.size() == Pz, "z split failed");
    return ProcessGrid3D(std::move(plane), std::move(zline), Pz, pz);
  }

  /// My 2D grid (all ranks with my pz).
  ProcessGrid2D& plane() { return plane_; }
  /// Ranks sharing my (px, py), ordered by pz — the ancestor-reduction axis.
  Comm& zline() { return zline_; }

  int Pz() const { return Pz_; }
  int pz() const { return pz_; }

 private:
  ProcessGrid3D(ProcessGrid2D plane, Comm zline, int Pz, int pz)
      : plane_(std::move(plane)), zline_(std::move(zline)), Pz_(Pz), pz_(pz) {}

  ProcessGrid2D plane_;
  Comm zline_;
  int Pz_, pz_;
};

}  // namespace slu3d::sim
