#include "order/nested_dissection.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <queue>

#include "order/graph.hpp"
#include "order/multilevel.hpp"
#include "support/check.hpp"

namespace slu3d {

namespace {

using order_detail::Adjacency;
using order_detail::build_adjacency;

/// Builder shared by the recursive dissection: accumulates the permutation
/// and tree nodes bottom-up.
class TreeBuilder {
 public:
  explicit TreeBuilder(index_t n) { perm_.reserve(static_cast<std::size_t>(n)); }

  /// Appends `verts` as a block and returns the new-index range it occupies.
  std::pair<index_t, index_t> emit(std::span<const index_t> verts) {
    const index_t first = static_cast<index_t>(perm_.size());
    perm_.insert(perm_.end(), verts.begin(), verts.end());
    return {first, static_cast<index_t>(perm_.size())};
  }

  int add_leaf(std::span<const index_t> verts) {
    auto [first, last] = emit(verts);
    nodes_.push_back({first, first, last, -1, -1, -1});
    return static_cast<int>(nodes_.size()) - 1;
  }

  int add_internal(int left, int right, std::span<const index_t> sep) {
    auto [sfirst, slast] = emit(sep);
    const index_t subtree_first = nodes_[static_cast<std::size_t>(left)].subtree_first;
    SLU3D_CHECK(nodes_[static_cast<std::size_t>(right)].sep_last == sfirst,
                "children not contiguous with separator");
    nodes_.push_back({subtree_first, sfirst, slast, left, right, -1});
    const int id = static_cast<int>(nodes_.size()) - 1;
    nodes_[static_cast<std::size_t>(left)].parent = id;
    nodes_[static_cast<std::size_t>(right)].parent = id;
    return id;
  }

  SeparatorTree finish(int root) {
    return SeparatorTree(std::move(perm_), std::move(nodes_), root);
  }

 private:
  std::vector<index_t> perm_;
  std::vector<SepTreeNode> nodes_;
};

class GeneralDissector {
 public:
  GeneralDissector(const CsrMatrix& A, const NdOptions& opts)
      : g_(build_adjacency(A)),
        opts_(opts),
        n_(A.n_rows()),
        builder_(A.n_rows()),
        mark_(static_cast<std::size_t>(A.n_rows()), kOutside),
        level_(static_cast<std::size_t>(A.n_rows()), -1) {}

  SeparatorTree run() {
    std::vector<index_t> all(static_cast<std::size_t>(n_));
    std::iota(all.begin(), all.end(), 0);
    return run_on(std::move(all));
  }

  /// Dissects only the given (global-id) vertex subset.
  SeparatorTree run_on(std::vector<index_t> verts) {
    const int root = dissect(std::move(verts));
    return builder_.finish(root);
  }

  /// One split step for the parallel dissection: components first, then
  /// the configured separator algorithm. nullopt when unsplittable.
  std::optional<order_detail::TopSplit> split_top(std::vector<index_t> verts) {
    if (static_cast<index_t>(verts.size()) <= opts_.leaf_size)
      return std::nullopt;
    stamp_++;
    for (index_t v : verts) mark_[static_cast<std::size_t>(v)] = stamp_;
    auto comps = components(verts);
    if (comps.size() > 1) {
      auto [ga, gb] = balance_components(comps);
      return order_detail::TopSplit{std::move(ga), std::move(gb), {}};
    }
    std::optional<Split> split;
    if (opts_.algorithm == NdAlgorithm::Multilevel)
      split = multilevel_separator(verts);
    if (!split.has_value()) split = level_set_separator(verts);
    if (!split.has_value()) return std::nullopt;
    return order_detail::TopSplit{std::move(split->a), std::move(split->b),
                                  std::move(split->sep)};
  }

 private:
  static constexpr int kOutside = -1;

  /// `mark_[v] == stamp` identifies vertices inside the current subproblem.
  int dissect(std::vector<index_t> verts) {
    if (static_cast<index_t>(verts.size()) <= opts_.leaf_size)
      return builder_.add_leaf(verts);

    stamp_++;
    for (index_t v : verts) mark_[static_cast<std::size_t>(v)] = stamp_;

    // Components first: a disconnected subgraph splits for free (empty
    // separator), which is also how elimination *forests* arise (§III-C).
    auto comps = components(verts);
    if (comps.size() > 1) {
      auto [groupA, groupB] = balance_components(comps);
      const int left = dissect(std::move(groupA));
      const int right = dissect(std::move(groupB));
      return builder_.add_internal(left, right, {});
    }

    std::optional<Split> split;
    if (opts_.algorithm == NdAlgorithm::Multilevel)
      split = multilevel_separator(verts);
    if (!split.has_value()) split = level_set_separator(verts);
    if (!split.has_value()) return builder_.add_leaf(verts);  // unsplittable

    const int left = dissect(std::move(split->a));
    const int right = dissect(std::move(split->b));
    return builder_.add_internal(left, right, split->sep);
  }

  std::vector<std::vector<index_t>> components(std::span<const index_t> verts) {
    std::vector<std::vector<index_t>> comps;
    const int seen_stamp = ++stamp_;  // reuse mark_ to track visitation
    // Vertices in this subproblem have mark_ == seen_stamp - 1.
    for (index_t s : verts) {
      if (mark_[static_cast<std::size_t>(s)] != seen_stamp - 1) continue;
      comps.emplace_back();
      auto& comp = comps.back();
      std::vector<index_t> q{s};
      mark_[static_cast<std::size_t>(s)] = seen_stamp;
      while (!q.empty()) {
        const index_t v = q.back();
        q.pop_back();
        comp.push_back(v);
        for (index_t w : g_.neighbors(v)) {
          if (mark_[static_cast<std::size_t>(w)] == seen_stamp - 1) {
            mark_[static_cast<std::size_t>(w)] = seen_stamp;
            q.push_back(w);
          }
        }
      }
    }
    return comps;
  }

  /// Greedy LPT split of components into two groups of similar total size.
  static std::pair<std::vector<index_t>, std::vector<index_t>> balance_components(
      std::vector<std::vector<index_t>>& comps) {
    std::sort(comps.begin(), comps.end(),
              [](const auto& x, const auto& y) { return x.size() > y.size(); });
    std::vector<index_t> a, b;
    for (auto& c : comps) {
      auto& dst = a.size() <= b.size() ? a : b;
      dst.insert(dst.end(), c.begin(), c.end());
    }
    return {std::move(a), std::move(b)};
  }

  struct Split {
    std::vector<index_t> a;
    std::vector<index_t> b;
    std::vector<index_t> sep;
  };

  /// BFS from `root` over the current subproblem (mark_ == stamp);
  /// fills level_ and returns vertices in BFS order.
  std::vector<index_t> bfs(index_t root, int stamp) {
    std::vector<index_t> order;
    std::queue<index_t> q;
    q.push(root);
    level_[static_cast<std::size_t>(root)] = 0;
    while (!q.empty()) {
      const index_t v = q.front();
      q.pop();
      order.push_back(v);
      for (index_t w : g_.neighbors(v)) {
        if (mark_[static_cast<std::size_t>(w)] == stamp &&
            level_[static_cast<std::size_t>(w)] < 0) {
          level_[static_cast<std::size_t>(w)] = level_[static_cast<std::size_t>(v)] + 1;
          q.push(w);
        }
      }
    }
    return order;
  }

  std::optional<Split> level_set_separator(std::span<const index_t> verts) {
    // Try a few BFS sources and keep the best separator by the usual
    // quality measure |S| * (1 + imbalance); cheap and noticeably better
    // than a single pseudo-peripheral sweep on irregular graphs.
    std::optional<Split> best;
    double best_score = 1e300;
    const std::size_t stride = std::max<std::size_t>(1, verts.size() / 3);
    for (std::size_t k = 0; k < verts.size(); k += stride) {
      auto cand = level_set_separator_from(verts, verts[k]);
      if (!cand.has_value()) continue;
      const double total = static_cast<double>(verts.size());
      const double imbalance =
          std::abs(static_cast<double>(cand->a.size()) -
                   static_cast<double>(cand->b.size())) / total;
      const double score =
          (static_cast<double>(cand->sep.size()) + 1.0) * (1.0 + 2.0 * imbalance);
      if (score < best_score) {
        best_score = score;
        best = std::move(cand);
      }
    }
    return best;
  }

  std::optional<Split> level_set_separator_from(std::span<const index_t> verts,
                                                index_t seed) {
    const int stamp = stamp_;
    // Pseudo-peripheral root: BFS twice from the far end.
    index_t root = seed;
    for (int pass = 0; pass < 2; ++pass) {
      for (index_t v : verts) level_[static_cast<std::size_t>(v)] = -1;
      auto order = bfs(root, stamp);
      root = order.back();
    }
    for (index_t v : verts) level_[static_cast<std::size_t>(v)] = -1;
    auto order = bfs(root, stamp);
    const int max_level = level_[static_cast<std::size_t>(order.back())];
    if (max_level < 2) return std::nullopt;  // diameter too small to split

    // Choose the cut level closest to the size median.
    std::vector<index_t> level_count(static_cast<std::size_t>(max_level) + 1, 0);
    for (index_t v : verts) ++level_count[static_cast<std::size_t>(level_[static_cast<std::size_t>(v)])];
    const index_t half = static_cast<index_t>(verts.size()) / 2;
    index_t cum = 0;
    int cut = 1;
    for (int L = 0; L < max_level; ++L) {
      cum += level_count[static_cast<std::size_t>(L)];
      if (cum >= half) {
        cut = std::max(1, std::min(L + 1, max_level - 0));
        break;
      }
      cut = L + 1;
    }
    cut = std::min(cut, max_level);  // keep B = {level > cut - ...} nonempty
    if (cut >= max_level) cut = max_level - 0;
    // Partition: A = levels < cut, S = level cut, B = levels > cut.
    Split s;
    for (index_t v : verts) {
      const int L = level_[static_cast<std::size_t>(v)];
      if (L < cut)
        s.a.push_back(v);
      else if (L == cut)
        s.sep.push_back(v);
      else
        s.b.push_back(v);
    }
    if (s.a.empty() || s.b.empty()) {
      // Degenerate shape (e.g. everything on two levels): fall back to an
      // unbalanced but valid cut one level lower/higher.
      if (s.b.empty() && cut > 1) {
        s = {};
        for (index_t v : verts) {
          const int L = level_[static_cast<std::size_t>(v)];
          if (L < cut - 1)
            s.a.push_back(v);
          else if (L == cut - 1)
            s.sep.push_back(v);
          else
            s.b.push_back(v);
        }
      }
      if (s.a.empty() || s.b.empty()) return std::nullopt;
    }

    thin_separator(s, stamp);
    return s;
  }

  /// Multilevel edge bisection, then a vertex separator extracted from
  /// the cut (boundary vertices of the smaller side), thinned as usual.
  std::optional<Split> multilevel_separator(std::span<const index_t> verts) {
    auto bis = order_detail::multilevel_bisect(
        g_, verts, static_cast<std::uint64_t>(verts.size()) * 2654435761u + 17u);
    if (!bis.has_value()) return std::nullopt;
    Split s;
    s.a = std::move(bis->a);
    s.b = std::move(bis->b);
    // Tag sides, then peel the B-side boundary into the separator.
    const int stamp = stamp_;
    for (index_t v : s.a) level_[static_cast<std::size_t>(v)] = 0;
    for (index_t v : s.b) level_[static_cast<std::size_t>(v)] = 1;
    std::vector<index_t> keep_b;
    for (index_t v : s.b) {
      bool touches_a = false;
      for (index_t w : g_.neighbors(v)) {
        if (mark_[static_cast<std::size_t>(w)] != stamp) continue;
        if (level_[static_cast<std::size_t>(w)] == 0) {
          touches_a = true;
          break;
        }
      }
      (touches_a ? s.sep : keep_b).push_back(v);
    }
    s.b = std::move(keep_b);
    if (s.a.empty() || s.b.empty()) return std::nullopt;
    thin_separator(s, stamp);
    return s;
  }

  /// Moves separator vertices that touch only one side into that side.
  /// Keeps the invariant that S disconnects A from B.
  void thin_separator(Split& s, int stamp) {
    // Tag sides: reuse level_ as side tag (0 = A, 1 = B, 2 = S).
    for (index_t v : s.a) level_[static_cast<std::size_t>(v)] = 0;
    for (index_t v : s.b) level_[static_cast<std::size_t>(v)] = 1;
    for (index_t v : s.sep) level_[static_cast<std::size_t>(v)] = 2;
    std::vector<index_t> kept;
    for (index_t v : s.sep) {
      bool touch_a = false, touch_b = false;
      for (index_t w : g_.neighbors(v)) {
        if (mark_[static_cast<std::size_t>(w)] != stamp) continue;
        if (level_[static_cast<std::size_t>(w)] == 0) touch_a = true;
        if (level_[static_cast<std::size_t>(w)] == 1) touch_b = true;
      }
      if (touch_a && touch_b) {
        kept.push_back(v);
      } else if (touch_a) {
        s.a.push_back(v);
        level_[static_cast<std::size_t>(v)] = 0;
      } else {
        s.b.push_back(v);
        level_[static_cast<std::size_t>(v)] = 1;
      }
    }
    s.sep = std::move(kept);
  }

  Adjacency g_;
  NdOptions opts_;
  index_t n_;
  TreeBuilder builder_;
  std::vector<int> mark_;
  std::vector<int> level_;
  int stamp_ = 0;
};

/// Recursive coordinate bisection over grid boxes.
class GeometricDissector {
 public:
  GeometricDissector(const GridGeometry& geom, const NdOptions& opts)
      : geom_(geom), opts_(opts), builder_(geom.n()) {}

  SeparatorTree run() {
    const int root = dissect(0, geom_.nx, 0, geom_.ny, 0, geom_.nz);
    return builder_.finish(root);
  }

 private:
  std::vector<index_t> box_vertices(index_t x0, index_t x1, index_t y0,
                                    index_t y1, index_t z0, index_t z1) const {
    std::vector<index_t> out;
    out.reserve(static_cast<std::size_t>((x1 - x0) * (y1 - y0) * (z1 - z0)));
    for (index_t z = z0; z < z1; ++z)
      for (index_t y = y0; y < y1; ++y)
        for (index_t x = x0; x < x1; ++x) out.push_back(geom_.vertex(x, y, z));
    return out;
  }

  int dissect(index_t x0, index_t x1, index_t y0, index_t y1, index_t z0,
              index_t z1) {
    const index_t vol = (x1 - x0) * (y1 - y0) * (z1 - z0);
    const index_t dx = x1 - x0, dy = y1 - y0, dz = z1 - z0;
    const index_t longest = std::max({dx, dy, dz});
    if (vol <= opts_.leaf_size || longest < 3)
      return builder_.add_leaf(box_vertices(x0, x1, y0, y1, z0, z1));

    int left, right;
    std::vector<index_t> sep;
    if (dx == longest) {
      const index_t m = x0 + dx / 2;
      left = dissect(x0, m, y0, y1, z0, z1);
      right = dissect(m + 1, x1, y0, y1, z0, z1);
      sep = box_vertices(m, m + 1, y0, y1, z0, z1);
    } else if (dy == longest) {
      const index_t m = y0 + dy / 2;
      left = dissect(x0, x1, y0, m, z0, z1);
      right = dissect(x0, x1, m + 1, y1, z0, z1);
      sep = box_vertices(x0, x1, m, m + 1, z0, z1);
    } else {
      const index_t m = z0 + dz / 2;
      left = dissect(x0, x1, y0, y1, z0, m);
      right = dissect(x0, x1, y0, y1, m + 1, z1);
      sep = box_vertices(x0, x1, y0, y1, m, m + 1);
    }
    return builder_.add_internal(left, right, sep);
  }

  GridGeometry geom_;
  NdOptions opts_;
  TreeBuilder builder_;
};

}  // namespace

SeparatorTree nested_dissection(const CsrMatrix& A, const NdOptions& opts) {
  SLU3D_CHECK(A.n_rows() == A.n_cols(), "nested dissection needs square A");
  SLU3D_CHECK(A.n_rows() > 0, "empty matrix");
  return GeneralDissector(A, opts).run();
}

SeparatorTree nested_dissection_subgraph(const CsrMatrix& A,
                                         std::span<const index_t> verts,
                                         const NdOptions& opts) {
  SLU3D_CHECK(A.n_rows() == A.n_cols(), "nested dissection needs square A");
  SLU3D_CHECK(!verts.empty(), "empty vertex subset");
  return GeneralDissector(A, opts).run_on(
      std::vector<index_t>(verts.begin(), verts.end()));
}

namespace order_detail {
std::optional<TopSplit> single_split(const CsrMatrix& A,
                                     std::span<const index_t> verts,
                                     const NdOptions& opts) {
  SLU3D_CHECK(!verts.empty(), "empty vertex subset");
  return GeneralDissector(A, opts).split_top(
      std::vector<index_t>(verts.begin(), verts.end()));
}
}  // namespace order_detail

SeparatorTree geometric_nd(const GridGeometry& geom, const NdOptions& opts) {
  SLU3D_CHECK(geom.n() > 0, "empty grid");
  return GeometricDissector(geom, opts).run();
}

std::vector<index_t> rcm_ordering(const CsrMatrix& A) {
  SLU3D_CHECK(A.n_rows() == A.n_cols(), "RCM needs square A");
  const Adjacency g = build_adjacency(A);
  const index_t n = A.n_rows();
  std::vector<index_t> degree(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v)
    degree[static_cast<std::size_t>(v)] =
        static_cast<index_t>(g.neighbors(v).size());

  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  for (index_t start = 0; start < n; ++start) {
    if (visited[static_cast<std::size_t>(start)]) continue;
    // Min-degree start vertex of this component.
    std::queue<index_t> q;
    q.push(start);
    visited[static_cast<std::size_t>(start)] = true;
    std::vector<index_t> nbrs;
    while (!q.empty()) {
      const index_t v = q.front();
      q.pop();
      order.push_back(v);
      nbrs.clear();
      for (index_t w : g.neighbors(v))
        if (!visited[static_cast<std::size_t>(w)]) {
          visited[static_cast<std::size_t>(w)] = true;
          nbrs.push_back(w);
        }
      std::sort(nbrs.begin(), nbrs.end(), [&](index_t x, index_t y) {
        return degree[static_cast<std::size_t>(x)] < degree[static_cast<std::size_t>(y)];
      });
      for (index_t w : nbrs) q.push(w);
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace slu3d
