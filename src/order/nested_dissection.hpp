// Fill-reducing orderings. Nested dissection (§II-B) produces the separator
// tree that drives the whole solver stack; METIS is replaced by a
// from-scratch BFS level-set dissection for general graphs plus an exact
// geometric dissection for generated grid problems.
#pragma once

#include <optional>
#include <span>

#include "order/separator_tree.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"

namespace slu3d {

enum class NdAlgorithm {
  /// BFS level-set separators from multiple sources (fast, robust).
  LevelSet,
  /// Multilevel edge bisection (heavy-edge matching coarsening + greedy
  /// initial partition + FM refinement — the METIS recipe), with the
  /// vertex separator taken from the refined cut. Better separators on
  /// irregular graphs at somewhat higher ordering cost.
  Multilevel,
};

struct NdOptions {
  /// Subgraphs at or below this size become leaf supernodes (relaxed
  /// supernode size).
  index_t leaf_size = 32;
  NdAlgorithm algorithm = NdAlgorithm::LevelSet;
};

/// General-graph nested dissection on the pattern of A + Aᵀ. Separators are
/// BFS level sets from a pseudo-peripheral root, thinned so that every
/// separator vertex touches both halves.
SeparatorTree nested_dissection(const CsrMatrix& A, const NdOptions& opts = {});

/// Dissects only the subgraph of A induced by `verts` (global vertex ids).
/// The returned tree's perm maps local positions [0, |verts|) to global
/// ids — the building block of the parallel (task-tree) dissection.
SeparatorTree nested_dissection_subgraph(const CsrMatrix& A,
                                         std::span<const index_t> verts,
                                         const NdOptions& opts = {});

namespace order_detail {
/// One dissection step on the subgraph induced by `verts`: two halves and
/// the separator between them (any of which may come from the
/// disconnected-components path, where the separator is empty). nullopt
/// when the subgraph should become a leaf.
struct TopSplit {
  std::vector<index_t> a;
  std::vector<index_t> b;
  std::vector<index_t> sep;
};
std::optional<TopSplit> single_split(const CsrMatrix& A,
                                     std::span<const index_t> verts,
                                     const NdOptions& opts);
}  // namespace order_detail

/// Exact geometric nested dissection for regular grids: recursively bisect
/// the longest box axis with a width-1 hyperplane separator. Matches the
/// separator sizes assumed by the paper's §IV analysis (sqrt(n) planar,
/// n^(2/3) non-planar).
SeparatorTree geometric_nd(const GridGeometry& geom, const NdOptions& opts = {});

/// Reverse Cuthill–McKee ordering (bandwidth-reducing baseline used in
/// ordering-quality comparisons).
std::vector<index_t> rcm_ordering(const CsrMatrix& A);

}  // namespace slu3d
