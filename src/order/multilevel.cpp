#include "order/multilevel.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "support/check.hpp"

namespace slu3d::order_detail {

namespace {

/// One level of the coarsening hierarchy: the graph plus the mapping of
/// its vertices onto the next-coarser graph.
struct Level {
  WeightedGraph graph;
  std::vector<index_t> coarse_of;  // per fine vertex: coarse vertex id
};

/// Heavy-edge matching: visit vertices in ascending id order, match each
/// unmatched vertex with its unmatched neighbour of maximum edge weight,
/// breaking equal weights towards the smaller neighbour id. Fully
/// deterministic — the bisection is a function of the graph alone, so the
/// sequential and distributed dissection paths can never diverge on
/// equal-weight ties. Returns the coarse vertex count.
index_t heavy_edge_matching(const WeightedGraph& g,
                            std::vector<index_t>* coarse_of) {
  const index_t n = g.n();
  coarse_of->assign(static_cast<std::size_t>(n), -1);

  index_t nc = 0;
  for (index_t v = 0; v < n; ++v) {
    if ((*coarse_of)[static_cast<std::size_t>(v)] != -1) continue;
    index_t best = -1;
    index_t best_w = -1;
    for (offset_t e = g.begin(v); e < g.end(v); ++e) {
      const index_t u = g.adj[static_cast<std::size_t>(e)];
      if ((*coarse_of)[static_cast<std::size_t>(u)] != -1) continue;
      const index_t w = g.eweight[static_cast<std::size_t>(e)];
      if (w > best_w || (w == best_w && u < best)) {
        best_w = w;
        best = u;
      }
    }
    (*coarse_of)[static_cast<std::size_t>(v)] = nc;
    if (best != -1) (*coarse_of)[static_cast<std::size_t>(best)] = nc;
    ++nc;
  }
  return nc;
}

WeightedGraph contract(const WeightedGraph& g, std::span<const index_t> coarse_of,
                       index_t nc) {
  WeightedGraph c;
  c.vweight.assign(static_cast<std::size_t>(nc), 0);
  for (index_t v = 0; v < g.n(); ++v)
    c.vweight[static_cast<std::size_t>(coarse_of[static_cast<std::size_t>(v)])] +=
        g.vweight[static_cast<std::size_t>(v)];

  // Accumulate coarse edges per coarse vertex via a stamped scratch map.
  std::vector<index_t> stamp(static_cast<std::size_t>(nc), -1);
  std::vector<index_t> slot(static_cast<std::size_t>(nc), 0);
  c.ptr.assign(static_cast<std::size_t>(nc) + 1, 0);

  // Group fine vertices by coarse id.
  std::vector<index_t> bucket_ptr(static_cast<std::size_t>(nc) + 1, 0);
  for (index_t v = 0; v < g.n(); ++v)
    ++bucket_ptr[static_cast<std::size_t>(coarse_of[static_cast<std::size_t>(v)]) + 1];
  std::partial_sum(bucket_ptr.begin(), bucket_ptr.end(), bucket_ptr.begin());
  std::vector<index_t> members(static_cast<std::size_t>(g.n()));
  {
    std::vector<index_t> fill(bucket_ptr.begin(), bucket_ptr.end() - 1);
    for (index_t v = 0; v < g.n(); ++v)
      members[static_cast<std::size_t>(
          fill[static_cast<std::size_t>(coarse_of[static_cast<std::size_t>(v)])]++)] = v;
  }

  for (index_t cv = 0; cv < nc; ++cv) {
    const auto lo = static_cast<std::size_t>(bucket_ptr[static_cast<std::size_t>(cv)]);
    const auto hi = static_cast<std::size_t>(bucket_ptr[static_cast<std::size_t>(cv) + 1]);
    const auto edge_start = c.adj.size();
    for (std::size_t k = lo; k < hi; ++k) {
      const index_t v = members[k];
      for (offset_t e = g.begin(v); e < g.end(v); ++e) {
        const index_t cu =
            coarse_of[static_cast<std::size_t>(g.adj[static_cast<std::size_t>(e)])];
        if (cu == cv) continue;  // internal edge collapses
        if (stamp[static_cast<std::size_t>(cu)] != cv) {
          stamp[static_cast<std::size_t>(cu)] = cv;
          slot[static_cast<std::size_t>(cu)] = static_cast<index_t>(c.adj.size());
          c.adj.push_back(cu);
          c.eweight.push_back(g.eweight[static_cast<std::size_t>(e)]);
        } else {
          c.eweight[static_cast<std::size_t>(slot[static_cast<std::size_t>(cu)])] +=
              g.eweight[static_cast<std::size_t>(e)];
        }
      }
    }
    (void)edge_start;
    c.ptr[static_cast<std::size_t>(cv) + 1] = static_cast<offset_t>(c.adj.size());
  }
  return c;
}

/// Greedy graph growing: BFS from a pseudo-peripheral seed, absorbing
/// vertices until half the total weight is on side 0. The starting vertex
/// is fixed (vertex 0, pushed to the periphery by one BFS sweep) so the
/// partition is a deterministic function of the graph.
std::vector<char> initial_partition(const WeightedGraph& g) {
  const index_t n = g.n();
  offset_t total = 0;
  for (index_t w : g.vweight) total += w;

  index_t seed = 0;
  // One BFS sweep to push the seed to the periphery.
  {
    std::vector<index_t> q{seed};
    std::vector<char> seen(static_cast<std::size_t>(n), 0);
    seen[static_cast<std::size_t>(seed)] = 1;
    for (std::size_t h = 0; h < q.size(); ++h) {
      const index_t v = q[h];
      for (offset_t e = g.begin(v); e < g.end(v); ++e) {
        const index_t u = g.adj[static_cast<std::size_t>(e)];
        if (!seen[static_cast<std::size_t>(u)]) {
          seen[static_cast<std::size_t>(u)] = 1;
          q.push_back(u);
        }
      }
    }
    seed = q.back();
  }

  std::vector<char> side(static_cast<std::size_t>(n), 1);
  std::vector<index_t> q{seed};
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  seen[static_cast<std::size_t>(seed)] = 1;
  offset_t grown = 0;
  for (std::size_t h = 0; h < q.size() && 2 * grown < total; ++h) {
    const index_t v = q[h];
    side[static_cast<std::size_t>(v)] = 0;
    grown += g.vweight[static_cast<std::size_t>(v)];
    for (offset_t e = g.begin(v); e < g.end(v); ++e) {
      const index_t u = g.adj[static_cast<std::size_t>(e)];
      if (!seen[static_cast<std::size_t>(u)]) {
        seen[static_cast<std::size_t>(u)] = 1;
        q.push_back(u);
      }
    }
  }
  return side;
}

/// FM-style refinement: repeated passes moving the best-gain boundary
/// vertex subject to balance, keeping the best cut seen in each pass.
void refine(const WeightedGraph& g, std::vector<char>& side, int max_passes) {
  const index_t n = g.n();
  offset_t total = 0;
  for (index_t w : g.vweight) total += w;
  offset_t w0 = 0;
  for (index_t v = 0; v < n; ++v)
    if (side[static_cast<std::size_t>(v)] == 0)
      w0 += g.vweight[static_cast<std::size_t>(v)];

  auto gain_of = [&](index_t v) {
    offset_t ext = 0, internal = 0;
    const char s = side[static_cast<std::size_t>(v)];
    for (offset_t e = g.begin(v); e < g.end(v); ++e) {
      const index_t u = g.adj[static_cast<std::size_t>(e)];
      if (side[static_cast<std::size_t>(u)] == s)
        internal += g.eweight[static_cast<std::size_t>(e)];
      else
        ext += g.eweight[static_cast<std::size_t>(e)];
    }
    return ext - internal;
  };

  // Keep both sides at least a third of the weight — and never empty
  // (total/3 truncates to 0 on tiny graphs).
  const offset_t min_side = std::max<offset_t>(total / 3, 1);
  std::vector<char> locked(static_cast<std::size_t>(n), 0);
  std::vector<char> in_boundary(static_cast<std::size_t>(n), 0);
  std::vector<index_t> boundary;

  auto is_boundary = [&](index_t v) {
    const char s = side[static_cast<std::size_t>(v)];
    for (offset_t e = g.begin(v); e < g.end(v); ++e)
      if (side[static_cast<std::size_t>(g.adj[static_cast<std::size_t>(e)])] != s)
        return true;
    return false;
  };

  for (int pass = 0; pass < max_passes; ++pass) {
    std::fill(locked.begin(), locked.end(), 0);
    std::fill(in_boundary.begin(), in_boundary.end(), 0);
    boundary.clear();
    for (index_t v = 0; v < n; ++v)
      if (is_boundary(v)) {
        in_boundary[static_cast<std::size_t>(v)] = 1;
        boundary.push_back(v);
      }
    // FM only ever profits from moving boundary vertices; bound the pass.
    const std::size_t max_moves = 2 * boundary.size() + 4;
    bool improved = false;
    for (std::size_t step = 0; step < max_moves; ++step) {
      index_t best = -1;
      offset_t best_gain = 0;  // only strictly improving moves
      for (index_t v : boundary) {
        if (locked[static_cast<std::size_t>(v)]) continue;
        const char s = side[static_cast<std::size_t>(v)];
        const offset_t nw0 =
            s == 0 ? w0 - g.vweight[static_cast<std::size_t>(v)]
                   : w0 + g.vweight[static_cast<std::size_t>(v)];
        if (nw0 < min_side || total - nw0 < min_side) continue;
        const offset_t gv = gain_of(v);
        if (gv > best_gain) {
          best_gain = gv;
          best = v;
        }
      }
      if (best < 0) break;
      const char s = side[static_cast<std::size_t>(best)];
      side[static_cast<std::size_t>(best)] = s == 0 ? 1 : 0;
      w0 += s == 0 ? -g.vweight[static_cast<std::size_t>(best)]
                   : g.vweight[static_cast<std::size_t>(best)];
      locked[static_cast<std::size_t>(best)] = 1;
      improved = true;
      // The move can promote neighbours into the boundary.
      for (offset_t e = g.begin(best); e < g.end(best); ++e) {
        const index_t u = g.adj[static_cast<std::size_t>(e)];
        if (!in_boundary[static_cast<std::size_t>(u)]) {
          in_boundary[static_cast<std::size_t>(u)] = 1;
          boundary.push_back(u);
        }
      }
    }
    if (!improved) break;
  }
}

}  // namespace

std::optional<Bisection> multilevel_bisect(const Adjacency& g,
                                           std::span<const index_t> verts,
                                           std::uint64_t seed) {
  const auto nv = static_cast<index_t>(verts.size());
  if (nv < 2) return std::nullopt;
  // `seed` is accepted for API stability but deliberately unused: every
  // stage below breaks ties by vertex id, so the bisection is a pure
  // function of (g, verts) — the determinism contract distributed analysis
  // relies on (see DESIGN.md, "Distributed analysis").
  (void)seed;

  // Build the induced local weighted graph.
  std::unordered_map<index_t, index_t> local;
  local.reserve(verts.size() * 2);
  for (index_t i = 0; i < nv; ++i) local[verts[static_cast<std::size_t>(i)]] = i;
  WeightedGraph fine;
  fine.vweight.assign(static_cast<std::size_t>(nv), 1);
  fine.ptr.assign(static_cast<std::size_t>(nv) + 1, 0);
  for (index_t i = 0; i < nv; ++i) {
    for (index_t u : g.neighbors(verts[static_cast<std::size_t>(i)])) {
      const auto it = local.find(u);
      if (it == local.end()) continue;
      fine.adj.push_back(it->second);
      fine.eweight.push_back(1);
    }
    fine.ptr[static_cast<std::size_t>(i) + 1] = static_cast<offset_t>(fine.adj.size());
  }

  // Coarsening hierarchy.
  std::vector<Level> levels;
  levels.push_back({std::move(fine), {}});
  while (levels.back().graph.n() > 48) {
    Level& top = levels.back();
    std::vector<index_t> coarse_of;
    const index_t nc = heavy_edge_matching(top.graph, &coarse_of);
    if (nc > top.graph.n() * 9 / 10) break;  // not shrinking: stop
    WeightedGraph cg = contract(top.graph, coarse_of, nc);
    top.coarse_of = std::move(coarse_of);
    levels.push_back({std::move(cg), {}});
  }

  // Initial partition on the coarsest graph, refine, then project down.
  std::vector<char> side = initial_partition(levels.back().graph);
  refine(levels.back().graph, side, 8);
  for (std::size_t lvl = levels.size() - 1; lvl-- > 0;) {
    const Level& fine_level = levels[lvl];
    std::vector<char> fine_side(static_cast<std::size_t>(fine_level.graph.n()));
    for (index_t v = 0; v < fine_level.graph.n(); ++v)
      fine_side[static_cast<std::size_t>(v)] =
          side[static_cast<std::size_t>(
              fine_level.coarse_of[static_cast<std::size_t>(v)])];
    side = std::move(fine_side);
    refine(fine_level.graph, side, 4);
  }

  Bisection out;
  const WeightedGraph& g0 = levels.front().graph;
  for (index_t i = 0; i < nv; ++i)
    (side[static_cast<std::size_t>(i)] == 0 ? out.a : out.b)
        .push_back(verts[static_cast<std::size_t>(i)]);
  for (index_t v = 0; v < nv; ++v)
    for (offset_t e = g0.begin(v); e < g0.end(v); ++e)
      if (side[static_cast<std::size_t>(v)] !=
          side[static_cast<std::size_t>(g0.adj[static_cast<std::size_t>(e)])])
        out.cut_weight += g0.eweight[static_cast<std::size_t>(e)];
  out.cut_weight /= 2;  // each cut edge counted from both ends
  if (out.a.empty() || out.b.empty()) return std::nullopt;
  return out;
}

}  // namespace slu3d::order_detail
