#include "order/diagonal_matching.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "support/check.hpp"

namespace slu3d {

namespace {

/// Hopcroft–Karp maximum bipartite matching between rows and columns of
/// the nonzero pattern. O(E sqrt(V)).
class HopcroftKarp {
 public:
  explicit HopcroftKarp(const CsrMatrix& A)
      : A_(A), n_(A.n_rows()),
        row_match_(static_cast<std::size_t>(n_), -1),
        col_match_(static_cast<std::size_t>(n_), -1),
        dist_(static_cast<std::size_t>(n_), 0) {}

  /// Greedy warm start: match each row to its largest-magnitude free
  /// column (this is what makes the matching "weight-aware" like MC64's
  /// bottleneck objective, cheaply).
  void greedy_seed() {
    // Process rows by descending best-entry magnitude so strong pivots
    // claim their columns first.
    std::vector<std::pair<real_t, index_t>> order;
    order.reserve(static_cast<std::size_t>(n_));
    for (index_t r = 0; r < n_; ++r) {
      real_t best = 0;
      for (real_t v : A_.row_vals(r)) best = std::max(best, std::abs(v));
      order.push_back({best, r});
    }
    std::sort(order.begin(), order.end(), std::greater<>());
    for (const auto& [mag, r] : order) {
      const auto cols = A_.row_cols(r);
      const auto vals = A_.row_vals(r);
      index_t pick = -1;
      real_t pick_mag = -1;
      for (std::size_t k = 0; k < cols.size(); ++k) {
        if (col_match_[static_cast<std::size_t>(cols[k])] != -1) continue;
        if (std::abs(vals[k]) > pick_mag) {
          pick_mag = std::abs(vals[k]);
          pick = cols[k];
        }
      }
      if (pick >= 0) {
        row_match_[static_cast<std::size_t>(r)] = pick;
        col_match_[static_cast<std::size_t>(pick)] = r;
      }
    }
  }

  /// Runs to a maximum matching; returns its cardinality.
  index_t solve() {
    greedy_seed();
    index_t matched = 0;
    for (index_t r = 0; r < n_; ++r)
      if (row_match_[static_cast<std::size_t>(r)] != -1) ++matched;
    while (bfs()) {
      for (index_t r = 0; r < n_; ++r)
        if (row_match_[static_cast<std::size_t>(r)] == -1 && dfs(r)) ++matched;
    }
    return matched;
  }

  /// col_for_row()[r] = matched column of row r.
  std::span<const index_t> col_for_row() const { return row_match_; }

 private:
  static constexpr index_t kInf = std::numeric_limits<index_t>::max();

  bool bfs() {
    std::queue<index_t> q;
    for (index_t r = 0; r < n_; ++r) {
      if (row_match_[static_cast<std::size_t>(r)] == -1) {
        dist_[static_cast<std::size_t>(r)] = 0;
        q.push(r);
      } else {
        dist_[static_cast<std::size_t>(r)] = kInf;
      }
    }
    bool found_augmenting = false;
    while (!q.empty()) {
      const index_t r = q.front();
      q.pop();
      for (index_t c : A_.row_cols(r)) {
        const index_t r2 = col_match_[static_cast<std::size_t>(c)];
        if (r2 == -1) {
          found_augmenting = true;
        } else if (dist_[static_cast<std::size_t>(r2)] == kInf) {
          dist_[static_cast<std::size_t>(r2)] =
              dist_[static_cast<std::size_t>(r)] + 1;
          q.push(r2);
        }
      }
    }
    return found_augmenting;
  }

  bool dfs(index_t r) {
    for (index_t c : A_.row_cols(r)) {
      const index_t r2 = col_match_[static_cast<std::size_t>(c)];
      if (r2 == -1 || (dist_[static_cast<std::size_t>(r2)] ==
                           dist_[static_cast<std::size_t>(r)] + 1 &&
                       dfs(r2))) {
        row_match_[static_cast<std::size_t>(r)] = c;
        col_match_[static_cast<std::size_t>(c)] = r;
        return true;
      }
    }
    dist_[static_cast<std::size_t>(r)] = kInf;
    return false;
  }

  const CsrMatrix& A_;
  index_t n_;
  std::vector<index_t> row_match_;
  std::vector<index_t> col_match_;
  std::vector<index_t> dist_;
};

}  // namespace

std::optional<std::vector<index_t>> zero_free_diagonal_permutation(
    const CsrMatrix& A) {
  SLU3D_CHECK(A.n_rows() == A.n_cols(), "matching needs a square matrix");
  HopcroftKarp hk(A);
  if (hk.solve() != A.n_rows()) return std::nullopt;  // structurally singular
  // row r is matched to column c: row r must land at position c.
  const auto col_of = hk.col_for_row();
  std::vector<index_t> rowperm(static_cast<std::size_t>(A.n_rows()));
  for (index_t r = 0; r < A.n_rows(); ++r)
    rowperm[static_cast<std::size_t>(col_of[static_cast<std::size_t>(r)])] = r;
  return rowperm;
}

CsrMatrix permute_rows(const CsrMatrix& A, std::span<const index_t> rowperm) {
  SLU3D_CHECK(rowperm.size() == static_cast<std::size_t>(A.n_rows()),
              "rowperm size mismatch");
  SLU3D_CHECK(is_permutation(rowperm), "rowperm is not a permutation");
  std::vector<offset_t> rp(static_cast<std::size_t>(A.n_rows()) + 1, 0);
  std::vector<index_t> ci;
  std::vector<real_t> va;
  ci.reserve(static_cast<std::size_t>(A.nnz()));
  va.reserve(static_cast<std::size_t>(A.nnz()));
  for (index_t r = 0; r < A.n_rows(); ++r) {
    const index_t src = rowperm[static_cast<std::size_t>(r)];
    const auto cols = A.row_cols(src);
    const auto vals = A.row_vals(src);
    ci.insert(ci.end(), cols.begin(), cols.end());
    va.insert(va.end(), vals.begin(), vals.end());
    rp[static_cast<std::size_t>(r) + 1] = static_cast<offset_t>(ci.size());
  }
  return CsrMatrix::from_raw(A.n_rows(), A.n_cols(), std::move(rp),
                             std::move(ci), std::move(va));
}

bool has_zero_free_diagonal(const CsrMatrix& A) {
  if (A.n_rows() != A.n_cols()) return false;
  for (index_t r = 0; r < A.n_rows(); ++r) {
    const auto cols = A.row_cols(r);
    if (!std::binary_search(cols.begin(), cols.end(), r)) return false;
  }
  return true;
}

}  // namespace slu3d
