#include "order/separator_tree.hpp"

#include <algorithm>

namespace slu3d {

std::vector<int> SeparatorTree::postorder() const {
  std::vector<int> out;
  out.reserve(nodes_.size());
  // Iterative postorder: push node, then visit children first.
  std::vector<std::pair<int, bool>> stack;  // (node, children_done)
  stack.push_back({root_, false});
  while (!stack.empty()) {
    auto [v, done] = stack.back();
    stack.pop_back();
    if (done) {
      out.push_back(v);
      continue;
    }
    stack.push_back({v, true});
    const auto& nd = node(v);
    if (nd.right >= 0) stack.push_back({nd.right, false});
    if (nd.left >= 0) stack.push_back({nd.left, false});
  }
  return out;
}

int SeparatorTree::height() const {
  int best = 0;
  for (int i = 0; i < n_nodes(); ++i) best = std::max(best, depth(i) + 1);
  return best;
}

int SeparatorTree::depth(int i) const {
  int d = 0;
  for (int v = i; node(v).parent >= 0; v = node(v).parent) ++d;
  return d;
}

void SeparatorTree::validate() const {
  SLU3D_CHECK(!nodes_.empty(), "empty separator tree");
  SLU3D_CHECK(root_ >= 0 && root_ < n_nodes(), "bad root index");
  SLU3D_CHECK(node(root_).parent == -1, "root has a parent");
  SLU3D_CHECK(node(root_).subtree_first == 0 && node(root_).sep_last == n(),
              "root must span all vertices");
  index_t covered = 0;
  for (int i = 0; i < n_nodes(); ++i) {
    const auto& nd = node(i);
    SLU3D_CHECK(nd.subtree_first <= nd.sep_first && nd.sep_first <= nd.sep_last,
                "node ranges out of order");
    SLU3D_CHECK((nd.left < 0) == (nd.right < 0),
                "nodes must have zero or two children");
    covered += nd.block_size();
    if (!nd.is_leaf()) {
      const auto& l = node(nd.left);
      const auto& r = node(nd.right);
      SLU3D_CHECK(l.parent == i && r.parent == i, "child parent link broken");
      SLU3D_CHECK(l.subtree_first == nd.subtree_first, "left child range");
      SLU3D_CHECK(l.sep_last == r.subtree_first, "children must be adjacent");
      SLU3D_CHECK(r.sep_last == nd.sep_first, "separator must follow children");
    } else {
      SLU3D_CHECK(nd.sep_first == nd.subtree_first,
                  "leaf owns its whole range");
    }
  }
  SLU3D_CHECK(covered == n(), "blocks must partition all vertices");
}

}  // namespace slu3d
