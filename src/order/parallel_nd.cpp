#include "order/parallel_nd.hpp"

#include "support/check.hpp"

namespace slu3d {

namespace {

using sim::CommPlane;

constexpr int kSplitTag = 100;  // +4*depth, +4*depth+1 (collective channel)
constexpr int kMergeTag = 300;  // +4*depth (point-to-point channel)
constexpr int kTreeTag = 500;

/// A dissection result over a vertex subset: perm maps local positions to
/// global ids; node ranges are local.
struct SubTree {
  std::vector<index_t> perm;
  std::vector<SepTreeNode> nodes;
  int root = -1;
};

SubTree from_tree(const SeparatorTree& t) {
  return {std::vector<index_t>(t.perm().begin(), t.perm().end()),
          std::vector<SepTreeNode>(t.nodes().begin(), t.nodes().end()),
          t.root()};
}

/// See order_detail::nd_split_work. One bisection sweeps the subgraph's
/// edges a bounded number of times (coarsen + initial cut + refine, ~8
/// passes), and each edge visit is an irregular, memory-latency-bound
/// graph operation worth ~100 of the machine model's streaming flops
/// (gamma models dense GEMM throughput; graph codes run ~100x slower per
/// touched element). Folded into one constant: ~800 flop-equivalents per
/// subgraph edge per bisection, which puts the simulated ordering rate in
/// the tens of millions of edges per second a real multilevel
/// partitioner achieves.
constexpr offset_t kNdWorkFactor = 800;

offset_t split_work(const CsrMatrix& A, std::span<const index_t> verts) {
  offset_t deg = 0;
  for (index_t v : verts)
    deg += static_cast<offset_t>(A.row_cols(v).size()) + 1;
  return kNdWorkFactor * deg;
}

/// Total work of a locally-run dissection recursion: each tree node's
/// split pass scanned exactly its subtree vertex range, so sum
/// Σ(deg + 1) over perm[subtree_first, sep_last) for every node (prefix
/// sums make this linear).
offset_t recursion_work(const CsrMatrix& A, std::span<const index_t> perm,
                        std::span<const SepTreeNode> nodes) {
  std::vector<offset_t> pre(perm.size() + 1, 0);
  for (std::size_t i = 0; i < perm.size(); ++i)
    pre[i + 1] = pre[i] + static_cast<offset_t>(A.row_cols(perm[i]).size()) + 1;
  offset_t total = 0;
  for (const SepTreeNode& nd : nodes)
    total += pre[static_cast<std::size_t>(nd.sep_last)] -
             pre[static_cast<std::size_t>(nd.subtree_first)];
  return kNdWorkFactor * total;
}

/// Splices left + right + separator into one subtree.
SubTree splice(SubTree left, SubTree right, std::span<const index_t> sep) {
  const auto lsize = static_cast<index_t>(left.perm.size());
  const int lnodes = static_cast<int>(left.nodes.size());
  SubTree out = std::move(left);
  out.perm.insert(out.perm.end(), right.perm.begin(), right.perm.end());
  out.perm.insert(out.perm.end(), sep.begin(), sep.end());
  for (SepTreeNode nd : right.nodes) {
    nd.subtree_first += lsize;
    nd.sep_first += lsize;
    nd.sep_last += lsize;
    if (nd.left >= 0) nd.left += lnodes;
    if (nd.right >= 0) nd.right += lnodes;
    if (nd.parent >= 0) nd.parent += lnodes;
    out.nodes.push_back(nd);
  }
  const int lroot = out.root;
  const int rroot = right.root + lnodes;
  const index_t sep_first = static_cast<index_t>(out.perm.size()) -
                            static_cast<index_t>(sep.size());
  out.nodes.push_back({0, sep_first, static_cast<index_t>(out.perm.size()),
                       lroot, rroot, -1});
  const int id = static_cast<int>(out.nodes.size()) - 1;
  out.nodes[static_cast<std::size_t>(lroot)].parent = id;
  out.nodes[static_cast<std::size_t>(rroot)].parent = id;
  out.root = id;
  return out;
}

// ---- flat real_t encodings for the simulated wire --------------------

std::vector<real_t> encode_verts(std::span<const index_t> v) {
  std::vector<real_t> out;
  out.reserve(v.size());
  for (index_t x : v) out.push_back(static_cast<real_t>(x));
  return out;
}

std::vector<index_t> decode_verts(std::span<const real_t> v) {
  std::vector<index_t> out;
  out.reserve(v.size());
  for (real_t x : v) out.push_back(static_cast<index_t>(x));
  return out;
}

std::vector<real_t> encode_subtree(const SubTree& t) {
  std::vector<real_t> out;
  out.push_back(static_cast<real_t>(t.perm.size()));
  for (index_t p : t.perm) out.push_back(static_cast<real_t>(p));
  out.push_back(static_cast<real_t>(t.nodes.size()));
  out.push_back(static_cast<real_t>(t.root));
  for (const SepTreeNode& nd : t.nodes) {
    out.push_back(static_cast<real_t>(nd.subtree_first));
    out.push_back(static_cast<real_t>(nd.sep_first));
    out.push_back(static_cast<real_t>(nd.sep_last));
    out.push_back(static_cast<real_t>(nd.left));
    out.push_back(static_cast<real_t>(nd.right));
    out.push_back(static_cast<real_t>(nd.parent));
  }
  return out;
}

SubTree decode_subtree(std::span<const real_t> v) {
  std::size_t pos = 0;
  SubTree t;
  const auto np = static_cast<std::size_t>(v[pos++]);
  t.perm.reserve(np);
  for (std::size_t i = 0; i < np; ++i)
    t.perm.push_back(static_cast<index_t>(v[pos++]));
  const auto nn = static_cast<std::size_t>(v[pos++]);
  t.root = static_cast<int>(v[pos++]);
  for (std::size_t i = 0; i < nn; ++i) {
    SepTreeNode nd;
    nd.subtree_first = static_cast<index_t>(v[pos++]);
    nd.sep_first = static_cast<index_t>(v[pos++]);
    nd.sep_last = static_cast<index_t>(v[pos++]);
    nd.left = static_cast<int>(v[pos++]);
    nd.right = static_cast<int>(v[pos++]);
    nd.parent = static_cast<int>(v[pos++]);
    t.nodes.push_back(nd);
  }
  SLU3D_CHECK(pos == v.size(), "subtree stream not fully consumed");
  return t;
}

/// Recursive cooperative dissection; returns the group's subtree on the
/// group leader (rank 0 of `comm`) and an empty SubTree elsewhere.
SubTree dissect_group(const CsrMatrix& A, sim::Comm& comm,
                      std::vector<index_t> verts, const NdOptions& opts,
                      int depth) {
  if (comm.size() == 1) {
    SubTree t = from_tree(nested_dissection_subgraph(A, verts, opts));
    comm.add_compute(recursion_work(A, t.perm, t.nodes),
                     sim::ComputeKind::Other);
    return t;
  }

  // The leader computes the split and shares it; every rank pays the
  // bcast (the split lists are small relative to the subtree work).
  std::optional<order_detail::TopSplit> split;
  std::vector<real_t> header(3, 0.0);
  if (comm.rank() == 0) {
    split = order_detail::single_split(A, verts, opts);
    comm.add_compute(split_work(A, verts), sim::ComputeKind::Other);
    if (split.has_value()) {
      header = {static_cast<real_t>(split->a.size()),
                static_cast<real_t>(split->b.size()),
                static_cast<real_t>(split->sep.size())};
    } else {
      header = {-1.0, 0.0, 0.0};
    }
  }
  comm.bcast(0, kSplitTag + 4 * depth, header, CommPlane::XY);
  if (header[0] < 0) {
    // Unsplittable: the leader dissects it alone (it becomes a leaf).
    if (comm.rank() == 0) {
      SubTree t = from_tree(nested_dissection_subgraph(A, verts, opts));
      comm.add_compute(recursion_work(A, t.perm, t.nodes),
                       sim::ComputeKind::Other);
      return t;
    }
    return {};
  }
  std::vector<real_t> payload;
  if (comm.rank() == 0) {
    payload = encode_verts(split->a);
    const auto eb = encode_verts(split->b);
    const auto es = encode_verts(split->sep);
    payload.insert(payload.end(), eb.begin(), eb.end());
    payload.insert(payload.end(), es.begin(), es.end());
  } else {
    payload.resize(static_cast<std::size_t>(header[0] + header[1] + header[2]));
  }
  comm.bcast(0, kSplitTag + 4 * depth + 1, payload, CommPlane::XY);
  const auto na = static_cast<std::size_t>(header[0]);
  const auto nb = static_cast<std::size_t>(header[1]);
  const std::vector<index_t> va =
      decode_verts(std::span<const real_t>(payload).subspan(0, na));
  const std::vector<index_t> vb =
      decode_verts(std::span<const real_t>(payload).subspan(na, nb));
  const std::vector<index_t> vsep = decode_verts(
      std::span<const real_t>(payload).subspan(na + nb));

  // Halve the communicator: lower ranks take side A, upper ranks side B.
  const int half = comm.size() / 2;
  const bool lower = comm.rank() < half;
  sim::Comm sub = comm.split(lower ? 0 : 1, comm.rank());
  SubTree mine = dissect_group(A, sub, lower ? va : vb, opts, depth + 1);

  // Merge on the group leader: the upper half's leader ships its subtree.
  if (comm.rank() == half) {
    comm.send(0, kMergeTag + 4 * depth, encode_subtree(mine), CommPlane::XY);
    return {};
  }
  if (comm.rank() == 0) {
    SubTree right =
        decode_subtree(comm.recv(half, kMergeTag + 4 * depth, CommPlane::XY));
    return splice(std::move(mine), std::move(right), vsep);
  }
  return {};
}

}  // namespace

SeparatorTree parallel_nested_dissection(const CsrMatrix& A, sim::Comm& comm,
                                         const NdOptions& opts) {
  SLU3D_CHECK(A.n_rows() == A.n_cols(), "nested dissection needs square A");
  SLU3D_CHECK(A.n_rows() > 0, "empty matrix");
  std::vector<index_t> all(static_cast<std::size_t>(A.n_rows()));
  for (index_t i = 0; i < A.n_rows(); ++i)
    all[static_cast<std::size_t>(i)] = i;

  SubTree mine = dissect_group(A, comm, std::move(all), opts, 0);

  // Broadcast the final tree from the global leader to everyone.
  std::vector<real_t> size1(1, 0.0);
  std::vector<real_t> encoded;
  if (comm.rank() == 0) {
    encoded = encode_subtree(mine);
    size1[0] = static_cast<real_t>(encoded.size());
  }
  comm.bcast(0, kTreeTag, size1, CommPlane::XY);
  if (comm.rank() != 0) encoded.resize(static_cast<std::size_t>(size1[0]));
  comm.bcast(0, kTreeTag + 1, encoded, CommPlane::XY);
  SubTree full = decode_subtree(encoded);
  return SeparatorTree(std::move(full.perm), std::move(full.nodes), full.root);
}

namespace order_detail {

std::vector<real_t> encode_tree(const SeparatorTree& t) {
  return encode_subtree(from_tree(t));
}

SeparatorTree decode_tree(std::span<const real_t> v) {
  SubTree t = decode_subtree(v);
  return SeparatorTree(std::move(t.perm), std::move(t.nodes), t.root);
}

offset_t nd_split_work(const CsrMatrix& A, std::span<const index_t> verts) {
  return split_work(A, verts);
}

offset_t nd_tree_work(const CsrMatrix& A, const SeparatorTree& t) {
  return recursion_work(A, t.perm(), t.nodes());
}

}  // namespace order_detail

}  // namespace slu3d
