// The separator tree produced by nested dissection. It is simultaneously
// the supernode partition (each node's own vertex range is one supernode /
// block column) and the supernodal elimination tree (a node depends on its
// children), which is exactly how the paper uses the etree (§II-D).
#pragma once

#include <span>
#include <vector>

#include "support/check.hpp"
#include "support/types.hpp"

namespace slu3d {

struct SepTreeNode {
  // All indices refer to the *new* (post-ordering) vertex numbering.
  index_t subtree_first = 0;  ///< first vertex of the whole subtree
  index_t sep_first = 0;      ///< first vertex of this node's own block
  index_t sep_last = 0;       ///< one past the last vertex of the own block
                              ///< (also one past the end of the subtree)
  int left = -1;              ///< child node index or -1
  int right = -1;
  int parent = -1;

  index_t block_size() const { return sep_last - sep_first; }
  index_t subtree_size() const { return sep_last - subtree_first; }
  bool is_leaf() const { return left < 0 && right < 0; }
};

/// Result of nested dissection: a fill-reducing permutation plus the
/// separator tree over the permuted indices.
class SeparatorTree {
 public:
  SeparatorTree(std::vector<index_t> perm, std::vector<SepTreeNode> nodes,
                int root)
      : perm_(std::move(perm)), nodes_(std::move(nodes)), root_(root) {
    validate();
  }

  /// perm()[k] = original index of the k-th permuted vertex (new -> old).
  std::span<const index_t> perm() const { return perm_; }
  std::span<const SepTreeNode> nodes() const { return nodes_; }
  const SepTreeNode& node(int i) const {
    return nodes_[static_cast<std::size_t>(i)];
  }
  int root() const { return root_; }
  int n_nodes() const { return static_cast<int>(nodes_.size()); }
  index_t n() const { return static_cast<index_t>(perm_.size()); }

  /// Node indices in bottom-up (children before parents) order. Factoring
  /// supernodes in this order respects every dependency.
  std::vector<int> postorder() const;

  /// Height of the tree (a single node has height 1).
  int height() const;

  /// Depth of node i (root has depth 0).
  int depth(int i) const;

 private:
  void validate() const;

  std::vector<index_t> perm_;
  std::vector<SepTreeNode> nodes_;
  int root_;
};

}  // namespace slu3d
