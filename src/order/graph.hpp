// Undirected adjacency view shared by the ordering algorithms.
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace slu3d::order_detail {

/// Adjacency of A + Aᵀ without the diagonal, in CSR form.
struct Adjacency {
  std::vector<offset_t> ptr;
  std::vector<index_t> adj;

  index_t n() const { return static_cast<index_t>(ptr.size()) - 1; }
  std::span<const index_t> neighbors(index_t v) const {
    return std::span<const index_t>(adj).subspan(
        static_cast<std::size_t>(ptr[static_cast<std::size_t>(v)]),
        static_cast<std::size_t>(ptr[static_cast<std::size_t>(v) + 1] -
                                 ptr[static_cast<std::size_t>(v)]));
  }
};

inline Adjacency build_adjacency(const CsrMatrix& A) {
  const CsrMatrix S = A.pattern_is_symmetric() ? A : A.symmetrized_pattern();
  Adjacency g;
  g.ptr.assign(static_cast<std::size_t>(S.n_rows()) + 1, 0);
  g.adj.reserve(static_cast<std::size_t>(S.nnz()));
  for (index_t r = 0; r < S.n_rows(); ++r) {
    for (index_t c : S.row_cols(r))
      if (c != r) g.adj.push_back(c);
    g.ptr[static_cast<std::size_t>(r) + 1] = static_cast<offset_t>(g.adj.size());
  }
  return g;
}

/// Weighted graph used by the multilevel coarsening hierarchy.
struct WeightedGraph {
  std::vector<offset_t> ptr;       // CSR adjacency
  std::vector<index_t> adj;
  std::vector<index_t> eweight;    // per adjacency entry
  std::vector<index_t> vweight;    // per vertex

  index_t n() const { return static_cast<index_t>(vweight.size()); }
  offset_t begin(index_t v) const { return ptr[static_cast<std::size_t>(v)]; }
  offset_t end(index_t v) const { return ptr[static_cast<std::size_t>(v) + 1]; }
};

}  // namespace slu3d::order_detail
