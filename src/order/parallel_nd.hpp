// Parallel nested dissection on the simulated runtime — the role ParMETIS
// plays for SuperLU_DIST. The dissection recursion is mapped onto the
// rank tree: the group leader computes the top separator and broadcasts
// the split, the two halves of the communicator recurse on the two
// subdomains concurrently, and subtree orderings are merged upward and
// finally broadcast, so every rank ends with the identical SeparatorTree.
#pragma once

#include "order/nested_dissection.hpp"
#include "simmpi/runtime.hpp"

namespace slu3d {

/// Computes a nested-dissection ordering of A cooperatively over all
/// ranks of `comm` (any size >= 1). Collective; deterministic; returns
/// the same tree on every rank, and the same *kind* of tree a serial
/// nested_dissection would produce (separator choices at the top levels
/// are identical — the parallelism only changes who computes what).
SeparatorTree parallel_nested_dissection(const CsrMatrix& A, sim::Comm& comm,
                                         const NdOptions& opts = {});

}  // namespace slu3d
