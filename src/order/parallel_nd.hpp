// Parallel nested dissection on the simulated runtime — the role ParMETIS
// plays for SuperLU_DIST. The dissection recursion is mapped onto the
// rank tree: the group leader computes the top separator and broadcasts
// the split, the two halves of the communicator recurse on the two
// subdomains concurrently, and subtree orderings are merged upward and
// finally broadcast, so every rank ends with the identical SeparatorTree.
#pragma once

#include "order/nested_dissection.hpp"
#include "simmpi/runtime.hpp"

namespace slu3d {

/// Computes a nested-dissection ordering of A cooperatively over all
/// ranks of `comm` (any size >= 1). Collective; deterministic; returns
/// the same tree on every rank, and the same *kind* of tree a serial
/// nested_dissection would produce (separator choices at the top levels
/// are identical — the parallelism only changes who computes what).
/// Every split a rank computes is charged to its simulated clock through
/// the work model below, so the ordering stage shows up in the LogGP
/// critical path like any numeric kernel would.
SeparatorTree parallel_nested_dissection(const CsrMatrix& A, sim::Comm& comm,
                                         const NdOptions& opts = {});

namespace order_detail {

/// Flat real_t codecs for shipping a whole separator tree over the
/// simulated wire (used by parallel_nested_dissection's final broadcast
/// and by the analysis phase's sequential-baseline mode).
std::vector<real_t> encode_tree(const SeparatorTree& t);
SeparatorTree decode_tree(std::span<const real_t> v);

/// Work model for in-sim dissection, in add_compute flop units: one
/// bisection pass over a vertex subset costs a constant multiple of
/// Σ_v (deg_A(v) + 1) — the multilevel splitter sweeps the subgraph's
/// edges a bounded number of times (coarsen + initial cut + refine), and
/// each irregular edge visit is worth ~100 streaming flops (see
/// kNdWorkFactor in parallel_nd.cpp for the calibration).
offset_t nd_split_work(const CsrMatrix& A, std::span<const index_t> verts);

/// Total dissection work for a finished tree: the sum of nd_split_work
/// over every node's subtree vertex range (each node's range is what its
/// split pass scanned). This is what a rank that ran the whole recursion
/// locally is charged.
offset_t nd_tree_work(const CsrMatrix& A, const SeparatorTree& t);

}  // namespace order_detail

}  // namespace slu3d
