// Zero-free-diagonal row permutation — the role MC64 plays in
// SuperLU_DIST's static-pivoting pipeline. Finds a row permutation that
// puts a (large) nonzero on every diagonal position, via maximum
// bipartite matching (Hopcroft–Karp) over the nonzero pattern, greedily
// seeded with the largest-magnitude entry per column.
#pragma once

#include <optional>
#include <vector>

#include "sparse/csr.hpp"

namespace slu3d {

/// Returns `rowperm` with rowperm[new_row] = old_row such that
/// B(i, :) = A(rowperm[i], :) has a structurally nonzero diagonal, or
/// nullopt if the matrix is structurally singular (no perfect matching).
std::optional<std::vector<index_t>> zero_free_diagonal_permutation(
    const CsrMatrix& A);

/// Applies a row permutation: B(i, :) = A(rowperm[i], :).
CsrMatrix permute_rows(const CsrMatrix& A, std::span<const index_t> rowperm);

/// True if every diagonal entry of A is structurally present.
bool has_zero_free_diagonal(const CsrMatrix& A);

}  // namespace slu3d
