// Multilevel graph bisection (the METIS recipe): heavy-edge matching
// coarsening, greedy graph-growing initial partition on the coarsest
// graph, and Fiduccia–Mattheyses-style refinement during uncoarsening.
// Used as the higher-quality splitter inside nested dissection.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "order/graph.hpp"

namespace slu3d::order_detail {

struct Bisection {
  std::vector<index_t> a;  ///< global vertex ids of side 0
  std::vector<index_t> b;  ///< global vertex ids of side 1
  offset_t cut_weight = 0; ///< edge cut of the final partition
};

/// Balanced edge bisection of the subgraph of `g` induced by `verts`
/// (which must form a single connected component). Returns nullopt when
/// the subgraph cannot be split (fewer than 2 vertices).
/// Deterministic and seed-INDEPENDENT: every stage (matching visit order,
/// equal-weight neighbour choice, initial-partition start vertex) breaks
/// ties by vertex id, so the result is a pure function of (g, verts).
/// `seed` is retained for API stability only and is ignored.
std::optional<Bisection> multilevel_bisect(const Adjacency& g,
                                           std::span<const index_t> verts,
                                           std::uint64_t seed);

}  // namespace slu3d::order_detail
