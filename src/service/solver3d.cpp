// The one-shot distributed driver, rerouted through the resident
// SolverService: one ephemeral service instance factors the matrix (always
// a cold analysis — nothing is resident yet) and executes one solve
// request, and the two per-phase reports are merged into the classic
// Solver3dReport. This keeps a single code path for the full pipeline;
// callers that want amortization across requests hold a SolverService
// directly.
#include "lu3d/solver3d.hpp"

#include "service/solver_service.hpp"
#include "support/check.hpp"

namespace slu3d {

Solver3dReport solve_distributed_3d(const CsrMatrix& A,
                                    std::span<const real_t> b,
                                    std::span<real_t> x,
                                    const Solver3dOptions& options) {
  SLU3D_CHECK(A.n_rows() == A.n_cols(), "needs a square matrix");
  const auto n = static_cast<std::size_t>(A.n_rows());
  SLU3D_CHECK(b.size() == n && x.size() == n, "rhs size mismatch");

  service::ServiceOptions sopt;
  sopt.Px = options.Px;
  sopt.Py = options.Py;
  sopt.Pz = options.Pz;
  sopt.nd = options.nd;
  sopt.geometry = options.geometry;
  sopt.partition = options.partition;
  sopt.lu3d = options.lu3d;
  sopt.platform = options.platform;
  sopt.refinement_steps = options.refinement_steps;
  sopt.analysis = options.analysis;
  sopt.max_patterns = 1;

  service::SolverService svc(sopt);
  const service::FactorReport fr = svc.factor(A);
  const service::SolveReport sr = svc.solve({b, x, 1});

  Solver3dReport report;
  report.factor_time = fr.factor_time;
  report.solve_time = sr.solve_time;
  report.t_scu = fr.t_scu;
  report.t_comm = fr.t_comm;
  report.w_fact = fr.w_fact;
  report.w_red = fr.w_red;
  report.t_analysis = fr.t_analysis;
  report.w_analysis = fr.w_analysis;
  report.msg_analysis = fr.msg_analysis;
  report.w_solve_xy = sr.w_solve_xy;
  report.w_solve_z = sr.w_solve_z;
  report.msg_solve_xy = sr.msg_solve_xy;
  report.msg_solve_z = sr.msg_solve_z;
  report.mem_total = fr.mem_total;
  report.mem_max = fr.mem_max;
  report.flops = fr.flops;
  report.residual = relative_residual(A, x, b);
  return report;
}

}  // namespace slu3d
