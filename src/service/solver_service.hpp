// Resident solver service — the "factorize once, solve many" front end the
// paper's 3D algorithm is built to amortize. A SolverService keeps the
// simulated 3D machine configuration and the distributed factors of every
// recently seen sparsity pattern alive across requests:
//
//  * Patterns are keyed by pattern_fingerprint (structure only, never
//    values). A repeated pattern skips ordering and symbolic analysis
//    entirely and goes straight to numeric *refactorization* on the cached
//    BlockStructure / ForestPartition / per-rank allocations
//    (refill_3d_factors + factorize_3d). ServiceStats::analyses counts
//    the expensive analysis constructions, so tests can verify by
//    construction count that a hit runs zero of them.
//  * Solves are batched: a request carries an n x nrhs column-major panel
//    and one forward/backward sweep serves the whole batch, so
//    solve-phase message *counts* are independent of nrhs.
//  * solve_stream executes a queue of solve requests back-to-back inside
//    ONE simulated run; per-request tag bases are allocated host-side with
//    stride solve3d_tag_span(bs) * (1 + refinement_steps) so two queued
//    solves on the same resident grid can never collide tags.
//
// Entries are evicted least-recently-used when more than
// ServiceOptions::max_patterns are resident.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "analysis/dist_analysis.hpp"
#include "lu3d/factor3d.hpp"
#include "lu3d/solve3d.hpp"
#include "numeric/solver.hpp"

namespace slu3d::service {

struct ServiceOptions {
  int Px = 2;
  int Py = 2;
  /// Number of 2D grids (power of two). 0 = choose per pattern: the
  /// largest power of two <= the §IV communication-optimal value that
  /// divides Px*Py (given as the total rank budget) and keeps the plane
  /// at >= 4 ranks.
  int Pz = 1;
  NdOptions nd;
  std::optional<GridGeometry> geometry;  ///< exact geometric ND when set
  PartitionStrategy partition = PartitionStrategy::Greedy;
  Lu3dOptions lu3d;
  /// The network the simulated runs charge against (flat Edison-like by
  /// default; hierarchical platforms add shared-uplink contention).
  sim::Platform platform;
  /// Iterative-refinement sweeps appended to every solve request.
  int refinement_steps = 1;
  /// Where cold-start analysis (ordering + symbolic factorization) runs
  /// on a cache miss: on the host outside the simulated clock (Host, the
  /// legacy default), serially on simulated rank 0 (SequentialSim — the
  /// honest baseline that puts serial analysis on the critical path), or
  /// subtree-parallel across all simulated ranks (Distributed; see
  /// src/analysis/). Ignored when `geometry` is set. Cache hits never
  /// analyze, in-sim or not.
  AnalysisMode analysis = AnalysisMode::Host;
  /// Resident-pattern capacity; least-recently-used entries are evicted.
  std::size_t max_patterns = 8;
  /// First tag of the per-request solve ranges. A fleet gives each shard a
  /// disjoint base so no two shards' simulated runs can ever share a tag,
  /// even if a future runtime multiplexes them onto one wire.
  int solve_tag_base = 1 << 24;
  /// Primary cache-key function; null means pattern_fingerprint. Entries
  /// additionally keep an independent salted fingerprint, so even a
  /// colliding primary (distinct patterns, equal key — what this hook
  /// injects in tests) never produces a false cache hit.
  std::function<std::uint64_t(const CsrMatrix&)> fingerprint_fn;
};

/// Construction-count instrumentation across the service lifetime.
struct ServiceStats {
  long analyses = 0;          ///< ordering + symbolic constructions (cache misses)
  long refactorizations = 0;  ///< numeric factorization runs (hits and misses)
  long cache_hits = 0;
  long evictions = 0;          ///< LRU capacity evictions (not failure drops)
  long refactor_failures = 0;  ///< numeric factorizations that threw; the
                               ///< entry is dropped, so hits + analyses -
                               ///< failures audits the resident set exactly
  long solve_requests = 0;
  long rhs_columns = 0;  ///< total right-hand-side columns solved
  /// Cumulative in-sim analysis split across all cache misses (zero under
  /// AnalysisMode::Host, where analysis never touches the simulated
  /// clock): simulated seconds, max per-rank bytes received, and total
  /// messages sent of the analysis phases this service has run.
  double analysis_seconds = 0;
  offset_t analysis_bytes = 0;
  offset_t analysis_messages = 0;
};

/// Structure-keyed symbolic state of one resident pattern — everything a
/// fleet's cache-warm migration ships between shards. Deliberately carries
/// no values: no permuted matrix, no per-rank numeric blocks. The target
/// shard reconstructs those on its next factor() of the pattern (a cache
/// hit: zero analysis work), which is the SpComm3D lesson applied to
/// migration — move only the bytes the receiver is actually missing.
struct SymbolicState {
  std::uint64_t key = 0;    ///< primary pattern fingerprint
  std::uint64_t check = 0;  ///< salted secondary fingerprint (collision guard)
  int Px = 0, Py = 0, Pz = 0;
  std::unique_ptr<SeparatorTree> tree;
  std::unique_ptr<BlockStructure> bs;
  std::unique_ptr<ForestPartition> part;  ///< points into *bs (moved together)
  std::vector<index_t> pinv;
  offset_t flops = 0;

  /// Approximate wire size of this state (tree + block structure + forest
  /// partition + inverse permutation): the bytes a migration actually
  /// moves, as opposed to re-shipping the matrix and numeric factors.
  offset_t payload_bytes() const;
};

/// Per-factorization-request report (one simulated factorization run).
struct FactorReport {
  bool cache_hit = false;   ///< pattern was resident: no ordering/symbolic ran
  double factor_time = 0;   ///< simulated critical-path seconds
  double t_scu = 0;         ///< Schur compute on the critical-path rank
  double t_comm = 0;        ///< non-overlapped comm+sync on that rank
  offset_t w_fact = 0;      ///< max per-rank XY bytes received
  offset_t w_red = 0;       ///< max per-rank Z bytes received
  /// Analysis-phase split (nonzero only on a cache miss with an in-sim
  /// AnalysisMode): simulated critical-path seconds of the analysis
  /// stage (already included in factor_time), the paper-style max
  /// per-rank bytes received during it, and its total messages sent.
  double t_analysis = 0;
  offset_t w_analysis = 0;
  offset_t msg_analysis = 0;
  offset_t mem_total = 0;   ///< numeric block bytes across all ranks
  offset_t mem_max = 0;     ///< max per rank
  offset_t flops = 0;       ///< symbolic factorization flop count
};

/// One solve request against the current resident operator. `b` and `x`
/// are n x nrhs column-major panels in the *original* (unpermuted) index
/// space; `x` receives the solution.
struct SolveRequest {
  std::span<const real_t> b;
  std::span<real_t> x;
  index_t nrhs = 1;
};

/// Per-solve-request report. The communication split is solve-phase only
/// (deltas around this request), separate from the factor-phase
/// w_fact / w_red above.
struct SolveReport {
  double solve_time = 0;      ///< simulated latency of this request
  offset_t w_solve_xy = 0;    ///< max per-rank XY bytes received
  offset_t w_solve_z = 0;     ///< max per-rank Z bytes received
  offset_t msg_solve_xy = 0;  ///< total XY messages sent (all ranks)
  offset_t msg_solve_z = 0;   ///< total Z messages sent (all ranks)
  real_t residual = 0;        ///< worst relative residual over the panel
};

class SolverService {
 public:
  explicit SolverService(const ServiceOptions& options);
  ~SolverService();
  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Factors `A` on the resident machine. A resident pattern (same
  /// fingerprint) is numerically refactorized in place — no ordering, no
  /// symbolic analysis, no allocation; otherwise the full analysis
  /// pipeline runs once and the pattern becomes resident. The factored
  /// operator becomes the target of subsequent solve requests. Throws
  /// slu3d::Error (and drops the entry) if the factorization fails.
  FactorReport factor(const CsrMatrix& A);

  /// Executes one solve request on the current operator.
  SolveReport solve(const SolveRequest& request);

  /// Executes a queue of solve requests back-to-back in one simulated
  /// run, with host-audited disjoint tag ranges per request. Reports are
  /// per request (stat deltas around each).
  std::vector<SolveReport> solve_stream(std::span<const SolveRequest> requests);

  const ServiceStats& stats() const { return stats_; }
  const ServiceOptions& options() const { return opt_; }
  std::size_t resident_patterns() const { return cache_.size(); }
  bool has_current() const { return current_ != nullptr; }

  /// Primary cache key of `A` under this service's configuration.
  std::uint64_t fingerprint(const CsrMatrix& A) const;

  /// True if a pattern with this primary fingerprint is resident.
  bool has_pattern(std::uint64_t fingerprint) const;

  /// Makes the resident, already numerically factored pattern the current
  /// solve target without any simulated work (its factors are still valid:
  /// solves never modify them). Returns false — and leaves the current
  /// operator unchanged — if the pattern is not resident or holds no valid
  /// numeric factors (e.g. it arrived via insert_pattern and was never
  /// factored here). The caller owns values-versioning: activate only when
  /// the resident values are the ones the request wants.
  bool activate(std::uint64_t fingerprint);

  /// Removes the pattern from the cache and returns its symbolic state
  /// (the migration payload). Numeric allocations and the permuted matrix
  /// are discarded — they are value-laden and never shipped. Returns
  /// nullopt if the pattern is not resident. Not counted as an eviction.
  std::optional<SymbolicState> extract_pattern(std::uint64_t fingerprint);

  /// Adopts a migrated symbolic state as a resident (but not yet
  /// factored) pattern: the next factor() of the pattern is a cache hit
  /// that runs numeric refactorization only. May LRU-evict to capacity.
  void insert_pattern(SymbolicState&& state);

 private:
  struct Resident;

  Resident* find(std::uint64_t key, std::uint64_t check);
  void evict_to_capacity();
  FactorReport run_numeric_factorization(Resident& op);
  std::vector<SolveReport> run_solves(Resident& op,
                                      std::span<const SolveRequest> requests);

  ServiceOptions opt_;
  ServiceStats stats_;
  std::vector<std::unique_ptr<Resident>> cache_;
  Resident* current_ = nullptr;
  std::uint64_t use_clock_ = 0;
};

}  // namespace slu3d::service
