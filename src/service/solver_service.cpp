#include "service/solver_service.hpp"

#include <algorithm>
#include <mutex>

#include "model/cost_model.hpp"
#include "numeric/factor_io.hpp"
#include "support/check.hpp"

namespace slu3d::service {

namespace {

/// Pz == 0: model-driven grid split (Eq. 8 for planar inputs) given the
/// total rank budget Px*Py, mirroring the one-shot driver's policy.
void pick_dims(const ServiceOptions& o, index_t n, int& Px, int& Py, int& Pz) {
  Px = o.Px;
  Py = o.Py;
  Pz = o.Pz;
  if (Pz != 0) return;
  const int P = o.Px * o.Py;
  const double pz_star = model::planar_optimal_pz(static_cast<double>(n));
  int pz = 1;
  while (2 * pz <= pz_star && P % (2 * pz) == 0 && P / (2 * pz) >= 4) pz *= 2;
  Pz = pz;
  const int pxy = P / pz;
  int px = 1;
  for (int d = 1; d * d <= pxy; ++d)
    if (pxy % d == 0) px = d;
  Px = px;
  Py = pxy / px;
}

/// Salt of the secondary (collision-guard) fingerprint kept per entry.
constexpr std::uint64_t kCheckSalt = 0xc011150ull * 0x9e3779b97f4a7c15ull;

}  // namespace

offset_t SymbolicState::payload_bytes() const {
  auto b = static_cast<offset_t>(2 * sizeof(std::uint64_t) + 3 * sizeof(int) +
                                 sizeof(offset_t));
  b += static_cast<offset_t>(pinv.size() * sizeof(index_t));
  if (tree)
    b += static_cast<offset_t>(tree->perm().size() * sizeof(index_t) +
                               tree->nodes().size() * sizeof(SepTreeNode));
  if (bs) {
    const int ns = bs->n_snodes();
    b += static_cast<offset_t>(bs->n()) * static_cast<offset_t>(sizeof(int));
    b += static_cast<offset_t>(ns + 1) * static_cast<offset_t>(sizeof(index_t));
    // Per supernode: parent id, flop/nnz stats, and the L-panel block row
    // lists (the fill structure — the bulk of the payload).
    b += static_cast<offset_t>(ns) *
         static_cast<offset_t>(sizeof(int) + 2 * sizeof(offset_t));
    for (int s = 0; s < ns; ++s)
      for (const PanelBlock& blk : bs->lpanel(s))
        b += static_cast<offset_t>(sizeof(int) +
                                   blk.rows.size() * sizeof(index_t));
  }
  if (part && bs)
    b += static_cast<offset_t>(bs->n_snodes()) *
         static_cast<offset_t>(2 * sizeof(int));
  return b;
}

/// One resident pattern: the migratable symbolic state plus the per-rank
/// numeric allocations and the permuted matrix with current values. Every
/// rank's Dist2dFactors points at the entry's own BlockStructure, so the
/// entry must outlive any simulated run using it.
struct SolverService::Resident {
  SymbolicState sym;
  std::unique_ptr<CsrMatrix> Ap;  ///< permuted matrix, current values
  std::vector<std::unique_ptr<Dist2dFactors>> per_rank;
  bool factored = false;  ///< per_rank holds valid factors of Ap's values
  std::uint64_t last_used = 0;
};

SolverService::SolverService(const ServiceOptions& options) : opt_(options) {
  SLU3D_CHECK(opt_.max_patterns >= 1, "need capacity for at least one pattern");
}

SolverService::~SolverService() = default;

std::uint64_t SolverService::fingerprint(const CsrMatrix& A) const {
  return opt_.fingerprint_fn ? opt_.fingerprint_fn(A) : pattern_fingerprint(A);
}

bool SolverService::has_pattern(std::uint64_t fingerprint) const {
  for (const auto& e : cache_)
    if (e->sym.key == fingerprint) return true;
  return false;
}

bool SolverService::activate(std::uint64_t fingerprint) {
  for (auto& e : cache_) {
    if (e->sym.key == fingerprint && e->factored) {
      e->last_used = ++use_clock_;
      current_ = e.get();
      return true;
    }
  }
  return false;
}

std::optional<SymbolicState> SolverService::extract_pattern(
    std::uint64_t fingerprint) {
  for (auto it = cache_.begin(); it != cache_.end(); ++it) {
    if ((*it)->sym.key == fingerprint) {
      if (it->get() == current_) current_ = nullptr;
      SymbolicState out = std::move((*it)->sym);
      cache_.erase(it);
      return out;
    }
  }
  return std::nullopt;
}

void SolverService::insert_pattern(SymbolicState&& state) {
  SLU3D_CHECK(state.tree && state.bs && state.part,
              "incomplete symbolic state");
  SLU3D_CHECK(state.Px >= 1 && state.Py >= 1 && state.Pz >= 1,
              "symbolic state carries no grid shape");
  auto op = std::make_unique<Resident>();
  op->sym = std::move(state);
  op->per_rank.resize(
      static_cast<std::size_t>(op->sym.Px * op->sym.Py * op->sym.Pz));
  op->last_used = ++use_clock_;
  cache_.push_back(std::move(op));
  evict_to_capacity();
}

SolverService::Resident* SolverService::find(std::uint64_t key,
                                             std::uint64_t check) {
  // Both fingerprints must match: a primary collision between distinct
  // patterns (find by key, mismatched salted check) is a miss, and the
  // colliding patterns coexist in the cache as separate entries.
  for (auto& e : cache_)
    if (e->sym.key == key && e->sym.check == check) return e.get();
  return nullptr;
}

void SolverService::evict_to_capacity() {
  while (cache_.size() > opt_.max_patterns) {
    std::size_t victim = 0;
    for (std::size_t i = 1; i < cache_.size(); ++i)
      if (cache_[i]->last_used < cache_[victim]->last_used) victim = i;
    if (cache_[victim].get() == current_) current_ = nullptr;
    cache_.erase(cache_.begin() + static_cast<std::ptrdiff_t>(victim));
    ++stats_.evictions;
  }
}

FactorReport SolverService::run_numeric_factorization(Resident& op) {
  const int P = op.sym.Px * op.sym.Py * op.sym.Pz;
  op.factored = false;  // invalid from here until the run completes
  std::vector<offset_t> mem(static_cast<std::size_t>(P), 0);
  const sim::RunResult res =
      sim::run_ranks(P, opt_.platform, [&](sim::Comm& world) {
        auto grid =
            sim::ProcessGrid3D::create(world, op.sym.Px, op.sym.Py, op.sym.Pz);
        auto& slot = op.per_rank[static_cast<std::size_t>(world.rank())];
        if (!slot) {
          slot = std::make_unique<Dist2dFactors>(
              make_3d_factors(*op.sym.bs, grid, *op.sym.part, *op.Ap));
        } else {
          refill_3d_factors(*slot, grid, *op.sym.part, *op.Ap);
        }
        mem[static_cast<std::size_t>(world.rank())] = slot->allocated_bytes();
        factorize_3d(*slot, grid, *op.sym.part, opt_.lu3d);
      });
  ++stats_.refactorizations;
  op.factored = true;

  FactorReport rep;
  const sim::RankStats* crit = &res.ranks.front();
  for (const auto& r : res.ranks) {
    rep.factor_time = std::max(rep.factor_time, r.clock);
    if (r.clock > crit->clock) crit = &r;
    rep.w_fact = std::max(
        rep.w_fact,
        r.bytes_received[static_cast<std::size_t>(sim::CommPlane::XY)]);
    rep.w_red = std::max(
        rep.w_red,
        r.bytes_received[static_cast<std::size_t>(sim::CommPlane::Z)]);
  }
  rep.t_scu =
      crit->compute_seconds[static_cast<int>(sim::ComputeKind::SchurUpdate)];
  rep.t_comm = crit->comm_seconds();
  for (offset_t m : mem) {
    rep.mem_total += m;
    rep.mem_max = std::max(rep.mem_max, m);
  }
  rep.flops = op.sym.flops;
  return rep;
}

FactorReport SolverService::factor(const CsrMatrix& A) {
  SLU3D_CHECK(A.n_rows() == A.n_cols(), "needs a square matrix");
  const std::uint64_t key = fingerprint(A);
  const std::uint64_t check = pattern_fingerprint(A, kCheckSalt);

  if (Resident* hit = find(key, check)) {
    // Resident pattern: no ordering, no symbolic analysis, no allocation —
    // re-scatter the new values and refactorize numerically in place.
    ++stats_.cache_hits;
    hit->Ap = std::make_unique<CsrMatrix>(
        A.permuted_symmetric(hit->sym.tree->perm()));
    hit->last_used = ++use_clock_;
    current_ = hit;
    FactorReport rep;
    try {
      rep = run_numeric_factorization(*hit);
    } catch (...) {
      // The resident numerics are now garbage; drop the entry so a retry
      // re-analyzes from scratch instead of solving on a broken factor.
      ++stats_.refactor_failures;
      cache_.erase(std::find_if(cache_.begin(), cache_.end(),
                                [&](const auto& e) { return e.get() == hit; }));
      current_ = nullptr;
      throw;
    }
    rep.cache_hit = true;
    return rep;
  }

  // Cache miss: full analysis (the expensive, pattern-only pipeline).
  ++stats_.analyses;
  auto op = std::make_unique<Resident>();
  op->sym.key = key;
  op->sym.check = check;
  pick_dims(opt_, A.n_rows(), op->sym.Px, op->sym.Py, op->sym.Pz);
  const int P = op->sym.Px * op->sym.Py * op->sym.Pz;

  double analysis_time = 0;
  double t_analysis = 0;
  offset_t w_analysis = 0, msg_analysis = 0;
  std::vector<sim::RankStats> analysis_stats;
  if (opt_.geometry.has_value()) {
    SLU3D_CHECK(opt_.geometry->n() == A.n_rows(), "geometry mismatch");
    op->sym.tree =
        std::make_unique<SeparatorTree>(geometric_nd(*opt_.geometry, opt_.nd));
  } else if (opt_.analysis != AnalysisMode::Host) {
    // The whole analysis (ordering + symbolic) runs inside the simulated
    // machine; its time and traffic count toward this factorization, and
    // the per-phase split is reported via t_analysis / w_analysis.
    std::mutex mu;
    const sim::RunResult ores =
        sim::run_ranks(P, opt_.platform, [&](sim::Comm& world) {
          AnalysisResult r = analyze_in_sim(A, world, opt_.nd, opt_.analysis);
          if (world.rank() == 0) {
            const std::lock_guard<std::mutex> lock(mu);
            op->sym.tree = std::move(r.tree);
            op->sym.bs = std::move(r.bs);
          }
        });
    analysis_time = ores.max_clock();
    t_analysis = ores.max_analysis_seconds();
    w_analysis = ores.max_analysis_bytes_received();
    msg_analysis = ores.total_analysis_messages_sent();
    analysis_stats = ores.ranks;
  } else {
    op->sym.tree =
        std::make_unique<SeparatorTree>(nested_dissection(A, opt_.nd));
  }
  if (!op->sym.bs)
    op->sym.bs = std::make_unique<BlockStructure>(A, *op->sym.tree);
  op->Ap =
      std::make_unique<CsrMatrix>(A.permuted_symmetric(op->sym.tree->perm()));
  op->sym.part =
      std::make_unique<ForestPartition>(*op->sym.bs, op->sym.Pz,
                                        opt_.partition);
  op->sym.flops = op->sym.bs->total_flops();
  op->sym.pinv = invert_permutation(op->sym.tree->perm());
  op->per_rank.resize(static_cast<std::size_t>(P));

  FactorReport rep;
  try {
    rep = run_numeric_factorization(*op);  // throws -> op dropped
  } catch (...) {
    ++stats_.refactor_failures;
    throw;
  }
  rep.factor_time += analysis_time;
  rep.t_analysis = t_analysis;
  rep.w_analysis = w_analysis;
  rep.msg_analysis = msg_analysis;
  stats_.analysis_seconds += t_analysis;
  stats_.analysis_bytes += w_analysis;
  stats_.analysis_messages += msg_analysis;
  for (const auto& r : analysis_stats) {
    rep.w_fact = std::max(
        rep.w_fact,
        r.bytes_received[static_cast<std::size_t>(sim::CommPlane::XY)]);
    rep.w_red = std::max(
        rep.w_red,
        r.bytes_received[static_cast<std::size_t>(sim::CommPlane::Z)]);
  }
  op->last_used = ++use_clock_;
  current_ = op.get();
  cache_.push_back(std::move(op));
  evict_to_capacity();
  return rep;
}

SolveReport SolverService::solve(const SolveRequest& request) {
  SLU3D_CHECK(current_ != nullptr, "no factored operator resident");
  return run_solves(*current_, std::span<const SolveRequest>(&request, 1))
      .front();
}

std::vector<SolveReport> SolverService::solve_stream(
    std::span<const SolveRequest> requests) {
  SLU3D_CHECK(current_ != nullptr, "no factored operator resident");
  return run_solves(*current_, requests);
}

std::vector<SolveReport> SolverService::run_solves(
    Resident& op, std::span<const SolveRequest> requests) {
  const auto k = requests.size();
  if (k == 0) return {};
  const auto n = static_cast<std::size_t>(op.sym.bs->n());
  const int P = op.sym.Px * op.sym.Py * op.sym.Pz;
  op.last_used = ++use_clock_;

  // Host-audited tag allocation: each request owns a contiguous tag range
  // of one solve plus its refinement re-solves; ranges are disjoint by
  // construction, so queued solves on the resident grid cannot collide.
  const int span_per_request =
      solve3d_tag_span(*op.sym.bs) * (1 + opt_.refinement_steps);

  // Permute each request's rhs panel once on the host (replicated input).
  std::vector<std::vector<real_t>> pb(k);
  for (std::size_t i = 0; i < k; ++i) {
    const SolveRequest& rq = requests[i];
    SLU3D_CHECK(rq.nrhs >= 1, "nrhs must be positive");
    const auto len = n * static_cast<std::size_t>(rq.nrhs);
    SLU3D_CHECK(rq.b.size() == len && rq.x.size() == len,
                "rhs panel size mismatch");
    pb[i].resize(len);
    for (index_t j = 0; j < rq.nrhs; ++j)
      for (std::size_t r = 0; r < n; ++r)
        pb[i][static_cast<std::size_t>(op.sym.pinv[r]) +
              static_cast<std::size_t>(j) * n] =
            rq.b[r + static_cast<std::size_t>(j) * n];
  }

  // Per-request, per-rank stat snapshots (deltas give the solve-phase
  // communication split of each request).
  std::vector<std::vector<sim::RankStats>> before(
      k, std::vector<sim::RankStats>(static_cast<std::size_t>(P)));
  auto after = before;
  std::vector<std::vector<real_t>> xperm(k);  // solved panels, permuted space

  sim::run_ranks(P, opt_.platform, [&](sim::Comm& world) {
    auto grid = sim::ProcessGrid3D::create(world, op.sym.Px, op.sym.Py, op.sym.Pz);
    Dist2dFactors& F = *op.per_rank[static_cast<std::size_t>(world.rank())];
    for (std::size_t i = 0; i < k; ++i) {
      const index_t nrhs = requests[i].nrhs;
      before[i][static_cast<std::size_t>(world.rank())] = world.stats();
      std::vector<real_t> xr(pb[i]);
      Solve3dOptions sopt;
      sopt.nrhs = nrhs;
      sopt.tag_base = opt_.solve_tag_base + static_cast<int>(i) * span_per_request;
      solve_3d(F, world, grid, *op.sym.part, xr, sopt);
      for (int it = 0; it < opt_.refinement_steps; ++it) {
        // Residual of the permuted system, column by column; the
        // correction panel re-solves in one batched sweep.
        std::vector<real_t> dx(xr.size());
        for (index_t j = 0; j < nrhs; ++j) {
          const auto off = static_cast<std::size_t>(j) * n;
          op.Ap->spmv(std::span<const real_t>(xr).subspan(off, n),
                      std::span<real_t>(dx).subspan(off, n));
        }
        for (std::size_t q = 0; q < dx.size(); ++q) dx[q] = pb[i][q] - dx[q];
        sopt.tag_base += solve3d_tag_span(*op.sym.bs);
        solve_3d(F, world, grid, *op.sym.part, dx, sopt);
        for (std::size_t q = 0; q < xr.size(); ++q) xr[q] += dx[q];
      }
      after[i][static_cast<std::size_t>(world.rank())] = world.stats();
      if (world.rank() == 0) xperm[i] = std::move(xr);
    }
  });

  std::vector<SolveReport> reports(k);
  for (std::size_t i = 0; i < k; ++i) {
    const SolveRequest& rq = requests[i];
    SolveReport& rep = reports[i];
    for (int r = 0; r < P; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      const sim::RankStats &a = after[i][ri], &b = before[i][ri];
      constexpr auto xy = static_cast<std::size_t>(sim::CommPlane::XY);
      constexpr auto z = static_cast<std::size_t>(sim::CommPlane::Z);
      rep.solve_time = std::max(rep.solve_time, a.clock - b.clock);
      rep.w_solve_xy = std::max(rep.w_solve_xy,
                                a.bytes_received[xy] - b.bytes_received[xy]);
      rep.w_solve_z =
          std::max(rep.w_solve_z, a.bytes_received[z] - b.bytes_received[z]);
      rep.msg_solve_xy += a.messages_sent[xy] - b.messages_sent[xy];
      rep.msg_solve_z += a.messages_sent[z] - b.messages_sent[z];
    }
    // Unpermute the solution panel and report the worst per-column
    // relative residual (inf-norm based, so invariant under the symmetric
    // permutation: measuring against Ap equals measuring against A).
    for (index_t j = 0; j < rq.nrhs; ++j) {
      const auto off = static_cast<std::size_t>(j) * n;
      for (std::size_t r = 0; r < n; ++r)
        rq.x[r + off] = xperm[i][static_cast<std::size_t>(op.sym.pinv[r]) + off];
      rep.residual = std::max(
          rep.residual,
          relative_residual(
              *op.Ap, std::span<const real_t>(xperm[i]).subspan(off, n),
              std::span<const real_t>(pb[i]).subspan(off, n)));
    }
    ++stats_.solve_requests;
    stats_.rhs_columns += rq.nrhs;
  }
  return reports;
}

}  // namespace slu3d::service
