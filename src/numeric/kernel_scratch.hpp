// Per-rank scratch arena for the dense kernel substrate and the
// factorization drivers. The simulated MPI runtime runs each rank on its
// own std::thread, so the thread-local instance returned by per_rank() is
// exactly "one arena per rank": the GEMM pack buffers and the supernode
// staging buffers are allocated once per rank and reused across every
// supernode, instead of growing fresh std::vectors on the hot path.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "support/types.hpp"

namespace slu3d {
namespace dense {

/// Cache-line aligned, grow-only buffer of real_t.
class AlignedBuffer {
 public:
  /// Returns a pointer to at least `elems` elements, 64-byte aligned.
  /// Contents are unspecified; growing invalidates previous pointers.
  real_t* acquire(std::size_t elems);

  std::size_t capacity() const { return cap_; }

 private:
  struct Free {
    void operator()(void* p) const;
  };
  std::unique_ptr<real_t[], Free> buf_;
  std::size_t cap_ = 0;
};

/// Scratch arena: two aligned pack buffers (A and B panels of the blocked
/// GEMM), a real_t staging buffer (Schur-update blocks before scatter-add)
/// and an index staging buffer (row-position translation). All buffers are
/// grow-only; a span returned by stage()/index_stage() stays valid until
/// the next call to the same method on the same arena. The pack buffers
/// are private to the GEMM driver, so kernel calls never clobber a live
/// staging span.
class KernelScratch {
 public:
  real_t* pack_a(std::size_t elems) { return a_.acquire(elems); }
  real_t* pack_b(std::size_t elems) { return b_.acquire(elems); }

  /// `n` zero-initialized elements (the GEMM accumulation target).
  std::span<real_t> stage_zero(std::size_t n) {
    stage_.assign(n, 0.0);
    return stage_;
  }

  std::span<index_t> index_stage(std::size_t n) {
    idx_.assign(n, 0);
    return idx_;
  }

  /// Borrows an empty real_t buffer from the per-rank pool, retaining the
  /// capacity of earlier uses — the factorization drivers back their
  /// panel-stash storage with these instead of allocating per supernode.
  /// Hand the buffer back with recycle() once its payload is consumed.
  std::vector<real_t> borrow() {
    if (pool_.empty()) return {};
    std::vector<real_t> v = std::move(pool_.back());
    pool_.pop_back();
    v.clear();
    return v;
  }
  void recycle(std::vector<real_t>&& v) { pool_.push_back(std::move(v)); }

  /// This thread's (= this simulated rank's) arena.
  static KernelScratch& per_rank();

 private:
  AlignedBuffer a_, b_;
  std::vector<real_t> stage_;
  std::vector<index_t> idx_;
  std::vector<std::vector<real_t>> pool_;
};

}  // namespace dense
}  // namespace slu3d
