// Per-rank scratch arena for the dense kernel substrate and the
// factorization drivers. The simulated MPI runtime runs each rank on its
// own std::thread, so the thread-local instance returned by per_rank() is
// exactly "one arena per rank": the GEMM pack buffers and the supernode
// staging buffers are allocated once per rank and reused across every
// supernode, instead of growing fresh std::vectors on the hot path.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "support/types.hpp"
#include "threads/thread_pool.hpp"

namespace slu3d {
namespace dense {

/// Cache-line aligned, grow-only buffer of real_t.
class AlignedBuffer {
 public:
  /// Returns a pointer to at least `elems` elements, 64-byte aligned.
  /// Contents are unspecified; growing invalidates previous pointers.
  real_t* acquire(std::size_t elems);

  std::size_t capacity() const { return cap_; }

 private:
  struct Free {
    void operator()(void* p) const;
  };
  std::unique_ptr<real_t[], Free> buf_;
  std::size_t cap_ = 0;
};

/// Scratch arena: two aligned pack buffers (A and B panels of the blocked
/// GEMM), a real_t staging buffer (Schur-update blocks before scatter-add)
/// and an index staging buffer (row-position translation). All buffers are
/// grow-only; a span returned by stage()/index_stage() stays valid until
/// the next call to the same method on the same arena. The pack buffers
/// are private to the GEMM driver, so kernel calls never clobber a live
/// staging span.
class KernelScratch {
 public:
  real_t* pack_a(std::size_t elems) {
    assert_no_worker_growth(elems, a_.capacity());
    return a_.acquire(elems);
  }
  real_t* pack_b(std::size_t elems) {
    assert_no_worker_growth(elems, b_.capacity());
    return b_.acquire(elems);
  }

  /// Grows the pack buffers to at least the given capacities now — called
  /// once per worker thread at pool construction (ParallelKernels), so the
  /// serial GEMMs a worker runs inside a Schur pair never allocate on the
  /// hot path. The bounds for any worker-side (serial, per-MC-block) GEMM
  /// are kWorkerPackA/kWorkerPackB in dense_kernels.hpp.
  void ensure_pack_capacity(std::size_t a_elems, std::size_t b_elems) {
    (void)a_.acquire(a_elems);
    (void)b_.acquire(b_elems);
  }
  std::size_t pack_a_capacity() const { return a_.capacity(); }
  std::size_t pack_b_capacity() const { return b_.capacity(); }

  /// `n` zero-initialized elements (the GEMM accumulation target).
  std::span<real_t> stage_zero(std::size_t n) {
    stage_.assign(n, 0.0);
    return stage_;
  }

  std::span<index_t> index_stage(std::size_t n) {
    idx_.assign(n, 0);
    return idx_;
  }

  /// Borrows an empty real_t buffer from the per-rank pool, retaining the
  /// capacity of earlier uses — the factorization drivers back their
  /// panel-stash storage with these instead of allocating per supernode.
  /// Hand the buffer back with recycle() once its payload is consumed.
  std::vector<real_t> borrow() {
    if (pool_.empty()) return {};
    std::vector<real_t> v = std::move(pool_.back());
    pool_.pop_back();
    v.clear();
    return v;
  }
  void recycle(std::vector<real_t>&& v) { pool_.push_back(std::move(v)); }

  /// This thread's (= this simulated rank's) arena.
  static KernelScratch& per_rank();

 private:
  /// A pool worker's arena was sized once at pool construction; a growth
  /// request past that on a worker means a kernel escaped its documented
  /// per-task bounds — fail loudly instead of reallocating mid-region.
  static void assert_no_worker_growth(std::size_t elems, std::size_t cap) {
    SLU3D_CHECK(elems <= cap || !threads::ThreadPool::in_worker(),
                "worker-side pack buffer growth: KernelScratch is presized at "
                "pool construction (kWorkerPackA/kWorkerPackB); a worker task "
                "asked for more");
  }

  AlignedBuffer a_, b_;
  std::vector<real_t> stage_;
  std::vector<index_t> idx_;
  std::vector<std::vector<real_t>> pool_;
};

/// RAII bundle tying a rank thread to its compute pool: owns the
/// ThreadPool, installs it as the ambient pool (PoolScope) so the dense
/// kernels and the pipeline engine pick it up, presizes every worker's
/// thread-local KernelScratch pack buffers, and at destruction folds the
/// workers' side-channel flop count back into this thread's performed-flop
/// counter (keeping charged == performed for the model audit).
class ParallelKernels {
 public:
  /// `threads` >= 1 participants (caller + granted workers).
  explicit ParallelKernels(int threads);
  ~ParallelKernels();
  ParallelKernels(const ParallelKernels&) = delete;
  ParallelKernels& operator=(const ParallelKernels&) = delete;

  threads::ThreadPool& pool() { return pool_; }

  /// The calling thread's cached instance, (re)created when `threads`
  /// differs from the cached request — so every PanelEngine a rank runs
  /// (one per 3D level) reuses one pool instead of respawning workers.
  /// Lives until the thread exits.
  static ParallelKernels& rank_local(int threads);
  /// rank_local(threads), but only when no ambient pool is installed yet —
  /// entry points that may run under an engine's pool use this.
  static void ensure_rank_local(int threads);

 private:
  threads::ThreadPool pool_;
  threads::PoolScope scope_;
};

}  // namespace dense
}  // namespace slu3d
