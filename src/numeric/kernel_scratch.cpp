#include "numeric/kernel_scratch.hpp"

#include <cstdlib>
#include <new>

namespace slu3d {
namespace dense {

namespace {
constexpr std::size_t kAlign = 64;
}

void AlignedBuffer::Free::operator()(void* p) const { std::free(p); }

real_t* AlignedBuffer::acquire(std::size_t elems) {
  if (elems > cap_) {
    // Grow geometrically so repeated slightly-larger requests settle fast.
    std::size_t want = cap_ + cap_ / 2;
    if (want < elems) want = elems;
    std::size_t bytes = want * sizeof(real_t);
    bytes = (bytes + kAlign - 1) / kAlign * kAlign;
    void* p = std::aligned_alloc(kAlign, bytes);
    if (p == nullptr) throw std::bad_alloc();
    buf_.reset(static_cast<real_t*>(p));
    cap_ = bytes / sizeof(real_t);
  }
  return buf_.get();
}

KernelScratch& KernelScratch::per_rank() {
  thread_local KernelScratch arena;
  return arena;
}

}  // namespace dense
}  // namespace slu3d
