#include "numeric/kernel_scratch.hpp"

#include <cstdlib>
#include <memory>
#include <new>

#include "numeric/dense_kernels.hpp"

namespace slu3d {
namespace dense {

namespace {
constexpr std::size_t kAlign = 64;
}

void AlignedBuffer::Free::operator()(void* p) const { std::free(p); }

real_t* AlignedBuffer::acquire(std::size_t elems) {
  if (elems > cap_) {
    // Grow geometrically so repeated slightly-larger requests settle fast.
    std::size_t want = cap_ + cap_ / 2;
    if (want < elems) want = elems;
    std::size_t bytes = want * sizeof(real_t);
    bytes = (bytes + kAlign - 1) / kAlign * kAlign;
    void* p = std::aligned_alloc(kAlign, bytes);
    if (p == nullptr) throw std::bad_alloc();
    buf_.reset(static_cast<real_t*>(p));
    cap_ = bytes / sizeof(real_t);
  }
  return buf_.get();
}

KernelScratch& KernelScratch::per_rank() {
  thread_local KernelScratch arena;
  return arena;
}

// ---- ParallelKernels ----------------------------------------------------

ParallelKernels::ParallelKernels(int threads)
    : pool_(threads), scope_(&pool_) {
  // Size every participant's thread-local arena for the serial GEMMs that
  // run inside worker tasks, on the thread that owns it — after this, no
  // worker grows a pack buffer on the hot path (KernelScratch asserts so).
  pool_.for_each_slot([](int) {
    KernelScratch::per_rank().ensure_pack_capacity(kWorkerPackA, kWorkerPackB);
  });
}

ParallelKernels::~ParallelKernels() {
  note_flops_performed(pool_.take_accumulated());
}

namespace {
thread_local std::unique_ptr<ParallelKernels> t_rank_kernels;
}

ParallelKernels& ParallelKernels::rank_local(int threads) {
  if (!t_rank_kernels || t_rank_kernels->pool().requested() != threads) {
    t_rank_kernels.reset();  // release budget/scope before re-acquiring
    t_rank_kernels = std::make_unique<ParallelKernels>(threads);
  }
  return *t_rank_kernels;
}

void ParallelKernels::ensure_rank_local(int threads) {
  if (threads::current_pool() == nullptr && !threads::ThreadPool::in_worker())
    (void)rank_local(threads);
}

}  // namespace dense
}  // namespace slu3d
