#include "numeric/seq_lu.hpp"

#include <numeric>
#include <utility>
#include <vector>

#include "numeric/dense_kernels.hpp"
#include "numeric/kernel_scratch.hpp"
#include "numeric/schur.hpp"
#include "support/check.hpp"
#include "threads/thread_pool.hpp"

namespace slu3d {

namespace {

/// Factor one supernode's diagonal + panels and apply its Schur update.
/// The Schur staging block comes from the per-rank scratch arena and the
/// pair work list is reused across supernodes, so the loop performs no
/// per-supernode allocation once the arena has warmed up.
void eliminate_snode(SupernodalMatrix& F, int s,
                     std::vector<std::pair<int, int>>& pairs) {
  const BlockStructure& bs = F.structure();
  const index_t ns = bs.snode_size(s);
  if (ns == 0) return;  // empty separator block
  const auto m = static_cast<index_t>(F.panel_rows(s).size());

  // 1. Diagonal factorization.
  dense::getrf_nopiv(ns, F.diag(s).data(), ns);

  if (m == 0) return;

  // 2. Panel solves.
  dense::trsm_right_upper(ns, m, F.diag(s).data(), ns, F.lpanel(s).data(), m);
  dense::trsm_left_lower_unit(ns, m, F.diag(s).data(), ns, F.upanel(s).data(), ns);

  // 3. Schur-complement update, block pair by block pair. The pairs are
  // flattened and fanned out across the ambient thread pool: each (bi, bj)
  // pair scatters into a distinct target block, so the partitions are
  // disjoint and the result is bitwise identical to the serial sweep.
  const auto panel = bs.lpanel(s);
  pairs.clear();
  for (int i = 0; i < static_cast<int>(panel.size()); ++i)
    for (int j = 0; j < static_cast<int>(panel.size()); ++j)
      pairs.push_back({i, j});
  threads::parallel_for(
      static_cast<std::ptrdiff_t>(pairs.size()), [&](std::ptrdiff_t t, int) {
        const auto [i, j] = pairs[static_cast<std::size_t>(t)];
        const PanelBlock& bi = panel[static_cast<std::size_t>(i)];
        const PanelBlock& bj = panel[static_cast<std::size_t>(j)];
        const auto [oi, mi] = F.block_range(s, bi.snode);
        const auto [oj, mj] = F.block_range(s, bj.snode);
        // V = -(L block) * (U block), then scatter-add.
        auto scratch = dense::KernelScratch::per_rank().stage_zero(
            static_cast<std::size_t>(mi) * static_cast<std::size_t>(mj));
        dense::gemm_minus(mi, mj, ns, F.lpanel(s).data() + oi, m,
                          F.upanel(s).data() +
                              static_cast<std::size_t>(oj) *
                                  static_cast<std::size_t>(ns),
                          ns, scratch.data(), mi);
        schur_scatter_add(F, bi.snode, bj.snode, bi.rows, bj.rows, scratch);
      });
}

}  // namespace

void factorize_sequential(SupernodalMatrix& F) {
  std::vector<int> all(static_cast<std::size_t>(F.structure().n_snodes()));
  std::iota(all.begin(), all.end(), 0);
  factorize_snodes_sequential(F, all);
}

void factorize_snodes_sequential(SupernodalMatrix& F, std::span<const int> snodes) {
  // Attach the ambient compute pool unless a caller (e.g. the pipeline
  // engine, whose schur_pair tasks reach eliminate_leading_block) already
  // installed one or we are the pool ourselves.
  dense::ParallelKernels::ensure_rank_local(threads::resolve_threads(0));
  std::vector<std::pair<int, int>> pairs;
  for (int s : snodes) {
    SLU3D_CHECK(F.has_snode(s) || F.structure().snode_size(s) == 0,
                "supernode not allocated");
    eliminate_snode(F, s, pairs);
  }
}

void solve_factored(const SupernodalMatrix& F, std::span<real_t> x) {
  const BlockStructure& bs = F.structure();
  SLU3D_CHECK(x.size() == static_cast<std::size_t>(bs.n()), "x size");

  // Forward substitution L y = b.
  for (int s = 0; s < bs.n_snodes(); ++s) {
    const index_t ns = bs.snode_size(s);
    if (ns == 0) continue;
    const index_t f = bs.first_col(s);
    real_t* xs = x.data() + f;
    dense::trsv_lower_unit(ns, F.diag(s).data(), ns, xs);
    const auto rows = F.panel_rows(s);
    const auto lp = F.lpanel(s);
    const auto m = static_cast<index_t>(rows.size());
    for (index_t c = 0; c < ns; ++c) {
      const real_t xc = xs[c];
      if (xc == 0.0) continue;
      for (index_t r = 0; r < m; ++r)
        x[static_cast<std::size_t>(rows[static_cast<std::size_t>(r)])] -=
            lp[static_cast<std::size_t>(r + c * m)] * xc;
    }
  }

  // Backward substitution U x = y.
  for (int s = bs.n_snodes() - 1; s >= 0; --s) {
    const index_t ns = bs.snode_size(s);
    if (ns == 0) continue;
    const index_t f = bs.first_col(s);
    real_t* xs = x.data() + f;
    const auto cols = F.panel_rows(s);
    const auto up = F.upanel(s);
    for (std::size_t c = 0; c < cols.size(); ++c) {
      const real_t xc = x[static_cast<std::size_t>(cols[c])];
      if (xc == 0.0) continue;
      for (index_t r = 0; r < ns; ++r)
        xs[r] -= up[static_cast<std::size_t>(r) + c * static_cast<std::size_t>(ns)] * xc;
    }
    dense::trsv_upper(ns, F.diag(s).data(), ns, xs);
  }
}

void solve_factored_transpose(const SupernodalMatrix& F, std::span<real_t> x) {
  const BlockStructure& bs = F.structure();
  SLU3D_CHECK(x.size() == static_cast<std::size_t>(bs.n()), "x size");

  // Forward: Uᵀ y = b (Uᵀ is lower triangular; the U panel acts
  // transposed, pushing contributions to its column set).
  for (int s = 0; s < bs.n_snodes(); ++s) {
    const index_t ns = bs.snode_size(s);
    if (ns == 0) continue;
    const index_t f = bs.first_col(s);
    real_t* xs = x.data() + f;
    dense::trsv_upper_trans(ns, F.diag(s).data(), ns, xs);
    const auto cols = F.panel_rows(s);
    const auto up = F.upanel(s);
    for (std::size_t c = 0; c < cols.size(); ++c) {
      real_t acc = 0.0;
      for (index_t r = 0; r < ns; ++r)
        acc += up[static_cast<std::size_t>(r) + c * static_cast<std::size_t>(ns)] * xs[r];
      x[static_cast<std::size_t>(cols[c])] -= acc;
    }
  }

  // Backward: Lᵀ x = y (Lᵀ is unit upper; the L panel acts transposed,
  // pulling contributions from its row set).
  for (int s = bs.n_snodes() - 1; s >= 0; --s) {
    const index_t ns = bs.snode_size(s);
    if (ns == 0) continue;
    const index_t f = bs.first_col(s);
    real_t* xs = x.data() + f;
    const auto rows = F.panel_rows(s);
    const auto lp = F.lpanel(s);
    const auto m = static_cast<index_t>(rows.size());
    for (index_t c = 0; c < ns; ++c) {
      real_t acc = 0.0;
      for (index_t r = 0; r < m; ++r)
        acc += lp[static_cast<std::size_t>(r + c * m)] *
               x[static_cast<std::size_t>(rows[static_cast<std::size_t>(r)])];
      xs[c] -= acc;
    }
    dense::trsv_lower_unit_trans(ns, F.diag(s).data(), ns, xs);
  }
}

void solve_factored_multi(const SupernodalMatrix& F, std::span<real_t> x,
                          index_t nrhs) {
  const BlockStructure& bs = F.structure();
  const index_t n = bs.n();
  SLU3D_CHECK(nrhs >= 1, "need at least one rhs");
  SLU3D_CHECK(x.size() == static_cast<std::size_t>(n) * static_cast<std::size_t>(nrhs),
              "X extent mismatch");

  // Forward substitution on all columns.
  for (int s = 0; s < bs.n_snodes(); ++s) {
    const index_t ns = bs.snode_size(s);
    if (ns == 0) continue;
    const index_t f = bs.first_col(s);
    // X(f:f+ns, :) <- L_ss^{-1} X(f:f+ns, :)
    dense::trsm_left_lower_unit(ns, nrhs, F.diag(s).data(), ns, x.data() + f, n);
    const auto rows = F.panel_rows(s);
    const auto lp = F.lpanel(s);
    const auto m = static_cast<index_t>(rows.size());
    for (index_t k = 0; k < nrhs; ++k) {
      real_t* xc = x.data() + static_cast<std::size_t>(k) * static_cast<std::size_t>(n);
      for (index_t c = 0; c < ns; ++c) {
        const real_t v = xc[f + c];
        if (v == 0.0) continue;
        for (index_t r = 0; r < m; ++r)
          xc[rows[static_cast<std::size_t>(r)]] -=
              lp[static_cast<std::size_t>(r + c * m)] * v;
      }
    }
  }

  // Backward substitution on all columns.
  for (int s = bs.n_snodes() - 1; s >= 0; --s) {
    const index_t ns = bs.snode_size(s);
    if (ns == 0) continue;
    const index_t f = bs.first_col(s);
    const auto cols = F.panel_rows(s);
    const auto up = F.upanel(s);
    for (index_t k = 0; k < nrhs; ++k) {
      real_t* xc = x.data() + static_cast<std::size_t>(k) * static_cast<std::size_t>(n);
      for (std::size_t c = 0; c < cols.size(); ++c) {
        const real_t v = xc[cols[c]];
        if (v == 0.0) continue;
        for (index_t r = 0; r < ns; ++r)
          xc[f + r] -= up[static_cast<std::size_t>(r) + c * static_cast<std::size_t>(ns)] * v;
      }
    }
    // X(f:f+ns, :) <- U_ss^{-1} X(f:f+ns, :): column-by-column trsv to
    // reuse the single-vector kernel on the strided layout.
    for (index_t k = 0; k < nrhs; ++k)
      dense::trsv_upper(ns, F.diag(s).data(), ns,
                        x.data() + static_cast<std::size_t>(k) * static_cast<std::size_t>(n) + f);
  }
}

}  // namespace slu3d
