// 1-norm condition-number estimation (Hager's algorithm, as LAPACK's
// *gecon uses): estimates ||A^{-1}||_1 from a handful of solves with A and
// Aᵀ, then kappa_1(A) ~ ||A||_1 * ||A^{-1}||_1. SuperLU_DIST exposes the
// same estimate so users can judge how far static pivoting can be trusted.
#pragma once

#include <functional>

#include "sparse/csr.hpp"

namespace slu3d {

/// Estimates ||A^{-1}||_1 given callbacks that solve A x = b and Aᵀ x = b
/// (overwriting the argument in place). `n` is the dimension.
real_t estimate_inverse_norm1(
    index_t n, const std::function<void(std::span<real_t>)>& solve,
    const std::function<void(std::span<real_t>)>& solve_transpose,
    int max_iterations = 5);

/// ||A||_1 (max absolute column sum).
real_t norm1(const CsrMatrix& A);

}  // namespace slu3d
