// Reference (pre-substrate) dense kernels: the original unblocked
// triple-loop implementations, kept as the test oracle for the blocked
// substrate and as the zero-skipping variants available to sparse-scatter
// callers. Not used on the dense factorization hot path.
#include <cmath>

#include "numeric/dense_kernels.hpp"
#include "support/check.hpp"

namespace slu3d {
namespace dense {
namespace ref {

namespace {
constexpr index_t kBlock = 48;  // historical register/cache blocking factor
}

void getrf_nopiv(index_t n, real_t* a, index_t lda, real_t tiny) {
  // Right-looking blocked LU without pivoting.
  for (index_t k0 = 0; k0 < n; k0 += kBlock) {
    const index_t kb = std::min(kBlock, n - k0);
    // Factor the diagonal panel a[k0:, k0:k0+kb] unblocked.
    for (index_t k = k0; k < k0 + kb; ++k) {
      const real_t piv = a[k + k * lda];
      SLU3D_CHECK(std::abs(piv) > tiny, "zero pivot in static-pivot LU");
      const real_t inv = 1.0 / piv;
      for (index_t i = k + 1; i < n; ++i) a[i + k * lda] *= inv;
      const index_t jend = std::min(n, k0 + kb);
      for (index_t j = k + 1; j < jend; ++j) {
        const real_t ujk = a[k + j * lda];
        if (ujk == 0.0) continue;
        for (index_t i = k + 1; i < n; ++i)
          a[i + j * lda] -= a[i + k * lda] * ujk;
      }
    }
    const index_t rest = k0 + kb;
    if (rest >= n) break;
    // U block row: solve L11 * U12 = A12.
    trsm_left_lower_unit(kb, n - rest, a + k0 + k0 * lda, lda,
                         a + k0 + rest * lda, lda);
    // Trailing update: A22 -= L21 * U12.
    gemm_minus(n - rest, n - rest, kb, a + rest + k0 * lda, lda,
               a + k0 + rest * lda, lda, a + rest + rest * lda, lda);
  }
}

void trsm_left_lower_unit(index_t n, index_t m, const real_t* a, index_t lda,
                          real_t* b, index_t ldb) {
  for (index_t j = 0; j < m; ++j) {
    real_t* bj = b + j * ldb;
    for (index_t k = 0; k < n; ++k) {
      const real_t bk = bj[k];
      if (bk == 0.0) continue;
      const real_t* ak = a + k * lda;
      for (index_t i = k + 1; i < n; ++i) bj[i] -= ak[i] * bk;
    }
  }
}

void trsm_right_upper(index_t n, index_t m, const real_t* a, index_t lda,
                      real_t* b, index_t ldb) {
  // Solve X U = B column-by-column of U: X(:,k) = (B(:,k) - X(:,<k) U(<k,k)) / U(k,k).
  for (index_t k = 0; k < n; ++k) {
    const real_t* uk = a + k * lda;
    real_t* bk = b + k * ldb;
    for (index_t c = 0; c < k; ++c) {
      const real_t ukc = uk[c];
      if (ukc == 0.0) continue;
      const real_t* bc = b + c * ldb;
      for (index_t i = 0; i < m; ++i) bk[i] -= bc[i] * ukc;
    }
    const real_t inv = 1.0 / uk[k];
    for (index_t i = 0; i < m; ++i) bk[i] *= inv;
  }
}

void gemm_minus(index_t m, index_t n, index_t k, const real_t* a, index_t lda,
                const real_t* b, index_t ldb, real_t* c, index_t ldc) {
  // jki loop order: stream down columns of C and A (column-major friendly).
  for (index_t j = 0; j < n; ++j) {
    real_t* cj = c + j * ldc;
    const real_t* bj = b + j * ldb;
    for (index_t p = 0; p < k; ++p) {
      const real_t bpj = bj[p];
      if (bpj == 0.0) continue;
      const real_t* ap = a + p * lda;
      for (index_t i = 0; i < m; ++i) cj[i] -= ap[i] * bpj;
    }
  }
}

void potrf_lower(index_t n, real_t* a, index_t lda) {
  for (index_t k = 0; k < n; ++k) {
    real_t akk = a[k + k * lda];
    for (index_t p = 0; p < k; ++p) akk -= a[k + p * lda] * a[k + p * lda];
    SLU3D_CHECK(akk > 0.0, "matrix is not positive definite");
    const real_t lkk = std::sqrt(akk);
    a[k + k * lda] = lkk;
    const real_t inv = 1.0 / lkk;
    for (index_t i = k + 1; i < n; ++i) {
      real_t v = a[i + k * lda];
      for (index_t p = 0; p < k; ++p) v -= a[i + p * lda] * a[k + p * lda];
      a[i + k * lda] = v * inv;
    }
  }
}

void trsm_right_lower_trans(index_t n, index_t m, const real_t* a, index_t lda,
                            real_t* b, index_t ldb) {
  // Solve X L^T = B column-by-column of X: X(:,k) needs X(:,<k).
  for (index_t k = 0; k < n; ++k) {
    real_t* bk = b + k * ldb;
    for (index_t c = 0; c < k; ++c) {
      const real_t lkc = a[k + c * lda];  // (L^T)(c, k)
      if (lkc == 0.0) continue;
      const real_t* bc = b + c * ldb;
      for (index_t i = 0; i < m; ++i) bk[i] -= bc[i] * lkc;
    }
    const real_t inv = 1.0 / a[k + k * lda];
    for (index_t i = 0; i < m; ++i) bk[i] *= inv;
  }
}

void gemm_minus_nt(index_t m, index_t n, index_t k, const real_t* a,
                   index_t lda, const real_t* b, index_t ldb, real_t* c,
                   index_t ldc) {
  for (index_t j = 0; j < n; ++j) {
    real_t* cj = c + j * ldc;
    for (index_t p = 0; p < k; ++p) {
      const real_t bjp = b[j + p * ldb];  // B^T(p, j)
      if (bjp == 0.0) continue;
      const real_t* ap = a + p * lda;
      for (index_t i = 0; i < m; ++i) cj[i] -= ap[i] * bjp;
    }
  }
}

}  // namespace ref
}  // namespace dense
}  // namespace slu3d
