// Binary serialization of matrices, separator trees, and numeric factors,
// so a factorization can be computed once and reused across processes /
// sessions (the "save the preconditioner" workflow). The format is a
// simple tagged little-endian stream; files are not portable across
// architectures with different endianness.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>

#include "numeric/supernodal_matrix.hpp"
#include "order/separator_tree.hpp"
#include "sparse/csr.hpp"

namespace slu3d {

/// Hash of the sparsity *pattern* only (dimensions, row pointers, column
/// indices — never values). Two matrices with identical patterns but
/// different values hash equal, so the hash can key caches of
/// pattern-derived artifacts (orderings, symbolic structures, resident
/// factor layouts) across repeated solves.
std::uint64_t pattern_fingerprint(const CsrMatrix& A);

/// Salted variant of pattern_fingerprint: the same mix over the same
/// pattern data, but seeded with `salt` so the stream is statistically
/// independent of the unsalted hash. Caches that must survive a primary
/// fingerprint collision (distinct patterns, equal hash) keep a salted
/// secondary per entry and require both to match.
std::uint64_t pattern_fingerprint(const CsrMatrix& A, std::uint64_t salt);

/// Cheap structural fingerprint of a BlockStructure (supernode sizes and
/// panel row counts); ties a factor file or resident layout to the
/// structure it was built from.
std::uint64_t structure_fingerprint(const BlockStructure& bs);

void write_csr_binary(std::ostream& os, const CsrMatrix& A);
CsrMatrix read_csr_binary(std::istream& is);

void write_tree_binary(std::ostream& os, const SeparatorTree& tree);
SeparatorTree read_tree_binary(std::istream& is);

/// Writes the numeric content of `F` (diagonal blocks and panels). The
/// reader reconstructs against a BlockStructure built from the same matrix
/// pattern and tree; a structure fingerprint is checked on load.
void write_factors_binary(std::ostream& os, const SupernodalMatrix& F);
SupernodalMatrix read_factors_binary(std::istream& is, const BlockStructure& bs);

// Convenience file wrappers.
void save_factorization(const std::string& path, const SeparatorTree& tree,
                        const SupernodalMatrix& F);
/// Loads tree + factors; `A` must be the same matrix the factorization was
/// computed from (its pattern rebuilds the block structure).
std::pair<SeparatorTree, SupernodalMatrix> load_factorization(
    const std::string& path, const CsrMatrix& A,
    std::unique_ptr<BlockStructure>* bs_out);

}  // namespace slu3d
