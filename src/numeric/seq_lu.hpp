// Sequential right-looking supernodal LU factorization — the single-process
// reference implementation every distributed variant is validated against,
// and the per-supernode kernel sequence (§II-C/E):
//   1. diagonal factorization   A_ss -> L_ss U_ss
//   2. panel solves             L_:s = A_:s U_ss^{-1},  U_s: = L_ss^{-1} A_s:
//   3. Schur-complement update  A_ij -= L_is U_sj
#pragma once

#include <span>

#include "numeric/supernodal_matrix.hpp"

namespace slu3d {

/// Factorizes F in place (F must hold the permuted matrix values, fully
/// allocated). After the call, diag blocks hold L_ss \ U_ss, panels hold
/// the L and U factors.
void factorize_sequential(SupernodalMatrix& F);

/// Factorizes only the supernodes listed in `snodes` (ascending), applying
/// their Schur updates to every allocated target. This is the "dSparseLU2D
/// restricted to a node list" primitive of Algorithm 1, in sequential form;
/// used by tests that replay the 3D schedule without a process grid.
void factorize_snodes_sequential(SupernodalMatrix& F, std::span<const int> snodes);

/// Solves L U x = b in the permuted index space, overwriting x (b on
/// entry). F must contain a completed factorization.
void solve_factored(const SupernodalMatrix& F, std::span<real_t> x);

/// Solves (L U)ᵀ x = b, i.e. Uᵀ y = b then Lᵀ x = y — the transpose
/// solve needed by the 1-norm condition estimator and Aᵀ x = b users.
void solve_factored_transpose(const SupernodalMatrix& F, std::span<real_t> x);

/// Blocked multi-right-hand-side solve: X is n x nrhs column-major, each
/// column a right-hand side on entry and a solution on exit. Panels are
/// applied to all columns at once (TRSM/GEMM-shaped inner loops), which is
/// how production solvers amortize the factor traversal over many RHS.
void solve_factored_multi(const SupernodalMatrix& F, std::span<real_t> x,
                          index_t nrhs);

}  // namespace slu3d
