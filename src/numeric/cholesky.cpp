#include "numeric/cholesky.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/dense_kernels.hpp"
#include "numeric/kernel_scratch.hpp"
#include "numeric/schur.hpp"
#include "support/check.hpp"

namespace slu3d {

CholeskyFactors::CholeskyFactors(const BlockStructure& bs) : bs_(&bs) {
  const auto nsn = static_cast<std::size_t>(bs.n_snodes());
  diag_.resize(nsn);
  lpan_.resize(nsn);
  rows_.resize(nsn);
  block_offsets_.resize(nsn);
  for (int s = 0; s < bs.n_snodes(); ++s) {
    const auto ns = static_cast<std::size_t>(bs.snode_size(s));
    const auto m = static_cast<std::size_t>(bs.panel_rows(s));
    diag_[static_cast<std::size_t>(s)].assign(ns * ns, 0.0);
    lpan_[static_cast<std::size_t>(s)].assign(m * ns, 0.0);
    auto& rows = rows_[static_cast<std::size_t>(s)];
    auto& offs = block_offsets_[static_cast<std::size_t>(s)];
    rows.reserve(m);
    for (const PanelBlock& blk : bs.lpanel(s)) {
      offs.emplace_back(blk.snode, static_cast<index_t>(rows.size()));
      rows.insert(rows.end(), blk.rows.begin(), blk.rows.end());
    }
  }
}

std::pair<index_t, index_t> CholeskyFactors::block_range(int s, int a) const {
  const auto& offs = block_offsets_[static_cast<std::size_t>(s)];
  const auto it = std::lower_bound(
      offs.begin(), offs.end(), a,
      [](const std::pair<int, index_t>& p, int key) { return p.first < key; });
  if (it == offs.end() || it->first != a) return {-1, 0};
  const auto next = it + 1;
  const index_t end = next == offs.end()
                          ? static_cast<index_t>(rows_[static_cast<std::size_t>(s)].size())
                          : next->second;
  return {it->second, end - it->second};
}

void CholeskyFactors::fill_from(const CsrMatrix& Ap) {
  SLU3D_CHECK(Ap.n_rows() == bs_->n(), "matrix size mismatch");
  for (index_t i = 0; i < Ap.n_rows(); ++i) {
    const int si = bs_->col_to_snode(i);
    const auto cols = Ap.row_cols(i);
    const auto vals = Ap.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const index_t j = cols[k];
      if (j > i) break;  // lower triangle only (columns sorted)
      const real_t v = vals[k];
      const int sj = bs_->col_to_snode(j);
      if (si == sj) {
        const index_t f = bs_->first_col(si);
        const index_t ns = bs_->snode_size(si);
        diag_[static_cast<std::size_t>(si)]
             [static_cast<std::size_t>((i - f) + (j - f) * ns)] += v;
      } else {
        const auto& rows = rows_[static_cast<std::size_t>(sj)];
        const auto it = std::lower_bound(rows.begin(), rows.end(), i);
        SLU3D_CHECK(it != rows.end() && *it == i, "entry outside L structure");
        const auto r = static_cast<std::size_t>(it - rows.begin());
        lpan_[static_cast<std::size_t>(sj)]
             [r + static_cast<std::size_t>(j - bs_->first_col(sj)) * rows.size()] += v;
      }
    }
  }
}

real_t CholeskyFactors::l_entry(index_t i, index_t j) const {
  SLU3D_CHECK(i >= j, "l_entry needs i >= j");
  const int sj = bs_->col_to_snode(j);
  const index_t f = bs_->first_col(sj);
  if (bs_->col_to_snode(i) == sj) {
    const index_t ns = bs_->snode_size(sj);
    return diag_[static_cast<std::size_t>(sj)]
                [static_cast<std::size_t>((i - f) + (j - f) * ns)];
  }
  const auto& rows = rows_[static_cast<std::size_t>(sj)];
  const auto it = std::lower_bound(rows.begin(), rows.end(), i);
  if (it == rows.end() || *it != i) return 0.0;
  const auto r = static_cast<std::size_t>(it - rows.begin());
  return lpan_[static_cast<std::size_t>(sj)]
              [r + static_cast<std::size_t>(j - f) * rows.size()];
}

offset_t CholeskyFactors::allocated_bytes() const {
  offset_t bytes = 0;
  for (std::size_t s = 0; s < diag_.size(); ++s)
    bytes += static_cast<offset_t>((diag_[s].size() + lpan_[s].size()) *
                                   sizeof(real_t));
  return bytes;
}

void factorize_cholesky(CholeskyFactors& F) {
  const BlockStructure& bs = F.structure();
  dense::KernelScratch& ws = dense::KernelScratch::per_rank();
  for (int s = 0; s < bs.n_snodes(); ++s) {
    const index_t ns = bs.snode_size(s);
    if (ns == 0) continue;
    dense::potrf_lower(ns, F.diag(s).data(), ns);
    const auto m = static_cast<index_t>(F.panel_rows(s).size());
    if (m == 0) continue;
    dense::trsm_right_lower_trans(ns, m, F.diag(s).data(), ns,
                                  F.lpanel(s).data(), m);

    // Symmetric Schur update: only block pairs (bi >= bj) have targets in
    // the lower triangle.
    const auto panel = bs.lpanel(s);
    for (const PanelBlock& bi : panel) {
      const auto [oi, mi] = F.block_range(s, bi.snode);
      for (const PanelBlock& bj : panel) {
        if (bj.snode > bi.snode) break;
        const auto [oj, mj] = F.block_range(s, bj.snode);
        auto scratch =
            ws.stage_zero(static_cast<std::size_t>(mi) * static_cast<std::size_t>(mj));
        dense::gemm_minus_nt(mi, mj, ns, F.lpanel(s).data() + oi, m,
                             F.lpanel(s).data() + oj, m, scratch.data(), mi);

        // Scatter-add into the lower-triangular target.
        if (bi.snode == bj.snode) {
          auto d = F.diag(bi.snode);
          const index_t f = bs.first_col(bi.snode);
          const index_t nd = bs.snode_size(bi.snode);
          for (index_t c = 0; c < mj; ++c) {
            const index_t tc = bj.rows[static_cast<std::size_t>(c)] - f;
            for (index_t r = 0; r < mi; ++r)
              d[static_cast<std::size_t>((bi.rows[static_cast<std::size_t>(r)] - f) +
                                         tc * nd)] +=
                  scratch[static_cast<std::size_t>(r + c * mi)];
          }
        } else {
          const auto rows = F.panel_rows(bj.snode);
          auto lp = F.lpanel(bj.snode);
          const index_t f = bs.first_col(bj.snode);
          const auto mt = static_cast<index_t>(rows.size());
          const auto [off, cnt] = F.block_range(bj.snode, bi.snode);
          SLU3D_CHECK(off >= 0, "target L block missing");
          auto pos = ws.index_stage(static_cast<std::size_t>(mi));
          locate_sorted_subset(bi.rows,
                               rows.subspan(static_cast<std::size_t>(off),
                                            static_cast<std::size_t>(cnt)),
                               pos);
          for (index_t c = 0; c < mj; ++c) {
            const index_t tc = bj.rows[static_cast<std::size_t>(c)] - f;
            for (index_t r = 0; r < mi; ++r)
              lp[static_cast<std::size_t>((off + pos[static_cast<std::size_t>(r)]) +
                                          tc * mt)] +=
                  scratch[static_cast<std::size_t>(r + c * mi)];
          }
        }
      }
    }
  }
}

void solve_cholesky(const CholeskyFactors& F, std::span<real_t> x) {
  const BlockStructure& bs = F.structure();
  SLU3D_CHECK(x.size() == static_cast<std::size_t>(bs.n()), "x size");

  // Forward: L y = b.
  for (int s = 0; s < bs.n_snodes(); ++s) {
    const index_t ns = bs.snode_size(s);
    if (ns == 0) continue;
    const index_t f = bs.first_col(s);
    real_t* xs = x.data() + f;
    dense::trsv_lower(ns, F.diag(s).data(), ns, xs);
    const auto rows = F.panel_rows(s);
    const auto lp = F.lpanel(s);
    const auto m = static_cast<index_t>(rows.size());
    for (index_t c = 0; c < ns; ++c) {
      const real_t xc = xs[c];
      if (xc == 0.0) continue;
      for (index_t r = 0; r < m; ++r)
        x[static_cast<std::size_t>(rows[static_cast<std::size_t>(r)])] -=
            lp[static_cast<std::size_t>(r + c * m)] * xc;
    }
  }

  // Backward: Lᵀ x = y (the panel acts transposed).
  for (int s = bs.n_snodes() - 1; s >= 0; --s) {
    const index_t ns = bs.snode_size(s);
    if (ns == 0) continue;
    const index_t f = bs.first_col(s);
    real_t* xs = x.data() + f;
    const auto rows = F.panel_rows(s);
    const auto lp = F.lpanel(s);
    const auto m = static_cast<index_t>(rows.size());
    for (index_t c = 0; c < ns; ++c) {
      real_t acc = 0.0;
      for (index_t r = 0; r < m; ++r)
        acc += lp[static_cast<std::size_t>(r + c * m)] *
               x[static_cast<std::size_t>(rows[static_cast<std::size_t>(r)])];
      xs[c] -= acc;
    }
    dense::trsv_lower_trans(ns, F.diag(s).data(), ns, xs);
  }
}

SparseCholeskySolver::SparseCholeskySolver(const CsrMatrix& A,
                                           const SolverOptions& options)
    : A_(&A), options_(options) {
  SLU3D_CHECK(A.n_rows() == A.n_cols(), "solver needs a square matrix");
  SLU3D_CHECK(A.pattern_is_symmetric(), "Cholesky needs a symmetric pattern");
  if (options.geometry.has_value()) {
    SLU3D_CHECK(options.geometry->n() == A.n_rows(), "geometry mismatch");
    tree_ = std::make_unique<SeparatorTree>(
        geometric_nd(*options.geometry, options.nd));
  } else {
    tree_ = std::make_unique<SeparatorTree>(nested_dissection(A, options.nd));
  }
  pinv_ = invert_permutation(tree_->perm());
  bs_ = std::make_unique<BlockStructure>(A, *tree_);
  factors_ = std::make_unique<CholeskyFactors>(*bs_);
  factors_->fill_from(A.permuted_symmetric(tree_->perm()));
  factorize_cholesky(*factors_);
}

SolveReport SparseCholeskySolver::solve(std::span<const real_t> b,
                                        std::span<real_t> x) const {
  const auto n = static_cast<std::size_t>(A_->n_rows());
  SLU3D_CHECK(b.size() == n && x.size() == n, "rhs size mismatch");
  std::vector<real_t> pb(n);
  auto apply = [&](std::span<const real_t> rhs, std::span<real_t> out) {
    for (std::size_t i = 0; i < n; ++i)
      pb[static_cast<std::size_t>(pinv_[i])] = rhs[i];
    solve_cholesky(*factors_, pb);
    for (std::size_t i = 0; i < n; ++i)
      out[i] = pb[static_cast<std::size_t>(pinv_[i])];
  };
  apply(b, x);
  SolveReport report;
  report.final_residual_norm = relative_residual(*A_, x, b);
  std::vector<real_t> r(n), dx(n);
  for (int it = 0; it < options_.refinement_steps; ++it) {
    A_->spmv(x, r);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    apply(r, dx);
    for (std::size_t i = 0; i < n; ++i) x[i] += dx[i];
    const real_t res = relative_residual(*A_, x, b);
    ++report.refinement_steps_used;
    if (res >= report.final_residual_norm) break;
    report.final_residual_norm = res;
  }
  return report;
}

offset_t SparseCholeskySolver::factor_nnz() const {
  offset_t nnz = 0;
  for (int s = 0; s < bs_->n_snodes(); ++s) {
    const offset_t ns = bs_->snode_size(s);
    nnz += ns * (ns + 1) / 2 + static_cast<offset_t>(bs_->panel_rows(s)) * ns;
  }
  return nnz;
}

}  // namespace slu3d
