// Supernodal sparse Cholesky (A = L Lᵀ) — the symmetric-positive-definite
// variant the paper's conclusion (§VII) points to: the same separator-tree
// supernodes, the same right-looking schedule, half the storage and
// roughly half the flops of LU. The elimination-tree parallelism (and
// hence the 3D schedule) is identical; this module provides the
// sequential factorization and solves on a symmetric storage layout.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "numeric/solver.hpp"
#include "symbolic/block_structure.hpp"

namespace slu3d {

/// Lower-triangular supernodal storage: per supernode, a dense ns x ns
/// diagonal block (lower triangle significant) and the m x ns L panel.
class CholeskyFactors {
 public:
  explicit CholeskyFactors(const BlockStructure& bs);

  const BlockStructure& structure() const { return *bs_; }

  std::span<real_t> diag(int s) { return diag_[static_cast<std::size_t>(s)]; }
  std::span<const real_t> diag(int s) const { return diag_[static_cast<std::size_t>(s)]; }
  std::span<real_t> lpanel(int s) { return lpan_[static_cast<std::size_t>(s)]; }
  std::span<const real_t> lpanel(int s) const { return lpan_[static_cast<std::size_t>(s)]; }
  std::span<const index_t> panel_rows(int s) const {
    return rows_[static_cast<std::size_t>(s)];
  }
  std::pair<index_t, index_t> block_range(int s, int a) const;

  /// Scatters the lower triangle of the (symmetric, permuted) matrix.
  void fill_from(const CsrMatrix& Ap);

  /// L(i, j) for i >= j (0 outside the structure).
  real_t l_entry(index_t i, index_t j) const;

  offset_t allocated_bytes() const;

 private:
  const BlockStructure* bs_;
  std::vector<std::vector<real_t>> diag_;
  std::vector<std::vector<real_t>> lpan_;
  std::vector<std::vector<index_t>> rows_;
  std::vector<std::vector<std::pair<int, index_t>>> block_offsets_;
};

/// Right-looking supernodal Cholesky; throws if A is not SPD.
void factorize_cholesky(CholeskyFactors& F);

/// Solves L Lᵀ x = b in the permuted index space (b in x on entry).
void solve_cholesky(const CholeskyFactors& F, std::span<real_t> x);

/// High-level SPD solver mirroring SparseLuSolver.
class SparseCholeskySolver {
 public:
  explicit SparseCholeskySolver(const CsrMatrix& A,
                                const SolverOptions& options = {});

  SolveReport solve(std::span<const real_t> b, std::span<real_t> x) const;

  const BlockStructure& block_structure() const { return *bs_; }
  const CholeskyFactors& factors() const { return *factors_; }
  /// Stored factor entries (diagonal blocks + L panels only).
  offset_t factor_nnz() const;

 private:
  const CsrMatrix* A_;
  std::unique_ptr<SeparatorTree> tree_;
  std::unique_ptr<BlockStructure> bs_;
  std::unique_ptr<CholeskyFactors> factors_;
  std::vector<index_t> pinv_;
  SolverOptions options_;
};

}  // namespace slu3d
