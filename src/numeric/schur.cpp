#include "numeric/schur.hpp"

#include "numeric/kernel_scratch.hpp"
#include "support/check.hpp"

namespace slu3d {

void locate_sorted_subset(std::span<const index_t> sub,
                          std::span<const index_t> super,
                          std::span<index_t> positions_out) {
  SLU3D_CHECK(positions_out.size() == sub.size(), "positions size");
  std::size_t p = 0;
  for (std::size_t k = 0; k < sub.size(); ++k) {
    while (p < super.size() && super[p] < sub[k]) ++p;
    SLU3D_CHECK(p < super.size() && super[p] == sub[k],
                "update index missing from target symbolic structure");
    positions_out[k] = static_cast<index_t>(p);
  }
}

void schur_scatter_add(SupernodalMatrix& F, int bi, int bj,
                       std::span<const index_t> rows_i,
                       std::span<const index_t> cols_j,
                       std::span<const real_t> v) {
  const BlockStructure& bs = F.structure();
  const auto mi = static_cast<index_t>(rows_i.size());
  const auto mj = static_cast<index_t>(cols_j.size());
  SLU3D_CHECK(v.size() == static_cast<std::size_t>(mi) * static_cast<std::size_t>(mj),
              "V extent mismatch");
  if (mi == 0 || mj == 0) return;

  if (bi == bj) {
    // Diagonal block of bi.
    SLU3D_CHECK(F.has_snode(bi), "target diagonal block not allocated");
    auto d = F.diag(bi);
    const index_t f = bs.first_col(bi);
    const index_t ns = bs.snode_size(bi);
    for (index_t c = 0; c < mj; ++c) {
      const index_t tc = cols_j[static_cast<std::size_t>(c)] - f;
      for (index_t r = 0; r < mi; ++r)
        d[static_cast<std::size_t>((rows_i[static_cast<std::size_t>(r)] - f) + tc * ns)] +=
            v[static_cast<std::size_t>(r + c * mi)];
    }
    return;
  }

  if (bi > bj) {
    // L panel of bj: columns are bj's own columns, rows live in block bi.
    SLU3D_CHECK(F.has_snode(bj), "target L panel not allocated");
    const auto rows = F.panel_rows(bj);
    auto lp = F.lpanel(bj);
    const index_t f = bs.first_col(bj);
    const auto m = static_cast<index_t>(rows.size());
    const auto [off, cnt] = F.block_range(bj, bi);
    SLU3D_CHECK(off >= 0, "target L block missing");
    // The caller's `v` may alias the arena's real_t stage; the index stage
    // is a distinct buffer, so this is safe.
    auto pos = dense::KernelScratch::per_rank().index_stage(
        static_cast<std::size_t>(mi));
    locate_sorted_subset(rows_i, rows.subspan(static_cast<std::size_t>(off),
                                              static_cast<std::size_t>(cnt)),
                         pos);
    for (index_t c = 0; c < mj; ++c) {
      const index_t tc = cols_j[static_cast<std::size_t>(c)] - f;
      for (index_t r = 0; r < mi; ++r)
        lp[static_cast<std::size_t>((off + pos[static_cast<std::size_t>(r)]) + tc * m)] +=
            v[static_cast<std::size_t>(r + c * mi)];
    }
    return;
  }

  // bi < bj: U panel of bi — rows are bi's own columns, columns live in bj.
  SLU3D_CHECK(F.has_snode(bi), "target U panel not allocated");
  const auto cols = F.panel_rows(bi);  // same index set by pattern symmetry
  auto up = F.upanel(bi);
  const index_t f = bs.first_col(bi);
  const index_t ns = bs.snode_size(bi);
  const auto [off, cnt] = F.block_range(bi, bj);
  SLU3D_CHECK(off >= 0, "target U block missing");
  auto pos = dense::KernelScratch::per_rank().index_stage(
      static_cast<std::size_t>(mj));
  locate_sorted_subset(cols_j, cols.subspan(static_cast<std::size_t>(off),
                                            static_cast<std::size_t>(cnt)),
                       pos);
  for (index_t c = 0; c < mj; ++c) {
    const auto tc = static_cast<std::size_t>(off + pos[static_cast<std::size_t>(c)]);
    for (index_t r = 0; r < mi; ++r)
      up[static_cast<std::size_t>(rows_i[static_cast<std::size_t>(r)] - f) + tc * static_cast<std::size_t>(ns)] +=
          v[static_cast<std::size_t>(r + c * mi)];
  }
}

}  // namespace slu3d
