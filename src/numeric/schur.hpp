// The Schur-complement scatter: maps a dense GEMM product V back into the
// supernodal block that owns the target region ("the mapping from V back to
// A_ij", §II-E). Shared by the sequential, 2D, and 3D factorizations.
#pragma once

#include <span>

#include "numeric/supernodal_matrix.hpp"

namespace slu3d {

/// Adds `v` (|rows_i| x |cols_j|, column-major) into the factor storage at
/// global positions (rows_i x cols_j). All of rows_i must lie in supernode
/// `bi`'s column range and all of cols_j in `bj`'s:
///   bi == bj : target is the diagonal block of bi,
///   bi >  bj : target is L panel block (bi) of supernode bj,
///   bi <  bj : target is U panel block (bj) of supernode bi.
/// The target block must be allocated in `F` and must symbolically contain
/// every (i, j) position (guaranteed by BlockStructure's fill computation).
void schur_scatter_add(SupernodalMatrix& F, int bi, int bj,
                       std::span<const index_t> rows_i,
                       std::span<const index_t> cols_j,
                       std::span<const real_t> v);

/// Positions of each element of `sub` (sorted) within `super` (sorted,
/// sub ⊆ super); used to translate update rows into target-panel offsets.
void locate_sorted_subset(std::span<const index_t> sub,
                          std::span<const index_t> super,
                          std::span<index_t> positions_out);

}  // namespace slu3d
