// High-level sequential solver: ordering -> symbolic -> numeric -> solve,
// with optional iterative refinement. This is the public entry point the
// quickstart example uses; the distributed drivers in lu2d/lu3d mirror its
// pipeline.
#pragma once

#include <memory>
#include <optional>
#include <span>

#include "numeric/seq_lu.hpp"
#include "numeric/supernodal_matrix.hpp"
#include "order/diagonal_matching.hpp"
#include "order/nested_dissection.hpp"
#include "sparse/equilibrate.hpp"
#include "sparse/generators.hpp"

namespace slu3d {

struct SolverOptions {
  NdOptions nd;
  /// When set, use exact geometric nested dissection for this grid instead
  /// of the general-graph dissection.
  std::optional<GridGeometry> geometry;
  /// Iterative-refinement sweeps after each solve (SuperLU_DIST pairs
  /// static pivoting with refinement; 0 disables).
  int refinement_steps = 1;
  /// Row/column equilibration before factorization (SuperLU_DIST's
  /// pdgsequ step) — essential for badly scaled inputs under static
  /// pivoting.
  bool equilibrate = false;
  /// When the diagonal has structural zeros, apply a zero-free-diagonal
  /// row permutation (the MC64 role). Matrices that already have a full
  /// diagonal are left untouched.
  bool fix_zero_diagonal = true;
};

struct SolveReport {
  int refinement_steps_used = 0;
  real_t final_residual_norm = 0.0;  ///< ||b - A x||_inf / (||A||_inf ||x||_inf + ||b||_inf)
};

class SparseLuSolver {
 public:
  /// Orders, analyzes, and factorizes A (square). Throws slu3d::Error on
  /// structurally/numerically unusable inputs.
  explicit SparseLuSolver(const CsrMatrix& A, const SolverOptions& options = {});

  /// Solves A x = b.
  SolveReport solve(std::span<const real_t> b, std::span<real_t> x) const;

  /// Solves Aᵀ x = b (no refinement).
  void solve_transpose(std::span<const real_t> b, std::span<real_t> x) const;

  /// Hager's 1-norm condition estimate kappa_1(A) ~ ||A||_1 ||A^{-1}||_1
  /// — the same figure SuperLU_DIST reports so users can judge how much
  /// to trust static pivoting on this input.
  real_t estimate_condition_number() const;

  const SeparatorTree& tree() const { return *tree_; }
  const BlockStructure& block_structure() const { return *bs_; }
  const SupernodalMatrix& factors() const { return *factors_; }

  /// Factor statistics: stored nonzeros (dense-block entries) and flops.
  offset_t factor_nnz() const { return bs_->total_nnz(); }
  offset_t factor_flops() const { return bs_->total_flops(); }

 private:
  /// One raw application of A^{-1} through all transforms (no refinement).
  void apply_inverse(std::span<const real_t> rhs, std::span<real_t> out) const;

  const CsrMatrix* A_;  // not owned; must outlive the solver for refinement
  std::optional<Equilibration> eq_;
  std::optional<std::vector<index_t>> rowperm_;  // new -> old (pre-ordering)
  std::unique_ptr<CsrMatrix> preprocessed_;      // set iff eq_ or rowperm_
  std::unique_ptr<SeparatorTree> tree_;
  std::unique_ptr<BlockStructure> bs_;
  std::unique_ptr<SupernodalMatrix> factors_;
  std::vector<index_t> perm_;   // new -> old
  std::vector<index_t> pinv_;   // old -> new
  SolverOptions options_;
};

/// Relative residual ||b - A x||_inf / (||A||_inf ||x||_inf + ||b||_inf).
real_t relative_residual(const CsrMatrix& A, std::span<const real_t> x,
                         std::span<const real_t> b);

}  // namespace slu3d
