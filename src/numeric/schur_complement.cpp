#include "numeric/schur_complement.hpp"

#include "numeric/dense_kernels.hpp"
#include "numeric/seq_lu.hpp"
#include "support/check.hpp"

namespace slu3d {

SchurComplementResult eliminate_leading_block(SupernodalMatrix& F,
                                              index_t split_col) {
  const BlockStructure& bs = F.structure();
  SLU3D_CHECK(split_col > 0 && split_col <= bs.n(), "split out of range");

  SchurComplementResult out;
  for (int s = 0; s < bs.n_snodes(); ++s) {
    const index_t end = bs.first_col(s) + bs.snode_size(s);
    if (end <= split_col)
      out.eliminated.push_back(s);
    else
      out.interface.push_back(s);
  }
  SLU3D_CHECK(out.interface.empty() ||
                  bs.first_col(out.interface.front()) >= split_col ||
                  bs.snode_size(out.interface.front()) == 0 ||
                  bs.first_col(out.interface.front()) +
                          bs.snode_size(out.interface.front()) >
                      split_col,
              "split must align with supernode boundaries");
  // The true interface starts at the first non-eliminated column.
  const index_t iface_first =
      out.interface.empty() ? bs.n() : bs.first_col(out.interface.front());
  out.interface_dim = bs.n() - iface_first;

  factorize_snodes_sequential(F, out.eliminated);

  // Extract the (updated) trailing blocks into CSR over compacted indices.
  CooMatrix coo(out.interface_dim, out.interface_dim);
  for (int t : out.interface) {
    const index_t ns = bs.snode_size(t);
    if (ns == 0) continue;
    const index_t f = bs.first_col(t);
    const auto d = F.diag(t);
    for (index_t c = 0; c < ns; ++c)
      for (index_t r = 0; r < ns; ++r) {
        const real_t v = d[static_cast<std::size_t>(r + c * ns)];
        if (v != 0.0) coo.add(f + r - iface_first, f + c - iface_first, v);
      }
    const auto rows = F.panel_rows(t);
    const auto lp = F.lpanel(t);
    const auto up = F.upanel(t);
    const auto m = static_cast<index_t>(rows.size());
    for (index_t c = 0; c < ns; ++c)
      for (index_t r = 0; r < m; ++r) {
        const real_t v = lp[static_cast<std::size_t>(r + c * m)];
        if (v != 0.0)
          coo.add(rows[static_cast<std::size_t>(r)] - iface_first,
                  f + c - iface_first, v);
      }
    for (index_t c = 0; c < m; ++c)
      for (index_t r = 0; r < ns; ++r) {
        const real_t v =
            up[static_cast<std::size_t>(r) + static_cast<std::size_t>(c) *
                                                 static_cast<std::size_t>(ns)];
        if (v != 0.0)
          coo.add(f + r - iface_first,
                  rows[static_cast<std::size_t>(c)] - iface_first, v);
      }
  }
  out.schur = CsrMatrix::from_coo(coo);
  return out;
}

void forward_eliminated(const SupernodalMatrix& F, std::span<const int> elim,
                        std::span<real_t> x) {
  const BlockStructure& bs = F.structure();
  SLU3D_CHECK(x.size() == static_cast<std::size_t>(bs.n()), "x size");
  for (int s : elim) {
    const index_t ns = bs.snode_size(s);
    if (ns == 0) continue;
    const index_t f = bs.first_col(s);
    real_t* xs = x.data() + f;
    dense::trsv_lower_unit(ns, F.diag(s).data(), ns, xs);
    const auto rows = F.panel_rows(s);
    const auto lp = F.lpanel(s);
    const auto m = static_cast<index_t>(rows.size());
    for (index_t c = 0; c < ns; ++c) {
      const real_t xc = xs[c];
      if (xc == 0.0) continue;
      for (index_t r = 0; r < m; ++r)
        x[static_cast<std::size_t>(rows[static_cast<std::size_t>(r)])] -=
            lp[static_cast<std::size_t>(r + c * m)] * xc;
    }
  }
}

void backward_eliminated(const SupernodalMatrix& F, std::span<const int> elim,
                         std::span<real_t> x) {
  const BlockStructure& bs = F.structure();
  SLU3D_CHECK(x.size() == static_cast<std::size_t>(bs.n()), "x size");
  for (auto it = elim.rbegin(); it != elim.rend(); ++it) {
    const int s = *it;
    const index_t ns = bs.snode_size(s);
    if (ns == 0) continue;
    const index_t f = bs.first_col(s);
    real_t* xs = x.data() + f;
    const auto cols = F.panel_rows(s);
    const auto up = F.upanel(s);
    for (std::size_t c = 0; c < cols.size(); ++c) {
      const real_t xc = x[static_cast<std::size_t>(cols[c])];
      if (xc == 0.0) continue;
      for (index_t r = 0; r < ns; ++r)
        xs[r] -= up[static_cast<std::size_t>(r) + c * static_cast<std::size_t>(ns)] * xc;
    }
    dense::trsv_upper(ns, F.diag(s).data(), ns, xs);
  }
}

}  // namespace slu3d
