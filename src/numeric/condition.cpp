#include "numeric/condition.hpp"

#include <cmath>
#include <vector>

#include "support/check.hpp"

namespace slu3d {

real_t norm1(const CsrMatrix& A) {
  std::vector<real_t> colsum(static_cast<std::size_t>(A.n_cols()), 0.0);
  for (index_t r = 0; r < A.n_rows(); ++r) {
    const auto cols = A.row_cols(r);
    const auto vals = A.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k)
      colsum[static_cast<std::size_t>(cols[k])] += std::abs(vals[k]);
  }
  real_t best = 0.0;
  for (real_t c : colsum) best = std::max(best, c);
  return best;
}

real_t estimate_inverse_norm1(
    index_t n, const std::function<void(std::span<real_t>)>& solve,
    const std::function<void(std::span<real_t>)>& solve_transpose,
    int max_iterations) {
  SLU3D_CHECK(n > 0, "empty matrix");
  const auto nu = static_cast<std::size_t>(n);

  // Hager's algorithm: maximize ||A^{-1} x||_1 over the unit 1-norm ball.
  std::vector<real_t> x(nu, 1.0 / static_cast<real_t>(n));
  real_t estimate = 0.0;
  for (int it = 0; it < max_iterations; ++it) {
    solve(x);  // x <- A^{-1} x
    real_t nrm = 0.0;
    for (real_t v : x) nrm += std::abs(v);
    // Subgradient: z = A^{-T} sign(x).
    for (auto& v : x) v = v >= 0 ? 1.0 : -1.0;
    solve_transpose(x);  // x <- A^{-T} sign
    // Pick the coordinate with the largest |z|; if no progress, stop.
    std::size_t jmax = 0;
    real_t zmax = 0.0;
    for (std::size_t j = 0; j < nu; ++j)
      if (std::abs(x[j]) > zmax) {
        zmax = std::abs(x[j]);
        jmax = j;
      }
    if (nrm <= estimate) {
      estimate = std::max(estimate, nrm);
      break;
    }
    estimate = nrm;
    std::fill(x.begin(), x.end(), 0.0);
    x[jmax] = 1.0;  // next unit vector e_jmax
  }
  return estimate;
}

}  // namespace slu3d
