// Blocked, packed dense kernel substrate (see DESIGN.md, "Dense kernel
// substrate"). One BLIS-style micro-kernel carries every BLAS-3 entry
// point: GEMM runs the full KC/MC/NC packing pipeline, the TRSM variants
// peel kTB-wide triangular blocks and push the remaining rank-kb update
// through the same packed GEMM, and GETRF/POTRF are right-looking block
// algorithms over those TRSMs and GEMMs. The dense path contains no
// zero-skip branches (dense::ref keeps them for sparse-scatter callers).
#include "numeric/dense_kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>

#include "numeric/kernel_scratch.hpp"
#include "support/check.hpp"
#include "threads/thread_pool.hpp"

#define SLU3D_RESTRICT __restrict__

namespace slu3d {
namespace dense {

namespace {

thread_local offset_t t_flops_performed = 0;

/// Kernels running on a pool worker must not touch the rank's counter (the
/// audit is per rank thread); they add to the pool's side channel, which
/// flops_performed()/ParallelKernels folds back in. Integer addition
/// commutes, so the total is deterministic under any interleaving.
inline void count(offset_t flops) {
  if (threads::ThreadPool* p = threads::ThreadPool::worker_pool())
    p->accumulate(flops);
  else
    t_flops_performed += flops;
}

/// Column-major element offset, computed in pointer-width arithmetic.
inline std::ptrdiff_t off(index_t r, index_t c, index_t ld) {
  return static_cast<std::ptrdiff_t>(r) +
         static_cast<std::ptrdiff_t>(c) * static_cast<std::ptrdiff_t>(ld);
}

constexpr std::size_t kPanelA = static_cast<std::size_t>(kMR) * kKC;
constexpr std::size_t kPanelB = static_cast<std::size_t>(kNR) * kKC;

// ---- packing ------------------------------------------------------------

/// Packs the mc x kc block at `a` (column-major, lda) into kMR-row
/// micro-panels, each k-major and zero-padded to exactly kMR rows:
///   buf[(i0/kMR) * kMR*kc + p * kMR + i] = a[(i0 + i) + p * lda].
void pack_block_a(index_t mc, index_t kc, const real_t* a, index_t lda,
                  real_t* SLU3D_RESTRICT buf) {
  for (index_t i0 = 0; i0 < mc; i0 += kMR) {
    const index_t mr = std::min(kMR, mc - i0);
    for (index_t p = 0; p < kc; ++p) {
      const real_t* col = a + off(i0, p, lda);
      real_t* dst = buf + p * kMR;
      index_t i = 0;
      for (; i < mr; ++i) dst[i] = col[i];
      for (; i < kMR; ++i) dst[i] = 0.0;
    }
    buf += static_cast<std::size_t>(kc) * kMR;
  }
}

/// Packs the kc x nc panel at `b` into kNR-column micro-panels, k-major,
/// zero-padded to kNR columns: buf[p * kNR + j] = b[p + (j0 + j) * ldb].
void pack_panel_b(index_t kc, index_t nc, const real_t* b, index_t ldb,
                  real_t* SLU3D_RESTRICT buf) {
  for (index_t j0 = 0; j0 < nc; j0 += kNR) {
    const index_t nr = std::min(kNR, nc - j0);
    for (index_t p = 0; p < kc; ++p) {
      real_t* dst = buf + p * kNR;
      index_t j = 0;
      for (; j < nr; ++j) dst[j] = b[off(p, j0 + j, ldb)];
      for (; j < kNR; ++j) dst[j] = 0.0;
    }
    buf += static_cast<std::size_t>(kc) * kNR;
  }
}

/// Transposed-operand variant: packs op(B) = B^T where element (p, j) of
/// the packed panel reads b[(j0 + j) + p * ldb].
void pack_panel_b_trans(index_t kc, index_t nc, const real_t* b, index_t ldb,
                        real_t* SLU3D_RESTRICT buf) {
  for (index_t j0 = 0; j0 < nc; j0 += kNR) {
    const index_t nr = std::min(kNR, nc - j0);
    for (index_t p = 0; p < kc; ++p) {
      const real_t* src = b + off(j0, p, ldb);
      real_t* dst = buf + p * kNR;
      index_t j = 0;
      for (; j < nr; ++j) dst[j] = src[j];
      for (; j < kNR; ++j) dst[j] = 0.0;
    }
    buf += static_cast<std::size_t>(kc) * kNR;
  }
}

// ---- micro-kernel -------------------------------------------------------

/// C tile (kMR x kNR at `c`, leading dimension ldc) -= Apanel * Bpanel over
/// depth kc. The register layout is pinned explicitly with GCC vector
/// extensions: each column of the tile is one 8-wide double vector, kNR = 6
/// columns, so the accumulator occupies 6 vector registers plus the A
/// column and a broadcast B element. On AVX-512 that is one zmm per
/// column; on AVX2-only targets the compiler splits each 64-byte vector
/// into exactly the two ymm halves of the classic BLIS 8x6 kernel.
#if defined(__GNUC__) || defined(__clang__)

typedef real_t v8d __attribute__((vector_size(8 * sizeof(real_t))));
static_assert(kMR == 8, "micro-kernel is written for kMR == 8");

inline v8d v8load(const real_t* p) {
  v8d v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline void v8store(real_t* p, v8d v) { std::memcpy(p, &v, sizeof(v)); }

inline void micro_tile_full(index_t kc, const real_t* SLU3D_RESTRICT ap,
                            const real_t* SLU3D_RESTRICT bp,
                            real_t* SLU3D_RESTRICT c, index_t ldc) {
  v8d acc[kNR] = {};
  for (index_t p = 0; p < kc; ++p) {
    // Pack buffers are 64-byte aligned and micro-panels contiguous.
    const v8d a = v8load(ap + p * kMR);
    const real_t* SLU3D_RESTRICT b = bp + p * kNR;
    for (index_t j = 0; j < kNR; ++j) acc[j] += a * b[j];
  }
  for (index_t j = 0; j < kNR; ++j) {
    real_t* cj = c + off(0, j, ldc);
    v8store(cj, v8load(cj) - acc[j]);
  }
}

#else  // portable scalar fallback

inline void micro_tile_full(index_t kc, const real_t* SLU3D_RESTRICT ap,
                            const real_t* SLU3D_RESTRICT bp,
                            real_t* SLU3D_RESTRICT c, index_t ldc) {
  real_t acc[static_cast<std::size_t>(kMR) * kNR] = {};
  for (index_t p = 0; p < kc; ++p) {
    const real_t* SLU3D_RESTRICT a = ap + p * kMR;
    const real_t* SLU3D_RESTRICT b = bp + p * kNR;
    for (index_t j = 0; j < kNR; ++j)
      for (index_t i = 0; i < kMR; ++i) acc[j * kMR + i] += a[i] * b[j];
  }
  for (index_t j = 0; j < kNR; ++j) {
    real_t* SLU3D_RESTRICT cj = c + off(0, j, ldc);
    for (index_t i = 0; i < kMR; ++i) cj[i] -= acc[j * kMR + i];
  }
}

#endif

/// Ragged-edge tile: run the full register kernel into a zeroed local tile
/// (so the hot path above stays branch-free), then add the mr x nr corner.
inline void micro_tile_edge(index_t kc, const real_t* SLU3D_RESTRICT ap,
                            const real_t* SLU3D_RESTRICT bp, index_t mr,
                            index_t nr, real_t* c, index_t ldc) {
  real_t tmp[static_cast<std::size_t>(kMR) * kNR] = {};
  micro_tile_full(kc, ap, bp, tmp, kMR);  // tmp = -Apanel * Bpanel
  for (index_t j = 0; j < nr; ++j) {
    real_t* cj = c + off(0, j, ldc);
    for (index_t i = 0; i < mr; ++i) cj[i] += tmp[j * kMR + i];
  }
}

// ---- blocked GEMM core --------------------------------------------------

/// Below this op count the two fork-join regions per (jc, pc) iteration
/// cost more than the parallelism recovers; such GEMMs stay serial.
constexpr offset_t kParallelGemmMinOps = offset_t{1} << 18;

/// Parallel body of one (jc, pc) cache iteration: region 1 packs the B
/// panel (per kNR micro-panel) and the *full* m-row A panel (per kMC
/// block) into disjoint regions of the rank arena's buffers; region 2
/// sweeps the micro-kernel over jr column panels, each task walking its
/// ic/ir tiles in the serial order. Every C tile is visited exactly once
/// per iteration with bit-identical packed operands, and accumulation
/// across pc stays serialized by the region barrier — so the result is
/// bitwise equal to the serial path for any worker count. The full-panel A
/// layout equals the serial per-kMC concatenation because kMC % kMR == 0.
static_assert(kMC % kMR == 0, "full-panel A pack relies on aligned MC blocks");
void gemm_tile_parallel(index_t m, index_t nc, index_t kc, const real_t* a,
                        index_t lda, const real_t* b, index_t ldb, real_t* c,
                        index_t ldc, bool b_trans, KernelScratch& ws) {
  const index_t np = (nc + kNR - 1) / kNR;
  const index_t mb = (m + kMC - 1) / kMC;
  const std::size_t panel_a = static_cast<std::size_t>(kc) * kMR;
  const std::size_t panel_b = static_cast<std::size_t>(kc) * kNR;
  // Buffers acquired (and possibly grown) on the rank thread, before any
  // worker can observe them; workers write disjoint micro-panel slices.
  real_t* bbuf = ws.pack_b(static_cast<std::size_t>(np) * kPanelB);
  real_t* abuf =
      ws.pack_a(static_cast<std::size_t>((m + kMR - 1) / kMR) * kPanelA);
  threads::parallel_for(
      static_cast<std::ptrdiff_t>(mb) + np, [&](std::ptrdiff_t t, int) {
        if (t < mb) {
          const index_t ic = static_cast<index_t>(t) * kMC;
          const index_t mc = std::min(kMC, m - ic);
          pack_block_a(mc, kc, a + off(ic, 0, lda), lda,
                       abuf + static_cast<std::size_t>(ic / kMR) * panel_a);
        } else {
          const index_t j0 = static_cast<index_t>(t - mb) * kNR;
          const index_t nr = std::min(kNR, nc - j0);
          real_t* dst = bbuf + static_cast<std::size_t>(j0 / kNR) * panel_b;
          if (b_trans)
            pack_panel_b_trans(kc, nr, b + off(j0, 0, ldb), ldb, dst);
          else
            pack_panel_b(kc, nr, b + off(0, j0, ldb), ldb, dst);
        }
      });
  threads::parallel_for(static_cast<std::ptrdiff_t>(np), [&](std::ptrdiff_t t,
                                                             int) {
    const index_t jr = static_cast<index_t>(t) * kNR;
    const index_t nr = std::min(kNR, nc - jr);
    const real_t* bp = bbuf + static_cast<std::size_t>(jr / kNR) * panel_b;
    for (index_t ic = 0; ic < m; ic += kMC) {
      const index_t mc = std::min(kMC, m - ic);
      for (index_t ir = 0; ir < mc; ir += kMR) {
        const index_t mr = std::min(kMR, mc - ir);
        const real_t* ap =
            abuf + static_cast<std::size_t>((ic + ir) / kMR) * panel_a;
        real_t* ct = c + off(ic + ir, jr, ldc);
        if (mr == kMR && nr == kNR)
          micro_tile_full(kc, ap, bp, ct, ldc);
        else
          micro_tile_edge(kc, ap, bp, mr, nr, ct, ldc);
      }
    }
  });
}

/// C <- C - A op(B) with op(B) = B (b_trans false) or B^T (true). Both
/// operands are packed into the per-rank aligned scratch; the inner loops
/// are branch-free regardless of the operand values. When the calling
/// thread has an active ambient pool (and the GEMM is big enough to
/// amortize the fork-join), the per-iteration packing and micro sweeps fan
/// out across the pool — bitwise identical results either way. Nested
/// calls from pool workers always take the serial path.
void gemm_minus_blocked(index_t m, index_t n, index_t k, const real_t* a,
                        index_t lda, const real_t* b, index_t ldb, real_t* c,
                        index_t ldc, bool b_trans) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  KernelScratch& ws = KernelScratch::per_rank();
  bool parallel = false;
  if (!threads::ThreadPool::in_worker()) {
    // busy() excludes slot-0 task bodies: a GEMM issued from inside one of
    // the pool's own regions (e.g. a Schur pair the owner thread executes)
    // stays serial instead of re-entering the live region.
    threads::ThreadPool* pool = threads::current_pool();
    parallel = pool != nullptr && pool->active() && !pool->busy() &&
               static_cast<offset_t>(m) * n * k >= kParallelGemmMinOps;
  }
  for (index_t jc = 0; jc < n; jc += kNC) {
    const index_t nc = std::min(kNC, n - jc);
    const index_t np = (nc + kNR - 1) / kNR;  // micro-panels in this B panel
    for (index_t pc = 0; pc < k; pc += kKC) {
      const index_t kc = std::min(kKC, k - pc);
      if (parallel) {
        gemm_tile_parallel(m, nc, kc, a + off(0, pc, lda), lda,
                           b_trans ? b + off(jc, pc, ldb) : b + off(pc, jc, ldb),
                           ldb, c + off(0, jc, ldc), ldc, b_trans, ws);
        continue;
      }
      real_t* bbuf = ws.pack_b(static_cast<std::size_t>(np) * kPanelB);
      if (b_trans)
        pack_panel_b_trans(kc, nc, b + off(jc, pc, ldb), ldb, bbuf);
      else
        pack_panel_b(kc, nc, b + off(pc, jc, ldb), ldb, bbuf);
      for (index_t ic = 0; ic < m; ic += kMC) {
        const index_t mc = std::min(kMC, m - ic);
        const index_t mp = (mc + kMR - 1) / kMR;
        real_t* abuf = ws.pack_a(static_cast<std::size_t>(mp) * kPanelA);
        pack_block_a(mc, kc, a + off(ic, pc, lda), lda, abuf);
        for (index_t jr = 0; jr < nc; jr += kNR) {
          const index_t nr = std::min(kNR, nc - jr);
          const real_t* bp =
              bbuf + static_cast<std::size_t>(jr / kNR) * static_cast<std::size_t>(kc) * kNR;
          for (index_t ir = 0; ir < mc; ir += kMR) {
            const index_t mr = std::min(kMR, mc - ir);
            const real_t* ap =
                abuf + static_cast<std::size_t>(ir / kMR) * static_cast<std::size_t>(kc) * kMR;
            real_t* ct = c + off(ic + ir, jc + jr, ldc);
            if (mr == kMR && nr == kNR)
              micro_tile_full(kc, ap, bp, ct, ldc);
            else
              micro_tile_edge(kc, ap, bp, mr, nr, ct, ldc);
          }
        }
      }
    }
  }
}

// ---- small (within-block) triangular solves -----------------------------
// These run on kTB x kTB diagonal blocks only; the contiguous inner loops
// stream full columns of B and carry no data-dependent branches.

void trsm_left_lower_unit_small(index_t n, index_t m, const real_t* a,
                                index_t lda, real_t* b, index_t ldb) {
  for (index_t j = 0; j < m; ++j) {
    real_t* SLU3D_RESTRICT bj = b + off(0, j, ldb);
    for (index_t k = 0; k < n; ++k) {
      const real_t bk = bj[k];
      const real_t* SLU3D_RESTRICT ak = a + off(0, k, lda);
      for (index_t i = k + 1; i < n; ++i) bj[i] -= ak[i] * bk;
    }
  }
}

void trsm_right_upper_small(index_t n, index_t m, const real_t* a, index_t lda,
                            real_t* b, index_t ldb) {
  for (index_t k = 0; k < n; ++k) {
    const real_t* uk = a + off(0, k, lda);
    real_t* SLU3D_RESTRICT bk = b + off(0, k, ldb);
    for (index_t c = 0; c < k; ++c) {
      const real_t ukc = uk[c];
      const real_t* SLU3D_RESTRICT bc = b + off(0, c, ldb);
      for (index_t i = 0; i < m; ++i) bk[i] -= bc[i] * ukc;
    }
    const real_t inv = 1.0 / uk[k];
    for (index_t i = 0; i < m; ++i) bk[i] *= inv;
  }
}

void trsm_left_upper_small(index_t n, index_t m, const real_t* a, index_t lda,
                           real_t* b, index_t ldb) {
  for (index_t j = 0; j < m; ++j) {
    real_t* SLU3D_RESTRICT bj = b + off(0, j, ldb);
    for (index_t k = n - 1; k >= 0; --k) {
      const real_t* SLU3D_RESTRICT ak = a + off(0, k, lda);
      const real_t xk = bj[k] / ak[k];
      bj[k] = xk;
      for (index_t i = 0; i < k; ++i) bj[i] -= ak[i] * xk;
    }
  }
}

void trsm_left_lower_small(index_t n, index_t m, const real_t* a, index_t lda,
                           real_t* b, index_t ldb) {
  for (index_t j = 0; j < m; ++j) {
    real_t* SLU3D_RESTRICT bj = b + off(0, j, ldb);
    for (index_t k = 0; k < n; ++k) {
      const real_t* SLU3D_RESTRICT ak = a + off(0, k, lda);
      const real_t xk = bj[k] / ak[k];
      bj[k] = xk;
      for (index_t i = k + 1; i < n; ++i) bj[i] -= ak[i] * xk;
    }
  }
}

void trsm_right_lower_trans_small(index_t n, index_t m, const real_t* a,
                                  index_t lda, real_t* b, index_t ldb) {
  for (index_t k = 0; k < n; ++k) {
    real_t* SLU3D_RESTRICT bk = b + off(0, k, ldb);
    for (index_t c = 0; c < k; ++c) {
      const real_t lkc = a[off(k, c, lda)];  // (L^T)(c, k)
      const real_t* SLU3D_RESTRICT bc = b + off(0, c, ldb);
      for (index_t i = 0; i < m; ++i) bk[i] -= bc[i] * lkc;
    }
    const real_t inv = 1.0 / a[off(k, k, lda)];
    for (index_t i = 0; i < m; ++i) bk[i] *= inv;
  }
}

// ---- blocked TRSM drivers (shared by the public TRSMs and GETRF/POTRF;
// they do not touch the flop counter so composite kernels count once) ----

void trsm_left_lower_unit_impl(index_t n, index_t m, const real_t* a,
                               index_t lda, real_t* b, index_t ldb) {
  if (n <= 0 || m <= 0) return;
  for (index_t k0 = 0; k0 < n; k0 += kTB) {
    const index_t kb = std::min(kTB, n - k0);
    trsm_left_lower_unit_small(kb, m, a + off(k0, k0, lda), lda, b + k0, ldb);
    const index_t rest = k0 + kb;
    if (rest < n)
      gemm_minus_blocked(n - rest, m, kb, a + off(rest, k0, lda), lda, b + k0,
                         ldb, b + rest, ldb, false);
  }
}

void trsm_left_upper_impl(index_t n, index_t m, const real_t* a, index_t lda,
                          real_t* b, index_t ldb) {
  if (n <= 0 || m <= 0) return;
  // Bottom-up over diagonal blocks: solve the block, then eliminate its
  // solved rows from everything above via one GEMM.
  const index_t nblk = (n + kTB - 1) / kTB;
  for (index_t blk = nblk - 1; blk >= 0; --blk) {
    const index_t k0 = blk * kTB;
    const index_t kb = std::min(kTB, n - k0);
    trsm_left_upper_small(kb, m, a + off(k0, k0, lda), lda, b + k0, ldb);
    if (k0 > 0)
      gemm_minus_blocked(k0, m, kb, a + off(0, k0, lda), lda, b + k0, ldb, b,
                         ldb, false);
  }
}

void trsm_left_lower_impl(index_t n, index_t m, const real_t* a, index_t lda,
                          real_t* b, index_t ldb) {
  if (n <= 0 || m <= 0) return;
  for (index_t k0 = 0; k0 < n; k0 += kTB) {
    const index_t kb = std::min(kTB, n - k0);
    trsm_left_lower_small(kb, m, a + off(k0, k0, lda), lda, b + k0, ldb);
    const index_t rest = k0 + kb;
    if (rest < n)
      gemm_minus_blocked(n - rest, m, kb, a + off(rest, k0, lda), lda, b + k0,
                         ldb, b + rest, ldb, false);
  }
}

void trsm_left_lower_trans_impl(index_t n, index_t m, const real_t* a,
                                index_t lda, real_t* b, index_t ldb) {
  // Backward substitution with Lᵀ; the dot products stream the contiguous
  // below-diagonal part of each L column, so no packing is needed.
  for (index_t j = 0; j < m; ++j) {
    real_t* SLU3D_RESTRICT bj = b + off(0, j, ldb);
    for (index_t k = n - 1; k >= 0; --k) {
      const real_t* SLU3D_RESTRICT ak = a + off(0, k, lda);
      real_t acc = bj[k];
      for (index_t i = k + 1; i < n; ++i) acc -= ak[i] * bj[i];
      bj[k] = acc / ak[k];
    }
  }
}

void trsm_right_upper_impl(index_t n, index_t m, const real_t* a, index_t lda,
                           real_t* b, index_t ldb) {
  if (n <= 0 || m <= 0) return;
  for (index_t k0 = 0; k0 < n; k0 += kTB) {
    const index_t kb = std::min(kTB, n - k0);
    trsm_right_upper_small(kb, m, a + off(k0, k0, lda), lda, b + off(0, k0, ldb),
                           ldb);
    const index_t rest = k0 + kb;
    if (rest < n)
      gemm_minus_blocked(m, n - rest, kb, b + off(0, k0, ldb), ldb,
                         a + off(k0, rest, lda), lda, b + off(0, rest, ldb),
                         ldb, false);
  }
}

void trsm_right_lower_trans_impl(index_t n, index_t m, const real_t* a,
                                 index_t lda, real_t* b, index_t ldb) {
  if (n <= 0 || m <= 0) return;
  for (index_t k0 = 0; k0 < n; k0 += kTB) {
    const index_t kb = std::min(kTB, n - k0);
    trsm_right_lower_trans_small(kb, m, a + off(k0, k0, lda), lda,
                                 b + off(0, k0, ldb), ldb);
    const index_t rest = k0 + kb;
    if (rest < n)
      gemm_minus_blocked(m, n - rest, kb, b + off(0, k0, ldb), ldb,
                         a + off(rest, k0, lda), lda, b + off(0, rest, ldb),
                         ldb, true);
  }
}

}  // namespace

// ---- public entry points ------------------------------------------------

void getrf_nopiv(index_t n, real_t* a, index_t lda, real_t tiny) {
  for (index_t k0 = 0; k0 < n; k0 += kTB) {
    const index_t kb = std::min(kTB, n - k0);
    // Unblocked factorization of the panel a[k0:n, k0:k0+kb].
    for (index_t k = k0; k < k0 + kb; ++k) {
      real_t* SLU3D_RESTRICT ck = a + off(0, k, lda);
      const real_t piv = ck[k];
      SLU3D_CHECK(std::abs(piv) > tiny, "zero pivot in static-pivot LU");
      const real_t inv = 1.0 / piv;
      for (index_t i = k + 1; i < n; ++i) ck[i] *= inv;
      for (index_t j = k + 1; j < k0 + kb; ++j) {
        real_t* SLU3D_RESTRICT cj = a + off(0, j, lda);
        const real_t ujk = cj[k];
        for (index_t i = k + 1; i < n; ++i) cj[i] -= ck[i] * ujk;
      }
    }
    const index_t rest = k0 + kb;
    if (rest >= n) break;
    // U block row: solve L11 * U12 = A12.
    trsm_left_lower_unit_impl(kb, n - rest, a + off(k0, k0, lda), lda,
                              a + off(k0, rest, lda), lda);
    // Trailing update: A22 -= L21 * U12.
    gemm_minus_blocked(n - rest, n - rest, kb, a + off(rest, k0, lda), lda,
                       a + off(k0, rest, lda), lda, a + off(rest, rest, lda),
                       lda, false);
  }
  count(getrf_flops(n));
}

void trsm_left_lower_unit(index_t n, index_t m, const real_t* a, index_t lda,
                          real_t* b, index_t ldb) {
  trsm_left_lower_unit_impl(n, m, a, lda, b, ldb);
  count(trsm_flops(n, m));
}

void trsm_right_upper(index_t n, index_t m, const real_t* a, index_t lda,
                      real_t* b, index_t ldb) {
  trsm_right_upper_impl(n, m, a, lda, b, ldb);
  count(trsm_flops(n, m));
}

void trsm_left_upper(index_t n, index_t m, const real_t* a, index_t lda,
                     real_t* b, index_t ldb) {
  trsm_left_upper_impl(n, m, a, lda, b, ldb);
  count(trsm_flops(n, m));
}

void trsm_left_lower(index_t n, index_t m, const real_t* a, index_t lda,
                     real_t* b, index_t ldb) {
  trsm_left_lower_impl(n, m, a, lda, b, ldb);
  count(trsm_flops(n, m));
}

void trsm_left_lower_trans(index_t n, index_t m, const real_t* a, index_t lda,
                           real_t* b, index_t ldb) {
  if (n <= 0 || m <= 0) return;
  trsm_left_lower_trans_impl(n, m, a, lda, b, ldb);
  count(trsm_flops(n, m));
}

void trsm_right_lower_trans(index_t n, index_t m, const real_t* a, index_t lda,
                            real_t* b, index_t ldb) {
  trsm_right_lower_trans_impl(n, m, a, lda, b, ldb);
  count(trsm_flops(n, m));
}

void gemm_minus(index_t m, index_t n, index_t k, const real_t* a, index_t lda,
                const real_t* b, index_t ldb, real_t* c, index_t ldc) {
  gemm_minus_blocked(m, n, k, a, lda, b, ldb, c, ldc, false);
  if (m > 0 && n > 0 && k > 0) count(gemm_flops(m, n, k));
}

void gemm_minus_nt(index_t m, index_t n, index_t k, const real_t* a,
                   index_t lda, const real_t* b, index_t ldb, real_t* c,
                   index_t ldc) {
  gemm_minus_blocked(m, n, k, a, lda, b, ldb, c, ldc, true);
  if (m > 0 && n > 0 && k > 0) count(gemm_flops(m, n, k));
}

void potrf_lower(index_t n, real_t* a, index_t lda) {
  for (index_t k0 = 0; k0 < n; k0 += kTB) {
    const index_t kb = std::min(kTB, n - k0);
    real_t* d = a + off(k0, k0, lda);
    // Unblocked right-looking Cholesky of the kb x kb diagonal block.
    for (index_t k = 0; k < kb; ++k) {
      real_t* SLU3D_RESTRICT ck = d + off(0, k, lda);
      const real_t akk = ck[k];
      SLU3D_CHECK(akk > 0.0, "matrix is not positive definite");
      const real_t lkk = std::sqrt(akk);
      ck[k] = lkk;
      const real_t inv = 1.0 / lkk;
      for (index_t i = k + 1; i < kb; ++i) ck[i] *= inv;
      for (index_t j = k + 1; j < kb; ++j) {
        real_t* SLU3D_RESTRICT cj = d + off(0, j, lda);
        const real_t ljk = ck[j];
        for (index_t i = j; i < kb; ++i) cj[i] -= ck[i] * ljk;
      }
    }
    const index_t rest = k0 + kb;
    if (rest >= n) break;
    // L21 = A21 L11^{-T}.
    trsm_right_lower_trans_impl(kb, n - rest, d, lda, a + off(rest, k0, lda),
                                lda);
    // Trailing update A22 -= L21 L21^T, one kTB-wide block column at a
    // time. The strictly-below-diagonal part is a plain packed GEMM; the
    // diagonal block lands in a local tile first so only its lower
    // triangle is merged (the caller's upper triangle must stay intact).
    for (index_t j0 = rest; j0 < n; j0 += kTB) {
      const index_t jb = std::min(kTB, n - j0);
      const real_t* lj = a + off(j0, k0, lda);
      if (j0 + jb < n)
        gemm_minus_blocked(n - j0 - jb, jb, kb, a + off(j0 + jb, k0, lda), lda,
                           lj, lda, a + off(j0 + jb, j0, lda), lda, true);
      real_t tile[static_cast<std::size_t>(kTB) * kTB];
      std::fill_n(tile, static_cast<std::size_t>(jb) * static_cast<std::size_t>(jb), 0.0);
      gemm_minus_blocked(jb, jb, kb, lj, lda, lj, lda, tile, jb, true);
      for (index_t c = 0; c < jb; ++c) {
        real_t* tc = a + off(j0, j0 + c, lda);
        const real_t* sc = tile + off(0, c, jb);
        for (index_t r = c; r < jb; ++r) tc[r] += sc[r];
      }
    }
  }
  count(potrf_flops(n));
}

offset_t flops_performed() {
  offset_t f = t_flops_performed;
  // Fold in (without draining) the ambient pool's side channel, so an
  // audit taken while a rank's pool is still alive sees worker flops too.
  if (!threads::ThreadPool::in_worker())
    if (const threads::ThreadPool* p = threads::current_pool())
      f += p->accumulated();
  return f;
}

void reset_flops_performed() {
  t_flops_performed = 0;
  if (!threads::ThreadPool::in_worker())
    if (threads::ThreadPool* p = threads::current_pool())
      (void)p->take_accumulated();
}

void note_flops_performed(offset_t flops) { t_flops_performed += flops; }

// ---- triangular vector solves (unchanged scalar kernels) ---------------

void trsv_lower(index_t n, const real_t* a, index_t lda, real_t* y) {
  for (index_t k = 0; k < n; ++k) {
    y[k] /= a[k + k * lda];
    const real_t yk = y[k];
    if (yk == 0.0) continue;
    const real_t* ak = a + k * lda;
    for (index_t i = k + 1; i < n; ++i) y[i] -= ak[i] * yk;
  }
}

void trsv_lower_trans(index_t n, const real_t* a, index_t lda, real_t* y) {
  for (index_t k = n - 1; k >= 0; --k) {
    const real_t* ak = a + k * lda;
    real_t v = y[k];
    for (index_t i = k + 1; i < n; ++i) v -= ak[i] * y[i];
    y[k] = v / ak[k];
  }
}

void trsv_lower_unit(index_t n, const real_t* a, index_t lda, real_t* y) {
  for (index_t k = 0; k < n; ++k) {
    const real_t yk = y[k];
    if (yk == 0.0) continue;
    const real_t* ak = a + k * lda;
    for (index_t i = k + 1; i < n; ++i) y[i] -= ak[i] * yk;
  }
}

bool all_zero(const real_t* x, std::size_t n) {
  // Branch once per 4 elements: |x| accumulates to exactly 0 iff every
  // element is (+/-) zero, and the OR-of-abs trick vectorizes.
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const real_t s = std::fabs(x[i]) + std::fabs(x[i + 1]) +
                     std::fabs(x[i + 2]) + std::fabs(x[i + 3]);
    if (s != 0.0) return false;
  }
  for (; i < n; ++i)
    if (x[i] != 0.0) return false;
  return true;
}

void trsv_upper_trans(index_t n, const real_t* a, index_t lda, real_t* y) {
  // U^T is lower triangular; forward substitution over columns of U.
  for (index_t k = 0; k < n; ++k) {
    const real_t* ak = a + k * lda;
    real_t v = y[k];
    for (index_t i = 0; i < k; ++i) v -= ak[i] * y[i];
    y[k] = v / ak[k];
  }
}

void trsv_lower_unit_trans(index_t n, const real_t* a, index_t lda, real_t* y) {
  // L^T is unit upper triangular; backward substitution over columns of L.
  for (index_t k = n - 1; k >= 0; --k) {
    const real_t* ak = a + k * lda;
    real_t v = y[k];
    for (index_t i = k + 1; i < n; ++i) v -= ak[i] * y[i];
    y[k] = v;
  }
}

void trsv_upper(index_t n, const real_t* a, index_t lda, real_t* y) {
  for (index_t k = n - 1; k >= 0; --k) {
    const real_t* ak = a + k * lda;
    y[k] /= ak[k];
    const real_t yk = y[k];
    if (yk == 0.0) continue;
    for (index_t i = 0; i < k; ++i) y[i] -= ak[i] * yk;
  }
}

}  // namespace dense
}  // namespace slu3d
