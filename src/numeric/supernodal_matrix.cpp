#include "numeric/supernodal_matrix.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace slu3d {

SupernodalMatrix::SupernodalMatrix(const BlockStructure& bs)
    : SupernodalMatrix(bs, std::vector<bool>(static_cast<std::size_t>(bs.n_snodes()), true)) {}

SupernodalMatrix::SupernodalMatrix(const BlockStructure& bs,
                                   const std::vector<bool>& want_snode)
    : bs_(&bs) {
  const auto nsn = static_cast<std::size_t>(bs.n_snodes());
  SLU3D_CHECK(want_snode.size() == nsn, "want_snode size mismatch");
  diag_.resize(nsn);
  lpan_.resize(nsn);
  upan_.resize(nsn);
  rows_.resize(nsn);
  block_offsets_.resize(nsn);
  for (int s = 0; s < bs.n_snodes(); ++s)
    if (want_snode[static_cast<std::size_t>(s)]) allocate(s);
}

void SupernodalMatrix::allocate(int s) {
  const auto ns = static_cast<std::size_t>(bs_->snode_size(s));
  const auto m = static_cast<std::size_t>(bs_->panel_rows(s));
  diag_[static_cast<std::size_t>(s)].assign(ns * ns, 0.0);
  lpan_[static_cast<std::size_t>(s)].assign(m * ns, 0.0);
  upan_[static_cast<std::size_t>(s)].assign(ns * m, 0.0);
  auto& rows = rows_[static_cast<std::size_t>(s)];
  auto& offs = block_offsets_[static_cast<std::size_t>(s)];
  rows.reserve(m);
  for (const PanelBlock& blk : bs_->lpanel(s)) {
    offs.emplace_back(blk.snode, static_cast<index_t>(rows.size()));
    rows.insert(rows.end(), blk.rows.begin(), blk.rows.end());
  }
}

std::pair<index_t, index_t> SupernodalMatrix::block_range(int s, int a) const {
  const auto& offs = block_offsets_[static_cast<std::size_t>(s)];
  const auto it = std::lower_bound(
      offs.begin(), offs.end(), a,
      [](const std::pair<int, index_t>& p, int key) { return p.first < key; });
  if (it == offs.end() || it->first != a) return {-1, 0};
  const auto next = it + 1;
  const index_t end = next == offs.end()
                          ? static_cast<index_t>(rows_[static_cast<std::size_t>(s)].size())
                          : next->second;
  return {it->second, end - it->second};
}

void SupernodalMatrix::fill_from(const CsrMatrix& Ap) {
  SLU3D_CHECK(Ap.n_rows() == bs_->n(), "matrix size mismatch");
  for (index_t i = 0; i < Ap.n_rows(); ++i) {
    const int si = bs_->col_to_snode(i);
    const auto cols = Ap.row_cols(i);
    const auto vals = Ap.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const index_t j = cols[k];
      const real_t v = vals[k];
      const int sj = bs_->col_to_snode(j);
      if (si == sj) {
        if (!has_snode(si)) continue;
        const index_t f = bs_->first_col(si);
        const index_t ns = bs_->snode_size(si);
        diag_[static_cast<std::size_t>(si)][static_cast<std::size_t>((i - f) + (j - f) * ns)] += v;
      } else if (sj < si) {
        // Below-diagonal: row i of L panel of supernode sj.
        if (!has_snode(sj)) continue;
        const auto& rows = rows_[static_cast<std::size_t>(sj)];
        const auto it = std::lower_bound(rows.begin(), rows.end(), i);
        SLU3D_CHECK(it != rows.end() && *it == i,
                    "A entry outside symbolic L structure");
        const auto r = static_cast<std::size_t>(it - rows.begin());
        const auto m = rows.size();
        const index_t f = bs_->first_col(sj);
        lpan_[static_cast<std::size_t>(sj)][r + static_cast<std::size_t>(j - f) * m] += v;
      } else {
        // Above-diagonal: column j of U panel of supernode si.
        if (!has_snode(si)) continue;
        const auto& cols_of = rows_[static_cast<std::size_t>(si)];
        const auto it = std::lower_bound(cols_of.begin(), cols_of.end(), j);
        SLU3D_CHECK(it != cols_of.end() && *it == j,
                    "A entry outside symbolic U structure");
        const auto c = static_cast<std::size_t>(it - cols_of.begin());
        const auto ns = static_cast<std::size_t>(bs_->snode_size(si));
        upan_[static_cast<std::size_t>(si)][static_cast<std::size_t>(i - bs_->first_col(si)) + c * ns] += v;
      }
    }
  }
}

real_t SupernodalMatrix::l_entry(index_t i, index_t j) const {
  SLU3D_CHECK(i >= j, "l_entry needs i >= j");
  const int sj = bs_->col_to_snode(j);
  const index_t f = bs_->first_col(sj);
  if (bs_->col_to_snode(i) == sj) {
    if (i == j) return 1.0;  // unit diagonal of L
    const index_t ns = bs_->snode_size(sj);
    return diag_[static_cast<std::size_t>(sj)][static_cast<std::size_t>((i - f) + (j - f) * ns)];
  }
  const auto& rows = rows_[static_cast<std::size_t>(sj)];
  const auto it = std::lower_bound(rows.begin(), rows.end(), i);
  if (it == rows.end() || *it != i) return 0.0;
  const auto r = static_cast<std::size_t>(it - rows.begin());
  return lpan_[static_cast<std::size_t>(sj)][r + static_cast<std::size_t>(j - f) * rows.size()];
}

real_t SupernodalMatrix::u_entry(index_t i, index_t j) const {
  SLU3D_CHECK(i <= j, "u_entry needs i <= j");
  const int si = bs_->col_to_snode(i);
  const index_t f = bs_->first_col(si);
  if (bs_->col_to_snode(j) == si) {
    const index_t ns = bs_->snode_size(si);
    return diag_[static_cast<std::size_t>(si)][static_cast<std::size_t>((i - f) + (j - f) * ns)];
  }
  const auto& cols = rows_[static_cast<std::size_t>(si)];
  const auto it = std::lower_bound(cols.begin(), cols.end(), j);
  if (it == cols.end() || *it != j) return 0.0;
  const auto c = static_cast<std::size_t>(it - cols.begin());
  const auto ns = static_cast<std::size_t>(bs_->snode_size(si));
  return upan_[static_cast<std::size_t>(si)][static_cast<std::size_t>(i - f) + c * ns];
}

offset_t SupernodalMatrix::allocated_bytes() const {
  offset_t bytes = 0;
  for (std::size_t s = 0; s < diag_.size(); ++s) {
    bytes += static_cast<offset_t>(
        (diag_[s].size() + lpan_[s].size() + upan_[s].size()) * sizeof(real_t));
    bytes += static_cast<offset_t>(rows_[s].size() * sizeof(index_t));
  }
  return bytes;
}

}  // namespace slu3d
