// Dense BLAS-3-style kernels (the MKL substitute). All matrices are
// column-major with an explicit leading dimension, matching the interfaces
// SuperLU_DIST calls (GETRF without pivoting, two TRSM variants, GEMM).
//
// The default entry points run on a BLIS-style blocked substrate: an
// MR x NR register-tiled micro-kernel under KC/MC/NC cache blocking with
// explicit packing of A and B into contiguous aligned buffers (see
// DESIGN.md, "Dense kernel substrate"). The historical triple-loop
// kernels are preserved under dense::ref for testing and as the
// zero-skipping variant sparse-scatter callers may opt into.
#pragma once

#include <cstddef>

#include "support/types.hpp"

namespace slu3d {
namespace dense {

// ---- blocking parameters (see DESIGN.md for the retuning recipe) -------
inline constexpr index_t kMR = 8;    ///< micro-tile rows (register tiling)
inline constexpr index_t kNR = 6;    ///< micro-tile columns
inline constexpr index_t kKC = 256;  ///< k-dimension cache block (packed panel depth)
inline constexpr index_t kMC = 128;  ///< m-dimension cache block (A block, ~L2)
inline constexpr index_t kNC = 512;  ///< n-dimension cache block (B panel)
inline constexpr index_t kTB = 64;   ///< triangular/diagonal block for TRSM/GETRF/POTRF

// Worst-case pack-buffer footprints of one *serial* GEMM invocation — the
// form a pool worker runs inside a Schur-pair task (the parallel top-level
// GEMM packs through the rank thread's arena instead). A: one kMC x kKC
// cache block; B: one kNC-wide panel of kNR-column micro-panels at depth
// kKC. ParallelKernels presizes every worker's thread-local KernelScratch
// to these at pool construction, so worker tasks never grow a pack buffer
// on the hot path (KernelScratch asserts they don't).
inline constexpr std::size_t kWorkerPackA =
    static_cast<std::size_t>(kMC) * static_cast<std::size_t>(kKC);
inline constexpr std::size_t kWorkerPackB =
    (static_cast<std::size_t>(kNC) + kNR - 1) / kNR *
    static_cast<std::size_t>(kNR) * static_cast<std::size_t>(kKC);

/// In-place LU factorization without pivoting: A = L U with L unit lower
/// triangular, both overwriting A. Throws if a diagonal entry collapses
/// below `tiny` (static pivoting failure).
void getrf_nopiv(index_t n, real_t* a, index_t lda, real_t tiny = 1e-300);

/// B <- L^{-1} B where L is the unit-lower part of `a` (n x n), B is n x m.
/// (SuperLU's "panel solve" for the U panel.)
void trsm_left_lower_unit(index_t n, index_t m, const real_t* a, index_t lda,
                          real_t* b, index_t ldb);

/// B <- B U^{-1} where U is the upper part of `a` (n x n), B is m x n.
/// (Panel solve for the L panel.)
void trsm_right_upper(index_t n, index_t m, const real_t* a, index_t lda,
                      real_t* b, index_t ldb);

// ---- multi-RHS solve panels ---------------------------------------------
// Left-side solves on an n x m right-hand-side panel — the batched
// counterparts of the trsv_* kernels below, used by the distributed
// triangular solves when nrhs > 1 folds a whole batch into one sweep.

/// B <- U^{-1} B where U is the upper part of `a` (n x n), B is n x m.
/// (Batched backward substitution at a diagonal block.)
void trsm_left_upper(index_t n, index_t m, const real_t* a, index_t lda,
                     real_t* b, index_t ldb);

/// B <- L^{-1} B with *non-unit* lower triangular L; B is n x m.
/// (Batched Cholesky forward substitution.)
void trsm_left_lower(index_t n, index_t m, const real_t* a, index_t lda,
                     real_t* b, index_t ldb);

/// B <- L^{-T} B with non-unit lower triangular L; B is n x m.
/// (Batched Cholesky backward substitution.)
void trsm_left_lower_trans(index_t n, index_t m, const real_t* a, index_t lda,
                           real_t* b, index_t ldb);

/// C <- C - A B with A (m x k), B (k x n), C (m x n).
/// (The Schur-complement GEMM.)
void gemm_minus(index_t m, index_t n, index_t k, const real_t* a, index_t lda,
                const real_t* b, index_t ldb, real_t* c, index_t ldc);

/// y <- L^{-1} y for one vector (unit lower part of a).
void trsv_lower_unit(index_t n, const real_t* a, index_t lda, real_t* y);

/// True if all n values are (+/-) zero. Used by the sparse z-reduction
/// packing to detect ancestor blocks a subtree never touched; kept here so
/// the scan shares the kernels' unrolling style and stays off the
/// per-element-branch path.
bool all_zero(const real_t* x, std::size_t n);

// ---- Cholesky kernels (the LL^T variant, paper §VII) -------------------

/// In-place Cholesky of the lower triangle: A = L L^T, L overwriting the
/// lower part of A (the upper part is untouched). Throws if a pivot is
/// not positive (matrix not SPD).
void potrf_lower(index_t n, real_t* a, index_t lda);

/// B <- B L^{-T} with L the (non-unit) lower part of `a`; B is m x n.
/// (Cholesky panel solve.)
void trsm_right_lower_trans(index_t n, index_t m, const real_t* a, index_t lda,
                            real_t* b, index_t ldb);

/// C <- C - A B^T with A (m x k), B (n x k), C (m x n).
/// (Symmetric Schur update V = L_i L_j^T.)
void gemm_minus_nt(index_t m, index_t n, index_t k, const real_t* a,
                   index_t lda, const real_t* b, index_t ldb, real_t* c,
                   index_t ldc);

/// y <- L^{-1} y with non-unit lower triangular L.
void trsv_lower(index_t n, const real_t* a, index_t lda, real_t* y);

/// y <- L^{-T} y with non-unit lower triangular L.
void trsv_lower_trans(index_t n, const real_t* a, index_t lda, real_t* y);

inline offset_t potrf_flops(offset_t n) { return n * n * n / 3; }

/// y <- U^{-1} y for one vector (upper part of a).
void trsv_upper(index_t n, const real_t* a, index_t lda, real_t* y);

/// y <- U^{-T} y (transpose solve with the upper part of a).
void trsv_upper_trans(index_t n, const real_t* a, index_t lda, real_t* y);

/// y <- L^{-T} y with *unit* lower triangular L.
void trsv_lower_unit_trans(index_t n, const real_t* a, index_t lda, real_t* y);

/// Flop counts used by the performance model and the simulator's logical
/// clocks; they match the paper's accounting (Table III counts Schur +
/// panel + diagonal work).
inline offset_t getrf_flops(offset_t n) { return 2 * n * n * n / 3; }
inline offset_t trsm_flops(offset_t n, offset_t m) { return static_cast<offset_t>(n) * n * m; }
inline offset_t gemm_flops(offset_t m, offset_t n, offset_t k) {
  return 2 * m * n * k;
}

// ---- flop accounting audit ---------------------------------------------
// Every public BLAS-3 entry point above adds its canonical model count
// (the *_flops formula of its arguments; trsm_right_lower_trans counts
// trsm_flops(n, m), packing traffic is never counted, and internal calls
// inside a blocked kernel are not re-counted) to a thread-local counter.
// A call site that charges the same formula to the simulator therefore
// satisfies charged == performed exactly; test_model asserts this.

/// Model flops performed by this thread's dense kernels since the last
/// reset_flops_performed(). Kernels executed on a pool worker accumulate
/// into the pool's side channel instead of the worker's own counter;
/// flops_performed() folds the ambient pool's accumulator in (and
/// ParallelKernels drains it into the owner's counter at destruction), so
/// the audit identity holds unchanged under any worker count.
offset_t flops_performed();
void reset_flops_performed();
/// Adds externally-harvested flops (a pool's drained side channel) to this
/// thread's performed-flop counter.
void note_flops_performed(offset_t flops);

// ---- reference kernels --------------------------------------------------
// The original unblocked triple-loop implementations, kept verbatim: the
// oracle for the blocked substrate's tests, and the only variants that
// skip explicit zeros (a property some sparse-scatter callers may rely
// on; the dense path must not pay the branch). They do not touch the
// flop counter.
namespace ref {

void getrf_nopiv(index_t n, real_t* a, index_t lda, real_t tiny = 1e-300);
void trsm_left_lower_unit(index_t n, index_t m, const real_t* a, index_t lda,
                          real_t* b, index_t ldb);
void trsm_right_upper(index_t n, index_t m, const real_t* a, index_t lda,
                      real_t* b, index_t ldb);
void trsm_right_lower_trans(index_t n, index_t m, const real_t* a, index_t lda,
                            real_t* b, index_t ldb);
void gemm_minus(index_t m, index_t n, index_t k, const real_t* a, index_t lda,
                const real_t* b, index_t ldb, real_t* c, index_t ldc);
void gemm_minus_nt(index_t m, index_t n, index_t k, const real_t* a,
                   index_t lda, const real_t* b, index_t ldb, real_t* c,
                   index_t ldc);
void potrf_lower(index_t n, real_t* a, index_t lda);

}  // namespace ref

}  // namespace dense
}  // namespace slu3d
