// Partial factorization with an explicit trailing Schur complement:
// eliminate only the supernodes of the leading principal block and expose
//   S = A22 - A21 A11^{-1} A12
// on the remaining block — the building block of hybrid direct/iterative
// solvers (e.g. PDSLin, which couples exactly this operation with an
// iterative solve on S; the paper's authors' companion line of work).
#pragma once

#include <vector>

#include "numeric/supernodal_matrix.hpp"
#include "sparse/csr.hpp"

namespace slu3d {

struct SchurComplementResult {
  /// The eliminated supernodes (ascending) — the "interior".
  std::vector<int> eliminated;
  /// Supernodes of the Schur block (ascending) — the "interface".
  std::vector<int> interface;
  /// S as a sparse matrix in the *global permuted* index space restricted
  /// to interface columns/rows (indices are the original permuted ones).
  CsrMatrix schur;
  index_t interface_dim = 0;
};

/// Partially factorizes F in place: eliminates every supernode whose
/// column range ends at or before `split_col`, leaving the (updated)
/// trailing blocks as the Schur complement, which is extracted into a CSR
/// matrix over the interface indices (compacted to 0..interface_dim).
/// F must hold the permuted matrix values (fill_from already applied).
SchurComplementResult eliminate_leading_block(SupernodalMatrix& F,
                                              index_t split_col);

/// Forward substitution restricted to the eliminated supernodes:
/// y1 = L11^{-1} b1, and b2 <- b2 - L21 y1 (the interface right-hand side
/// for the Schur system). `x` holds the full permuted rhs in place.
void forward_eliminated(const SupernodalMatrix& F, std::span<const int> elim,
                        std::span<real_t> x);

/// Backward substitution restricted to the eliminated supernodes, given
/// the interface solution already stored in x's trailing entries:
/// x1 = U11^{-1} (y1 - U12 x2).
void backward_eliminated(const SupernodalMatrix& F, std::span<const int> elim,
                         std::span<real_t> x);

}  // namespace slu3d
