#include "numeric/solver.hpp"

#include "numeric/condition.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace slu3d {

SparseLuSolver::SparseLuSolver(const CsrMatrix& A, const SolverOptions& options)
    : A_(&A), options_(options) {
  SLU3D_CHECK(A.n_rows() == A.n_cols(), "solver needs a square matrix");

  // Preprocessing pipeline (SuperLU_DIST order): equilibrate, then ensure
  // a structurally nonzero diagonal for static pivoting.
  const CsrMatrix* work = &A;
  if (options.equilibrate) {
    eq_ = compute_equilibration(A);
    preprocessed_ = std::make_unique<CsrMatrix>(apply_equilibration(A, *eq_));
    work = preprocessed_.get();
  }
  if (options.fix_zero_diagonal && !has_zero_free_diagonal(*work)) {
    rowperm_ = zero_free_diagonal_permutation(*work);
    SLU3D_CHECK(rowperm_.has_value(), "matrix is structurally singular");
    preprocessed_ = std::make_unique<CsrMatrix>(permute_rows(*work, *rowperm_));
    work = preprocessed_.get();
  }

  if (options.geometry.has_value()) {
    SLU3D_CHECK(options.geometry->n() == A.n_rows(),
                "geometry does not match matrix dimension");
    SLU3D_CHECK(!rowperm_.has_value(),
                "geometric ordering is incompatible with a diagonal-fixing "
                "row permutation");
    tree_ = std::make_unique<SeparatorTree>(
        geometric_nd(*options.geometry, options.nd));
  } else {
    tree_ = std::make_unique<SeparatorTree>(nested_dissection(*work, options.nd));
  }
  perm_.assign(tree_->perm().begin(), tree_->perm().end());
  pinv_ = invert_permutation(perm_);
  bs_ = std::make_unique<BlockStructure>(*work, *tree_);
  factors_ = std::make_unique<SupernodalMatrix>(*bs_);
  factors_->fill_from(work->permuted_symmetric(perm_));
  factorize_sequential(*factors_);
}

void SparseLuSolver::apply_inverse(std::span<const real_t> rhs,
                                   std::span<real_t> out) const {
  // b' = P_row (R b), then the fill-reducing permutation, the factored
  // solve, and the inverse transforms: x = C y.
  const auto n = static_cast<std::size_t>(A_->n_rows());
  std::vector<real_t> pb(n), px(n), tmp(rhs.begin(), rhs.end());
  if (eq_.has_value()) scale_rhs(*eq_, tmp);
  if (rowperm_.has_value()) {
    for (std::size_t i = 0; i < n; ++i)
      px[i] = tmp[static_cast<std::size_t>((*rowperm_)[i])];
    tmp = px;
  }
  for (std::size_t i = 0; i < n; ++i)
    pb[static_cast<std::size_t>(pinv_[i])] = tmp[i];
  solve_factored(*factors_, pb);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = pb[static_cast<std::size_t>(pinv_[i])];
  if (eq_.has_value()) unscale_solution(*eq_, out);
}

SolveReport SparseLuSolver::solve(std::span<const real_t> b,
                                  std::span<real_t> x) const {
  const auto n = static_cast<std::size_t>(A_->n_rows());
  SLU3D_CHECK(b.size() == n && x.size() == n, "rhs size mismatch");

  auto apply = [&](std::span<const real_t> rhs, std::span<real_t> out) {
    apply_inverse(rhs, out);
  };

  apply(b, x);
  SolveReport report;
  report.final_residual_norm = relative_residual(*A_, x, b);

  // Iterative refinement: r = b - A x; x += A^{-1} r.
  std::vector<real_t> r(n), dx(n);
  for (int it = 0; it < options_.refinement_steps; ++it) {
    A_->spmv(x, r);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    apply(r, dx);
    for (std::size_t i = 0; i < n; ++i) x[i] += dx[i];
    const real_t res = relative_residual(*A_, x, b);
    ++report.refinement_steps_used;
    if (res >= report.final_residual_norm) {  // converged / stagnated
      report.final_residual_norm = std::min(res, report.final_residual_norm);
      break;
    }
    report.final_residual_norm = res;
  }
  return report;
}

void SparseLuSolver::solve_transpose(std::span<const real_t> b,
                                     std::span<real_t> x) const {
  const auto n = static_cast<std::size_t>(A_->n_rows());
  SLU3D_CHECK(b.size() == n && x.size() == n, "rhs size mismatch");
  // A = R^{-1} Pᵀ B C^{-1}  =>  Aᵀ x = b  <=>  Bᵀ (P R^{-1} x) = C b:
  // scale by C, transpose-solve with the factors of B (through the
  // fill-reducing permutation), then x = R Pᵀ y.
  std::vector<real_t> tmp(b.begin(), b.end());
  if (eq_.has_value())
    for (std::size_t i = 0; i < n; ++i) tmp[i] *= eq_->col_scale[i];
  std::vector<real_t> pb(n);
  for (std::size_t i = 0; i < n; ++i)
    pb[static_cast<std::size_t>(pinv_[i])] = tmp[i];
  solve_factored_transpose(*factors_, pb);
  for (std::size_t i = 0; i < n; ++i)
    tmp[i] = pb[static_cast<std::size_t>(pinv_[i])];
  if (rowperm_.has_value()) {
    for (std::size_t i = 0; i < n; ++i)
      x[static_cast<std::size_t>((*rowperm_)[i])] = tmp[i];
  } else {
    std::copy(tmp.begin(), tmp.end(), x.begin());
  }
  if (eq_.has_value())
    for (std::size_t i = 0; i < n; ++i) x[i] *= eq_->row_scale[i];
}

real_t SparseLuSolver::estimate_condition_number() const {
  const index_t n = A_->n_rows();
  std::vector<real_t> work(static_cast<std::size_t>(n));
  auto fwd = [&](std::span<real_t> v) {
    std::copy(v.begin(), v.end(), work.begin());
    apply_inverse(work, v);
  };
  auto bwd = [&](std::span<real_t> v) {
    std::copy(v.begin(), v.end(), work.begin());
    solve_transpose(work, v);
  };
  const real_t inv_norm = estimate_inverse_norm1(n, fwd, bwd);
  return inv_norm * norm1(*A_);
}

real_t relative_residual(const CsrMatrix& A, std::span<const real_t> x,
                         std::span<const real_t> b) {
  const auto n = static_cast<std::size_t>(A.n_rows());
  std::vector<real_t> ax(n);
  A.spmv(x, ax);
  real_t rnorm = 0.0, xnorm = 0.0, bnorm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    rnorm = std::max(rnorm, std::abs(b[i] - ax[i]));
    xnorm = std::max(xnorm, std::abs(x[i]));
    bnorm = std::max(bnorm, std::abs(b[i]));
  }
  const real_t denom = A.norm_inf() * xnorm + bnorm;
  return denom > 0 ? rnorm / denom : rnorm;
}

}  // namespace slu3d
