#include "numeric/krylov.hpp"

#include <cmath>
#include <vector>

#include "support/check.hpp"

namespace slu3d {

namespace {

real_t dot(std::span<const real_t> a, std::span<const real_t> b) {
  real_t s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

real_t norm2(std::span<const real_t> a) { return std::sqrt(dot(a, a)); }

void axpy(real_t alpha, std::span<const real_t> x, std::span<real_t> y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace

Preconditioner identity_preconditioner() {
  return [](std::span<real_t>) {};
}

KrylovReport pcg(const CsrMatrix& A, std::span<const real_t> b,
                 std::span<real_t> x, const Preconditioner& precond,
                 const KrylovOptions& options) {
  const auto n = static_cast<std::size_t>(A.n_rows());
  SLU3D_CHECK(b.size() == n && x.size() == n, "size mismatch");
  KrylovReport report;
  const real_t bnorm = norm2(b);
  if (bnorm == 0) {
    std::fill(x.begin(), x.end(), 0.0);
    report.converged = true;
    return report;
  }

  std::vector<real_t> r(n), z(n), p(n), ap(n);
  A.spmv(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  z.assign(r.begin(), r.end());
  precond(z);
  p = z;
  real_t rz = dot(r, z);

  for (int it = 0; it < options.max_iterations; ++it) {
    report.relative_residual = norm2(r) / bnorm;
    if (report.relative_residual < options.tolerance) {
      report.converged = true;
      return report;
    }
    A.spmv(p, ap);
    const real_t alpha = rz / dot(p, ap);
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    z.assign(r.begin(), r.end());
    precond(z);
    const real_t rz_new = dot(r, z);
    const real_t beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    ++report.iterations;
  }
  report.relative_residual = norm2(r) / bnorm;
  report.converged = report.relative_residual < options.tolerance;
  return report;
}

KrylovReport bicgstab(const CsrMatrix& A, std::span<const real_t> b,
                      std::span<real_t> x, const Preconditioner& precond,
                      const KrylovOptions& options) {
  const auto n = static_cast<std::size_t>(A.n_rows());
  SLU3D_CHECK(b.size() == n && x.size() == n, "size mismatch");
  KrylovReport report;
  const real_t bnorm = norm2(b);
  if (bnorm == 0) {
    std::fill(x.begin(), x.end(), 0.0);
    report.converged = true;
    return report;
  }

  std::vector<real_t> r(n), r0(n), p(n), v(n), s(n), t(n), y(n), z(n);
  A.spmv(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  r0 = r;
  real_t rho = 1, alpha = 1, omega = 1;
  std::fill(p.begin(), p.end(), 0.0);
  std::fill(v.begin(), v.end(), 0.0);

  for (int it = 0; it < options.max_iterations; ++it) {
    report.relative_residual = norm2(r) / bnorm;
    if (report.relative_residual < options.tolerance) {
      report.converged = true;
      return report;
    }
    const real_t rho_new = dot(r0, r);
    if (rho_new == 0) break;  // breakdown
    const real_t beta = (rho_new / rho) * (alpha / omega);
    rho = rho_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * (p[i] - omega * v[i]);
    y = p;
    precond(y);
    A.spmv(y, v);
    alpha = rho / dot(r0, v);
    s = r;
    axpy(-alpha, v, s);
    z = s;
    precond(z);
    A.spmv(z, t);
    const real_t tt = dot(t, t);
    omega = tt > 0 ? dot(t, s) / tt : 0;
    axpy(alpha, y, x);
    axpy(omega, z, x);
    r = s;
    axpy(-omega, t, r);
    ++report.iterations;
    if (omega == 0) break;  // breakdown
  }
  report.relative_residual = norm2(r) / bnorm;
  report.converged = report.relative_residual < options.tolerance;
  return report;
}

}  // namespace slu3d
