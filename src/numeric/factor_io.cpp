#include "numeric/factor_io.hpp"

#include <fstream>
#include <memory>

#include "support/check.hpp"

namespace slu3d {

namespace {

constexpr std::uint64_t kCsrMagic = 0x534c5533'43535231ull;   // "SLU3CSR1"
constexpr std::uint64_t kTreeMagic = 0x534c5533'54524531ull;  // "SLU3TRE1"
constexpr std::uint64_t kFactMagic = 0x534c5533'46414331ull;  // "SLU3FAC1"

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  SLU3D_CHECK(static_cast<bool>(is), "truncated binary stream");
  return v;
}

template <typename T>
void put_vec(std::ostream& os, std::span<const T> v) {
  put<std::uint64_t>(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> get_vec(std::istream& is) {
  const auto n = get<std::uint64_t>(is);
  std::vector<T> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  SLU3D_CHECK(static_cast<bool>(is), "truncated binary stream");
  return v;
}

struct FingerprintMixer {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  void mix(std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
};

}  // namespace

std::uint64_t pattern_fingerprint(const CsrMatrix& A) {
  FingerprintMixer m;
  m.mix(static_cast<std::uint64_t>(A.n_rows()));
  m.mix(static_cast<std::uint64_t>(A.n_cols()));
  for (const offset_t p : A.row_ptr()) m.mix(static_cast<std::uint64_t>(p));
  for (const index_t c : A.col_idx()) m.mix(static_cast<std::uint64_t>(c));
  return m.h;
}

std::uint64_t pattern_fingerprint(const CsrMatrix& A, std::uint64_t salt) {
  FingerprintMixer m;
  m.mix(salt);
  m.mix(static_cast<std::uint64_t>(A.n_rows()));
  m.mix(static_cast<std::uint64_t>(A.n_cols()));
  for (const offset_t p : A.row_ptr()) m.mix(static_cast<std::uint64_t>(p));
  for (const index_t c : A.col_idx()) m.mix(static_cast<std::uint64_t>(c));
  return m.h;
}

std::uint64_t structure_fingerprint(const BlockStructure& bs) {
  FingerprintMixer m;
  m.mix(static_cast<std::uint64_t>(bs.n()));
  m.mix(static_cast<std::uint64_t>(bs.n_snodes()));
  for (int s = 0; s < bs.n_snodes(); ++s) {
    m.mix(static_cast<std::uint64_t>(bs.snode_size(s)));
    m.mix(static_cast<std::uint64_t>(bs.panel_rows(s)));
  }
  return m.h;
}

void write_csr_binary(std::ostream& os, const CsrMatrix& A) {
  put(os, kCsrMagic);
  put<std::int64_t>(os, A.n_rows());
  put<std::int64_t>(os, A.n_cols());
  put_vec(os, A.row_ptr());
  put_vec(os, A.col_idx());
  put_vec(os, A.values());
}

CsrMatrix read_csr_binary(std::istream& is) {
  SLU3D_CHECK(get<std::uint64_t>(is) == kCsrMagic, "not a CSR binary stream");
  const auto nr = static_cast<index_t>(get<std::int64_t>(is));
  const auto nc = static_cast<index_t>(get<std::int64_t>(is));
  auto rp = get_vec<offset_t>(is);
  auto ci = get_vec<index_t>(is);
  auto va = get_vec<real_t>(is);
  return CsrMatrix::from_raw(nr, nc, std::move(rp), std::move(ci), std::move(va));
}

void write_tree_binary(std::ostream& os, const SeparatorTree& tree) {
  put(os, kTreeMagic);
  put_vec(os, tree.perm());
  put<std::int64_t>(os, tree.n_nodes());
  put<std::int64_t>(os, tree.root());
  for (const SepTreeNode& nd : tree.nodes()) {
    put<std::int64_t>(os, nd.subtree_first);
    put<std::int64_t>(os, nd.sep_first);
    put<std::int64_t>(os, nd.sep_last);
    put<std::int64_t>(os, nd.left);
    put<std::int64_t>(os, nd.right);
    put<std::int64_t>(os, nd.parent);
  }
}

SeparatorTree read_tree_binary(std::istream& is) {
  SLU3D_CHECK(get<std::uint64_t>(is) == kTreeMagic, "not a tree binary stream");
  auto perm = get_vec<index_t>(is);
  const auto n_nodes = get<std::int64_t>(is);
  const auto root = static_cast<int>(get<std::int64_t>(is));
  std::vector<SepTreeNode> nodes;
  nodes.reserve(static_cast<std::size_t>(n_nodes));
  for (std::int64_t i = 0; i < n_nodes; ++i) {
    SepTreeNode nd;
    nd.subtree_first = static_cast<index_t>(get<std::int64_t>(is));
    nd.sep_first = static_cast<index_t>(get<std::int64_t>(is));
    nd.sep_last = static_cast<index_t>(get<std::int64_t>(is));
    nd.left = static_cast<int>(get<std::int64_t>(is));
    nd.right = static_cast<int>(get<std::int64_t>(is));
    nd.parent = static_cast<int>(get<std::int64_t>(is));
    nodes.push_back(nd);
  }
  return SeparatorTree(std::move(perm), std::move(nodes), root);
}

void write_factors_binary(std::ostream& os, const SupernodalMatrix& F) {
  const BlockStructure& bs = F.structure();
  put(os, kFactMagic);
  put(os, structure_fingerprint(bs));
  for (int s = 0; s < bs.n_snodes(); ++s) {
    put_vec(os, F.diag(s));
    put_vec(os, F.lpanel(s));
    put_vec(os, F.upanel(s));
  }
}

SupernodalMatrix read_factors_binary(std::istream& is,
                                     const BlockStructure& bs) {
  SLU3D_CHECK(get<std::uint64_t>(is) == kFactMagic, "not a factor binary stream");
  SLU3D_CHECK(get<std::uint64_t>(is) == structure_fingerprint(bs),
              "factor file does not match this matrix/ordering");
  SupernodalMatrix F(bs);
  for (int s = 0; s < bs.n_snodes(); ++s) {
    const auto d = get_vec<real_t>(is);
    SLU3D_CHECK(d.size() == F.diag(s).size(), "diag extent mismatch");
    std::copy(d.begin(), d.end(), F.diag(s).begin());
    const auto lp = get_vec<real_t>(is);
    SLU3D_CHECK(lp.size() == F.lpanel(s).size(), "L extent mismatch");
    std::copy(lp.begin(), lp.end(), F.lpanel(s).begin());
    const auto up = get_vec<real_t>(is);
    SLU3D_CHECK(up.size() == F.upanel(s).size(), "U extent mismatch");
    std::copy(up.begin(), up.end(), F.upanel(s).begin());
  }
  return F;
}

void save_factorization(const std::string& path, const SeparatorTree& tree,
                        const SupernodalMatrix& F) {
  std::ofstream os(path, std::ios::binary);
  SLU3D_CHECK(os.good(), "cannot open " + path);
  write_tree_binary(os, tree);
  write_factors_binary(os, F);
}

std::pair<SeparatorTree, SupernodalMatrix> load_factorization(
    const std::string& path, const CsrMatrix& A,
    std::unique_ptr<BlockStructure>* bs_out) {
  std::ifstream is(path, std::ios::binary);
  SLU3D_CHECK(is.good(), "cannot open " + path);
  SeparatorTree tree = read_tree_binary(is);
  auto bs = std::make_unique<BlockStructure>(A, tree);
  SupernodalMatrix F = read_factors_binary(is, *bs);
  SLU3D_CHECK(bs_out != nullptr, "bs_out must receive the block structure");
  *bs_out = std::move(bs);
  return {std::move(tree), std::move(F)};
}

}  // namespace slu3d
