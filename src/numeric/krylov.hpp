// Preconditioned Krylov solvers that use a (possibly approximate) sparse
// factorization as the preconditioner — the standard deployment of a
// direct solver inside an iterative loop (e.g. factor a nearby/simplified
// matrix once, then iterate on the true operator). Provides CG for SPD
// systems and BiCGSTAB for general ones.
#pragma once

#include <functional>
#include <span>

#include "sparse/csr.hpp"

namespace slu3d {

struct KrylovOptions {
  int max_iterations = 200;
  real_t tolerance = 1e-12;  ///< on ||r||_2 / ||b||_2
};

struct KrylovReport {
  int iterations = 0;
  real_t relative_residual = 0;
  bool converged = false;
};

/// Applies M^{-1} to a vector in place (e.g. a SparseLuSolver /
/// SparseCholeskySolver solve, or the identity).
using Preconditioner = std::function<void(std::span<real_t>)>;

/// Identity preconditioner (plain CG / BiCGSTAB).
Preconditioner identity_preconditioner();

/// Preconditioned conjugate gradients for SPD A. `x` holds the initial
/// guess on entry and the solution on exit.
KrylovReport pcg(const CsrMatrix& A, std::span<const real_t> b,
                 std::span<real_t> x, const Preconditioner& precond,
                 const KrylovOptions& options = {});

/// Preconditioned BiCGSTAB for general A.
KrylovReport bicgstab(const CsrMatrix& A, std::span<const real_t> b,
                      std::span<real_t> x, const Preconditioner& precond,
                      const KrylovOptions& options = {});

}  // namespace slu3d
