// Numeric storage for a supernodal LU factorization, shared between the
// sequential reference solver and the distributed 2D/3D algorithms (the
// distributed versions instantiate the same block layout, populated only
// with locally owned blocks).
//
// Per supernode s (size ns, panel rows m):
//   diag : ns x ns dense column-major — holds A_ss, later L_ss \ U_ss.
//   L    : m  x ns dense column-major — rows are the symbolic rowset(s).
//   U    : ns x m  dense column-major — columns are the same index set
//          (pattern-symmetric factorization).
#pragma once

#include <span>
#include <vector>

#include "symbolic/block_structure.hpp"

namespace slu3d {

class SupernodalMatrix {
 public:
  /// Allocates zeroed block storage for every supernode in `bs`.
  /// `want(s)` filters which supernodes get storage (distributed layouts
  /// allocate only what the rank owns); default allocates everything.
  explicit SupernodalMatrix(const BlockStructure& bs);
  SupernodalMatrix(const BlockStructure& bs,
                   const std::vector<bool>& want_snode);

  const BlockStructure& structure() const { return *bs_; }

  bool has_snode(int s) const { return !diag_[static_cast<std::size_t>(s)].empty(); }

  /// Dense ns x ns diagonal block (column-major).
  std::span<real_t> diag(int s) { return diag_[static_cast<std::size_t>(s)]; }
  std::span<const real_t> diag(int s) const { return diag_[static_cast<std::size_t>(s)]; }

  /// Dense m x ns L panel (column-major, rows = concatenated rowset).
  std::span<real_t> lpanel(int s) { return lpan_[static_cast<std::size_t>(s)]; }
  std::span<const real_t> lpanel(int s) const { return lpan_[static_cast<std::size_t>(s)]; }

  /// Dense ns x m U panel (column-major, columns = concatenated rowset).
  std::span<real_t> upanel(int s) { return upan_[static_cast<std::size_t>(s)]; }
  std::span<const real_t> upanel(int s) const { return upan_[static_cast<std::size_t>(s)]; }

  /// Concatenated symbolic rowset of panel s (sorted global indices).
  std::span<const index_t> panel_rows(int s) const {
    return rows_[static_cast<std::size_t>(s)];
  }

  /// Offset of ancestor supernode `a`'s block within panel s's rowset, and
  /// its row count; {-1, 0} when the panel has no block for `a`.
  std::pair<index_t, index_t> block_range(int s, int a) const;

  /// Scatter the entries of the permuted matrix `Ap` (already P A Pᵀ) into
  /// the allocated blocks; unallocated supernodes are skipped.
  void fill_from(const CsrMatrix& Ap);

  /// Entry accessors for tests / gather (global permuted indices). Returns
  /// 0 for positions outside the symbolic structure.
  real_t l_entry(index_t i, index_t j) const;  ///< i >= j, unit diagonal NOT implied
  real_t u_entry(index_t i, index_t j) const;  ///< i <= j

  /// Bytes of numeric storage actually allocated (the paper's memory
  /// metric, Fig. 11).
  offset_t allocated_bytes() const;

 private:
  void allocate(int s);

  const BlockStructure* bs_;
  std::vector<std::vector<real_t>> diag_;
  std::vector<std::vector<real_t>> lpan_;
  std::vector<std::vector<real_t>> upan_;
  std::vector<std::vector<index_t>> rows_;  // concatenated rowsets
  // Per snode: sorted (ancestor snode, offset) pairs for block_range.
  std::vector<std::vector<std::pair<int, index_t>>> block_offsets_;
};

}  // namespace slu3d
