// Synthetic matrix generators covering the structural classes of the
// paper's Table III test suite (see DESIGN.md for the mapping). All
// generators produce diagonally dominant values so that LU with static
// (no) pivoting — SuperLU_DIST's mode — is numerically stable.
#pragma once

#include <cstdint>
#include <string>

#include "sparse/csr.hpp"
#include "support/types.hpp"

namespace slu3d {

/// Regular-grid geometry attached to generated matrices; geometric nested
/// dissection exploits it. Vertex (x, y, z) has index x + nx*(y + ny*z).
struct GridGeometry {
  index_t nx = 0;
  index_t ny = 0;
  index_t nz = 1;  ///< 1 for planar problems

  index_t n() const { return nx * ny * nz; }
  index_t vertex(index_t x, index_t y, index_t z) const {
    return x + nx * (y + ny * z);
  }
  bool planar() const { return nz == 1; }
};

enum class Stencil2D { FivePoint, NinePoint };
enum class Stencil3D { SevenPoint, TwentySevenPoint };

/// 2D Poisson-like grid matrix (paper's K2D5pt / S2D9pt class).
/// `diag_boost` > 0 makes the matrix strictly diagonally dominant.
CsrMatrix grid2d_laplacian(GridGeometry geom, Stencil2D stencil,
                           real_t diag_boost = 0.05);

/// 3D Poisson-like grid matrix (Serena / audikw_1 / dielFilter class;
/// thin slabs with small nz model ldoor's "nearly planar" geometry).
CsrMatrix grid3d_laplacian(GridGeometry geom, Stencil3D stencil,
                           real_t diag_boost = 0.05);

/// 2D convection-diffusion: 5-point pattern with *nonsymmetric values*
/// (upwinded convection). Exercises the LU (vs Cholesky) code paths.
CsrMatrix grid2d_convection_diffusion(GridGeometry geom, real_t convection,
                                      real_t diag_boost = 0.05);

/// Anisotropic 2D Laplacian: x-coupling weighted `epsilon` relative to
/// y-coupling. Strong anisotropy stresses ordering heuristics (separators
/// should cut the weak direction).
CsrMatrix grid2d_anisotropic(GridGeometry geom, real_t epsilon,
                             real_t diag_boost = 0.05);

/// Shifted (Helmholtz-like) 2D operator: Laplacian minus `shift` on the
/// diagonal. For shifts above the smallest Laplacian eigenvalue the
/// matrix is symmetric *indefinite* — the stress case for static
/// pivoting + iterative refinement.
CsrMatrix grid2d_helmholtz(GridGeometry geom, real_t shift);

/// Circuit-style matrix (G3_circuit / ecology1 class): 2D grid plus
/// `extra_edges` random short-range branches. Remains essentially planar.
CsrMatrix circuit2d(GridGeometry geom, index_t extra_edges, std::uint64_t seed,
                    real_t diag_boost = 0.05);

/// KKT-style saddle-point matrix built on a 3D grid (nlpkkt80 class):
///   [ H  Aᵀ ]         H = 3D 7-pt Laplacian + shift,
///   [ A  -D ]         A = grid coupling, D = regularization diagonal.
/// Returned dimension is 2 * geom.n(). Values are scaled so the matrix is
/// (block) diagonally dominant and safe for static pivoting.
CsrMatrix kkt3d(GridGeometry geom, std::uint64_t seed);

/// A named test matrix together with its geometry (when it has one) — the
/// unit the bench harness iterates over.
struct TestMatrix {
  std::string name;
  CsrMatrix A;
  GridGeometry geom;       ///< nx == 0 when no grid geometry applies
  bool planar = false;     ///< paper's planar / non-planar classification
};

/// The scaled-down equivalent of the paper's Table III test suite.
/// `scale` in {0, 1, 2}: 0 = tiny (unit tests), 1 = default bench size,
/// 2 = large bench size.
std::vector<TestMatrix> paper_test_suite(int scale = 1);

}  // namespace slu3d
