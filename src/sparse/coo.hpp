// Coordinate-format sparse matrix: the assembly format. Generators and the
// MatrixMarket reader produce COO; everything else consumes CSR.
#pragma once

#include <vector>

#include "support/types.hpp"

namespace slu3d {

struct CooEntry {
  index_t row;
  index_t col;
  real_t value;
};

class CooMatrix {
 public:
  CooMatrix() = default;
  CooMatrix(index_t n_rows, index_t n_cols) : n_rows_(n_rows), n_cols_(n_cols) {}

  void add(index_t row, index_t col, real_t value) {
    entries_.push_back({row, col, value});
  }

  void reserve(std::size_t nnz) { entries_.reserve(nnz); }

  index_t n_rows() const { return n_rows_; }
  index_t n_cols() const { return n_cols_; }
  const std::vector<CooEntry>& entries() const { return entries_; }

 private:
  index_t n_rows_ = 0;
  index_t n_cols_ = 0;
  std::vector<CooEntry> entries_;
};

}  // namespace slu3d
