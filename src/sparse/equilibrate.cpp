#include "sparse/equilibrate.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace slu3d {

Equilibration compute_equilibration(const CsrMatrix& A) {
  const auto n_rows = static_cast<std::size_t>(A.n_rows());
  const auto n_cols = static_cast<std::size_t>(A.n_cols());
  Equilibration eq;
  eq.row_scale.assign(n_rows, 0.0);
  eq.col_scale.assign(n_cols, 0.0);

  // Row pass: largest magnitude per row.
  real_t rmin = 1e300, rmax = 0.0;
  for (index_t r = 0; r < A.n_rows(); ++r) {
    real_t mx = 0.0;
    for (real_t v : A.row_vals(r)) mx = std::max(mx, std::abs(v));
    SLU3D_CHECK(mx > 0.0, "equilibration: exactly zero row");
    eq.row_scale[static_cast<std::size_t>(r)] = 1.0 / mx;
    rmin = std::min(rmin, mx);
    rmax = std::max(rmax, mx);
  }
  eq.row_ratio = rmin / rmax;

  // Column pass on the row-scaled matrix.
  for (index_t r = 0; r < A.n_rows(); ++r) {
    const auto cols = A.row_cols(r);
    const auto vals = A.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const real_t v =
          std::abs(vals[k]) * eq.row_scale[static_cast<std::size_t>(r)];
      auto& c = eq.col_scale[static_cast<std::size_t>(cols[k])];
      c = std::max(c, v);
    }
  }
  real_t cmin = 1e300, cmax = 0.0;
  for (auto& c : eq.col_scale) {
    SLU3D_CHECK(c > 0.0, "equilibration: exactly zero column");
    cmin = std::min(cmin, c);
    cmax = std::max(cmax, c);
    c = 1.0 / c;
  }
  eq.col_ratio = cmin / cmax;
  return eq;
}

CsrMatrix apply_equilibration(const CsrMatrix& A, const Equilibration& eq) {
  SLU3D_CHECK(eq.row_scale.size() == static_cast<std::size_t>(A.n_rows()) &&
                  eq.col_scale.size() == static_cast<std::size_t>(A.n_cols()),
              "equilibration size mismatch");
  std::vector<offset_t> rp(A.row_ptr().begin(), A.row_ptr().end());
  std::vector<index_t> ci(A.col_idx().begin(), A.col_idx().end());
  std::vector<real_t> va(A.values().begin(), A.values().end());
  for (index_t r = 0; r < A.n_rows(); ++r) {
    const real_t rs = eq.row_scale[static_cast<std::size_t>(r)];
    for (offset_t k = A.row_ptr()[static_cast<std::size_t>(r)];
         k < A.row_ptr()[static_cast<std::size_t>(r) + 1]; ++k)
      va[static_cast<std::size_t>(k)] *=
          rs * eq.col_scale[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])];
  }
  return CsrMatrix::from_raw(A.n_rows(), A.n_cols(), std::move(rp),
                             std::move(ci), std::move(va));
}

void scale_rhs(const Equilibration& eq, std::span<real_t> b) {
  SLU3D_CHECK(b.size() == eq.row_scale.size(), "rhs size mismatch");
  for (std::size_t i = 0; i < b.size(); ++i) b[i] *= eq.row_scale[i];
}

void unscale_solution(const Equilibration& eq, std::span<real_t> x) {
  SLU3D_CHECK(x.size() == eq.col_scale.size(), "solution size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) x[i] *= eq.col_scale[i];
}

}  // namespace slu3d
