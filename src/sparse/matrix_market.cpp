#include "sparse/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace slu3d {

namespace {
std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}
}  // namespace

CsrMatrix read_matrix_market(std::istream& in) {
  std::string line;
  SLU3D_CHECK(static_cast<bool>(std::getline(in, line)), "empty stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  SLU3D_CHECK(banner == "%%MatrixMarket", "missing MatrixMarket banner");
  SLU3D_CHECK(lower(object) == "matrix" && lower(format) == "coordinate",
              "only 'matrix coordinate' supported");
  field = lower(field);
  symmetry = lower(symmetry);
  SLU3D_CHECK(field == "real" || field == "integer" || field == "pattern",
              "unsupported field type: " + field);
  SLU3D_CHECK(symmetry == "general" || symmetry == "symmetric",
              "unsupported symmetry: " + symmetry);

  // Skip comments.
  do {
    SLU3D_CHECK(static_cast<bool>(std::getline(in, line)), "truncated header");
  } while (!line.empty() && line[0] == '%');

  std::istringstream dims(line);
  long long nr = 0, nc = 0, nnz = 0;
  dims >> nr >> nc >> nnz;
  SLU3D_CHECK(nr > 0 && nc > 0 && nnz >= 0, "bad size line");

  CooMatrix coo(static_cast<index_t>(nr), static_cast<index_t>(nc));
  coo.reserve(static_cast<std::size_t>(symmetry == "symmetric" ? 2 * nnz : nnz));
  for (long long k = 0; k < nnz; ++k) {
    long long i = 0, j = 0;
    double v = 1.0;
    in >> i >> j;
    if (field != "pattern") in >> v;
    SLU3D_CHECK(static_cast<bool>(in), "truncated entry list");
    SLU3D_CHECK(i >= 1 && i <= nr && j >= 1 && j <= nc, "entry out of range");
    coo.add(static_cast<index_t>(i - 1), static_cast<index_t>(j - 1), v);
    if (symmetry == "symmetric" && i != j)
      coo.add(static_cast<index_t>(j - 1), static_cast<index_t>(i - 1), v);
  }
  return CsrMatrix::from_coo(coo);
}

CsrMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  SLU3D_CHECK(in.good(), "cannot open " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const CsrMatrix& A) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << A.n_rows() << ' ' << A.n_cols() << ' ' << A.nnz() << '\n';
  out.precision(17);
  for (index_t r = 0; r < A.n_rows(); ++r) {
    const auto cols = A.row_cols(r);
    const auto vals = A.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k)
      out << (r + 1) << ' ' << (cols[k] + 1) << ' ' << vals[k] << '\n';
  }
}

void write_matrix_market_file(const std::string& path, const CsrMatrix& A) {
  std::ofstream out(path);
  SLU3D_CHECK(out.good(), "cannot open " + path);
  write_matrix_market(out, A);
}

}  // namespace slu3d
