// Row/column equilibration — SuperLU_DIST's pdgsequ preprocessing step.
// Static (no) pivoting is only safe when the matrix is well scaled;
// equilibration brings every row and column's largest magnitude to ~1.
#pragma once

#include <vector>

#include "sparse/csr.hpp"

namespace slu3d {

struct Equilibration {
  std::vector<real_t> row_scale;  ///< R: diag scaling applied to rows
  std::vector<real_t> col_scale;  ///< C: diag scaling applied to columns
  real_t row_ratio = 1.0;  ///< min/max row magnitude before scaling
  real_t col_ratio = 1.0;  ///< min/max column magnitude after row scaling
};

/// Computes R and C such that B = R A C has max-magnitude ~1 in every row
/// and column (one pass of row scaling then column scaling, as LAPACK's
/// *geequ). Throws on an exactly zero row or column.
Equilibration compute_equilibration(const CsrMatrix& A);

/// Returns R A C.
CsrMatrix apply_equilibration(const CsrMatrix& A, const Equilibration& eq);

/// Solves A x = b given a solver for B = R A C: transforms b' = R b,
/// solves B y = b', returns x = C y. These helpers implement the two
/// vector transforms.
void scale_rhs(const Equilibration& eq, std::span<real_t> b);
void unscale_solution(const Equilibration& eq, std::span<real_t> x);

}  // namespace slu3d
