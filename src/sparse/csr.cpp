#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/check.hpp"

namespace slu3d {

CsrMatrix CsrMatrix::from_coo(const CooMatrix& coo) {
  const index_t nr = coo.n_rows();
  const index_t nc = coo.n_cols();
  SLU3D_CHECK(nr >= 0 && nc >= 0, "negative dimensions");

  // Count entries per row.
  std::vector<offset_t> count(static_cast<std::size_t>(nr) + 1, 0);
  for (const auto& e : coo.entries()) {
    SLU3D_CHECK(e.row >= 0 && e.row < nr && e.col >= 0 && e.col < nc,
                "COO entry out of range");
    ++count[static_cast<std::size_t>(e.row) + 1];
  }
  std::partial_sum(count.begin(), count.end(), count.begin());

  // Bucket by row.
  std::vector<index_t> cols(coo.entries().size());
  std::vector<real_t> vals(coo.entries().size());
  std::vector<offset_t> fill(count.begin(), count.end() - 1);
  for (const auto& e : coo.entries()) {
    const auto pos = static_cast<std::size_t>(fill[static_cast<std::size_t>(e.row)]++);
    cols[pos] = e.col;
    vals[pos] = e.value;
  }

  // Sort each row by column and sum duplicates, writing to fresh arrays
  // (in-place compaction would clobber entries not yet read through the
  // sorted index permutation).
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(nr) + 1, 0);
  std::vector<index_t> out_cols;
  std::vector<real_t> out_vals;
  out_cols.reserve(cols.size());
  out_vals.reserve(vals.size());
  std::vector<std::size_t> order;
  for (index_t r = 0; r < nr; ++r) {
    const auto lo = static_cast<std::size_t>(count[static_cast<std::size_t>(r)]);
    const auto hi = static_cast<std::size_t>(count[static_cast<std::size_t>(r) + 1]);
    order.resize(hi - lo);
    std::iota(order.begin(), order.end(), lo);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return cols[a] < cols[b]; });
    for (std::size_t k = 0; k < order.size(); ++k) {
      const std::size_t src = order[k];
      if (k > 0 && cols[src] == out_cols.back()) {
        out_vals.back() += vals[src];  // duplicate: accumulate
      } else {
        out_cols.push_back(cols[src]);
        out_vals.push_back(vals[src]);
      }
    }
    row_ptr[static_cast<std::size_t>(r) + 1] = static_cast<offset_t>(out_cols.size());
  }

  return from_raw(nr, nc, std::move(row_ptr), std::move(out_cols),
                  std::move(out_vals));
}

CsrMatrix CsrMatrix::from_raw(index_t n_rows, index_t n_cols,
                              std::vector<offset_t> row_ptr,
                              std::vector<index_t> col_idx,
                              std::vector<real_t> values) {
  SLU3D_CHECK(row_ptr.size() == static_cast<std::size_t>(n_rows) + 1,
              "row_ptr size mismatch");
  SLU3D_CHECK(col_idx.size() == values.size(), "col/val size mismatch");
  SLU3D_CHECK(row_ptr.front() == 0 &&
                  row_ptr.back() == static_cast<offset_t>(col_idx.size()),
              "row_ptr bounds malformed");
  CsrMatrix m;
  m.n_rows_ = n_rows;
  m.n_cols_ = n_cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  return m;
}

real_t CsrMatrix::at(index_t r, index_t c) const {
  const auto cols = row_cols(r);
  const auto it = std::lower_bound(cols.begin(), cols.end(), c);
  if (it == cols.end() || *it != c) return 0.0;
  const auto off = static_cast<std::size_t>(it - cols.begin());
  return row_vals(r)[off];
}

void CsrMatrix::spmv(std::span<const real_t> x, std::span<real_t> y) const {
  SLU3D_CHECK(x.size() == static_cast<std::size_t>(n_cols_), "x size");
  SLU3D_CHECK(y.size() == static_cast<std::size_t>(n_rows_), "y size");
  for (index_t r = 0; r < n_rows_; ++r) {
    real_t acc = 0.0;
    const auto cols = row_cols(r);
    const auto vals = row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k)
      acc += vals[k] * x[static_cast<std::size_t>(cols[k])];
    y[static_cast<std::size_t>(r)] = acc;
  }
}

CsrMatrix CsrMatrix::transposed() const {
  std::vector<offset_t> rp(static_cast<std::size_t>(n_cols_) + 1, 0);
  for (index_t c : col_idx_) ++rp[static_cast<std::size_t>(c) + 1];
  std::partial_sum(rp.begin(), rp.end(), rp.begin());
  std::vector<index_t> ci(col_idx_.size());
  std::vector<real_t> va(values_.size());
  std::vector<offset_t> fill(rp.begin(), rp.end() - 1);
  for (index_t r = 0; r < n_rows_; ++r) {
    const auto cols = row_cols(r);
    const auto vals = row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const auto pos = static_cast<std::size_t>(fill[static_cast<std::size_t>(cols[k])]++);
      ci[pos] = r;
      va[pos] = vals[k];
    }
  }
  // Rows of the transpose come out sorted because we scanned rows in order.
  return from_raw(n_cols_, n_rows_, std::move(rp), std::move(ci), std::move(va));
}

CsrMatrix CsrMatrix::permuted_symmetric(std::span<const index_t> perm) const {
  SLU3D_CHECK(n_rows_ == n_cols_, "symmetric permutation needs square matrix");
  SLU3D_CHECK(perm.size() == static_cast<std::size_t>(n_rows_), "perm size");
  const auto pinv = invert_permutation(perm);
  CooMatrix coo(n_rows_, n_cols_);
  coo.reserve(static_cast<std::size_t>(nnz()));
  for (index_t r = 0; r < n_rows_; ++r) {
    const auto cols = row_cols(r);
    const auto vals = row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k)
      coo.add(pinv[static_cast<std::size_t>(r)],
              pinv[static_cast<std::size_t>(cols[k])], vals[k]);
  }
  return from_coo(coo);
}

CsrMatrix CsrMatrix::symmetrized_pattern() const {
  SLU3D_CHECK(n_rows_ == n_cols_, "symmetrize needs square matrix");
  CooMatrix coo(n_rows_, n_cols_);
  coo.reserve(2 * static_cast<std::size_t>(nnz()));
  for (index_t r = 0; r < n_rows_; ++r) {
    const auto cols = row_cols(r);
    const auto vals = row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      coo.add(r, cols[k], vals[k]);
      coo.add(cols[k], r, 0.0);  // transpose position: pattern only
    }
  }
  return from_coo(coo);
}

bool CsrMatrix::pattern_is_symmetric() const {
  if (n_rows_ != n_cols_) return false;
  const CsrMatrix t = transposed();
  if (t.nnz() != nnz()) return false;
  return std::equal(col_idx_.begin(), col_idx_.end(), t.col_idx_.begin()) &&
         std::equal(row_ptr_.begin(), row_ptr_.end(), t.row_ptr_.begin());
}

real_t CsrMatrix::norm_inf() const {
  real_t best = 0.0;
  for (index_t r = 0; r < n_rows_; ++r) {
    real_t s = 0.0;
    for (real_t v : row_vals(r)) s += std::abs(v);
    best = std::max(best, s);
  }
  return best;
}

std::vector<index_t> invert_permutation(std::span<const index_t> perm) {
  std::vector<index_t> pinv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i)
    pinv[static_cast<std::size_t>(perm[i])] = static_cast<index_t>(i);
  return pinv;
}

bool is_permutation(std::span<const index_t> perm) {
  std::vector<bool> seen(perm.size(), false);
  for (index_t p : perm) {
    if (p < 0 || static_cast<std::size_t>(p) >= perm.size()) return false;
    if (seen[static_cast<std::size_t>(p)]) return false;
    seen[static_cast<std::size_t>(p)] = true;
  }
  return true;
}

}  // namespace slu3d
