#include "sparse/generators.hpp"

#include <cmath>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace slu3d {

namespace {

/// Adds a symmetric edge pair (u, v) with weight w to `coo` and accumulates
/// |w| into both diagonal accumulators (to build diagonal dominance).
void add_edge(CooMatrix& coo, std::vector<real_t>& diag, index_t u, index_t v,
              real_t w) {
  coo.add(u, v, w);
  coo.add(v, u, w);
  diag[static_cast<std::size_t>(u)] += std::abs(w);
  diag[static_cast<std::size_t>(v)] += std::abs(w);
}

CsrMatrix finish_graph_matrix(CooMatrix& coo, std::vector<real_t>& diag,
                              real_t diag_boost) {
  for (index_t i = 0; i < static_cast<index_t>(diag.size()); ++i)
    coo.add(i, i, diag[static_cast<std::size_t>(i)] * (1.0 + diag_boost) + diag_boost);
  return CsrMatrix::from_coo(coo);
}

}  // namespace

CsrMatrix grid2d_laplacian(GridGeometry geom, Stencil2D stencil,
                           real_t diag_boost) {
  SLU3D_CHECK(geom.nz == 1, "grid2d needs nz == 1");
  SLU3D_CHECK(geom.nx > 0 && geom.ny > 0, "empty grid");
  const index_t n = geom.n();
  CooMatrix coo(n, n);
  std::vector<real_t> diag(static_cast<std::size_t>(n), 0.0);
  for (index_t y = 0; y < geom.ny; ++y) {
    for (index_t x = 0; x < geom.nx; ++x) {
      const index_t v = geom.vertex(x, y, 0);
      if (x + 1 < geom.nx) add_edge(coo, diag, v, geom.vertex(x + 1, y, 0), -1.0);
      if (y + 1 < geom.ny) add_edge(coo, diag, v, geom.vertex(x, y + 1, 0), -1.0);
      if (stencil == Stencil2D::NinePoint) {
        if (x + 1 < geom.nx && y + 1 < geom.ny)
          add_edge(coo, diag, v, geom.vertex(x + 1, y + 1, 0), -0.5);
        if (x > 0 && y + 1 < geom.ny)
          add_edge(coo, diag, v, geom.vertex(x - 1, y + 1, 0), -0.5);
      }
    }
  }
  return finish_graph_matrix(coo, diag, diag_boost);
}

CsrMatrix grid3d_laplacian(GridGeometry geom, Stencil3D stencil,
                           real_t diag_boost) {
  SLU3D_CHECK(geom.nx > 0 && geom.ny > 0 && geom.nz > 0, "empty grid");
  const index_t n = geom.n();
  CooMatrix coo(n, n);
  std::vector<real_t> diag(static_cast<std::size_t>(n), 0.0);
  for (index_t z = 0; z < geom.nz; ++z) {
    for (index_t y = 0; y < geom.ny; ++y) {
      for (index_t x = 0; x < geom.nx; ++x) {
        const index_t v = geom.vertex(x, y, z);
        if (stencil == Stencil3D::SevenPoint) {
          if (x + 1 < geom.nx) add_edge(coo, diag, v, geom.vertex(x + 1, y, z), -1.0);
          if (y + 1 < geom.ny) add_edge(coo, diag, v, geom.vertex(x, y + 1, z), -1.0);
          if (z + 1 < geom.nz) add_edge(coo, diag, v, geom.vertex(x, y, z + 1), -1.0);
        } else {
          // 27-point: all neighbours in the forward half-space, weights
          // decaying with Chebyshev distance.
          for (index_t dz = 0; dz <= 1; ++dz) {
            for (index_t dy = (dz == 0 ? 0 : -1); dy <= 1; ++dy) {
              for (index_t dx = ((dz == 0 && dy == 0) ? 1 : -1); dx <= 1; ++dx) {
                const index_t X = x + dx, Y = y + dy, Z = z + dz;
                if (X < 0 || X >= geom.nx || Y < 0 || Y >= geom.ny || Z < 0 ||
                    Z >= geom.nz)
                  continue;
                const int dist = std::abs(dx) + std::abs(dy) + std::abs(dz);
                add_edge(coo, diag, v, geom.vertex(X, Y, Z),
                         dist == 1 ? -1.0 : (dist == 2 ? -0.5 : -0.25));
              }
            }
          }
        }
      }
    }
  }
  return finish_graph_matrix(coo, diag, diag_boost);
}

CsrMatrix grid2d_convection_diffusion(GridGeometry geom, real_t convection,
                                      real_t diag_boost) {
  SLU3D_CHECK(geom.nz == 1, "grid2d needs nz == 1");
  SLU3D_CHECK(std::abs(convection) < 1.0, "convection must be < 1 for dominance");
  const index_t n = geom.n();
  CooMatrix coo(n, n);
  std::vector<real_t> diag(static_cast<std::size_t>(n), 0.0);
  auto add_dir = [&](index_t u, index_t v, real_t w) {
    coo.add(u, v, w);
    diag[static_cast<std::size_t>(u)] += std::abs(w);
  };
  for (index_t y = 0; y < geom.ny; ++y) {
    for (index_t x = 0; x < geom.nx; ++x) {
      const index_t v = geom.vertex(x, y, 0);
      // Upwinded convection along +x: downstream and upstream coefficients
      // differ, producing a genuinely nonsymmetric matrix.
      if (x + 1 < geom.nx) {
        add_dir(v, geom.vertex(x + 1, y, 0), -1.0 + convection);
        add_dir(geom.vertex(x + 1, y, 0), v, -1.0 - convection);
      }
      if (y + 1 < geom.ny) {
        add_dir(v, geom.vertex(x, y + 1, 0), -1.0);
        add_dir(geom.vertex(x, y + 1, 0), v, -1.0);
      }
    }
  }
  return finish_graph_matrix(coo, diag, diag_boost);
}

CsrMatrix grid2d_anisotropic(GridGeometry geom, real_t epsilon,
                             real_t diag_boost) {
  SLU3D_CHECK(geom.nz == 1, "grid2d needs nz == 1");
  SLU3D_CHECK(epsilon > 0, "anisotropy must be positive");
  const index_t n = geom.n();
  CooMatrix coo(n, n);
  std::vector<real_t> diag(static_cast<std::size_t>(n), 0.0);
  for (index_t y = 0; y < geom.ny; ++y)
    for (index_t x = 0; x < geom.nx; ++x) {
      const index_t v = geom.vertex(x, y, 0);
      if (x + 1 < geom.nx)
        add_edge(coo, diag, v, geom.vertex(x + 1, y, 0), -epsilon);
      if (y + 1 < geom.ny) add_edge(coo, diag, v, geom.vertex(x, y + 1, 0), -1.0);
    }
  return finish_graph_matrix(coo, diag, diag_boost);
}

CsrMatrix grid2d_helmholtz(GridGeometry geom, real_t shift) {
  // Plain 5-point Laplacian (diag = degree), then subtract the shift.
  CsrMatrix A = grid2d_laplacian(geom, Stencil2D::FivePoint, /*diag_boost=*/0.0);
  auto vals = A.values();
  const auto rp = A.row_ptr();
  const auto ci = A.col_idx();
  for (index_t r = 0; r < A.n_rows(); ++r)
    for (offset_t k = rp[static_cast<std::size_t>(r)];
         k < rp[static_cast<std::size_t>(r) + 1]; ++k)
      if (ci[static_cast<std::size_t>(k)] == r)
        vals[static_cast<std::size_t>(k)] -= shift;
  return A;
}

CsrMatrix circuit2d(GridGeometry geom, index_t extra_edges, std::uint64_t seed,
                    real_t diag_boost) {
  SLU3D_CHECK(geom.nz == 1, "circuit2d needs nz == 1");
  const index_t n = geom.n();
  CooMatrix coo(n, n);
  std::vector<real_t> diag(static_cast<std::size_t>(n), 0.0);
  for (index_t y = 0; y < geom.ny; ++y) {
    for (index_t x = 0; x < geom.nx; ++x) {
      const index_t v = geom.vertex(x, y, 0);
      if (x + 1 < geom.nx) add_edge(coo, diag, v, geom.vertex(x + 1, y, 0), -1.0);
      if (y + 1 < geom.ny) add_edge(coo, diag, v, geom.vertex(x, y + 1, 0), -1.0);
    }
  }
  // Random short-range branches: endpoints within a bounded window so the
  // graph keeps good (near-planar) separators, like real circuit matrices.
  Rng rng(seed);
  const index_t window = 4;
  for (index_t e = 0; e < extra_edges; ++e) {
    const index_t x = rng.next_index(geom.nx);
    const index_t y = rng.next_index(geom.ny);
    const index_t dx = rng.next_index(2 * window + 1) - window;
    const index_t dy = rng.next_index(2 * window + 1) - window;
    const index_t X = std::min(std::max<index_t>(0, x + dx), geom.nx - 1);
    const index_t Y = std::min(std::max<index_t>(0, y + dy), geom.ny - 1);
    const index_t u = geom.vertex(x, y, 0), v = geom.vertex(X, Y, 0);
    if (u == v) continue;
    add_edge(coo, diag, u, v, -rng.uniform(0.1, 1.0));
  }
  return finish_graph_matrix(coo, diag, diag_boost);
}

CsrMatrix kkt3d(GridGeometry geom, std::uint64_t seed) {
  const index_t np = geom.n();  // primal variables, one per grid point
  const index_t n = 2 * np;     // plus one dual variable per grid point
  CooMatrix coo(n, n);
  Rng rng(seed);
  // H block: 7-point Laplacian + shift (rows/cols 0..np-1).
  std::vector<real_t> hdiag(static_cast<std::size_t>(np), 0.0);
  auto h_edge = [&](index_t u, index_t v, real_t w) {
    coo.add(u, v, w);
    coo.add(v, u, w);
    hdiag[static_cast<std::size_t>(u)] += std::abs(w);
    hdiag[static_cast<std::size_t>(v)] += std::abs(w);
  };
  for (index_t z = 0; z < geom.nz; ++z)
    for (index_t y = 0; y < geom.ny; ++y)
      for (index_t x = 0; x < geom.nx; ++x) {
        const index_t v = geom.vertex(x, y, z);
        if (x + 1 < geom.nx) h_edge(v, geom.vertex(x + 1, y, z), -1.0);
        if (y + 1 < geom.ny) h_edge(v, geom.vertex(x, y + 1, z), -1.0);
        if (z + 1 < geom.nz) h_edge(v, geom.vertex(x, y, z + 1), -1.0);
      }
  // A block (rows np..n-1, cols 0..np-1) and its transpose: each constraint
  // couples a grid point and its forward neighbours with small weights.
  std::vector<real_t> arowsum(static_cast<std::size_t>(np), 0.0);
  std::vector<real_t> acolsum(static_cast<std::size_t>(np), 0.0);
  auto a_entry = [&](index_t c, index_t p, real_t w) {
    coo.add(np + c, p, w);   // A
    coo.add(p, np + c, w);   // Aᵀ
    arowsum[static_cast<std::size_t>(c)] += std::abs(w);
    acolsum[static_cast<std::size_t>(p)] += std::abs(w);
  };
  for (index_t z = 0; z < geom.nz; ++z)
    for (index_t y = 0; y < geom.ny; ++y)
      for (index_t x = 0; x < geom.nx; ++x) {
        const index_t v = geom.vertex(x, y, z);
        a_entry(v, v, rng.uniform(0.2, 0.5));
        if (x + 1 < geom.nx)
          a_entry(v, geom.vertex(x + 1, y, z), rng.uniform(-0.3, 0.3));
        if (y + 1 < geom.ny)
          a_entry(v, geom.vertex(x, y + 1, z), rng.uniform(-0.3, 0.3));
        if (z + 1 < geom.nz)
          a_entry(v, geom.vertex(x, y, z + 1), rng.uniform(-0.3, 0.3));
      }
  // Diagonals: make each row strictly dominant, including the A / Aᵀ mass.
  for (index_t p = 0; p < np; ++p)
    coo.add(p, p, hdiag[static_cast<std::size_t>(p)] +
                      acolsum[static_cast<std::size_t>(p)] + 1.0);
  for (index_t c = 0; c < np; ++c)
    coo.add(np + c, np + c, -(arowsum[static_cast<std::size_t>(c)] + 1.0));
  return CsrMatrix::from_coo(coo);
}

std::vector<TestMatrix> paper_test_suite(int scale) {
  SLU3D_CHECK(scale >= 0 && scale <= 2, "scale in {0,1,2}");
  // Grid edge lengths per scale level.
  const index_t g2 = scale == 0 ? 16 : (scale == 1 ? 64 : 128);   // 2D grids
  const index_t g3 = scale == 0 ? 6 : (scale == 1 ? 14 : 20);     // 3D grids
  std::vector<TestMatrix> suite;

  auto add2d = [&](std::string name, CsrMatrix A, GridGeometry g) {
    suite.push_back({std::move(name), std::move(A), g, /*planar=*/true});
  };
  auto add3d = [&](std::string name, CsrMatrix A, GridGeometry g) {
    suite.push_back({std::move(name), std::move(A), g, /*planar=*/false});
  };

  {  // K2D5pt — large 2D 5-point Poisson (planar)
    GridGeometry g{2 * g2, 2 * g2, 1};
    add2d("K2D5pt", grid2d_laplacian(g, Stencil2D::FivePoint), g);
  }
  {  // S2D9pt — 2D 9-point Poisson (planar)
    GridGeometry g{g2 + g2 / 2, g2 + g2 / 2, 1};
    add2d("S2D9pt", grid2d_laplacian(g, Stencil2D::NinePoint), g);
  }
  {  // G3_circuit-class (planar-ish; random branches). The branches cross
     // width-1 grid separators, so no grid geometry is attached: ordering
     // must use general-graph nested dissection.
    GridGeometry g{g2, g2, 1};
    suite.push_back({"circuit2d", circuit2d(g, g.n() / 8, /*seed=*/42u),
                     GridGeometry{}, /*planar=*/true});
  }
  {  // ecology1-class: plain 5-pt grid at a different size (planar)
    GridGeometry g{g2, 2 * g2, 1};
    add2d("ecology2d", grid2d_laplacian(g, Stencil2D::FivePoint), g);
  }
  {  // Serena-class: 3D 7-point (non-planar)
    GridGeometry g{g3, g3, g3};
    add3d("serena3d", grid3d_laplacian(g, Stencil3D::SevenPoint), g);
  }
  {  // audikw_1-class: 3D 27-point, denser rows (non-planar)
    GridGeometry g{g3, g3, g3};
    add3d("audikw3d", grid3d_laplacian(g, Stencil3D::TwentySevenPoint), g);
  }
  {  // ldoor-class: thin slab, "nearly planar" 3D object
    GridGeometry g{2 * g3, 2 * g3, std::max<index_t>(2, g3 / 4)};
    add3d("ldoor_slab", grid3d_laplacian(g, Stencil3D::SevenPoint), g);
  }
  {  // CoupCons3D-class: 3D 7-pt with convective asymmetry via KKT omitted;
     // use an elongated 3D bar.
    GridGeometry g{2 * g3, g3, g3};
    add3d("coupcons3d", grid3d_laplacian(g, Stencil3D::SevenPoint), g);
  }
  {  // nlpkkt80-class: KKT saddle point on a 3D grid (non-planar)
    GridGeometry g{g3, g3, g3};
    TestMatrix t{"nlpkkt3d", kkt3d(g, /*seed=*/7u), GridGeometry{}, false};
    suite.push_back(std::move(t));
  }
  {  // dielFilterV3-class: 3D 27-pt on a flattened box (non-planar)
    GridGeometry g{2 * g3, g3, std::max<index_t>(2, g3 / 2)};
    add3d("dielfilter3d", grid3d_laplacian(g, Stencil3D::TwentySevenPoint), g);
  }
  return suite;
}

}  // namespace slu3d
