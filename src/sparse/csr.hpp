// Compressed sparse row matrix — the workhorse format of the library.
// Column indices are sorted within each row; duplicates are summed at build
// time.
#pragma once

#include <span>
#include <vector>

#include "sparse/coo.hpp"
#include "support/types.hpp"

namespace slu3d {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Build from COO, summing duplicates and sorting columns within rows.
  static CsrMatrix from_coo(const CooMatrix& coo);

  /// Build directly from raw arrays (must already be sorted, no duplicates).
  static CsrMatrix from_raw(index_t n_rows, index_t n_cols,
                            std::vector<offset_t> row_ptr,
                            std::vector<index_t> col_idx,
                            std::vector<real_t> values);

  index_t n_rows() const { return n_rows_; }
  index_t n_cols() const { return n_cols_; }
  offset_t nnz() const { return static_cast<offset_t>(col_idx_.size()); }

  std::span<const offset_t> row_ptr() const { return row_ptr_; }
  std::span<const index_t> col_idx() const { return col_idx_; }
  std::span<const real_t> values() const { return values_; }
  std::span<real_t> values() { return values_; }

  /// Column indices of row `r`.
  std::span<const index_t> row_cols(index_t r) const {
    return std::span<const index_t>(col_idx_)
        .subspan(static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r)]),
                 static_cast<std::size_t>(row_nnz(r)));
  }
  /// Values of row `r`.
  std::span<const real_t> row_vals(index_t r) const {
    return std::span<const real_t>(values_)
        .subspan(static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r)]),
                 static_cast<std::size_t>(row_nnz(r)));
  }
  offset_t row_nnz(index_t r) const {
    return row_ptr_[static_cast<std::size_t>(r) + 1] -
           row_ptr_[static_cast<std::size_t>(r)];
  }

  /// Value at (r, c), or 0 if not stored. O(log row_nnz).
  real_t at(index_t r, index_t c) const;

  /// y = A x.
  void spmv(std::span<const real_t> x, std::span<real_t> y) const;

  CsrMatrix transposed() const;

  /// Symmetric permutation B = P A Pᵀ, i.e. B(pinv[i], pinv[j]) = A(i, j)
  /// where `perm[k]` is the original index of the k-th new row, and pinv is
  /// its inverse.
  CsrMatrix permuted_symmetric(std::span<const index_t> perm) const;

  /// Pattern of A + Aᵀ with the values of A (transpose positions that are
  /// absent in A get explicit zeros). Used for symmetrized symbolic
  /// factorization.
  CsrMatrix symmetrized_pattern() const;

  bool pattern_is_symmetric() const;

  /// Infinity norm ||A||_inf (max absolute row sum).
  real_t norm_inf() const;

 private:
  index_t n_rows_ = 0;
  index_t n_cols_ = 0;
  std::vector<offset_t> row_ptr_;
  std::vector<index_t> col_idx_;
  std::vector<real_t> values_;
};

/// Inverse of a permutation: result[perm[i]] = i.
std::vector<index_t> invert_permutation(std::span<const index_t> perm);

/// True if `perm` is a permutation of 0..n-1.
bool is_permutation(std::span<const index_t> perm);

}  // namespace slu3d
