// MatrixMarket coordinate-format I/O, so the real SuiteSparse matrices from
// the paper's Table III can be dropped in when available.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace slu3d {

/// Reads a MatrixMarket `matrix coordinate real|integer|pattern
/// general|symmetric` stream. Symmetric inputs are expanded to full storage;
/// pattern inputs get value 1.0.
CsrMatrix read_matrix_market(std::istream& in);
CsrMatrix read_matrix_market_file(const std::string& path);

/// Writes `coordinate real general` format.
void write_matrix_market(std::ostream& out, const CsrMatrix& A);
void write_matrix_market_file(const std::string& path, const CsrMatrix& A);

}  // namespace slu3d
