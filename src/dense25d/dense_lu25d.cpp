#include "dense25d/dense_lu25d.hpp"

#include <utility>

#include "numeric/dense_kernels.hpp"
#include "support/check.hpp"

namespace slu3d {

namespace {
using sim::CommPlane;
using sim::ComputeKind;
}  // namespace

Dense25dMatrix::Dense25dMatrix(index_t n, const Dense25dOptions& opt, int p,
                               int px, int py)
    : n_(n), b_(opt.block), nb_(static_cast<int>(n / opt.block)), p_(p),
      px_(px), py_(py) {
  SLU3D_CHECK(n % opt.block == 0, "n must be a multiple of the block size");
  blocks_.resize(static_cast<std::size_t>(nb_) * static_cast<std::size_t>(nb_));
  for (int bi = 0; bi < nb_; ++bi)
    for (int bj = 0; bj < nb_; ++bj)
      if (owns(bi, bj))
        blocks_[static_cast<std::size_t>(bi * nb_ + bj)].assign(
            static_cast<std::size_t>(b_) * static_cast<std::size_t>(b_), 0.0);
}

std::span<real_t> Dense25dMatrix::at(int bi, int bj) {
  SLU3D_CHECK(owns(bi, bj), "block not owned by this rank");
  return blocks_[static_cast<std::size_t>(bi * nb_ + bj)];
}

void Dense25dMatrix::fill_from(std::span<const real_t> a_full) {
  SLU3D_CHECK(a_full.size() ==
                  static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_),
              "full matrix size mismatch");
  for (int bi = 0; bi < nb_; ++bi)
    for (int bj = 0; bj < nb_; ++bj) {
      if (!owns(bi, bj)) continue;
      auto blk = at(bi, bj);
      for (index_t c = 0; c < b_; ++c)
        for (index_t r = 0; r < b_; ++r)
          blk[static_cast<std::size_t>(r + c * b_)] =
              a_full[static_cast<std::size_t>((bi * b_ + r) +
                                              (bj * b_ + c) * n_)];
    }
}

void Dense25dMatrix::zero() {
  for (auto& blk : blocks_) std::fill(blk.begin(), blk.end(), 0.0);
}

offset_t Dense25dMatrix::allocated_bytes() const {
  offset_t bytes = 0;
  for (const auto& blk : blocks_)
    bytes += static_cast<offset_t>(blk.size() * sizeof(real_t));
  return bytes;
}

void dense_lu_25d(Dense25dMatrix& A, sim::Comm& world, sim::ProcessGrid3D& grid,
                  const Dense25dOptions& options) {
  (void)world;
  auto& plane = grid.plane();
  SLU3D_CHECK(plane.Px() == plane.Py(), "2.5D LU needs a square plane grid");
  const int p = plane.Px();
  const int c = grid.Pz();
  const int nb = A.n_blocks();
  const index_t b = A.block();
  const auto bb = static_cast<std::size_t>(b) * static_cast<std::size_t>(b);
  const int px = plane.px(), py = plane.py();

  auto tag = [&](int k, int op) { return options.tag_base + 8 * k + op; };

  // Step-loop scratch, hoisted so the hot loop reuses capacity instead of
  // allocating fresh buffers at every step k: the broadcast diagonal block
  // and grow-only pools for the stashed L-column / U-row panel blocks.
  std::vector<real_t> diag;
  std::vector<std::pair<int, std::vector<real_t>>> lcol, urow;

  for (int k = 0; k < nb; ++k) {
    const int owner_layer = k % c;

    // 1. Reduce the step-k panel's accumulated partial updates onto the
    //    owner layer (z direction). Fixed block order keeps every zline's
    //    reduction sequence aligned.
    if (c > 1) {
      auto reduce_block = [&](int bi, int bj) {
        if (bi % p != px || bj % p != py) return;
        auto blk = A.at(bi, bj);
        grid.zline().reduce_sum(owner_layer, tag(k, 0), blk, CommPlane::Z);
      };
      reduce_block(k, k);
      for (int i = k + 1; i < nb; ++i) reduce_block(i, k);
      for (int j = k + 1; j < nb; ++j) reduce_block(k, j);
    }

    if (grid.pz() != owner_layer) continue;  // this layer skips step k

    // 2. 2D factorization of step k within the owner layer.
    diag.assign(bb, 0.0);
    if (plane.owns(k, k)) {
      auto d = A.at(k, k);
      dense::getrf_nopiv(b, d.data(), b);
      plane.grid().add_compute(dense::getrf_flops(b), ComputeKind::DiagFactor);
      std::copy(d.begin(), d.end(), diag.begin());
    }
    const bool in_prow = px == k % p;
    const bool in_pcol = py == k % p;
    if (in_prow) plane.row().bcast(k % p, tag(k, 1), diag, CommPlane::XY);
    if (in_pcol) plane.col().bcast(k % p, tag(k, 2), diag, CommPlane::XY);

    if (in_pcol) {
      for (int i = k + 1; i < nb; ++i) {
        if (i % p != px) continue;
        dense::trsm_right_upper(b, b, diag.data(), b, A.at(i, k).data(), b);
        plane.grid().add_compute(dense::trsm_flops(b, b), ComputeKind::PanelSolve);
      }
    }
    if (in_prow) {
      for (int j = k + 1; j < nb; ++j) {
        if (j % p != py) continue;
        dense::trsm_left_lower_unit(b, b, diag.data(), b, A.at(k, j).data(), b);
        plane.grid().add_compute(dense::trsm_flops(b, b), ComputeKind::PanelSolve);
      }
    }

    // 3. Panel broadcasts within the layer, then the trailing update on
    //    this layer's copy only. Pool slots past the live count keep their
    //    capacity from earlier (larger) steps.
    std::size_t nl = 0, nu = 0;
    for (int i = k + 1; i < nb; ++i) {
      if (i % p != px) continue;
      if (nl == lcol.size()) lcol.emplace_back();
      auto& [bi, buf] = lcol[nl++];
      bi = i;
      buf.assign(bb, 0.0);
      if (in_pcol) {
        const auto blk = A.at(i, k);
        std::copy(blk.begin(), blk.end(), buf.begin());
      }
      plane.row().bcast(k % p, tag(k, 3), buf, CommPlane::XY);
    }
    for (int j = k + 1; j < nb; ++j) {
      if (j % p != py) continue;
      if (nu == urow.size()) urow.emplace_back();
      auto& [bj, buf] = urow[nu++];
      bj = j;
      buf.assign(bb, 0.0);
      if (in_prow) {
        const auto blk = A.at(k, j);
        std::copy(blk.begin(), blk.end(), buf.begin());
      }
      plane.col().bcast(k % p, tag(k, 4), buf, CommPlane::XY);
    }
    for (std::size_t li = 0; li < nl; ++li) {
      const auto& [i, lb] = lcol[li];
      for (std::size_t uj = 0; uj < nu; ++uj) {
        const auto& [j, ub] = urow[uj];
        dense::gemm_minus(b, b, b, lb.data(), b, ub.data(), b,
                          A.at(i, j).data(), b);
        plane.grid().add_compute(dense::gemm_flops(b, b, b),
                                 ComputeKind::SchurUpdate);
      }
    }
  }
}

std::optional<std::vector<real_t>> gather_dense_25d(
    Dense25dMatrix& A, sim::Comm& world, sim::ProcessGrid3D& grid,
    const Dense25dOptions& options) {
  const int gather_tag = options.tag_base + 8 * A.n_blocks() + 1;
  auto& plane = grid.plane();
  const int p = plane.Px();
  const int c = grid.Pz();
  const int nb = A.n_blocks();
  const index_t b = A.block();
  const index_t n = A.n();

  // Block (i, j) is final on layer min(i, j) % c at plane rank (i%p, j%p).
  std::vector<real_t> packed;
  for (int bi = 0; bi < nb; ++bi)
    for (int bj = 0; bj < nb; ++bj)
      if (std::min(bi, bj) % c == grid.pz() && bi % p == plane.px() &&
          bj % p == plane.py()) {
        const auto blk = A.at(bi, bj);
        packed.insert(packed.end(), blk.begin(), blk.end());
      }

  if (world.rank() != 0) {
    world.send(0, gather_tag, packed, CommPlane::Z);
    return std::nullopt;
  }
  std::vector<real_t> full(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
  auto unpack = [&](int pz, int spx, int spy, std::span<const real_t> buf) {
    std::size_t pos = 0;
    for (int bi = 0; bi < nb; ++bi)
      for (int bj = 0; bj < nb; ++bj) {
        if (std::min(bi, bj) % c != pz || bi % p != spx || bj % p != spy)
          continue;
        for (index_t col = 0; col < b; ++col)
          for (index_t r = 0; r < b; ++r)
            full[static_cast<std::size_t>((bi * b + r) + (bj * b + col) * n)] =
                buf[pos + static_cast<std::size_t>(r + col * b)];
        pos += static_cast<std::size_t>(b) * static_cast<std::size_t>(b);
      }
    SLU3D_CHECK(pos == buf.size(), "gather stream not fully consumed");
  };
  unpack(grid.pz(), plane.px(), plane.py(), packed);
  for (int r = 1; r < world.size(); ++r) {
    const auto buf = world.recv(r, gather_tag, CommPlane::Z);
    unpack(r / (p * p), (r % (p * p)) / p, (r % (p * p)) % p, buf);
  }
  return full;
}

}  // namespace slu3d
