// Dense 2.5D LU factorization (Solomonik & Demmel, Euro-Par'11) on the
// simulated runtime — the communication-avoiding *dense* algorithm the
// paper builds on conceptually (§I, §VI) and proposes to use for the top
// elimination-tree levels as future work (§VII).
//
// Layout: a p x p x c grid (P = p*p*c). Every layer holds a replicated
// block-cyclic copy of the matrix (layer 0 starts with A, the rest with
// zeros). Panel step k is owned by layer k mod c: before factoring, the
// other layers' accumulated partial updates for step-k blocks are reduced
// onto the owner layer along z; the owner factors the diagonal block,
// solves and broadcasts the panels within its own (smaller) 2D grid, and
// applies the trailing update only to its own copy. Each layer therefore
// performs 1/c of the Schur updates, cutting per-process panel-broadcast
// volume by sqrt(c) at the price of c-fold memory and the z reductions —
// exactly the W = O(n^2 / sqrt(cP)) trade-off of the 2.5D analysis.
#pragma once

#include <optional>
#include <vector>

#include "simmpi/process_grid.hpp"
#include "support/types.hpp"

namespace slu3d {

struct Dense25dOptions {
  index_t block = 32;  ///< block size b; the matrix is an nb x nb block grid
  int tag_base = 0;
};

/// Block-cyclic shard of the dense matrix held by one rank of one layer.
class Dense25dMatrix {
 public:
  /// `n` must be a multiple of options.block for simplicity.
  Dense25dMatrix(index_t n, const Dense25dOptions& opt, int p, int px, int py);

  index_t n() const { return n_; }
  index_t block() const { return b_; }
  int n_blocks() const { return nb_; }
  bool owns(int bi, int bj) const { return bi % p_ == px_ && bj % p_ == py_; }
  /// Dense b x b column-major storage of owned block (bi, bj).
  std::span<real_t> at(int bi, int bj);

  /// Initializes owned blocks from a full column-major matrix.
  void fill_from(std::span<const real_t> a_full);
  void zero();

  offset_t allocated_bytes() const;

 private:
  index_t n_;
  index_t b_;
  int nb_;
  int p_, px_, py_;
  std::vector<std::vector<real_t>> blocks_;  // nb*nb slots; empty if unowned
};

/// Factorizes A = L U (no pivoting) on a p x p x c grid. Collective over
/// `world` (size p*p*c). On return, the L/U panels of step k live on
/// layer k mod c. With c == 1 this is the classic 2D dense LU.
void dense_lu_25d(Dense25dMatrix& A, sim::Comm& world, sim::ProcessGrid3D& grid,
                  const Dense25dOptions& options = {});

/// Gathers the factored blocks (step k from layer k mod c) to world rank 0
/// as a full column-major matrix holding L \ U packed.
std::optional<std::vector<real_t>> gather_dense_25d(Dense25dMatrix& A,
                                                    sim::Comm& world,
                                                    sim::ProcessGrid3D& grid,
                                                    const Dense25dOptions& options = {});

}  // namespace slu3d
