// Supernodal block symbolic factorization. The separator tree's node
// blocks are the supernodes; this computes, for each supernode, the exact
// row structure of its L panel (and by pattern symmetry the column
// structure of its U panel), the supernodal elimination tree, and the
// flop / storage statistics that the paper's cost analysis (§IV) is built
// on.
#pragma once

#include <span>
#include <vector>

#include "order/separator_tree.hpp"
#include "sparse/csr.hpp"
#include "support/types.hpp"

namespace slu3d {

/// One off-diagonal block of a supernode's L panel: the rows of ancestor
/// supernode `snode` that are structurally nonzero in this panel.
/// By pattern symmetry the U panel block U(s, snode) has these as columns.
struct PanelBlock {
  int snode = -1;              ///< ancestor supernode id
  std::vector<index_t> rows;   ///< global (permuted) indices, sorted

  index_t n_rows() const { return static_cast<index_t>(rows.size()); }
};

/// The deterministic renumbering of separator-tree nodes into column order
/// (== postorder) that defines supernode ids. Factored out of
/// BlockStructure so the distributed analysis phase (src/analysis/) can
/// compute identical supernode ids on every rank — the tie-break for empty
/// separator blocks below is part of the determinism contract (see
/// DESIGN.md, "Distributed analysis") and must not change independently of
/// BlockStructure.
struct SnodeNumbering {
  int n_snodes = 0;
  index_t n = 0;
  std::vector<int> by_col;           ///< snode id -> tree node id
  std::vector<int> to_snode;         ///< tree node id -> snode id
  std::vector<index_t> snode_first;  ///< size n_snodes + 1, tiles [0, n)
  std::vector<int> col_to_snode;     ///< size n

  static SnodeNumbering from_tree(const SeparatorTree& tree);

  int snode_of_col(index_t col) const {
    return col_to_snode[static_cast<std::size_t>(col)];
  }
  index_t first_col(int s) const {
    return snode_first[static_cast<std::size_t>(s)];
  }
  index_t beyond_col(int s) const {
    return snode_first[static_cast<std::size_t>(s) + 1];
  }
};

/// Complete block symbolic structure for a pattern-symmetric LU
/// factorization. Supernode ids are the separator-tree nodes renumbered in
/// column order (== postorder), so ascending id order is a valid
/// elimination order.
class BlockStructure {
 public:
  /// Computes the structure for matrix `A` permuted by `tree.perm()`.
  /// (A is the *unpermuted* matrix; the structure refers to permuted
  /// indices.)
  BlockStructure(const CsrMatrix& A, const SeparatorTree& tree);

  /// Builds the structure from precomputed *final* per-supernode row sets
  /// (sorted, deduplicated, post fill-in merge — exactly what the primary
  /// constructor's symbolic elimination produces). This is the layout-only
  /// path the distributed analysis phase uses after its ranks have
  /// exchanged row structures: no pattern scan, no merging, just the
  /// panel-block split and statistics. Given equal trees and row sets the
  /// result is bitwise identical to the primary constructor's.
  BlockStructure(const SeparatorTree& tree,
                 std::vector<std::vector<index_t>> rowsets);

  int n_snodes() const { return n_snodes_; }
  index_t n() const { return n_; }

  /// Column range of supernode s: [first(s), first(s+1)).
  index_t first_col(int s) const { return snode_first_[static_cast<std::size_t>(s)]; }
  index_t snode_size(int s) const {
    return snode_first_[static_cast<std::size_t>(s) + 1] -
           snode_first_[static_cast<std::size_t>(s)];
  }
  int col_to_snode(index_t col) const {
    return col_to_snode_[static_cast<std::size_t>(col)];
  }

  /// Parent of s in the separator (ND) tree, as a supernode id; -1 for the
  /// root. This is the dependence tree the 2D/3D schedulers walk (§II-D).
  int nd_parent(int s) const { return nd_parent_[static_cast<std::size_t>(s)]; }
  /// Children of s in the ND tree (0 or 2 entries).
  std::span<const int> nd_children(int s) const {
    return nd_children_[static_cast<std::size_t>(s)];
  }

  /// L panel of supernode s: blocks strictly below the diagonal, in
  /// ascending ancestor order.
  std::span<const PanelBlock> lpanel(int s) const {
    return lpanel_[static_cast<std::size_t>(s)];
  }

  /// Total rows below the diagonal block in panel s.
  index_t panel_rows(int s) const { return panel_rows_[static_cast<std::size_t>(s)]; }

  // ---- statistics (per supernode and totals) -------------------------
  /// Flops to factor supernode s: dense diagonal LU + two triangular
  /// panel solves + the Schur-complement GEMM.
  offset_t snode_flops(int s) const { return flops_[static_cast<std::size_t>(s)]; }
  /// Stored entries owned by supernode s (dense diagonal + L and U panels).
  offset_t snode_nnz(int s) const { return nnz_[static_cast<std::size_t>(s)]; }
  offset_t total_flops() const { return total_flops_; }
  offset_t total_nnz() const { return total_nnz_; }

 private:
  /// Shared first stage of both constructors: adopts the numbering, builds
  /// the ND parent/child links, and validates that supernode ranges tile
  /// the column space.
  void init_tree(const SeparatorTree& tree, SnodeNumbering num);
  /// Shared last stage: splits each final row set into per-ancestor panel
  /// blocks and computes the flop/storage statistics.
  void finalize_panels(std::vector<std::vector<index_t>> rowsets);

  index_t n_ = 0;
  int n_snodes_ = 0;
  std::vector<index_t> snode_first_;
  std::vector<int> col_to_snode_;
  std::vector<int> nd_parent_;
  std::vector<std::vector<int>> nd_children_;
  std::vector<std::vector<PanelBlock>> lpanel_;
  std::vector<index_t> panel_rows_;
  std::vector<offset_t> flops_;
  std::vector<offset_t> nnz_;
  offset_t total_flops_ = 0;
  offset_t total_nnz_ = 0;
};

}  // namespace slu3d
