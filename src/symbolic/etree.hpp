// Scalar elimination tree and scalar symbolic fill — the exact (unrelaxed)
// reference used to validate the supernodal block structure and to measure
// ordering quality.
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "support/types.hpp"

namespace slu3d {

/// Liu's elimination tree of the pattern of A + Aᵀ (parent[i] = -1 for
/// roots). A must be square; the diagonal is implicit.
std::vector<index_t> elimination_tree(const CsrMatrix& A);

/// A postorder of a forest given as a parent array (children before
/// parents; result[k] = k-th vertex to eliminate).
std::vector<index_t> tree_postorder(std::span<const index_t> parent);

/// Height of the forest (single vertex = 1).
int tree_height(std::span<const index_t> parent);

/// Exact scalar symbolic Cholesky of the pattern of A + Aᵀ: returns the row
/// structure of every column of L (strictly below the diagonal, sorted).
/// O(|L|) time and memory.
std::vector<std::vector<index_t>> symbolic_fill(const CsrMatrix& A);

/// Number of nonzeros in L (strictly lower) + the diagonal, from
/// symbolic_fill. nnz(L + U) for a pattern-symmetric factorization is
/// 2 * (this) - n.
offset_t scalar_factor_nnz(const CsrMatrix& A);

}  // namespace slu3d
