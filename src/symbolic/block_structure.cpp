#include "symbolic/block_structure.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"

namespace slu3d {

SnodeNumbering SnodeNumbering::from_tree(const SeparatorTree& tree) {
  SnodeNumbering num;
  num.n = tree.n();
  num.n_snodes = tree.n_nodes();

  // --- Renumber tree nodes into column order (== a postorder). ---------
  num.by_col.resize(static_cast<std::size_t>(num.n_snodes));
  std::iota(num.by_col.begin(), num.by_col.end(), 0);
  // Ties at sep_first happen with empty separator blocks. An empty node
  // marks the end of its subtree, so it must precede any node of the
  // *next* branch starting at the same column (smaller sep_last first);
  // among nested empty nodes at the same boundary, the deeper one is the
  // descendant and must come first.
  std::vector<int> depth(static_cast<std::size_t>(num.n_snodes));
  for (int v = 0; v < num.n_snodes; ++v)
    depth[static_cast<std::size_t>(v)] = tree.depth(v);
  std::sort(num.by_col.begin(), num.by_col.end(), [&](int a, int b) {
    if (tree.node(a).sep_first != tree.node(b).sep_first)
      return tree.node(a).sep_first < tree.node(b).sep_first;
    if (tree.node(a).sep_last != tree.node(b).sep_last)
      return tree.node(a).sep_last < tree.node(b).sep_last;
    return depth[static_cast<std::size_t>(a)] > depth[static_cast<std::size_t>(b)];
  });
  num.to_snode.resize(static_cast<std::size_t>(num.n_snodes));
  for (int s = 0; s < num.n_snodes; ++s)
    num.to_snode[static_cast<std::size_t>(num.by_col[static_cast<std::size_t>(s)])] = s;

  num.snode_first.resize(static_cast<std::size_t>(num.n_snodes) + 1);
  for (int s = 0; s < num.n_snodes; ++s)
    num.snode_first[static_cast<std::size_t>(s)] =
        tree.node(num.by_col[static_cast<std::size_t>(s)]).sep_first;
  num.snode_first[static_cast<std::size_t>(num.n_snodes)] = num.n;

  num.col_to_snode.resize(static_cast<std::size_t>(num.n));
  for (int s = 0; s < num.n_snodes; ++s)
    for (index_t c = num.first_col(s); c < num.beyond_col(s); ++c)
      num.col_to_snode[static_cast<std::size_t>(c)] = s;
  return num;
}

void BlockStructure::init_tree(const SeparatorTree& tree, SnodeNumbering num) {
  n_ = num.n;
  n_snodes_ = num.n_snodes;
  nd_parent_.assign(static_cast<std::size_t>(n_snodes_), -1);
  nd_children_.assign(static_cast<std::size_t>(n_snodes_), {});
  for (int s = 0; s < n_snodes_; ++s) {
    const auto& nd = tree.node(num.by_col[static_cast<std::size_t>(s)]);
    if (nd.parent >= 0) {
      const int p = num.to_snode[static_cast<std::size_t>(nd.parent)];
      SLU3D_CHECK(p > s, "parent supernode must come after its children");
      nd_parent_[static_cast<std::size_t>(s)] = p;
      nd_children_[static_cast<std::size_t>(p)].push_back(s);
    }
  }
  // The supernode ranges must tile [0, n) exactly in id order: each
  // node's own column range must end where the next one's begins. (This
  // is what guarantees that snode ids, ranges, and tree links stay
  // mutually consistent — see the tie-break comment in from_tree.)
  for (int s = 0; s < n_snodes_; ++s)
    SLU3D_CHECK(tree.node(num.by_col[static_cast<std::size_t>(s)]).sep_last ==
                    num.snode_first[static_cast<std::size_t>(s) + 1],
                "supernode ranges must tile the column space in id order");
  snode_first_ = std::move(num.snode_first);
  col_to_snode_ = std::move(num.col_to_snode);
}

void BlockStructure::finalize_panels(std::vector<std::vector<index_t>> rowsets) {
  SLU3D_CHECK(rowsets.size() == static_cast<std::size_t>(n_snodes_),
              "one row set per supernode");
  lpanel_.resize(static_cast<std::size_t>(n_snodes_));
  panel_rows_.assign(static_cast<std::size_t>(n_snodes_), 0);
  flops_.assign(static_cast<std::size_t>(n_snodes_), 0);
  nnz_.assign(static_cast<std::size_t>(n_snodes_), 0);

  for (int s = 0; s < n_snodes_; ++s) {
    const auto& rs = rowsets[static_cast<std::size_t>(s)];
    const index_t beyond = snode_first_[static_cast<std::size_t>(s) + 1];
    SLU3D_CHECK(rs.empty() || rs.front() >= beyond,
                "panel row inside own supernode range");

    // Split the rowset into per-ancestor panel blocks.
    auto& panel = lpanel_[static_cast<std::size_t>(s)];
    for (std::size_t k = 0; k < rs.size();) {
      const int a = col_to_snode(rs[k]);
      PanelBlock blk;
      blk.snode = a;
      const index_t a_end = snode_first_[static_cast<std::size_t>(a) + 1];
      while (k < rs.size() && rs[k] < a_end) blk.rows.push_back(rs[k++]);
      panel.push_back(std::move(blk));
    }
    panel_rows_[static_cast<std::size_t>(s)] = static_cast<index_t>(rs.size());

    // Statistics (dense diagonal + two panels + Schur GEMM).
    const offset_t ns = snode_size(s);
    const offset_t m = panel_rows_[static_cast<std::size_t>(s)];
    flops_[static_cast<std::size_t>(s)] =
        2 * ns * ns * ns / 3 + 2 * m * ns * ns + 2 * m * m * ns;
    nnz_[static_cast<std::size_t>(s)] = ns * ns + 2 * m * ns;
    total_flops_ += flops_[static_cast<std::size_t>(s)];
    total_nnz_ += nnz_[static_cast<std::size_t>(s)];
  }
}

BlockStructure::BlockStructure(const CsrMatrix& A, const SeparatorTree& tree) {
  SLU3D_CHECK(A.n_rows() == A.n_cols(), "block structure needs square A");
  SLU3D_CHECK(A.n_rows() == tree.n(), "tree size mismatch");
  init_tree(tree, SnodeNumbering::from_tree(tree));

  // --- Initial row candidates from the (symmetrized, permuted) pattern. -
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  const CsrMatrix S = Ap.pattern_is_symmetric() ? Ap : Ap.symmetrized_pattern();
  std::vector<std::vector<index_t>> rowset(static_cast<std::size_t>(n_snodes_));
  for (index_t i = 0; i < n_; ++i) {
    const int si = col_to_snode(i);
    for (index_t j : S.row_cols(i)) {
      const int sj = col_to_snode(j);
      if (sj < si) rowset[static_cast<std::size_t>(sj)].push_back(i);
    }
  }

  // --- Supernodal symbolic elimination via first-ancestor merging. -----
  // pending[s] collects the supernodes whose remaining row structure must
  // be merged into s (their first below-panel row lies in s).
  std::vector<std::vector<int>> pending(static_cast<std::size_t>(n_snodes_));
  std::vector<index_t> mark(static_cast<std::size_t>(n_), -1);

  for (int s = 0; s < n_snodes_; ++s) {
    auto& rs = rowset[static_cast<std::size_t>(s)];
    const index_t beyond = snode_first_[static_cast<std::size_t>(s) + 1];
    // Deduplicate the A-pattern candidates.
    std::sort(rs.begin(), rs.end());
    rs.erase(std::unique(rs.begin(), rs.end()), rs.end());
    for (index_t r : rs) mark[static_cast<std::size_t>(r)] = static_cast<index_t>(s);
    // Merge children's structures (rows beyond this supernode's range).
    for (int c : pending[static_cast<std::size_t>(s)]) {
      for (index_t r : rowset[static_cast<std::size_t>(c)]) {
        if (r >= beyond && mark[static_cast<std::size_t>(r)] != static_cast<index_t>(s)) {
          mark[static_cast<std::size_t>(r)] = static_cast<index_t>(s);
          rs.push_back(r);
        }
      }
    }
    std::sort(rs.begin(), rs.end());

    if (!rs.empty()) {
      const int ep = col_to_snode(rs.front());
      pending[static_cast<std::size_t>(ep)].push_back(s);
    }
  }
  finalize_panels(std::move(rowset));
}

BlockStructure::BlockStructure(const SeparatorTree& tree,
                               std::vector<std::vector<index_t>> rowsets) {
  init_tree(tree, SnodeNumbering::from_tree(tree));
  finalize_panels(std::move(rowsets));
}

}  // namespace slu3d
