#include "symbolic/block_structure.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"

namespace slu3d {

BlockStructure::BlockStructure(const CsrMatrix& A, const SeparatorTree& tree) {
  SLU3D_CHECK(A.n_rows() == A.n_cols(), "block structure needs square A");
  SLU3D_CHECK(A.n_rows() == tree.n(), "tree size mismatch");
  n_ = A.n_rows();
  n_snodes_ = tree.n_nodes();

  // --- Renumber tree nodes into column order (== a postorder). ---------
  std::vector<int> by_col(static_cast<std::size_t>(n_snodes_));
  std::iota(by_col.begin(), by_col.end(), 0);
  // Ties at sep_first happen with empty separator blocks. An empty node
  // marks the end of its subtree, so it must precede any node of the
  // *next* branch starting at the same column (smaller sep_last first);
  // among nested empty nodes at the same boundary, the deeper one is the
  // descendant and must come first.
  std::vector<int> depth(static_cast<std::size_t>(n_snodes_));
  for (int v = 0; v < n_snodes_; ++v)
    depth[static_cast<std::size_t>(v)] = tree.depth(v);
  std::sort(by_col.begin(), by_col.end(), [&](int a, int b) {
    if (tree.node(a).sep_first != tree.node(b).sep_first)
      return tree.node(a).sep_first < tree.node(b).sep_first;
    if (tree.node(a).sep_last != tree.node(b).sep_last)
      return tree.node(a).sep_last < tree.node(b).sep_last;
    return depth[static_cast<std::size_t>(a)] > depth[static_cast<std::size_t>(b)];
  });
  std::vector<int> to_snode(static_cast<std::size_t>(n_snodes_));
  for (int s = 0; s < n_snodes_; ++s)
    to_snode[static_cast<std::size_t>(by_col[static_cast<std::size_t>(s)])] = s;

  snode_first_.resize(static_cast<std::size_t>(n_snodes_) + 1);
  nd_parent_.assign(static_cast<std::size_t>(n_snodes_), -1);
  nd_children_.assign(static_cast<std::size_t>(n_snodes_), {});
  for (int s = 0; s < n_snodes_; ++s) {
    const auto& nd = tree.node(by_col[static_cast<std::size_t>(s)]);
    snode_first_[static_cast<std::size_t>(s)] = nd.sep_first;
    if (nd.parent >= 0) {
      const int p = to_snode[static_cast<std::size_t>(nd.parent)];
      SLU3D_CHECK(p > s, "parent supernode must come after its children");
      nd_parent_[static_cast<std::size_t>(s)] = p;
      nd_children_[static_cast<std::size_t>(p)].push_back(s);
    }
  }
  snode_first_[static_cast<std::size_t>(n_snodes_)] = n_;
  // The supernode ranges must tile [0, n) exactly in id order: each
  // node's own column range must end where the next one's begins. (This
  // is what guarantees that snode ids, ranges, and tree links stay
  // mutually consistent — see the tie-break comment above.)
  for (int s = 0; s < n_snodes_; ++s)
    SLU3D_CHECK(tree.node(by_col[static_cast<std::size_t>(s)]).sep_last ==
                    snode_first_[static_cast<std::size_t>(s) + 1],
                "supernode ranges must tile the column space in id order");

  col_to_snode_.resize(static_cast<std::size_t>(n_));
  for (int s = 0; s < n_snodes_; ++s)
    for (index_t c = first_col(s); c < snode_first_[static_cast<std::size_t>(s) + 1]; ++c)
      col_to_snode_[static_cast<std::size_t>(c)] = s;

  // --- Initial row candidates from the (symmetrized, permuted) pattern. -
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  const CsrMatrix S = Ap.pattern_is_symmetric() ? Ap : Ap.symmetrized_pattern();
  std::vector<std::vector<index_t>> rowset(static_cast<std::size_t>(n_snodes_));
  for (index_t i = 0; i < n_; ++i) {
    const int si = col_to_snode(i);
    for (index_t j : S.row_cols(i)) {
      const int sj = col_to_snode(j);
      if (sj < si) rowset[static_cast<std::size_t>(sj)].push_back(i);
    }
  }

  // --- Supernodal symbolic elimination via first-ancestor merging. -----
  // pending[s] collects the supernodes whose remaining row structure must
  // be merged into s (their first below-panel row lies in s).
  std::vector<std::vector<int>> pending(static_cast<std::size_t>(n_snodes_));
  std::vector<index_t> mark(static_cast<std::size_t>(n_), -1);
  lpanel_.resize(static_cast<std::size_t>(n_snodes_));
  panel_rows_.assign(static_cast<std::size_t>(n_snodes_), 0);
  flops_.assign(static_cast<std::size_t>(n_snodes_), 0);
  nnz_.assign(static_cast<std::size_t>(n_snodes_), 0);

  for (int s = 0; s < n_snodes_; ++s) {
    auto& rs = rowset[static_cast<std::size_t>(s)];
    const index_t beyond = snode_first_[static_cast<std::size_t>(s) + 1];
    // Deduplicate the A-pattern candidates.
    std::sort(rs.begin(), rs.end());
    rs.erase(std::unique(rs.begin(), rs.end()), rs.end());
    for (index_t r : rs) mark[static_cast<std::size_t>(r)] = static_cast<index_t>(s);
    // Merge children's structures (rows beyond this supernode's range).
    for (int c : pending[static_cast<std::size_t>(s)]) {
      for (index_t r : rowset[static_cast<std::size_t>(c)]) {
        if (r >= beyond && mark[static_cast<std::size_t>(r)] != static_cast<index_t>(s)) {
          mark[static_cast<std::size_t>(r)] = static_cast<index_t>(s);
          rs.push_back(r);
        }
      }
      // The child's rows are no longer needed once merged upward; free them
      // only if it has already been split into panel blocks (it has: c < s).
    }
    std::sort(rs.begin(), rs.end());
    SLU3D_CHECK(rs.empty() || rs.front() >= beyond,
                "panel row inside own supernode range");

    if (!rs.empty()) {
      const int ep = col_to_snode(rs.front());
      pending[static_cast<std::size_t>(ep)].push_back(s);
    }

    // Split the rowset into per-ancestor panel blocks.
    auto& panel = lpanel_[static_cast<std::size_t>(s)];
    for (std::size_t k = 0; k < rs.size();) {
      const int a = col_to_snode(rs[k]);
      PanelBlock blk;
      blk.snode = a;
      const index_t a_end = snode_first_[static_cast<std::size_t>(a) + 1];
      while (k < rs.size() && rs[k] < a_end) blk.rows.push_back(rs[k++]);
      panel.push_back(std::move(blk));
    }
    panel_rows_[static_cast<std::size_t>(s)] = static_cast<index_t>(rs.size());

    // Statistics (dense diagonal + two panels + Schur GEMM).
    const offset_t ns = snode_size(s);
    const offset_t m = panel_rows_[static_cast<std::size_t>(s)];
    flops_[static_cast<std::size_t>(s)] =
        2 * ns * ns * ns / 3 + 2 * m * ns * ns + 2 * m * m * ns;
    nnz_[static_cast<std::size_t>(s)] = ns * ns + 2 * m * ns;
    total_flops_ += flops_[static_cast<std::size_t>(s)];
    total_nnz_ += nnz_[static_cast<std::size_t>(s)];
  }
}

}  // namespace slu3d
