#include "symbolic/etree.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace slu3d {

std::vector<index_t> elimination_tree(const CsrMatrix& A) {
  SLU3D_CHECK(A.n_rows() == A.n_cols(), "etree needs square A");
  const CsrMatrix S = A.pattern_is_symmetric() ? A : A.symmetrized_pattern();
  const index_t n = S.n_rows();
  std::vector<index_t> parent(static_cast<std::size_t>(n), -1);
  std::vector<index_t> ancestor(static_cast<std::size_t>(n), -1);  // path compression
  for (index_t i = 0; i < n; ++i) {
    for (index_t j : S.row_cols(i)) {
      if (j >= i) break;  // only the lower triangle drives the tree
      // Walk from j to the root of its current subtree, compressing.
      index_t v = j;
      while (ancestor[static_cast<std::size_t>(v)] != -1 &&
             ancestor[static_cast<std::size_t>(v)] != i) {
        const index_t next = ancestor[static_cast<std::size_t>(v)];
        ancestor[static_cast<std::size_t>(v)] = i;
        v = next;
      }
      if (ancestor[static_cast<std::size_t>(v)] == -1) {
        ancestor[static_cast<std::size_t>(v)] = i;
        parent[static_cast<std::size_t>(v)] = i;
      }
    }
  }
  return parent;
}

std::vector<index_t> tree_postorder(std::span<const index_t> parent) {
  const index_t n = static_cast<index_t>(parent.size());
  // Build child lists (first_child / next_sibling to avoid vector-of-vector).
  std::vector<index_t> first_child(static_cast<std::size_t>(n), -1);
  std::vector<index_t> next_sibling(static_cast<std::size_t>(n), -1);
  for (index_t v = n - 1; v >= 0; --v) {  // reversed so children pop in order
    const index_t p = parent[static_cast<std::size_t>(v)];
    if (p >= 0) {
      next_sibling[static_cast<std::size_t>(v)] = first_child[static_cast<std::size_t>(p)];
      first_child[static_cast<std::size_t>(p)] = v;
    }
  }
  std::vector<index_t> out;
  out.reserve(static_cast<std::size_t>(n));
  std::vector<std::pair<index_t, bool>> stack;
  for (index_t r = 0; r < n; ++r) {
    if (parent[static_cast<std::size_t>(r)] != -1) continue;
    stack.push_back({r, false});
    while (!stack.empty()) {
      auto [v, done] = stack.back();
      stack.pop_back();
      if (done) {
        out.push_back(v);
        continue;
      }
      stack.push_back({v, true});
      for (index_t c = first_child[static_cast<std::size_t>(v)]; c != -1;
           c = next_sibling[static_cast<std::size_t>(c)])
        stack.push_back({c, false});
    }
  }
  SLU3D_CHECK(out.size() == parent.size(), "postorder visited wrong count");
  return out;
}

int tree_height(std::span<const index_t> parent) {
  const auto post = tree_postorder(parent);
  std::vector<int> h(parent.size(), 1);
  int best = 0;
  for (index_t v : post) {
    const index_t p = parent[static_cast<std::size_t>(v)];
    if (p >= 0)
      h[static_cast<std::size_t>(p)] =
          std::max(h[static_cast<std::size_t>(p)], h[static_cast<std::size_t>(v)] + 1);
    best = std::max(best, h[static_cast<std::size_t>(v)]);
  }
  return best;
}

std::vector<std::vector<index_t>> symbolic_fill(const CsrMatrix& A) {
  const CsrMatrix S = A.pattern_is_symmetric() ? A : A.symmetrized_pattern();
  const index_t n = S.n_rows();
  const auto parent = elimination_tree(S);
  std::vector<std::vector<index_t>> cols(static_cast<std::size_t>(n));
  std::vector<index_t> mark(static_cast<std::size_t>(n), -1);
  std::vector<index_t> scratch;
  for (index_t j = 0; j < n; ++j) {
    auto& cj = cols[static_cast<std::size_t>(j)];
    // Entries of A below the diagonal in column j == row j of upper part.
    for (index_t i : S.row_cols(j))
      if (i > j && mark[static_cast<std::size_t>(i)] != j) {
        mark[static_cast<std::size_t>(i)] = j;
        cj.push_back(i);
      }
    // Merge children columns (minus their first entry, which is j itself).
    // Children are the c with parent[c] == j; find them via a reverse pass:
    // we instead accumulate on the fly — see child_lists below.
    cj.shrink_to_fit();
    (void)scratch;
  }
  // Second pass in postorder, merging child structures upward.
  std::vector<std::vector<index_t>> kids(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v)
    if (parent[static_cast<std::size_t>(v)] >= 0)
      kids[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])].push_back(v);
  std::fill(mark.begin(), mark.end(), -1);
  for (index_t j : tree_postorder(parent)) {
    auto& cj = cols[static_cast<std::size_t>(j)];
    for (index_t i : cj) mark[static_cast<std::size_t>(i)] = j;
    for (index_t c : kids[static_cast<std::size_t>(j)]) {
      for (index_t i : cols[static_cast<std::size_t>(c)]) {
        if (i > j && mark[static_cast<std::size_t>(i)] != j) {
          mark[static_cast<std::size_t>(i)] = j;
          cj.push_back(i);
        }
      }
    }
    std::sort(cj.begin(), cj.end());
  }
  return cols;
}

offset_t scalar_factor_nnz(const CsrMatrix& A) {
  const auto cols = symbolic_fill(A);
  offset_t nnz = A.n_rows();  // the diagonal
  for (const auto& c : cols) nnz += static_cast<offset_t>(c.size());
  return nnz;
}

}  // namespace slu3d
