// Sharded multi-tenant solver fleet — the "millions of users" front end
// over N resident SolverService shards. The fleet makes the paper's
// memory-for-communication trade at service scale: cached symbolic state
// is replicated across shards only where traffic demands it, and requests
// are routed to the shard that already holds it.
//
//  * Fingerprint-affinity routing: a request whose pattern is resident on
//    some shard lands on that shard (cache hit: zero analysis work);
//    unknown patterns hash to a stable home shard. RoutingPolicy::{Hash,
//    RoundRobin} are the measurably-worse baselines the tests compare
//    against.
//  * Coalescing: same-(fingerprint, values-version) requests arriving
//    within `coalesce_window` simulated seconds of the first join one
//    batch and execute as ONE solve_stream run (n x nrhs panels per
//    request, host-audited disjoint tags), with per-request results
//    bitwise identical to independent solves.
//  * Admission control: per-shard queues are bounded at `queue_depth`
//    requests. On saturation the router redirects to the least-loaded
//    shard (if enabled) and sheds with an explicit Shed response once
//    every queue is full — open-loop load can never grow memory.
//  * Cache-warm migration: when the affinity shard's queue exceeds
//    `migration_threshold` times the least-loaded shard's, the pattern's
//    cached SymbolicState moves to the cold shard and the request follows.
//    Only the structure-keyed symbolic payload ships (SymbolicState::
//    payload_bytes) — never the matrix or the numeric factors.
//
// The fleet runs on a simulated clock: arrivals carry monotone simulated
// timestamps (the bench generates open-loop Poisson arrivals), shards
// advance lazily as arrivals are observed, and each batch's service time
// is the simulated critical-path seconds its factor/solve runs report.
// Everything is deterministic: one trace + one configuration = one
// bit-exact set of responses.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "service/solver_service.hpp"

namespace slu3d::service {

enum class RoutingPolicy {
  Affinity,    ///< resident-pattern shard, else hash home (the default)
  Hash,        ///< stable fingerprint hash only (no resident lookup)
  RoundRobin,  ///< naive rotation (the baseline affinity must beat)
};

struct FleetOptions {
  int shards = 4;
  /// Uniform per-shard service configuration. The fleet overrides
  /// solve_tag_base per shard so tag ranges are disjoint fleet-wide.
  ServiceOptions service;
  RoutingPolicy routing = RoutingPolicy::Affinity;
  /// Simulated seconds a batch stays open for same-pattern joiners after
  /// its first request arrives. 0 coalesces only identical arrival times.
  double coalesce_window = 0;
  /// Max queued (not yet dispatched) requests per shard; beyond this the
  /// router redirects or sheds.
  std::size_t queue_depth = 64;
  /// Try the least-loaded shard before shedding when the routed shard's
  /// queue is full.
  bool redirect_on_full = true;
  /// Cache-warm migration trigger (Affinity routing only): migrate the
  /// pattern when (affinity queue + 1) >= threshold * (min queue + 1).
  /// 0 disables migration.
  double migration_threshold = 0;
};

/// One request against the fleet: tenant, operator values, and an n x nrhs
/// right-hand-side panel. `A` is shared because coalesced requests and
/// repeated traffic reference the same operator snapshot; `values_version`
/// distinguishes same-pattern requests with different values (the caller's
/// contract: equal (fingerprint, values_version) implies equal values).
struct FleetRequest {
  std::uint64_t tenant = 0;
  std::shared_ptr<const CsrMatrix> A;
  std::uint64_t values_version = 0;
  std::span<const real_t> b;
  std::span<real_t> x;
  index_t nrhs = 1;
};

enum class RequestStatus {
  Done,    ///< solved; `x` holds the solution panel
  Shed,    ///< rejected by admission control (every queue full)
  Failed,  ///< the batch's numeric factorization threw (e.g. singular)
};

struct FleetResponse {
  std::uint64_t id = 0;  ///< fleet-assigned request id (submission order)
  std::uint64_t tenant = 0;
  RequestStatus status = RequestStatus::Done;
  int shard = -1;         ///< serving shard (-1 if shed)
  bool coalesced = false; ///< joined a batch another request opened
  bool redirected = false;
  bool warm = false;       ///< pattern was resident on the serving shard
  bool refactored = false; ///< a numeric factorization ran for the batch
  double arrival = 0;     ///< simulated timestamps
  double start = 0;       ///< when the batch began service
  double completion = 0;
  SolveReport solve;      ///< per-request solve-phase report

  double latency() const { return completion - arrival; }
};

/// Per-tenant accounting (keyed by FleetRequest::tenant).
struct TenantStats {
  long requests = 0;
  long shed = 0;
  long failed = 0;
  long rhs_columns = 0;
  double sim_seconds = 0;  ///< simulated service time consumed (factor time
                           ///< split evenly across a batch's members)
};

/// Fleet-level counters; per-shard ServiceStats (analyses, cache_hits,
/// evictions, refactor_failures) stay on the shards and are summed by
/// service_totals() so hit-rate math is auditable end to end.
struct FleetStats {
  long submitted = 0;
  long completed = 0;
  long shed = 0;
  long failed = 0;
  long redirected = 0;
  long coalesced = 0;    ///< requests that joined an already-open batch
  long batches = 0;      ///< dispatched batches (solve_stream runs)
  long activations = 0;  ///< warm batches served with zero factor work
  long migrations = 0;
  offset_t migrated_bytes = 0;  ///< symbolic payload actually shipped
  offset_t migration_bulk_bytes = 0;  ///< matrix + factor bytes a naive
                                      ///< (payload-shipping) move would cost
};

class SolverFleet {
 public:
  explicit SolverFleet(const FleetOptions& options);
  ~SolverFleet();
  SolverFleet(const SolverFleet&) = delete;
  SolverFleet& operator=(const SolverFleet&) = delete;

  /// Submits one request at simulated time `arrival` (monotone across
  /// calls). Routing, admission, and any batch dispatches due before
  /// `arrival` happen now; the request's own batch runs once its window
  /// closes and its shard frees up. Returns the fleet request id. The
  /// caller keeps `b`/`x` storage alive until the response is drained.
  std::uint64_t submit(const FleetRequest& request, double arrival);

  /// Dispatches everything still queued (windows are clamped to the last
  /// arrival) and returns all responses accumulated since the previous
  /// drain, in request-id order.
  std::vector<FleetResponse> drain();

  const FleetStats& stats() const { return stats_; }
  /// Sum of the shards' ServiceStats: fleet hit rate is
  /// (cache_hits + activations) / (cache_hits + activations + analyses).
  ServiceStats service_totals() const;
  const std::map<std::uint64_t, TenantStats>& tenant_stats() const {
    return tenants_;
  }
  int shard_count() const { return static_cast<int>(shards_.size()); }
  const SolverService& shard(int i) const;
  /// Queued (not yet dispatched) requests on shard i right now.
  std::size_t shard_queue_depth(int i) const;
  double now() const { return clock_; }

 private:
  struct Member;
  struct Batch;
  struct Shard;

  std::uint64_t fingerprint(const CsrMatrix& A) const;
  int hash_home(std::uint64_t fp) const;
  void advance(Shard& shard, double until);
  void dispatch(Shard& shard, Batch&& batch, double start);
  void shed(const FleetRequest& rq, std::uint64_t id, double arrival);

  FleetOptions opt_;
  FleetStats stats_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<std::uint64_t, TenantStats> tenants_;
  std::vector<FleetResponse> done_;
  double clock_ = 0;
  std::uint64_t next_id_ = 0;
  std::uint64_t rr_next_ = 0;
};

}  // namespace slu3d::service
