#include "fleet/solver_fleet.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "numeric/factor_io.hpp"
#include "support/check.hpp"

namespace slu3d::service {

namespace {

/// SplitMix64 finalizer: decorrelates the fingerprint bits before the
/// modulo so patterns spread evenly over any shard count.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Bytes a naive warm migration would ship: the CSR operator (pattern +
/// values) plus the numeric factor payload, instead of the symbolic state.
offset_t bulk_migration_bytes(const CsrMatrix& A, const SymbolicState& sym) {
  offset_t b = static_cast<offset_t>(A.n_rows() + 1) *
               static_cast<offset_t>(sizeof(offset_t));
  b += A.nnz() * static_cast<offset_t>(sizeof(index_t) + sizeof(real_t));
  if (sym.bs) b += sym.bs->total_nnz() * static_cast<offset_t>(sizeof(real_t));
  return b;
}

}  // namespace

struct SolverFleet::Member {
  std::uint64_t id = 0;
  double arrival = 0;
  bool coalesced = false;
  bool redirected = false;
  FleetRequest rq;
};

struct SolverFleet::Batch {
  std::uint64_t fp = 0;
  std::uint64_t ver = 0;
  std::shared_ptr<const CsrMatrix> A;
  double window_close = 0;
  std::vector<Member> members;
};

struct SolverFleet::Shard {
  std::unique_ptr<SolverService> svc;
  std::deque<Batch> queue;   ///< batches not yet dispatched (FIFO; window
                             ///< close times are monotone along the deque)
  std::size_t queued = 0;    ///< requests across queued batches
  double busy_until = 0;     ///< simulated time the shard frees up
  // Operator the shard's current numeric factors belong to, so repeat
  // batches with unchanged values activate instead of refactorizing.
  bool has_last = false;
  std::uint64_t last_fp = 0;
  std::uint64_t last_ver = 0;
};

SolverFleet::SolverFleet(const FleetOptions& options) : opt_(options) {
  SLU3D_CHECK(opt_.shards >= 1, "need at least one shard");
  SLU3D_CHECK(opt_.shards <= 64, "tag bases support at most 64 shards");
  SLU3D_CHECK(opt_.queue_depth >= 1, "queue depth must be positive");
  SLU3D_CHECK(opt_.coalesce_window >= 0, "coalesce window must be >= 0");
  shards_.reserve(static_cast<std::size_t>(opt_.shards));
  for (int i = 0; i < opt_.shards; ++i) {
    ServiceOptions so = opt_.service;
    // Disjoint per-shard tag bases: shard i owns [ (i+1)<<24, (i+2)<<24 ).
    so.solve_tag_base = (i + 1) << 24;
    auto sh = std::make_unique<Shard>();
    sh->svc = std::make_unique<SolverService>(so);
    shards_.push_back(std::move(sh));
  }
}

SolverFleet::~SolverFleet() = default;

const SolverService& SolverFleet::shard(int i) const {
  return *shards_[static_cast<std::size_t>(i)]->svc;
}

std::size_t SolverFleet::shard_queue_depth(int i) const {
  return shards_[static_cast<std::size_t>(i)]->queued;
}

ServiceStats SolverFleet::service_totals() const {
  ServiceStats t;
  for (const auto& sh : shards_) {
    const ServiceStats& s = sh->svc->stats();
    t.analyses += s.analyses;
    t.refactorizations += s.refactorizations;
    t.cache_hits += s.cache_hits;
    t.evictions += s.evictions;
    t.refactor_failures += s.refactor_failures;
    t.solve_requests += s.solve_requests;
    t.rhs_columns += s.rhs_columns;
    t.analysis_seconds += s.analysis_seconds;
    t.analysis_bytes += s.analysis_bytes;
    t.analysis_messages += s.analysis_messages;
  }
  return t;
}

std::uint64_t SolverFleet::fingerprint(const CsrMatrix& A) const {
  return opt_.service.fingerprint_fn ? opt_.service.fingerprint_fn(A)
                                     : pattern_fingerprint(A);
}

int SolverFleet::hash_home(std::uint64_t fp) const {
  return static_cast<int>(mix64(fp) %
                          static_cast<std::uint64_t>(shards_.size()));
}

void SolverFleet::dispatch(Shard& shard, Batch&& batch, double start) {
  const int shard_idx = static_cast<int>(
      std::find_if(shards_.begin(), shards_.end(),
                   [&](const auto& s) { return s.get() == &shard; }) -
      shards_.begin());
  ++stats_.batches;
  double t = start;
  bool warm = false, refactored = false, failed = false;

  if (shard.has_last && shard.last_fp == batch.fp &&
      shard.last_ver == batch.ver && shard.svc->activate(batch.fp)) {
    // The shard's resident factors already ARE this operator snapshot:
    // serve the batch with zero factor work.
    warm = true;
    ++stats_.activations;
  } else {
    try {
      const FactorReport fr = shard.svc->factor(*batch.A);
      warm = fr.cache_hit;
      refactored = true;
      t += fr.factor_time;
      shard.has_last = true;
      shard.last_fp = batch.fp;
      shard.last_ver = batch.ver;
    } catch (const Error&) {
      failed = true;
      shard.has_last = false;
    }
  }

  const double factor_share =
      (t - start) / static_cast<double>(batch.members.size());
  if (failed) {
    for (const Member& m : batch.members) {
      FleetResponse r;
      r.id = m.id;
      r.tenant = m.rq.tenant;
      r.status = RequestStatus::Failed;
      r.shard = shard_idx;
      r.coalesced = m.coalesced;
      r.redirected = m.redirected;
      r.refactored = true;
      r.arrival = m.arrival;
      r.start = start;
      r.completion = t;
      done_.push_back(r);
      ++stats_.failed;
      TenantStats& ts = tenants_[m.rq.tenant];
      ++ts.failed;
      ts.sim_seconds += factor_share;
    }
    shard.busy_until = t;
    return;
  }

  std::vector<SolveRequest> reqs;
  reqs.reserve(batch.members.size());
  for (const Member& m : batch.members)
    reqs.push_back({m.rq.b, m.rq.x, m.rq.nrhs});
  const std::vector<SolveReport> reps = shard.svc->solve_stream(reqs);

  for (std::size_t i = 0; i < batch.members.size(); ++i) {
    const Member& m = batch.members[i];
    t += reps[i].solve_time;
    FleetResponse r;
    r.id = m.id;
    r.tenant = m.rq.tenant;
    r.status = RequestStatus::Done;
    r.shard = shard_idx;
    r.coalesced = m.coalesced;
    r.redirected = m.redirected;
    r.warm = warm;
    r.refactored = refactored;
    r.arrival = m.arrival;
    r.start = start;
    r.completion = t;
    r.solve = reps[i];
    done_.push_back(r);
    ++stats_.completed;
    TenantStats& ts = tenants_[m.rq.tenant];
    ts.rhs_columns += m.rq.nrhs;
    ts.sim_seconds += factor_share + reps[i].solve_time;
  }
  shard.busy_until = t;
}

void SolverFleet::advance(Shard& shard, double until) {
  while (!shard.queue.empty()) {
    Batch& front = shard.queue.front();
    const double start = std::max(shard.busy_until, front.window_close);
    if (start > until) break;
    Batch batch = std::move(front);
    shard.queue.pop_front();
    shard.queued -= batch.members.size();
    dispatch(shard, std::move(batch), start);
  }
}

void SolverFleet::shed(const FleetRequest& rq, std::uint64_t id,
                       double arrival) {
  FleetResponse r;
  r.id = id;
  r.tenant = rq.tenant;
  r.status = RequestStatus::Shed;
  r.arrival = arrival;
  r.start = arrival;
  r.completion = arrival;
  done_.push_back(r);
  ++stats_.shed;
  ++tenants_[rq.tenant].shed;
}

std::uint64_t SolverFleet::submit(const FleetRequest& request,
                                  double arrival) {
  SLU3D_CHECK(request.A != nullptr, "request carries no operator");
  SLU3D_CHECK(arrival >= clock_, "arrivals must be monotone in time");
  clock_ = arrival;
  for (auto& sh : shards_) advance(*sh, clock_);

  const std::uint64_t id = next_id_++;
  ++stats_.submitted;
  TenantStats& ts = tenants_[request.tenant];
  ++ts.requests;

  const std::uint64_t fp = fingerprint(*request.A);

  // 1. Coalesce: an open batch for this exact operator snapshot anywhere
  //    in the fleet absorbs the request (one solve_stream run serves all
  //    members; results stay bitwise identical to independent solves).
  for (auto& sh : shards_) {
    if (sh->queued >= opt_.queue_depth) continue;
    for (Batch& b : sh->queue) {
      if (b.fp == fp && b.ver == request.values_version &&
          arrival <= b.window_close) {
        b.members.push_back({id, arrival, true, false, request});
        ++sh->queued;
        ++stats_.coalesced;
        return id;
      }
    }
  }

  // 2. Route a new batch.
  int target;
  switch (opt_.routing) {
    case RoutingPolicy::RoundRobin:
      target = static_cast<int>(rr_next_++ %
                                static_cast<std::uint64_t>(shards_.size()));
      break;
    case RoutingPolicy::Hash:
      target = hash_home(fp);
      break;
    case RoutingPolicy::Affinity:
    default: {
      target = -1;
      for (std::size_t i = 0; i < shards_.size(); ++i) {
        if (shards_[i]->svc->has_pattern(fp)) {
          // Prefer the least-loaded holder if the pattern is replicated.
          if (target < 0 ||
              shards_[i]->queued <
                  shards_[static_cast<std::size_t>(target)]->queued)
            target = static_cast<int>(i);
        }
      }
      if (target < 0) {
        target = hash_home(fp);
        break;
      }
      // Cache-warm migration: the affinity shard is drowning while another
      // sits cold — move the pattern's symbolic state (never the matrix or
      // factors) to the coldest shard and let the request follow it.
      if (opt_.migration_threshold > 0 && shards_.size() > 1) {
        Shard& holder = *shards_[static_cast<std::size_t>(target)];
        int coldest = 0;
        for (std::size_t i = 1; i < shards_.size(); ++i)
          if (shards_[i]->queued <
              shards_[static_cast<std::size_t>(coldest)]->queued)
            coldest = static_cast<int>(i);
        const bool fp_queued_on_holder = std::any_of(
            holder.queue.begin(), holder.queue.end(),
            [&](const Batch& b) { return b.fp == fp; });
        const double ratio =
            static_cast<double>(holder.queued + 1) /
            static_cast<double>(
                shards_[static_cast<std::size_t>(coldest)]->queued + 1);
        if (coldest != target && !fp_queued_on_holder &&
            ratio >= opt_.migration_threshold) {
          if (auto sym = holder.svc->extract_pattern(fp)) {
            stats_.migrated_bytes += sym->payload_bytes();
            stats_.migration_bulk_bytes +=
                bulk_migration_bytes(*request.A, *sym);
            shards_[static_cast<std::size_t>(coldest)]->svc->insert_pattern(
                std::move(*sym));
            ++stats_.migrations;
            if (holder.has_last && holder.last_fp == fp)
              holder.has_last = false;
            target = coldest;
          }
        }
      }
      break;
    }
  }

  // 3. Admission control: bounded queues with explicit backpressure.
  bool redirected = false;
  if (shards_[static_cast<std::size_t>(target)]->queued >= opt_.queue_depth) {
    if (opt_.redirect_on_full) {
      int alt = 0;
      for (std::size_t i = 1; i < shards_.size(); ++i)
        if (shards_[i]->queued <
            shards_[static_cast<std::size_t>(alt)]->queued)
          alt = static_cast<int>(i);
      if (shards_[static_cast<std::size_t>(alt)]->queued >=
          opt_.queue_depth) {
        shed(request, id, arrival);
        return id;
      }
      redirected = alt != target;
      if (redirected) ++stats_.redirected;
      target = alt;
    } else {
      shed(request, id, arrival);
      return id;
    }
  }

  // 4. Open a new batch; it dispatches once its window closes and the
  //    shard frees up.
  Shard& sh = *shards_[static_cast<std::size_t>(target)];
  Batch b;
  b.fp = fp;
  b.ver = request.values_version;
  b.A = request.A;
  b.window_close = arrival + opt_.coalesce_window;
  b.members.push_back({id, arrival, false, redirected, request});
  sh.queue.push_back(std::move(b));
  ++sh.queued;
  return id;
}

std::vector<FleetResponse> SolverFleet::drain() {
  // The load generator stopped: close every open window at the last
  // arrival and flush all queues.
  for (auto& sh : shards_)
    for (Batch& b : sh->queue)
      b.window_close = std::min(b.window_close, clock_);
  for (auto& sh : shards_)
    advance(*sh, std::numeric_limits<double>::infinity());
  std::sort(done_.begin(), done_.end(),
            [](const FleetResponse& a, const FleetResponse& b) {
              return a.id < b.id;
            });
  return std::exchange(done_, {});
}

}  // namespace slu3d::service
