// Partition of the supernodal elimination tree into the "elimination
// tree-forest" E_f of §III-C: log2(Pz)+1 levels, where level 0 is the
// common-ancestor set replicated on all 2D grids and level k splits the
// remaining forests across halves of the grid range. A greedy heuristic
// balances T(S) + max(T(C1), T(C2)) using per-supernode factorization
// flops as the cost function, exactly as the paper prescribes (Fig. 8).
#pragma once

#include <span>
#include <vector>

#include "symbolic/block_structure.hpp"

namespace slu3d {

enum class PartitionStrategy {
  /// S = the separator-tree split point only (the plain ND mapping of
  /// Fig. 8, left).
  NdSplit,
  /// Greedy growth of S minimizing T(S) + max(T(C1), T(C2)) (Fig. 8,
  /// right) — the paper's heuristic and the default.
  Greedy,
};

class ForestPartition {
 public:
  /// Builds the partition for Pz (a power of two) 2D grids.
  ForestPartition(const BlockStructure& bs, int Pz,
                  PartitionStrategy strategy = PartitionStrategy::Greedy);

  int Pz() const { return Pz_; }
  /// Number of forest levels = log2(Pz) + 1.
  int n_levels() const { return levels_; }

  /// Forest level of supernode s (0 = the fully replicated top set).
  int level_of(int s) const { return level_[static_cast<std::size_t>(s)]; }
  /// The grid that factors supernode s (anchor of its replication group).
  int anchor_of(int s) const { return anchor_[static_cast<std::size_t>(s)]; }
  /// Number of grids holding a copy of s.
  int group_size(int s) const {
    return 1 << (levels_ - 1 - level_of(s));
  }
  /// True if grid pz holds a copy of supernode s.
  bool on_grid(int s, int pz) const {
    return pz >= anchor_of(s) && pz < anchor_of(s) + group_size(s);
  }

  /// Ascending list of supernodes grid pz factors at forest level lvl
  /// (empty unless pz is active at lvl, i.e. a multiple of 2^(l - lvl)).
  std::vector<int> nodes_at(int pz, int lvl) const;

  /// Supernode allocation mask for grid pz (its local trees + every
  /// replicated ancestor), for Dist2dFactors.
  std::vector<bool> mask_for(int pz) const;

  /// Critical-path cost of this partition in flops:
  /// sum over levels of the max anchor-grid cost at that level. This is
  /// the objective T(S) + max(T(C1), T(C2)) applied recursively (Fig. 8).
  offset_t critical_path_flops() const;

  /// Cost of the trivial Pz = 1 partition (everything sequential on one
  /// grid) — the comparison baseline for load-balance ablations.
  offset_t total_flops() const;

 private:
  const BlockStructure* bs_;
  int Pz_;
  int levels_;
  std::vector<int> level_;
  std::vector<int> anchor_;
};

}  // namespace slu3d
