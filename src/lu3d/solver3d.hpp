// High-level driver for the complete 3D pipeline — the distributed
// counterpart of SparseLuSolver. One call wires together ordering,
// symbolic analysis, the elimination-forest partition, the simulated
// process grid, Algorithm 1, and the 3D triangular solve, and returns the
// solution together with the full performance report (time decomposition,
// per-plane communication, memory) that the paper's figures are built
// from.
#pragma once

#include <optional>
#include <string>

#include "analysis/dist_analysis.hpp"
#include "lu3d/solve3d.hpp"
#include "numeric/solver.hpp"

namespace slu3d {

struct Solver3dOptions {
  int Px = 2;
  int Py = 2;
  /// Number of 2D grids (power of two). 0 = choose automatically: the
  /// largest power of two <= the §IV communication-optimal value
  /// (Eq. 8 for planar inputs) that divides P and keeps PXY >= 4,
  /// re-splitting Px x Py accordingly.
  int Pz = 1;
  NdOptions nd;
  std::optional<GridGeometry> geometry;  ///< exact geometric ND when set
  PartitionStrategy partition = PartitionStrategy::Greedy;
  Lu3dOptions lu3d;
  /// The network the simulated runs charge against (flat Edison-like by
  /// default; hierarchical platforms add shared-uplink contention).
  sim::Platform platform;
  /// Iterative-refinement sweeps after the distributed solve (each is a
  /// residual + another distributed triangular solve), as SuperLU_DIST's
  /// pdgsrfs pairs with static pivoting. 0 disables.
  int refinement_steps = 1;
  /// Where the analysis (fill-reducing ordering + symbolic factorization)
  /// runs: on the host outside the simulated clock (Host, default),
  /// serially on simulated rank 0 (SequentialSim), or subtree-parallel
  /// across all simulated ranks — the ParMETIS role plus distributed
  /// symbolic (Distributed; see src/analysis/). Ignored when `geometry`
  /// is set.
  AnalysisMode analysis = AnalysisMode::Host;
};

/// Everything the paper measures about one distributed run.
struct Solver3dReport {
  double factor_time = 0;   ///< simulated critical-path seconds
  double solve_time = 0;
  double t_scu = 0;         ///< Schur compute on the critical-path rank
  double t_comm = 0;        ///< non-overlapped comm+sync on that rank
  offset_t w_fact = 0;      ///< max per-rank XY bytes received (factor phase)
  offset_t w_red = 0;       ///< max per-rank Z bytes received (factor phase)
  // Analysis-phase split (nonzero only with an in-sim AnalysisMode):
  // simulated critical-path seconds of ordering + symbolic (included in
  // factor_time), max per-rank bytes received during the phase, and its
  // total messages sent.
  double t_analysis = 0;
  offset_t w_analysis = 0;
  offset_t msg_analysis = 0;
  // Solve-phase communication, reported separately from the factor-phase
  // w_fact / w_red above (covers the triangular solves plus refinement).
  offset_t w_solve_xy = 0;    ///< max per-rank XY bytes received (solve phase)
  offset_t w_solve_z = 0;     ///< max per-rank Z bytes received (solve phase)
  offset_t msg_solve_xy = 0;  ///< total XY messages sent (solve phase)
  offset_t msg_solve_z = 0;   ///< total Z messages sent (solve phase)
  offset_t mem_total = 0;   ///< numeric block bytes across all ranks
  offset_t mem_max = 0;     ///< max per rank
  offset_t flops = 0;       ///< symbolic factorization flop count
  real_t residual = 0;      ///< relative residual of the returned solution
};

/// Factors A on a Px x Py x Pz simulated grid and solves A x = b fully
/// distributed (3D factorization + 3D triangular solve; nothing is
/// gathered except the final solution vector). Returns the report;
/// `x` receives the solution.
Solver3dReport solve_distributed_3d(const CsrMatrix& A,
                                    std::span<const real_t> b,
                                    std::span<real_t> x,
                                    const Solver3dOptions& options);

}  // namespace slu3d
