// Algorithm 1: the 3D sparse LU factorization. Each 2D grid factors its
// local elimination forests level by level (via the dSparseLU2D primitive,
// factorize_2d), accumulating Schur-complement updates into its replicated
// copies of the common-ancestor blocks; after each level, copies are
// pairwise reduced along the z-axis (Ancestor-Reduction) onto the
// surviving grid.
#pragma once

#include <optional>

#include "lu2d/factor2d.hpp"
#include "lu3d/forest_partition.hpp"
#include "pipeline/options.hpp"

namespace slu3d {

/// 3D driver options: the shared z-reduction knobs (async overlap,
/// chunk_snodes, Dense/Sparse packing — see pipeline::ZRedOptions) plus
/// the 2D panel-pipeline options applied at every forest level.
struct Lu3dOptions : pipeline::ZRedOptions {
  Lu2dOptions lu2d;
};

/// Creates the per-rank factor storage for the 3D layout: grid pz
/// allocates only its local trees plus the replicated ancestors
/// (ForestPartition::mask_for), fills it with the permuted matrix, and
/// zeroes replicated copies on non-anchor grids so that the z-axis
/// reduction sums to A + all updates ("initialize A(S) with zeros",
/// §III-A).
Dist2dFactors make_3d_factors(const BlockStructure& bs,
                              sim::ProcessGrid3D& grid,
                              const ForestPartition& part,
                              const CsrMatrix& Ap);

/// Numeric *refactorization* reset: reuses the existing allocation of a
/// previously analyzed layout, refilling it with a new matrix of the same
/// sparsity pattern (zero everything, scatter Ap, re-zero the replicated
/// non-anchor ancestor copies). After this, factorize_3d may run again
/// with no new ordering or symbolic analysis.
void refill_3d_factors(Dist2dFactors& F, sim::ProcessGrid3D& grid,
                       const ForestPartition& part, const CsrMatrix& Ap);

/// Runs Algorithm 1. Collective over the whole 3D grid. On return, the
/// factored blocks of each supernode live on its anchor grid.
void factorize_3d(Dist2dFactors& F, sim::ProcessGrid3D& grid,
                  const ForestPartition& part, const Lu3dOptions& options = {});

/// Gathers the factored supernodal matrix onto world rank 0 (pz=0, px=0,
/// py=0), taking each supernode from its anchor grid. Collective over
/// `world`; returns a value only on world rank 0.
std::optional<SupernodalMatrix> gather_3d_to_root(const Dist2dFactors& F,
                                                  sim::Comm& world,
                                                  sim::ProcessGrid3D& grid,
                                                  const ForestPartition& part);

}  // namespace slu3d
