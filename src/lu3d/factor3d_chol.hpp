// Algorithm 1 applied to sparse Cholesky — the paper's §VII conjecture
// ("these principles could be applied to ... Cholesky") realized: the same
// elimination-forest partition, per-level 2D factorization (the symmetric
// driver), and pairwise z-axis ancestor reduction, on lower-triangular
// storage with half the replicated volume of the LU variant.
#pragma once

#include <optional>

#include "lu2d/dist_chol.hpp"
#include "lu3d/forest_partition.hpp"
#include "pipeline/options.hpp"
#include "simmpi/process_grid.hpp"

namespace slu3d {

/// Builds the masked symmetric factor storage for grid pz (local trees +
/// replicated ancestors), fills it with the lower triangle of Ap, and
/// zeroes non-anchor replicas.
DistCholFactors make_3d_chol_factors(const BlockStructure& bs,
                                     sim::ProcessGrid3D& grid,
                                     const ForestPartition& part,
                                     const CsrMatrix& Ap);

/// Same shape as Lu3dOptions: the shared z-reduction knobs (see
/// pipeline::ZRedOptions) plus the per-level 2D options.
struct Chol3dOptions : pipeline::ZRedOptions {
  Chol2dOptions chol2d;
};

/// Runs Algorithm 1 with the Cholesky 2D primitive. Collective over the
/// 3D grid; factored blocks end on their anchor grids.
void factorize_3d_cholesky(DistCholFactors& F, sim::ProcessGrid3D& grid,
                           const ForestPartition& part,
                           const Chol3dOptions& options = {});

/// Gathers the factored L onto world rank 0 as sequential CholeskyFactors.
std::optional<CholeskyFactors> gather_3d_cholesky(const DistCholFactors& F,
                                                  sim::Comm& world,
                                                  sim::ProcessGrid3D& grid,
                                                  const ForestPartition& part);

}  // namespace slu3d
