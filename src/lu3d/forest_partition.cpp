#include "lu3d/forest_partition.hpp"

#include <algorithm>
#include <functional>

#include "support/check.hpp"

namespace slu3d {

namespace {

bool is_pow2(int x) { return x > 0 && (x & (x - 1)) == 0; }

int log2i(int x) {
  int l = 0;
  while ((1 << l) < x) ++l;
  return l;
}

}  // namespace

ForestPartition::ForestPartition(const BlockStructure& bs, int Pz,
                                 PartitionStrategy strategy)
    : bs_(&bs), Pz_(Pz) {
  SLU3D_CHECK(is_pow2(Pz), "Pz must be a power of two");
  levels_ = log2i(Pz) + 1;
  const int nsn = bs.n_snodes();
  level_.assign(static_cast<std::size_t>(nsn), levels_ - 1);
  anchor_.assign(static_cast<std::size_t>(nsn), 0);

  // Subtree cost (flops) via one ascending pass: children precede parents.
  std::vector<offset_t> subtree(static_cast<std::size_t>(nsn), 0);
  for (int s = 0; s < nsn; ++s) {
    subtree[static_cast<std::size_t>(s)] += bs.snode_flops(s);
    const int p = bs.nd_parent(s);
    if (p >= 0) subtree[static_cast<std::size_t>(p)] += subtree[static_cast<std::size_t>(s)];
  }

  // LPT split of a forest into two groups; returns max group cost.
  auto lpt_split = [&](std::vector<int> roots, std::vector<int>* g1,
                       std::vector<int>* g2) -> offset_t {
    std::sort(roots.begin(), roots.end(), [&](int a, int b) {
      return subtree[static_cast<std::size_t>(a)] > subtree[static_cast<std::size_t>(b)];
    });
    offset_t c1 = 0, c2 = 0;
    for (int r : roots) {
      if (c1 <= c2) {
        c1 += subtree[static_cast<std::size_t>(r)];
        if (g1) g1->push_back(r);
      } else {
        c2 += subtree[static_cast<std::size_t>(r)];
        if (g2) g2->push_back(r);
      }
    }
    return std::max(c1, c2);
  };

  // Greedy §III-C: grow the common-ancestor set S from the forest roots,
  // always expanding the heaviest frontier subtree, while the objective
  // T(S) + max(T(C1), T(C2)) keeps improving.
  auto greedy_split = [&](const std::vector<int>& roots, std::vector<int>* S,
                          std::vector<int>* c1, std::vector<int>* c2) {
    std::vector<int> frontier = roots;
    std::vector<int> sset;
    offset_t s_cost = 0;
    if (strategy == PartitionStrategy::NdSplit) {
      // Plain nested-dissection mapping: move exactly one root (the
      // heaviest) into S and split its children, with no further search.
      if (!frontier.empty()) {
        auto it0 = std::max_element(frontier.begin(), frontier.end(),
                                    [&](int a, int b) {
                                      return subtree[static_cast<std::size_t>(a)] <
                                             subtree[static_cast<std::size_t>(b)];
                                    });
        const int r0 = *it0;
        frontier.erase(it0);
        sset.push_back(r0);
        for (int c : bs.nd_children(r0)) frontier.push_back(c);
      }
      *S = sset;
      lpt_split(frontier, c1, c2);
      return;
    }
    offset_t best = s_cost + lpt_split(frontier, nullptr, nullptr);
    std::vector<int> best_frontier = frontier;
    std::vector<int> best_sset = sset;
    while (!frontier.empty()) {
      // Move the heaviest frontier subtree's root into S.
      auto it = std::max_element(frontier.begin(), frontier.end(),
                                 [&](int a, int b) {
                                   return subtree[static_cast<std::size_t>(a)] <
                                          subtree[static_cast<std::size_t>(b)];
                                 });
      const int r = *it;
      frontier.erase(it);
      sset.push_back(r);
      s_cost += bs.snode_flops(r);
      for (int c : bs.nd_children(r)) frontier.push_back(c);
      const offset_t obj = s_cost + lpt_split(frontier, nullptr, nullptr);
      if (obj < best) {
        best = obj;
        best_frontier = frontier;
        best_sset = sset;
      }
      // Keep exploring the full descent: each step removes one frontier
      // node and adds at most two children, so this terminates after at
      // most n_snodes iterations and always finds the best prefix.
    }
    *S = best_sset;
    lpt_split(best_frontier, c1, c2);
  };

  // Mark a whole subtree with (level, anchor).
  auto mark_subtree = [&](int root, int lvl, int g0) {
    std::vector<int> stack{root};
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      level_[static_cast<std::size_t>(v)] = lvl;
      anchor_[static_cast<std::size_t>(v)] = g0;
      for (int c : bs.nd_children(v)) stack.push_back(c);
    }
  };

  std::function<void(std::vector<int>, int, int, int)> assign =
      [&](std::vector<int> roots, int lvl, int g0, int width) {
        if (width == 1) {
          for (int r : roots) mark_subtree(r, lvl, g0);
          return;
        }
        std::vector<int> S, c1, c2;
        greedy_split(roots, &S, &c1, &c2);
        for (int s : S) {
          level_[static_cast<std::size_t>(s)] = lvl;
          anchor_[static_cast<std::size_t>(s)] = g0;
        }
        assign(std::move(c1), lvl + 1, g0, width / 2);
        assign(std::move(c2), lvl + 1, g0 + width / 2, width / 2);
      };

  std::vector<int> roots;
  for (int s = 0; s < nsn; ++s)
    if (bs.nd_parent(s) < 0) roots.push_back(s);
  SLU3D_CHECK(!roots.empty(), "no elimination tree roots");
  assign(std::move(roots), 0, 0, Pz);
}

std::vector<int> ForestPartition::nodes_at(int pz, int lvl) const {
  std::vector<int> out;
  for (int s = 0; s < bs_->n_snodes(); ++s)
    if (level_of(s) == lvl && anchor_of(s) == pz) out.push_back(s);
  return out;
}

std::vector<bool> ForestPartition::mask_for(int pz) const {
  std::vector<bool> mask(static_cast<std::size_t>(bs_->n_snodes()), false);
  for (int s = 0; s < bs_->n_snodes(); ++s)
    if (on_grid(s, pz)) mask[static_cast<std::size_t>(s)] = true;
  return mask;
}

offset_t ForestPartition::critical_path_flops() const {
  offset_t total = 0;
  for (int lvl = 0; lvl < levels_; ++lvl) {
    offset_t worst = 0;
    const int step = 1 << (levels_ - 1 - lvl);
    for (int g0 = 0; g0 < Pz_; g0 += step) {
      offset_t cost = 0;
      for (int s = 0; s < bs_->n_snodes(); ++s)
        if (level_of(s) == lvl && anchor_of(s) == g0) cost += bs_->snode_flops(s);
      worst = std::max(worst, cost);
    }
    total += worst;
  }
  return total;
}

offset_t ForestPartition::total_flops() const { return bs_->total_flops(); }

}  // namespace slu3d
