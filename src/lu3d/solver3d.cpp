#include "lu3d/solver3d.hpp"

#include "model/cost_model.hpp"
#include "order/parallel_nd.hpp"

#include <mutex>

#include "support/check.hpp"

namespace slu3d {

Solver3dReport solve_distributed_3d(const CsrMatrix& A,
                                    std::span<const real_t> b,
                                    std::span<real_t> x,
                                    const Solver3dOptions& options_in) {
  SLU3D_CHECK(A.n_rows() == A.n_cols(), "needs a square matrix");
  const auto n = static_cast<std::size_t>(A.n_rows());
  SLU3D_CHECK(b.size() == n && x.size() == n, "rhs size mismatch");

  Solver3dOptions options = options_in;
  if (options.Pz == 0) {
    // Model-driven choice: Pz* = log2(n)/2 (Eq. 8), rounded down to a
    // power of two that divides P and leaves a plane of at least 4 ranks.
    const int P = options.Px * options.Py;  // caller gives total as Px*Py
    const double pz_star = model::planar_optimal_pz(static_cast<double>(n));
    int pz = 1;
    while (2 * pz <= pz_star && P % (2 * pz) == 0 && P / (2 * pz) >= 4)
      pz *= 2;
    options.Pz = pz;
    const int pxy = P / pz;
    int px = 1;
    for (int d = 1; d * d <= pxy; ++d)
      if (pxy % d == 0) px = d;
    options.Px = px;
    options.Py = pxy / px;
  }

  // Analysis phase. Normally done once on the host (the symbolic data is
  // replicated, as in SuperLU_DIST); with parallel_ordering the ordering
  // itself runs inside the simulated machine instead (see the rank body).
  const bool in_sim_ordering =
      options.parallel_ordering && !options.geometry.has_value();
  std::unique_ptr<SeparatorTree> tree;
  std::unique_ptr<BlockStructure> bs_host;
  std::unique_ptr<CsrMatrix> ap_host;
  std::unique_ptr<ForestPartition> part_host;
  std::vector<index_t> pinv;
  std::vector<real_t> pb(n);
  offset_t flops_out = 0;
  if (!in_sim_ordering) {
    if (options.geometry.has_value()) {
      SLU3D_CHECK(options.geometry->n() == A.n_rows(), "geometry mismatch");
      tree = std::make_unique<SeparatorTree>(
          geometric_nd(*options.geometry, options.nd));
    } else {
      tree = std::make_unique<SeparatorTree>(nested_dissection(A, options.nd));
    }
    bs_host = std::make_unique<BlockStructure>(A, *tree);
    ap_host = std::make_unique<CsrMatrix>(A.permuted_symmetric(tree->perm()));
    part_host = std::make_unique<ForestPartition>(*bs_host, options.Pz,
                                                  options.partition);
    flops_out = bs_host->total_flops();
    pinv = invert_permutation(tree->perm());
    for (std::size_t i = 0; i < n; ++i)
      pb[static_cast<std::size_t>(pinv[i])] = b[i];
  }

  const int P = options.Px * options.Py * options.Pz;
  Solver3dReport report;
  std::vector<offset_t> mem(static_cast<std::size_t>(P), 0);
  // Per-rank statistics snapshotted right after the factorization, so the
  // reported W_fact / W_red / T decomposition cover the factor phase only
  // (as in the paper's figures), not the solve.
  std::vector<sim::RankStats> factor_stats(static_cast<std::size_t>(P));
  std::mutex mu;

  const sim::RunResult res =
      sim::run_ranks(P, options.machine, [&](sim::Comm& world) {
        // Per-rank analysis when ordering runs inside the machine; every
        // rank derives identical replicated symbolic data.
        std::unique_ptr<SeparatorTree> tree_l;
        std::unique_ptr<BlockStructure> bs_l;
        std::unique_ptr<CsrMatrix> ap_l;
        std::unique_ptr<ForestPartition> part_l;
        std::vector<real_t> pb_l;
        if (in_sim_ordering) {
          tree_l = std::make_unique<SeparatorTree>(
              parallel_nested_dissection(A, world, options.nd));
          bs_l = std::make_unique<BlockStructure>(A, *tree_l);
          ap_l = std::make_unique<CsrMatrix>(
              A.permuted_symmetric(tree_l->perm()));
          part_l = std::make_unique<ForestPartition>(*bs_l, options.Pz,
                                                     options.partition);
          const auto pinv_l = invert_permutation(tree_l->perm());
          pb_l.resize(n);
          for (std::size_t i = 0; i < n; ++i)
            pb_l[static_cast<std::size_t>(pinv_l[i])] = b[i];
          if (world.rank() == 0) {
            const std::lock_guard<std::mutex> lock(mu);
            pinv.assign(pinv_l.begin(), pinv_l.end());
            flops_out = bs_l->total_flops();
          }
        }
        const BlockStructure& bs = in_sim_ordering ? *bs_l : *bs_host;
        const CsrMatrix& Ap = in_sim_ordering ? *ap_l : *ap_host;
        const ForestPartition& part = in_sim_ordering ? *part_l : *part_host;
        const std::vector<real_t>& pbr = in_sim_ordering ? pb_l : pb;

        auto grid = sim::ProcessGrid3D::create(world, options.Px, options.Py,
                                               options.Pz);
        Dist2dFactors F = make_3d_factors(bs, grid, part, Ap);
        mem[static_cast<std::size_t>(world.rank())] = F.allocated_bytes();
        factorize_3d(F, grid, part, options.lu3d);
        factor_stats[static_cast<std::size_t>(world.rank())] = world.stats();

        std::vector<real_t> xr(pbr);
        Solve3dOptions sopt;
        solve_3d(F, world, grid, part, xr, sopt);

        // Distributed iterative refinement: every rank holds the full
        // permuted solution after solve_3d, so each computes the residual
        // of the permuted system and re-solves for the correction.
        for (int it = 0; it < options.refinement_steps; ++it) {
          std::vector<real_t> r(n), dx(n);
          Ap.spmv(xr, r);
          for (std::size_t i = 0; i < n; ++i) r[i] = pbr[i] - r[i];
          dx = r;
          sopt.tag_base += 4 * bs.n_snodes() + 8;  // fresh tag range
          solve_3d(F, world, grid, part, dx, sopt);
          for (std::size_t i = 0; i < n; ++i) xr[i] += dx[i];
        }
        if (world.rank() == 0) {
          const std::lock_guard<std::mutex> lock(mu);
          for (std::size_t i = 0; i < n; ++i)
            x[i] = xr[static_cast<std::size_t>(pinv[i])];
        }
      });

  // Factor-phase time decomposition from the critical-path rank.
  const sim::RankStats* crit = &factor_stats.front();
  for (const auto& r : factor_stats) {
    report.factor_time = std::max(report.factor_time, r.clock);
    if (r.clock > crit->clock) crit = &r;
    report.w_fact = std::max(
        report.w_fact,
        r.bytes_received[static_cast<std::size_t>(sim::CommPlane::XY)]);
    report.w_red = std::max(
        report.w_red,
        r.bytes_received[static_cast<std::size_t>(sim::CommPlane::Z)]);
  }
  report.solve_time = res.max_clock() - report.factor_time;
  report.t_scu =
      crit->compute_seconds[static_cast<int>(sim::ComputeKind::SchurUpdate)];
  report.t_comm = crit->comm_seconds();
  for (offset_t m : mem) {
    report.mem_total += m;
    report.mem_max = std::max(report.mem_max, m);
  }
  report.flops = flops_out;
  report.residual = relative_residual(A, x, b);
  return report;
}

}  // namespace slu3d
