// 3D Cholesky driver: setup of the masked replicated layouts plus the
// symmetric instantiation of the shared z-reduction engine
// (pipeline/zreduce.hpp); the per-level 2D primitive is
// factorize_2d_cholesky and the wire format is the CholFactorsAccess
// trait's (triangle-packed diag, L ascending).
#include "lu3d/factor3d_chol.hpp"

#include <algorithm>

#include "pipeline/factors_access.hpp"
#include "pipeline/zreduce.hpp"
#include "support/check.hpp"

namespace slu3d {

namespace {

using sim::CommPlane;

constexpr int kReduceTagBase = (1 << 23);
constexpr int kGatherTag = (1 << 23) + 64;

}  // namespace

DistCholFactors make_3d_chol_factors(const BlockStructure& bs,
                                     sim::ProcessGrid3D& grid,
                                     const ForestPartition& part,
                                     const CsrMatrix& Ap) {
  auto& plane = grid.plane();
  DistCholFactors F(bs, plane.Px(), plane.Py(), plane.px(), plane.py(),
                    part.mask_for(grid.pz()));
  F.fill_from(Ap);
  pipeline::zero_nonanchor_replicas<pipeline::CholFactorsAccess>(F, part,
                                                                 grid.pz());
  return F;
}

void factorize_3d_cholesky(DistCholFactors& F, sim::ProcessGrid3D& grid,
                           const ForestPartition& part,
                           const Chol3dOptions& options) {
  pipeline::run_3d_levels<pipeline::CholFactorsAccess>(
      F, grid, part, options, kReduceTagBase,
      [&](sim::ProcessGrid2D& plane, std::span<const int> nodes) {
        factorize_2d_cholesky(F, plane, nodes, options.chol2d);
      });
}

std::optional<CholeskyFactors> gather_3d_cholesky(const DistCholFactors& F,
                                                  sim::Comm& world,
                                                  sim::ProcessGrid3D& grid,
                                                  const ForestPartition& part) {
  const BlockStructure& bs = F.structure();
  auto& plane = grid.plane();
  const int Px = plane.Px(), Py = plane.Py();

  std::vector<real_t> mine;
  for (int s = 0; s < bs.n_snodes(); ++s)
    if (part.anchor_of(s) == grid.pz())
      pipeline::pack_snode<pipeline::CholFactorsAccess>(F, s, mine);

  if (world.rank() != 0) {
    world.send(0, kGatherTag, mine, CommPlane::Z);
    return std::nullopt;
  }

  CholeskyFactors full(bs);
  auto unpack_rank = [&](int spz, int spx, int spy, std::span<const real_t> buf) {
    std::size_t pos = 0;
    for (int s = 0; s < bs.n_snodes(); ++s) {
      if (part.anchor_of(s) != spz) continue;
      const auto ns = static_cast<std::size_t>(bs.snode_size(s));
      if (ns == 0) continue;
      if (s % Px == spx && s % Py == spy) {
        auto d = full.diag(s);
        SLU3D_CHECK(pos + ns * (ns + 1) / 2 <= buf.size(),
                    "gather underflow (diag)");
        for (std::size_t c2 = 0; c2 < ns; ++c2)
          for (std::size_t r = c2; r < ns; ++r)
            d[r + c2 * ns] = buf[pos++];
      }
      const auto mtot = full.panel_rows(s).size();
      for (const auto& blk : bs.lpanel(s)) {
        if (!(blk.snode % Px == spx && s % Py == spy)) continue;
        const auto m = static_cast<std::size_t>(blk.n_rows());
        const auto [off, cnt] = full.block_range(s, blk.snode);
        SLU3D_CHECK(off >= 0 && static_cast<std::size_t>(cnt) == m, "L range");
        SLU3D_CHECK(pos + m * ns <= buf.size(), "gather underflow (L)");
        auto lp = full.lpanel(s);
        for (std::size_t c = 0; c < ns; ++c)
          for (std::size_t r = 0; r < m; ++r)
            lp[static_cast<std::size_t>(off) + r + c * mtot] = buf[pos + r + c * m];
        pos += m * ns;
      }
    }
    SLU3D_CHECK(pos == buf.size(), "gather stream not fully consumed");
  };

  unpack_rank(grid.pz(), plane.px(), plane.py(), mine);
  const int pxy = Px * Py;
  for (int r = 1; r < world.size(); ++r) {
    const auto buf = world.recv(r, kGatherTag, CommPlane::Z);
    unpack_rank(r / pxy, (r % pxy) / Py, (r % pxy) % Py, buf);
  }
  return full;
}

}  // namespace slu3d
