#include "lu3d/factor3d_chol.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace slu3d {

namespace {

using sim::CommPlane;

constexpr int kReduceTagBase = (1 << 23);
constexpr int kGatherTag = (1 << 23) + 64;

void pack_snode(const DistCholFactors& F, int s, std::vector<real_t>& out) {
  if (F.has_diag(s)) {
    // Only the lower triangle is meaningful; pack it column-major.
    const auto d = F.diag(s);
    const auto ns = static_cast<index_t>(F.structure().snode_size(s));
    for (index_t c = 0; c < ns; ++c)
      for (index_t r = c; r < ns; ++r)
        out.push_back(d[static_cast<std::size_t>(r + c * ns)]);
  }
  for (const OwnedBlock& b : F.lblocks(s))
    out.insert(out.end(), b.data.begin(), b.data.end());
}

/// Packed length of supernode s on this rank (triangle-packed diagonal).
/// Symmetric across z-adjacent grids sharing (px, py) — see factor3d.cpp.
std::size_t packed_elems(const DistCholFactors& F, int s) {
  std::size_t n = 0;
  if (F.has_diag(s)) {
    const auto ns = static_cast<std::size_t>(F.structure().snode_size(s));
    n += ns * (ns + 1) / 2;
  }
  for (const OwnedBlock& b : F.lblocks(s)) n += b.data.size();
  return n;
}

std::size_t add_snode(DistCholFactors& F, int s, std::span<const real_t> buf,
                      std::size_t pos) {
  if (F.has_diag(s)) {
    auto d = F.diag(s);
    const auto ns = static_cast<index_t>(F.structure().snode_size(s));
    SLU3D_CHECK(pos + static_cast<std::size_t>(ns) * (static_cast<std::size_t>(ns) + 1) / 2 <=
                    buf.size(),
                "reduction stream underflow");
    for (index_t c = 0; c < ns; ++c)
      for (index_t r = c; r < ns; ++r)
        d[static_cast<std::size_t>(r + c * ns)] += buf[pos++];
  }
  for (OwnedBlock& b : F.lblocks(s)) {
    SLU3D_CHECK(pos + b.data.size() <= buf.size(), "reduction stream underflow");
    for (std::size_t i = 0; i < b.data.size(); ++i) b.data[i] += buf[pos + i];
    pos += b.data.size();
  }
  return pos;
}

}  // namespace

DistCholFactors make_3d_chol_factors(const BlockStructure& bs,
                                     sim::ProcessGrid3D& grid,
                                     const ForestPartition& part,
                                     const CsrMatrix& Ap) {
  auto& plane = grid.plane();
  DistCholFactors F(bs, plane.Px(), plane.Py(), plane.px(), plane.py(),
                    part.mask_for(grid.pz()));
  F.fill_from(Ap);
  for (int s = 0; s < bs.n_snodes(); ++s) {
    if (!part.on_grid(s, grid.pz()) || part.anchor_of(s) == grid.pz()) continue;
    if (F.has_diag(s)) std::fill(F.diag(s).begin(), F.diag(s).end(), 0.0);
    for (OwnedBlock& b : F.lblocks(s)) std::fill(b.data.begin(), b.data.end(), 0.0);
  }
  return F;
}

void factorize_3d_cholesky(DistCholFactors& F, sim::ProcessGrid3D& grid,
                           const ForestPartition& part,
                           const Chol3dOptions& options) {
  const BlockStructure& bs = F.structure();
  const int l = part.n_levels() - 1;
  const int pz = grid.pz();

  // Outstanding per-ancestor reduction chunks (async mode); drained just
  // before the level that factors them — see factorize_3d.
  struct Pending {
    sim::Request req;
    int s;
  };
  std::vector<Pending> outstanding;
  auto drain = [&](auto&& keep_pending) {
    std::size_t kept = 0;
    for (Pending& p : outstanding) {
      if (keep_pending(p.s)) {
        outstanding[kept++] = std::move(p);
        continue;
      }
      const std::vector<real_t> buf = p.req.take();
      const std::size_t pos = add_snode(F, p.s, buf, 0);
      SLU3D_CHECK(pos == buf.size(), "reduction chunk not fully consumed");
    }
    outstanding.resize(kept);
  };

  for (int lvl = l; lvl >= 0; --lvl) {
    const int step = 1 << (l - lvl);
    if (pz % step != 0) continue;

    if (options.async)
      drain([&](int s) { return part.level_of(s) < lvl; });

    const std::vector<int> nodes = part.nodes_at(pz, lvl);
    factorize_2d_cholesky(F, grid.plane(), nodes, options.chol2d);

    if (lvl == 0) break;

    const int k = pz / step;
    std::vector<int> ancestors;
    for (int s = 0; s < bs.n_snodes(); ++s)
      if (part.level_of(s) < lvl && part.on_grid(s, pz)) ancestors.push_back(s);

    if (k % 2 == 1) {
      if (options.async) {
        drain([](int) { return false; });
        std::vector<real_t> buf;
        for (int s : ancestors) {
          buf.clear();
          pack_snode(F, s, buf);
          if (buf.empty()) continue;
          grid.zline().isend(pz - step, kReduceTagBase + lvl, buf,
                             CommPlane::Z);
        }
      } else {
        std::vector<real_t> buf;
        for (int s : ancestors) pack_snode(F, s, buf);
        grid.zline().send(pz - step, kReduceTagBase + lvl, buf, CommPlane::Z);
      }
    } else {
      if (options.async) {
        for (int s : ancestors) {
          if (packed_elems(F, s) == 0) continue;
          outstanding.push_back(
              {grid.zline().irecv(pz + step, kReduceTagBase + lvl,
                                  CommPlane::Z),
               s});
        }
      } else {
        const auto buf =
            grid.zline().recv(pz + step, kReduceTagBase + lvl, CommPlane::Z);
        std::size_t pos = 0;
        for (int s : ancestors) pos = add_snode(F, s, buf, pos);
        SLU3D_CHECK(pos == buf.size(), "reduction stream not fully consumed");
      }
    }
  }
  SLU3D_CHECK(outstanding.empty(), "undrained reduction chunks");
}

std::optional<CholeskyFactors> gather_3d_cholesky(const DistCholFactors& F,
                                                  sim::Comm& world,
                                                  sim::ProcessGrid3D& grid,
                                                  const ForestPartition& part) {
  const BlockStructure& bs = F.structure();
  auto& plane = grid.plane();
  const int Px = plane.Px(), Py = plane.Py();

  std::vector<real_t> mine;
  for (int s = 0; s < bs.n_snodes(); ++s)
    if (part.anchor_of(s) == grid.pz()) pack_snode(F, s, mine);

  if (world.rank() != 0) {
    world.send(0, kGatherTag, mine, CommPlane::Z);
    return std::nullopt;
  }

  CholeskyFactors full(bs);
  auto unpack_rank = [&](int spz, int spx, int spy, std::span<const real_t> buf) {
    std::size_t pos = 0;
    for (int s = 0; s < bs.n_snodes(); ++s) {
      if (part.anchor_of(s) != spz) continue;
      const auto ns = static_cast<std::size_t>(bs.snode_size(s));
      if (ns == 0) continue;
      if (s % Px == spx && s % Py == spy) {
        auto d = full.diag(s);
        SLU3D_CHECK(pos + ns * (ns + 1) / 2 <= buf.size(),
                    "gather underflow (diag)");
        for (std::size_t c2 = 0; c2 < ns; ++c2)
          for (std::size_t r = c2; r < ns; ++r)
            d[r + c2 * ns] = buf[pos++];
      }
      const auto mtot = full.panel_rows(s).size();
      for (const auto& blk : bs.lpanel(s)) {
        if (!(blk.snode % Px == spx && s % Py == spy)) continue;
        const auto m = static_cast<std::size_t>(blk.n_rows());
        const auto [off, cnt] = full.block_range(s, blk.snode);
        SLU3D_CHECK(off >= 0 && static_cast<std::size_t>(cnt) == m, "L range");
        SLU3D_CHECK(pos + m * ns <= buf.size(), "gather underflow (L)");
        auto lp = full.lpanel(s);
        for (std::size_t c = 0; c < ns; ++c)
          for (std::size_t r = 0; r < m; ++r)
            lp[static_cast<std::size_t>(off) + r + c * mtot] = buf[pos + r + c * m];
        pos += m * ns;
      }
    }
    SLU3D_CHECK(pos == buf.size(), "gather stream not fully consumed");
  };

  unpack_rank(grid.pz(), plane.px(), plane.py(), mine);
  const int pxy = Px * Py;
  for (int r = 1; r < world.size(); ++r) {
    const auto buf = world.recv(r, kGatherTag, CommPlane::Z);
    unpack_rank(r / pxy, (r % pxy) / Py, (r % pxy) % Py, buf);
  }
  return full;
}

}  // namespace slu3d
