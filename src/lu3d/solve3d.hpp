// Distributed triangular solves on the *3D* factor layout produced by
// factorize_3d — no gathering: each supernode's blocks stay on its anchor
// grid. Forward substitution routes partial products across grids
// point-to-point (an L block of supernode s lives on anchor(s), its
// target ancestor's diagonal owner on anchor(a)); backward substitution
// broadcasts each solved slice down its replication group along z and
// then along the plane column, reaching every descendant's U blocks.
//
// The paper factors in 3D but stops short of a 3D solve (that is
// follow-up work); this implements the natural extension.
#pragma once

#include <span>

#include "lu3d/factor3d.hpp"

namespace slu3d {

struct Solve3dOptions {
  /// Base message tag; callers issuing several solves on the same resident
  /// grid must keep bases at least solve3d_tag_span(bs) apart.
  int tag_base = (1 << 24);
  /// Number of right-hand-side columns solved in one sweep. `x` is then an
  /// n x nrhs column-major panel; one set of z-messages and broadcasts
  /// serves the whole batch (message counts are independent of nrhs).
  index_t nrhs = 1;
};

/// Number of distinct message tags one solve_3d call may consume starting
/// at `tag_base`. Queued solves on the same resident grid must advance
/// tag_base by at least this span between calls so tag ranges never
/// collide.
int solve3d_tag_span(const BlockStructure& bs);

/// Solves L U X = B in the permuted index space on the 3D-factored `F`.
/// Collective over `world` (all Px*Py*Pz ranks). Every rank passes the
/// full permuted right-hand side panel in `x` (n x nrhs column-major); on
/// return every rank holds the full solution panel.
void solve_3d(Dist2dFactors& F, sim::Comm& world, sim::ProcessGrid3D& grid,
              const ForestPartition& part, std::span<real_t> x,
              const Solve3dOptions& options = {});

}  // namespace slu3d
