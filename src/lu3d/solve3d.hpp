// Distributed triangular solves on the *3D* factor layout produced by
// factorize_3d — no gathering: each supernode's blocks stay on its anchor
// grid. Forward substitution routes partial products across grids
// point-to-point (an L block of supernode s lives on anchor(s), its
// target ancestor's diagonal owner on anchor(a)); backward substitution
// broadcasts each solved slice down its replication group along z and
// then along the plane column, reaching every descendant's U blocks.
//
// The paper factors in 3D but stops short of a 3D solve (that is
// follow-up work); this implements the natural extension.
#pragma once

#include <span>

#include "lu3d/factor3d.hpp"

namespace slu3d {

struct Solve3dOptions {
  int tag_base = (1 << 24);
};

/// Solves L U x = b in the permuted index space on the 3D-factored `F`.
/// Collective over `world` (all Px*Py*Pz ranks). Every rank passes the
/// full permuted right-hand side in `x`; on return every rank holds the
/// full solution.
void solve_3d(Dist2dFactors& F, sim::Comm& world, sim::ProcessGrid3D& grid,
              const ForestPartition& part, std::span<real_t> x,
              const Solve3dOptions& options = {});

}  // namespace slu3d
