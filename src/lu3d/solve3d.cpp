#include "lu3d/solve3d.hpp"

#include <vector>

#include "numeric/dense_kernels.hpp"
#include "support/check.hpp"

namespace slu3d {

namespace {

using sim::CommPlane;
using sim::ComputeKind;

class Solve3dDriver {
 public:
  Solve3dDriver(Dist2dFactors& F, sim::Comm& world, sim::ProcessGrid3D& grid,
                const ForestPartition& part, const Solve3dOptions& opt)
      : F_(F), world_(world), g_(grid), part_(part), bs_(F.structure()),
        opt_(opt) {
    // Descendant index: for each supernode a, the (c, panel block) pairs
    // whose panel contains a block in a's range (ascending c).
    by_anc_.resize(static_cast<std::size_t>(bs_.n_snodes()));
    for (int c = 0; c < bs_.n_snodes(); ++c) {
      const auto panel = bs_.lpanel(c);
      for (int k = 0; k < static_cast<int>(panel.size()); ++k)
        by_anc_[static_cast<std::size_t>(panel[static_cast<std::size_t>(k)].snode)]
            .push_back({c, k});
    }
    // One z sub-communicator per forest level: the replication group of a
    // level-lvl supernode is a dyadic pz range of size 2^(l - lvl).
    const int l = part.n_levels() - 1;
    for (int lvl = 0; lvl <= l; ++lvl)
      zgroup_.push_back(
          g_.zline().split(g_.pz() >> (l - lvl), g_.pz()));
  }

  void run(std::span<real_t> x) {
    SLU3D_CHECK(x.size() == static_cast<std::size_t>(bs_.n()), "x size");
    forward(x);
    backward(x);
    redistribute(x);
  }

 private:
  int Px() const { return g_.plane().Px(); }
  int Py() const { return g_.plane().Py(); }
  /// World rank of plane position (px, py) on grid pz.
  int world_of(int pz, int px, int py) const {
    return pz * Px() * Py() + px * Py() + py;
  }
  int diag_owner(int s) const {
    return world_of(part_.anchor_of(s), s % Px(), s % Py());
  }
  int ftag(int s) const { return opt_.tag_base + s; }
  int btag(int s) const { return opt_.tag_base + bs_.n_snodes() + s; }
  int gtag() const { return opt_.tag_base + 3 * bs_.n_snodes(); }

  void forward(std::span<real_t> x) {
    std::vector<real_t> ybuf;
    for (int s = 0; s < bs_.n_snodes(); ++s) {
      const index_t ns = bs_.snode_size(s);
      if (ns == 0) continue;
      const index_t f = bs_.first_col(s);
      const bool my_grid = g_.pz() == part_.anchor_of(s);
      const bool in_pcol = my_grid && g_.plane().py() == s % Py();

      if (world_.rank() == diag_owner(s)) {
        for (const auto& [c, blkidx] : by_anc_[static_cast<std::size_t>(s)]) {
          const PanelBlock& blk = bs_.lpanel(c)[static_cast<std::size_t>(blkidx)];
          const int src = world_of(part_.anchor_of(c), s % Px(), c % Py());
          const auto v = world_.recv(src, ftag(c), CommPlane::Z);
          SLU3D_CHECK(v.size() == blk.rows.size(), "contribution size");
          for (std::size_t r = 0; r < v.size(); ++r)
            x[static_cast<std::size_t>(blk.rows[r])] -= v[r];
        }
        dense::trsv_lower_unit(ns, F_.diag(s).data(), ns, x.data() + f);
        world_.add_compute(static_cast<offset_t>(ns) * ns, ComputeKind::Other);
      }

      // y_s to the L-block owners (all live on anchor(s), column s%Py).
      if (in_pcol) {
        ybuf.assign(x.begin() + f, x.begin() + f + ns);
        g_.plane().col().bcast(s % Px(), ftag(s), ybuf, CommPlane::XY);
        std::copy(ybuf.begin(), ybuf.end(), x.begin() + f);

        for (const OwnedBlock& ob : F_.lblocks(s)) {
          const PanelBlock& blk =
              bs_.lpanel(s)[static_cast<std::size_t>(ob.panel_idx)];
          const auto m = static_cast<index_t>(blk.rows.size());
          std::vector<real_t> v(static_cast<std::size_t>(m), 0.0);
          for (index_t c = 0; c < ns; ++c) {
            const real_t yc = ybuf[static_cast<std::size_t>(c)];
            if (yc == 0.0) continue;
            for (index_t r = 0; r < m; ++r)
              v[static_cast<std::size_t>(r)] +=
                  ob.data[static_cast<std::size_t>(r + c * m)] * yc;
          }
          world_.add_compute(2 * static_cast<offset_t>(m) * ns, ComputeKind::Other);
          world_.send(diag_owner(blk.snode), ftag(s), v, CommPlane::Z);
        }
      }
    }
  }

  void backward(std::span<real_t> x) {
    std::vector<real_t> xbuf;
    for (int s = bs_.n_snodes() - 1; s >= 0; --s) {
      const index_t ns = bs_.snode_size(s);
      if (ns == 0) continue;
      const index_t f = bs_.first_col(s);
      const bool in_group = part_.on_grid(s, g_.pz());
      const bool on_zline =
          in_group && g_.plane().px() == s % Px() && g_.plane().py() == s % Py();
      const bool in_pcol = in_group && g_.plane().py() == s % Py();

      if (world_.rank() == diag_owner(s)) {
        // U(s, a) blocks live with supernode s on my own grid.
        for (const PanelBlock& blk : bs_.lpanel(s)) {
          const int src = world_of(part_.anchor_of(s), s % Px(), blk.snode % Py());
          const auto v = world_.recv(src, btag(blk.snode), CommPlane::Z);
          SLU3D_CHECK(v.size() == static_cast<std::size_t>(ns), "contribution size");
          for (index_t r = 0; r < ns; ++r)
            x[static_cast<std::size_t>(f + r)] -= v[static_cast<std::size_t>(r)];
        }
        dense::trsv_upper(ns, F_.diag(s).data(), ns, x.data() + f);
        world_.add_compute(static_cast<offset_t>(ns) * ns, ComputeKind::Other);
      }

      // Propagate x_s down the replication group: along z to each grid's
      // (s%Px, s%Py) rank, then along each plane's process column.
      if (on_zline) {
        xbuf.assign(x.begin() + f, x.begin() + f + ns);
        zgroup_[static_cast<std::size_t>(part_.level_of(s))].bcast(
            0, btag(s), xbuf, CommPlane::Z);
        std::copy(xbuf.begin(), xbuf.end(), x.begin() + f);
      }
      if (in_pcol) {
        xbuf.assign(x.begin() + f, x.begin() + f + ns);
        g_.plane().col().bcast(s % Px(), btag(s), xbuf, CommPlane::XY);
        std::copy(xbuf.begin(), xbuf.end(), x.begin() + f);

        // U(c, s) contributions for descendants c anchored on my grid,
        // descending c to match the receivers' global order.
        const auto& pairs = by_anc_[static_cast<std::size_t>(s)];
        for (auto it = pairs.rbegin(); it != pairs.rend(); ++it) {
          const auto& [c, blkidx] = *it;
          if (part_.anchor_of(c) != g_.pz() || c % Px() != g_.plane().px())
            continue;
          OwnedBlock* ob = F_.find_ublock(c, s);
          SLU3D_CHECK(ob != nullptr, "missing owned U block in 3D solve");
          const PanelBlock& blk = bs_.lpanel(c)[static_cast<std::size_t>(blkidx)];
          const index_t nc = bs_.snode_size(c);
          const auto m = static_cast<index_t>(blk.rows.size());
          std::vector<real_t> v(static_cast<std::size_t>(nc), 0.0);
          for (index_t k = 0; k < m; ++k) {
            const real_t xk =
                x[static_cast<std::size_t>(blk.rows[static_cast<std::size_t>(k)])];
            if (xk == 0.0) continue;
            for (index_t r = 0; r < nc; ++r)
              v[static_cast<std::size_t>(r)] +=
                  ob->data[static_cast<std::size_t>(r + k * nc)] * xk;
          }
          world_.add_compute(2 * static_cast<offset_t>(m) * nc, ComputeKind::Other);
          world_.send(diag_owner(c), btag(s), v, CommPlane::Z);
        }
      }
    }
  }

  void redistribute(std::span<real_t> x) {
    std::vector<real_t> packed;
    for (int s = 0; s < bs_.n_snodes(); ++s)
      if (world_.rank() == diag_owner(s))
        packed.insert(packed.end(), x.begin() + bs_.first_col(s),
                      x.begin() + bs_.first_col(s) + bs_.snode_size(s));
    const std::vector<real_t> all =
        world_.allgatherv(gtag(), packed, CommPlane::Z);
    std::size_t pos = 0;
    for (int r = 0; r < world_.size(); ++r)
      for (int s = 0; s < bs_.n_snodes(); ++s) {
        if (diag_owner(s) != r) continue;
        const auto ns = static_cast<std::size_t>(bs_.snode_size(s));
        SLU3D_CHECK(pos + ns <= all.size(), "gather underflow");
        std::copy_n(all.begin() + static_cast<std::ptrdiff_t>(pos), ns,
                    x.begin() + bs_.first_col(s));
        pos += ns;
      }
    SLU3D_CHECK(pos == all.size(), "gather stream not fully consumed");
  }

  Dist2dFactors& F_;
  sim::Comm& world_;
  sim::ProcessGrid3D& g_;
  const ForestPartition& part_;
  const BlockStructure& bs_;
  Solve3dOptions opt_;
  std::vector<std::vector<std::pair<int, int>>> by_anc_;
  std::vector<sim::Comm> zgroup_;
};

}  // namespace

void solve_3d(Dist2dFactors& F, sim::Comm& world, sim::ProcessGrid3D& grid,
              const ForestPartition& part, std::span<real_t> x,
              const Solve3dOptions& options) {
  Solve3dDriver(F, world, grid, part, options).run(x);
}

}  // namespace slu3d
