#include "lu3d/solve3d.hpp"

#include <vector>

#include "numeric/dense_kernels.hpp"
#include "support/check.hpp"

namespace slu3d {

namespace {

using sim::CommPlane;
using sim::ComputeKind;

/// All solves operate on an n x nrhs column-major panel X (ldx = n), so one
/// forward/backward sweep (one set of z-messages and broadcasts) serves the
/// whole batch: message sizes scale with nrhs but message *counts* do not.
/// Contribution messages carry the *negated* partial product (gemm_minus
/// computes C -= A B into a zeroed buffer), so receivers accumulate with +=.
class Solve3dDriver {
 public:
  Solve3dDriver(Dist2dFactors& F, sim::Comm& world, sim::ProcessGrid3D& grid,
                const ForestPartition& part, const Solve3dOptions& opt)
      : F_(F), world_(world), g_(grid), part_(part), bs_(F.structure()),
        opt_(opt), n_(bs_.n()), nrhs_(opt.nrhs) {
    // Descendant index: for each supernode a, the (c, panel block) pairs
    // whose panel contains a block in a's range (ascending c).
    by_anc_.resize(static_cast<std::size_t>(bs_.n_snodes()));
    for (int c = 0; c < bs_.n_snodes(); ++c) {
      const auto panel = bs_.lpanel(c);
      for (int k = 0; k < static_cast<int>(panel.size()); ++k)
        by_anc_[static_cast<std::size_t>(panel[static_cast<std::size_t>(k)].snode)]
            .push_back({c, k});
    }
    // One z sub-communicator per forest level: the replication group of a
    // level-lvl supernode is a dyadic pz range of size 2^(l - lvl).
    const int l = part.n_levels() - 1;
    for (int lvl = 0; lvl <= l; ++lvl)
      zgroup_.push_back(
          g_.zline().split(g_.pz() >> (l - lvl), g_.pz()));
  }

  void run(std::span<real_t> x) {
    SLU3D_CHECK(nrhs_ >= 1, "nrhs must be positive");
    SLU3D_CHECK(x.size() == static_cast<std::size_t>(n_) *
                                static_cast<std::size_t>(nrhs_),
                "x panel size");
    forward(x);
    backward(x);
    redistribute(x);
  }

 private:
  int Px() const { return g_.plane().Px(); }
  int Py() const { return g_.plane().Py(); }
  /// World rank of plane position (px, py) on grid pz.
  int world_of(int pz, int px, int py) const {
    return pz * Px() * Py() + px * Py() + py;
  }
  int diag_owner(int s) const {
    return world_of(part_.anchor_of(s), s % Px(), s % Py());
  }
  int ftag(int s) const { return opt_.tag_base + s; }
  int btag(int s) const { return opt_.tag_base + bs_.n_snodes() + s; }
  int gtag() const { return opt_.tag_base + 3 * bs_.n_snodes(); }

  void gather_slice(std::span<const real_t> x, index_t f, index_t ns,
                    std::vector<real_t>& buf) const {
    buf.resize(static_cast<std::size_t>(ns) * static_cast<std::size_t>(nrhs_));
    for (index_t j = 0; j < nrhs_; ++j)
      for (index_t r = 0; r < ns; ++r)
        buf[static_cast<std::size_t>(r + j * ns)] =
            x[static_cast<std::size_t>(f + r + j * n_)];
  }
  void scatter_slice(std::span<const real_t> buf, index_t f, index_t ns,
                     std::span<real_t> x) const {
    for (index_t j = 0; j < nrhs_; ++j)
      for (index_t r = 0; r < ns; ++r)
        x[static_cast<std::size_t>(f + r + j * n_)] =
            buf[static_cast<std::size_t>(r + j * ns)];
  }

  void forward(std::span<real_t> x) {
    std::vector<real_t> ybuf, vbuf;
    for (int s = 0; s < bs_.n_snodes(); ++s) {
      const index_t ns = bs_.snode_size(s);
      if (ns == 0) continue;
      const index_t f = bs_.first_col(s);
      const bool my_grid = g_.pz() == part_.anchor_of(s);
      const bool in_pcol = my_grid && g_.plane().py() == s % Py();

      if (world_.rank() == diag_owner(s)) {
        for (const auto& [c, blkidx] : by_anc_[static_cast<std::size_t>(s)]) {
          const PanelBlock& blk = bs_.lpanel(c)[static_cast<std::size_t>(blkidx)];
          const int src = world_of(part_.anchor_of(c), s % Px(), c % Py());
          const auto v = world_.recv(src, ftag(c), CommPlane::Z);
          const auto m = blk.rows.size();
          SLU3D_CHECK(v.size() == m * static_cast<std::size_t>(nrhs_),
                      "contribution size");
          for (index_t j = 0; j < nrhs_; ++j)
            for (std::size_t r = 0; r < m; ++r)
              x[static_cast<std::size_t>(blk.rows[r] + j * n_)] +=
                  v[r + static_cast<std::size_t>(j) * m];
        }
        dense::trsm_left_lower_unit(ns, nrhs_, F_.diag(s).data(), ns,
                                    x.data() + f, n_);
        world_.add_compute(dense::trsm_flops(ns, nrhs_), ComputeKind::Other);
      }

      // y_s to the L-block owners (all live on anchor(s), column s%Py).
      if (in_pcol) {
        gather_slice(x, f, ns, ybuf);
        g_.plane().col().bcast(s % Px(), ftag(s), ybuf, CommPlane::XY);
        scatter_slice(ybuf, f, ns, x);

        for (const OwnedBlock& ob : F_.lblocks(s)) {
          const PanelBlock& blk =
              bs_.lpanel(s)[static_cast<std::size_t>(ob.panel_idx)];
          const auto m = static_cast<index_t>(blk.rows.size());
          vbuf.assign(static_cast<std::size_t>(m) *
                          static_cast<std::size_t>(nrhs_),
                      0.0);
          dense::gemm_minus(m, nrhs_, ns, ob.data.data(), m, ybuf.data(), ns,
                            vbuf.data(), m);
          world_.add_compute(dense::gemm_flops(m, nrhs_, ns),
                             ComputeKind::Other);
          world_.send(diag_owner(blk.snode), ftag(s), vbuf, CommPlane::Z);
        }
      }
    }
  }

  void backward(std::span<real_t> x) {
    std::vector<real_t> xbuf, gbuf, vbuf;
    for (int s = bs_.n_snodes() - 1; s >= 0; --s) {
      const index_t ns = bs_.snode_size(s);
      if (ns == 0) continue;
      const index_t f = bs_.first_col(s);
      const bool in_group = part_.on_grid(s, g_.pz());
      const bool on_zline =
          in_group && g_.plane().px() == s % Px() && g_.plane().py() == s % Py();
      const bool in_pcol = in_group && g_.plane().py() == s % Py();

      if (world_.rank() == diag_owner(s)) {
        // U(s, a) blocks live with supernode s on my own grid.
        for (const PanelBlock& blk : bs_.lpanel(s)) {
          const int src = world_of(part_.anchor_of(s), s % Px(), blk.snode % Py());
          const auto v = world_.recv(src, btag(blk.snode), CommPlane::Z);
          SLU3D_CHECK(v.size() == static_cast<std::size_t>(ns) *
                                      static_cast<std::size_t>(nrhs_),
                      "contribution size");
          for (index_t j = 0; j < nrhs_; ++j)
            for (index_t r = 0; r < ns; ++r)
              x[static_cast<std::size_t>(f + r + j * n_)] +=
                  v[static_cast<std::size_t>(r + j * ns)];
        }
        dense::trsm_left_upper(ns, nrhs_, F_.diag(s).data(), ns, x.data() + f,
                               n_);
        world_.add_compute(dense::trsm_flops(ns, nrhs_), ComputeKind::Other);
      }

      // Propagate x_s down the replication group: along z to each grid's
      // (s%Px, s%Py) rank, then along each plane's process column.
      if (on_zline) {
        gather_slice(x, f, ns, xbuf);
        zgroup_[static_cast<std::size_t>(part_.level_of(s))].bcast(
            0, btag(s), xbuf, CommPlane::Z);
        scatter_slice(xbuf, f, ns, x);
      }
      if (in_pcol) {
        gather_slice(x, f, ns, xbuf);
        g_.plane().col().bcast(s % Px(), btag(s), xbuf, CommPlane::XY);
        scatter_slice(xbuf, f, ns, x);

        // U(c, s) contributions for descendants c anchored on my grid,
        // descending c to match the receivers' global order.
        const auto& pairs = by_anc_[static_cast<std::size_t>(s)];
        for (auto it = pairs.rbegin(); it != pairs.rend(); ++it) {
          const auto& [c, blkidx] = *it;
          if (part_.anchor_of(c) != g_.pz() || c % Px() != g_.plane().px())
            continue;
          OwnedBlock* ob = F_.find_ublock(c, s);
          SLU3D_CHECK(ob != nullptr, "missing owned U block in 3D solve");
          const PanelBlock& blk = bs_.lpanel(c)[static_cast<std::size_t>(blkidx)];
          const index_t nc = bs_.snode_size(c);
          const auto m = static_cast<index_t>(blk.rows.size());
          // Gather the (non-contiguous) ancestor rows of x used by this
          // U block into an m x nrhs panel for the GEMM.
          gbuf.resize(static_cast<std::size_t>(m) *
                      static_cast<std::size_t>(nrhs_));
          for (index_t j = 0; j < nrhs_; ++j)
            for (index_t k = 0; k < m; ++k)
              gbuf[static_cast<std::size_t>(k + j * m)] =
                  x[static_cast<std::size_t>(
                      blk.rows[static_cast<std::size_t>(k)] + j * n_)];
          vbuf.assign(static_cast<std::size_t>(nc) *
                          static_cast<std::size_t>(nrhs_),
                      0.0);
          dense::gemm_minus(nc, nrhs_, m, ob->data.data(), nc, gbuf.data(), m,
                            vbuf.data(), nc);
          world_.add_compute(dense::gemm_flops(nc, nrhs_, m),
                             ComputeKind::Other);
          world_.send(diag_owner(c), btag(s), vbuf, CommPlane::Z);
        }
      }
    }
  }

  void redistribute(std::span<real_t> x) {
    std::vector<real_t> packed, slice;
    for (int s = 0; s < bs_.n_snodes(); ++s)
      if (world_.rank() == diag_owner(s)) {
        gather_slice(x, bs_.first_col(s), bs_.snode_size(s), slice);
        packed.insert(packed.end(), slice.begin(), slice.end());
      }
    const std::vector<real_t> all =
        world_.allgatherv(gtag(), packed, CommPlane::Z);
    std::size_t pos = 0;
    for (int r = 0; r < world_.size(); ++r)
      for (int s = 0; s < bs_.n_snodes(); ++s) {
        if (diag_owner(s) != r) continue;
        const auto ns = bs_.snode_size(s);
        const auto len = static_cast<std::size_t>(ns) *
                         static_cast<std::size_t>(nrhs_);
        SLU3D_CHECK(pos + len <= all.size(), "gather underflow");
        scatter_slice(std::span<const real_t>(all).subspan(pos, len),
                      bs_.first_col(s), ns, x);
        pos += len;
      }
    SLU3D_CHECK(pos == all.size(), "gather stream not fully consumed");
  }

  Dist2dFactors& F_;
  sim::Comm& world_;
  sim::ProcessGrid3D& g_;
  const ForestPartition& part_;
  const BlockStructure& bs_;
  Solve3dOptions opt_;
  index_t n_;
  index_t nrhs_;
  std::vector<std::vector<std::pair<int, int>>> by_anc_;
  std::vector<sim::Comm> zgroup_;
};

}  // namespace

int solve3d_tag_span(const BlockStructure& bs) {
  // ftag/btag use n_snodes tags each, gtag one more at 3*n_snodes; the
  // remaining headroom keeps queued solves on a resident grid strictly
  // disjoint even if the schedule grows another tag class.
  return 4 * bs.n_snodes() + 8;
}

void solve_3d(Dist2dFactors& F, sim::Comm& world, sim::ProcessGrid3D& grid,
              const ForestPartition& part, std::span<real_t> x,
              const Solve3dOptions& options) {
  Solve3dDriver(F, world, grid, part, options).run(x);
}

}  // namespace slu3d
