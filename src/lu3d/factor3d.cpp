#include "lu3d/factor3d.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace slu3d {

namespace {

using sim::CommPlane;

constexpr int kReduceTagBase = (1 << 22);
constexpr int kGatherTag = (1 << 22) + 64;

/// Appends every block of supernode s owned by this rank, in deterministic
/// (diag, L ascending, U ascending) order.
void pack_snode(const Dist2dFactors& F, int s, std::vector<real_t>& out) {
  if (F.has_diag(s)) {
    const auto d = F.diag(s);
    out.insert(out.end(), d.begin(), d.end());
  }
  for (const OwnedBlock& b : F.lblocks(s))
    out.insert(out.end(), b.data.begin(), b.data.end());
  for (const OwnedBlock& b : F.ublocks(s))
    out.insert(out.end(), b.data.begin(), b.data.end());
}

/// Packed length of supernode s on this rank. Ranks sharing (px, py) on
/// z-adjacent grids hold identical masked layouts for common ancestors,
/// so sender and receiver compute the same value independently — empty
/// chunks can be skipped symmetrically without a handshake.
std::size_t packed_elems(const Dist2dFactors& F, int s) {
  std::size_t n = 0;
  if (F.has_diag(s)) n += F.diag(s).size();
  for (const OwnedBlock& b : F.lblocks(s)) n += b.data.size();
  for (const OwnedBlock& b : F.ublocks(s)) n += b.data.size();
  return n;
}

/// Mirror of pack_snode: adds the packed stream into the local blocks.
std::size_t add_snode(Dist2dFactors& F, int s, std::span<const real_t> buf,
                      std::size_t pos) {
  if (F.has_diag(s)) {
    auto d = F.diag(s);
    SLU3D_CHECK(pos + d.size() <= buf.size(), "reduction stream underflow");
    for (std::size_t i = 0; i < d.size(); ++i) d[i] += buf[pos + i];
    pos += d.size();
  }
  for (OwnedBlock& b : F.lblocks(s)) {
    SLU3D_CHECK(pos + b.data.size() <= buf.size(), "reduction stream underflow");
    for (std::size_t i = 0; i < b.data.size(); ++i) b.data[i] += buf[pos + i];
    pos += b.data.size();
  }
  for (OwnedBlock& b : F.ublocks(s)) {
    SLU3D_CHECK(pos + b.data.size() <= buf.size(), "reduction stream underflow");
    for (std::size_t i = 0; i < b.data.size(); ++i) b.data[i] += buf[pos + i];
    pos += b.data.size();
  }
  return pos;
}

}  // namespace

Dist2dFactors make_3d_factors(const BlockStructure& bs,
                              sim::ProcessGrid3D& grid,
                              const ForestPartition& part,
                              const CsrMatrix& Ap) {
  auto& plane = grid.plane();
  Dist2dFactors F(bs, plane.Px(), plane.Py(), plane.px(), plane.py(),
                  part.mask_for(grid.pz()));
  F.fill_from(Ap);
  // Replicated copies on non-anchor grids start at zero so the pairwise
  // z-reductions sum to A + all Schur updates exactly once.
  for (int s = 0; s < bs.n_snodes(); ++s) {
    if (!part.on_grid(s, grid.pz()) || part.anchor_of(s) == grid.pz()) continue;
    if (F.has_diag(s)) std::fill(F.diag(s).begin(), F.diag(s).end(), 0.0);
    for (OwnedBlock& b : F.lblocks(s)) std::fill(b.data.begin(), b.data.end(), 0.0);
    for (OwnedBlock& b : F.ublocks(s)) std::fill(b.data.begin(), b.data.end(), 0.0);
  }
  return F;
}

void refill_3d_factors(Dist2dFactors& F, sim::ProcessGrid3D& grid,
                       const ForestPartition& part, const CsrMatrix& Ap) {
  const BlockStructure& bs = F.structure();
  F.zero();
  F.fill_from(Ap);
  for (int s = 0; s < bs.n_snodes(); ++s) {
    if (!part.on_grid(s, grid.pz()) || part.anchor_of(s) == grid.pz()) continue;
    if (F.has_diag(s)) std::fill(F.diag(s).begin(), F.diag(s).end(), 0.0);
    for (OwnedBlock& b : F.lblocks(s)) std::fill(b.data.begin(), b.data.end(), 0.0);
    for (OwnedBlock& b : F.ublocks(s)) std::fill(b.data.begin(), b.data.end(), 0.0);
  }
}

void factorize_3d(Dist2dFactors& F, sim::ProcessGrid3D& grid,
                  const ForestPartition& part, const Lu3dOptions& options) {
  const BlockStructure& bs = F.structure();
  const int l = part.n_levels() - 1;
  const int pz = grid.pz();

  // Outstanding per-ancestor reduction chunks (async mode). A chunk for
  // supernode s is drained right before the level that factors s — until
  // then its transfer rides under the 2D factorization of deeper levels.
  struct Pending {
    sim::Request req;
    int s;
  };
  std::vector<Pending> outstanding;
  auto drain = [&](auto&& keep_pending) {
    std::size_t kept = 0;
    for (Pending& p : outstanding) {
      if (keep_pending(p.s)) {
        outstanding[kept++] = std::move(p);
        continue;
      }
      const std::vector<real_t> buf = p.req.take();
      const std::size_t pos = add_snode(F, p.s, buf, 0);
      SLU3D_CHECK(pos == buf.size(), "reduction chunk not fully consumed");
    }
    outstanding.resize(kept);
  };

  for (int lvl = l; lvl >= 0; --lvl) {
    const int step = 1 << (l - lvl);
    if (pz % step != 0) continue;  // this grid is inactive at this level

    // Chunks feeding this level's supernodes must be in before they are
    // factored; deeper chunks keep overlapping.
    if (options.async)
      drain([&](int s) { return part.level_of(s) < lvl; });

    const std::vector<int> nodes = part.nodes_at(pz, lvl);
    factorize_2d(F, grid.plane(), nodes, options.lu2d);

    if (lvl == 0) break;

    // Ancestor-Reduction: the (2k+1)-th active grid sends its copies of
    // every common-ancestor block to the (2k)-th, which accumulates them.
    const int k = pz / step;
    std::vector<int> ancestors;
    for (int s = 0; s < bs.n_snodes(); ++s)
      if (part.level_of(s) < lvl && part.on_grid(s, pz)) ancestors.push_back(s);

    if (k % 2 == 1) {
      if (options.async) {
        // The outgoing copies must include everything received so far.
        drain([](int) { return false; });
        std::vector<real_t> buf;
        for (int s : ancestors) {
          buf.clear();
          pack_snode(F, s, buf);
          if (buf.empty()) continue;  // peer skips the matching irecv
          grid.zline().isend(pz - step, kReduceTagBase + lvl, buf,
                             CommPlane::Z);
        }
      } else {
        std::vector<real_t> buf;
        for (int s : ancestors) pack_snode(F, s, buf);
        grid.zline().send(pz - step, kReduceTagBase + lvl, buf, CommPlane::Z);
      }
    } else {
      if (options.async) {
        for (int s : ancestors) {
          if (packed_elems(F, s) == 0) continue;
          outstanding.push_back(
              {grid.zline().irecv(pz + step, kReduceTagBase + lvl,
                                  CommPlane::Z),
               s});
        }
      } else {
        const auto buf =
            grid.zline().recv(pz + step, kReduceTagBase + lvl, CommPlane::Z);
        std::size_t pos = 0;
        for (int s : ancestors) pos = add_snode(F, s, buf, pos);
        SLU3D_CHECK(pos == buf.size(), "reduction stream not fully consumed");
      }
    }
  }
  SLU3D_CHECK(outstanding.empty(), "undrained reduction chunks");
}

std::optional<SupernodalMatrix> gather_3d_to_root(const Dist2dFactors& F,
                                                  sim::Comm& world,
                                                  sim::ProcessGrid3D& grid,
                                                  const ForestPartition& part) {
  const BlockStructure& bs = F.structure();
  auto& plane = grid.plane();
  const int Px = plane.Px(), Py = plane.Py();

  // Every rank packs the supernodes anchored on its grid.
  std::vector<real_t> mine;
  for (int s = 0; s < bs.n_snodes(); ++s)
    if (part.anchor_of(s) == grid.pz()) pack_snode(F, s, mine);

  if (world.rank() != 0) {
    world.send(0, kGatherTag, mine, CommPlane::Z);
    return std::nullopt;
  }

  SupernodalMatrix full(bs);
  auto unpack_rank = [&](int spz, int spx, int spy, std::span<const real_t> buf) {
    std::size_t pos = 0;
    auto rank_owns = [&](int bi, int bj) {
      return bi % Px == spx && bj % Py == spy;
    };
    for (int s = 0; s < bs.n_snodes(); ++s) {
      if (part.anchor_of(s) != spz) continue;
      const auto ns = static_cast<std::size_t>(bs.snode_size(s));
      if (ns == 0) continue;
      if (rank_owns(s, s)) {
        auto d = full.diag(s);
        SLU3D_CHECK(pos + ns * ns <= buf.size(), "gather underflow (diag)");
        std::copy_n(buf.begin() + static_cast<std::ptrdiff_t>(pos), ns * ns,
                    d.begin());
        pos += ns * ns;
      }
      const auto panel = bs.lpanel(s);
      const auto mtot = full.panel_rows(s).size();
      for (const auto& blk : panel) {
        const auto m = static_cast<std::size_t>(blk.n_rows());
        if (!rank_owns(blk.snode, s)) continue;
        const auto [off, cnt] = full.block_range(s, blk.snode);
        SLU3D_CHECK(off >= 0 && static_cast<std::size_t>(cnt) == m, "L range");
        SLU3D_CHECK(pos + m * ns <= buf.size(), "gather underflow (L)");
        auto lp = full.lpanel(s);
        for (std::size_t c = 0; c < ns; ++c)
          for (std::size_t r = 0; r < m; ++r)
            lp[static_cast<std::size_t>(off) + r + c * mtot] = buf[pos + r + c * m];
        pos += m * ns;
      }
      for (const auto& blk : panel) {
        const auto m = static_cast<std::size_t>(blk.n_rows());
        if (!rank_owns(s, blk.snode)) continue;
        const auto [off, cnt] = full.block_range(s, blk.snode);
        SLU3D_CHECK(off >= 0 && static_cast<std::size_t>(cnt) == m, "U range");
        SLU3D_CHECK(pos + ns * m <= buf.size(), "gather underflow (U)");
        auto up = full.upanel(s);
        for (std::size_t c = 0; c < m; ++c)
          for (std::size_t r = 0; r < ns; ++r)
            up[r + (static_cast<std::size_t>(off) + c) * ns] = buf[pos + r + c * ns];
        pos += ns * m;
      }
    }
    SLU3D_CHECK(pos == buf.size(), "gather stream not fully consumed");
  };

  unpack_rank(grid.pz(), plane.px(), plane.py(), mine);
  const int pxy = Px * Py;
  for (int r = 1; r < world.size(); ++r) {
    const auto buf = world.recv(r, kGatherTag, CommPlane::Z);
    unpack_rank(r / pxy, (r % pxy) / Py, (r % pxy) % Py, buf);
  }
  return full;
}

}  // namespace slu3d
