// 3D LU driver: setup of the masked replicated layouts plus the LU
// instantiation of the shared z-reduction engine (pipeline/zreduce.hpp);
// the per-level 2D primitive is factorize_2d and the wire format is the
// LuFactorsAccess trait's (diag, L ascending, U ascending).
#include "lu3d/factor3d.hpp"

#include <algorithm>

#include "pipeline/factors_access.hpp"
#include "pipeline/zreduce.hpp"
#include "support/check.hpp"

namespace slu3d {

namespace {

using sim::CommPlane;

constexpr int kReduceTagBase = (1 << 22);
constexpr int kGatherTag = (1 << 22) + 64;

}  // namespace

Dist2dFactors make_3d_factors(const BlockStructure& bs,
                              sim::ProcessGrid3D& grid,
                              const ForestPartition& part,
                              const CsrMatrix& Ap) {
  auto& plane = grid.plane();
  Dist2dFactors F(bs, plane.Px(), plane.Py(), plane.px(), plane.py(),
                  part.mask_for(grid.pz()));
  F.fill_from(Ap);
  pipeline::zero_nonanchor_replicas<pipeline::LuFactorsAccess>(F, part,
                                                               grid.pz());
  return F;
}

void refill_3d_factors(Dist2dFactors& F, sim::ProcessGrid3D& grid,
                       const ForestPartition& part, const CsrMatrix& Ap) {
  F.zero();
  F.fill_from(Ap);
  pipeline::zero_nonanchor_replicas<pipeline::LuFactorsAccess>(F, part,
                                                               grid.pz());
}

void factorize_3d(Dist2dFactors& F, sim::ProcessGrid3D& grid,
                  const ForestPartition& part, const Lu3dOptions& options) {
  pipeline::run_3d_levels<pipeline::LuFactorsAccess>(
      F, grid, part, options, kReduceTagBase,
      [&](sim::ProcessGrid2D& plane, std::span<const int> nodes) {
        factorize_2d(F, plane, nodes, options.lu2d);
      });
}

std::optional<SupernodalMatrix> gather_3d_to_root(const Dist2dFactors& F,
                                                  sim::Comm& world,
                                                  sim::ProcessGrid3D& grid,
                                                  const ForestPartition& part) {
  const BlockStructure& bs = F.structure();
  auto& plane = grid.plane();
  const int Px = plane.Px(), Py = plane.Py();

  // Every rank packs the supernodes anchored on its grid.
  std::vector<real_t> mine;
  for (int s = 0; s < bs.n_snodes(); ++s)
    if (part.anchor_of(s) == grid.pz())
      pipeline::pack_snode<pipeline::LuFactorsAccess>(F, s, mine);

  if (world.rank() != 0) {
    world.send(0, kGatherTag, mine, CommPlane::Z);
    return std::nullopt;
  }

  SupernodalMatrix full(bs);
  auto unpack_rank = [&](int spz, int spx, int spy, std::span<const real_t> buf) {
    std::size_t pos = 0;
    auto rank_owns = [&](int bi, int bj) {
      return bi % Px == spx && bj % Py == spy;
    };
    for (int s = 0; s < bs.n_snodes(); ++s) {
      if (part.anchor_of(s) != spz) continue;
      const auto ns = static_cast<std::size_t>(bs.snode_size(s));
      if (ns == 0) continue;
      if (rank_owns(s, s)) {
        auto d = full.diag(s);
        SLU3D_CHECK(pos + ns * ns <= buf.size(), "gather underflow (diag)");
        std::copy_n(buf.begin() + static_cast<std::ptrdiff_t>(pos), ns * ns,
                    d.begin());
        pos += ns * ns;
      }
      const auto panel = bs.lpanel(s);
      const auto mtot = full.panel_rows(s).size();
      for (const auto& blk : panel) {
        const auto m = static_cast<std::size_t>(blk.n_rows());
        if (!rank_owns(blk.snode, s)) continue;
        const auto [off, cnt] = full.block_range(s, blk.snode);
        SLU3D_CHECK(off >= 0 && static_cast<std::size_t>(cnt) == m, "L range");
        SLU3D_CHECK(pos + m * ns <= buf.size(), "gather underflow (L)");
        auto lp = full.lpanel(s);
        for (std::size_t c = 0; c < ns; ++c)
          for (std::size_t r = 0; r < m; ++r)
            lp[static_cast<std::size_t>(off) + r + c * mtot] = buf[pos + r + c * m];
        pos += m * ns;
      }
      for (const auto& blk : panel) {
        const auto m = static_cast<std::size_t>(blk.n_rows());
        if (!rank_owns(s, blk.snode)) continue;
        const auto [off, cnt] = full.block_range(s, blk.snode);
        SLU3D_CHECK(off >= 0 && static_cast<std::size_t>(cnt) == m, "U range");
        SLU3D_CHECK(pos + ns * m <= buf.size(), "gather underflow (U)");
        auto up = full.upanel(s);
        for (std::size_t c = 0; c < m; ++c)
          for (std::size_t r = 0; r < ns; ++r)
            up[r + (static_cast<std::size_t>(off) + c) * ns] = buf[pos + r + c * ns];
        pos += ns * m;
      }
    }
    SLU3D_CHECK(pos == buf.size(), "gather stream not fully consumed");
  };

  unpack_rank(grid.pz(), plane.px(), plane.py(), mine);
  const int pxy = Px * Py;
  for (int r = 1; r < world.size(); ++r) {
    const auto buf = world.recv(r, kGatherTag, CommPlane::Z);
    unpack_rank(r / pxy, (r % pxy) / Py, (r % pxy) % Py, buf);
  }
  return full;
}

}  // namespace slu3d
