#include "threads/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace slu3d::threads {

namespace {

thread_local bool t_in_worker = false;
thread_local int t_exec_slot = 0;
thread_local ThreadPool* t_worker_pool = nullptr;
thread_local ThreadPool* t_current_pool = nullptr;

int env_int(const char* name) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return 0;
  const long v = std::strtol(s, nullptr, 10);
  if (v < 1) return 0;
  return static_cast<int>(std::min<long>(v, kMaxThreads));
}

}  // namespace

int resolve_threads(int configured) {
  SLU3D_CHECK(configured >= 0,
              "threads: configured count must be >= 0 (0 = SLU3D_THREADS env "
              "override, defaulting to 1)");
  SLU3D_CHECK(configured <= kMaxThreads,
              "threads: configured count exceeds kMaxThreads");
  if (configured > 0) return configured;
  static const int from_env = env_int("SLU3D_THREADS");
  return from_env > 0 ? from_env : 1;
}

// ---- WorkerBudget -------------------------------------------------------

WorkerBudget::WorkerBudget() {
  int v = env_int("SLU3D_THREAD_BUDGET");
  if (v <= 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    v = hc > 1 ? static_cast<int>(hc) - 1 : 0;
    // Floor: a threads=4 pool (3 workers) must stay exercisable even on
    // 1-2 core hosts (CI runners, containers) — the mild oversubscription
    // costs wall-clock only, never correctness.
    v = std::max(v, 3);
  }
  total_ = avail_ = v;
}

WorkerBudget& WorkerBudget::instance() {
  static WorkerBudget budget;
  return budget;
}

int WorkerBudget::acquire(int want) {
  SLU3D_CHECK(want >= 0, "threads: negative worker request");
  std::lock_guard<std::mutex> lk(mu_);
  const int granted = std::min(want, avail_);
  avail_ -= granted;
  return granted;
}

void WorkerBudget::release(int granted) {
  if (granted <= 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  avail_ += granted;
  SLU3D_CHECK(avail_ <= total_, "threads: worker budget over-released");
}

int WorkerBudget::available() const {
  std::lock_guard<std::mutex> lk(mu_);
  return avail_;
}

// ---- ThreadPool ---------------------------------------------------------

bool ThreadPool::in_worker() { return t_in_worker; }
int ThreadPool::exec_slot() { return t_exec_slot; }
ThreadPool* ThreadPool::worker_pool() { return t_worker_pool; }

ThreadPool::ThreadPool(int threads) : requested_(threads) {
  SLU3D_CHECK(threads >= 1 && threads <= kMaxThreads,
              "threads: pool size must be in [1, kMaxThreads]");
  SLU3D_CHECK(!in_worker(), "threads: a pool worker must not create a pool");
  granted_ = threads > 1 ? WorkerBudget::instance().acquire(threads - 1) : 0;
  ends_.assign(static_cast<std::size_t>(granted_) + 1, 0);
  cursors_ = std::make_unique<std::atomic<std::ptrdiff_t>[]>(
      static_cast<std::size_t>(granted_) + 1);
  workers_.reserve(static_cast<std::size_t>(granted_));
  try {
    for (int s = 1; s <= granted_; ++s)
      workers_.emplace_back([this, s] { worker_loop(s); });
  } catch (...) {
    // Partial spawn: tear down what exists and hand the grant back.
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& t : workers_) t.join();
    WorkerBudget::instance().release(granted_);
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
  WorkerBudget::instance().release(granted_);
}

void ThreadPool::run_region(std::ptrdiff_t n, RegionFn fn, void* ctx,
                            bool steal) {
  SLU3D_CHECK(!in_worker(),
              "threads: pool workers must not re-enter the pool (use the free "
              "threads::parallel_for, which runs inline on workers)");
  SLU3D_CHECK(!busy_.load(std::memory_order_relaxed),
              "threads: run_region re-entered from a slot-0 task body while a "
              "region is in flight (use the free threads::parallel_for, which "
              "runs inline when the pool is busy)");
  if (n <= 0) return;
  if (!active() || n == 1) {
    for (std::ptrdiff_t i = 0; i < n; ++i) fn(ctx, i, 0);
    return;
  }
  busy_.store(true, std::memory_order_relaxed);
  const int nslots = slots();
  region_fn_ = fn;
  region_ctx_ = ctx;
  region_steal_ = steal;
  // Balanced contiguous partition of [0, n) across participants.
  const std::ptrdiff_t base = n / nslots;
  const std::ptrdiff_t rem = n % nslots;
  std::ptrdiff_t begin = 0;
  for (int p = 0; p < nslots; ++p) {
    const std::ptrdiff_t len = base + (p < rem ? 1 : 0);
    cursors_[static_cast<std::size_t>(p)].store(begin, std::memory_order_relaxed);
    ends_[static_cast<std::size_t>(p)] = begin + len;
    begin += len;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++epoch_;
    pending_ = workers();
  }
  cv_work_.notify_all();
  work(0);
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [this] { return pending_ == 0; });
  }
  busy_.store(false, std::memory_order_relaxed);
  region_fn_ = nullptr;
  region_ctx_ = nullptr;
  if (eptr_) {
    std::exception_ptr e;
    std::swap(e, eptr_);
    std::rethrow_exception(e);
  }
}

void ThreadPool::work(int slot) {
  const int nslots = slots();
  try {
    // Drain the own range first (owner-first keeps stealing rare when the
    // partition is balanced), then steal single iterations from the victim
    // with the most work left. fetch_add may overshoot a range's end by up
    // to one per contender; the `< end` check discards overshoot and the
    // remaining-work scan sees it as empty, so the loops terminate.
    const std::ptrdiff_t own_end = ends_[static_cast<std::size_t>(slot)];
    std::ptrdiff_t i;
    while ((i = cursors_[static_cast<std::size_t>(slot)].fetch_add(
              1, std::memory_order_relaxed)) <
           own_end)
      region_fn_(region_ctx_, i, slot);
    if (region_steal_) {
      for (;;) {
        int victim = -1;
        std::ptrdiff_t most = 0;
        for (int q = 0; q < nslots; ++q) {
          if (q == slot) continue;
          const std::ptrdiff_t rem =
              ends_[static_cast<std::size_t>(q)] -
              cursors_[static_cast<std::size_t>(q)].load(std::memory_order_relaxed);
          if (rem > most) {
            most = rem;
            victim = q;
          }
        }
        if (victim < 0) break;
        const std::ptrdiff_t j =
            cursors_[static_cast<std::size_t>(victim)].fetch_add(
                1, std::memory_order_relaxed);
        if (j < ends_[static_cast<std::size_t>(victim)]) {
          steals_.fetch_add(1, std::memory_order_relaxed);
          region_fn_(region_ctx_, j, slot);
        }
      }
    }
  } catch (...) {
    std::lock_guard<std::mutex> lk(err_mu_);
    if (!eptr_) eptr_ = std::current_exception();
  }
}

void ThreadPool::worker_loop(int slot) {
  t_in_worker = true;
  t_exec_slot = slot;
  t_worker_pool = this;
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
    }
    work(slot);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

// ---- ambient pool -------------------------------------------------------

ThreadPool* current_pool() { return t_current_pool; }

PoolScope::PoolScope(ThreadPool* pool) : prev_(t_current_pool) {
  t_current_pool = pool;
}

PoolScope::~PoolScope() { t_current_pool = prev_; }

// ---- Barrier ------------------------------------------------------------

Barrier::Barrier(int n) : n_(n) {
  SLU3D_CHECK(n >= 1, "threads: barrier needs at least one participant");
}

void Barrier::arrive_and_wait() {
  std::unique_lock<std::mutex> lk(mu_);
  const std::uint64_t gen = gen_;
  if (++waiting_ == n_) {
    waiting_ = 0;
    ++gen_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lk, [&] { return gen_ != gen; });
}

}  // namespace slu3d::threads
