// Intra-rank work-stealing thread pool (see DESIGN.md, "Funneled
// threading model"). The simulated MPI runtime runs each rank as one
// std::thread; this pool adds T-1 compute workers underneath a rank so the
// dense substrate and the Schur scatter use the host cores the simulation
// leaves idle. The contract is strictly funneled, MPI_THREAD_FUNNELED
// style: workers execute pure compute closures over disjoint data
// partitions and never touch simmpi (enforced by SLU3D_CHECKs in
// runtime.cpp) — all communication and all logical-clock charging stay on
// the rank thread. Because every parallel_for partition is disjoint and
// every reduction folds in fixed slot order, factor bits and RankStats
// counters are bitwise identical for any worker count, including zero.
//
// A process-wide WorkerBudget arbitrates workers across resident ranks:
// each pool asks for threads-1 workers and is granted whatever is left, so
// P simulated ranks x T-thread pools cannot oversubscribe the host. A pool
// granted fewer (or zero) workers only loses wall-clock overlap, never
// determinism.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "support/check.hpp"
#include "support/types.hpp"

namespace slu3d::threads {

/// Hard cap on the per-pool participant count (caller + workers). Far above
/// any sane configuration; guards against a byte count or tag being passed
/// as a thread count.
inline constexpr int kMaxThreads = 1024;

/// Resolves a configured thread count to the effective participant count:
/// an explicit positive value wins, otherwise the SLU3D_THREADS environment
/// variable, otherwise 1 (single-threaded, the historical behavior). The
/// env lookup is cached — the variable is read once per process.
int resolve_threads(int configured);

/// Process-wide budget of compute workers shared by every pool (= every
/// resident rank). Default total: hardware_concurrency - 1 (the rank
/// threads themselves already occupy cores), floored at 3 so a threads=4
/// pool stays fully exercisable on small hosts; override with
/// SLU3D_THREAD_BUDGET. acquire() grants what is available, first come
/// first served — late pools degrade toward serial, never block.
class WorkerBudget {
 public:
  static WorkerBudget& instance();

  /// Grants min(want, available) workers and returns the granted count.
  int acquire(int want);
  /// Returns `granted` workers to the budget.
  void release(int granted);

  int total() const { return total_; }
  int available() const;

 private:
  WorkerBudget();
  mutable std::mutex mu_;
  int total_ = 0;
  int avail_ = 0;
};

/// Work-stealing fork-join pool. Construction requests `threads - 1`
/// workers from the WorkerBudget (the caller thread is participant 0);
/// parallel_for splits [0, n) into one contiguous range per participant,
/// each drained through a per-range atomic cursor, and finished
/// participants steal single iterations from the victim with the most work
/// left. Stolen iterations run identically wherever they land — the
/// partition, not the executor, carries the semantics.
class ThreadPool {
 public:
  /// `threads` >= 1 is the desired participant count (caller included).
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Granted workers (may be less than requested when the budget ran dry).
  int workers() const { return static_cast<int>(workers_.size()); }
  /// Execution slots: workers() + 1 (slot 0 is the calling rank thread).
  int slots() const { return workers() + 1; }
  /// The participant count construction asked for (before budgeting).
  int requested() const { return requested_; }
  bool active() const { return !workers_.empty(); }
  /// True while a region is in flight. Slot-0 task bodies see their own
  /// pool as busy; the free threads::parallel_for (and the dense GEMM's
  /// parallel gate) check this and degrade to inline execution, so nested
  /// compute composes instead of corrupting the live region.
  bool busy() const { return busy_.load(std::memory_order_relaxed); }

  /// Iterations executed by a non-owning participant, cumulative. Test and
  /// diagnostics hook; irrelevant to results by design.
  std::uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

  /// Side-channel integer accumulator for worker-side bookkeeping (the
  /// dense flop audit): workers cannot touch the rank's thread-local
  /// counters, so they add here and the owner folds the sum back in.
  /// Integer addition commutes, so the fold is deterministic.
  void accumulate(offset_t v) { accum_.fetch_add(v, std::memory_order_relaxed); }
  offset_t accumulated() const { return accum_.load(std::memory_order_relaxed); }
  offset_t take_accumulated() { return accum_.exchange(0, std::memory_order_relaxed); }

  /// Runs fn(i, slot) for every i in [0, n), work-stealing across all
  /// participants; returns when every iteration has finished. The caller
  /// participates as slot 0. Must not be called from a worker, nor from
  /// inside one of this pool's own task bodies (both cases use the free
  /// threads::parallel_for, which degrades to inline execution). The first
  /// exception thrown by any iteration is rethrown here after the region
  /// completes.
  template <class Fn>
  void parallel_for(std::ptrdiff_t n, Fn&& fn) {
    run_region(n, &trampoline<std::remove_reference_t<Fn>>, std::addressof(fn),
               /*steal=*/true);
  }

  /// Runs fn(slot) exactly once on every participant *thread* — slot 0 on
  /// the caller, slot s on worker s, no stealing — so per-thread state
  /// (thread_local arenas) can be initialized on the thread that owns it.
  template <class Fn>
  void for_each_slot(Fn&& fn) {
    auto body = [&fn]([[maybe_unused]] std::ptrdiff_t i, int slot) {
      SLU3D_ASSERT(static_cast<int>(i) == slot);
      fn(slot);
    };
    run_region(slots(), &trampoline<decltype(body)>, std::addressof(body),
               /*steal=*/false);
  }

  /// True on a pool worker thread (any pool).
  static bool in_worker();
  /// This thread's participant slot: 0 on any non-worker thread.
  static int exec_slot();
  /// The pool owning the current worker thread, nullptr elsewhere.
  static ThreadPool* worker_pool();

 private:
  using RegionFn = void (*)(void*, std::ptrdiff_t, int);

  template <class Fn>
  static void trampoline(void* ctx, std::ptrdiff_t i, int slot) {
    (*static_cast<Fn*>(ctx))(i, slot);
  }

  void run_region(std::ptrdiff_t n, RegionFn fn, void* ctx, bool steal);
  void work(int slot);
  void worker_loop(int slot);

  int requested_ = 1;
  int granted_ = 0;
  std::vector<std::thread> workers_;

  // Region state: written by the owner before the epoch bump, read by
  // workers after it (the mutex hand-off orders both directions).
  RegionFn region_fn_ = nullptr;
  void* region_ctx_ = nullptr;
  bool region_steal_ = true;
  std::vector<std::ptrdiff_t> ends_;
  std::unique_ptr<std::atomic<std::ptrdiff_t>[]> cursors_;

  std::mutex mu_;
  std::condition_variable cv_work_, cv_done_;
  std::uint64_t epoch_ = 0;
  int pending_ = 0;
  bool stop_ = false;

  std::mutex err_mu_;
  std::exception_ptr eptr_;

  std::atomic<std::uint64_t> steals_{0};
  std::atomic<offset_t> accum_{0};
  std::atomic<bool> busy_{false};
};

/// The ambient pool of the current thread (installed by PoolScope), or
/// nullptr. Compute hot paths consult this instead of threading a pool
/// through every call signature.
ThreadPool* current_pool();

/// RAII: installs `pool` as the current thread's ambient pool for the
/// scope's lifetime (restoring the previous one — scopes nest).
class PoolScope {
 public:
  explicit PoolScope(ThreadPool* pool);
  ~PoolScope();
  PoolScope(const PoolScope&) = delete;
  PoolScope& operator=(const PoolScope&) = delete;

 private:
  ThreadPool* prev_;
};

/// Ambient-pool parallel loop: runs fn(i, slot) over [0, n). Uses the
/// current thread's pool when one is installed, active, and idle;
/// otherwise — no pool, an empty pool, a nested call from inside a worker,
/// or a slot-0 task body whose pool is mid-region — it runs inline on the
/// calling thread under its own slot. The inline fallback is what lets
/// kernels compose: any participant executing a Schur pair can call the
/// same GEMM that fans out at the top level, and it simply runs serial.
template <class Fn>
void parallel_for(std::ptrdiff_t n, Fn&& fn) {
  if (!ThreadPool::in_worker()) {
    if (ThreadPool* pool = current_pool();
        pool != nullptr && pool->active() && !pool->busy()) {
      pool->parallel_for(n, std::forward<Fn>(fn));
      return;
    }
  }
  const int slot = ThreadPool::exec_slot();
  for (std::ptrdiff_t i = 0; i < n; ++i) fn(i, slot);
}

/// Cyclic mutex/cv barrier for `n` participants (getml-idiom primitive;
/// used by tests and lockstep phases, not the hot path).
class Barrier {
 public:
  explicit Barrier(int n);
  void arrive_and_wait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int n_;
  int waiting_ = 0;
  std::uint64_t gen_ = 0;
};

/// Per-slot partial reduction with a deterministic fold: each participant
/// accumulates into its own slot (no sharing, no atomics) and reduce()
/// folds the partials in ascending slot order — so floating-point results
/// do not depend on execution interleaving, only on the partition.
template <class T>
class Reducer {
 public:
  Reducer(int slots, T identity)
      : identity_(identity), parts_(static_cast<std::size_t>(slots), identity) {}

  T& at(int slot) { return parts_[static_cast<std::size_t>(slot)]; }

  template <class Op>
  T reduce(Op&& op) const {
    T acc = identity_;
    for (const T& p : parts_) acc = op(acc, p);
    return acc;
  }

  void reset() { parts_.assign(parts_.size(), identity_); }

 private:
  T identity_;
  std::vector<T> parts_;
};

}  // namespace slu3d::threads
