// Factors-access traits: a uniform block enumeration over the two
// distributed factor containers (Dist2dFactors, DistCholFactors), so the
// z-axis ancestor-reduction engine can pack, add, and bitmap supernode
// payloads without knowing which variant it is moving. The enumeration
// order IS the wire format: diag (if owned), then L blocks ascending, then
// (LU only) U blocks ascending — exactly the order the historical
// pack_snode/add_snode pairs used, so dense-mode streams are byte-identical.
//
// Each visited block is described by (span, tri_n): tri_n == 0 means the
// whole span travels verbatim; tri_n == n means the span is an n x n
// column-major diagonal block of which only the lower triangle travels,
// column-major packed (the symmetric variant's half-volume diagonal).
#pragma once

#include <span>

#include "lu2d/dist_chol.hpp"
#include "lu2d/dist_factors.hpp"

namespace slu3d::pipeline {

/// Trait for the LU container: diag (full) + L blocks + U blocks.
struct LuFactorsAccess {
  using Factors = Dist2dFactors;

  template <class F, class Fn>  // F is Dist2dFactors or const Dist2dFactors
  static void for_each_block(F& f, int s, Fn&& fn) {
    if (f.has_diag(s)) fn(f.diag(s), index_t{0});
    for (auto& b : f.lblocks(s)) fn(std::span{b.data}, index_t{0});
    for (auto& b : f.ublocks(s)) fn(std::span{b.data}, index_t{0});
  }
};

/// Trait for the symmetric container: diag (lower triangle) + L blocks.
struct CholFactorsAccess {
  using Factors = DistCholFactors;

  template <class F, class Fn>
  static void for_each_block(F& f, int s, Fn&& fn) {
    if (f.has_diag(s))
      fn(f.diag(s), static_cast<index_t>(f.structure().snode_size(s)));
    for (auto& b : f.lblocks(s)) fn(std::span{b.data}, index_t{0});
  }
};

/// Packed wire length of one (span, tri_n) block.
inline std::size_t block_packed_elems(std::size_t span_elems, index_t tri_n) {
  if (tri_n == 0) return span_elems;
  const auto n = static_cast<std::size_t>(tri_n);
  return n * (n + 1) / 2;
}

/// Packed length of supernode s on this rank. Ranks sharing (px, py) on
/// z-adjacent grids hold identical masked layouts for common ancestors,
/// so sender and receiver compute the same value independently — empty
/// chunks can be skipped symmetrically without a handshake.
template <class Access, class F>
std::size_t packed_elems(F& f, int s) {
  std::size_t n = 0;
  Access::for_each_block(f, s, [&](auto blk, index_t tri) {
    n += block_packed_elems(blk.size(), tri);
  });
  return n;
}

/// Appends every block of supernode s owned by this rank, in the trait's
/// deterministic enumeration order (dense wire format).
template <class Access, class F>
void pack_snode(F& f, int s, std::vector<real_t>& out) {
  Access::for_each_block(f, s, [&](auto blk, index_t tri) {
    if (tri == 0) {
      out.insert(out.end(), blk.begin(), blk.end());
      return;
    }
    const auto n = static_cast<index_t>(tri);
    for (index_t c = 0; c < n; ++c)
      for (index_t r = c; r < n; ++r)
        out.push_back(blk[static_cast<std::size_t>(r + c * n)]);
  });
}

/// Mirror of pack_snode: adds the packed stream into the local blocks.
template <class Access>
std::size_t add_snode(typename Access::Factors& f, int s,
                      std::span<const real_t> buf, std::size_t pos) {
  Access::for_each_block(f, s, [&](std::span<real_t> blk, index_t tri) {
    const std::size_t len = block_packed_elems(blk.size(), tri);
    SLU3D_CHECK(pos + len <= buf.size(), "reduction stream underflow");
    if (tri == 0) {
      for (std::size_t i = 0; i < len; ++i) blk[i] += buf[pos + i];
      pos += len;
      return;
    }
    const auto n = static_cast<index_t>(tri);
    for (index_t c = 0; c < n; ++c)
      for (index_t r = c; r < n; ++r)
        blk[static_cast<std::size_t>(r + c * n)] += buf[pos++];
  });
  return pos;
}

/// Zeroes every owned block of the non-anchor replicated ancestors, so the
/// pairwise z-reductions sum to A + all Schur updates exactly once
/// ("initialize A(S) with zeros", §III-A). Shared by the LU and Cholesky
/// 3D setup/refill paths.
template <class Access, class Part>
void zero_nonanchor_replicas(typename Access::Factors& f, const Part& part,
                             int pz) {
  for (int s = 0; s < f.structure().n_snodes(); ++s) {
    if (!part.on_grid(s, pz) || part.anchor_of(s) == pz) continue;
    Access::for_each_block(f, s, [](std::span<real_t> blk, index_t) {
      std::fill(blk.begin(), blk.end(), 0.0);
    });
  }
}

}  // namespace slu3d::pipeline
