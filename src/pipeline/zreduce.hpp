// The shared 3D driver engine: Algorithm 1's level loop with the z-axis
// Ancestor-Reduction. Each 2D grid factors its elimination-forest levels
// bottom-up (the per-level 2D primitive is injected as a callable, so the
// LU and Cholesky drivers differ only in that lambda); after each level the
// (2k+1)-th active grid sends its copies of every common-ancestor block to
// the (2k)-th, which accumulates them. In async mode the reduction is
// chunked into non-blocking per-chunk messages (chunk_snodes ancestor
// supernodes each) drained only when their forest level is factored, so the
// transfer rides under the 2D factorization of deeper levels.
//
// Wire formats (see pipeline/factors_access.hpp for block enumeration):
//   Dense:  every allocated block of each ancestor travels verbatim —
//           byte-identical to the historical factor3d/factor3d_chol pair.
//   Sparse: each ancestor is framed as ceil(n_blocks/64) bitmap words
//           (uint64 bit i = block i present, bit_cast into real_t) followed
//           by only the blocks whose local accumulation holds any nonzero.
//           Blocks a subtree never touched are omitted; the receiver skips
//           them symmetrically by reading the bitmap. Savings are recorded
//           in the sender's RankStats::zred_* counters.
//
// A chunk whose *dense* packed size is zero is skipped without a message in
// async mode — sender and receiver compute that size independently from
// their identical masked layouts, so no handshake is needed (and the
// decision cannot depend on numeric values, which only the sender knows).
//
//   Targeted: one-sided delivery over simmpi RMA windows. Each level gets
//           its own window over the z-line communicator (created
//           collectively up front — chunks from several levels can be
//           outstanding at once, and a level's staging offsets must not
//           depend on other levels' masked layouts, which a sender cannot
//           always compute). The sender scatter-accumulates each chunk's
//           dense stream — a scalar-granularity presence bitmap plus the
//           nonzero scalars — into the receiver's zeroed staging region at
//           the chunk's dense offset, so raggedness *inside* touched
//           blocks is elided too (Sparse only skips whole all-zero
//           blocks). The receiver registers each chunk with
//           Window::expect and, at the drain, waits the delivery and
//           accumulates the staged dense stream in the same order as
//           Dense — numerically identical. Savings reconcile byte-exactly
//           against the dense wire: received + zred_bytes_saved == dense.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "lu3d/forest_partition.hpp"
#include "numeric/dense_kernels.hpp"
#include "pipeline/factors_access.hpp"
#include "pipeline/options.hpp"
#include "simmpi/process_grid.hpp"
#include "support/check.hpp"

namespace slu3d::pipeline {

/// True if the packed region of a (span, tri_n) block is entirely zero.
inline bool block_all_zero(std::span<const real_t> blk, index_t tri) {
  if (tri == 0) return dense::all_zero(blk.data(), blk.size());
  for (index_t c = 0; c < tri; ++c)
    if (!dense::all_zero(blk.data() + static_cast<std::size_t>(c * tri + c),
                         static_cast<std::size_t>(tri - c)))
      return false;
  return true;
}

namespace detail {

/// Appends one block's packed elements (shared by dense and sparse packing).
template <class Span>
void pack_block(Span blk, index_t tri, std::vector<real_t>& out) {
  if (tri == 0) {
    out.insert(out.end(), blk.begin(), blk.end());
    return;
  }
  for (index_t c = 0; c < tri; ++c)
    for (index_t r = c; r < tri; ++r)
      out.push_back(blk[static_cast<std::size_t>(r + c * tri)]);
}

/// Accumulates one block's packed elements from buf at pos; returns the
/// advanced position.
inline std::size_t add_block(std::span<real_t> blk, index_t tri,
                             std::span<const real_t> buf, std::size_t pos) {
  const std::size_t len = block_packed_elems(blk.size(), tri);
  SLU3D_CHECK(pos + len <= buf.size(), "reduction stream underflow");
  if (tri == 0) {
    for (std::size_t i = 0; i < len; ++i) blk[i] += buf[pos + i];
    return pos + len;
  }
  for (index_t c = 0; c < tri; ++c)
    for (index_t r = c; r < tri; ++r)
      blk[static_cast<std::size_t>(r + c * tri)] += buf[pos++];
  return pos;
}

template <class Access, class F>
std::size_t count_blocks(F& f, int s) {
  std::size_t n = 0;
  Access::for_each_block(f, s, [&](auto, index_t) { ++n; });
  return n;
}

}  // namespace detail

/// Sparse-packs supernode s: presence bitmap words, then present blocks.
/// Sender-side savings are recorded into `st`.
template <class Access, class F>
void pack_snode_sparse(F& f, int s, std::vector<real_t>& out,
                       sim::RankStats& st) {
  const std::size_t nb = detail::count_blocks<Access>(f, s);
  if (nb == 0) return;
  const std::size_t words = (nb + 63) / 64;
  const std::size_t base = out.size();
  out.resize(base + words, 0.0);
  std::uint64_t bits[64] = {};  // enough for 4096 blocks per supernode
  SLU3D_CHECK(words <= 64, "supernode has too many blocks for sparse packing");
  std::size_t i = 0;
  Access::for_each_block(f, s, [&](auto blk, index_t tri) {
    st.zred_blocks_total += 1;
    if (block_all_zero(blk, tri)) {
      st.zred_blocks_skipped += 1;
    } else {
      bits[i >> 6] |= std::uint64_t{1} << (i & 63);
      detail::pack_block(blk, tri, out);
    }
    ++i;
  });
  for (std::size_t w = 0; w < words; ++w)
    out[base + w] = std::bit_cast<real_t>(bits[w]);
}

/// Mirror of pack_snode_sparse: reads the bitmap, accumulates only the
/// blocks the sender included.
template <class Access>
std::size_t add_snode_sparse(typename Access::Factors& f, int s,
                             std::span<const real_t> buf, std::size_t pos) {
  const std::size_t nb = detail::count_blocks<Access>(f, s);
  if (nb == 0) return pos;
  const std::size_t words = (nb + 63) / 64;
  SLU3D_CHECK(pos + words <= buf.size(),
              "sparse reduction stream underflow (bitmap)");
  const std::size_t bmp = pos;
  pos += words;
  std::size_t i = 0;
  Access::for_each_block(f, s, [&](std::span<real_t> blk, index_t tri) {
    const auto word = std::bit_cast<std::uint64_t>(buf[bmp + (i >> 6)]);
    const bool present = (word >> (i & 63)) & 1;
    ++i;
    if (present) pos = detail::add_block(blk, tri, buf, pos);
  });
  return pos;
}

/// Runs Algorithm 1's level loop: per-level 2D factorization (injected) +
/// pairwise z-axis ancestor reduction. Collective over the 3D grid.
/// `factor_level(plane, nodes)` must factor `nodes` on the local 2D grid.
template <class Access, class FactorLevel>
void run_3d_levels(typename Access::Factors& F, sim::ProcessGrid3D& grid,
                   const ForestPartition& part, const ZRedOptions& opt,
                   int reduce_tag_base, FactorLevel&& factor_level) {
  validate_zred_options(opt);
  const BlockStructure& bs = F.structure();
  const int l = part.n_levels() - 1;
  const int pz = grid.pz();
  const bool sparse = opt.packing == ZRedPacking::Sparse;
  const bool targeted = opt.packing == ZRedPacking::Targeted;
  const auto chunk = static_cast<std::size_t>(opt.chunk_snodes);

  // Targeted mode: per-level RMA windows over the z line, created
  // collectively before the level loop (inactive ranks contribute empty
  // staging). A receiver's staging for a level is the dense stream of all
  // its ancestors at that level; chunk offsets within it are cumulative
  // dense lengths, which sender and receiver compute identically. The
  // vectors are sized once up front — windows and staging must not
  // relocate while deliveries are pending.
  std::vector<std::vector<real_t>> zstage;
  std::vector<sim::Window> zwin;
  if (targeted) {
    zstage.resize(static_cast<std::size_t>(l + 1));
    zwin.resize(static_cast<std::size_t>(l + 1));
    for (int lvl = l; lvl >= 1; --lvl) {
      const int step = 1 << (l - lvl);
      std::size_t mine = 0;
      if (pz % step == 0 && (pz / step) % 2 == 0) {
        for (int s = 0; s < bs.n_snodes(); ++s)
          if (part.level_of(s) < lvl && part.on_grid(s, pz))
            mine += packed_elems<Access>(F, s);
      }
      zstage[static_cast<std::size_t>(lvl)].assign(mine, 0.0);
      zwin[static_cast<std::size_t>(lvl)] = grid.zline().win_create(
          reduce_tag_base + lvl, zstage[static_cast<std::size_t>(lvl)],
          sim::CommPlane::Z);
    }
  }

  // Outstanding reduction chunks (async mode). A chunk is drained right
  // before the first level that factors one of its supernodes — until then
  // its transfer rides under the 2D factorization of deeper levels. In
  // targeted mode the chunk is a window delivery into `zstage[lvl]` at
  // [off, off+len) instead of a request with its own buffer.
  struct Pending {
    sim::Request req;
    std::vector<int> snodes;
    sim::WindowDelivery delivery;
    std::size_t off = 0, len = 0;
    int lvl = 0;
  };
  std::vector<Pending> outstanding;

  auto unpack_chunk = [&](std::span<const real_t> buf,
                          std::span<const int> snodes) {
    std::size_t pos = 0;
    for (const int s : snodes)
      pos = sparse ? add_snode_sparse<Access>(F, s, buf, pos)
                   : add_snode<Access>(F, s, buf, pos);
    SLU3D_CHECK(pos == buf.size(), "reduction chunk not fully consumed");
  };
  auto unpack_staged = [&](Pending& p) {
    // Waiting the delivery applies the scatter-accumulate (and any earlier
    // ones from the same origin, each into its own disjoint, pre-zeroed
    // region); the staged dense stream is then folded in exactly like a
    // dense wire chunk.
    p.delivery.wait();
    std::size_t pos = p.off;
    for (const int s : p.snodes)
      pos = add_snode<Access>(F, s, zstage[static_cast<std::size_t>(p.lvl)],
                              pos);
    SLU3D_CHECK(pos == p.off + p.len,
                "targeted reduction chunk not fully consumed");
  };
  auto drain = [&](auto&& keep_pending) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < outstanding.size(); ++i) {
      Pending& p = outstanding[i];
      bool keep = true;
      for (const int s : p.snodes) keep = keep && keep_pending(s);
      if (keep) {
        if (kept != i) outstanding[kept] = std::move(p);  // no self-move
        ++kept;
        continue;
      }
      if (targeted) {
        unpack_staged(p);
      } else {
        const std::vector<real_t> buf = p.req.take();
        unpack_chunk(buf, p.snodes);
      }
    }
    outstanding.resize(kept);
  };

  for (int lvl = l; lvl >= 0; --lvl) {
    const int step = 1 << (l - lvl);
    if (pz % step != 0) continue;  // this grid is inactive at this level

    // Chunks feeding this level's supernodes must be in before they are
    // factored; deeper chunks keep overlapping.
    if (opt.async)
      drain([&](int s) { return part.level_of(s) < lvl; });

    const std::vector<int> nodes = part.nodes_at(pz, lvl);
    factor_level(grid.plane(), nodes);

    if (lvl == 0) break;

    // Ancestor-Reduction: the (2k+1)-th active grid sends its copies of
    // every common-ancestor block to the (2k)-th, which accumulates them.
    const int k = pz / step;
    std::vector<int> ancestors;
    for (int s = 0; s < bs.n_snodes(); ++s)
      if (part.level_of(s) < lvl && part.on_grid(s, pz)) ancestors.push_back(s);

    // Both sides partition the ancestor list into the same chunks and skip
    // structurally empty ones symmetrically (async mode only; the blocking
    // path always exchanges one message per level).
    auto chunk_at = [&](std::size_t c0) {
      return std::span<const int>{ancestors}.subspan(
          c0, std::min(chunk, ancestors.size() - c0));
    };
    auto dense_elems_of = [&](std::span<const int> snodes) {
      std::size_t n = 0;
      for (const int s : snodes) n += packed_elems<Access>(F, s);
      return n;
    };

    // Targeted mode chunks the level identically in async mode and treats
    // the whole level as one chunk when blocking; both sides derive the
    // same chunk list and dense offsets, so the scatter-accumulates and
    // their expected deliveries pair up without any handshake.
    const std::size_t tchunk =
        opt.async ? chunk : std::max<std::size_t>(ancestors.size(), 1);

    if (k % 2 == 1) {
      sim::RankStats& st = grid.zline().stats();
      if (targeted) {
        // Everything received so far must be folded into the outgoing
        // contributions first.
        if (opt.async) drain([](int) { return false; });
        sim::Window& win = zwin[static_cast<std::size_t>(lvl)];
        std::vector<real_t> buf;
        std::vector<std::uint64_t> bits;
        std::vector<real_t> packed;
        std::size_t chunk_off = 0;
        for (std::size_t c0 = 0; c0 < ancestors.size(); c0 += tchunk) {
          const auto snodes = std::span<const int>{ancestors}.subspan(
              c0, std::min(tchunk, ancestors.size() - c0));
          const std::size_t dense_len = dense_elems_of(snodes);
          if (dense_len == 0) continue;  // peer skips the matching expect
          buf.clear();
          for (const int s : snodes) {
            Access::for_each_block(F, s, [&](std::span<real_t> blk,
                                             index_t tri) {
              st.zred_blocks_total += 1;
              if (block_all_zero(blk, tri)) st.zred_blocks_skipped += 1;
            });
            pack_snode<Access>(F, s, buf);
          }
          bits.assign((dense_len + 63) / 64, 0);
          packed.clear();
          for (std::size_t i = 0; i < buf.size(); ++i)
            if (buf[i] != 0.0) {
              bits[i / 64] |= std::uint64_t{1} << (i % 64);
              packed.push_back(buf[i]);
            }
          st.zred_bytes_saved +=
              (static_cast<offset_t>(dense_len) -
               static_cast<offset_t>(bits.size() + packed.size())) *
              static_cast<offset_t>(sizeof(real_t));
          win.scatter_accumulate(pz - step, chunk_off, dense_len, bits,
                                 packed);
          chunk_off += dense_len;
        }
      } else if (opt.async) {
        // The outgoing copies must include everything received so far.
        drain([](int) { return false; });
        std::vector<real_t> buf;
        for (std::size_t c0 = 0; c0 < ancestors.size(); c0 += chunk) {
          const auto snodes = chunk_at(c0);
          const std::size_t dense_len = dense_elems_of(snodes);
          if (dense_len == 0) continue;  // peer skips the matching irecv
          buf.clear();
          for (const int s : snodes) {
            if (sparse)
              pack_snode_sparse<Access>(F, s, buf, st);
            else
              pack_snode<Access>(F, s, buf);
          }
          if (sparse)
            st.zred_bytes_saved +=
                (static_cast<offset_t>(dense_len) -
                 static_cast<offset_t>(buf.size())) *
                static_cast<offset_t>(sizeof(real_t));
          grid.zline().isend(pz - step, reduce_tag_base + lvl, buf,
                             sim::CommPlane::Z);
        }
      } else {
        std::vector<real_t> buf;
        const std::size_t dense_len = dense_elems_of(ancestors);
        for (const int s : ancestors) {
          if (sparse)
            pack_snode_sparse<Access>(F, s, buf, st);
          else
            pack_snode<Access>(F, s, buf);
        }
        if (sparse)
          st.zred_bytes_saved += (static_cast<offset_t>(dense_len) -
                                  static_cast<offset_t>(buf.size())) *
                                 static_cast<offset_t>(sizeof(real_t));
        grid.zline().send(pz - step, reduce_tag_base + lvl, buf,
                          sim::CommPlane::Z);
      }
    } else {
      if (targeted) {
        sim::Window& win = zwin[static_cast<std::size_t>(lvl)];
        std::span<real_t> stage{zstage[static_cast<std::size_t>(lvl)]};
        std::size_t chunk_off = 0;
        for (std::size_t c0 = 0; c0 < ancestors.size(); c0 += tchunk) {
          const auto snodes = std::span<const int>{ancestors}.subspan(
              c0, std::min(tchunk, ancestors.size() - c0));
          const std::size_t dense_len = dense_elems_of(snodes);
          if (dense_len == 0) continue;
          // Zero the landing region before registering the op — the
          // accumulate can only be applied during a wait, which always
          // comes after this expect.
          std::fill_n(stage.begin() + static_cast<std::ptrdiff_t>(chunk_off),
                      dense_len, 0.0);
          sim::WindowDelivery d = win.expect(pz + step);
          Pending p;
          p.snodes.assign(snodes.begin(), snodes.end());
          p.delivery = d;
          p.off = chunk_off;
          p.len = dense_len;
          p.lvl = lvl;
          if (opt.async) {
            outstanding.push_back(std::move(p));
          } else {
            unpack_staged(p);
          }
          chunk_off += dense_len;
        }
      } else if (opt.async) {
        for (std::size_t c0 = 0; c0 < ancestors.size(); c0 += chunk) {
          const auto snodes = chunk_at(c0);
          if (dense_elems_of(snodes) == 0) continue;
          Pending p;
          p.req = grid.zline().irecv(pz + step, reduce_tag_base + lvl,
                                     sim::CommPlane::Z);
          p.snodes.assign(snodes.begin(), snodes.end());
          outstanding.push_back(std::move(p));
        }
      } else {
        const auto buf = grid.zline().recv(pz + step, reduce_tag_base + lvl,
                                           sim::CommPlane::Z);
        unpack_chunk(buf, ancestors);
      }
    }
  }
  SLU3D_CHECK(outstanding.empty(), "undrained reduction chunks");
}

}  // namespace slu3d::pipeline
