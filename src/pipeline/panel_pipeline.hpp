// The shared 2D panel-pipeline engine. One supernode flows through
//   panel_phase:  diagonal factorization + diagonal broadcast + panel
//                 solves (variant policy), then panel broadcast into a
//                 stash slot (engine),
//   schur_phase:  drain of the outstanding broadcasts (engine) + the
//                 owner-only-update Schur complement (variant policy per
//                 block pair),
// pipelined through the elimination-tree lookahead window of §II-F: panel
// phases of up to `lookahead` future supernodes are issued as soon as all
// their updaters have completed, so in async mode their broadcasts overlap
// earlier supernodes' Schur updates.
//
// The engine owns everything the LU and Cholesky drivers used to duplicate:
// the lookahead schedule, the stash slot pool (flat storage borrowed from
// the per-rank scratch arena), entry layout, the non-blocking post/drain
// protocol, and the deferred-relay bookkeeping the symmetric variant needs
// for its transposed-role re-broadcasts. A VariantPolicy supplies only the
// numeric identity of the variant:
//
//   using Factors = ...;            // Dist2dFactors or DistCholFactors
//   static constexpr bool kSymmetric;   // triangle-only Schur pairs
//   static constexpr int kRowPanelOp;   // tag op of the row-role bcast
//   factor_and_solve(eng, k, ns)    // diag factor/bcast + panel solves
//   row_payload(F, k, a)            // owner's row-role (L) block data
//   post_col_entries(eng, stash, k, ns)  // column-role broadcast pattern
//   wants_target(F, bi, bj)         // is the Schur target materialized?
//   schur_pair(eng, bi, mi, ld, bj, mj, cd, ns, out)  // GEMM + scatter
//
// Tags, post order, and payload layout are exactly the historical drivers',
// so dense-mode per-rank byte/message counters are unchanged (pinned by
// PipelineGolden.* in tests/test_pipeline.cpp).
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "numeric/kernel_scratch.hpp"
#include "pipeline/options.hpp"
#include "simmpi/process_grid.hpp"
#include "support/check.hpp"
#include "symbolic/block_structure.hpp"

namespace slu3d::pipeline {

/// One broadcast panel block staged for the Schur phase: `m*ns` (row role)
/// or `ns*m` (column role) values at `offset` in the stash's flat storage.
struct StashEntry {
  int panel_idx;
  std::size_t offset;
  index_t m;
};

/// One posted non-blocking operation, drained in post order at the Schur
/// phase. `relay_pi < 0` is a plain outstanding request; `relay_pi >= 0` is
/// the symmetric variant's deferred transposed-role re-broadcast: the relay
/// rank copies its row-role payload (offset `row_off`, an earlier op) to
/// `col_off` and re-broadcasts it only at the drain, never as a blocking
/// wait inside panel_phase (which could deadlock against peers whose
/// forwarding waits also run at their drains).
struct PanelAsyncOp {
  sim::Request req;
  int relay_pi = -1;
  std::size_t row_off = 0, col_off = 0, elems = 0;
};

/// Broadcast panels of one in-flight supernode, stashed until its Schur
/// update has been applied. Entries are appended in ascending panel_idx
/// order; storage is one flat buffer borrowed from the per-rank scratch
/// pool, so the look-ahead hot path performs no per-supernode node
/// allocations.
struct PanelStash {
  int k = -1;  ///< supernode, or -1 when the slot is free
  std::vector<StashEntry> row_entries, col_entries;
  std::vector<real_t> storage;
  std::vector<PanelAsyncOp> ops;

  const StashEntry* find_row_entry(int pi) const {
    for (const StashEntry& e : row_entries)
      if (e.panel_idx == pi) return &e;
    return nullptr;
  }
};

template <class Policy>
class PanelEngine {
 public:
  using Factors = typename Policy::Factors;

  PanelEngine(Factors& F, sim::ProcessGrid2D& grid, const PanelOptions& opt)
      : F_(F), g_(grid), bs_(F.structure()), opt_(opt) {
    validate_panel_options(opt_);
  }

  /// Factorizes the supernodes in `snodes` (ascending elimination order).
  void run(std::span<const int> snodes) {
    // Position of each supernode in the list and the latest position of
    // any updater, for the lookahead schedule. All ranks compute the same
    // schedule from the (replicated) symbolic structure.
    std::vector<int> last_upd_pos(static_cast<std::size_t>(bs_.n_snodes()), -1);
    for (int idx = 0; idx < static_cast<int>(snodes.size()); ++idx) {
      const int k = snodes[static_cast<std::size_t>(idx)];
      SLU3D_CHECK(idx == 0 || snodes[static_cast<std::size_t>(idx - 1)] < k,
                  "snodes must be ascending");
      for (const PanelBlock& blk : bs_.lpanel(k))
        last_upd_pos[static_cast<std::size_t>(blk.snode)] = idx;
    }

    std::vector<bool> fired(static_cast<std::size_t>(bs_.n_snodes()), false);
    const int n = static_cast<int>(snodes.size());
    for (int idx = 0; idx < n; ++idx) {
      const int limit = std::min(n - 1, idx + opt_.lookahead);
      for (int w = idx; w <= limit; ++w) {
        const int j = snodes[static_cast<std::size_t>(w)];
        if (!fired[static_cast<std::size_t>(j)] &&
            last_upd_pos[static_cast<std::size_t>(j)] < idx) {
          panel_phase(j);
          fired[static_cast<std::size_t>(j)] = true;
        }
      }
      schur_phase(snodes[static_cast<std::size_t>(idx)]);
    }
  }

  Factors& factors() { return F_; }
  sim::ProcessGrid2D& grid() { return g_; }
  const BlockStructure& structure() const { return bs_; }
  const PanelOptions& options() const { return opt_; }
  int tag(int k, int op) const { return opt_.tag_base + 8 * k + op; }

 private:
  /// Claims a free stash slot (at most lookahead+1 are ever live, so the
  /// linear scans here are trivial).
  PanelStash& stash_alloc(int k) {
    for (PanelStash& s : stash_)
      if (s.k < 0) {
        s.k = k;
        return s;
      }
    stash_.emplace_back();
    stash_.back().k = k;
    return stash_.back();
  }

  PanelStash* stash_find(int k) {
    for (PanelStash& s : stash_)
      if (s.k == k) return &s;
    return nullptr;
  }

  void panel_phase(int k) {
    const index_t ns = bs_.snode_size(k);
    if (ns == 0) return;
    PanelStash& stash = stash_alloc(k);

    // Diagonal factorization, diagonal broadcast, and panel solves are the
    // variant's identity (LU: GETRF + row/col diag bcast + L/U TRSMs;
    // Cholesky: POTRF + column diag bcast + L TRSM). The diagonal is
    // consumed by the panel solves immediately, so those broadcasts stay
    // blocking even in async mode.
    Policy::factor_and_solve(*this, k, ns, diag_buf_);

    // Panel broadcast. A row-role entry (block row a with a % Px == px)
    // travels along this process row; a column-role entry (a % Py == py)
    // travels along a process column (the variant decides which one and
    // how). Empty (ragged) blocks are skipped outright instead of
    // broadcasting 0-byte payloads. First lay out the flat stash storage —
    // spans handed to ibcast must stay put — then post the broadcasts.
    const auto panel = bs_.lpanel(k);
    std::size_t total = 0;
    for (int pi = 0; pi < static_cast<int>(panel.size()); ++pi) {
      const PanelBlock& blk = panel[static_cast<std::size_t>(pi)];
      const index_t m = blk.n_rows();
      if (m == 0) continue;
      const auto elems =
          static_cast<std::size_t>(m) * static_cast<std::size_t>(ns);
      if (blk.snode % g_.Px() == g_.px()) {
        stash.row_entries.push_back({pi, total, m});
        total += elems;
      }
      if (blk.snode % g_.Py() == g_.py()) {
        stash.col_entries.push_back({pi, total, m});
        total += elems;
      }
    }
    stash.storage = dense::KernelScratch::per_rank().borrow();
    stash.storage.resize(total, 0.0);

    // Row role: root is the owning process column's representative; the
    // payload is the owner's L block. Identical for both variants.
    const int pyk = k % g_.Py();
    const bool in_pcol = g_.py() == pyk;
    for (const StashEntry& e : stash.row_entries) {
      const PanelBlock& blk = panel[static_cast<std::size_t>(e.panel_idx)];
      const std::span<real_t> buf{
          stash.storage.data() + e.offset,
          static_cast<std::size_t>(e.m) * static_cast<std::size_t>(ns)};
      if (in_pcol) {
        const std::span<const real_t> src =
            Policy::row_payload(F_, k, blk.snode);
        SLU3D_CHECK(src.size() == buf.size(), "owner missing L block");
        std::copy(src.begin(), src.end(), buf.begin());
      }
      if (opt_.async)
        stash.ops.push_back({g_.row().ibcast(pyk, tag(k, Policy::kRowPanelOp),
                                             buf, sim::CommPlane::XY),
                             -1, 0, 0, 0});
      else
        g_.row().bcast(pyk, tag(k, Policy::kRowPanelOp), buf,
                       sim::CommPlane::XY);
    }

    // Column role: LU broadcasts the owner's U blocks down the diagonal
    // owner's process column; the symmetric variant relays the transposed
    // L payload through the (a%Px, a%Py) rank, possibly deferred.
    Policy::post_col_entries(*this, stash, k, ns);
  }

  void schur_phase(int k) {
    const index_t ns = bs_.snode_size(k);
    if (ns == 0) return;
    PanelStash* stash = stash_find(k);
    SLU3D_CHECK(stash != nullptr, "panel not factored before Schur phase");

    // Drain the outstanding broadcasts only now, in post order: every
    // update between the panel's post and this point has overlapped the
    // transfer. Deferred relay roots forward as soon as their row-role
    // payload (an earlier op) is in; the root post forwards to the column
    // subtree immediately and completes.
    const auto panel = bs_.lpanel(k);
    for (PanelAsyncOp& op : stash->ops) {
      if (op.relay_pi < 0) {
        op.req.wait();
        continue;
      }
      std::copy_n(stash->storage.data() + op.row_off, op.elems,
                  stash->storage.data() + op.col_off);
      const PanelBlock& blk = panel[static_cast<std::size_t>(op.relay_pi)];
      const std::span<real_t> buf{stash->storage.data() + op.col_off,
                                  op.elems};
      g_.col().ibcast(blk.snode % g_.Px(), tag(k, Policy::kColPanelOp), buf,
                      sim::CommPlane::XY);
    }
    stash->ops.clear();

    dense::KernelScratch& ws = dense::KernelScratch::per_rank();
    for (const StashEntry& le : stash->row_entries) {
      const PanelBlock& bi = panel[static_cast<std::size_t>(le.panel_idx)];
      const index_t mi = le.m;
      const real_t* ldata = stash->storage.data() + le.offset;
      for (const StashEntry& ue : stash->col_entries) {
        const PanelBlock& bj = panel[static_cast<std::size_t>(ue.panel_idx)];
        if constexpr (Policy::kSymmetric) {
          if (bj.snode > bi.snode) break;  // lower triangle only
        }
        if (!Policy::wants_target(F_, bi.snode, bj.snode)) continue;
        const index_t mj = ue.m;
        const real_t* cdata = stash->storage.data() + ue.offset;
        auto scratch = ws.stage_zero(static_cast<std::size_t>(mi) *
                                     static_cast<std::size_t>(mj));
        Policy::schur_pair(*this, bi, mi, ldata, bj, mj, cdata, ns, scratch);
      }
    }
    dense::KernelScratch::per_rank().recycle(std::move(stash->storage));
    stash->storage = std::vector<real_t>{};
    stash->row_entries.clear();
    stash->col_entries.clear();
    stash->k = -1;
  }

  Factors& F_;
  sim::ProcessGrid2D& g_;
  const BlockStructure& bs_;
  PanelOptions opt_;
  std::vector<PanelStash> stash_;  ///< slot pool, <= lookahead+1 live slots
  std::vector<real_t> diag_buf_;   ///< reusable diagonal broadcast buffer
};

}  // namespace slu3d::pipeline
