// The shared 2D panel-pipeline engine. One supernode flows through
//   panel_phase:  diagonal factorization + diagonal broadcast + panel
//                 solves (variant policy), then panel broadcast into a
//                 stash slot (engine),
//   schur_phase:  drain of the outstanding broadcasts (engine) + the
//                 owner-only-update Schur complement (variant policy per
//                 block pair),
// pipelined through the elimination-tree lookahead window of §II-F: panel
// phases of up to `lookahead` future supernodes are issued as soon as all
// their updaters have completed, so in async mode their broadcasts overlap
// earlier supernodes' Schur updates.
//
// The engine owns everything the LU and Cholesky drivers used to duplicate:
// the lookahead schedule, the stash slot pool (flat storage borrowed from
// the per-rank scratch arena), entry layout, the non-blocking post/drain
// protocol, and the deferred-relay bookkeeping the symmetric variant needs
// for its transposed-role re-broadcasts. A VariantPolicy supplies only the
// numeric identity of the variant:
//
//   using Factors = ...;            // Dist2dFactors or DistCholFactors
//   static constexpr bool kSymmetric;   // triangle-only Schur pairs
//   static constexpr int kRowPanelOp;   // tag op of the row-role bcast
//   factor_and_solve(eng, k, ns)    // diag factor/bcast + panel solves
//   row_payload(F, k, a)            // owner's row-role (L) block data
//   post_col_entries(eng, stash, k, ns)  // column-role broadcast pattern
//   wants_target(F, bi, bj)         // is the Schur target materialized?
//   schur_pair(eng, bi, mi, ld, bj, mj, cd, ns, out)  // GEMM + scatter
//
// Tags, post order, and payload layout are exactly the historical drivers',
// so dense-mode per-rank byte/message counters are unchanged (pinned by
// PipelineGolden.* in tests/test_pipeline.cpp).
//
// PanelPacking::Sparse (opt-in) replaces each role's dense payloads with a
// two-phase wire format (see DESIGN.md "Sparse panel packing"):
//   phase 1  one *blocking* presence-frame broadcast per supernode per
//            role, from the role's data root along the role's comm: the
//            concatenated per-entry scalar bitmaps (1 bit per scalar of the
//            dense m x ns block, 64 bits per real_t word). After it, every
//            rank of the comm knows each entry's packed length.
//   phase 2  the usual per-entry broadcasts, but carrying only the present
//            scalars; entries whose payload is entirely zero send nothing.
// Stash storage keeps the *dense* layout and offsets; a packed payload
// lands at the entry's offset and is expanded in place (backward, so the
// packed prefix never overruns its dense positions): on the root right
// after the post (ibcast snapshots the payload at post time), on receivers
// right after the drain wait (after the request's subtree forwarding).
//
// PanelPacking::Targeted (opt-in) replaces each role's broadcasts with
// one-sided RMA delivery (see DESIGN.md "Targeted one-sided delivery"):
// the data root computes every peer's block *footprint* — the entries that
// peer's Schur pairs (or, symmetric variant, relay duties) actually read —
// from the replicated symbolic structure and issues ONE footprint-sized
// put per peer into the role's window (per-entry bitmap words + present
// scalars, concatenated). Peers with an empty footprint get no message at
// all; both sides evaluate the same symbolic predicate, so no handshake or
// presence frame travels. Entries are never pruned, so the Schur pair set,
// charged flops, and FP order are identical to Dense — factors stay
// bitwise identical — while the wire volume is strictly below Sparse
// (footprint subset of all entries, and no broadcast frame).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "numeric/dense_kernels.hpp"
#include "numeric/kernel_scratch.hpp"
#include "pipeline/options.hpp"
#include "simmpi/process_grid.hpp"
#include "support/check.hpp"
#include "symbolic/block_structure.hpp"
#include "threads/thread_pool.hpp"

namespace slu3d::pipeline {

/// Tag ops of the sparse-mode presence-frame broadcasts. Ops 0-3 are taken
/// by the variants' diagonal/panel broadcasts; the tag stride is 8 per
/// supernode, so 4 and 5 are free in both variants.
inline constexpr int kRowFrameOp = 4;  ///< row-role frame, along the row comm
inline constexpr int kColFrameOp = 5;  ///< col-role frame, along the col comm

/// Window tags of the targeted-mode RMA windows (one per role per engine
/// run, created collectively at run() entry). These live in the runtime's
/// separate RMA tag namespace, so they cannot collide with the per-snode
/// broadcast tags; the offsets merely keep the two roles' windows apart.
inline constexpr int kRowWinTag = 6;  ///< row-role window, over the row comm
inline constexpr int kColWinTag = 7;  ///< col-role window, over the col comm

/// One broadcast panel block staged for the Schur phase: `m*ns` (row role)
/// or `ns*m` (column role) values at `offset` in the stash's flat storage.
/// Under PanelPacking::Sparse the entry also carries its presence-bitmap
/// location (`bits_off`, in 64-bit words into the role's bits vector) and
/// the number of present scalars actually on the wire (`packed`); the
/// storage region is still the dense `offset`/`m` layout after expansion.
/// Under PanelPacking::Targeted, `in_footprint` marks the entries this
/// rank actually reads (always all of them on the role's root): the put
/// wire carries exactly the marked entries, in entry order.
struct StashEntry {
  int panel_idx;
  std::size_t offset;
  index_t m;
  std::size_t bits_off = 0;
  std::size_t packed = 0;
  bool in_footprint = false;
};

/// One posted non-blocking operation, drained in post order at the Schur
/// phase. `relay_pi < 0` is a plain outstanding request; `relay_pi >= 0` is
/// the symmetric variant's deferred transposed-role re-broadcast: the relay
/// rank copies its row-role payload (offset `row_off`, an earlier op) to
/// `col_off` and re-broadcasts it only at the drain, never as a blocking
/// wait inside panel_phase (which could deadlock against peers whose
/// forwarding waits also run at their drains). `exp_role >= 0` marks a
/// sparse-mode receiver request whose entry (`row_entries[exp_idx]` for
/// role 0, `col_entries[exp_idx]` for role 1) must be expanded from packed
/// to dense right after the wait. A valid `delivery` marks a targeted-mode
/// window delivery instead: the drain waits it and parses the landed
/// footprint put of the role in `exp_role` (all marked entries at once).
struct PanelAsyncOp {
  sim::Request req;
  int relay_pi = -1;
  std::size_t row_off = 0, col_off = 0, elems = 0;
  int exp_role = -1;
  int exp_idx = -1;
  sim::WindowDelivery delivery;
};

/// Broadcast panels of one in-flight supernode, stashed until its Schur
/// update has been applied. Entries are appended in ascending panel_idx
/// order; storage is one flat buffer borrowed from the per-rank scratch
/// pool, so the look-ahead hot path performs no per-supernode node
/// allocations. `row_bits`/`col_bits` hold the decoded presence bitmaps in
/// sparse mode (empty in dense mode or when the role has no entries).
struct PanelStash {
  int k = -1;  ///< supernode, or -1 when the slot is free
  std::vector<StashEntry> row_entries, col_entries;
  std::vector<real_t> storage;
  std::vector<PanelAsyncOp> ops;
  std::vector<std::uint64_t> row_bits, col_bits;

  const StashEntry* find_row_entry(int pi) const {
    for (const StashEntry& e : row_entries)
      if (e.panel_idx == pi) return &e;
    return nullptr;
  }
};

template <class Policy>
class PanelEngine {
 public:
  using Factors = typename Policy::Factors;

  PanelEngine(Factors& F, sim::ProcessGrid2D& grid, const PanelOptions& opt)
      : F_(F), g_(grid), bs_(F.structure()), opt_(opt) {
    validate_panel_options(opt_);
    // Attach this rank thread's compute pool (created lazily, reused across
    // engines — one per 3D level — and resized only when the option
    // changes). All communication stays on this thread; the pool only ever
    // executes the packing / GEMM / scatter closures below.
    dense::ParallelKernels::rank_local(threads::resolve_threads(opt_.threads));
  }

  /// Factorizes the supernodes in `snodes` (ascending elimination order).
  void run(std::span<const int> snodes) {
    // Targeted mode opens its per-run RMA windows first — a collective
    // over the row (and, asymmetric variant, column) communicators, so it
    // must happen on every grid rank before any supernode traffic.
    if (targeted_packing()) create_targeted_windows(snodes);
    // Position of each supernode in the list and the latest position of
    // any updater, for the lookahead schedule. All ranks compute the same
    // schedule from the (replicated) symbolic structure.
    std::vector<int> last_upd_pos(static_cast<std::size_t>(bs_.n_snodes()), -1);
    for (int idx = 0; idx < static_cast<int>(snodes.size()); ++idx) {
      const int k = snodes[static_cast<std::size_t>(idx)];
      SLU3D_CHECK(idx == 0 || snodes[static_cast<std::size_t>(idx - 1)] < k,
                  "snodes must be ascending");
      for (const PanelBlock& blk : bs_.lpanel(k))
        last_upd_pos[static_cast<std::size_t>(blk.snode)] = idx;
    }

    std::vector<bool> fired(static_cast<std::size_t>(bs_.n_snodes()), false);
    const int n = static_cast<int>(snodes.size());
    for (int idx = 0; idx < n; ++idx) {
      const int limit = std::min(n - 1, idx + opt_.lookahead);
      for (int w = idx; w <= limit; ++w) {
        const int j = snodes[static_cast<std::size_t>(w)];
        if (!fired[static_cast<std::size_t>(j)] &&
            last_upd_pos[static_cast<std::size_t>(j)] < idx) {
          panel_phase(j);
          fired[static_cast<std::size_t>(j)] = true;
        }
      }
      schur_phase(snodes[static_cast<std::size_t>(idx)]);
    }
  }

  Factors& factors() { return F_; }
  sim::ProcessGrid2D& grid() { return g_; }
  const BlockStructure& structure() const { return bs_; }
  const PanelOptions& options() const { return opt_; }
  int tag(int k, int op) const { return opt_.tag_base + 8 * k + op; }
  bool sparse_packing() const { return opt_.packing == PanelPacking::Sparse; }
  bool targeted_packing() const {
    return opt_.packing == PanelPacking::Targeted;
  }

  /// 64-bit words needed for a scalar presence bitmap over `elems` values.
  static constexpr std::size_t bitmap_words(std::size_t elems) {
    return (elems + 63) / 64;
  }

  /// Sparse-mode phase 1 for one role: the root computes the per-entry
  /// scalar presence bitmaps from its payloads, every rank of `comm`
  /// receives them in one blocking frame broadcast (bitmap words bit_cast
  /// through real_t, same comm and root as the role's data broadcasts),
  /// and each entry's `bits_off`/`packed` are filled in on all ranks —
  /// after which packed data-broadcast lengths are known everywhere.
  /// Savings are accounted on the root only (once per payload, like the
  /// z-reduction counters). With `prune_absent`, entries whose payload is
  /// entirely zero are erased — their data broadcast *and* their Schur
  /// pairs disappear (sound: all-zero panels contribute nothing). Without
  /// it (the symmetric variant, whose relay lookups and transposed role
  /// need every entry), such entries stay but their dense storage region is
  /// zero-filled here, since no data message will overwrite it.
  template <class PayloadFn>
  void exchange_presence_frame(sim::Comm& comm, int root, int frame_tag,
                               PanelStash& stash,
                               std::vector<StashEntry>& entries,
                               std::vector<std::uint64_t>& bits, bool is_root,
                               index_t ns, PayloadFn&& payload,
                               bool prune_absent) {
    bits.clear();
    if (entries.empty()) return;
    std::size_t total_words = 0, dense_scalars = 0;
    for (StashEntry& e : entries) {
      const auto elems =
          static_cast<std::size_t>(e.m) * static_cast<std::size_t>(ns);
      e.bits_off = total_words;
      total_words += bitmap_words(elems);
      dense_scalars += elems;
    }
    bits.assign(total_words, 0);
    if (is_root) {
      // Each entry's bitmap occupies its own word range (bits_off is
      // word-aligned per entry), so the per-entry builds write disjoint
      // words and fan out across the pool.
      threads::parallel_for(
          static_cast<std::ptrdiff_t>(entries.size()),
          [&](std::ptrdiff_t t, int) {
            StashEntry& e = entries[static_cast<std::size_t>(t)];
            const std::span<const real_t> src = payload(e);
            SLU3D_CHECK(src.size() == static_cast<std::size_t>(e.m) *
                                          static_cast<std::size_t>(ns),
                        "panel payload size mismatch");
            for (std::size_t i = 0; i < src.size(); ++i)
              if (src[i] != 0.0)
                bits[e.bits_off + i / 64] |= std::uint64_t{1} << (i % 64);
          });
    }
    frame_buf_.resize(total_words);
    for (std::size_t w = 0; w < total_words; ++w)
      frame_buf_[w] = std::bit_cast<real_t>(bits[w]);
    comm.bcast(root, frame_tag, frame_buf_, sim::CommPlane::XY);
    if (!is_root)
      for (std::size_t w = 0; w < total_words; ++w)
        bits[w] = std::bit_cast<std::uint64_t>(frame_buf_[w]);
    std::size_t packed_scalars = 0, absent_entries = 0;
    for (StashEntry& e : entries) {
      const auto elems =
          static_cast<std::size_t>(e.m) * static_cast<std::size_t>(ns);
      std::size_t n_present = 0;
      for (std::size_t w = 0; w < bitmap_words(elems); ++w)
        n_present += static_cast<std::size_t>(std::popcount(bits[e.bits_off + w]));
      e.packed = n_present;
      packed_scalars += n_present;
      if (n_present == 0) ++absent_entries;
    }
    // A single-member comm broadcasts nothing (the role's data stays
    // local), so there is no wire volume to save — don't book any.
    if (is_root && comm.size() > 1) {
      sim::RankStats& st = comm.stats();
      st.panel_dense_bytes +=
          static_cast<offset_t>(dense_scalars * sizeof(real_t));
      st.panel_saved_bytes +=
          static_cast<offset_t>(dense_scalars * sizeof(real_t)) -
          static_cast<offset_t>((packed_scalars + total_words) * sizeof(real_t));
      st.panel_saved_msgs += static_cast<offset_t>(absent_entries);
    }
    if (prune_absent)
      std::erase_if(entries, [](const StashEntry& e) { return e.packed == 0; });
    else
      for (const StashEntry& e : entries)
        if (e.packed == 0)
          std::fill_n(stash.storage.data() + e.offset,
                      static_cast<std::size_t>(e.m) * static_cast<std::size_t>(ns),
                      0.0);
  }

  /// Packs the present scalars of `src` (per the bitmap at `bits_off`) into
  /// the head of `dst`. The caller (a role root) computed the bitmap from
  /// the same payload, so exactly `packed` scalars are written.
  static void pack_present(std::span<const real_t> src,
                           const std::vector<std::uint64_t>& bits,
                           std::size_t bits_off, real_t* dst) {
    std::size_t p = 0;
    for (std::size_t i = 0; i < src.size(); ++i)
      if ((bits[bits_off + i / 64] >> (i % 64)) & 1) dst[p++] = src[i];
  }

  /// Expands a packed entry in place: the `packed` present scalars at the
  /// head of the entry's storage region move backward to their dense
  /// positions, absent positions zero-filled. In place is safe because the
  /// packed read index never exceeds the dense write index.
  void expand_entry(PanelStash& stash, const StashEntry& e,
                    const std::vector<std::uint64_t>& bits, index_t ns) const {
    const auto elems =
        static_cast<std::size_t>(e.m) * static_cast<std::size_t>(ns);
    real_t* buf = stash.storage.data() + e.offset;
    std::size_t p = e.packed;
    for (std::size_t d = elems; d-- > 0;)
      buf[d] = ((bits[e.bits_off + d / 64] >> (d % 64)) & 1) ? buf[--p] : 0.0;
  }

  /// True if the row-role entry for block row `bi_snode` is read by the
  /// row-comm peer at rank `peer_py`: either one of that peer's Schur
  /// pairs references it (the peer's column-role entries are the panel
  /// blocks on its process column), or — symmetric variant — the peer is
  /// the entry's transposed-role relay. Purely symbolic (panel structure
  /// plus the grid-replicated wants_snode mask), so the data root and the
  /// peer evaluate it identically without any handshake.
  bool row_entry_needed(std::span<const PanelBlock> panel, int bi_snode,
                        int peer_py) const {
    if constexpr (Policy::kSymmetric) {
      if (bi_snode % g_.Py() == peer_py) return true;  // transposed relay
    }
    for (const PanelBlock& bj : panel) {
      if constexpr (Policy::kSymmetric) {
        if (bj.snode > bi_snode) break;  // ascending panel; lower triangle
      }
      if (bj.n_rows() == 0 || bj.snode % g_.Py() != peer_py) continue;
      if (Policy::wants_target(F_, bi_snode, bj.snode)) return true;
    }
    return false;
  }

  /// Column-role analogue (asymmetric variant only): true if the entry for
  /// block column `bj_snode` is read by a Schur pair of the col-comm peer
  /// at rank `peer_px` (whose row-role entries are the panel blocks on its
  /// process row).
  bool col_entry_needed(std::span<const PanelBlock> panel, int bj_snode,
                        int peer_px) const {
    for (const PanelBlock& bi : panel) {
      if (bi.n_rows() == 0 || bi.snode % g_.Px() != peer_px) continue;
      if (Policy::wants_target(F_, bi.snode, bj_snode)) return true;
    }
    return false;
  }

  bool entry_needed(std::span<const PanelBlock> panel, int snode, int role,
                    int peer) const {
    return role == 0 ? row_entry_needed(panel, snode, peer)
                     : col_entry_needed(panel, snode, peer);
  }

  /// Targeted-mode replacement for one role's broadcasts. The data root
  /// fills its dense stash storage locally, builds one bitmap + packed
  /// cache over all entries, and issues one put per peer whose footprint
  /// is non-empty — the concatenation, in entry order, of [bitmap words |
  /// present scalars] for exactly the entries that peer reads. Peers
  /// register the put with Window::expect (the window's per-origin
  /// non-overtaking keeps slot contents intact until the matching wait)
  /// and parse it into dense storage at the wait: inline here when
  /// blocking, at the Schur drain when async. Savings are booked on the
  /// root against the dense-equivalent volume; because put headers are
  /// uncharged and no frame travels, the accounting identity
  ///   dense_equivalent - wire == saved
  /// holds byte-exactly (and message-exactly) per role per supernode.
  template <class PayloadFn>
  void targeted_role(PanelStash& stash, int role, int k, index_t ns,
                     std::span<const PanelBlock> panel, PayloadFn&& payload) {
    std::vector<StashEntry>& entries =
        role == 0 ? stash.row_entries : stash.col_entries;
    if (entries.empty()) return;  // comm-uniform: entries depend on px/py only
    sim::Comm& comm = role == 0 ? g_.row() : g_.col();
    sim::Window& win = role == 0 ? row_win_ : col_win_;
    const int root = role == 0 ? k % g_.Py() : k % g_.Px();
    const std::size_t stride = role == 0 ? row_stride_ : col_stride_;
    const std::size_t slot = static_cast<std::size_t>(
        snode_pos_[static_cast<std::size_t>(k)] % n_slots_);
    if (comm.rank() != root) {
      bool any = false;
      for (StashEntry& e : entries) {
        const int s = panel[static_cast<std::size_t>(e.panel_idx)].snode;
        e.in_footprint = entry_needed(panel, s, role, comm.rank());
        any = any || e.in_footprint;
      }
      if (!any) return;  // empty footprint: the root sends nothing either
      sim::WindowDelivery d = win.expect(root);
      if (opt_.async) {
        PanelAsyncOp op;
        op.exp_role = role;
        op.delivery = d;
        stash.ops.push_back(std::move(op));
      } else {
        d.wait();
        parse_targeted(stash, role, ns);
      }
      return;
    }
    // Root: dense local fill + per-entry bitmap/packed cache. Entries
    // write disjoint storage/bitmap/cache regions, so both passes fan out
    // across the pool.
    std::size_t total_words = 0, dense_scalars = 0;
    for (StashEntry& e : entries) {
      const auto elems =
          static_cast<std::size_t>(e.m) * static_cast<std::size_t>(ns);
      e.in_footprint = true;  // the root reads everything locally
      e.bits_off = total_words;
      total_words += bitmap_words(elems);
      dense_scalars += elems;
    }
    bits_scratch_.assign(total_words, 0);
    threads::parallel_for(
        static_cast<std::ptrdiff_t>(entries.size()), [&](std::ptrdiff_t t, int) {
          StashEntry& e = entries[static_cast<std::size_t>(t)];
          const auto elems =
              static_cast<std::size_t>(e.m) * static_cast<std::size_t>(ns);
          const std::span<const real_t> src = payload(e);
          SLU3D_CHECK(src.size() == elems, "panel payload size mismatch");
          std::copy(src.begin(), src.end(), stash.storage.data() + e.offset);
          std::size_t np = 0;
          for (std::size_t i = 0; i < elems; ++i)
            if (src[i] != 0.0) {
              bits_scratch_[e.bits_off + i / 64] |= std::uint64_t{1} << (i % 64);
              ++np;
            }
          e.packed = np;
        });
    pack_off_.resize(entries.size());
    std::size_t total_packed = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      pack_off_[i] = total_packed;
      total_packed += entries[i].packed;
    }
    packed_cache_.resize(total_packed);
    threads::parallel_for(
        static_cast<std::ptrdiff_t>(entries.size()), [&](std::ptrdiff_t t, int) {
          const StashEntry& e = entries[static_cast<std::size_t>(t)];
          const auto elems =
              static_cast<std::size_t>(e.m) * static_cast<std::size_t>(ns);
          pack_present({stash.storage.data() + e.offset, elems}, bits_scratch_,
                       e.bits_off,
                       packed_cache_.data() + pack_off_[static_cast<std::size_t>(t)]);
        });
    const int p = comm.size();
    std::size_t wired = 0;
    offset_t n_puts = 0;
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      put_buf_.clear();
      for (std::size_t i = 0; i < entries.size(); ++i) {
        const StashEntry& e = entries[i];
        const int s = panel[static_cast<std::size_t>(e.panel_idx)].snode;
        if (!entry_needed(panel, s, role, r)) continue;
        const auto elems =
            static_cast<std::size_t>(e.m) * static_cast<std::size_t>(ns);
        for (std::size_t w = 0; w < bitmap_words(elems); ++w)
          put_buf_.push_back(std::bit_cast<real_t>(bits_scratch_[e.bits_off + w]));
        put_buf_.insert(
            put_buf_.end(),
            packed_cache_.begin() + static_cast<std::ptrdiff_t>(pack_off_[i]),
            packed_cache_.begin() +
                static_cast<std::ptrdiff_t>(pack_off_[i] + e.packed));
      }
      if (put_buf_.empty()) continue;  // empty footprint: no message at all
      win.put(r, slot * stride, put_buf_);
      wired += put_buf_.size();
      ++n_puts;
    }
    if (p > 1) {
      sim::RankStats& st = comm.stats();
      const auto dense_bytes = static_cast<offset_t>(
          static_cast<std::size_t>(p - 1) * dense_scalars * sizeof(real_t));
      st.panel_dense_bytes += dense_bytes;
      st.panel_saved_bytes +=
          dense_bytes - static_cast<offset_t>(wired * sizeof(real_t));
      st.panel_saved_msgs += static_cast<offset_t>(p - 1) *
                                 static_cast<offset_t>(entries.size()) -
                             n_puts;
    }
  }

  /// Parses this rank's footprint put — landed in the role window's slot
  /// for this supernode — into the dense stash storage. Must run right
  /// after the matching delivery's wait: the slot is rewritten once its
  /// next tenant's put is applied (which can only happen during a later
  /// delivery's wait, after this supernode retired).
  void parse_targeted(PanelStash& stash, int role, index_t ns) const {
    const std::vector<StashEntry>& entries =
        role == 0 ? stash.row_entries : stash.col_entries;
    const sim::Window& win = role == 0 ? row_win_ : col_win_;
    const std::size_t stride = role == 0 ? row_stride_ : col_stride_;
    const std::size_t slot = static_cast<std::size_t>(
        snode_pos_[static_cast<std::size_t>(stash.k)] % n_slots_);
    const real_t* wire = win.local().data() + slot * stride;
    std::size_t pos = 0;
    for (const StashEntry& e : entries) {
      if (!e.in_footprint) continue;
      const auto elems =
          static_cast<std::size_t>(e.m) * static_cast<std::size_t>(ns);
      const std::size_t words = bitmap_words(elems);
      const real_t* wbits = wire + pos;
      const real_t* packed = wire + pos + words;
      real_t* dst = stash.storage.data() + e.offset;
      std::size_t pp = 0;
      for (std::size_t d = 0; d < elems; ++d) {
        const auto wb = std::bit_cast<std::uint64_t>(wbits[d / 64]);
        dst[d] = ((wb >> (d % 64)) & 1) ? packed[pp++] : 0.0;
      }
      pos += words + pp;
    }
  }

 private:
  /// Collective setup of the targeted-mode RMA windows, once per run.
  /// Each role's window is n_slots uniform slots of `stride` elements,
  /// where the stride is the max dense-bound footprint wire size over
  /// every (supernode, peer) of the comm — a quantity every member
  /// computes identically from the symbolic structure, so put offsets
  /// need no negotiation. A supernode's slot is its schedule position mod
  /// (lookahead+1): any two live supernodes sit within lookahead+1
  /// schedule positions of each other, so live slots never collide, and a
  /// slot's previous tenant has always parsed its put (at its Schur
  /// drain) before the next tenant's put can be applied.
  void create_targeted_windows(std::span<const int> snodes) {
    snode_pos_.assign(static_cast<std::size_t>(bs_.n_snodes()), -1);
    for (int w = 0; w < static_cast<int>(snodes.size()); ++w)
      snode_pos_[static_cast<std::size_t>(snodes[static_cast<std::size_t>(w)])] =
          w;
    n_slots_ = std::min(opt_.lookahead + 1,
                        std::max(1, static_cast<int>(snodes.size())));
    row_stride_ = col_stride_ = 0;
    for (const int k : snodes) {
      const index_t ns = bs_.snode_size(k);
      if (ns == 0) continue;
      const auto panel = bs_.lpanel(k);
      for (int r = 0; r < g_.Py(); ++r) {
        if (r == k % g_.Py()) continue;
        std::size_t wire = 0;
        for (const PanelBlock& blk : panel) {
          if (blk.n_rows() == 0 || blk.snode % g_.Px() != g_.px()) continue;
          if (!row_entry_needed(panel, blk.snode, r)) continue;
          const auto elems = static_cast<std::size_t>(blk.n_rows()) *
                             static_cast<std::size_t>(ns);
          wire += bitmap_words(elems) + elems;
        }
        row_stride_ = std::max(row_stride_, wire);
      }
      if constexpr (!Policy::kSymmetric) {
        for (int r = 0; r < g_.Px(); ++r) {
          if (r == k % g_.Px()) continue;
          std::size_t wire = 0;
          for (const PanelBlock& blk : panel) {
            if (blk.n_rows() == 0 || blk.snode % g_.Py() != g_.py()) continue;
            if (!col_entry_needed(panel, blk.snode, r)) continue;
            const auto elems = static_cast<std::size_t>(blk.n_rows()) *
                               static_cast<std::size_t>(ns);
            wire += bitmap_words(elems) + elems;
          }
          col_stride_ = std::max(col_stride_, wire);
        }
      }
    }
    row_win_buf_.assign(row_stride_ * static_cast<std::size_t>(n_slots_), 0.0);
    row_win_ = g_.row().win_create(opt_.tag_base + kRowWinTag, row_win_buf_,
                                   sim::CommPlane::XY);
    if constexpr (!Policy::kSymmetric) {
      col_win_buf_.assign(col_stride_ * static_cast<std::size_t>(n_slots_),
                          0.0);
      col_win_ = g_.col().win_create(opt_.tag_base + kColWinTag, col_win_buf_,
                                     sim::CommPlane::XY);
    }
  }

  /// Claims a free stash slot. The pool invariant — at most lookahead+1
  /// slots live at once, and never two slots for the same supernode (the
  /// per-supernode tags would alias their broadcasts) — is what makes the
  /// linear scans here and in stash_find sound; both halves are checked.
  PanelStash& stash_alloc(int k) {
    PanelStash* free_slot = nullptr;
    int live = 0;
    for (PanelStash& s : stash_) {
      SLU3D_CHECK(s.k != k,
                  "stash slot for this supernode is already live (its panel "
                  "tags would alias)");
      if (s.k < 0) {
        if (free_slot == nullptr) free_slot = &s;
      } else {
        ++live;
      }
    }
    SLU3D_CHECK(live <= opt_.lookahead,
                "stash pool exceeds lookahead+1 live slots");
    if (free_slot == nullptr) {
      stash_.emplace_back();
      free_slot = &stash_.back();
    }
    free_slot->k = k;
    return *free_slot;
  }

  PanelStash* stash_find(int k) {
    for (PanelStash& s : stash_)
      if (s.k == k) return &s;
    return nullptr;
  }

  void panel_phase(int k) {
    const index_t ns = bs_.snode_size(k);
    if (ns == 0) return;
    PanelStash& stash = stash_alloc(k);

    // Diagonal factorization, diagonal broadcast, and panel solves are the
    // variant's identity (LU: GETRF + row/col diag bcast + L/U TRSMs;
    // Cholesky: POTRF + column diag bcast + L TRSM). The diagonal is
    // consumed by the panel solves immediately, so those broadcasts stay
    // blocking even in async mode.
    Policy::factor_and_solve(*this, k, ns, diag_buf_);

    // Panel broadcast. A row-role entry (block row a with a % Px == px)
    // travels along this process row; a column-role entry (a % Py == py)
    // travels along a process column (the variant decides which one and
    // how). Empty (ragged) blocks are skipped outright instead of
    // broadcasting 0-byte payloads. First lay out the flat stash storage —
    // spans handed to ibcast must stay put, and the dense offsets double as
    // the expansion targets in sparse mode — then post the broadcasts.
    const auto panel = bs_.lpanel(k);
    std::size_t total = 0;
    for (int pi = 0; pi < static_cast<int>(panel.size()); ++pi) {
      const PanelBlock& blk = panel[static_cast<std::size_t>(pi)];
      const index_t m = blk.n_rows();
      if (m == 0) continue;
      const auto elems =
          static_cast<std::size_t>(m) * static_cast<std::size_t>(ns);
      if (blk.snode % g_.Px() == g_.px()) {
        stash.row_entries.push_back({pi, total, m});
        total += elems;
      }
      if (blk.snode % g_.Py() == g_.py()) {
        stash.col_entries.push_back({pi, total, m});
        total += elems;
      }
    }
    stash.storage = dense::KernelScratch::per_rank().borrow();
    stash.storage.resize(total, 0.0);

    // Row role: root is the owning process column's representative; the
    // payload is the owner's L block. Identical for both variants. In
    // sparse mode the presence frame travels first (blocking, so packed
    // lengths are known before any data posts); the asymmetric variant
    // prunes all-zero entries outright, the symmetric one keeps them for
    // its relay bookkeeping and merely elides their data messages.
    const int pyk = k % g_.Py();
    const bool in_pcol = g_.py() == pyk;
    const bool sparse = sparse_packing();
    if (targeted_packing()) {
      // One-sided mode: the whole row role is one footprint put per peer
      // (root) or one expected delivery (receivers with a non-empty
      // footprint). The root's storage is dense-filled inside, so the
      // symmetric variant's relay copies see dense data as usual.
      targeted_role(stash, /*role=*/0, k, ns, panel, [&](const StashEntry& e) {
        return Policy::row_payload(
            F_, k, panel[static_cast<std::size_t>(e.panel_idx)].snode);
      });
      Policy::post_col_entries(*this, stash, k, ns);
      return;
    }
    if (sparse)
      exchange_presence_frame(
          g_.row(), pyk, tag(k, kRowFrameOp), stash, stash.row_entries,
          stash.row_bits, in_pcol, ns,
          [&](const StashEntry& e) {
            return Policy::row_payload(
                F_, k, panel[static_cast<std::size_t>(e.panel_idx)].snode);
          },
          /*prune_absent=*/!Policy::kSymmetric);
    if (sparse && in_pcol) {
      // Pre-pack every present row-role payload in parallel — each entry
      // packs into its own disjoint storage region (the presence frame has
      // already fixed the packed lengths) — so the post loop below only
      // posts broadcasts.
      threads::parallel_for(
          static_cast<std::ptrdiff_t>(stash.row_entries.size()),
          [&](std::ptrdiff_t t, int) {
            const StashEntry& e =
                stash.row_entries[static_cast<std::size_t>(t)];
            if (e.packed == 0) return;
            pack_present(
                Policy::row_payload(
                    F_, k, panel[static_cast<std::size_t>(e.panel_idx)].snode),
                stash.row_bits, e.bits_off, stash.storage.data() + e.offset);
          });
    }
    for (int i = 0; i < static_cast<int>(stash.row_entries.size()); ++i) {
      const StashEntry& e = stash.row_entries[static_cast<std::size_t>(i)];
      const PanelBlock& blk = panel[static_cast<std::size_t>(e.panel_idx)];
      const auto dense_elems =
          static_cast<std::size_t>(e.m) * static_cast<std::size_t>(ns);
      const std::size_t wire = sparse ? e.packed : dense_elems;
      if (wire == 0) continue;  // all-zero sparse entry: no data message
      const std::span<real_t> buf{stash.storage.data() + e.offset, wire};
      if (in_pcol && !sparse) {
        const std::span<const real_t> src =
            Policy::row_payload(F_, k, blk.snode);
        SLU3D_CHECK(src.size() == dense_elems, "owner missing L block");
        std::copy(src.begin(), src.end(), buf.begin());
      }
      if (opt_.async) {
        stash.ops.push_back({g_.row().ibcast(pyk, tag(k, Policy::kRowPanelOp),
                                             buf, sim::CommPlane::XY),
                             -1, 0, 0, 0, -1, -1, {}});
        if (sparse) {
          if (in_pcol) {
            // ibcast snapshots the root's payload at post time, so the
            // packed prefix can be expanded back to dense right away —
            // which is what keeps the symmetric relay copies (which read
            // row-role regions during post_col_entries) dense-only.
            expand_entry(stash, e, stash.row_bits, ns);
          } else {
            stash.ops.back().exp_role = 0;
            stash.ops.back().exp_idx = i;
          }
        }
      } else {
        g_.row().bcast(pyk, tag(k, Policy::kRowPanelOp), buf,
                       sim::CommPlane::XY);
        if (sparse) expand_entry(stash, e, stash.row_bits, ns);
      }
    }

    // Column role: LU broadcasts the owner's U blocks down the diagonal
    // owner's process column (packed the same way in sparse mode); the
    // symmetric variant relays the transposed L payload through the
    // (a%Px, a%Py) rank, possibly deferred — always dense, because the
    // relay's presence bits live on ranks outside the broadcast column.
    Policy::post_col_entries(*this, stash, k, ns);
  }

  void schur_phase(int k) {
    const index_t ns = bs_.snode_size(k);
    if (ns == 0) return;
    PanelStash* stash = stash_find(k);
    SLU3D_CHECK(stash != nullptr, "panel not factored before Schur phase");

    // Drain the outstanding broadcasts only now, in post order: every
    // update between the panel's post and this point has overlapped the
    // transfer. Deferred relay roots forward as soon as their row-role
    // payload (an earlier op, expanded right at its wait in sparse mode)
    // is in; the root post forwards to the column subtree immediately and
    // completes.
    const auto panel = bs_.lpanel(k);
    for (PanelAsyncOp& op : stash->ops) {
      if (op.delivery.valid()) {
        // Targeted-mode footprint put: waiting applies it (and any earlier
        // same-origin puts, each into its own slot), then the parse runs
        // immediately — before any other delivery's wait can overwrite the
        // slot — expanding every footprint entry of the role at once. The
        // symmetric variant's deferred relays sit later in `ops`, so their
        // row-role source regions are dense by the time they copy.
        op.delivery.wait();
        parse_targeted(*stash, op.exp_role, ns);
        continue;
      }
      if (op.relay_pi < 0) {
        op.req.wait();
        if (op.exp_role >= 0) {
          if constexpr (Policy::kSymmetric) {
            // A deferred relay later in `ops` copies this row-role region
            // the moment its turn comes, so expand immediately.
            if (op.exp_role == 0)
              expand_entry(
                  *stash,
                  stash->row_entries[static_cast<std::size_t>(op.exp_idx)],
                  stash->row_bits, ns);
            else
              expand_entry(
                  *stash,
                  stash->col_entries[static_cast<std::size_t>(op.exp_idx)],
                  stash->col_bits, ns);
          } else {
            // No relay ever reads these regions: batch the expansions and
            // fan them out across the pool once the drain completes.
            exp_batch_.push_back({op.exp_role, op.exp_idx});
          }
        }
        continue;
      }
      std::copy_n(stash->storage.data() + op.row_off, op.elems,
                  stash->storage.data() + op.col_off);
      const PanelBlock& blk = panel[static_cast<std::size_t>(op.relay_pi)];
      const std::span<real_t> buf{stash->storage.data() + op.col_off,
                                  op.elems};
      g_.col().ibcast(blk.snode % g_.Px(), tag(k, Policy::kColPanelOp), buf,
                      sim::CommPlane::XY);
    }
    stash->ops.clear();
    if constexpr (!Policy::kSymmetric) {
      if (!exp_batch_.empty()) {
        // Receiver-side packed->dense expansions touch disjoint dense
        // storage regions — safe to run across the pool.
        threads::parallel_for(
            static_cast<std::ptrdiff_t>(exp_batch_.size()),
            [&](std::ptrdiff_t t, int) {
              const auto [role, idx] = exp_batch_[static_cast<std::size_t>(t)];
              if (role == 0)
                expand_entry(*stash,
                             stash->row_entries[static_cast<std::size_t>(idx)],
                             stash->row_bits, ns);
              else
                expand_entry(*stash,
                             stash->col_entries[static_cast<std::size_t>(idx)],
                             stash->col_bits, ns);
            });
        exp_batch_.clear();
      }
    }

    // Build the Schur pair list and charge the modelled flops serially on
    // this (rank) thread, in the historical nested order — the logical
    // clocks and RankStats are thread-count independent by construction
    // (no communication happens between the charges, so their order within
    // the phase does not move any timestamp). Workers then execute the
    // GEMM + scatter of each pair: distinct pairs scatter into distinct
    // owned (bi, bj) target blocks, so the partitions are disjoint and no
    // factor datum needs an atomic.
    schur_pairs_.clear();
    for (const StashEntry& le : stash->row_entries) {
      const PanelBlock& bi = panel[static_cast<std::size_t>(le.panel_idx)];
      for (const StashEntry& ue : stash->col_entries) {
        const PanelBlock& bj = panel[static_cast<std::size_t>(ue.panel_idx)];
        if constexpr (Policy::kSymmetric) {
          if (bj.snode > bi.snode) break;  // lower triangle only
        }
        if (!Policy::wants_target(F_, bi.snode, bj.snode)) continue;
        g_.grid().add_compute(dense::gemm_flops(le.m, ue.m, ns),
                              sim::ComputeKind::SchurUpdate);
        schur_pairs_.push_back({&le, &ue});
      }
    }
    threads::parallel_for(
        static_cast<std::ptrdiff_t>(schur_pairs_.size()),
        [&](std::ptrdiff_t t, int) {
          const auto [le, ue] = schur_pairs_[static_cast<std::size_t>(t)];
          const PanelBlock& bi = panel[static_cast<std::size_t>(le->panel_idx)];
          const PanelBlock& bj = panel[static_cast<std::size_t>(ue->panel_idx)];
          auto scratch = dense::KernelScratch::per_rank().stage_zero(
              static_cast<std::size_t>(le->m) * static_cast<std::size_t>(ue->m));
          Policy::schur_pair(*this, bi, le->m,
                             stash->storage.data() + le->offset, bj, ue->m,
                             stash->storage.data() + ue->offset, ns, scratch);
        });
    dense::KernelScratch::per_rank().recycle(std::move(stash->storage));
    stash->storage = std::vector<real_t>{};
    stash->row_entries.clear();
    stash->col_entries.clear();
    stash->row_bits.clear();
    stash->col_bits.clear();
    stash->k = -1;
  }

  /// One Schur block pair of the current supernode, flattened for the
  /// pool: row-role (L) entry x column-role entry.
  struct SchurPair {
    const StashEntry* le;
    const StashEntry* ue;
  };

  Factors& F_;
  sim::ProcessGrid2D& g_;
  const BlockStructure& bs_;
  PanelOptions opt_;
  std::vector<PanelStash> stash_;  ///< slot pool, <= lookahead+1 live slots
  std::vector<real_t> diag_buf_;   ///< reusable diagonal broadcast buffer
  std::vector<real_t> frame_buf_;  ///< reusable presence-frame wire buffer
  // Targeted-mode state (unused otherwise). The window buffers must not
  // relocate while the windows are alive, and the engine itself anchors
  // the Window objects that pending WindowDelivery receipts point into.
  sim::Window row_win_, col_win_;  ///< per-run RMA windows, one per role
  std::vector<real_t> row_win_buf_, col_win_buf_;  ///< slotted landing zones
  std::vector<int> snode_pos_;     ///< schedule position per supernode
  std::size_t row_stride_ = 0, col_stride_ = 0;  ///< slot strides (elements)
  int n_slots_ = 1;                ///< landing slots per window (lookahead+1)
  std::vector<std::uint64_t> bits_scratch_;  ///< root-side bitmap build
  std::vector<real_t> packed_cache_;  ///< root-side packed scalars, all entries
  std::vector<std::size_t> pack_off_;  ///< per-entry offsets into packed_cache_
  std::vector<real_t> put_buf_;    ///< per-peer put assembly buffer
  std::vector<SchurPair> schur_pairs_;        ///< reusable pair work list
  std::vector<std::pair<int, int>> exp_batch_;  ///< deferred (role, idx) expansions
};

}  // namespace slu3d::pipeline
