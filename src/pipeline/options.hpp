// Shared option structs for the factorization-pipeline subsystem. The LU
// and Cholesky variants of the 2D panel pipeline take identical scheduling
// knobs, and the two 3D drivers take identical z-reduction knobs, so both
// pairs collapse into one struct each; the historical names
// (Lu2dOptions/Chol2dOptions, Lu3dOptions/Chol3dOptions) remain as aliases
// or thin wrappers in the variant headers. Validation happens once, in the
// shared engines (validate_panel_options / validate_zred_options), instead
// of being re-implemented (or silently skipped) per variant.
#pragma once

#include "support/check.hpp"

namespace slu3d::pipeline {

/// How the 2D panel-broadcast payloads are packed on the wire.
enum class PanelPacking {
  /// Panels travel as the full m x ns union blocks, zeros included — the
  /// historical scheme, byte-identical to the golden fig9 counters.
  Dense,
  /// Each panel role prepends one presence-bitmap frame (1 bit per scalar)
  /// to the supernode's broadcasts and ships only the present scalars;
  /// blocks whose payload is entirely zero send no data message at all.
  /// Ancestor union blocks are ragged (per-column symbolic patterns inside
  /// the dense m x ns rectangle), so 10-25% of the dense panel payload is
  /// zero scalars even though whole blocks are almost never zero. Factors
  /// stay bitwise identical; savings are reported in RankStats::panel_*
  /// (see comm_stats.hpp). The Cholesky transposed (column) role stays
  /// dense — its presence bits live on ranks outside the broadcast column.
  Sparse,
  /// One-sided delivery over simmpi RMA windows: the data root computes
  /// each receiver's block footprint from the symbolic structure (which
  /// entries that receiver's Schur pairs actually read) and issues one
  /// footprint-sized put per receiver — bitmap words + present scalars of
  /// exactly the needed entries, nothing else. Receivers whose footprint
  /// is empty get no data message at all (both sides agree symbolically,
  /// so no handshake is needed). Strictly less volume than Sparse: the
  /// collective broadcast is replaced by per-destination payloads, and a
  /// receiver no longer pays for entries it never reads. Factors stay
  /// bitwise identical (the footprint covers every pair-referenced entry,
  /// so charged flops and FP order match Dense); savings land in the same
  /// RankStats::panel_* counters with an exact accounting identity:
  /// dense_equivalent - received == saved. The Cholesky transposed
  /// (column) role stays a dense relay, as under Sparse.
  Targeted,
};

/// Upper bound on the lookahead window. The stash slot pool holds
/// lookahead+1 live supernodes, each pinning flat panel storage plus
/// outstanding requests; beyond this bound the "window" is no longer a
/// window and a mistyped value (e.g. a tag base passed as lookahead) would
/// silently pin the whole factorization in memory.
inline constexpr int kMaxPanelLookahead = 4096;

/// Scheduling knobs of the 2D panel pipeline (one supernode's diagonal
/// factorization + panel solves + panel broadcast + Schur update, pipelined
/// through the elimination-tree lookahead window of §II-F).
struct PanelOptions {
  /// Lookahead window size in supernodes (SuperLU_DIST uses 8-20; 0
  /// disables pipelining). Must be <= kMaxPanelLookahead.
  int lookahead = 8;
  /// Base message tag; the engine uses tags [tag_base, tag_base + 8*n_snodes).
  int tag_base = 0;
  /// Post the look-ahead window's panel broadcasts as non-blocking
  /// requests, drained lazily at the consuming Schur phase — so panel
  /// transfer time is hidden behind earlier supernodes' updates. Per-plane
  /// byte counters are identical to the blocking schedule (same binomial
  /// trees); only the simulated critical path changes.
  bool async = true;
  /// Wire format of the panel broadcasts; Dense is byte-identical to the
  /// historical drivers, Sparse is the opt-in volume optimization.
  PanelPacking packing = PanelPacking::Dense;
  /// Per-rank compute participants (caller thread + pool workers) for the
  /// dense kernels and the Schur scatter. 0 (the default) defers to the
  /// SLU3D_THREADS environment variable, falling back to 1 (the historical
  /// single-threaded rank). Workers come out of the process-wide
  /// threads::WorkerBudget, so asking for more than the host has degrades
  /// gracefully. Factors, RankStats counters, and simulated clocks are
  /// bitwise identical for every value — threading is a wall-clock-only
  /// optimization (see DESIGN.md, "Funneled threading model").
  int threads = 0;
};

/// How the z-axis ancestor-reduction payloads are packed on the wire.
enum class ZRedPacking {
  /// Every allocated ancestor block travels, zeros included — the paper's
  /// scheme, byte-identical to the historical drivers.
  Dense,
  /// Each chunk carries a per-block presence bitmap and omits blocks whose
  /// local accumulation is still entirely zero (common for ancestors a
  /// subtree never touched). Numerically identical — skipped blocks
  /// contribute nothing — but the reduction volume W_red shrinks. Savings
  /// are reported in RankStats::zred_* (see comm_stats.hpp).
  Sparse,
  /// One-sided delivery: ancestor contributions are scatter_accumulate'd
  /// into an RMA window over the owner's receive staging instead of being
  /// exchanged pairwise — a scalar-granularity presence bitmap plus the
  /// nonzero scalars travel, so raggedness *inside* locally-touched blocks
  /// is elided too (Sparse only skips whole all-zero blocks). Numerically
  /// identical: the owner adds the staged dense stream in the same order
  /// as Dense. Savings land in the same RankStats::zred_* counters and
  /// reconcile byte-exactly: received + zred_saved == dense received.
  Targeted,
};

/// Knobs of the 3D driver: the per-level z-axis ancestor reduction.
struct ZRedOptions {
  /// Chunk the pairwise z-axis ancestor reduction into non-blocking
  /// messages drained only when their elimination-forest level is factored
  /// — overlapping the reduction transfer with the 2D factorization of
  /// deeper levels. Byte volume per plane is identical to the single
  /// blocking message; only message counts and the critical path change.
  bool async = true;
  /// Ancestor supernodes per reduction message in async mode (>= 1).
  /// 1 reproduces the historical per-supernode chunking; larger values
  /// trade overlap granularity for fewer messages. Ignored when async is
  /// false (the blocking path always sends one message per level).
  int chunk_snodes = 1;
  /// Wire format of the reduction payloads; Dense is byte-identical to the
  /// historical drivers, Sparse is the opt-in volume optimization.
  ZRedPacking packing = ZRedPacking::Dense;
};

/// Validates the 2D panel-pipeline options once, at engine entry.
inline void validate_panel_options(const PanelOptions& opt) {
  SLU3D_CHECK(opt.lookahead >= 0,
              "pipeline: lookahead must be non-negative (0 disables pipelining)");
  SLU3D_CHECK(opt.lookahead <= kMaxPanelLookahead,
              "pipeline: lookahead exceeds the stash slot pool bound "
              "(kMaxPanelLookahead)");
  SLU3D_CHECK(opt.tag_base >= 0, "pipeline: tag_base must be non-negative");
  SLU3D_CHECK(opt.packing == PanelPacking::Dense ||
                  opt.packing == PanelPacking::Sparse ||
                  opt.packing == PanelPacking::Targeted,
              "pipeline: unknown PanelPacking value");
  SLU3D_CHECK(opt.threads >= 0,
              "pipeline: threads must be >= 0 (0 = SLU3D_THREADS env or 1)");
}

/// Validates the z-reduction options once, at engine entry.
inline void validate_zred_options(const ZRedOptions& opt) {
  SLU3D_CHECK(opt.chunk_snodes > 0,
              "pipeline: reduction chunk size (chunk_snodes) must be positive");
  SLU3D_CHECK(opt.packing == ZRedPacking::Dense ||
                  opt.packing == ZRedPacking::Sparse ||
                  opt.packing == ZRedPacking::Targeted,
              "pipeline: unknown ZRedPacking value");
}

}  // namespace slu3d::pipeline
