#include <gtest/gtest.h>

#include <mutex>
#include <numeric>

#include "lu2d/factor2d.hpp"
#include "lu2d/solve2d.hpp"
#include "numeric/solver.hpp"
#include "order/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"

namespace slu3d {
namespace {

using sim::MachineModel;
using sim::ProcessGrid2D;
using sim::run_ranks;

const MachineModel kModel{};

/// Factorizes and solves fully distributed; checks against the true
/// solution of A x = b. Every rank must end up with the full solution.
void check_distributed_solve(const CsrMatrix& A, const SeparatorTree& tree,
                             int Px, int Py) {
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  const auto pinv = invert_permutation(tree.perm());

  const auto n = static_cast<std::size_t>(A.n_rows());
  Rng rng(11);
  std::vector<real_t> xref(n), b(n);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  A.spmv(xref, b);
  std::vector<real_t> pb(n);
  for (std::size_t i = 0; i < n; ++i)
    pb[static_cast<std::size_t>(pinv[i])] = b[i];

  std::vector<std::vector<real_t>> per_rank(static_cast<std::size_t>(Px * Py));
  run_ranks(Px * Py, kModel, [&](sim::Comm& world) {
    auto grid = ProcessGrid2D::create(world, Px, Py);
    Dist2dFactors F(bs, Px, Py, grid.px(), grid.py());
    F.fill_from(Ap);
    std::vector<int> all(static_cast<std::size_t>(bs.n_snodes()));
    std::iota(all.begin(), all.end(), 0);
    factorize_2d(F, grid, all, {});

    std::vector<real_t> x(pb);
    solve_2d(F, grid, x);
    per_rank[static_cast<std::size_t>(world.rank())] = std::move(x);
  });

  for (int r = 0; r < Px * Py; ++r) {
    const auto& px = per_rank[static_cast<std::size_t>(r)];
    ASSERT_EQ(px.size(), n);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_NEAR(px[static_cast<std::size_t>(pinv[i])], xref[i], 1e-8)
          << "rank " << r << " component " << i;
  }
}

struct GridCase {
  int Px, Py;
};

class Solve2dGrids : public ::testing::TestWithParam<GridCase> {};

TEST_P(Solve2dGrids, SolvesPlanarSystem) {
  const auto [Px, Py] = GetParam();
  const GridGeometry g{11, 9, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  check_distributed_solve(A, nested_dissection(A, {.leaf_size = 8}), Px, Py);
}

INSTANTIATE_TEST_SUITE_P(GridShapes, Solve2dGrids,
                         ::testing::Values(GridCase{1, 1}, GridCase{1, 2},
                                           GridCase{2, 1}, GridCase{2, 2},
                                           GridCase{2, 3}, GridCase{3, 2},
                                           GridCase{4, 2}),
                         [](const auto& pi) {
                           return "Px" + std::to_string(pi.param.Px) + "Py" +
                                  std::to_string(pi.param.Py);
                         });

TEST(Solve2d, NonsymmetricValues) {
  const GridGeometry g{7, 8, 1};
  const CsrMatrix A = grid2d_convection_diffusion(g, 0.4);
  check_distributed_solve(A, nested_dissection(A, {.leaf_size = 6}), 2, 2);
}

TEST(Solve2d, NonplanarMatrix) {
  const GridGeometry g{4, 4, 4};
  const CsrMatrix A = grid3d_laplacian(g, Stencil3D::SevenPoint);
  check_distributed_solve(A, geometric_nd(g, {.leaf_size = 8}), 2, 2);
}

TEST(Solve2d, KktSystem) {
  const GridGeometry g{3, 3, 2};
  const CsrMatrix A = kkt3d(g, 3);
  check_distributed_solve(A, nested_dissection(A, {.leaf_size = 8}), 3, 2);
}

TEST(Solve2d, RepeatedSolvesWithSameFactors) {
  const GridGeometry g{10, 10, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 8});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  const auto pinv = invert_permutation(tree.perm());
  const auto n = static_cast<std::size_t>(A.n_rows());

  std::vector<real_t> err(2, 1e300);
  run_ranks(4, kModel, [&](sim::Comm& world) {
    auto grid = ProcessGrid2D::create(world, 2, 2);
    Dist2dFactors F(bs, 2, 2, grid.px(), grid.py());
    F.fill_from(Ap);
    std::vector<int> all(static_cast<std::size_t>(bs.n_snodes()));
    std::iota(all.begin(), all.end(), 0);
    factorize_2d(F, grid, all, {});

    for (int rhs = 0; rhs < 2; ++rhs) {
      Rng rng(static_cast<std::uint64_t>(100 + rhs));
      std::vector<real_t> xref(n), b(n), x(n);
      for (auto& v : xref) v = rng.uniform(-1, 1);
      A.spmv(xref, b);
      for (std::size_t i = 0; i < n; ++i)
        x[static_cast<std::size_t>(pinv[i])] = b[i];
      Solve2dOptions opt;
      opt.tag_base = (1 << 24) + rhs * (1 << 20);  // distinct tag ranges
      solve_2d(F, grid, x, opt);
      if (world.rank() == 0) {
        real_t e = 0;
        for (std::size_t i = 0; i < n; ++i)
          e = std::max(e, std::abs(x[static_cast<std::size_t>(pinv[i])] - xref[i]));
        err[static_cast<std::size_t>(rhs)] = e;
      }
    }
  });
  EXPECT_LT(err[0], 1e-9);
  EXPECT_LT(err[1], 1e-9);
}

TEST(Solve2d, BatchedPanelBitwiseMatchesSequentialSolves) {
  // A panel solve must equal column-by-column solves bitwise (per-column
  // op order is independent of the panel width). The sequential solves
  // run back-to-back in the same simulated run with tag bases advanced by
  // solve2d_tag_span, exercising the queued-solve tag audit.
  const GridGeometry g{10, 9, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = nested_dissection(A, {.leaf_size = 8});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  const auto n = static_cast<std::size_t>(A.n_rows());
  const index_t nrhs = 3;

  Rng rng(57);
  std::vector<real_t> B(n * static_cast<std::size_t>(nrhs));
  for (auto& v : B) v = rng.uniform(-1, 1);

  std::vector<real_t> batched, seq;
  run_ranks(4, kModel, [&](sim::Comm& world) {
    auto grid = ProcessGrid2D::create(world, 2, 2);
    Dist2dFactors F(bs, 2, 2, grid.px(), grid.py());
    F.fill_from(Ap);
    std::vector<int> all(static_cast<std::size_t>(bs.n_snodes()));
    std::iota(all.begin(), all.end(), 0);
    factorize_2d(F, grid, all, {});

    std::vector<real_t> xp(B);
    Solve2dOptions bopt;
    bopt.nrhs = nrhs;
    solve_2d(F, grid, xp, bopt);

    std::vector<real_t> xs(B);
    for (index_t j = 0; j < nrhs; ++j) {
      Solve2dOptions sopt;
      sopt.tag_base = (1 << 24) + (j + 1) * solve2d_tag_span(bs);
      solve_2d(F, grid,
               std::span<real_t>(xs).subspan(static_cast<std::size_t>(j) * n, n),
               sopt);
    }
    if (world.rank() == 0) {
      batched = xp;
      seq = xs;
    }
  });

  ASSERT_EQ(batched.size(), seq.size());
  for (std::size_t i = 0; i < batched.size(); ++i)
    EXPECT_EQ(batched[i], seq[i]) << "panel entry " << i;
}

}  // namespace
}  // namespace slu3d
