#include <gtest/gtest.h>

#include <cmath>

#include "model/cost_model.hpp"
#include "support/check.hpp"

namespace slu3d::model {
namespace {

constexpr double kN = 1e6;
constexpr double kP = 1024;

TEST(PlanarModel, MatchesClosedFormsAtReference) {
  const auto c2 = planar_2d_alg(kN, kP);
  EXPECT_NEAR(c2.memory_words, kN / kP * std::log2(kN), 1e-6);
  EXPECT_NEAR(c2.comm_words, kN * std::log2(kN) / std::sqrt(kP), 1e-3);
  EXPECT_DOUBLE_EQ(c2.latency_msgs, kN);
}

TEST(PlanarModel, OptimalPzIsHalfLogN) {
  EXPECT_NEAR(planar_optimal_pz(kN), 0.5 * std::log2(kN), 1e-12);
  // Eq. (8): the optimum really minimizes the xy-communication term
  // f(Pz) = 2 sqrt(Pz) + log n / sqrt(Pz).
  const double opt = planar_optimal_pz(kN);
  auto f = [&](double pz) { return 2 * std::sqrt(pz) + std::log2(kN) / std::sqrt(pz); };
  EXPECT_LT(f(opt), f(opt * 1.3));
  EXPECT_LT(f(opt), f(opt / 1.3));
}

TEST(PlanarModel, ThreeDBeatsTwoDInCommAndLatency) {
  const auto c2 = planar_2d_alg(kN, kP);
  const auto c3 = planar_3d_alg(kN, kP, planar_optimal_pz(kN));
  EXPECT_LT(c3.comm_words, c2.comm_words);
  EXPECT_LT(c3.latency_msgs, c2.latency_msgs / 5.0);  // ~ log n factor
  // Memory grows only by a constant factor (paper §I).
  EXPECT_LT(c3.memory_words, 4.0 * c2.memory_words);
  EXPECT_GT(c3.memory_words, c2.memory_words);
}

TEST(PlanarModel, CommReductionGrowsWithN) {
  // W2d / W3d ~ sqrt(log n): monotone in n.
  auto ratio = [](double n) {
    return planar_2d_alg(n, kP).comm_words /
           planar_3d_alg(n, kP, planar_optimal_pz(n)).comm_words;
  };
  EXPECT_GT(ratio(1e6), ratio(1e4));
  EXPECT_GT(ratio(1e8), ratio(1e6));
}

TEST(NonplanarModel, BestCaseCommReductionNearPaper) {
  const NonplanarConstants k{};
  const double pz = nonplanar_optimal_pz(k);
  const double w2 = nonplanar_2d_alg(kN, kP).comm_words;
  const double w3 = nonplanar_3d_alg(kN, kP, pz, k).comm_words;
  EXPECT_NEAR(w2 / w3, 2.89, 0.15);  // paper: 2.89x
}

TEST(NonplanarModel, OptimalPzIsStationary) {
  const NonplanarConstants k{};
  const double pz = nonplanar_optimal_pz(k);
  auto f = [&](double z) {
    return k.kappa1 * std::sqrt(z) + (1 - k.kappa1) / std::pow(z, 4.0 / 3.0);
  };
  EXPECT_LT(f(pz), f(pz * 1.2));
  EXPECT_LT(f(pz), f(pz / 1.2));
}

TEST(NonplanarModel, LatencyDropsAsPzGrows) {
  const auto c1 = nonplanar_3d_alg(kN, kP, 1);
  const auto c8 = nonplanar_3d_alg(kN, kP, 8);
  EXPECT_LT(c8.latency_msgs, c1.latency_msgs);
  // Memory grows with Pz (large top separators).
  EXPECT_GT(c8.memory_words, c1.memory_words);
}

TEST(Model, FlopCounts) {
  EXPECT_DOUBLE_EQ(planar_flops(1e6), 1e9);
  EXPECT_DOUBLE_EQ(nonplanar_flops(1e6), 1e12);
}

TEST(Model, PredictedSecondsCombinesTerms) {
  const sim::MachineModel m;
  const CostEstimate c{/*memory=*/0, /*comm=*/1e6, /*latency=*/1e3};
  const double t = predicted_seconds(m, /*flops=*/1e9, /*P=*/100, c);
  EXPECT_NEAR(t,
              m.gamma * 1e7 + m.beta * 1e6 * sizeof(real_t) + m.alpha * 1e3,
              1e-12);
}

TEST(Model, RejectsBadArguments) {
  EXPECT_THROW(planar_2d_alg(0.5, 4), slu3d::Error);
  EXPECT_THROW(planar_3d_alg(kN, 4, 8), slu3d::Error);  // Pz > P
}

}  // namespace
}  // namespace slu3d::model
