#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "lu2d/dist_chol.hpp"
#include "lu2d/factor2d.hpp"
#include "model/cost_model.hpp"
#include "numeric/dense_kernels.hpp"
#include "order/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "support/check.hpp"

namespace slu3d::model {
namespace {

constexpr double kN = 1e6;
constexpr double kP = 1024;

TEST(PlanarModel, MatchesClosedFormsAtReference) {
  const auto c2 = planar_2d_alg(kN, kP);
  EXPECT_NEAR(c2.memory_words, kN / kP * std::log2(kN), 1e-6);
  EXPECT_NEAR(c2.comm_words, kN * std::log2(kN) / std::sqrt(kP), 1e-3);
  EXPECT_DOUBLE_EQ(c2.latency_msgs, kN);
}

TEST(PlanarModel, OptimalPzIsHalfLogN) {
  EXPECT_NEAR(planar_optimal_pz(kN), 0.5 * std::log2(kN), 1e-12);
  // Eq. (8): the optimum really minimizes the xy-communication term
  // f(Pz) = 2 sqrt(Pz) + log n / sqrt(Pz).
  const double opt = planar_optimal_pz(kN);
  auto f = [&](double pz) { return 2 * std::sqrt(pz) + std::log2(kN) / std::sqrt(pz); };
  EXPECT_LT(f(opt), f(opt * 1.3));
  EXPECT_LT(f(opt), f(opt / 1.3));
}

TEST(PlanarModel, ThreeDBeatsTwoDInCommAndLatency) {
  const auto c2 = planar_2d_alg(kN, kP);
  const auto c3 = planar_3d_alg(kN, kP, planar_optimal_pz(kN));
  EXPECT_LT(c3.comm_words, c2.comm_words);
  EXPECT_LT(c3.latency_msgs, c2.latency_msgs / 5.0);  // ~ log n factor
  // Memory grows only by a constant factor (paper §I).
  EXPECT_LT(c3.memory_words, 4.0 * c2.memory_words);
  EXPECT_GT(c3.memory_words, c2.memory_words);
}

TEST(PlanarModel, CommReductionGrowsWithN) {
  // W2d / W3d ~ sqrt(log n): monotone in n.
  auto ratio = [](double n) {
    return planar_2d_alg(n, kP).comm_words /
           planar_3d_alg(n, kP, planar_optimal_pz(n)).comm_words;
  };
  EXPECT_GT(ratio(1e6), ratio(1e4));
  EXPECT_GT(ratio(1e8), ratio(1e6));
}

TEST(NonplanarModel, BestCaseCommReductionNearPaper) {
  const NonplanarConstants k{};
  const double pz = nonplanar_optimal_pz(k);
  const double w2 = nonplanar_2d_alg(kN, kP).comm_words;
  const double w3 = nonplanar_3d_alg(kN, kP, pz, k).comm_words;
  EXPECT_NEAR(w2 / w3, 2.89, 0.15);  // paper: 2.89x
}

TEST(NonplanarModel, OptimalPzIsStationary) {
  const NonplanarConstants k{};
  const double pz = nonplanar_optimal_pz(k);
  auto f = [&](double z) {
    return k.kappa1 * std::sqrt(z) + (1 - k.kappa1) / std::pow(z, 4.0 / 3.0);
  };
  EXPECT_LT(f(pz), f(pz * 1.2));
  EXPECT_LT(f(pz), f(pz / 1.2));
}

TEST(NonplanarModel, LatencyDropsAsPzGrows) {
  const auto c1 = nonplanar_3d_alg(kN, kP, 1);
  const auto c8 = nonplanar_3d_alg(kN, kP, 8);
  EXPECT_LT(c8.latency_msgs, c1.latency_msgs);
  // Memory grows with Pz (large top separators).
  EXPECT_GT(c8.memory_words, c1.memory_words);
}

TEST(Model, FlopCounts) {
  EXPECT_DOUBLE_EQ(planar_flops(1e6), 1e9);
  EXPECT_DOUBLE_EQ(nonplanar_flops(1e6), 1e12);
}

TEST(Model, PredictedSecondsCombinesTerms) {
  const sim::MachineModel m;
  const CostEstimate c{/*memory=*/0, /*comm=*/1e6, /*latency=*/1e3};
  const double t = predicted_seconds(m, /*flops=*/1e9, /*P=*/100, c);
  EXPECT_NEAR(t,
              m.gamma * 1e7 + m.beta * 1e6 * sizeof(real_t) + m.alpha * 1e3,
              1e-12);
}

TEST(Model, RejectsBadArguments) {
  EXPECT_THROW(planar_2d_alg(0.5, 4), slu3d::Error);
  EXPECT_THROW(planar_3d_alg(kN, 4, 8), slu3d::Error);  // Pz > P
}

// ---- flop accounting audit ----------------------------------------------
// The simulator's logical clocks are only meaningful if the flops charged
// via add_compute equal the flops the dense kernels actually perform. Every
// public kernel self-reports its canonical model count to a thread-local
// counter (see dense_kernels.hpp); since each simulated rank is its own
// thread, charged == performed must hold exactly per rank.

namespace {

offset_t charged_factorization_flops(const sim::RankStats& st) {
  using sim::ComputeKind;
  return st.flops[static_cast<std::size_t>(ComputeKind::DiagFactor)] +
         st.flops[static_cast<std::size_t>(ComputeKind::PanelSolve)] +
         st.flops[static_cast<std::size_t>(ComputeKind::SchurUpdate)];
}

}  // namespace

TEST(FlopAccounting, Lu2dChargesExactlyWhatKernelsPerform) {
  const GridGeometry g{8, 8, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = nested_dissection(A, {.leaf_size = 8});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());

  sim::run_ranks(1, sim::MachineModel{}, [&](sim::Comm& world) {
    auto grid = sim::ProcessGrid2D::create(world, 1, 1);
    Dist2dFactors F(bs, 1, 1, 0, 0);
    F.fill_from(Ap);
    std::vector<int> all(static_cast<std::size_t>(bs.n_snodes()));
    std::iota(all.begin(), all.end(), 0);
    dense::reset_flops_performed();
    factorize_2d(F, grid, all, {});
    EXPECT_EQ(charged_factorization_flops(world.stats()),
              dense::flops_performed());
    EXPECT_GT(dense::flops_performed(), 0);
  });
}

TEST(FlopAccounting, Chol2dChargesExactlyWhatKernelsPerform) {
  const GridGeometry g{8, 8, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = nested_dissection(A, {.leaf_size = 8});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());

  sim::run_ranks(1, sim::MachineModel{}, [&](sim::Comm& world) {
    auto grid = sim::ProcessGrid2D::create(world, 1, 1);
    DistCholFactors F(bs, 1, 1, 0, 0);
    F.fill_from(Ap);
    std::vector<int> all(static_cast<std::size_t>(bs.n_snodes()));
    std::iota(all.begin(), all.end(), 0);
    dense::reset_flops_performed();
    factorize_2d_cholesky(F, grid, all, {});
    EXPECT_EQ(charged_factorization_flops(world.stats()),
              dense::flops_performed());
    EXPECT_GT(dense::flops_performed(), 0);
  });
}

}  // namespace
}  // namespace slu3d::model
