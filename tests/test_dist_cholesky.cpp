#include <gtest/gtest.h>

#include <mutex>
#include <numeric>

#include "lu3d/factor3d.hpp"
#include "lu3d/factor3d_chol.hpp"
#include "order/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"

namespace slu3d {
namespace {

using sim::MachineModel;
using sim::ProcessGrid2D;
using sim::ProcessGrid3D;
using sim::run_ranks;

const MachineModel kModel{};

/// 2D distributed Cholesky must match the sequential Cholesky entry-wise.
void check_chol2d(const CsrMatrix& A, const SeparatorTree& tree, int Px, int Py,
                  int lookahead = 8) {
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());

  CholeskyFactors ref(bs);
  ref.fill_from(Ap);
  factorize_cholesky(ref);

  // Gather by running the 3D machinery with Pz = 1 (pure 2D).
  const ForestPartition part(bs, 1);
  std::unique_ptr<CholeskyFactors> gathered;
  std::mutex mu;
  run_ranks(Px * Py, kModel, [&](sim::Comm& world) {
    auto grid = ProcessGrid3D::create(world, Px, Py, 1);
    DistCholFactors F = make_3d_chol_factors(bs, grid, part, Ap);
    Chol3dOptions opt;
    opt.chol2d.lookahead = lookahead;
    factorize_3d_cholesky(F, grid, part, opt);
    auto full = gather_3d_cholesky(F, world, grid, part);
    if (full.has_value()) {
      const std::lock_guard<std::mutex> lock(mu);
      gathered = std::make_unique<CholeskyFactors>(std::move(*full));
    }
  });

  ASSERT_TRUE(gathered != nullptr);
  for (index_t i = 0; i < bs.n(); ++i)
    for (index_t j = 0; j <= i; ++j)
      ASSERT_NEAR(gathered->l_entry(i, j), ref.l_entry(i, j), 1e-11)
          << "L(" << i << "," << j << ") " << Px << "x" << Py;
}

void check_chol3d(const CsrMatrix& A, const SeparatorTree& tree, int Px, int Py,
                  int Pz) {
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  const ForestPartition part(bs, Pz);

  CholeskyFactors ref(bs);
  ref.fill_from(Ap);
  factorize_cholesky(ref);

  std::unique_ptr<CholeskyFactors> gathered;
  std::mutex mu;
  run_ranks(Px * Py * Pz, kModel, [&](sim::Comm& world) {
    auto grid = ProcessGrid3D::create(world, Px, Py, Pz);
    DistCholFactors F = make_3d_chol_factors(bs, grid, part, Ap);
    factorize_3d_cholesky(F, grid, part, {});
    auto full = gather_3d_cholesky(F, world, grid, part);
    if (full.has_value()) {
      const std::lock_guard<std::mutex> lock(mu);
      gathered = std::make_unique<CholeskyFactors>(std::move(*full));
    }
  });

  ASSERT_TRUE(gathered != nullptr);
  for (index_t i = 0; i < bs.n(); ++i)
    for (index_t j = 0; j <= i; ++j)
      ASSERT_NEAR(gathered->l_entry(i, j), ref.l_entry(i, j), 1e-11)
          << "L(" << i << "," << j << ") " << Px << "x" << Py << "x" << Pz;
}

struct GridCase {
  int Px, Py, Pz;
};

class Chol3dGrids : public ::testing::TestWithParam<GridCase> {};

TEST_P(Chol3dGrids, MatchesSequentialCholesky) {
  const auto [Px, Py, Pz] = GetParam();
  const GridGeometry g{11, 10, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  check_chol3d(A, nested_dissection(A, {.leaf_size = 8}), Px, Py, Pz);
}

INSTANTIATE_TEST_SUITE_P(
    GridShapes, Chol3dGrids,
    ::testing::Values(GridCase{1, 1, 2}, GridCase{2, 2, 1}, GridCase{2, 1, 2},
                      GridCase{1, 2, 2}, GridCase{2, 2, 2}, GridCase{2, 2, 4},
                      GridCase{3, 2, 2}, GridCase{1, 1, 8}),
    [](const auto& pi) {
      return std::to_string(pi.param.Px) + "x" + std::to_string(pi.param.Py) +
             "x" + std::to_string(pi.param.Pz);
    });

TEST(Chol2d, VariousPlaneShapes) {
  const GridGeometry g{9, 12, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::NinePoint);
  const SeparatorTree tree = nested_dissection(A, {.leaf_size = 8});
  check_chol2d(A, tree, 1, 1);
  check_chol2d(A, tree, 2, 3, 0);
  check_chol2d(A, tree, 3, 2, 4);
}

TEST(Chol3d, NonplanarSpd) {
  const GridGeometry g{4, 4, 4};
  const CsrMatrix A = grid3d_laplacian(g, Stencil3D::SevenPoint);
  check_chol3d(A, geometric_nd(g, {.leaf_size = 8}), 2, 2, 2);
}

TEST(Chol2dSolve, DistributedSolveMatchesTruth) {
  const GridGeometry g{12, 12, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 8});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  const auto pinv = invert_permutation(tree.perm());

  const auto n = static_cast<std::size_t>(A.n_rows());
  Rng rng(83);
  std::vector<real_t> xref(n), b(n), pb(n);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  A.spmv(xref, b);
  for (std::size_t i = 0; i < n; ++i)
    pb[static_cast<std::size_t>(pinv[i])] = b[i];

  std::vector<std::vector<real_t>> per_rank(6);
  run_ranks(6, kModel, [&](sim::Comm& world) {
    auto grid = ProcessGrid2D::create(world, 2, 3);
    DistCholFactors F(bs, 2, 3, grid.px(), grid.py());
    F.fill_from(Ap);
    std::vector<int> all(static_cast<std::size_t>(bs.n_snodes()));
    std::iota(all.begin(), all.end(), 0);
    factorize_2d_cholesky(F, grid, all, {});
    std::vector<real_t> x(pb);
    solve_2d_cholesky(F, grid, x);
    per_rank[static_cast<std::size_t>(world.rank())] = std::move(x);
  });

  for (const auto& px : per_rank) {
    ASSERT_EQ(px.size(), n);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_NEAR(px[static_cast<std::size_t>(pinv[i])], xref[i], 1e-8);
  }
}

TEST(Chol3d, HalvesReductionVolumeAndMemoryVsLuVariant) {
  // The symmetric factorization replicates and reduces only the lower
  // triangle: the ancestor-reduction (z) volume and the factor memory are
  // roughly half of the LU variant's on the same problem and grid.
  const GridGeometry g{16, 16, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 8});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  const ForestPartition part(bs, 2);

  std::vector<offset_t> chol_mem(8, 0), lu_mem(8, 0);
  const auto chol = run_ranks(8, kModel, [&](sim::Comm& world) {
    auto grid = ProcessGrid3D::create(world, 2, 2, 2);
    DistCholFactors F = make_3d_chol_factors(bs, grid, part, Ap);
    chol_mem[static_cast<std::size_t>(world.rank())] = F.allocated_bytes();
    factorize_3d_cholesky(F, grid, part, {});
  });
  // LU variant on the same configuration for comparison (Cholesky moves
  // only one triangle of panel data).
  const auto lu = run_ranks(8, kModel, [&](sim::Comm& world) {
    auto grid = ProcessGrid3D::create(world, 2, 2, 2);
    auto F = make_3d_factors(bs, grid, part, Ap);
    lu_mem[static_cast<std::size_t>(world.rank())] = F.allocated_bytes();
    factorize_3d(F, grid, part, {});
  });
  EXPECT_LT(chol.total_bytes_sent(sim::CommPlane::Z),
            static_cast<offset_t>(0.7 * static_cast<double>(
                lu.total_bytes_sent(sim::CommPlane::Z))));
  offset_t cm = 0, lm = 0;
  for (std::size_t r = 0; r < 8; ++r) {
    cm += chol_mem[r];
    lm += lu_mem[r];
  }
  EXPECT_LT(cm, 2 * lm / 3);
}

class Chol3dFuzz : public ::testing::TestWithParam<int> {};

TEST_P(Chol3dFuzz, RandomSpdSystemsAcrossGrids) {
  // Random SPD matrices (random graph + dominance, symmetric values)
  // through the full 3D Cholesky, random grid shape per seed.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed * 677 + 5);
  const index_t nn = 30 + rng.next_index(50);
  CooMatrix coo(nn, nn);
  std::vector<real_t> diag(static_cast<std::size_t>(nn), 0.0);
  // Spanning path + random extra symmetric edges.
  for (index_t i = 0; i + 1 < nn; ++i) {
    const real_t w = -rng.uniform(0.2, 1.0);
    coo.add(i, i + 1, w);
    coo.add(i + 1, i, w);
    diag[static_cast<std::size_t>(i)] += -w;
    diag[static_cast<std::size_t>(i + 1)] += -w;
  }
  for (index_t e = 0; e < nn; ++e) {
    const index_t u = rng.next_index(nn), v = rng.next_index(nn);
    if (u == v) continue;
    const real_t w = -rng.uniform(0.1, 0.8);
    coo.add(u, v, w);
    coo.add(v, u, w);
    diag[static_cast<std::size_t>(u)] += -w;
    diag[static_cast<std::size_t>(v)] += -w;
  }
  for (index_t i = 0; i < nn; ++i)
    coo.add(i, i, diag[static_cast<std::size_t>(i)] + 0.5);
  const CsrMatrix A = CsrMatrix::from_coo(coo);

  const int shapes[][3] = {{1, 1, 2}, {2, 1, 2}, {1, 2, 4}, {2, 2, 2}};
  const auto& s = shapes[seed % 4];
  check_chol3d(A, nested_dissection(A, {.leaf_size = 6}), s[0], s[1], s[2]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Chol3dFuzz, ::testing::Range(0, 8));

TEST(Chol2dSolve, BatchedPanelBitwiseMatchesSequentialSolves) {
  // The symmetric solve's panel path must equal column-by-column solves
  // bitwise, with the back-to-back sequential solves spaced by disjoint
  // tag ranges on the same resident factors.
  const GridGeometry g{9, 9, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = nested_dissection(A, {.leaf_size = 8});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  const auto pinv = invert_permutation(tree.perm());
  const auto n = static_cast<std::size_t>(A.n_rows());
  const index_t nrhs = 3;

  Rng rng(67);
  std::vector<real_t> xref(n * static_cast<std::size_t>(nrhs));
  std::vector<real_t> B(xref.size());
  for (auto& v : xref) v = rng.uniform(-1, 1);
  for (index_t j = 0; j < nrhs; ++j) {
    const auto off = static_cast<std::size_t>(j) * n;
    std::vector<real_t> col(n), bc(n);
    for (std::size_t i = 0; i < n; ++i) col[i] = xref[off + i];
    A.spmv(col, bc);
    for (std::size_t i = 0; i < n; ++i)
      B[off + static_cast<std::size_t>(pinv[i])] = bc[i];
  }

  std::vector<real_t> batched, seq;
  run_ranks(6, kModel, [&](sim::Comm& world) {
    auto grid = ProcessGrid2D::create(world, 2, 3);
    DistCholFactors F(bs, 2, 3, grid.px(), grid.py());
    F.fill_from(Ap);
    std::vector<int> all(static_cast<std::size_t>(bs.n_snodes()));
    std::iota(all.begin(), all.end(), 0);
    factorize_2d_cholesky(F, grid, all, {});

    std::vector<real_t> xp(B);
    solve_2d_cholesky(F, grid, xp, 1 << 24, nrhs);

    std::vector<real_t> xs(B);
    const int span = 4 * bs.n_snodes() + 8;
    for (index_t j = 0; j < nrhs; ++j)
      solve_2d_cholesky(
          F, grid,
          std::span<real_t>(xs).subspan(static_cast<std::size_t>(j) * n, n),
          (1 << 24) + (j + 1) * span);
    if (world.rank() == 0) {
      batched = xp;
      seq = xs;
    }
  });

  ASSERT_EQ(batched.size(), seq.size());
  for (std::size_t i = 0; i < batched.size(); ++i)
    EXPECT_EQ(batched[i], seq[i]) << "panel entry " << i;
  // And the batch actually solves the system.
  for (index_t j = 0; j < nrhs; ++j) {
    const auto off = static_cast<std::size_t>(j) * n;
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(batched[off + static_cast<std::size_t>(pinv[i])],
                  xref[off + i], 1e-8);
  }
}

}  // namespace
}  // namespace slu3d
