#include <gtest/gtest.h>

#include <cmath>

#include "numeric/seq_lu.hpp"
#include "numeric/solver.hpp"
#include "order/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"

namespace slu3d {
namespace {

/// Checks L * U == P A Pᵀ entry-wise via the factor accessors (small n).
void expect_lu_reconstructs(const SupernodalMatrix& F, const CsrMatrix& Ap,
                            real_t tol) {
  const index_t n = Ap.n_rows();
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      real_t acc = 0.0;
      const index_t kmax = std::min(i, j);
      for (index_t k = 0; k <= kmax; ++k)
        acc += F.l_entry(i, k) * F.u_entry(k, j);
      EXPECT_NEAR(acc, Ap.at(i, j), tol) << "at (" << i << "," << j << ")";
    }
  }
}

TEST(SeqLu, ReconstructsSmallGridMatrix) {
  const GridGeometry g{6, 6, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = nested_dissection(A, {.leaf_size = 4});
  const BlockStructure bs(A, tree);
  SupernodalMatrix F(bs);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  F.fill_from(Ap);
  factorize_sequential(F);
  expect_lu_reconstructs(F, Ap, 1e-10);
}

TEST(SeqLu, ReconstructsNonsymmetricValues) {
  const GridGeometry g{5, 7, 1};
  const CsrMatrix A = grid2d_convection_diffusion(g, 0.6);
  const SeparatorTree tree = nested_dissection(A, {.leaf_size = 4});
  const BlockStructure bs(A, tree);
  SupernodalMatrix F(bs);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  F.fill_from(Ap);
  factorize_sequential(F);
  expect_lu_reconstructs(F, Ap, 1e-10);
}

TEST(SeqLu, ReconstructsWithGeometricNd) {
  const GridGeometry g{4, 4, 4};
  const CsrMatrix A = grid3d_laplacian(g, Stencil3D::SevenPoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 8});
  const BlockStructure bs(A, tree);
  SupernodalMatrix F(bs);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  F.fill_from(Ap);
  factorize_sequential(F);
  expect_lu_reconstructs(F, Ap, 1e-10);
}

class SolverOnSuite : public ::testing::TestWithParam<int> {};

TEST_P(SolverOnSuite, SolvesToTightResidual) {
  const auto suite = paper_test_suite(0);
  const auto& t = suite[static_cast<std::size_t>(GetParam())];
  SolverOptions opt;
  opt.nd.leaf_size = 16;
  const SparseLuSolver solver(t.A, opt);
  const auto n = static_cast<std::size_t>(t.A.n_rows());
  Rng rng(13);
  std::vector<real_t> xref(n), b(n), x(n);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  t.A.spmv(xref, b);
  const SolveReport rep = solver.solve(b, x);
  EXPECT_LT(rep.final_residual_norm, 1e-12) << t.name;
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(x[i], xref[i], 1e-6) << t.name << " component " << i;
}

INSTANTIATE_TEST_SUITE_P(AllMatrices, SolverOnSuite, ::testing::Range(0, 10),
                         [](const auto& param_info) {
                           return paper_test_suite(0)[static_cast<std::size_t>(param_info.param)].name;
                         });

TEST(Solver, GeometricOrderingPath) {
  const GridGeometry g{12, 10, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  SolverOptions opt;
  opt.geometry = g;
  const SparseLuSolver solver(A, opt);
  const auto n = static_cast<std::size_t>(A.n_rows());
  std::vector<real_t> b(n, 1.0), x(n);
  const auto rep = solver.solve(b, x);
  EXPECT_LT(rep.final_residual_norm, 1e-13);
}

TEST(Solver, ReportsStatistics) {
  const GridGeometry g{8, 8, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SparseLuSolver solver(A);
  EXPECT_GT(solver.factor_nnz(), A.nnz());
  EXPECT_GT(solver.factor_flops(), solver.factor_nnz());
  EXPECT_GT(solver.factors().allocated_bytes(),
            static_cast<offset_t>(sizeof(real_t)) * solver.factor_nnz() / 2);
}

TEST(Solver, RejectsRectangular) {
  CooMatrix coo(2, 3);
  coo.add(0, 0, 1);
  const CsrMatrix A = CsrMatrix::from_coo(coo);
  EXPECT_THROW(SparseLuSolver{A}, Error);
}

TEST(Solver, RefinementImprovesIllConditioned) {
  // Mildly stressed: convection-diffusion with strong convection.
  const GridGeometry g{16, 16, 1};
  const CsrMatrix A = grid2d_convection_diffusion(g, 0.9, /*diag_boost=*/0.0);
  SolverOptions opt;
  opt.refinement_steps = 3;
  const SparseLuSolver solver(A, opt);
  const auto n = static_cast<std::size_t>(A.n_rows());
  Rng rng(21);
  std::vector<real_t> xref(n), b(n), x(n);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  A.spmv(xref, b);
  const auto rep = solver.solve(b, x);
  EXPECT_LT(rep.final_residual_norm, 1e-12);
}

TEST(SeqLu, RestrictedSnodeListMatchesFull) {
  // Factoring [0..k) then [k..end) must equal factoring everything at once.
  const GridGeometry g{8, 8, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = nested_dissection(A, {.leaf_size = 6});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());

  SupernodalMatrix Ffull(bs);
  Ffull.fill_from(Ap);
  factorize_sequential(Ffull);

  SupernodalMatrix Fsplit(bs);
  Fsplit.fill_from(Ap);
  std::vector<int> first_half, second_half;
  for (int s = 0; s < bs.n_snodes(); ++s)
    (s < bs.n_snodes() / 2 ? first_half : second_half).push_back(s);
  factorize_snodes_sequential(Fsplit, first_half);
  factorize_snodes_sequential(Fsplit, second_half);

  for (index_t i = 0; i < bs.n(); ++i)
    for (index_t j = 0; j <= i; ++j) {
      EXPECT_NEAR(Ffull.l_entry(i, j), Fsplit.l_entry(i, j), 1e-14);
      EXPECT_NEAR(Ffull.u_entry(j, i), Fsplit.u_entry(j, i), 1e-14);
    }
}

}  // namespace
}  // namespace slu3d
