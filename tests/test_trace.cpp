#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "lu3d/factor3d.hpp"
#include "order/nested_dissection.hpp"
#include "simmpi/trace.hpp"
#include "sparse/generators.hpp"

namespace slu3d::sim {
namespace {

const MachineModel kModel{};

TEST(Trace, DisabledByDefault) {
  const auto res = run_ranks(2, kModel, [](Comm& world) {
    if (world.rank() == 0)
      world.send(1, 1, std::vector<real_t>{1.0}, CommPlane::XY);
    else
      world.recv(0, 1, CommPlane::XY);
  });
  EXPECT_TRUE(res.traces.empty());
}

TEST(Trace, RecordsComputeSendRecvWithConsistentTimes) {
  RunOptions opt;
  opt.trace = true;
  const auto res = run_ranks(
      2, kModel,
      [](Comm& world) {
        world.add_compute(1000000, ComputeKind::SchurUpdate);
        if (world.rank() == 0)
          world.send(1, 1, std::vector<real_t>(100), CommPlane::XY);
        else
          world.recv(0, 1, CommPlane::XY);
      },
      opt);
  ASSERT_EQ(res.traces.size(), 2u);
  // Rank 0: compute then send.
  const auto& t0 = res.traces[0];
  ASSERT_EQ(t0.size(), 2u);
  EXPECT_EQ(t0[0].kind, TraceEvent::Kind::Compute);
  EXPECT_EQ(t0[0].compute, ComputeKind::SchurUpdate);
  EXPECT_EQ(t0[1].kind, TraceEvent::Kind::Send);
  EXPECT_EQ(t0[1].peer, 1);
  EXPECT_EQ(t0[1].bytes, 800);
  // Events are ordered and non-overlapping on each rank's clock.
  for (const auto& trace : res.traces) {
    double last = 0;
    for (const auto& ev : trace) {
      EXPECT_GE(ev.t0, last - 1e-15);
      EXPECT_GE(ev.t1, ev.t0);
      last = ev.t1;
    }
  }
  // Rank 1's recv ends no earlier than rank 0's send.
  const auto& t1 = res.traces[1];
  ASSERT_EQ(t1.size(), 2u);
  EXPECT_EQ(t1[1].kind, TraceEvent::Kind::Recv);
  EXPECT_GE(t1[1].t1, t0[1].t1 - 1e-15);
}

TEST(Trace, ChromeJsonExportIsWellFormedIsh) {
  RunOptions opt;
  opt.trace = true;
  const GridGeometry g{8, 8, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 8});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  const ForestPartition part(bs, 2);
  const auto res = run_ranks(
      4, kModel,
      [&](Comm& world) {
        auto grid = ProcessGrid3D::create(world, 2, 1, 2);
        Dist2dFactors F = make_3d_factors(bs, grid, part, Ap);
        factorize_3d(F, grid, part, {});
      },
      opt);
  std::size_t events = 0;
  for (const auto& t : res.traces) events += t.size();
  EXPECT_GT(events, 50u);  // a real factorization produces many events

  std::ostringstream os;
  write_chrome_trace(os, res.traces);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("schur-update"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Balanced braces (crude well-formedness check).
  const auto opens = static_cast<long>(std::count(json.begin(), json.end(), '{'));
  const auto closes = static_cast<long>(std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(opens, closes);
}

TEST(Trace, LinkWaitAttributesStallToCongestedLinkByName) {
  // One rank fires two back-to-back isends across a slow shared node
  // uplink (alpha-only NICs, pure-latency node link slower than the NIC
  // hop). The second payload reaches the free NIC exactly as the first
  // clears it, then stalls at node0.up — a single deterministic LinkWait
  // event whose bottleneck the JSON export must name.
  Platform p;
  p.name = "trace-test";
  p.machine.alpha = 1.0e-6;
  p.machine.beta = 0.0;
  p.levels.push_back({"node", 2, 5.0e-6, 0.0});
  RunOptions opt;
  opt.trace = true;
  const auto res = run_ranks(
      4, p,
      [](Comm& world) {
        if (world.rank() == 0) {
          world.isend(2, 1, std::vector<real_t>(8), CommPlane::XY);
          world.isend(2, 2, std::vector<real_t>(8), CommPlane::XY);
        } else if (world.rank() == 2) {
          world.recv(0, 1, CommPlane::XY);
          world.recv(0, 2, CommPlane::XY);
        }
      },
      opt);

  const TraceEvent* lw = nullptr;
  int link_waits = 0;
  for (const auto& trace : res.traces)
    for (const auto& ev : trace)
      if (ev.kind == TraceEvent::Kind::LinkWait) {
        ++link_waits;
        lw = &ev;
      }
  ASSERT_EQ(link_waits, 1);
  ASSERT_NE(lw, nullptr);
  EXPECT_EQ(lw->peer, 2);
  ASSERT_GE(lw->link, 0);
  const auto names = res.link_names();
  EXPECT_EQ(names[static_cast<std::size_t>(lw->link)], "node0.up");
  // The stall equals one node-link occupancy minus the NIC hop that the
  // second payload still had to itself.
  EXPECT_DOUBLE_EQ(lw->t1 - lw->t0, p.levels[0].latency - p.machine.alpha);

  std::ostringstream os;
  write_chrome_trace(os, res.traces, names);
  const std::string json = os.str();
  EXPECT_NE(json.find("link-wait"), std::string::npos);
  EXPECT_NE(json.find("node0.up"), std::string::npos);
}

}  // namespace
}  // namespace slu3d::sim
