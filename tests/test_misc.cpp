// Breadth tests for small utilities and invariants not covered by the
// module-focused suites.
#include <gtest/gtest.h>

#include <thread>

#include "simmpi/machine_model.hpp"
#include "simmpi/process_grid.hpp"
#include "simmpi/runtime.hpp"
#include "support/check.hpp"
#include "sparse/generators.hpp"
#include "support/timer.hpp"

namespace slu3d {
namespace {

TEST(GridGeometry, VertexIndexingIsLexicographic) {
  const GridGeometry g{4, 3, 2};
  EXPECT_EQ(g.n(), 24);
  EXPECT_EQ(g.vertex(0, 0, 0), 0);
  EXPECT_EQ(g.vertex(1, 0, 0), 1);
  EXPECT_EQ(g.vertex(0, 1, 0), 4);
  EXPECT_EQ(g.vertex(0, 0, 1), 12);
  EXPECT_EQ(g.vertex(3, 2, 1), 23);
  EXPECT_FALSE(g.planar());
  EXPECT_TRUE((GridGeometry{5, 5, 1}).planar());
}

TEST(MachineModel, CostFunctionsAreLinear) {
  const sim::MachineModel m;
  EXPECT_DOUBLE_EQ(m.message_time(0), m.alpha);
  EXPECT_NEAR(m.message_time(1000) - m.message_time(0), 1000 * m.beta, 1e-18);
  EXPECT_DOUBLE_EQ(m.compute_time(0), 0.0);
  EXPECT_NEAR(m.compute_time(1'000'000), 1e6 * m.gamma, 1e-18);
}

TEST(MachineModel, SimulatedTimeRespectsLowerBounds) {
  // Any run's critical path is at least (total flops on the busiest rank)
  // * gamma and at least one message time when messages were exchanged.
  const sim::MachineModel m;
  const auto res = sim::run_ranks(2, m, [&](sim::Comm& w) {
    w.add_compute(5'000'000, sim::ComputeKind::Other);
    if (w.rank() == 0)
      w.send(1, 1, std::vector<real_t>(100), sim::CommPlane::XY);
    else
      w.recv(0, 1, sim::CommPlane::XY);
  });
  EXPECT_GE(res.max_clock(), m.compute_time(5'000'000) + m.alpha);
}

TEST(RunResult, AggregationHelpers) {
  const sim::MachineModel m;
  const auto res = sim::run_ranks(3, m, [&](sim::Comm& w) {
    if (w.rank() == 0) {
      w.send(1, 1, std::vector<real_t>(10), sim::CommPlane::XY);
      w.send(2, 1, std::vector<real_t>(20), sim::CommPlane::Z);
    } else {
      w.recv(0, 1, w.rank() == 1 ? sim::CommPlane::XY : sim::CommPlane::Z);
    }
    w.add_compute(1000 * (w.rank() + 1), sim::ComputeKind::SchurUpdate);
  });
  EXPECT_EQ(res.total_bytes_sent(sim::CommPlane::XY), 80);
  EXPECT_EQ(res.total_bytes_sent(sim::CommPlane::Z), 160);
  EXPECT_EQ(res.max_bytes_sent(sim::CommPlane::Z), 160);
  EXPECT_EQ(res.max_bytes_received(sim::CommPlane::XY), 80);
  EXPECT_NEAR(res.max_compute_seconds(sim::ComputeKind::SchurUpdate),
              m.compute_time(3000), 1e-18);
}

TEST(RankStats, CommSecondsIsClockMinusCompute) {
  const sim::MachineModel m;
  const auto res = sim::run_ranks(2, m, [&](sim::Comm& w) {
    if (w.rank() == 0) {
      w.add_compute(10'000'000, sim::ComputeKind::Other);
      w.send(1, 1, std::vector<real_t>(1), sim::CommPlane::XY);
    } else {
      w.recv(0, 1, sim::CommPlane::XY);  // waits for rank 0's compute
      w.add_compute(1000, sim::ComputeKind::Other);
    }
  });
  const auto& r1 = res.ranks[1];
  EXPECT_NEAR(r1.comm_seconds(), r1.clock - m.compute_time(1000), 1e-15);
  EXPECT_GT(r1.comm_seconds(), m.compute_time(5'000'000));  // mostly waiting
}

TEST(Timer, MeasuresElapsedWallTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(Comm, AdvanceClockToIsMonotone) {
  const sim::MachineModel m;
  sim::run_ranks(1, m, [&](sim::Comm& w) {
    w.advance_clock_to(1.5);
    EXPECT_DOUBLE_EQ(w.clock(), 1.5);
    w.advance_clock_to(1.0);  // never goes backwards
    EXPECT_DOUBLE_EQ(w.clock(), 1.5);
    w.add_seconds(0.5, sim::ComputeKind::Other);
    EXPECT_DOUBLE_EQ(w.clock(), 2.0);
  });
}

TEST(Comm, RejectsBadPeerRanks) {
  const sim::MachineModel m;
  EXPECT_THROW(sim::run_ranks(2, m,
                              [&](sim::Comm& w) {
                                if (w.rank() == 0)
                                  w.send(7, 1, std::vector<real_t>{1},
                                         sim::CommPlane::XY);
                              }),
               Error);
}

TEST(ProcessGrids, RejectMismatchedSizes) {
  const sim::MachineModel m;
  EXPECT_THROW(sim::run_ranks(6, m,
                              [&](sim::Comm& w) {
                                (void)sim::ProcessGrid2D::create(w, 2, 2);
                              }),
               Error);
  EXPECT_THROW(sim::run_ranks(6, m,
                              [&](sim::Comm& w) {
                                (void)sim::ProcessGrid3D::create(w, 2, 2, 2);
                              }),
               Error);
}

}  // namespace
}  // namespace slu3d
