#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <numeric>

#include "lu3d/factor3d.hpp"
#include "numeric/seq_lu.hpp"
#include "order/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"

namespace slu3d {
namespace {

using sim::CommPlane;
using sim::MachineModel;
using sim::ProcessGrid3D;
using sim::RunResult;
using sim::run_ranks;

const MachineModel kModel{};

TEST(ForestPartition, SingleGridIsTrivial) {
  const GridGeometry g{8, 8, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const BlockStructure bs(A, nested_dissection(A, {.leaf_size = 8}));
  const ForestPartition part(bs, 1);
  EXPECT_EQ(part.n_levels(), 1);
  for (int s = 0; s < bs.n_snodes(); ++s) {
    EXPECT_EQ(part.level_of(s), 0);
    EXPECT_EQ(part.anchor_of(s), 0);
    EXPECT_TRUE(part.on_grid(s, 0));
  }
}

class PartitionPz : public ::testing::TestWithParam<int> {};

TEST_P(PartitionPz, StructuralInvariants) {
  const int Pz = GetParam();
  const GridGeometry g{12, 12, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const BlockStructure bs(A, nested_dissection(A, {.leaf_size = 8}));
  const ForestPartition part(bs, Pz);

  const int l = part.n_levels() - 1;
  EXPECT_EQ(1 << l, Pz);
  for (int s = 0; s < bs.n_snodes(); ++s) {
    const int lvl = part.level_of(s);
    ASSERT_GE(lvl, 0);
    ASSERT_LE(lvl, l);
    // Anchor must be aligned to the replication-group size.
    EXPECT_EQ(part.anchor_of(s) % part.group_size(s), 0);
    // Parent lives at the same or a shallower level, on a group that
    // contains this node's whole group (dependencies flow to ancestors).
    const int p = bs.nd_parent(s);
    if (p >= 0) {
      EXPECT_LE(part.level_of(p), lvl);
      EXPECT_TRUE(part.on_grid(p, part.anchor_of(s)));
      EXPECT_TRUE(part.on_grid(p, part.anchor_of(s) + part.group_size(s) - 1));
    }
  }
  // Every supernode is factored exactly once: by its anchor at its level.
  std::vector<bool> seen(static_cast<std::size_t>(bs.n_snodes()), false);
  for (int lvl = 0; lvl <= l; ++lvl) {
    const int step = 1 << (l - lvl);
    for (int pz = 0; pz < Pz; pz += step) {
      for (int s : part.nodes_at(pz, lvl)) {
        EXPECT_FALSE(seen[static_cast<std::size_t>(s)]);
        seen[static_cast<std::size_t>(s)] = true;
      }
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));

  // Masks are ancestor-closed.
  for (int pz = 0; pz < Pz; ++pz) {
    const auto mask = part.mask_for(pz);
    for (int s = 0; s < bs.n_snodes(); ++s) {
      if (mask[static_cast<std::size_t>(s)] && bs.nd_parent(s) >= 0) {
        EXPECT_TRUE(mask[static_cast<std::size_t>(bs.nd_parent(s))]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, PartitionPz, ::testing::Values(1, 2, 4, 8));

TEST(ForestPartition, GreedyBeatsCriticalPathOfChain) {
  // Critical path with Pz=2 must be at most the total (Pz=1) cost, and for
  // a balanced grid should be clearly smaller.
  const GridGeometry g{16, 16, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const BlockStructure bs(A, geometric_nd(g, {.leaf_size = 8}));
  const ForestPartition p2(bs, 2);
  EXPECT_LT(p2.critical_path_flops(), p2.total_flops());
  const ForestPartition p4(bs, 4);
  EXPECT_LE(p4.critical_path_flops(), p2.critical_path_flops());
}

TEST(ForestPartition, RejectsNonPowerOfTwo) {
  const GridGeometry g{6, 6, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const BlockStructure bs(A, nested_dissection(A, {.leaf_size = 8}));
  EXPECT_THROW(ForestPartition(bs, 3), Error);
}

/// Runs the full 3D algorithm and compares the gathered factors against
/// the sequential reference.
void check_3d_matches_sequential(const CsrMatrix& A, const SeparatorTree& tree,
                                 int Px, int Py, int Pz, int lookahead = 4) {
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  const ForestPartition part(bs, Pz);

  SupernodalMatrix ref(bs);
  ref.fill_from(Ap);
  factorize_sequential(ref);

  SupernodalMatrix gathered(bs);
  std::mutex mu;
  run_ranks(Px * Py * Pz, kModel, [&](sim::Comm& world) {
    auto grid = ProcessGrid3D::create(world, Px, Py, Pz);
    Dist2dFactors F = make_3d_factors(bs, grid, part, Ap);
    Lu3dOptions opt;
    opt.lu2d.lookahead = lookahead;
    factorize_3d(F, grid, part, opt);
    auto full = gather_3d_to_root(F, world, grid, part);
    if (full.has_value()) {
      const std::lock_guard<std::mutex> lock(mu);
      gathered = std::move(*full);
    }
  });

  for (index_t i = 0; i < bs.n(); ++i)
    for (index_t j = 0; j <= i; ++j) {
      ASSERT_NEAR(gathered.l_entry(i, j), ref.l_entry(i, j), 1e-11)
          << "L(" << i << "," << j << ") " << Px << "x" << Py << "x" << Pz;
      ASSERT_NEAR(gathered.u_entry(j, i), ref.u_entry(j, i), 1e-11)
          << "U(" << j << "," << i << ") " << Px << "x" << Py << "x" << Pz;
    }
}

struct Grid3dCase {
  int Px, Py, Pz;
};

class Lu3dGrids : public ::testing::TestWithParam<Grid3dCase> {};

TEST_P(Lu3dGrids, MatchesSequentialOnPlanarMatrix) {
  const auto [Px, Py, Pz] = GetParam();
  const GridGeometry g{12, 12, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  check_3d_matches_sequential(A, geometric_nd(g, {.leaf_size = 8}), Px, Py, Pz);
}

INSTANTIATE_TEST_SUITE_P(
    GridShapes, Lu3dGrids,
    ::testing::Values(Grid3dCase{1, 1, 2}, Grid3dCase{1, 1, 4},
                      Grid3dCase{2, 1, 2}, Grid3dCase{1, 2, 2},
                      Grid3dCase{2, 2, 2}, Grid3dCase{2, 2, 4},
                      Grid3dCase{2, 3, 2}, Grid3dCase{1, 1, 8}),
    [](const auto& pi) {
      return std::to_string(pi.param.Px) + "x" + std::to_string(pi.param.Py) +
             "x" + std::to_string(pi.param.Pz);
    });

TEST(Lu3d, MatchesSequentialOnNonplanarMatrix) {
  const GridGeometry g{5, 5, 5};
  const CsrMatrix A = grid3d_laplacian(g, Stencil3D::SevenPoint);
  check_3d_matches_sequential(A, geometric_nd(g, {.leaf_size = 10}), 2, 2, 2);
}

TEST(Lu3d, MatchesSequentialWithGeneralNdAndKkt) {
  const GridGeometry g{3, 3, 3};
  const CsrMatrix A = kkt3d(g, 7);
  check_3d_matches_sequential(A, nested_dissection(A, {.leaf_size = 10}), 2, 1, 4);
}

TEST(Lu3d, SolveThroughGatheredFactors) {
  const GridGeometry g{10, 10, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 8});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  const ForestPartition part(bs, 2);
  const auto pinv = invert_permutation(tree.perm());

  Rng rng(5);
  const auto n = static_cast<std::size_t>(A.n_rows());
  std::vector<real_t> xref(n), b(n), x(n, 0.0);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  A.spmv(xref, b);

  std::mutex mu;
  run_ranks(8, kModel, [&](sim::Comm& world) {
    auto grid = ProcessGrid3D::create(world, 2, 2, 2);
    Dist2dFactors F = make_3d_factors(bs, grid, part, Ap);
    factorize_3d(F, grid, part, {});
    auto full = gather_3d_to_root(F, world, grid, part);
    if (full.has_value()) {
      std::vector<real_t> pb(n);
      for (std::size_t i = 0; i < n; ++i) pb[static_cast<std::size_t>(pinv[i])] = b[i];
      solve_factored(*full, pb);
      const std::lock_guard<std::mutex> lock(mu);
      for (std::size_t i = 0; i < n; ++i) x[i] = pb[static_cast<std::size_t>(pinv[i])];
    }
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-8);
}

TEST(Lu3d, ZPlaneTrafficOnlyWithReplication) {
  const GridGeometry g{12, 12, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 8});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());

  auto run = [&](int Px, int Py, int Pz) {
    const ForestPartition part(bs, Pz);
    return run_ranks(Px * Py * Pz, kModel, [&](sim::Comm& world) {
      auto grid = ProcessGrid3D::create(world, Px, Py, Pz);
      Dist2dFactors F = make_3d_factors(bs, grid, part, Ap);
      factorize_3d(F, grid, part, {});
    });
  };
  const RunResult flat = run(2, 2, 1);
  EXPECT_EQ(flat.total_bytes_sent(CommPlane::Z), 0);
  const RunResult deep = run(2, 2, 2);
  EXPECT_GT(deep.total_bytes_sent(CommPlane::Z), 0);
  // The 3D run reduces XY-plane (factorization) traffic per process.
  EXPECT_LT(deep.max_bytes_received(CommPlane::XY),
            flat.max_bytes_received(CommPlane::XY));
}

TEST(Lu3d, ReplicationIncreasesMemoryModestly) {
  const GridGeometry g{12, 12, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 8});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());

  auto total_bytes = [&](int Pz) {
    const ForestPartition part(bs, Pz);
    std::vector<offset_t> bytes(static_cast<std::size_t>(4 * Pz), 0);
    run_ranks(4 * Pz, kModel, [&](sim::Comm& world) {
      auto grid = ProcessGrid3D::create(world, 2, 2, Pz);
      Dist2dFactors F = make_3d_factors(bs, grid, part, Ap);
      bytes[static_cast<std::size_t>(world.rank())] = F.allocated_bytes();
    });
    offset_t sum = 0;
    for (auto b : bytes) sum += b;
    return sum;
  };
  const offset_t m1 = total_bytes(1);
  const offset_t m4 = total_bytes(4);
  EXPECT_GT(m4, m1);          // replication costs memory...
  EXPECT_LT(m4, 3 * m1);      // ...but only a constant factor (planar case)
}

}  // namespace
}  // namespace slu3d
