#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "numeric/krylov.hpp"
#include "numeric/schur_complement.hpp"
#include "order/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"

namespace slu3d {
namespace {

/// Dense reference: S = A22 - A21 inv(A11) A12 via Gaussian elimination of
/// the leading k x k block on a dense copy.
std::vector<real_t> dense_schur(const CsrMatrix& Ap, index_t k) {
  const index_t n = Ap.n_rows();
  std::vector<real_t> a(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
  for (index_t i = 0; i < n; ++i) {
    const auto cols = Ap.row_cols(i);
    const auto vals = Ap.row_vals(i);
    for (std::size_t q = 0; q < cols.size(); ++q)
      a[static_cast<std::size_t>(i) + static_cast<std::size_t>(cols[q]) * static_cast<std::size_t>(n)] = vals[q];
  }
  for (index_t p = 0; p < k; ++p) {
    const real_t piv = a[static_cast<std::size_t>(p) * static_cast<std::size_t>(n + 1)];
    for (index_t i = p + 1; i < n; ++i) {
      const real_t l = a[static_cast<std::size_t>(i + p * n)] / piv;
      if (l == 0.0) continue;
      for (index_t j = p + 1; j < n; ++j)
        a[static_cast<std::size_t>(i + j * n)] -= l * a[static_cast<std::size_t>(p + j * n)];
    }
  }
  std::vector<real_t> s(static_cast<std::size_t>(n - k) * static_cast<std::size_t>(n - k));
  for (index_t j = k; j < n; ++j)
    for (index_t i = k; i < n; ++i)
      s[static_cast<std::size_t>((i - k) + (j - k) * (n - k))] =
          a[static_cast<std::size_t>(i + j * n)];
  return s;
}

TEST(SchurComplement, MatchesDenseReference) {
  const GridGeometry g{8, 7, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = nested_dissection(A, {.leaf_size = 6});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());

  // Split at a supernode boundary roughly halfway through.
  index_t split = 0;
  for (int s = 0; s < bs.n_snodes(); ++s) {
    const index_t end = bs.first_col(s) + bs.snode_size(s);
    if (end <= bs.n() / 2) split = end;
  }
  ASSERT_GT(split, 0);

  SupernodalMatrix F(bs);
  F.fill_from(Ap);
  const auto result = eliminate_leading_block(F, split);
  ASSERT_EQ(result.interface_dim, bs.n() - split);

  const auto ref = dense_schur(Ap, split);
  const index_t m = result.interface_dim;
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < m; ++j)
      EXPECT_NEAR(result.schur.at(i, j),
                  ref[static_cast<std::size_t>(i + j * m)], 1e-9)
          << "S(" << i << "," << j << ")";
}

TEST(SchurComplement, FullEliminationLeavesEmptySchur) {
  const GridGeometry g{6, 6, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = nested_dissection(A, {.leaf_size = 8});
  const BlockStructure bs(A, tree);
  SupernodalMatrix F(bs);
  F.fill_from(A.permuted_symmetric(tree.perm()));
  const auto result = eliminate_leading_block(F, bs.n());
  EXPECT_EQ(result.interface_dim, 0);
  EXPECT_TRUE(result.interface.empty());
  EXPECT_EQ(static_cast<int>(result.eliminated.size()), bs.n_snodes());
}

TEST(SchurComplement, SchurOfSpdIsSpdish) {
  // The Schur complement of an SPD matrix is SPD: its diagonal must be
  // positive and it must be symmetric.
  const GridGeometry g{6, 8, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = nested_dissection(A, {.leaf_size = 6});
  const BlockStructure bs(A, tree);
  SupernodalMatrix F(bs);
  F.fill_from(A.permuted_symmetric(tree.perm()));
  index_t split = 0;
  for (int s = 0; s < bs.n_snodes() / 2; ++s)
    split = bs.first_col(s) + bs.snode_size(s);
  const auto result = eliminate_leading_block(F, split);
  const auto& S = result.schur;
  for (index_t i = 0; i < S.n_rows(); ++i) {
    EXPECT_GT(S.at(i, i), 0.0);
    for (index_t j : S.row_cols(i))
      EXPECT_NEAR(S.at(i, j), S.at(j, i), 1e-10);
  }
}

TEST(SchurComplement, HybridSolveRecoversFullSolution) {
  // Eliminate interiors, solve the interface system directly (dense-ish
  // via PCG on S), back-substitute: must equal the full direct solve.
  const GridGeometry g{10, 10, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 8});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  const auto pinv = invert_permutation(tree.perm());

  SupernodalMatrix F(bs);
  F.fill_from(Ap);
  index_t split = 0;
  for (int s = 0; s < bs.n_snodes(); ++s) {
    const index_t end = bs.first_col(s) + bs.snode_size(s);
    if (end <= 3 * bs.n() / 4) split = end;
  }
  const auto schur = eliminate_leading_block(F, split);
  ASSERT_GT(schur.interface_dim, 0);

  const auto n = static_cast<std::size_t>(A.n_rows());
  Rng rng(111);
  std::vector<real_t> xref(n), b(n), x(n);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  A.spmv(xref, b);
  for (std::size_t i = 0; i < n; ++i)
    x[static_cast<std::size_t>(pinv[i])] = b[i];

  forward_eliminated(F, schur.eliminated, x);
  const index_t iface_first = bs.n() - schur.interface_dim;
  std::vector<real_t> b2(x.begin() + iface_first, x.end());
  std::vector<real_t> x2(b2.size(), 0.0);
  const auto rep = pcg(schur.schur, b2, x2, identity_preconditioner(),
                       {.max_iterations = 2000, .tolerance = 1e-14});
  ASSERT_TRUE(rep.converged);
  std::copy(x2.begin(), x2.end(), x.begin() + iface_first);
  backward_eliminated(F, schur.eliminated, x);

  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(x[static_cast<std::size_t>(pinv[i])], xref[i], 1e-8);
}

}  // namespace
}  // namespace slu3d
