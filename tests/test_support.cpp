#include <gtest/gtest.h>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace slu3d {
namespace {

TEST(Check, ThrowsWithContext) {
  try {
    SLU3D_CHECK(1 == 2, "the message");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("the message"), std::string::npos);
  }
}

TEST(Check, PassesSilently) { SLU3D_CHECK(true, "unused"); }

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, IndexInRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const index_t v = r.next_index(17);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 17);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-2.5, 3.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(TextTable, FormatsAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(TextTable, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

}  // namespace
}  // namespace slu3d
