// Randomized property tests: random sparse matrices, random orderings,
// random process-grid shapes — every configuration must produce factors
// identical to the sequential reference and machine-precision solves.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <mutex>

#include "lu3d/factor3d.hpp"
#include "lu3d/solver3d.hpp"
#include "numeric/seq_lu.hpp"
#include "order/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"

namespace slu3d {
namespace {

/// Random sparse matrix with symmetric pattern, (possibly) nonsymmetric
/// values, strict diagonal dominance, and a connected-ish structure:
/// a random spanning path plus `extra` random edges.
CsrMatrix random_matrix(index_t n, index_t extra, std::uint64_t seed,
                        bool symmetric_values) {
  Rng rng(seed);
  CooMatrix coo(n, n);
  std::vector<real_t> diag(static_cast<std::size_t>(n), 0.0);
  auto add_pair = [&](index_t u, index_t v) {
    if (u == v) return;
    const real_t a = rng.uniform(-1.0, 1.0);
    const real_t b = symmetric_values ? a : rng.uniform(-1.0, 1.0);
    coo.add(u, v, a);
    coo.add(v, u, b);
    diag[static_cast<std::size_t>(u)] += std::abs(a);
    diag[static_cast<std::size_t>(v)] += std::abs(b);
  };
  // Random spanning path over a shuffled vertex order.
  std::vector<index_t> order(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  for (index_t i = n - 1; i > 0; --i)
    std::swap(order[static_cast<std::size_t>(i)],
              order[static_cast<std::size_t>(rng.next_index(i + 1))]);
  for (index_t i = 0; i + 1 < n; ++i)
    add_pair(order[static_cast<std::size_t>(i)], order[static_cast<std::size_t>(i + 1)]);
  for (index_t e = 0; e < extra; ++e)
    add_pair(rng.next_index(n), rng.next_index(n));
  for (index_t i = 0; i < n; ++i)
    coo.add(i, i, diag[static_cast<std::size_t>(i)] * 1.1 + 0.5);
  return CsrMatrix::from_coo(coo);
}

class RandomMatrixFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RandomMatrixFuzz, SequentialFactorReconstructs) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed * 1000 + 1);
  const index_t n = 30 + rng.next_index(60);
  const CsrMatrix A = random_matrix(n, n, seed, (seed % 2) == 0);
  const index_t leaf = 4 + rng.next_index(12);
  const SeparatorTree tree = nested_dissection(A, {.leaf_size = leaf});
  ASSERT_TRUE(is_permutation(tree.perm()));
  const BlockStructure bs(A, tree);
  SupernodalMatrix F(bs);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  F.fill_from(Ap);
  factorize_sequential(F);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) {
      real_t acc = 0.0;
      const index_t kmax = std::min(i, j);
      for (index_t k = 0; k <= kmax; ++k)
        acc += F.l_entry(i, k) * F.u_entry(k, j);
      ASSERT_NEAR(acc, Ap.at(i, j), 1e-8)
          << "seed " << seed << " at (" << i << "," << j << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMatrixFuzz, ::testing::Range(0, 12));

class RandomPipelineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RandomPipelineFuzz, Distributed3dSolvesRandomSystem) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed * 7919 + 13);
  const index_t n = 40 + rng.next_index(80);
  const CsrMatrix A = random_matrix(n, 2 * n, seed + 100, false);

  Solver3dOptions opt;
  const int shapes[][3] = {{1, 1, 2}, {2, 1, 2}, {1, 2, 4}, {2, 2, 1},
                           {2, 2, 2}, {1, 3, 2}, {3, 1, 1}, {2, 3, 1}};
  const auto& s = shapes[seed % 8];
  opt.Px = s[0];
  opt.Py = s[1];
  opt.Pz = s[2];
  opt.nd.leaf_size = 4 + rng.next_index(10);
  opt.lu3d.lu2d.lookahead = static_cast<int>(rng.next_index(12));

  const auto nu = static_cast<std::size_t>(n);
  std::vector<real_t> xref(nu), b(nu), x(nu);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  A.spmv(xref, b);
  const auto rep = solve_distributed_3d(A, b, x, opt);
  EXPECT_LT(rep.residual, 1e-11) << "seed " << seed;
  for (std::size_t i = 0; i < nu; ++i)
    ASSERT_NEAR(x[i], xref[i], 1e-6) << "seed " << seed << " i=" << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipelineFuzz, ::testing::Range(0, 16));

// ---------------------------------------------------------------------------
// Sparse panel packing under randomized sparsity patterns: every random
// matrix/shape/lookahead draw must solve to the bit-identical answer with
// PanelPacking::Sparse as with Dense — the wire format is not allowed to
// touch the numbers, whatever presence pattern the panels happen to have.
// ---------------------------------------------------------------------------

class RandomPackingFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RandomPackingFuzz, SparsePanelPackingSolvesBitIdentical) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed * 6271 + 31);
  const index_t n = 40 + rng.next_index(80);
  // Vary density across seeds: sparse path-like graphs up to near-dense
  // blocks, so panels range from mostly-zero to fully populated.
  const index_t extra = n / 2 + rng.next_index(3 * n);
  const CsrMatrix A = random_matrix(n, extra, seed + 500, (seed % 3) == 0);

  Solver3dOptions opt;
  const int shapes[][3] = {{2, 2, 1}, {2, 1, 2}, {1, 2, 4}, {2, 2, 2},
                           {1, 3, 2}, {2, 3, 1}};
  const auto& s = shapes[seed % 6];
  opt.Px = s[0];
  opt.Py = s[1];
  opt.Pz = s[2];
  opt.nd.leaf_size = 4 + rng.next_index(10);
  opt.lu3d.lu2d.lookahead = static_cast<int>(rng.next_index(12));
  opt.lu3d.lu2d.async = (seed % 2) == 0;

  const auto nu = static_cast<std::size_t>(n);
  std::vector<real_t> xref(nu), b(nu), xd(nu), xs(nu);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  A.spmv(xref, b);

  opt.lu3d.lu2d.packing = pipeline::PanelPacking::Dense;
  const auto repd = solve_distributed_3d(A, b, xd, opt);
  opt.lu3d.lu2d.packing = pipeline::PanelPacking::Sparse;
  const auto reps = solve_distributed_3d(A, b, xs, opt);

  EXPECT_LT(repd.residual, 1e-11) << "seed " << seed;
  EXPECT_LT(reps.residual, 1e-11) << "seed " << seed;
  for (std::size_t i = 0; i < nu; ++i)
    ASSERT_EQ(xd[i], xs[i]) << "seed " << seed << " i=" << i;
  // Packing may only remove bytes from the XY factor volume, never add
  // more than the 1/64 bitmap frames it sends.
  EXPECT_LE(reps.w_fact, repd.w_fact + repd.w_fact / 32 + 64) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPackingFuzz, ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Targeted one-sided delivery under the same randomized-density regime:
// whatever footprint the symbolic structure implies for each receiver, the
// put-based wire must solve bit-identically to the dense broadcasts, and
// the XY factor volume may only shrink (puts carry no frames at all, so
// unlike Sparse there is no bitmap overhead allowance to grant).
// ---------------------------------------------------------------------------

class RandomTargetedDeliveryFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RandomTargetedDeliveryFuzz, TargetedDeliverySolvesBitIdentical) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed * 9173 + 47);
  const index_t n = 40 + rng.next_index(80);
  const index_t extra = n / 2 + rng.next_index(3 * n);
  const CsrMatrix A = random_matrix(n, extra, seed + 900, (seed % 3) == 0);

  Solver3dOptions opt;
  const int shapes[][3] = {{2, 2, 1}, {2, 1, 2}, {1, 2, 4}, {2, 2, 2},
                           {1, 3, 2}, {2, 3, 1}};
  const auto& s = shapes[seed % 6];
  opt.Px = s[0];
  opt.Py = s[1];
  opt.Pz = s[2];
  opt.nd.leaf_size = 4 + rng.next_index(10);
  opt.lu3d.lu2d.lookahead = static_cast<int>(rng.next_index(12));
  opt.lu3d.lu2d.async = (seed % 2) == 0;
  opt.lu3d.async = (seed % 2) == 0;
  opt.lu3d.chunk_snodes = 1 + static_cast<int>(rng.next_index(3));

  const auto nu = static_cast<std::size_t>(n);
  std::vector<real_t> xref(nu), b(nu), xd(nu), xt(nu);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  A.spmv(xref, b);

  opt.lu3d.lu2d.packing = pipeline::PanelPacking::Dense;
  opt.lu3d.packing = pipeline::ZRedPacking::Dense;
  const auto repd = solve_distributed_3d(A, b, xd, opt);
  opt.lu3d.lu2d.packing = pipeline::PanelPacking::Targeted;
  opt.lu3d.packing = pipeline::ZRedPacking::Targeted;
  const auto rept = solve_distributed_3d(A, b, xt, opt);

  EXPECT_LT(repd.residual, 1e-11) << "seed " << seed;
  EXPECT_LT(rept.residual, 1e-11) << "seed " << seed;
  for (std::size_t i = 0; i < nu; ++i)
    ASSERT_EQ(xd[i], xt[i]) << "seed " << seed << " i=" << i;
  EXPECT_LE(rept.w_fact, repd.w_fact) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTargetedDeliveryFuzz,
                         ::testing::Range(0, 12));

TEST(Fuzz, FullyDensePanelsSurviveSparsePacking) {
  // Near-dense matrix: presence bitmaps are (almost) all ones, the degenerate
  // end of the packing format. Must stay bit-identical to the dense wire.
  const index_t n = 36;
  const CsrMatrix A = random_matrix(n, n * n, 4242, false);
  const auto nu = static_cast<std::size_t>(n);
  std::vector<real_t> b(nu, 1.0), xd(nu), xs(nu);
  Solver3dOptions opt;
  opt.Px = 2;
  opt.Py = 2;
  opt.Pz = 1;
  opt.nd.leaf_size = 6;
  opt.lu3d.lu2d.packing = pipeline::PanelPacking::Dense;
  const auto repd = solve_distributed_3d(A, b, xd, opt);
  opt.lu3d.lu2d.packing = pipeline::PanelPacking::Sparse;
  const auto reps = solve_distributed_3d(A, b, xs, opt);
  EXPECT_LT(repd.residual, 1e-12);
  EXPECT_LT(reps.residual, 1e-12);
  for (std::size_t i = 0; i < nu; ++i) ASSERT_EQ(xd[i], xs[i]) << "i=" << i;
}

TEST(Fuzz, AllZeroAncestorPanelsArePrunedWholesale) {
  // Two path islands coupled to a bridge clique only through *explicit
  // zeros*: the entries exist structurally (so the separator panels are
  // allocated and broadcast) but every value in them is 0.0 for the whole
  // factorization. Sparse packing must collapse those broadcasts to their
  // presence frame — no data message at all (panel_saved_msgs counts them)
  // — while the factors stay bit-identical to the dense wire.
  const index_t m = 12, nb = 4;
  const index_t n = 2 * m + nb;
  CooMatrix coo(n, n);
  auto path = [&](index_t base) {
    for (index_t i = 0; i + 1 < m; ++i) {
      coo.add(base + i, base + i + 1, -1.0);
      coo.add(base + i + 1, base + i, -1.0);
    }
  };
  path(0);
  path(m);
  for (index_t i = 0; i < nb; ++i)  // bridge clique, nonzero internally
    for (index_t j = 0; j < nb; ++j)
      if (i != j) coo.add(2 * m + i, 2 * m + j, -0.5);
  for (index_t i = 0; i < m; i += 2)
    for (index_t v = 0; v < nb; ++v) {  // island <-> bridge: explicit zeros
      coo.add(i, 2 * m + v, 0.0);
      coo.add(2 * m + v, i, 0.0);
      coo.add(m + i, 2 * m + v, 0.0);
      coo.add(2 * m + v, m + i, 0.0);
    }
  for (index_t i = 0; i < n; ++i) coo.add(i, i, 4.0);
  const CsrMatrix A = CsrMatrix::from_coo(coo);
  const SeparatorTree tree = nested_dissection(A, {.leaf_size = 4});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  const ForestPartition part(bs, 1);

  auto run = [&](pipeline::PanelPacking packing, SupernodalMatrix* out) {
    Lu3dOptions o;
    o.lu2d.packing = packing;
    std::mutex mu;
    return sim::run_ranks(4, sim::MachineModel{}, [&](sim::Comm& world) {
      auto grid = sim::ProcessGrid3D::create(world, 2, 2, 1);
      Dist2dFactors F = make_3d_factors(bs, grid, part, Ap);
      factorize_3d(F, grid, part, o);
      auto full = gather_3d_to_root(F, world, grid, part);
      if (full.has_value()) {
        const std::lock_guard<std::mutex> lock(mu);
        *out = std::move(*full);
      }
    });
  };
  SupernodalMatrix fd(bs), fs(bs);
  run(pipeline::PanelPacking::Dense, &fd);
  const sim::RunResult rs = run(pipeline::PanelPacking::Sparse, &fs);

  for (int s = 0; s < bs.n_snodes(); ++s) {
    const auto a = fd.lpanel(s), b2 = fs.lpanel(s);
    ASSERT_EQ(a.size(), b2.size());
    for (std::size_t i = 0; i < a.size(); ++i)
      ASSERT_EQ(a[i], b2[i]) << "L snode " << s << " idx " << i;
    const auto u = fd.upanel(s), u2 = fs.upanel(s);
    for (std::size_t i = 0; i < u.size(); ++i)
      ASSERT_EQ(u[i], u2[i]) << "U snode " << s << " idx " << i;
  }
  // The zero-coupled panels vanish from the wire entirely.
  EXPECT_GT(rs.total_panel_saved_msgs(), 0);
  EXPECT_GT(rs.total_panel_saved_bytes(), 0);
}

TEST(Fuzz, DenseLeafMatrixSingleSupernode) {
  // Matrix small enough to be one relaxed leaf: the whole pipeline
  // degenerates to a dense factorization.
  const CsrMatrix A = random_matrix(12, 40, 77, false);
  const SeparatorTree tree = nested_dissection(A, {.leaf_size = 64});
  EXPECT_EQ(tree.n_nodes(), 1);
  const auto n = static_cast<std::size_t>(A.n_rows());
  std::vector<real_t> b(n, 1.0), x(n);
  Solver3dOptions opt;
  opt.Px = 2;
  opt.Py = 2;
  opt.Pz = 1;
  opt.nd.leaf_size = 64;
  const auto rep = solve_distributed_3d(A, b, x, opt);
  EXPECT_LT(rep.residual, 1e-12);
}

TEST(Fuzz, PathGraphDeepTree) {
  // A pure path graph: the worst-case (deepest) elimination tree shape.
  const index_t n = 120;
  CooMatrix coo(n, n);
  for (index_t i = 0; i + 1 < n; ++i) {
    coo.add(i, i + 1, -1.0);
    coo.add(i + 1, i, -1.0);
  }
  for (index_t i = 0; i < n; ++i) coo.add(i, i, 2.5);
  const CsrMatrix A = CsrMatrix::from_coo(coo);
  const auto nu = static_cast<std::size_t>(n);
  std::vector<real_t> b(nu, 1.0), x(nu);
  Solver3dOptions opt;
  opt.Px = 1;
  opt.Py = 2;
  opt.Pz = 4;
  opt.nd.leaf_size = 4;
  const auto rep = solve_distributed_3d(A, b, x, opt);
  EXPECT_LT(rep.residual, 1e-13);
}

TEST(Fuzz, ManyIslandsForestPartition) {
  // Heavily disconnected input: exercises empty separators and the
  // component-balancing path of the partitioner at every level.
  const index_t k = 14, m = 9;  // 14 path islands of 9 vertices
  CooMatrix coo(k * m, k * m);
  for (index_t c = 0; c < k; ++c)
    for (index_t i = 0; i + 1 < m; ++i) {
      coo.add(c * m + i, c * m + i + 1, -1.0);
      coo.add(c * m + i + 1, c * m + i, -1.0);
    }
  for (index_t i = 0; i < k * m; ++i) coo.add(i, i, 3.0);
  const CsrMatrix A = CsrMatrix::from_coo(coo);
  const auto nu = static_cast<std::size_t>(A.n_rows());
  std::vector<real_t> b(nu, 1.0), x(nu);
  Solver3dOptions opt;
  opt.Px = 2;
  opt.Py = 2;
  opt.Pz = 4;
  opt.nd.leaf_size = 4;
  const auto rep = solve_distributed_3d(A, b, x, opt);
  EXPECT_LT(rep.residual, 1e-13);
}

}  // namespace
}  // namespace slu3d
