#include <gtest/gtest.h>

#include <numeric>

#include "lu3d/solve3d.hpp"
#include "order/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"

namespace slu3d {
namespace {

using sim::MachineModel;
using sim::ProcessGrid3D;
using sim::run_ranks;

const MachineModel kModel{};

/// Full 3D pipeline: factorize with Algorithm 1, then solve directly on
/// the 3D-distributed factors; every rank must end with the solution.
void check_3d_pipeline(const CsrMatrix& A, const SeparatorTree& tree, int Px,
                       int Py, int Pz) {
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  const ForestPartition part(bs, Pz);
  const auto pinv = invert_permutation(tree.perm());

  const auto n = static_cast<std::size_t>(A.n_rows());
  Rng rng(31);
  std::vector<real_t> xref(n), b(n), pb(n);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  A.spmv(xref, b);
  for (std::size_t i = 0; i < n; ++i)
    pb[static_cast<std::size_t>(pinv[i])] = b[i];

  const int P = Px * Py * Pz;
  std::vector<std::vector<real_t>> per_rank(static_cast<std::size_t>(P));
  run_ranks(P, kModel, [&](sim::Comm& world) {
    auto grid = ProcessGrid3D::create(world, Px, Py, Pz);
    Dist2dFactors F = make_3d_factors(bs, grid, part, Ap);
    factorize_3d(F, grid, part, {});
    std::vector<real_t> x(pb);
    solve_3d(F, world, grid, part, x);
    per_rank[static_cast<std::size_t>(world.rank())] = std::move(x);
  });

  for (int r = 0; r < P; ++r) {
    const auto& px = per_rank[static_cast<std::size_t>(r)];
    ASSERT_EQ(px.size(), n);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_NEAR(px[static_cast<std::size_t>(pinv[i])], xref[i], 1e-8)
          << "rank " << r << " of " << Px << "x" << Py << "x" << Pz;
  }
}

struct Grid3dCase {
  int Px, Py, Pz;
};

class Solve3dGrids : public ::testing::TestWithParam<Grid3dCase> {};

TEST_P(Solve3dGrids, SolvesPlanarSystemEndToEnd) {
  const auto [Px, Py, Pz] = GetParam();
  const GridGeometry g{11, 12, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  check_3d_pipeline(A, geometric_nd(g, {.leaf_size = 8}), Px, Py, Pz);
}

INSTANTIATE_TEST_SUITE_P(
    GridShapes, Solve3dGrids,
    ::testing::Values(Grid3dCase{1, 1, 1}, Grid3dCase{1, 1, 2},
                      Grid3dCase{2, 2, 1}, Grid3dCase{2, 2, 2},
                      Grid3dCase{1, 2, 4}, Grid3dCase{2, 1, 4},
                      Grid3dCase{2, 2, 4}, Grid3dCase{1, 1, 8}),
    [](const auto& pi) {
      return std::to_string(pi.param.Px) + "x" + std::to_string(pi.param.Py) +
             "x" + std::to_string(pi.param.Pz);
    });

TEST(Solve3d, NonplanarSystem) {
  const GridGeometry g{4, 5, 4};
  const CsrMatrix A = grid3d_laplacian(g, Stencil3D::SevenPoint);
  check_3d_pipeline(A, geometric_nd(g, {.leaf_size = 10}), 2, 2, 2);
}

TEST(Solve3d, NonsymmetricValues) {
  const GridGeometry g{9, 7, 1};
  const CsrMatrix A = grid2d_convection_diffusion(g, 0.5);
  check_3d_pipeline(A, nested_dissection(A, {.leaf_size = 8}), 2, 1, 2);
}

TEST(Solve3d, GeneralNdWithEmptySeparators) {
  // Disconnected components produce empty separator supernodes; the solve
  // must skip them cleanly.
  CooMatrix coo(50, 50);
  for (index_t comp = 0; comp < 2; ++comp) {
    const index_t off = comp * 25;
    for (index_t i = 0; i < 24; ++i) {
      coo.add(off + i, off + i + 1, -1.0);
      coo.add(off + i + 1, off + i, -1.0);
    }
  }
  for (index_t i = 0; i < 50; ++i) coo.add(i, i, 4.0);
  const CsrMatrix A = CsrMatrix::from_coo(coo);
  check_3d_pipeline(A, nested_dissection(A, {.leaf_size = 4}), 1, 2, 2);
}

TEST(Solve3d, BatchedPanelBitwiseMatchesSequentialSolves) {
  // One nrhs-wide sweep must produce exactly the columns that nrhs
  // independent single-RHS solves produce: per-column accumulation order
  // in the panel kernels does not depend on the panel width, so the
  // comparison is bitwise. The sequential solves run back-to-back on the
  // same resident factors with tag bases advanced by solve3d_tag_span —
  // the tag-collision regression for queued solves on one grid.
  const GridGeometry g{11, 10, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 8});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  const int Px = 2, Py = 2, Pz = 2;
  const ForestPartition part(bs, Pz);
  const auto n = static_cast<std::size_t>(A.n_rows());
  const index_t nrhs = 4;

  Rng rng(93);
  std::vector<real_t> B(n * static_cast<std::size_t>(nrhs));
  for (auto& v : B) v = rng.uniform(-1, 1);

  std::vector<real_t> batched, seq;
  run_ranks(Px * Py * Pz, kModel, [&](sim::Comm& world) {
    auto grid = ProcessGrid3D::create(world, Px, Py, Pz);
    Dist2dFactors F = make_3d_factors(bs, grid, part, Ap);
    factorize_3d(F, grid, part, {});

    std::vector<real_t> xp(B);
    Solve3dOptions bopt;
    bopt.nrhs = nrhs;
    solve_3d(F, world, grid, part, xp, bopt);

    std::vector<real_t> xs(B);
    for (index_t j = 0; j < nrhs; ++j) {
      Solve3dOptions sopt;
      sopt.tag_base = (1 << 24) + (j + 1) * solve3d_tag_span(bs);
      solve_3d(F, world, grid, part,
               std::span<real_t>(xs).subspan(static_cast<std::size_t>(j) * n, n),
               sopt);
    }
    if (world.rank() == 0) {
      batched = xp;
      seq = xs;
    }
  });

  ASSERT_EQ(batched.size(), seq.size());
  for (std::size_t i = 0; i < batched.size(); ++i)
    EXPECT_EQ(batched[i], seq[i]) << "panel entry " << i;
}

TEST(Solve3d, BatchedMessageCountIndependentOfNrhs) {
  // The point of batching: solve-phase message *counts* do not grow with
  // the panel width (sizes do).
  const GridGeometry g{10, 10, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 8});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  const ForestPartition part(bs, 2);
  const auto n = static_cast<std::size_t>(A.n_rows());

  auto solve_messages = [&](index_t nrhs) {
    std::vector<real_t> B(n * static_cast<std::size_t>(nrhs), 1.0);
    std::vector<offset_t> msgs(8, 0);
    run_ranks(8, kModel, [&](sim::Comm& world) {
      auto grid = ProcessGrid3D::create(world, 2, 2, 2);
      Dist2dFactors F = make_3d_factors(bs, grid, part, Ap);
      factorize_3d(F, grid, part, {});
      const sim::RankStats pre = world.stats();
      std::vector<real_t> x(B);
      Solve3dOptions opt;
      opt.nrhs = nrhs;
      solve_3d(F, world, grid, part, x, opt);
      const sim::RankStats post = world.stats();
      msgs[static_cast<std::size_t>(world.rank())] =
          post.messages_sent[0] + post.messages_sent[1] -
          pre.messages_sent[0] - pre.messages_sent[1];
    });
    offset_t total = 0;
    for (offset_t m : msgs) total += m;
    return total;
  };

  const offset_t one = solve_messages(1);
  const offset_t sixteen = solve_messages(16);
  EXPECT_GT(one, 0);
  EXPECT_EQ(one, sixteen);
}

}  // namespace
}  // namespace slu3d
