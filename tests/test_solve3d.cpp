#include <gtest/gtest.h>

#include <numeric>

#include "lu3d/solve3d.hpp"
#include "order/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"

namespace slu3d {
namespace {

using sim::MachineModel;
using sim::ProcessGrid3D;
using sim::run_ranks;

const MachineModel kModel{};

/// Full 3D pipeline: factorize with Algorithm 1, then solve directly on
/// the 3D-distributed factors; every rank must end with the solution.
void check_3d_pipeline(const CsrMatrix& A, const SeparatorTree& tree, int Px,
                       int Py, int Pz) {
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  const ForestPartition part(bs, Pz);
  const auto pinv = invert_permutation(tree.perm());

  const auto n = static_cast<std::size_t>(A.n_rows());
  Rng rng(31);
  std::vector<real_t> xref(n), b(n), pb(n);
  for (auto& v : xref) v = rng.uniform(-1, 1);
  A.spmv(xref, b);
  for (std::size_t i = 0; i < n; ++i)
    pb[static_cast<std::size_t>(pinv[i])] = b[i];

  const int P = Px * Py * Pz;
  std::vector<std::vector<real_t>> per_rank(static_cast<std::size_t>(P));
  run_ranks(P, kModel, [&](sim::Comm& world) {
    auto grid = ProcessGrid3D::create(world, Px, Py, Pz);
    Dist2dFactors F = make_3d_factors(bs, grid, part, Ap);
    factorize_3d(F, grid, part, {});
    std::vector<real_t> x(pb);
    solve_3d(F, world, grid, part, x);
    per_rank[static_cast<std::size_t>(world.rank())] = std::move(x);
  });

  for (int r = 0; r < P; ++r) {
    const auto& px = per_rank[static_cast<std::size_t>(r)];
    ASSERT_EQ(px.size(), n);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_NEAR(px[static_cast<std::size_t>(pinv[i])], xref[i], 1e-8)
          << "rank " << r << " of " << Px << "x" << Py << "x" << Pz;
  }
}

struct Grid3dCase {
  int Px, Py, Pz;
};

class Solve3dGrids : public ::testing::TestWithParam<Grid3dCase> {};

TEST_P(Solve3dGrids, SolvesPlanarSystemEndToEnd) {
  const auto [Px, Py, Pz] = GetParam();
  const GridGeometry g{11, 12, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  check_3d_pipeline(A, geometric_nd(g, {.leaf_size = 8}), Px, Py, Pz);
}

INSTANTIATE_TEST_SUITE_P(
    GridShapes, Solve3dGrids,
    ::testing::Values(Grid3dCase{1, 1, 1}, Grid3dCase{1, 1, 2},
                      Grid3dCase{2, 2, 1}, Grid3dCase{2, 2, 2},
                      Grid3dCase{1, 2, 4}, Grid3dCase{2, 1, 4},
                      Grid3dCase{2, 2, 4}, Grid3dCase{1, 1, 8}),
    [](const auto& pi) {
      return std::to_string(pi.param.Px) + "x" + std::to_string(pi.param.Py) +
             "x" + std::to_string(pi.param.Pz);
    });

TEST(Solve3d, NonplanarSystem) {
  const GridGeometry g{4, 5, 4};
  const CsrMatrix A = grid3d_laplacian(g, Stencil3D::SevenPoint);
  check_3d_pipeline(A, geometric_nd(g, {.leaf_size = 10}), 2, 2, 2);
}

TEST(Solve3d, NonsymmetricValues) {
  const GridGeometry g{9, 7, 1};
  const CsrMatrix A = grid2d_convection_diffusion(g, 0.5);
  check_3d_pipeline(A, nested_dissection(A, {.leaf_size = 8}), 2, 1, 2);
}

TEST(Solve3d, GeneralNdWithEmptySeparators) {
  // Disconnected components produce empty separator supernodes; the solve
  // must skip them cleanly.
  CooMatrix coo(50, 50);
  for (index_t comp = 0; comp < 2; ++comp) {
    const index_t off = comp * 25;
    for (index_t i = 0; i < 24; ++i) {
      coo.add(off + i, off + i + 1, -1.0);
      coo.add(off + i + 1, off + i, -1.0);
    }
  }
  for (index_t i = 0; i < 50; ++i) coo.add(i, i, 4.0);
  const CsrMatrix A = CsrMatrix::from_coo(coo);
  check_3d_pipeline(A, nested_dissection(A, {.leaf_size = 4}), 1, 2, 2);
}

}  // namespace
}  // namespace slu3d
