#include <gtest/gtest.h>

#include <cmath>

#include "sparse/generators.hpp"

namespace slu3d {
namespace {

bool strictly_diagonally_dominant(const CsrMatrix& A) {
  for (index_t r = 0; r < A.n_rows(); ++r) {
    real_t offsum = 0.0, diag = 0.0;
    const auto cols = A.row_cols(r);
    const auto vals = A.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == r)
        diag = std::abs(vals[k]);
      else
        offsum += std::abs(vals[k]);
    }
    if (diag <= offsum) return false;
  }
  return true;
}

TEST(Generators, Grid2dFivePointShape) {
  const GridGeometry g{5, 4, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  EXPECT_EQ(A.n_rows(), 20);
  // Interior vertex has 5 entries; corners 3.
  EXPECT_EQ(A.row_nnz(g.vertex(2, 2, 0)), 5);
  EXPECT_EQ(A.row_nnz(g.vertex(0, 0, 0)), 3);
  EXPECT_TRUE(A.pattern_is_symmetric());
  EXPECT_TRUE(strictly_diagonally_dominant(A));
}

TEST(Generators, Grid2dNinePointShape) {
  const GridGeometry g{6, 6, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::NinePoint);
  EXPECT_EQ(A.row_nnz(g.vertex(3, 3, 0)), 9);
  EXPECT_TRUE(A.pattern_is_symmetric());
  EXPECT_TRUE(strictly_diagonally_dominant(A));
}

TEST(Generators, Grid3dSevenPointShape) {
  const GridGeometry g{4, 4, 4};
  const CsrMatrix A = grid3d_laplacian(g, Stencil3D::SevenPoint);
  EXPECT_EQ(A.n_rows(), 64);
  EXPECT_EQ(A.row_nnz(g.vertex(1, 1, 1)), 7);
  EXPECT_TRUE(A.pattern_is_symmetric());
  EXPECT_TRUE(strictly_diagonally_dominant(A));
}

TEST(Generators, Grid3dTwentySevenPointShape) {
  const GridGeometry g{5, 5, 5};
  const CsrMatrix A = grid3d_laplacian(g, Stencil3D::TwentySevenPoint);
  EXPECT_EQ(A.row_nnz(g.vertex(2, 2, 2)), 27);
  EXPECT_TRUE(A.pattern_is_symmetric());
  EXPECT_TRUE(strictly_diagonally_dominant(A));
}

TEST(Generators, ConvectionDiffusionIsNonsymmetricButDominant) {
  const GridGeometry g{8, 8, 1};
  const CsrMatrix A = grid2d_convection_diffusion(g, 0.5);
  EXPECT_TRUE(A.pattern_is_symmetric());  // pattern symmetric...
  bool value_asym = false;                // ...but values are not
  for (index_t i = 0; i < A.n_rows() && !value_asym; ++i)
    for (index_t j : A.row_cols(i))
      if (std::abs(A.at(i, j) - A.at(j, i)) > 1e-12) {
        value_asym = true;
        break;
      }
  EXPECT_TRUE(value_asym);
  EXPECT_TRUE(strictly_diagonally_dominant(A));
}

TEST(Generators, Circuit2dDeterministicAndDominant) {
  const GridGeometry g{10, 10, 1};
  const CsrMatrix A = circuit2d(g, 20, 99);
  const CsrMatrix B = circuit2d(g, 20, 99);
  EXPECT_EQ(A.nnz(), B.nnz());
  EXPECT_TRUE(A.pattern_is_symmetric());
  EXPECT_TRUE(strictly_diagonally_dominant(A));
  // Extra branches really were added beyond the plain grid.
  const CsrMatrix plain = grid2d_laplacian(g, Stencil2D::FivePoint);
  EXPECT_GT(A.nnz(), plain.nnz());
}

TEST(Generators, Kkt3dShapeAndDominance) {
  const GridGeometry g{3, 3, 3};
  const CsrMatrix A = kkt3d(g, 1);
  EXPECT_EQ(A.n_rows(), 2 * g.n());
  EXPECT_TRUE(A.pattern_is_symmetric());
  EXPECT_TRUE(strictly_diagonally_dominant(A));
  // The (2,2) block diagonal is negative (saddle-point structure).
  EXPECT_LT(A.at(g.n(), g.n()), 0.0);
}

TEST(Generators, PaperSuiteCoversPlanarAndNonplanar) {
  const auto suite = paper_test_suite(0);
  EXPECT_EQ(suite.size(), 10u);  // matches Table III's ten matrices
  int planar = 0, nonplanar = 0;
  for (const auto& t : suite) {
    EXPECT_GT(t.A.n_rows(), 0);
    EXPECT_FALSE(t.name.empty());
    (t.planar ? planar : nonplanar)++;
  }
  EXPECT_EQ(planar, 4);     // paper: four planar matrices
  EXPECT_EQ(nonplanar, 6);  // paper: six non-planar matrices
}

TEST(Generators, PaperSuiteScalesMonotonically) {
  const auto s0 = paper_test_suite(0);
  const auto s1 = paper_test_suite(1);
  for (std::size_t i = 0; i < s0.size(); ++i) {
    EXPECT_EQ(s0[i].name, s1[i].name);
    EXPECT_LT(s0[i].A.n_rows(), s1[i].A.n_rows());
  }
}

TEST(Generators, GeometryMatchesMatrixWhenPresent) {
  for (const auto& t : paper_test_suite(0)) {
    if (t.geom.nx > 0) {
      EXPECT_EQ(t.geom.n(), t.A.n_rows());
    }
  }
}

}  // namespace
}  // namespace slu3d
