#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "simmpi/process_grid.hpp"
#include "simmpi/runtime.hpp"
#include "support/check.hpp"

namespace slu3d::sim {
namespace {

const MachineModel kModel{};  // defaults

TEST(Runtime, SingleRankRuns) {
  const auto result = run_ranks(1, kModel, [](Comm& world) {
    EXPECT_EQ(world.rank(), 0);
    EXPECT_EQ(world.size(), 1);
    world.add_compute(1000, ComputeKind::Other);
  });
  EXPECT_EQ(result.ranks.size(), 1u);
  EXPECT_DOUBLE_EQ(result.ranks[0].clock, kModel.compute_time(1000));
}

TEST(Runtime, PingPongDeliversPayloadAndAdvancesClocks) {
  const auto result = run_ranks(2, kModel, [](Comm& world) {
    if (world.rank() == 0) {
      world.send(1, 5, std::vector<real_t>{1.5, 2.5}, CommPlane::XY);
      const auto back = world.recv(1, 6, CommPlane::XY);
      ASSERT_EQ(back.size(), 1u);
      EXPECT_DOUBLE_EQ(back[0], 4.0);
    } else {
      const auto msg = world.recv(0, 5, CommPlane::XY);
      ASSERT_EQ(msg.size(), 2u);
      world.send(0, 6, std::vector<real_t>{msg[0] + msg[1]}, CommPlane::XY);
    }
  });
  // Rank 1 received 2 doubles after one latency + transfer.
  EXPECT_EQ(result.ranks[0].bytes_sent[0], 16);
  EXPECT_EQ(result.ranks[1].bytes_received[0], 16);
  EXPECT_EQ(result.ranks[0].messages_sent[0], 1);
  // Clock of rank 0 >= two message times (round trip).
  EXPECT_GE(result.max_clock(), 2 * kModel.alpha);
}

TEST(Runtime, MessagesMatchFifoPerTag) {
  run_ranks(2, kModel, [](Comm& world) {
    if (world.rank() == 0) {
      world.send(1, 1, std::vector<real_t>{1}, CommPlane::XY);
      world.send(1, 2, std::vector<real_t>{2}, CommPlane::XY);
      world.send(1, 1, std::vector<real_t>{3}, CommPlane::XY);
    } else {
      // Receive the tag-2 message first; tag-1 messages stay ordered.
      EXPECT_DOUBLE_EQ(world.recv(0, 2, CommPlane::XY)[0], 2);
      EXPECT_DOUBLE_EQ(world.recv(0, 1, CommPlane::XY)[0], 1);
      EXPECT_DOUBLE_EQ(world.recv(0, 1, CommPlane::XY)[0], 3);
    }
  });
}

TEST(Runtime, PlanesAreAccountedSeparately) {
  const auto result = run_ranks(2, kModel, [](Comm& world) {
    if (world.rank() == 0) {
      world.send(1, 1, std::vector<real_t>(10), CommPlane::XY);
      world.send(1, 2, std::vector<real_t>(20), CommPlane::Z);
    } else {
      world.recv(0, 1, CommPlane::XY);
      world.recv(0, 2, CommPlane::Z);
    }
  });
  EXPECT_EQ(result.ranks[0].bytes_sent[static_cast<int>(CommPlane::XY)], 80);
  EXPECT_EQ(result.ranks[0].bytes_sent[static_cast<int>(CommPlane::Z)], 160);
}

class BcastSizes : public ::testing::TestWithParam<int> {};

TEST_P(BcastSizes, DeliversFromEveryRoot) {
  const int p = GetParam();
  for (int root = 0; root < p; ++root) {
    run_ranks(p, kModel, [root](Comm& world) {
      std::vector<real_t> buf(3, 0.0);
      if (world.rank() == root) buf = {1.0, 2.0, 3.0};
      world.bcast(root, 9, buf, CommPlane::XY);
      EXPECT_DOUBLE_EQ(buf[0], 1.0);
      EXPECT_DOUBLE_EQ(buf[2], 3.0);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(PowersAndOdd, BcastSizes, ::testing::Values(1, 2, 3, 4, 5, 8, 13));

class ReduceSizes : public ::testing::TestWithParam<int> {};

TEST_P(ReduceSizes, SumsOntoRoot) {
  const int p = GetParam();
  for (int root = 0; root < std::min(p, 3); ++root) {
    run_ranks(p, kModel, [root, p](Comm& world) {
      std::vector<real_t> buf{static_cast<real_t>(world.rank() + 1), 1.0};
      world.reduce_sum(root, 11, buf, CommPlane::XY);
      if (world.rank() == root) {
        EXPECT_DOUBLE_EQ(buf[0], p * (p + 1) / 2.0);
        EXPECT_DOUBLE_EQ(buf[1], p);
      }
    });
  }
}

INSTANTIATE_TEST_SUITE_P(PowersAndOdd, ReduceSizes, ::testing::Values(1, 2, 3, 4, 6, 8, 9));

TEST(Runtime, AllreduceSumAndMax) {
  run_ranks(5, kModel, [](Comm& world) {
    std::vector<real_t> buf{1.0};
    world.allreduce_sum(13, buf, CommPlane::XY);
    EXPECT_DOUBLE_EQ(buf[0], 5.0);
    const double mx = world.allreduce_max(14, world.rank() * 1.5, CommPlane::XY);
    EXPECT_DOUBLE_EQ(mx, 6.0);
  });
}

TEST(Runtime, AllgathervConcatenatesInRankOrder) {
  run_ranks(4, kModel, [](Comm& world) {
    // Rank r contributes r+1 copies of the value r.
    std::vector<real_t> mine(static_cast<std::size_t>(world.rank() + 1),
                             static_cast<real_t>(world.rank()));
    const auto all = world.allgatherv(21, mine, CommPlane::XY);
    ASSERT_EQ(all.size(), 1u + 2u + 3u + 4u);
    std::size_t pos = 0;
    for (int r = 0; r < 4; ++r)
      for (int k = 0; k <= r; ++k) EXPECT_DOUBLE_EQ(all[pos++], r);
  });
}

TEST(Runtime, AllgathervSingleRank) {
  run_ranks(1, kModel, [](Comm& world) {
    const auto all = world.allgatherv(22, std::vector<real_t>{1, 2}, CommPlane::XY);
    ASSERT_EQ(all.size(), 2u);
    EXPECT_DOUBLE_EQ(all[1], 2.0);
  });
}

TEST(Runtime, BarrierSynchronizesClocks) {
  const auto result = run_ranks(4, kModel, [](Comm& world) {
    if (world.rank() == 2) world.add_compute(1000000000, ComputeKind::Other);
    world.barrier(15, CommPlane::XY);
    // Everyone's clock is now at least the slow rank's compute time.
    EXPECT_GE(world.clock(), kModel.compute_time(1000000000));
  });
  EXPECT_GE(result.max_clock(), kModel.compute_time(1000000000));
}

TEST(Runtime, RecvArrivalRaisesReceiverClock) {
  const auto result = run_ranks(2, kModel, [](Comm& world) {
    if (world.rank() == 0) {
      world.add_compute(2000000000, ComputeKind::Other);  // 0.12 s
      world.send(1, 3, std::vector<real_t>(1000), CommPlane::XY);
    } else {
      world.recv(0, 3, CommPlane::XY);
      EXPECT_GE(world.clock(), kModel.compute_time(2000000000));
    }
  });
  (void)result;
}

TEST(Runtime, SplitFormsDisjointGroups) {
  run_ranks(6, kModel, [](Comm& world) {
    Comm half = world.split(world.rank() % 2, world.rank());
    EXPECT_EQ(half.size(), 3);
    // Communicate within the split comm only.
    std::vector<real_t> v{static_cast<real_t>(world.rank())};
    half.allreduce_sum(1, v, CommPlane::XY);
    if (world.rank() % 2 == 0)
      EXPECT_DOUBLE_EQ(v[0], 0 + 2 + 4);
    else
      EXPECT_DOUBLE_EQ(v[0], 1 + 3 + 5);
  });
}

TEST(Runtime, SplitIsFreeOfCharge) {
  const auto result = run_ranks(4, kModel, [](Comm& world) {
    (void)world.split(world.rank() / 2, world.rank());
  });
  for (const auto& r : result.ranks) {
    EXPECT_EQ(r.total_bytes_sent(), 0);
    EXPECT_DOUBLE_EQ(r.clock, 0.0);
  }
}

TEST(Runtime, RankExceptionPropagatesAndUnblocksOthers) {
  EXPECT_THROW(run_ranks(3, kModel,
                         [](Comm& world) {
                           if (world.rank() == 1) throw Error("rank 1 died");
                           // Other ranks block forever unless aborted.
                           world.recv((world.rank() + 1) % 3, 1, CommPlane::XY);
                         }),
               Error);
}

TEST(ProcessGrid2D, LayoutAndSubComms) {
  run_ranks(6, kModel, [](Comm& world) {
    auto g = ProcessGrid2D::create(world, 2, 3);
    EXPECT_EQ(g.px(), world.rank() / 3);
    EXPECT_EQ(g.py(), world.rank() % 3);
    EXPECT_EQ(g.row().size(), 3);
    EXPECT_EQ(g.col().size(), 2);
    EXPECT_EQ(g.row().rank(), g.py());
    EXPECT_EQ(g.col().rank(), g.px());
    // Block-cyclic ownership: block (i, j) on (i%2, j%3).
    EXPECT_EQ(g.owner(4, 7), (4 % 2) * 3 + (7 % 3));
    EXPECT_EQ(g.owns(g.px(), g.py()), true);
  });
}

TEST(ProcessGrid3D, PlaneAndZLine) {
  run_ranks(12, kModel, [](Comm& world) {
    auto g = ProcessGrid3D::create(world, 2, 2, 3);
    EXPECT_EQ(g.pz(), world.rank() / 4);
    EXPECT_EQ(g.plane().grid().size(), 4);
    EXPECT_EQ(g.zline().size(), 3);
    EXPECT_EQ(g.zline().rank(), g.pz());
    // z-line neighbours share (px, py): verify by exchanging coordinates.
    std::vector<real_t> v{static_cast<real_t>(g.plane().px() * 10 + g.plane().py())};
    std::vector<real_t> mine = v;
    g.zline().allreduce_sum(1, v, CommPlane::Z);
    EXPECT_DOUBLE_EQ(v[0], 3 * mine[0]);
  });
}

TEST(NonBlocking, IsendIrecvMatchInPostOrderEvenWhenWaitedReversed) {
  // MPI non-overtaking: messages on the same (comm, src, tag) match posted
  // receives in post order, no matter which request is waited first.
  // Waiting the *later* request first is the deadlock regression: matching
  // keyed on "whoever waits first gets the oldest message" would either
  // deliver out of order or stall.
  run_ranks(2, kModel, [](Comm& world) {
    if (world.rank() == 0) {
      world.isend(1, 3, std::vector<real_t>{10}, CommPlane::XY);
      world.isend(1, 3, std::vector<real_t>{20}, CommPlane::XY);
      world.isend(1, 3, std::vector<real_t>{30}, CommPlane::XY);
    } else {
      Request r1 = world.irecv(0, 3, CommPlane::XY);
      Request r2 = world.irecv(0, 3, CommPlane::XY);
      Request r3 = world.irecv(0, 3, CommPlane::XY);
      EXPECT_DOUBLE_EQ(r3.take()[0], 30);  // reversed wait order
      EXPECT_DOUBLE_EQ(r1.take()[0], 10);
      EXPECT_DOUBLE_EQ(r2.take()[0], 20);
    }
  });
}

TEST(NonBlocking, MixedBlockingAndNonblockingShareOneFifo) {
  // Blocking recv and irecv on the same (src, tag) draw tickets from the
  // same queue: interleaving the two forms preserves message order.
  run_ranks(2, kModel, [](Comm& world) {
    if (world.rank() == 0) {
      world.send(1, 9, std::vector<real_t>{1}, CommPlane::XY);
      world.isend(1, 9, std::vector<real_t>{2}, CommPlane::XY);
      world.send(1, 9, std::vector<real_t>{3}, CommPlane::XY);
    } else {
      Request r1 = world.irecv(0, 9, CommPlane::XY);
      const auto mid = world.recv(0, 9, CommPlane::XY);
      Request r3 = world.irecv(0, 9, CommPlane::XY);
      EXPECT_DOUBLE_EQ(r1.take()[0], 1);
      EXPECT_DOUBLE_EQ(mid[0], 2);
      EXPECT_DOUBLE_EQ(r3.take()[0], 3);
    }
  });
}

TEST(NonBlocking, ComputeBetweenPostAndWaitHidesTransfer) {
  // Exact LogGP arithmetic. The sender posts at clock 0, so the payload's
  // completion timestamp is alpha + beta*bytes. A receiver that computes
  // longer than that between irecv and wait absorbs the transfer entirely:
  // its clock is pure compute and wait_seconds stays zero. A receiver that
  // waits immediately pays the full residual.
  constexpr offset_t kBig = 1'000'000'000;  // compute >> transfer
  const double xfer = kModel.message_time(4 * sizeof(real_t));
  const auto result = run_ranks(3, kModel, [&](Comm& world) {
    if (world.rank() == 0) {
      world.isend(1, 1, std::vector<real_t>{1, 2, 3, 4}, CommPlane::XY);
      world.isend(2, 1, std::vector<real_t>{1, 2, 3, 4}, CommPlane::XY);
    } else if (world.rank() == 1) {
      Request r = world.irecv(0, 1, CommPlane::XY);
      world.add_compute(kBig, ComputeKind::Other);
      EXPECT_EQ(r.take().size(), 4u);
    } else {
      Request r = world.irecv(0, 1, CommPlane::XY);
      EXPECT_EQ(r.take().size(), 4u);
    }
  });
  EXPECT_DOUBLE_EQ(result.ranks[0].clock, 2 * kModel.alpha);  // overhead only
  EXPECT_DOUBLE_EQ(result.ranks[1].clock, kModel.compute_time(kBig));
  EXPECT_DOUBLE_EQ(result.ranks[1].wait_seconds, 0.0);
  // Rank 2's payload queues behind rank 1's on the sender's wire:
  // completion = max(post clock, wire free) + transfer = 2 transfers.
  EXPECT_DOUBLE_EQ(result.ranks[2].clock, 2 * xfer);
  EXPECT_DOUBLE_EQ(result.ranks[2].wait_seconds, 2 * xfer);
}

TEST(NonBlocking, BackToBackIsendsSerializeOnSenderWire) {
  // Platform-layer pin: on the default flat platform every outgoing message
  // serializes over the sender's single wire at alpha + beta*bytes each.
  // Two isends posted back to back therefore complete exactly one and two
  // full transfer times after the first post — the second cannot overtake
  // or overlap the first, no matter how eagerly the receiver drains them.
  const std::vector<real_t> payload(64, 3.0);
  const double xfer = kModel.message_time(
      static_cast<offset_t>(payload.size() * sizeof(real_t)));
  double after_first = 0, after_second = 0;
  const auto result = run_ranks(2, kModel, [&](Comm& world) {
    if (world.rank() == 0) {
      world.isend(1, 1, payload, CommPlane::XY);
      world.isend(1, 2, payload, CommPlane::XY);
    } else {
      world.recv(0, 1, CommPlane::XY);
      after_first = world.clock();
      world.recv(0, 2, CommPlane::XY);
      after_second = world.clock();
    }
  });
  EXPECT_DOUBLE_EQ(after_first, xfer);
  EXPECT_DOUBLE_EQ(after_second, 2 * xfer);
  // The sender's CPU clock pays only the two injection overheads; the wire
  // occupancy shows up as queueing attributed to its endpoint link.
  EXPECT_DOUBLE_EQ(result.ranks[0].clock, 2 * kModel.alpha);
  EXPECT_DOUBLE_EQ(result.ranks[0].link_queue_seconds, xfer - kModel.alpha);
}

TEST(NonBlocking, IsendMatchesBlockingArrivalOnIdleWire) {
  // With nothing else on the sender's network queue, an isend's completion
  // timestamp equals the blocking send's arrival: the receiver's clock is
  // the same either way. (This is what keeps the async factorization's
  // per-plane byte counters *and* first-message arrivals aligned with the
  // blocking schedule.)
  for (const bool async : {false, true}) {
    const auto result = run_ranks(2, kModel, [&](Comm& world) {
      if (world.rank() == 0) {
        if (async)
          world.isend(1, 1, std::vector<real_t>{7, 7}, CommPlane::XY);
        else
          world.send(1, 1, std::vector<real_t>{7, 7}, CommPlane::XY);
      } else {
        world.recv(0, 1, CommPlane::XY);
      }
    });
    EXPECT_DOUBLE_EQ(result.ranks[1].clock,
                     kModel.message_time(2 * sizeof(real_t)))
        << (async ? "isend" : "send");
  }
}

TEST(NonBlocking, IbcastMatchesBcastCountersAndOverlaps) {
  // The non-blocking broadcast uses the identical binomial tree: per-rank
  // byte and message counters must match bcast bit-for-bit, while compute
  // inserted between post and wait shortens the critical path.
  constexpr int kP = 5;
  constexpr offset_t kWork = 40'000'000;
  const std::vector<real_t> payload{1, 2, 3, 4, 5, 6, 7, 8};
  const auto blocking = run_ranks(kP, kModel, [&](Comm& world) {
    std::vector<real_t> buf(payload.size());
    if (world.rank() == 2) buf = payload;
    world.bcast(2, 4, buf, CommPlane::XY);
    world.add_compute(kWork, ComputeKind::Other);
    EXPECT_DOUBLE_EQ(buf[7], 8);
  });
  const auto async = run_ranks(kP, kModel, [&](Comm& world) {
    std::vector<real_t> buf(payload.size());
    if (world.rank() == 2) buf = payload;
    Request r = world.ibcast(2, 4, buf, CommPlane::XY);
    world.add_compute(kWork, ComputeKind::Other);
    r.wait();
    EXPECT_DOUBLE_EQ(buf[7], 8);
  });
  for (std::size_t r = 0; r < kP; ++r) {
    for (std::size_t pl = 0; pl < kNumPlanes; ++pl) {
      EXPECT_EQ(blocking.ranks[r].bytes_sent[pl], async.ranks[r].bytes_sent[pl]);
      EXPECT_EQ(blocking.ranks[r].bytes_received[pl],
                async.ranks[r].bytes_received[pl]);
      EXPECT_EQ(blocking.ranks[r].messages_sent[pl],
                async.ranks[r].messages_sent[pl]);
      EXPECT_EQ(blocking.ranks[r].messages_received[pl],
                async.ranks[r].messages_received[pl]);
    }
  }
  EXPECT_LT(async.max_clock(), blocking.max_clock());
}

TEST(NonBlocking, EqualTagIbcastsInFlightNeverAlias) {
  // The panel pipeline's lookahead window keeps several supernode
  // broadcasts in flight at once, and the per-supernode tag space wraps if
  // two live supernodes ever share tag(k, op). This pins the runtime
  // guarantee the stash relies on: two ibcasts posted on the SAME
  // (root, tag) pair FIFO-match in post order — the first wait always
  // receives the first payload, even when the waits are issued in reverse.
  constexpr int kP = 4;
  run_ranks(kP, kModel, [](Comm& world) {
    std::vector<real_t> a(4), b(4);
    if (world.rank() == 1) {
      a = {10, 11, 12, 13};
      b = {20, 21, 22, 23};
    }
    Request ra = world.ibcast(1, 7, a, CommPlane::XY);
    Request rb = world.ibcast(1, 7, b, CommPlane::XY);
    world.add_compute(1000, ComputeKind::Other);
    rb.wait();  // reversed wait order must not swap the payloads
    ra.wait();
    EXPECT_DOUBLE_EQ(a[0], 10) << "rank " << world.rank();
    EXPECT_DOUBLE_EQ(a[3], 13) << "rank " << world.rank();
    EXPECT_DOUBLE_EQ(b[0], 20) << "rank " << world.rank();
    EXPECT_DOUBLE_EQ(b[3], 23) << "rank " << world.rank();
  });
}

TEST(NonBlocking, SymmetricExchangeWithReversedWaitsDoesNotDeadlock) {
  // Both ranks post their receive, send, compute, then wait their own
  // requests last — a schedule that deadlocks under rendezvous blocking
  // sends. Buffered isend + ticketed irecv must complete it.
  const auto result = run_ranks(2, kModel, [](Comm& world) {
    const int peer = 1 - world.rank();
    Request ra = world.irecv(peer, 1, CommPlane::XY);
    Request rb = world.irecv(peer, 2, CommPlane::XY);
    world.isend(peer, 1, std::vector<real_t>{1}, CommPlane::XY);
    world.isend(peer, 2, std::vector<real_t>{2}, CommPlane::XY);
    world.add_compute(1000, ComputeKind::Other);
    EXPECT_DOUBLE_EQ(rb.take()[0], 2);  // reversed: tag-2 first
    EXPECT_DOUBLE_EQ(ra.take()[0], 1);
  });
  EXPECT_EQ(result.ranks[0].bytes_sent[0], result.ranks[1].bytes_sent[0]);
}

TEST(NonBlocking, TestPollsWithoutBlocking) {
  run_ranks(2, kModel, [](Comm& world) {
    if (world.rank() == 0) {
      // Nothing sent yet: test() on a fresh irecv must report false.
      Request r = world.irecv(1, 1, CommPlane::XY);
      world.send(1, 2, std::vector<real_t>{0}, CommPlane::XY);  // release peer
      EXPECT_TRUE(!r.done());
      r.wait();
      EXPECT_TRUE(r.done());
    } else {
      world.recv(0, 2, CommPlane::XY);
      world.isend(0, 1, std::vector<real_t>{5}, CommPlane::XY);
    }
  });
}

// ---- one-sided windows ----------------------------------------------------

TEST(Rma, PutDeliversIntoTargetMemoryAndCharges) {
  const auto result = run_ranks(2, kModel, [](Comm& world) {
    std::vector<real_t> mem(8, 0.0);
    Window win = world.win_create(3, mem, CommPlane::XY);
    if (world.rank() == 0) {
      win.put(1, 2, std::vector<real_t>{1, 2, 3, 4});
    } else {
      win.expect(0).wait();
      EXPECT_DOUBLE_EQ(mem[1], 0);
      EXPECT_DOUBLE_EQ(mem[2], 1);
      EXPECT_DOUBLE_EQ(mem[5], 4);
      EXPECT_DOUBLE_EQ(mem[6], 0);
    }
  });
  // Only the four data words are charged — the offset/length header rides
  // free, exactly as presence frames and payload sizes do elsewhere.
  EXPECT_EQ(result.ranks[0].bytes_sent[0], 32);
  EXPECT_EQ(result.ranks[0].messages_sent[0], 1);
  EXPECT_EQ(result.ranks[1].bytes_received[0], 32);
  EXPECT_EQ(result.ranks[1].messages_received[0], 1);
  EXPECT_GT(result.ranks[1].clock, 0.0);
}

TEST(Rma, OverlappingPutsApplyInPostOrderUnderReversedWaits) {
  // The RMA analogue of NonBlocking.EqualTagIbcastsInFlightNeverAlias: two
  // puts from one origin to the same region, waited in reverse, must land
  // in post order — waiting the later delivery forces the earlier one in
  // ahead of it, so the final contents are always the second put's.
  run_ranks(2, kModel, [](Comm& world) {
    std::vector<real_t> mem(4, -1.0);
    Window win = world.win_create(3, mem, CommPlane::XY);
    if (world.rank() == 0) {
      win.put(1, 0, std::vector<real_t>{10, 11, 12, 13});
      win.put(1, 0, std::vector<real_t>{20, 21, 22, 23});
    } else {
      WindowDelivery first = win.expect(0);
      WindowDelivery second = win.expect(0);
      world.add_compute(1000, ComputeKind::Other);
      second.wait();
      EXPECT_DOUBLE_EQ(mem[0], 20) << "puts overtook each other";
      first.wait();  // already applied: must not reapply
      EXPECT_DOUBLE_EQ(mem[0], 20);
      EXPECT_DOUBLE_EQ(mem[3], 23);
    }
  });
}

TEST(Rma, AccumulateAddsElementwise) {
  const auto result = run_ranks(3, kModel, [](Comm& world) {
    std::vector<real_t> mem(4, 1.0);
    Window win = world.win_create(5, mem, CommPlane::Z);
    if (world.rank() != 0) {
      win.accumulate(0, 1, std::vector<real_t>{static_cast<real_t>(world.rank()), 2.0});
    } else {
      win.expect(1).wait();
      win.expect(2).wait();
      EXPECT_DOUBLE_EQ(mem[0], 1.0);
      EXPECT_DOUBLE_EQ(mem[1], 1.0 + 1.0 + 2.0);
      EXPECT_DOUBLE_EQ(mem[2], 1.0 + 2.0 + 2.0);
      EXPECT_DOUBLE_EQ(mem[3], 1.0);
    }
  });
  EXPECT_EQ(result.ranks[0].bytes_received[1], 2 * 16);
  EXPECT_EQ(result.ranks[0].messages_received[1], 2);
}

TEST(Rma, ScatterAccumulateAddsOnlySetBits) {
  const auto result = run_ranks(2, kModel, [](Comm& world) {
    std::vector<real_t> mem(70, 0.5);
    Window win = world.win_create(1, mem, CommPlane::XY);
    if (world.rank() == 0) {
      // A 70-element span with bits 0, 3, 64, 69 set.
      std::vector<std::uint64_t> bits(2, 0);
      bits[0] = (std::uint64_t{1} << 0) | (std::uint64_t{1} << 3);
      bits[1] = (std::uint64_t{1} << 0) | (std::uint64_t{1} << 5);
      win.scatter_accumulate(1, 0, 70, bits, std::vector<real_t>{1, 2, 3, 4});
    } else {
      win.expect(0).wait();
      EXPECT_DOUBLE_EQ(mem[0], 1.5);
      EXPECT_DOUBLE_EQ(mem[3], 2.5);
      EXPECT_DOUBLE_EQ(mem[64], 3.5);
      EXPECT_DOUBLE_EQ(mem[69], 4.5);
      EXPECT_DOUBLE_EQ(mem[1], 0.5);
      EXPECT_DOUBLE_EQ(mem[68], 0.5);
    }
  });
  // Two bitmap words + four packed scalars travel (and are charged).
  EXPECT_EQ(result.ranks[1].bytes_received[0], (2 + 4) * 8);
  EXPECT_EQ(result.ranks[1].messages_received[0], 1);
}

TEST(Rma, FencePublishesSnapshotsForGet) {
  run_ranks(2, kModel, [](Comm& world) {
    std::vector<real_t> mem(3, 0.0);
    if (world.rank() == 0) mem = {7, 8, 9};
    Window win = world.win_create(2, mem, CommPlane::XY);
    // Creation publishes the initial contents.
    std::vector<real_t> got(2);
    win.get(0, 1, got);
    EXPECT_DOUBLE_EQ(got[0], 8);
    EXPECT_DOUBLE_EQ(got[1], 9);
    // A local write is invisible to get() until a fence republishes...
    if (world.rank() == 0) mem[1] = 80;
    win.get(0, 1, got);
    EXPECT_DOUBLE_EQ(got[0], 8);
    win.fence(4);
    win.get(0, 1, got);
    EXPECT_DOUBLE_EQ(got[0], 80);
  });
}

TEST(Rma, FenceAppliesUnannouncedOpsExactlyOnce) {
  run_ranks(4, kModel, [](Comm& world) {
    std::vector<real_t> mem(4, 0.0);
    Window win = world.win_create(9, mem, CommPlane::XY);
    // No expect() calls at all: the epoch close must find and apply every
    // landed operation, in origin-rank then post order.
    if (world.rank() != 0)
      win.accumulate(0, 0, std::vector<real_t>{1, 1, 1, 1});
    win.fence(1);
    if (world.rank() == 0) {
      for (const real_t v : mem) {
        EXPECT_DOUBLE_EQ(v, 3.0);
      }
    }
    // Second epoch on the same window: nothing may double-apply.
    if (world.rank() == 1) win.put(0, 2, std::vector<real_t>{5});
    win.fence(1);
    if (world.rank() == 0) {
      EXPECT_DOUBLE_EQ(mem[2], 5.0);
      EXPECT_DOUBLE_EQ(mem[1], 3.0);
    }
  });
}

TEST(Rma, FenceCompletesExpectedButUnwaitedDeliveries) {
  run_ranks(2, kModel, [](Comm& world) {
    std::vector<real_t> mem(2, 0.0);
    Window win = world.win_create(6, mem, CommPlane::XY);
    WindowDelivery d;
    if (world.rank() == 1) d = win.expect(0);
    if (world.rank() == 0) win.put(1, 0, std::vector<real_t>{4, 2});
    win.fence(2);
    if (world.rank() == 1) {
      EXPECT_DOUBLE_EQ(mem[0], 4);
      d.wait();  // the fence already applied it: a no-op, not a hang
      EXPECT_DOUBLE_EQ(mem[1], 2);
    }
  });
}

TEST(Rma, PerLevelWindowsOnSameTagNeverAlias) {
  // Re-creating a window on the same (communicator, tag) — as the z
  // reduction does per level — must yield a distinct matching stream.
  run_ranks(2, kModel, [](Comm& world) {
    std::vector<real_t> a(2, 0.0), b(2, 0.0);
    Window wa = world.win_create(7, a, CommPlane::Z);
    Window wb = world.win_create(7, b, CommPlane::Z);
    if (world.rank() == 0) {
      wb.put(1, 0, std::vector<real_t>{2, 2});
      wa.put(1, 0, std::vector<real_t>{1, 1});
    } else {
      wa.expect(0).wait();
      wb.expect(0).wait();
      EXPECT_DOUBLE_EQ(a[0], 1);
      EXPECT_DOUBLE_EQ(b[0], 2);
    }
  });
}

TEST(Runtime, ManyRanksStress) {
  // 64 rank-threads exchanging in a ring; exercises the mailbox machinery.
  const int p = 64;
  const auto result = run_ranks(p, kModel, [p](Comm& world) {
    const int next = (world.rank() + 1) % p;
    const int prev = (world.rank() + p - 1) % p;
    world.send(next, 1, std::vector<real_t>{static_cast<real_t>(world.rank())},
               CommPlane::XY);
    const auto got = world.recv(prev, 1, CommPlane::XY);
    EXPECT_DOUBLE_EQ(got[0], prev);
  });
  EXPECT_EQ(result.ranks.size(), 64u);
}

}  // namespace
}  // namespace slu3d::sim
