#include <gtest/gtest.h>

#include <cmath>

#include "order/nested_dissection.hpp"
#include "sparse/generators.hpp"

namespace slu3d {
namespace {

/// The invariant nested dissection must deliver for LU correctness: any
/// edge of the (permuted, symmetrized) graph connects two vertices whose
/// owning tree nodes are ancestor-related.
void expect_edges_respect_tree(const CsrMatrix& A, const SeparatorTree& tree) {
  const CsrMatrix Ap =
      A.permuted_symmetric(tree.perm()).symmetrized_pattern();
  // Map vertex -> owning node.
  std::vector<int> owner(static_cast<std::size_t>(tree.n()), -1);
  for (int v = 0; v < tree.n_nodes(); ++v) {
    const auto& nd = tree.node(v);
    for (index_t c = nd.sep_first; c < nd.sep_last; ++c)
      owner[static_cast<std::size_t>(c)] = v;
  }
  auto is_ancestor = [&](int a, int b) {  // a ancestor-or-equal of b
    return tree.node(a).subtree_first <= tree.node(b).subtree_first &&
           tree.node(b).sep_last <= tree.node(a).sep_last;
  };
  for (index_t i = 0; i < Ap.n_rows(); ++i) {
    for (index_t j : Ap.row_cols(i)) {
      if (i == j) continue;
      const int a = owner[static_cast<std::size_t>(i)];
      const int b = owner[static_cast<std::size_t>(j)];
      ASSERT_TRUE(is_ancestor(a, b) || is_ancestor(b, a))
          << "edge (" << i << "," << j << ") crosses unrelated tree nodes";
    }
  }
}

class NdOnSuite : public ::testing::TestWithParam<int> {};

TEST_P(NdOnSuite, TreeInvariantsAndSeparatorProperty) {
  const auto suite = paper_test_suite(0);
  const auto& t = suite[static_cast<std::size_t>(GetParam())];
  const SeparatorTree tree = nested_dissection(t.A, {.leaf_size = 8});
  EXPECT_TRUE(is_permutation(tree.perm()));
  expect_edges_respect_tree(t.A, tree);
}

INSTANTIATE_TEST_SUITE_P(AllMatrices, NdOnSuite, ::testing::Range(0, 10),
                         [](const auto& param_info) {
                           return paper_test_suite(0)[static_cast<std::size_t>(param_info.param)].name;
                         });

TEST(NestedDissection, BalancedOnSquareGrid) {
  const GridGeometry g{24, 24, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = nested_dissection(A, {.leaf_size = 16});
  const auto& root = tree.node(tree.root());
  ASSERT_FALSE(root.is_leaf());
  const auto l = tree.node(root.left).subtree_size();
  const auto r = tree.node(root.right).subtree_size();
  // Level-set separators are not perfectly balanced, but should be sane.
  EXPECT_GT(std::min(l, r), g.n() / 5);
  // Top separator should be O(sqrt(n)), allow generous slack.
  EXPECT_LE(root.block_size(), 4 * 24);
}

TEST(NestedDissection, HandlesDisconnectedGraph) {
  // Two disjoint paths.
  CooMatrix coo(10, 10);
  for (index_t i = 0; i < 4; ++i) {
    coo.add(i, i + 1, -1);
    coo.add(i + 1, i, -1);
  }
  for (index_t i = 5; i < 9; ++i) {
    coo.add(i, i + 1, -1);
    coo.add(i + 1, i, -1);
  }
  for (index_t i = 0; i < 10; ++i) coo.add(i, i, 4);
  const CsrMatrix A = CsrMatrix::from_coo(coo);
  const SeparatorTree tree = nested_dissection(A, {.leaf_size = 2});
  EXPECT_TRUE(is_permutation(tree.perm()));
  expect_edges_respect_tree(A, tree);
}

TEST(NestedDissection, SingletonAndTinyGraphs) {
  CooMatrix coo(1, 1);
  coo.add(0, 0, 1.0);
  const CsrMatrix A = CsrMatrix::from_coo(coo);
  const SeparatorTree tree = nested_dissection(A);
  EXPECT_EQ(tree.n_nodes(), 1);
  EXPECT_TRUE(tree.node(tree.root()).is_leaf());
}

TEST(NestedDissection, CompleteGraphBecomesLeaf) {
  const index_t n = 12;
  CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) coo.add(i, j, i == j ? 20.0 : -1.0);
  const CsrMatrix A = CsrMatrix::from_coo(coo);
  const SeparatorTree tree = nested_dissection(A, {.leaf_size = 4});
  // Diameter 1: cannot be split, must degrade gracefully to a leaf.
  EXPECT_EQ(tree.n_nodes(), 1);
}

TEST(GeometricNd, ExactSeparatorSizesOnGrid) {
  const GridGeometry g{31, 31, 1};
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 16});
  EXPECT_TRUE(is_permutation(tree.perm()));
  const auto& root = tree.node(tree.root());
  EXPECT_EQ(root.block_size(), 31);  // one full grid line
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  expect_edges_respect_tree(A, tree);
}

TEST(GeometricNd, WorksFor3dAndNinePoint) {
  const GridGeometry g3{7, 7, 7};
  const SeparatorTree t3 = geometric_nd(g3, {.leaf_size = 8});
  EXPECT_EQ(t3.node(t3.root()).block_size(), 49);  // a full plane
  const CsrMatrix A3 = grid3d_laplacian(g3, Stencil3D::TwentySevenPoint);
  expect_edges_respect_tree(A3, t3);

  const GridGeometry g2{9, 9, 1};
  const CsrMatrix A9 = grid2d_laplacian(g2, Stencil2D::NinePoint);
  expect_edges_respect_tree(A9, geometric_nd(g2, {.leaf_size = 4}));
}

TEST(GeometricNd, LeafSizeRespected) {
  const GridGeometry g{16, 16, 1};
  const SeparatorTree tree = geometric_nd(g, {.leaf_size = 10});
  for (int v = 0; v < tree.n_nodes(); ++v) {
    if (tree.node(v).is_leaf()) {
      EXPECT_LE(tree.node(v).block_size(), 10);
    }
  }
}

TEST(Rcm, ProducesValidPermutationAndReducesBandwidth) {
  const GridGeometry g{12, 12, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const auto perm = rcm_ordering(A);
  EXPECT_TRUE(is_permutation(perm));
  auto bandwidth = [](const CsrMatrix& M) {
    index_t bw = 0;
    for (index_t i = 0; i < M.n_rows(); ++i)
      for (index_t j : M.row_cols(i)) bw = std::max(bw, std::abs(i - j));
    return bw;
  };
  // Scramble, then RCM should bring bandwidth back near the grid's nx.
  std::vector<index_t> scramble(static_cast<std::size_t>(A.n_rows()));
  for (std::size_t i = 0; i < scramble.size(); ++i)
    scramble[i] = static_cast<index_t>((17 * i + 5) % scramble.size());
  const CsrMatrix S = A.permuted_symmetric(scramble);
  const CsrMatrix R = S.permuted_symmetric(rcm_ordering(S));
  EXPECT_LT(bandwidth(R), bandwidth(S));
  EXPECT_LE(bandwidth(R), 3 * 12);
}

}  // namespace
}  // namespace slu3d
