#include <gtest/gtest.h>

#include <algorithm>

#include "order/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "symbolic/block_structure.hpp"
#include "symbolic/etree.hpp"

namespace slu3d {
namespace {

/// Dense reference symbolic Cholesky on the pattern of A + Aᵀ: O(n^3) but
/// obviously correct.
std::vector<std::vector<index_t>> dense_symbolic(const CsrMatrix& A) {
  const index_t n = A.n_rows();
  std::vector<std::vector<bool>> full(static_cast<std::size_t>(n),
                                      std::vector<bool>(static_cast<std::size_t>(n), false));
  for (index_t i = 0; i < n; ++i)
    for (index_t j : A.row_cols(i)) {
      full[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = true;
      full[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = true;
    }
  for (index_t k = 0; k < n; ++k)
    for (index_t i = k + 1; i < n; ++i)
      if (full[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)])
        for (index_t j = k + 1; j < n; ++j)
          if (full[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)])
            full[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = true;
  std::vector<std::vector<index_t>> cols(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j + 1; i < n; ++i)
      if (full[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)])
        cols[static_cast<std::size_t>(j)].push_back(i);
  return cols;
}

TEST(Etree, KnownSmallExample) {
  // Arrow matrix: every vertex connects to the last one; etree is a path
  // onto n-1? No: parent of each i < n-1 is n-1 directly.
  const index_t n = 6;
  CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 4);
    if (i + 1 < n) {
      coo.add(i, n - 1, -1);
      coo.add(n - 1, i, -1);
    }
  }
  const auto parent = elimination_tree(CsrMatrix::from_coo(coo));
  for (index_t i = 0; i + 1 < n; ++i) {
    EXPECT_EQ(parent[static_cast<std::size_t>(i)], n - 1);
  }
  EXPECT_EQ(parent[static_cast<std::size_t>(n - 1)], -1);
}

TEST(Etree, PostorderVisitsChildrenFirst) {
  const GridGeometry g{6, 6, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const auto parent = elimination_tree(A);
  const auto post = tree_postorder(parent);
  std::vector<int> position(post.size());
  for (std::size_t k = 0; k < post.size(); ++k)
    position[static_cast<std::size_t>(post[k])] = static_cast<int>(k);
  for (std::size_t v = 0; v < parent.size(); ++v) {
    if (parent[v] >= 0) {
      EXPECT_LT(position[v], position[static_cast<std::size_t>(parent[v])]);
    }
  }
}

TEST(Etree, HeightOfPathGraph) {
  const index_t n = 10;
  CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 4);
    if (i + 1 < n) {
      coo.add(i, i + 1, -1);
      coo.add(i + 1, i, -1);
    }
  }
  const auto parent = elimination_tree(CsrMatrix::from_coo(coo));
  EXPECT_EQ(tree_height(parent), n);  // natural order path: a chain
}

TEST(SymbolicFill, MatchesDenseReferenceOnSuite) {
  for (const auto& t : paper_test_suite(0)) {
    if (t.A.n_rows() > 600) continue;  // keep the O(n^3) reference cheap
    const auto fast = symbolic_fill(t.A);
    const auto ref = dense_symbolic(t.A);
    ASSERT_EQ(fast.size(), ref.size()) << t.name;
    for (std::size_t j = 0; j < fast.size(); ++j)
      EXPECT_EQ(fast[j], ref[j]) << t.name << " column " << j;
  }
}

TEST(SymbolicFill, NnzCountConsistent) {
  const GridGeometry g{8, 8, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const auto cols = symbolic_fill(A);
  offset_t nnz = A.n_rows();
  for (const auto& c : cols) nnz += static_cast<offset_t>(c.size());
  EXPECT_EQ(nnz, scalar_factor_nnz(A));
  EXPECT_GE(nnz, A.nnz() / 2 + A.n_rows() / 2);  // at least the lower part of A
}

class BlockStructureOnSuite : public ::testing::TestWithParam<int> {};

TEST_P(BlockStructureOnSuite, Invariants) {
  const auto suite = paper_test_suite(0);
  const auto& t = suite[static_cast<std::size_t>(GetParam())];
  const SeparatorTree tree = nested_dissection(t.A, {.leaf_size = 8});
  const BlockStructure bs(t.A, tree);

  EXPECT_EQ(bs.n(), t.A.n_rows());
  EXPECT_EQ(bs.n_snodes(), tree.n_nodes());

  offset_t covered = 0;
  for (int s = 0; s < bs.n_snodes(); ++s) {
    covered += bs.snode_size(s);
    const index_t beyond = bs.first_col(s) + bs.snode_size(s);
    index_t last_row = -1;
    index_t total_rows = 0;
    for (const PanelBlock& blk : bs.lpanel(s)) {
      EXPECT_GT(blk.snode, s);  // strictly below the diagonal
      for (index_t r : blk.rows) {
        EXPECT_GT(r, last_row);  // globally sorted across blocks
        last_row = r;
        EXPECT_GE(r, beyond);
        EXPECT_EQ(bs.col_to_snode(r), blk.snode);
      }
      total_rows += blk.n_rows();
    }
    EXPECT_EQ(total_rows, bs.panel_rows(s));
    // ND parentage: every panel block's supernode is an ND ancestor.
    for (const PanelBlock& blk : bs.lpanel(s)) {
      int a = s;
      bool found = false;
      while ((a = bs.nd_parent(a)) >= 0)
        if (a == blk.snode) {
          found = true;
          break;
        }
      EXPECT_TRUE(found) << "panel block outside the ND ancestor path";
    }
  }
  EXPECT_EQ(covered, static_cast<offset_t>(bs.n()));
  EXPECT_GT(bs.total_flops(), 0);
  EXPECT_GT(bs.total_nnz(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllMatrices, BlockStructureOnSuite,
                         ::testing::Range(0, 10), [](const auto& param_info) {
                           return paper_test_suite(0)[static_cast<std::size_t>(param_info.param)].name;
                         });

TEST(BlockStructure, SupersetOfScalarFill) {
  // The relaxed (dense-block) structure must contain the exact scalar fill.
  const GridGeometry g{10, 10, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const SeparatorTree tree = nested_dissection(A, {.leaf_size = 6});
  const BlockStructure bs(A, tree);
  const CsrMatrix Ap = A.permuted_symmetric(tree.perm());
  const auto scalar = symbolic_fill(Ap);
  for (index_t j = 0; j < A.n_rows(); ++j) {
    const int sj = bs.col_to_snode(j);
    const index_t beyond = bs.first_col(sj) + bs.snode_size(sj);
    for (index_t i : scalar[static_cast<std::size_t>(j)]) {
      if (i < beyond) continue;  // inside the dense diagonal block
      bool found = false;
      for (const PanelBlock& blk : bs.lpanel(sj))
        if (std::binary_search(blk.rows.begin(), blk.rows.end(), i)) {
          found = true;
          break;
        }
      EXPECT_TRUE(found) << "scalar fill (" << i << "," << j
                         << ") missing from block structure";
    }
  }
  // And the dense-block nnz must dominate the scalar count.
  EXPECT_GE(bs.total_nnz(), 2 * scalar_factor_nnz(Ap) - A.n_rows());
}

TEST(BlockStructure, EmptySeparatorTiesKeepRangesConsistent) {
  // Regression: many disconnected islands produce empty separator blocks
  // whose sep_first ties with the first node of the *next* branch; the
  // supernode renumbering must keep ranges, tree links, and panel blocks
  // mutually consistent (panel blocks must stay on the ND ancestor path).
  const index_t k = 14, m = 9;
  CooMatrix coo(k * m, k * m);
  for (index_t c = 0; c < k; ++c)
    for (index_t i = 0; i + 1 < m; ++i) {
      coo.add(c * m + i, c * m + i + 1, -1.0);
      coo.add(c * m + i + 1, c * m + i, -1.0);
    }
  for (index_t i = 0; i < k * m; ++i) coo.add(i, i, 3.0);
  const CsrMatrix A = CsrMatrix::from_coo(coo);
  const BlockStructure bs(A, nested_dissection(A, {.leaf_size = 4}));
  for (int s = 0; s < bs.n_snodes(); ++s) {
    for (const PanelBlock& blk : bs.lpanel(s)) {
      int a = s;
      bool found = false;
      while ((a = bs.nd_parent(a)) >= 0) {
        if (a == blk.snode) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "snode " << s << " panel block " << blk.snode
                         << " escapes the ancestor path";
    }
  }
}

TEST(BlockStructure, GeometricNdAgrees) {
  const GridGeometry g{9, 9, 1};
  const CsrMatrix A = grid2d_laplacian(g, Stencil2D::FivePoint);
  const BlockStructure bs(A, geometric_nd(g, {.leaf_size = 8}));
  EXPECT_EQ(bs.n(), 81);
  // Root supernode of the geometric ND of a 9x9 grid is a full line of 9.
  EXPECT_EQ(bs.snode_size(bs.n_snodes() - 1), 9);
}

}  // namespace
}  // namespace slu3d
