// Tier-1 tests for the resident SolverService: pattern-cache hits must
// skip the analysis pipeline entirely (verified by construction counts),
// refactorization must match a cold factorization bitwise, batched panel
// solves must match sequential single-RHS solves, queued solve streams
// must be tag-isolated, and the LRU must bound resident memory.
#include <gtest/gtest.h>

#include <cmath>

#include "service/solver_service.hpp"
#include "sparse/generators.hpp"
#include "support/rng.hpp"

namespace slu3d {
namespace {

using service::FactorReport;
using service::ServiceOptions;
using service::SolveReport;
using service::SolveRequest;
using service::SolverService;

/// Same sparsity pattern, different values (diagonal perturbed, stays
/// diagonally dominant).
CsrMatrix perturbed_values(const CsrMatrix& A, real_t diag_factor) {
  std::vector<real_t> vals(A.values().begin(), A.values().end());
  for (index_t r = 0; r < A.n_rows(); ++r) {
    const auto cols = A.row_cols(r);
    const auto base =
        static_cast<std::size_t>(A.row_ptr()[static_cast<std::size_t>(r)]);
    for (std::size_t k = 0; k < cols.size(); ++k)
      if (cols[k] == r) vals[base + k] *= diag_factor;
  }
  return CsrMatrix::from_raw(
      A.n_rows(), A.n_cols(),
      std::vector<offset_t>(A.row_ptr().begin(), A.row_ptr().end()),
      std::vector<index_t>(A.col_idx().begin(), A.col_idx().end()),
      std::move(vals));
}

std::vector<real_t> random_panel(std::size_t n, index_t nrhs,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<real_t> b(n * static_cast<std::size_t>(nrhs));
  for (auto& v : b) v = rng.uniform(-1, 1);
  return b;
}

ServiceOptions small_grid_options() {
  ServiceOptions o;
  o.Px = 2;
  o.Py = 2;
  o.Pz = 2;
  o.nd.leaf_size = 8;
  return o;
}

TEST(SolverService, CacheHitSkipsAnalysisAndMatchesColdFactorization) {
  const CsrMatrix A1 =
      grid2d_laplacian(GridGeometry{10, 10, 1}, Stencil2D::FivePoint);
  const CsrMatrix A2 = perturbed_values(A1, 1.5);
  const auto n = static_cast<std::size_t>(A1.n_rows());
  const std::vector<real_t> b = random_panel(n, 1, 7);

  SolverService svc(small_grid_options());
  const FactorReport f1 = svc.factor(A1);
  EXPECT_FALSE(f1.cache_hit);
  EXPECT_EQ(svc.stats().analyses, 1);
  EXPECT_EQ(svc.stats().refactorizations, 1);
  EXPECT_GT(f1.factor_time, 0);
  EXPECT_GT(f1.flops, 0);
  EXPECT_GT(f1.mem_total, 0);

  // Same pattern, new values: the construction count proves no ordering
  // or symbolic analysis ran — this is a pure numeric refactorization.
  const FactorReport f2 = svc.factor(A2);
  EXPECT_TRUE(f2.cache_hit);
  EXPECT_EQ(svc.stats().analyses, 1);
  EXPECT_EQ(svc.stats().cache_hits, 1);
  EXPECT_EQ(svc.stats().refactorizations, 2);
  EXPECT_EQ(f2.flops, f1.flops);  // same symbolic structure

  std::vector<real_t> x_hot(n);
  const SolveReport s_hot = svc.solve({b, x_hot, 1});
  EXPECT_LT(s_hot.residual, 1e-12);

  // Cold reference: a fresh service analyzing A2 from scratch must land
  // on the same factors, so the solutions agree bitwise.
  SolverService cold(small_grid_options());
  cold.factor(A2);
  EXPECT_EQ(cold.stats().analyses, 1);
  std::vector<real_t> x_cold(n);
  const SolveReport s_cold = cold.solve({b, x_cold, 1});
  EXPECT_LT(s_cold.residual, 1e-12);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(x_hot[i], x_cold[i]) << "component " << i;
}

TEST(SolverService, BatchedSolveMatchesSequentialIncludingRefinement) {
  const CsrMatrix A =
      grid2d_laplacian(GridGeometry{10, 9, 1}, Stencil2D::FivePoint);
  const auto n = static_cast<std::size_t>(A.n_rows());
  const index_t nrhs = 4;
  const std::vector<real_t> B = random_panel(n, nrhs, 21);

  ServiceOptions o = small_grid_options();
  o.refinement_steps = 2;  // refinement sweeps are batched too
  SolverService svc(o);
  svc.factor(A);

  std::vector<real_t> Xb(B.size());
  const SolveReport batch = svc.solve({B, Xb, nrhs});
  EXPECT_LT(batch.residual, 1e-12);

  for (index_t j = 0; j < nrhs; ++j) {
    const auto off = static_cast<std::size_t>(j) * n;
    std::vector<real_t> xj(n);
    svc.solve({std::span<const real_t>(B).subspan(off, n), xj, 1});
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(Xb[off + i], xj[i]) << "column " << j << " component " << i;
  }
}

TEST(SolverService, Batch16UsesAtLeast4xFewerMessagesPerRhs) {
  // Acceptance criterion: an nrhs = 16 batched solve must use >= 4x fewer
  // solve-phase messages per RHS than 16 sequential single-RHS solves
  // (measured by the simulator's CommStats). The schedule actually gives
  // ~16x: message counts are independent of the panel width.
  const CsrMatrix A =
      grid2d_laplacian(GridGeometry{10, 10, 1}, Stencil2D::FivePoint);
  const auto n = static_cast<std::size_t>(A.n_rows());

  ServiceOptions o = small_grid_options();
  o.refinement_steps = 0;
  SolverService svc(o);
  svc.factor(A);

  const std::vector<real_t> B = random_panel(n, 16, 33);
  std::vector<real_t> Xseq(B.size());
  std::vector<SolveRequest> singles;
  for (index_t j = 0; j < 16; ++j) {
    const auto off = static_cast<std::size_t>(j) * n;
    singles.push_back({std::span<const real_t>(B).subspan(off, n),
                       std::span<real_t>(Xseq).subspan(off, n), 1});
  }
  offset_t msgs_seq = 0;
  for (const SolveReport& r : svc.solve_stream(singles))
    msgs_seq += r.msg_solve_xy + r.msg_solve_z;

  std::vector<real_t> Xb(B.size());
  const SolveReport batch = svc.solve({B, Xb, 16});
  const offset_t msgs_batch = batch.msg_solve_xy + batch.msg_solve_z;

  ASSERT_GT(msgs_batch, 0);
  EXPECT_GE(msgs_seq, 4 * msgs_batch)
      << "sequential " << msgs_seq << " vs batched " << msgs_batch;
  // Identical numerics either way.
  for (std::size_t i = 0; i < B.size(); ++i) EXPECT_EQ(Xb[i], Xseq[i]);
}

TEST(SolverService, QueuedSolveStreamIsTagIsolated) {
  // Back-to-back queued solves on the same resident grid share one
  // simulated run; the host-side tag allocation must keep their message
  // tag ranges disjoint so results equal the one-at-a-time execution.
  const CsrMatrix A =
      grid2d_laplacian(GridGeometry{9, 10, 1}, Stencil2D::FivePoint);
  const auto n = static_cast<std::size_t>(A.n_rows());

  ServiceOptions o = small_grid_options();
  o.refinement_steps = 1;
  SolverService svc(o);
  svc.factor(A);

  const std::vector<real_t> b1 = random_panel(n, 1, 41);
  const std::vector<real_t> b2 = random_panel(n, 2, 43);
  const std::vector<real_t> b3 = random_panel(n, 3, 47);
  std::vector<real_t> x1(b1.size()), x2(b2.size()), x3(b3.size());
  const std::vector<SolveRequest> queue = {
      {b1, x1, 1}, {b2, x2, 2}, {b3, x3, 3}};
  const std::vector<SolveReport> reps = svc.solve_stream(queue);
  ASSERT_EQ(reps.size(), 3u);
  for (const SolveReport& r : reps) {
    EXPECT_LT(r.residual, 1e-12);
    EXPECT_GT(r.solve_time, 0);
    EXPECT_GT(r.msg_solve_xy + r.msg_solve_z, 0);
  }

  std::vector<real_t> y1(b1.size()), y2(b2.size()), y3(b3.size());
  svc.solve({b1, y1, 1});
  svc.solve({b2, y2, 2});
  svc.solve({b3, y3, 3});
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_EQ(x1[i], y1[i]);
  for (std::size_t i = 0; i < y2.size(); ++i) EXPECT_EQ(x2[i], y2[i]);
  for (std::size_t i = 0; i < y3.size(); ++i) EXPECT_EQ(x3[i], y3[i]);
}

TEST(SolverService, LruEvictionBoundsResidentPatterns) {
  const CsrMatrix A =
      grid2d_laplacian(GridGeometry{8, 8, 1}, Stencil2D::FivePoint);
  const CsrMatrix B =
      grid2d_laplacian(GridGeometry{9, 8, 1}, Stencil2D::FivePoint);
  const CsrMatrix C =
      grid2d_laplacian(GridGeometry{8, 9, 1}, Stencil2D::NinePoint);

  ServiceOptions o = small_grid_options();
  o.Pz = 1;
  o.max_patterns = 2;
  SolverService svc(o);
  svc.factor(A);
  svc.factor(B);
  EXPECT_EQ(svc.resident_patterns(), 2u);
  EXPECT_EQ(svc.stats().evictions, 0);

  svc.factor(C);  // evicts A (least recently used)
  EXPECT_EQ(svc.resident_patterns(), 2u);
  EXPECT_EQ(svc.stats().evictions, 1);
  EXPECT_EQ(svc.stats().analyses, 3);

  svc.factor(A);  // A was evicted: a fresh analysis
  EXPECT_EQ(svc.stats().analyses, 4);
  EXPECT_EQ(svc.stats().evictions, 2);  // B fell out in turn

  svc.factor(C);  // C is still resident: pure refactorization
  EXPECT_EQ(svc.stats().analyses, 4);
  EXPECT_EQ(svc.stats().cache_hits, 1);
}

/// Path graph plus a trailing 2x2 block whose determinant is controlled
/// by the last diagonal entry: 4.0 makes it exactly singular, anything
/// larger keeps it regular — the pattern never changes.
CsrMatrix path_plus_block(real_t last_diag) {
  const index_t nn = 34;
  CooMatrix coo(nn, nn);
  for (index_t i = 0; i + 1 < nn - 2; ++i) {
    coo.add(i, i + 1, -1.0);
    coo.add(i + 1, i, -1.0);
  }
  for (index_t i = 0; i < nn - 2; ++i) coo.add(i, i, 4.0);
  coo.add(nn - 2, nn - 2, 1.0);
  coo.add(nn - 2, nn - 1, 2.0);
  coo.add(nn - 1, nn - 2, 2.0);
  coo.add(nn - 1, nn - 1, last_diag);
  return CsrMatrix::from_coo(coo);
}

TEST(SolverService, FailedRefactorizationDropsResidentEntry) {
  ServiceOptions o;
  o.Px = 2;
  o.Py = 1;
  o.Pz = 2;
  o.nd.leaf_size = 4;
  SolverService svc(o);

  svc.factor(path_plus_block(5.0));
  EXPECT_TRUE(svc.has_current());

  // Same pattern with exactly singular values: the in-place numeric
  // refactorization fails, and the now-garbage resident entry must be
  // dropped rather than left answering solve requests.
  EXPECT_THROW(svc.factor(path_plus_block(4.0)), Error);
  EXPECT_FALSE(svc.has_current());
  EXPECT_EQ(svc.resident_patterns(), 0u);
  EXPECT_EQ(svc.stats().refactor_failures, 1);
  EXPECT_EQ(svc.stats().evictions, 0);  // a failure drop is not an eviction

  const auto n = static_cast<std::size_t>(34);
  std::vector<real_t> b(n, 1.0), x(n);
  EXPECT_THROW(svc.solve({b, x, 1}), Error);  // nothing resident

  svc.factor(path_plus_block(5.0));  // recovers with a fresh analysis
  EXPECT_EQ(svc.stats().analyses, 2);
  EXPECT_EQ(svc.stats().refactor_failures, 1);  // recovery didn't re-count
  const SolveReport s = svc.solve({b, x, 1});
  EXPECT_LT(s.residual, 1e-12);
}

TEST(SolverService, CapacityOneCacheThrashesAndReinsertMatchesCold) {
  // LRU edge case: a capacity-1 cache degenerates to "most recent pattern
  // only". Every pattern switch evicts, every re-insert re-analyzes, and a
  // re-inserted pattern solves bitwise identically to a never-evicted one.
  const CsrMatrix A =
      grid2d_laplacian(GridGeometry{10, 10, 1}, Stencil2D::FivePoint);
  const CsrMatrix B =
      grid2d_laplacian(GridGeometry{9, 10, 1}, Stencil2D::FivePoint);
  const auto n = static_cast<std::size_t>(A.n_rows());
  const std::vector<real_t> b = random_panel(n, 1, 51);

  ServiceOptions o = small_grid_options();
  o.max_patterns = 1;
  SolverService svc(o);

  svc.factor(A);
  EXPECT_EQ(svc.resident_patterns(), 1u);
  svc.factor(B);  // evicts A immediately
  EXPECT_EQ(svc.resident_patterns(), 1u);
  EXPECT_EQ(svc.stats().evictions, 1);
  EXPECT_EQ(svc.stats().analyses, 2);

  svc.factor(A);  // re-insert after eviction: a fresh analysis, B falls out
  EXPECT_EQ(svc.resident_patterns(), 1u);
  EXPECT_EQ(svc.stats().evictions, 2);
  EXPECT_EQ(svc.stats().analyses, 3);
  EXPECT_EQ(svc.stats().cache_hits, 0);

  std::vector<real_t> x_thrash(n);
  svc.solve({b, x_thrash, 1});

  SolverService fresh(small_grid_options());
  fresh.factor(A);
  std::vector<real_t> x_fresh(n);
  fresh.solve({b, x_fresh, 1});
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(x_thrash[i], x_fresh[i]) << "component " << i;
}

TEST(SolverService, FingerprintCollisionOnDistinctPatternsIsDisambiguated) {
  // Force a primary-fingerprint collision between two genuinely different
  // patterns via the test hook. The salted secondary fingerprint must keep
  // them apart: no false cache hit, both entries resident side by side.
  const CsrMatrix A =
      grid2d_laplacian(GridGeometry{10, 10, 1}, Stencil2D::FivePoint);
  const CsrMatrix B =
      grid2d_laplacian(GridGeometry{9, 9, 1}, Stencil2D::NinePoint);

  ServiceOptions o = small_grid_options();
  o.fingerprint_fn = [](const CsrMatrix&) { return 0xc0111deull; };
  SolverService svc(o);

  svc.factor(A);
  EXPECT_EQ(svc.stats().analyses, 1);
  EXPECT_TRUE(svc.has_pattern(0xc0111deull));

  svc.factor(B);  // same primary key, different structure: NOT a hit
  EXPECT_EQ(svc.stats().analyses, 2);
  EXPECT_EQ(svc.stats().cache_hits, 0);
  EXPECT_EQ(svc.resident_patterns(), 2u);  // colliding entries coexist

  // Each entry still refactorizes and solves as itself.
  const auto nb = static_cast<std::size_t>(B.n_rows());
  const std::vector<real_t> bb = random_panel(nb, 1, 53);
  std::vector<real_t> xb(nb);
  const SolveReport sb = svc.solve({bb, xb, 1});
  EXPECT_LT(sb.residual, 1e-12);

  svc.factor(perturbed_values(A, 1.25));  // genuine hit for A's entry
  EXPECT_EQ(svc.stats().analyses, 2);
  EXPECT_EQ(svc.stats().cache_hits, 1);
  const auto na = static_cast<std::size_t>(A.n_rows());
  const std::vector<real_t> ba = random_panel(na, 1, 57);
  std::vector<real_t> xa(na);
  const SolveReport sa = svc.solve({ba, xa, 1});
  EXPECT_LT(sa.residual, 1e-12);
}

TEST(SolverService, ExtractInsertMovesSymbolicStateBetweenServices) {
  // The fleet's migration primitive: extract_pattern removes the symbolic
  // entry from the source, insert_pattern makes it a first-class resident
  // on the target — whose next factor() is a cache hit (no analysis) and
  // solves bitwise identically to a cold service.
  const CsrMatrix A =
      grid2d_laplacian(GridGeometry{10, 9, 1}, Stencil2D::FivePoint);
  const auto n = static_cast<std::size_t>(A.n_rows());
  const std::vector<real_t> b = random_panel(n, 1, 61);

  SolverService src(small_grid_options());
  src.factor(A);
  const std::uint64_t fp = src.fingerprint(A);
  EXPECT_TRUE(src.has_pattern(fp));
  EXPECT_FALSE(src.has_pattern(fp + 1));
  EXPECT_FALSE(src.extract_pattern(fp + 1).has_value());

  auto sym = src.extract_pattern(fp);
  ASSERT_TRUE(sym.has_value());
  EXPECT_GT(sym->payload_bytes(), 0);
  EXPECT_EQ(src.resident_patterns(), 0u);
  EXPECT_FALSE(src.has_current());
  EXPECT_EQ(src.stats().evictions, 0);  // migration out is not an eviction

  SolverService dst(small_grid_options());
  dst.insert_pattern(std::move(*sym));
  EXPECT_TRUE(dst.has_pattern(fp));
  EXPECT_FALSE(dst.activate(fp));  // symbolic only: no numeric factors yet

  const FactorReport fr = dst.factor(A);
  EXPECT_TRUE(fr.cache_hit);
  EXPECT_EQ(dst.stats().analyses, 0);  // the whole point of the migration
  EXPECT_TRUE(dst.activate(fp));       // factored now: warm re-activation

  std::vector<real_t> x_dst(n);
  dst.solve({b, x_dst, 1});
  SolverService cold(small_grid_options());
  cold.factor(A);
  std::vector<real_t> x_cold(n);
  cold.solve({b, x_cold, 1});
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(x_dst[i], x_cold[i]) << "component " << i;
}

}  // namespace
}  // namespace slu3d
